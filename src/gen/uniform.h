#ifndef IBFS_GEN_UNIFORM_H_
#define IBFS_GEN_UNIFORM_H_

#include <cstdint>

#include "graph/csr.h"
#include "util/status.h"

namespace ibfs::gen {

/// Parameters for the uniform-outdegree random generator: the paper's RD
/// graph, where "each vertex has roughly the same outdegree" (Section 8.1).
/// Endpoints are sampled uniformly, so there are no hubs and GroupBy Rule 2
/// has little to bite on — the property Figure 9/17 depend on.
struct UniformParams {
  int64_t vertex_count = 1 << 12;
  /// Directed out-edges drawn per vertex (before dedup).
  int outdegree = 16;
  bool undirected = true;
  uint64_t seed = 1;
};

/// Generates a uniform random graph. Deterministic for fixed parameters.
Result<graph::Csr> GenerateUniform(const UniformParams& params);

}  // namespace ibfs::gen

#endif  // IBFS_GEN_UNIFORM_H_
