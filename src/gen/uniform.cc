#include "gen/uniform.h"

#include "graph/builder.h"
#include "util/prng.h"

namespace ibfs::gen {

Result<graph::Csr> GenerateUniform(const UniformParams& params) {
  if (params.vertex_count <= 0) {
    return Status::InvalidArgument("vertex_count must be positive");
  }
  if (params.outdegree < 0) {
    return Status::InvalidArgument("outdegree must be >= 0");
  }
  const int64_t n = params.vertex_count;
  Prng prng(params.seed);
  graph::GraphBuilder builder(n);
  for (int64_t v = 0; v < n; ++v) {
    for (int k = 0; k < params.outdegree; ++k) {
      const auto w = static_cast<graph::VertexId>(
          prng.NextBounded(static_cast<uint64_t>(n)));
      const auto u = static_cast<graph::VertexId>(v);
      if (params.undirected) {
        builder.AddUndirectedEdge(u, w);
      } else {
        builder.AddEdge(u, w);
      }
    }
  }
  return std::move(builder).Build();
}

}  // namespace ibfs::gen
