#include "gen/rmat.h"

#include <vector>

#include "graph/builder.h"
#include "util/prng.h"

namespace ibfs::gen {

Result<graph::Csr> GenerateRmat(const RmatParams& params) {
  if (params.scale < 1 || params.scale > 30) {
    return Status::InvalidArgument("rmat scale out of range [1, 30]");
  }
  if (params.edge_factor < 1) {
    return Status::InvalidArgument("edge_factor must be >= 1");
  }
  const double abc = params.a + params.b + params.c;
  if (params.a < 0 || params.b < 0 || params.c < 0 || abc > 1.0) {
    return Status::InvalidArgument("rmat quadrant probabilities invalid");
  }

  const int64_t n = int64_t{1} << params.scale;
  const int64_t m = n * params.edge_factor;
  Prng prng(params.seed);
  graph::GraphBuilder builder(n);

  // Recursive quadrant descent: at each of `scale` levels pick the quadrant
  // of the adjacency matrix with probability (a, b, c, d), with a little
  // noise per level (as in the Graph500 reference) to avoid exact
  // self-similarity artifacts.
  for (int64_t e = 0; e < m; ++e) {
    uint64_t src = 0;
    uint64_t dst = 0;
    for (int level = 0; level < params.scale; ++level) {
      const double noise = 0.9 + 0.2 * prng.NextDouble();
      const double a = params.a * noise;
      const double r = prng.NextDouble() * (a + params.b + params.c +
                                            (1.0 - abc));
      uint64_t src_bit = 0;
      uint64_t dst_bit = 0;
      if (r < a) {
        // quadrant A: (0, 0)
      } else if (r < a + params.b) {
        dst_bit = 1;  // quadrant B: (0, 1)
      } else if (r < a + params.b + params.c) {
        src_bit = 1;  // quadrant C: (1, 0)
      } else {
        src_bit = 1;  // quadrant D: (1, 1)
        dst_bit = 1;
      }
      src = (src << 1) | src_bit;
      dst = (dst << 1) | dst_bit;
    }
    const auto u = static_cast<graph::VertexId>(src);
    const auto v = static_cast<graph::VertexId>(dst);
    if (params.undirected) {
      builder.AddUndirectedEdge(u, v);
    } else {
      builder.AddEdge(u, v);
    }
  }
  return std::move(builder).Build();
}

}  // namespace ibfs::gen
