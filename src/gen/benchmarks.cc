#include "gen/benchmarks.h"

#include "gen/rmat.h"
#include "gen/uniform.h"
#include "util/env.h"
#include "util/logging.h"

namespace ibfs::gen {

// Relative shapes follow the paper's Section 8.1 inventory: KG0 has by far
// the highest average outdegree, KG2 is the largest, RD is uniform, TW is
// the most skewed with a low edge factor, HW/OR are dense social graphs.
const std::vector<BenchmarkSpec>& AllBenchmarks() {
  static const auto* specs = new std::vector<BenchmarkSpec>{
      {BenchmarkId::kFB, "FB", 14, 12, 0.57, 0.19, 0.19, false},
      {BenchmarkId::kFR, "FR", 14, 13, 0.55, 0.20, 0.20, false},
      {BenchmarkId::kHW, "HW", 13, 28, 0.52, 0.22, 0.22, false},
      {BenchmarkId::kKG0, "KG0", 12, 96, 0.57, 0.19, 0.19, false},
      {BenchmarkId::kKG1, "KG1", 13, 18, 0.57, 0.19, 0.19, false},
      {BenchmarkId::kKG2, "KG2", 14, 16, 0.57, 0.19, 0.19, false},
      {BenchmarkId::kLJ, "LJ", 13, 14, 0.57, 0.19, 0.19, false},
      {BenchmarkId::kOR, "OR", 13, 19, 0.55, 0.20, 0.20, false},
      {BenchmarkId::kPK, "PK", 12, 10, 0.57, 0.19, 0.19, false},
      {BenchmarkId::kRD, "RD", 14, 8, 0.0, 0.0, 0.0, true},
      {BenchmarkId::kRM, "RM", 13, 32, 0.45, 0.15, 0.15, false},
      {BenchmarkId::kTW, "TW", 14, 6, 0.62, 0.18, 0.14, false},
      {BenchmarkId::kWK, "WK", 13, 6, 0.60, 0.19, 0.15, false},
  };
  return *specs;
}

const BenchmarkSpec& GetBenchmark(BenchmarkId id) {
  for (const auto& spec : AllBenchmarks()) {
    if (spec.id == id) return spec;
  }
  IBFS_LOG(Fatal) << "unknown benchmark id";
  return AllBenchmarks().front();  // unreachable
}

std::optional<BenchmarkId> BenchmarkByName(const std::string& name) {
  for (const auto& spec : AllBenchmarks()) {
    if (spec.name == name) return spec.id;
  }
  return std::nullopt;
}

Result<graph::Csr> GenerateBenchmark(BenchmarkId id, int scale_delta) {
  const BenchmarkSpec& spec = GetBenchmark(id);
  const int scale = spec.base_scale + scale_delta;
  if (scale < 1) {
    return Status::InvalidArgument("scale_delta makes " + spec.name +
                                   " smaller than 2 vertices");
  }
  // Seed derives from the benchmark id so every graph is distinct but
  // reproducible.
  const uint64_t seed = 0x5EED0000u + static_cast<uint64_t>(spec.id);
  if (spec.uniform) {
    UniformParams params;
    params.vertex_count = int64_t{1} << scale;
    params.outdegree = spec.edge_factor;
    params.undirected = true;
    params.seed = seed;
    return GenerateUniform(params);
  }
  RmatParams params;
  params.scale = scale;
  params.edge_factor = spec.edge_factor;
  params.a = spec.a;
  params.b = spec.b;
  params.c = spec.c;
  params.undirected = true;
  params.seed = seed;
  return GenerateRmat(params);
}

int EnvScaleDelta() {
  return static_cast<int>(EnvInt64("IBFS_SCALE", 0));
}

}  // namespace ibfs::gen
