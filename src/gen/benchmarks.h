#ifndef IBFS_GEN_BENCHMARKS_H_
#define IBFS_GEN_BENCHMARKS_H_

#include <optional>
#include <string>
#include <vector>

#include "graph/csr.h"
#include "util/status.h"

namespace ibfs::gen {

/// The paper's 13 graph benchmarks (Section 8.1, Figure 14).
enum class BenchmarkId {
  kFB,   // Facebook friendship
  kFR,   // Friendster
  kHW,   // Hollywood collaboration (high degree)
  kKG0,  // Graph500 Kronecker, very high average outdegree
  kKG1,  // Graph500 Kronecker, large
  kKG2,  // Graph500 Kronecker, largest
  kLJ,   // LiveJournal
  kOR,   // Orkut (dense social)
  kPK,   // Pokec (smallest real graph)
  kRD,   // uniform-outdegree random graph
  kRM,   // R-MAT with (0.45, 0.15, 0.15)
  kTW,   // Twitter follower (highly skewed)
  kWK,   // Wikipedia hyperlinks
};

/// Generator recipe for one benchmark. The real-world graphs are
/// substituted by R-MAT instances whose skew (a, b, c) and edge factor
/// mimic each graph's outdegree profile; RD uses the uniform generator.
/// Sizes are scaled down from the paper (see DESIGN.md §2) and can be grown
/// uniformly via the scale_delta argument / IBFS_SCALE environment knob.
struct BenchmarkSpec {
  BenchmarkId id;
  std::string name;
  /// log2(vertex_count) at scale_delta == 0.
  int base_scale;
  int edge_factor;
  /// R-MAT skew; ignored for RD.
  double a, b, c;
  bool uniform;  // true => RD-style uniform generator
};

/// All 13 specs in the paper's (alphabetical) presentation order.
const std::vector<BenchmarkSpec>& AllBenchmarks();

/// Spec lookup by id.
const BenchmarkSpec& GetBenchmark(BenchmarkId id);

/// Spec lookup by short name ("FB", "KG0", ...); nullopt if unknown.
std::optional<BenchmarkId> BenchmarkByName(const std::string& name);

/// Generates the benchmark graph at base_scale + scale_delta.
Result<graph::Csr> GenerateBenchmark(BenchmarkId id, int scale_delta = 0);

/// Reads the IBFS_SCALE environment variable (default 0) used by the bench
/// harnesses to grow every preset uniformly.
int EnvScaleDelta();

}  // namespace ibfs::gen

#endif  // IBFS_GEN_BENCHMARKS_H_
