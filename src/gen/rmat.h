#ifndef IBFS_GEN_RMAT_H_
#define IBFS_GEN_RMAT_H_

#include <cstdint>

#include "graph/csr.h"
#include "util/status.h"

namespace ibfs::gen {

/// Parameters for the R-MAT / Graph500 Kronecker generator the paper uses
/// for its KG*/RM synthetic graphs (Section 8.1).
struct RmatParams {
  /// log2 of the vertex count.
  int scale = 12;
  /// Average directed edges per vertex (edge factor).
  int edge_factor = 16;
  /// Quadrant probabilities. Graph500 default (0.57, 0.19, 0.19);
  /// d is implied as 1 - a - b - c. The paper's RM uses (0.45, 0.15, 0.15).
  double a = 0.57;
  double b = 0.19;
  double c = 0.19;
  /// Treat generated edges as undirected (store both directions), matching
  /// the Graph500 convention.
  bool undirected = true;
  uint64_t seed = 1;
};

/// Generates an R-MAT graph. Deterministic for a fixed parameter set.
Result<graph::Csr> GenerateRmat(const RmatParams& params);

}  // namespace ibfs::gen

#endif  // IBFS_GEN_RMAT_H_
