#ifndef IBFS_FLEET_FLEET_WORKLOAD_H_
#define IBFS_FLEET_FLEET_WORKLOAD_H_

#include <span>
#include <string>
#include <vector>

#include "fleet/fleet.h"
#include "graph/csr.h"
#include "obs/report.h"
#include "service/workload.h"
#include "util/status.h"

namespace ibfs::fleet {

/// Open-loop workload driving for the fleet front door, reusing the
/// service layer's seeded arrival schedules. The same event list driven
/// through a single BfsService and through an N-shard fleet must produce
/// the same per-query depth checksums — DriveFleet folds them (submit
/// order) into one drive checksum so that invariant is one integer
/// comparison.
struct FleetWorkloadOptions {
  /// Arrival process, load, and seed (service::GenerateArrivals).
  service::WorkloadOptions workload;
  /// Bundle this many consecutive arrivals into one scatter-gather
  /// SubmitMulti at the first event's scheduled time (1 = single-source
  /// submits only). The queried source multiset is identical either way.
  int multi_source = 1;
  /// Kill this shard mid-drive (-1 = no kill), at `kill_at_s` seconds
  /// into the schedule (negative = the schedule midpoint).
  int kill_shard = -1;
  double kill_at_s = -1.0;
  /// Join this many fresh shards mid-drive (0 = no join), at `join_at_s`
  /// seconds into the schedule (negative = 75% of the way through, i.e.
  /// after a default-scheduled kill), each at ring weight `join_weight`.
  /// With both a kill and a join armed this drives the full elastic
  /// episode: lose a shard, keep serving, grow back, keep serving.
  int join_shards = 0;
  double join_at_s = -1.0;
  int join_weight = 1;

  Status Validate() const;
};

/// The outcome of driving one workload through a fleet.
struct FleetDriveResult {
  /// Per query in submit order (scatter-gather results flattened in
  /// request order).
  std::vector<service::QueryResult> results;
  double wall_seconds = 0.0;
  /// Completed-OK queries per wall second.
  double achieved_qps = 0.0;
  /// FNV-1a fold of the OK results' depth checksums in submit order —
  /// invariant across shard counts and failover.
  uint64_t checksum = 0;
  /// Futures that failed to resolve within the drain timeout. The fleet's
  /// availability contract makes this 0; the chaos harness asserts it.
  int64_t unanswered = 0;
  int64_t multi_queries = 0;
  /// Fleet snapshot after the drive fully drained (final counts).
  FleetStats stats;
};

/// Submits every event at its scheduled time (bundled per `multi_source`),
/// kills the configured shard on schedule, drains, and collects every
/// future. The fleet is shut down afterwards.
Result<FleetDriveResult> DriveFleet(FleetFrontDoor* fleet,
                                    std::span<const service::WorkloadEvent>
                                        events,
                                    const FleetWorkloadOptions& options);

/// Builds the "ibfs.fleet_report" document from a driven workload.
obs::FleetReport BuildFleetReport(const std::string& graph_name,
                                  const graph::Csr& graph,
                                  const FleetOptions& fleet_options,
                                  const FleetWorkloadOptions& workload,
                                  const FleetDriveResult& drive);

/// Fleet chaos harness: drives the workload with `kill_shard` armed,
/// verifies every OK answer against a fault-free CPU baseline of the same
/// source, and reports availability (unanswered futures) alongside the
/// checksum comparison. Fails only on setup errors; shard loss is data.
Result<obs::FleetReport> RunFleetChaos(const std::string& graph_name,
                                       const graph::Csr& graph,
                                       const FleetOptions& fleet_options,
                                       const FleetWorkloadOptions& workload);

}  // namespace ibfs::fleet

#endif  // IBFS_FLEET_FLEET_WORKLOAD_H_
