#include "fleet/fleet.h"

#include <algorithm>
#include <utility>

#include "baselines/reference_bfs.h"
#include "ibfs/status_array.h"
#include "obs/metrics.h"
#include "util/checksum.h"
#include "util/logging.h"

namespace ibfs::fleet {
namespace {

/// Fan-out bucket layout for the fleet.scatter_fanout histogram (1..64+
/// shards per scatter).
std::span<const double> FanoutBounds() {
  static const std::vector<double> bounds = obs::PowerOfTwoBounds(1, 7);
  return bounds;
}

}  // namespace

uint64_t FoldChecksum(uint64_t state, uint64_t checksum) {
  // Little-endian byte order so the merge is platform-independent.
  uint8_t bytes[8];
  for (int i = 0; i < 8; ++i) {
    bytes[i] = static_cast<uint8_t>(checksum >> (8 * i));
  }
  return Fnv1aExtend(state, bytes);
}

const char* ShardHealthName(ShardHealth health) {
  switch (health) {
    case ShardHealth::kHealthy:
      return "healthy";
    case ShardHealth::kDegraded:
      return "degraded";
    case ShardHealth::kDown:
      return "down";
  }
  return "unknown";
}

Status FleetOptions::Validate() const {
  if (shards < 1) {
    return Status::InvalidArgument("fleet needs at least one shard");
  }
  if (vnodes < 1) {
    return Status::InvalidArgument("vnodes must be >= 1");
  }
  if (error_rate_threshold < 0.0 || error_rate_threshold > 1.0) {
    return Status::InvalidArgument(
        "error_rate_threshold must be in [0, 1]");
  }
  if (min_health_samples < 1) {
    return Status::InvalidArgument("min_health_samples must be >= 1");
  }
  if (gather_threads < 1) {
    return Status::InvalidArgument("gather_threads must be >= 1");
  }
  return service.Validate();
}

double FleetStats::Imbalance() const {
  int64_t max_routed = 0;
  int64_t sum = 0;
  int live = 0;
  for (size_t s = 0; s < routed.size(); ++s) {
    if (s < health.size() && health[s] == ShardHealth::kDown) continue;
    max_routed = std::max(max_routed, routed[s]);
    sum += routed[s];
    ++live;
  }
  if (live == 0 || sum == 0) return 0.0;
  const double mean = static_cast<double>(sum) / static_cast<double>(live);
  return static_cast<double>(max_routed) / mean;
}

namespace {

HashRing MakeRing(const FleetOptions& options) {
  HashRing::Options ring_options;
  ring_options.vnodes = options.vnodes;
  ring_options.seed = options.ring_seed;
  return HashRing(options.shards, ring_options);
}

}  // namespace

FleetFrontDoor::FleetFrontDoor(const graph::Csr* graph, FleetOptions options)
    : graph_(graph),
      options_(std::move(options)),
      ring_(MakeRing(options_)),
      full_ring_(MakeRing(options_)),
      health_(static_cast<size_t>(options_.shards), ShardHealth::kHealthy),
      routed_(static_cast<size_t>(options_.shards), 0) {}

Result<std::unique_ptr<FleetFrontDoor>> FleetFrontDoor::Create(
    const graph::Csr* graph, FleetOptions options) {
  if (graph == nullptr) {
    return Status::InvalidArgument("fleet needs a graph");
  }
  IBFS_RETURN_NOT_OK(options.Validate());
  std::unique_ptr<FleetFrontDoor> fleet(
      new FleetFrontDoor(graph, std::move(options)));
  fleet->shards_.reserve(static_cast<size_t>(fleet->options_.shards));
  for (int s = 0; s < fleet->options_.shards; ++s) {
    // Shared-nothing: every shard gets its own engine, device fleet,
    // caches, and batcher from the same template, so any shard's answer
    // for a source is bit-identical to any other's.
    auto shard =
        service::BfsService::Create(graph, fleet->options_.service);
    IBFS_RETURN_NOT_OK(shard.status());
    fleet->shards_.push_back(std::move(shard).value());
  }
  fleet->gather_pool_ =
      std::make_unique<ThreadPool>(fleet->options_.gather_threads);
  fleet->PublishHealthGauges();
  return fleet;
}

FleetFrontDoor::~FleetFrontDoor() { Shutdown(); }

std::future<service::QueryResult> FleetFrontDoor::AnswerUnowned(
    graph::VertexId source) {
  std::promise<service::QueryResult> promise;
  std::future<service::QueryResult> future = promise.get_future();
  service::QueryResult result;
  result.source = source;
  obs::MetricsRegistry* metrics = options_.service.observer.metrics;
  if (static_cast<int64_t>(source) >= graph_->vertex_count()) {
    result.status = Status::OutOfRange("source vertex outside graph");
  } else if (options_.cpu_fallback) {
    // Every shard is gone; degrade to the sequential CPU reference path —
    // the same depths a shard would have produced, minus the performance
    // contract.
    result.depths = baselines::ReferenceDepthsU8(
        *graph_, source, options_.service.engine.traversal.max_level);
    result.depth_checksum = Fnv1a(result.depths);
    for (uint8_t d : result.depths) {
      if (d != kUnvisitedDepth) ++result.reached;
    }
    if (!options_.service.keep_depths) result.depths.clear();
    result.degraded = true;
    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++fallback_answers_;
    }
    if (metrics != nullptr) {
      metrics->GetCounter("fleet.fallback_answers")->Increment();
    }
  } else {
    result.status = Status::Unavailable("fleet has no live shards");
  }
  promise.set_value(std::move(result));
  return future;
}

std::future<service::QueryResult> FleetFrontDoor::SubmitRouted(
    graph::VertexId source, int* shard_out) {
  const uint64_t key = static_cast<uint64_t>(source);
  std::shared_lock<std::shared_mutex> route_lock(route_mu_);
  const int shard = ring_.ShardFor(key);
  if (shard < 0) {
    route_lock.unlock();
    if (shard_out != nullptr) *shard_out = -1;
    return AnswerUnowned(source);
  }
  const int home = full_ring_.ShardFor(key);
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++routed_[static_cast<size_t>(shard)];
    if (shard != home) ++failover_reroutes_;
  }
  obs::MetricsRegistry* metrics = options_.service.observer.metrics;
  if (metrics != nullptr) {
    metrics->GetCounter("fleet.routed")->Increment();
    if (shard != home) metrics->GetCounter("fleet.failovers")->Increment();
  }
  if (shard_out != nullptr) *shard_out = shard;
  // Submitted under the shared route lock: KillShard only drains a shard
  // after taking the unique lock, so a shard picked off the ring here is
  // still accepting (and a post-shutdown race inside BfsService resolves
  // the future with FailedPrecondition rather than dropping it).
  return shards_[static_cast<size_t>(shard)]->Submit(source);
}

std::future<service::QueryResult> FleetFrontDoor::Submit(
    graph::VertexId source) {
  return SubmitRouted(source, nullptr);
}

MultiQueryResult FleetFrontDoor::Gather(
    std::vector<std::future<service::QueryResult>> futures,
    int shards_touched) {
  MultiQueryResult multi;
  multi.shards_touched = shards_touched;
  multi.results.reserve(futures.size());
  uint64_t combined = kFnv1aOffsetBasis;
  for (std::future<service::QueryResult>& future : futures) {
    service::QueryResult result = future.get();
    combined =
        FoldChecksum(combined, result.status.ok() ? result.depth_checksum
                                                  : 0);
    if (multi.status.ok() && !result.status.ok()) {
      multi.status = result.status;
    }
    multi.results.push_back(std::move(result));
  }
  multi.combined_checksum = combined;
  return multi;
}

MultiQueryResult FleetFrontDoor::MultiQuery(
    const std::vector<graph::VertexId>& sources) {
  return SubmitMulti(sources).get();
}

std::future<MultiQueryResult> FleetFrontDoor::SubmitMulti(
    std::vector<graph::VertexId> sources) {
  // Scatter now — routing reflects the ring at submit time — and gather
  // on the internal pool so the caller's thread never blocks on shard
  // execution.
  std::vector<std::future<service::QueryResult>> futures;
  futures.reserve(sources.size());
  std::vector<int> touched;
  for (graph::VertexId source : sources) {
    int shard = -1;
    futures.push_back(SubmitRouted(source, &shard));
    if (shard >= 0) touched.push_back(shard);
  }
  std::sort(touched.begin(), touched.end());
  touched.erase(std::unique(touched.begin(), touched.end()), touched.end());
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++multi_queries_;
    multi_sources_ += static_cast<int64_t>(sources.size());
  }
  obs::MetricsRegistry* metrics = options_.service.observer.metrics;
  if (metrics != nullptr) {
    metrics->GetCounter("fleet.scatter_queries")->Increment();
    metrics->GetHistogram("fleet.scatter_fanout", FanoutBounds())
        ->Observe(static_cast<double>(touched.size()));
  }
  auto promise = std::make_shared<std::promise<MultiQueryResult>>();
  std::future<MultiQueryResult> future = promise->get_future();
  const int fanout = static_cast<int>(touched.size());
  ThreadPool* pool = nullptr;
  {
    std::lock_guard<std::mutex> shutdown_lock(shutdown_mu_);
    pool = gather_pool_.get();
    if (pool == nullptr) {
      // Fleet already drained: every shard future is ready, so gathering
      // inline is instant.
      promise->set_value(Gather(std::move(futures), fanout));
      return future;
    }
    auto pending = std::make_shared<
        std::vector<std::future<service::QueryResult>>>(std::move(futures));
    pool->Submit([this, promise, pending, fanout] {
      promise->set_value(Gather(std::move(*pending), fanout));
    });
  }
  return future;
}

bool FleetFrontDoor::KillShard(int shard) {
  {
    std::unique_lock<std::shared_mutex> route_lock(route_mu_);
    if (shard < 0 || static_cast<size_t>(shard) >= shards_.size() ||
        health_[static_cast<size_t>(shard)] == ShardHealth::kDown) {
      return false;
    }
    health_[static_cast<size_t>(shard)] = ShardHealth::kDown;
    ring_.Remove(shard);
  }
  PublishHealthGauges();
  // Drain outside the route lock: new submits already route around the
  // shard, and Shutdown resolves every future it still holds.
  shards_[static_cast<size_t>(shard)]->Shutdown();
  return true;
}

int FleetFrontDoor::CheckHealth() {
  int transitions = 0;
  for (size_t s = 0; s < shards_.size(); ++s) {
    {
      std::shared_lock<std::shared_mutex> route_lock(route_mu_);
      if (health_[s] != ShardHealth::kHealthy) continue;
    }
    const service::BfsService::Stats stats = shards_[s]->stats();
    const service::CacheStats cache = shards_[s]->cache_stats();
    const int64_t answered = stats.completed + stats.failed;
    const bool error_rate_bad =
        answered >= options_.min_health_samples &&
        static_cast<double>(stats.failed) >
            options_.error_rate_threshold * static_cast<double>(answered);
    // Resilience signals from PR-4: opened circuit breakers, quarantined
    // cache entries, and CPU-fallback groups all mean the shard is
    // answering (correctly) with a reduced machine under it.
    const bool resilience_degraded = stats.breaker_opened > 0 ||
                                     cache.quarantined > 0 ||
                                     stats.fallback_groups > 0;
    if (error_rate_bad || resilience_degraded) {
      std::unique_lock<std::shared_mutex> route_lock(route_mu_);
      if (health_[s] == ShardHealth::kHealthy) {
        health_[s] = ShardHealth::kDegraded;
        ++transitions;
      }
    }
  }
  if (transitions > 0) PublishHealthGauges();
  return transitions;
}

int FleetFrontDoor::OwnerShard(graph::VertexId source) const {
  std::shared_lock<std::shared_mutex> route_lock(route_mu_);
  return ring_.ShardFor(static_cast<uint64_t>(source));
}

int FleetFrontDoor::HomeShard(graph::VertexId source) const {
  return full_ring_.ShardFor(static_cast<uint64_t>(source));
}

ShardHealth FleetFrontDoor::shard_health(int shard) const {
  std::shared_lock<std::shared_mutex> route_lock(route_mu_);
  IBFS_CHECK(shard >= 0 && static_cast<size_t>(shard) < health_.size());
  return health_[static_cast<size_t>(shard)];
}

void FleetFrontDoor::PublishHealthGauges() {
  obs::MetricsRegistry* metrics = options_.service.observer.metrics;
  if (metrics == nullptr) return;
  int healthy = 0;
  int degraded = 0;
  int down = 0;
  {
    std::shared_lock<std::shared_mutex> route_lock(route_mu_);
    for (ShardHealth h : health_) {
      switch (h) {
        case ShardHealth::kHealthy:
          ++healthy;
          break;
        case ShardHealth::kDegraded:
          ++degraded;
          break;
        case ShardHealth::kDown:
          ++down;
          break;
      }
    }
  }
  metrics->GetGauge("fleet.shards")
      ->Set(static_cast<double>(shards_.size()));
  metrics->GetGauge("fleet.shards_healthy")->Set(healthy);
  metrics->GetGauge("fleet.shards_degraded")->Set(degraded);
  metrics->GetGauge("fleet.shards_down")->Set(down);
  metrics->GetGauge("fleet.imbalance")->Set(stats().Imbalance());
}

FleetStats FleetFrontDoor::stats() const {
  FleetStats fleet;
  fleet.shard.reserve(shards_.size());
  for (const auto& shard : shards_) {
    fleet.shard.push_back(shard->stats());
    fleet.totals.Add(fleet.shard.back());
  }
  {
    std::shared_lock<std::shared_mutex> route_lock(route_mu_);
    fleet.health = health_;
  }
  for (ShardHealth h : fleet.health) {
    switch (h) {
      case ShardHealth::kHealthy:
        ++fleet.healthy;
        break;
      case ShardHealth::kDegraded:
        ++fleet.degraded;
        break;
      case ShardHealth::kDown:
        ++fleet.down;
        break;
    }
  }
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    fleet.routed = routed_;
    fleet.failover_reroutes = failover_reroutes_;
    fleet.fallback_answers = fallback_answers_;
    fleet.multi_queries = multi_queries_;
    fleet.multi_sources = multi_sources_;
  }
  return fleet;
}

void FleetFrontDoor::Shutdown() {
  std::lock_guard<std::mutex> shutdown_lock(shutdown_mu_);
  if (joined_) return;
  for (const auto& shard : shards_) shard->Shutdown();
  // Every shard future is resolved now, so pending gather tasks finish
  // immediately; the pool destructor completes them before returning.
  gather_pool_.reset();
  joined_ = true;
}

}  // namespace ibfs::fleet
