#include "fleet/fleet.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "baselines/reference_bfs.h"
#include "ibfs/status_array.h"
#include "obs/metrics.h"
#include "util/checksum.h"
#include "util/logging.h"

namespace ibfs::fleet {
namespace {

/// Fan-out bucket layout for the fleet.scatter_fanout histogram (1..64+
/// shards per scatter).
std::span<const double> FanoutBounds() {
  static const std::vector<double> bounds = obs::PowerOfTwoBounds(1, 7);
  return bounds;
}

}  // namespace

uint64_t FoldChecksum(uint64_t state, uint64_t checksum) {
  // Little-endian byte order so the merge is platform-independent.
  uint8_t bytes[8];
  for (int i = 0; i < 8; ++i) {
    bytes[i] = static_cast<uint8_t>(checksum >> (8 * i));
  }
  return Fnv1aExtend(state, bytes);
}

const char* ShardHealthName(ShardHealth health) {
  switch (health) {
    case ShardHealth::kHealthy:
      return "healthy";
    case ShardHealth::kDegraded:
      return "degraded";
    case ShardHealth::kDown:
      return "down";
  }
  return "unknown";
}

Status FleetOptions::Validate() const {
  if (shards < 1) {
    return Status::InvalidArgument("fleet needs at least one shard");
  }
  if (vnodes < 1) {
    return Status::InvalidArgument("vnodes must be >= 1");
  }
  if (error_rate_threshold < 0.0 || error_rate_threshold > 1.0) {
    return Status::InvalidArgument(
        "error_rate_threshold must be in [0, 1]");
  }
  if (min_health_samples < 1) {
    return Status::InvalidArgument("min_health_samples must be >= 1");
  }
  if (gather_threads < 1) {
    return Status::InvalidArgument("gather_threads must be >= 1");
  }
  if (replication < 1) {
    return Status::InvalidArgument("replication must be >= 1");
  }
  if (hedge_p50_multiplier <= 0.0) {
    return Status::InvalidArgument("hedge_p50_multiplier must be > 0");
  }
  if (hedge_min_delay_ms < 0.0) {
    return Status::InvalidArgument("hedge_min_delay_ms must be >= 0");
  }
  if (hedge_threads < 1) {
    return Status::InvalidArgument("hedge_threads must be >= 1");
  }
  if (recovery_error_rate < 0.0 || recovery_error_rate > 1.0) {
    return Status::InvalidArgument("recovery_error_rate must be in [0, 1]");
  }
  if (rebalance_interval_s < 0.0) {
    return Status::InvalidArgument("rebalance_interval_s must be >= 0");
  }
  if (rebalance_hysteresis < 1.0) {
    return Status::InvalidArgument("rebalance_hysteresis must be >= 1");
  }
  if (rebalance_max_weight < 1) {
    return Status::InvalidArgument("rebalance_max_weight must be >= 1");
  }
  if (warmup_limit < 0) {
    return Status::InvalidArgument("warmup_limit must be >= 0");
  }
  return service.Validate();
}

double FleetStats::Imbalance() const {
  int64_t sum = 0;
  int live = 0;
  for (size_t s = 0; s < routed.size(); ++s) {
    if (s < health.size() && health[s] == ShardHealth::kDown) continue;
    sum += routed[s];
    ++live;
  }
  if (live == 0 || sum == 0) return 0.0;
  // Weighted fleets are judged against each shard's ring weight share;
  // without weight info every live shard is assumed to carry an equal
  // share, which reduces to the classic max(routed)/mean(routed).
  //
  // The load fractions below are normalized over *live* traffic, so the
  // shares must be renormalized over live shards too: weight_share spans
  // the whole fleet (summing to 1 with down shards included), and the
  // equal-share fallback 1/live only matches that scale when every shard
  // has weight info or none does. Dividing each effective share by their
  // live-shard sum keeps the two normalizations consistent, so a fleet
  // routing exactly proportionally to its weights scores 1.0 even when
  // shards are down or only some shards carry weight info.
  const auto effective_share = [&](size_t s) {
    return s < weight_share.size() && weight_share[s] > 0.0
               ? weight_share[s]
               : 1.0 / static_cast<double>(live);
  };
  double share_sum = 0.0;
  for (size_t s = 0; s < routed.size(); ++s) {
    if (s < health.size() && health[s] == ShardHealth::kDown) continue;
    share_sum += effective_share(s);
  }
  if (share_sum <= 0.0) return 0.0;
  double worst = 0.0;
  for (size_t s = 0; s < routed.size(); ++s) {
    if (s < health.size() && health[s] == ShardHealth::kDown) continue;
    const double share = effective_share(s) / share_sum;
    const double load = static_cast<double>(routed[s]) /
                        static_cast<double>(sum);
    worst = std::max(worst, load / share);
  }
  return worst;
}

namespace {

HashRing MakeRing(const FleetOptions& options) {
  HashRing::Options ring_options;
  ring_options.vnodes = options.vnodes;
  ring_options.seed = options.ring_seed;
  return HashRing(options.shards, ring_options);
}

}  // namespace

FleetFrontDoor::FleetFrontDoor(const graph::Csr* graph, FleetOptions options)
    : graph_(graph),
      options_(std::move(options)),
      ring_(MakeRing(options_)),
      full_ring_(MakeRing(options_)),
      health_(static_cast<size_t>(options_.shards), ShardHealth::kHealthy),
      probe_base_(static_cast<size_t>(options_.shards)),
      routed_(static_cast<size_t>(options_.shards), 0) {}

Result<std::unique_ptr<FleetFrontDoor>> FleetFrontDoor::Create(
    const graph::Csr* graph, FleetOptions options) {
  if (graph == nullptr) {
    return Status::InvalidArgument("fleet needs a graph");
  }
  IBFS_RETURN_NOT_OK(options.Validate());
  std::unique_ptr<FleetFrontDoor> fleet(
      new FleetFrontDoor(graph, std::move(options)));
  fleet->shards_.reserve(static_cast<size_t>(fleet->options_.shards));
  for (int s = 0; s < fleet->options_.shards; ++s) {
    // Shared-nothing: every shard gets its own engine, device fleet,
    // caches, and batcher from the same template, so any shard's answer
    // for a source is bit-identical to any other's.
    auto shard =
        service::BfsService::Create(graph, fleet->options_.service);
    IBFS_RETURN_NOT_OK(shard.status());
    fleet->shards_.push_back(std::move(shard).value());
  }
  fleet->gather_pool_ =
      std::make_unique<ThreadPool>(fleet->options_.gather_threads);
  if (fleet->options_.replication > 1) {
    fleet->hedge_pool_ =
        std::make_unique<ThreadPool>(fleet->options_.hedge_threads);
  }
  if (fleet->options_.rebalance_interval_s > 0.0) {
    fleet->rebalancer_ =
        std::thread([raw = fleet.get()] { raw->RebalancerLoop(); });
  }
  fleet->PublishHealthGauges();
  return fleet;
}

FleetFrontDoor::~FleetFrontDoor() { Shutdown(); }

void FleetFrontDoor::BumpCounter(const char* name, int64_t amount) {
  if (amount <= 0) return;
  obs::MetricsRegistry* metrics = options_.service.observer.metrics;
  if (metrics != nullptr) metrics->GetCounter(name)->Increment(amount);
}

std::future<service::QueryResult> FleetFrontDoor::AnswerUnowned(
    graph::VertexId source) {
  std::promise<service::QueryResult> promise;
  std::future<service::QueryResult> future = promise.get_future();
  service::QueryResult result;
  result.source = source;
  obs::MetricsRegistry* metrics = options_.service.observer.metrics;
  if (static_cast<int64_t>(source) >= graph_->vertex_count()) {
    result.status = Status::OutOfRange("source vertex outside graph");
  } else if (options_.cpu_fallback) {
    // Every shard is gone; degrade to the sequential CPU reference path —
    // the same depths a shard would have produced, minus the performance
    // contract.
    result.depths = baselines::ReferenceDepthsU8(
        *graph_, source, options_.service.engine.traversal.max_level);
    result.depth_checksum = Fnv1a(result.depths);
    for (uint8_t d : result.depths) {
      if (d != kUnvisitedDepth) ++result.reached;
    }
    if (!options_.service.keep_depths) result.depths.clear();
    result.degraded = true;
    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++fallback_answers_;
    }
    if (metrics != nullptr) {
      metrics->GetCounter("fleet.fallback_answers")->Increment();
    }
  } else {
    result.status = Status::Unavailable("fleet has no live shards");
  }
  promise.set_value(std::move(result));
  return future;
}

std::future<service::QueryResult> FleetFrontDoor::SubmitRouted(
    graph::VertexId source, int* shard_out) {
  const uint64_t key = static_cast<uint64_t>(source);
  std::future<service::QueryResult> primary_future;
  HedgeContext ctx;
  {
    std::shared_lock<std::shared_mutex> route_lock(route_mu_);
    std::vector<int> replicas =
        ring_.ReplicasFor(key, std::max(1, options_.replication));
    if (replicas.empty()) {
      route_lock.unlock();
      if (shard_out != nullptr) *shard_out = -1;
      return AnswerUnowned(source);
    }
    const int shard = replicas[0];
    const int home = full_ring_.ShardFor(key);
    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++routed_[static_cast<size_t>(shard)];
      if (shard != home) ++failover_reroutes_;
    }
    obs::MetricsRegistry* metrics = options_.service.observer.metrics;
    if (metrics != nullptr) {
      metrics->GetCounter("fleet.routed")->Increment();
      if (shard != home) metrics->GetCounter("fleet.failovers")->Increment();
    }
    if (shard_out != nullptr) *shard_out = shard;
    // Submitted under the shared route lock: KillShard only drains a shard
    // after taking the unique lock, so a shard picked off the ring here is
    // still accepting (and a post-shutdown race inside BfsService resolves
    // the future with FailedPrecondition rather than dropping it).
    primary_future = shards_[static_cast<size_t>(shard)]->Submit(source);
    if (replicas.size() >= 2) {
      ctx.source = source;
      ctx.primary = shards_[static_cast<size_t>(shard)].get();
      ctx.hedge = shards_[static_cast<size_t>(replicas[1])].get();
      ctx.primary_shard = shard;
      ctx.hedge_shard = replicas[1];
      ctx.replicas = std::move(replicas);
      // A degraded or breaker-dead primary does not get the benefit of the
      // doubt: the hedge fires with the primary, not after it stalls.
      ctx.fire_immediately =
          health_[static_cast<size_t>(shard)] == ShardHealth::kDegraded ||
          ctx.primary->BreakersOpen();
      ctx.delay_ms =
          options_.hedge_delay_ms >= 0.0
              ? options_.hedge_delay_ms
              : std::max(options_.hedge_min_delay_ms,
                         options_.hedge_p50_multiplier *
                             ctx.primary->LivePercentileMs(0.50));
    }
  }
  if (ctx.hedge == nullptr) return primary_future;
  ThreadPool* pool = nullptr;
  {
    std::lock_guard<std::mutex> shutdown_lock(shutdown_mu_);
    pool = hedge_pool_.get();
  }
  // Draining (or a single-shard ring): no hedging, the primary's answer is
  // the answer.
  if (pool == nullptr) return primary_future;
  auto client = std::make_shared<std::promise<service::QueryResult>>();
  std::future<service::QueryResult> wrapped = client->get_future();
  auto pending = std::make_shared<std::future<service::QueryResult>>(
      std::move(primary_future));
  pool->Submit([this, ctx, pending, client]() mutable {
    RunHedged(std::move(ctx), std::move(*pending), std::move(client));
  });
  return wrapped;
}

void FleetFrontDoor::RunHedged(
    HedgeContext ctx, std::future<service::QueryResult> primary_future,
    std::shared_ptr<std::promise<service::QueryResult>> client) {
  using Clock = std::chrono::steady_clock;
  using Leg = HedgeStateMachine::Leg;
  using Action = HedgeStateMachine::Action;
  const auto start = Clock::now();
  HedgeStateMachine machine(ctx.delay_ms, ctx.fire_immediately);
  std::future<service::QueryResult> hedge_future;
  std::optional<service::QueryResult> primary_res;
  std::optional<service::QueryResult> hedge_res;
  const auto poll = [](std::future<service::QueryResult>& future,
                       std::optional<service::QueryResult>& slot) {
    if (!slot && future.valid() &&
        future.wait_for(std::chrono::seconds(0)) ==
            std::future_status::ready) {
      slot = future.get();
    }
  };
  const auto leg = [](const std::optional<service::QueryResult>& slot) {
    if (!slot) return Leg::kPending;
    return slot->status.ok() ? Leg::kOk : Leg::kError;
  };
  constexpr auto kPoll = std::chrono::microseconds(200);
  service::QueryResult winner;
  bool winner_is_hedge = false;
  for (;;) {
    poll(primary_future, primary_res);
    if (machine.hedge_fired()) poll(hedge_future, hedge_res);
    const double now_ms =
        std::chrono::duration<double, std::milli>(Clock::now() - start)
            .count();
    const Action action = machine.Step(
        now_ms, leg(primary_res),
        machine.hedge_fired() ? leg(hedge_res) : Leg::kPending);
    if (action == Action::kServePrimary) {
      winner = *primary_res;
      winner_is_hedge = false;
      break;
    }
    if (action == Action::kServeHedge) {
      winner = *hedge_res;
      winner_is_hedge = true;
      break;
    }
    if (action == Action::kFireHedge) {
      hedge_future = ctx.hedge->Submit(ctx.source);
      {
        std::lock_guard<std::mutex> lock(stats_mu_);
        ++hedges_fired_;
      }
      BumpCounter("fleet.hedges_fired");
      continue;
    }
    // kWait: park on whichever leg is pending; before the hedge fires the
    // nap is capped by the remaining delay so the fire is timely.
    auto nap = std::chrono::duration_cast<std::chrono::microseconds>(kPoll);
    if (!machine.hedge_fired()) {
      const double remaining_ms = ctx.delay_ms - now_ms;
      const auto until_fire = std::chrono::microseconds(
          static_cast<int64_t>(std::max(0.0, remaining_ms) * 1000.0) + 1);
      nap = std::min(nap, until_fire);
    }
    if (!primary_res && primary_future.valid()) {
      primary_future.wait_for(nap);
    } else if (machine.hedge_fired() && !hedge_res && hedge_future.valid()) {
      hedge_future.wait_for(nap);
    } else {
      std::this_thread::sleep_for(nap);
    }
  }
  // Serve the winner before settling the loser: the client should never
  // pay for the slower replica.
  client->set_value(winner);
  if (winner_is_hedge) {
    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++hedges_won_;
    }
    BumpCounter("fleet.hedges_won");
  }
  if (machine.hedge_fired()) {
    std::future<service::QueryResult>& loser_future =
        winner_is_hedge ? primary_future : hedge_future;
    std::optional<service::QueryResult>& loser_res =
        winner_is_hedge ? primary_res : hedge_res;
    if (!loser_res && loser_future.valid()) loser_res = loser_future.get();
    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++hedges_cancelled_;
    }
    BumpCounter("fleet.hedges_cancelled");
    if (loser_res && loser_res->status.ok() && winner.status.ok() &&
        loser_res->depth_checksum != winner.depth_checksum) {
      // Two self-consistent answers disagree: one replica is lying and the
      // front door cannot adjudicate without a third vote, so the source
      // is quarantined out of both replicas' caches (forcing fresh
      // recomputation on the next read) and the disagreement is counted.
      ctx.primary->EvictCacheEntry(ctx.source);
      ctx.hedge->EvictCacheEntry(ctx.source);
      {
        std::lock_guard<std::mutex> lock(stats_mu_);
        ++replica_mismatches_;
      }
      BumpCounter("fleet.replica_mismatches");
      IBFS_LOG(Warning) << "replica checksum mismatch for source "
                        << ctx.source << " between shards "
                        << ctx.primary_shard << " and " << ctx.hedge_shard;
      return;  // do not fan a disputed answer out to more replicas
    }
  }
  if (winner.status.ok()) {
    FanOutCacheEntry(ctx, winner_is_hedge ? ctx.hedge_shard
                                          : ctx.primary_shard);
  }
}

void FleetFrontDoor::FanOutCacheEntry(const HedgeContext& ctx,
                                      int winner_shard) {
  service::BfsService* winner =
      winner_shard == ctx.primary_shard ? ctx.primary : ctx.hedge;
  const std::optional<service::CachedDepths> entry =
      winner->PeekCache(ctx.source);
  if (!entry) return;  // caching disabled or already evicted
  std::vector<service::BfsService*> targets;
  {
    std::shared_lock<std::shared_mutex> route_lock(route_mu_);
    for (int replica : ctx.replicas) {
      if (replica == winner_shard) continue;
      const size_t s = static_cast<size_t>(replica);
      if (s >= shards_.size() || health_[s] == ShardHealth::kDown) continue;
      targets.push_back(shards_[s].get());
    }
  }
  int64_t writes = 0;
  for (service::BfsService* target : targets) {
    if (target->WarmCache(ctx.source, *entry)) ++writes;
  }
  if (writes > 0) {
    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      replica_cache_writes_ += writes;
    }
    BumpCounter("fleet.replica_cache_writes", writes);
  }
}

std::future<service::QueryResult> FleetFrontDoor::Submit(
    graph::VertexId source) {
  return SubmitRouted(source, nullptr);
}

MultiQueryResult FleetFrontDoor::Gather(
    std::vector<std::future<service::QueryResult>> futures,
    int shards_touched) {
  MultiQueryResult multi;
  multi.shards_touched = shards_touched;
  multi.results.reserve(futures.size());
  uint64_t combined = kFnv1aOffsetBasis;
  for (std::future<service::QueryResult>& future : futures) {
    service::QueryResult result = future.get();
    combined =
        FoldChecksum(combined, result.status.ok() ? result.depth_checksum
                                                  : 0);
    if (multi.status.ok() && !result.status.ok()) {
      multi.status = result.status;
    }
    multi.results.push_back(std::move(result));
  }
  multi.combined_checksum = combined;
  return multi;
}

MultiQueryResult FleetFrontDoor::MultiQuery(
    const std::vector<graph::VertexId>& sources) {
  return SubmitMulti(sources).get();
}

std::future<MultiQueryResult> FleetFrontDoor::SubmitMulti(
    std::vector<graph::VertexId> sources) {
  // Scatter now — routing reflects the ring at submit time — and gather
  // on the internal pool so the caller's thread never blocks on shard
  // execution.
  std::vector<std::future<service::QueryResult>> futures;
  futures.reserve(sources.size());
  std::vector<int> touched;
  for (graph::VertexId source : sources) {
    int shard = -1;
    futures.push_back(SubmitRouted(source, &shard));
    if (shard >= 0) touched.push_back(shard);
  }
  std::sort(touched.begin(), touched.end());
  touched.erase(std::unique(touched.begin(), touched.end()), touched.end());
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++multi_queries_;
    multi_sources_ += static_cast<int64_t>(sources.size());
  }
  obs::MetricsRegistry* metrics = options_.service.observer.metrics;
  if (metrics != nullptr) {
    metrics->GetCounter("fleet.scatter_queries")->Increment();
    metrics->GetHistogram("fleet.scatter_fanout", FanoutBounds())
        ->Observe(static_cast<double>(touched.size()));
  }
  auto promise = std::make_shared<std::promise<MultiQueryResult>>();
  std::future<MultiQueryResult> future = promise->get_future();
  const int fanout = static_cast<int>(touched.size());
  ThreadPool* pool = nullptr;
  {
    std::lock_guard<std::mutex> shutdown_lock(shutdown_mu_);
    pool = gather_pool_.get();
    if (pool == nullptr) {
      // Fleet already drained: every shard future is ready, so gathering
      // inline is instant.
      promise->set_value(Gather(std::move(futures), fanout));
      return future;
    }
    auto pending = std::make_shared<
        std::vector<std::future<service::QueryResult>>>(std::move(futures));
    pool->Submit([this, promise, pending, fanout] {
      promise->set_value(Gather(std::move(*pending), fanout));
    });
  }
  return future;
}

bool FleetFrontDoor::KillShard(int shard) {
  service::BfsService* victim = nullptr;
  {
    std::unique_lock<std::shared_mutex> route_lock(route_mu_);
    if (shard < 0 || static_cast<size_t>(shard) >= shards_.size() ||
        health_[static_cast<size_t>(shard)] == ShardHealth::kDown) {
      return false;
    }
    health_[static_cast<size_t>(shard)] = ShardHealth::kDown;
    ring_.Remove(shard);
    victim = shards_[static_cast<size_t>(shard)].get();
  }
  PublishHealthGauges();
  // Drain outside the route lock: new submits already route around the
  // shard, and Shutdown resolves every future it still holds.
  victim->Shutdown();
  return true;
}

Result<int> FleetFrontDoor::AddShard(int weight) {
  if (weight < 1) {
    return Status::InvalidArgument("shard weight must be >= 1");
  }
  {
    std::lock_guard<std::mutex> shutdown_lock(shutdown_mu_);
    if (joined_) {
      return Status::FailedPrecondition("fleet is shut down");
    }
  }
  // Build the service outside the route lock — shard spin-up is the
  // expensive part of a join and must not stall the submit path.
  auto created = service::BfsService::Create(graph_, options_.service);
  IBFS_RETURN_NOT_OK(created.status());
  int id = -1;
  service::BfsService* fresh = nullptr;
  std::vector<service::BfsService*> donors;
  {
    std::unique_lock<std::shared_mutex> route_lock(route_mu_);
    id = static_cast<int>(shards_.size());
    shards_.push_back(std::move(created).value());
    fresh = shards_.back().get();
    health_.push_back(ShardHealth::kHealthy);
    probe_base_.push_back(ProbeBaseline{});
    {
      // routed_ must cover the new id before any submit can route to it.
      std::lock_guard<std::mutex> stats_lock(stats_mu_);
      routed_.push_back(0);
      ++shard_joins_;
    }
    ring_.Add(id, weight);
    full_ring_.Add(id, weight);
    for (size_t s = 0; s + 1 < shards_.size(); ++s) {
      if (health_[s] != ShardHealth::kDown) donors.push_back(shards_[s].get());
    }
  }
  BumpCounter("fleet.shard_joins");
  // Targeted warmup of the stolen segment, outside the locks: replay the
  // donors' cached sources (most-recently-used first — the hottest ones)
  // that now route to the new shard. A source warmed here misses the fleet
  // cache zero times after the join; anything else at most once. Queries
  // racing ahead of the warmup just compute and Put the same bytes.
  int64_t warmed = 0;
  for (service::BfsService* donor : donors) {
    if (warmed >= options_.warmup_limit) break;
    for (graph::VertexId source : donor->CachedSources()) {
      if (warmed >= options_.warmup_limit) break;
      if (OwnerShard(source) != id) continue;
      const std::optional<service::CachedDepths> entry =
          donor->PeekCache(source);
      if (entry && fresh->WarmCache(source, *entry)) ++warmed;
    }
  }
  if (warmed > 0) {
    std::lock_guard<std::mutex> lock(stats_mu_);
    warmup_entries_ += warmed;
  }
  BumpCounter("fleet.warmup_entries", warmed);
  PublishHealthGauges();
  IBFS_LOG(Info) << "fleet shard " << id << " joined at weight " << weight
                 << ", warmed " << warmed << " cache entries";
  return id;
}

int FleetFrontDoor::CheckHealth() {
  int transitions = 0;
  int recovered = 0;
  size_t count = 0;
  {
    std::shared_lock<std::shared_mutex> route_lock(route_mu_);
    count = shards_.size();
  }
  for (size_t s = 0; s < count; ++s) {
    ShardHealth current;
    ProbeBaseline base;
    service::BfsService* svc = nullptr;
    {
      std::shared_lock<std::shared_mutex> route_lock(route_mu_);
      current = health_[s];
      base = probe_base_[s];
      svc = shards_[s].get();
    }
    if (current == ShardHealth::kDown) continue;
    const service::BfsService::Stats stats = svc->stats();
    const service::CacheStats cache = svc->cache_stats();
    const int64_t failed_delta = stats.failed - base.failed;
    const int64_t answered_delta =
        (stats.completed - base.completed) + failed_delta;
    if (current == ShardHealth::kHealthy) {
      const bool error_rate_bad =
          answered_delta >= options_.min_health_samples &&
          static_cast<double>(failed_delta) >
              options_.error_rate_threshold *
                  static_cast<double>(answered_delta);
      // Resilience signals from PR-4: newly opened circuit breakers,
      // quarantined cache entries, and CPU-fallback groups all mean the
      // shard is answering (correctly) with a reduced machine under it.
      const bool resilience_degraded =
          stats.breaker_opened > base.breaker_opened ||
          cache.quarantined > base.quarantined ||
          stats.fallback_groups > base.fallback_groups;
      if (error_rate_bad || resilience_degraded) {
        std::unique_lock<std::shared_mutex> route_lock(route_mu_);
        if (health_[s] == ShardHealth::kHealthy) {
          health_[s] = ShardHealth::kDegraded;
          // Snapshot the cumulative counters at degrade time: recovery
          // requires the window to clear with nothing new past this mark.
          probe_base_[s] = ProbeBaseline{stats.completed, stats.failed,
                                         stats.breaker_opened,
                                         cache.quarantined,
                                         stats.fallback_groups};
          ++transitions;
        }
      }
    } else {  // kDegraded: re-probe for recovery
      // Recover once (a) the rolling live error window is clean, (b) no
      // new breaker/quarantine/fallback signals landed since the degrade,
      // and (c) failures since the degrade stayed within the recovery
      // rate (covering failures — e.g. front-door rejects — that never
      // enter the live window).
      const bool window_clean =
          svc->LiveErrorRatio() <= options_.recovery_error_rate;
      const bool signals_quiet =
          stats.breaker_opened == base.breaker_opened &&
          cache.quarantined == base.quarantined &&
          stats.fallback_groups == base.fallback_groups;
      const bool failures_quiet =
          answered_delta == 0
              ? failed_delta == 0
              : static_cast<double>(failed_delta) <=
                    options_.recovery_error_rate *
                        static_cast<double>(answered_delta);
      if (window_clean && signals_quiet && failures_quiet) {
        std::unique_lock<std::shared_mutex> route_lock(route_mu_);
        if (health_[s] == ShardHealth::kDegraded) {
          health_[s] = ShardHealth::kHealthy;
          // Forgive the burst: future degrade probes measure from here.
          probe_base_[s] = ProbeBaseline{stats.completed, stats.failed,
                                         stats.breaker_opened,
                                         cache.quarantined,
                                         stats.fallback_groups};
          ++transitions;
          ++recovered;
        }
      }
    }
  }
  if (recovered > 0) {
    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      recoveries_ += recovered;
    }
    BumpCounter("fleet.recoveries", recovered);
  }
  if (transitions > 0) PublishHealthGauges();
  return transitions;
}

int FleetFrontDoor::Rebalance() {
  struct Row {
    int shard = 0;
    double p99 = 0.0;
  };
  std::vector<Row> rows;
  {
    std::shared_lock<std::shared_mutex> route_lock(route_mu_);
    for (size_t s = 0; s < shards_.size(); ++s) {
      if (health_[s] == ShardHealth::kDown) continue;
      service::BfsService* svc = shards_[s].get();
      // A shard without enough live samples has no measurable tail; leave
      // its weight alone rather than steering on noise.
      if (svc->LiveWindowCount() < options_.min_health_samples) continue;
      rows.push_back({static_cast<int>(s), svc->LivePercentileMs(0.99)});
    }
  }
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++rebalance_runs_;
  }
  BumpCounter("fleet.rebalance_runs");
  if (rows.size() < 2) return 0;
  double mean = 0.0;
  for (const Row& row : rows) mean += row.p99;
  mean /= static_cast<double>(rows.size());
  if (mean <= 0.0) return 0;
  int changes = 0;
  {
    std::unique_lock<std::shared_mutex> route_lock(route_mu_);
    for (const Row& row : rows) {
      if (health_[static_cast<size_t>(row.shard)] == ShardHealth::kDown) {
        continue;  // killed between the read and this pass
      }
      const int w = ring_.weight(row.shard);
      if (w < 1) continue;
      int target = w;
      // Hysteresis band [mean/h, mean*h]: only act on clear outliers, one
      // bounded step per pass, so the ring never thrashes.
      if (row.p99 > options_.rebalance_hysteresis * mean) {
        target = std::max(1, w - 1);
      } else if (row.p99 * options_.rebalance_hysteresis < mean) {
        target = std::min(options_.rebalance_max_weight, w + 1);
      }
      if (target != w) {
        ring_.SetWeight(row.shard, target);
        full_ring_.SetWeight(row.shard, target);
        ++changes;
      }
    }
  }
  if (changes > 0) {
    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      weight_changes_ += changes;
    }
    BumpCounter("fleet.weight_changes", changes);
    PublishHealthGauges();
  }
  return changes;
}

void FleetFrontDoor::RebalancerLoop() {
  const auto interval =
      std::chrono::duration<double>(options_.rebalance_interval_s);
  std::unique_lock<std::mutex> lock(rebalance_mu_);
  while (!stop_rebalancer_) {
    if (rebalance_cv_.wait_for(lock, interval,
                               [this] { return stop_rebalancer_; })) {
      break;
    }
    lock.unlock();
    CheckHealth();
    Rebalance();
    lock.lock();
  }
}

int FleetFrontDoor::OwnerShard(graph::VertexId source) const {
  std::shared_lock<std::shared_mutex> route_lock(route_mu_);
  return ring_.ShardFor(static_cast<uint64_t>(source));
}

int FleetFrontDoor::HomeShard(graph::VertexId source) const {
  std::shared_lock<std::shared_mutex> route_lock(route_mu_);
  return full_ring_.ShardFor(static_cast<uint64_t>(source));
}

std::vector<int> FleetFrontDoor::ReplicaSet(graph::VertexId source) const {
  std::shared_lock<std::shared_mutex> route_lock(route_mu_);
  return ring_.ReplicasFor(static_cast<uint64_t>(source),
                           std::max(1, options_.replication));
}

ShardHealth FleetFrontDoor::shard_health(int shard) const {
  std::shared_lock<std::shared_mutex> route_lock(route_mu_);
  IBFS_CHECK(shard >= 0 && static_cast<size_t>(shard) < health_.size());
  return health_[static_cast<size_t>(shard)];
}

int FleetFrontDoor::shard_count() const {
  std::shared_lock<std::shared_mutex> route_lock(route_mu_);
  return static_cast<int>(shards_.size());
}

int FleetFrontDoor::ShardWeight(int shard) const {
  std::shared_lock<std::shared_mutex> route_lock(route_mu_);
  return ring_.weight(shard);
}

service::BfsService* FleetFrontDoor::shard_for_test(int shard) {
  std::shared_lock<std::shared_mutex> route_lock(route_mu_);
  return shards_[static_cast<size_t>(shard)].get();
}

void FleetFrontDoor::PublishHealthGauges() {
  obs::MetricsRegistry* metrics = options_.service.observer.metrics;
  if (metrics == nullptr) return;
  int healthy = 0;
  int degraded = 0;
  int down = 0;
  size_t total = 0;
  {
    std::shared_lock<std::shared_mutex> route_lock(route_mu_);
    total = shards_.size();
    for (ShardHealth h : health_) {
      switch (h) {
        case ShardHealth::kHealthy:
          ++healthy;
          break;
        case ShardHealth::kDegraded:
          ++degraded;
          break;
        case ShardHealth::kDown:
          ++down;
          break;
      }
    }
  }
  metrics->GetGauge("fleet.shards")->Set(static_cast<double>(total));
  metrics->GetGauge("fleet.shards_healthy")->Set(healthy);
  metrics->GetGauge("fleet.shards_degraded")->Set(degraded);
  metrics->GetGauge("fleet.shards_down")->Set(down);
  metrics->GetGauge("fleet.imbalance")->Set(stats().Imbalance());
}

FleetStats FleetFrontDoor::stats() const {
  FleetStats fleet;
  fleet.replication = options_.replication;
  std::vector<service::BfsService*> services;
  {
    std::shared_lock<std::shared_mutex> route_lock(route_mu_);
    services.reserve(shards_.size());
    for (const auto& shard : shards_) services.push_back(shard.get());
    fleet.health = health_;
    fleet.weight.reserve(shards_.size());
    fleet.weight_share.reserve(shards_.size());
    for (size_t s = 0; s < shards_.size(); ++s) {
      fleet.weight.push_back(ring_.weight(static_cast<int>(s)));
      fleet.weight_share.push_back(ring_.WeightShare(static_cast<int>(s)));
    }
  }
  fleet.shard.reserve(services.size());
  for (service::BfsService* svc : services) {
    fleet.shard.push_back(svc->stats());
    fleet.totals.Add(fleet.shard.back());
  }
  for (ShardHealth h : fleet.health) {
    switch (h) {
      case ShardHealth::kHealthy:
        ++fleet.healthy;
        break;
      case ShardHealth::kDegraded:
        ++fleet.degraded;
        break;
      case ShardHealth::kDown:
        ++fleet.down;
        break;
    }
  }
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    fleet.routed = routed_;
    fleet.failover_reroutes = failover_reroutes_;
    fleet.fallback_answers = fallback_answers_;
    fleet.multi_queries = multi_queries_;
    fleet.multi_sources = multi_sources_;
    fleet.shard_joins = shard_joins_;
    fleet.warmup_entries = warmup_entries_;
    fleet.hedges_fired = hedges_fired_;
    fleet.hedges_won = hedges_won_;
    fleet.hedges_cancelled = hedges_cancelled_;
    fleet.replica_mismatches = replica_mismatches_;
    fleet.replica_cache_writes = replica_cache_writes_;
    fleet.recoveries = recoveries_;
    fleet.rebalance_runs = rebalance_runs_;
    fleet.weight_changes = weight_changes_;
  }
  return fleet;
}

void FleetFrontDoor::Shutdown() {
  std::lock_guard<std::mutex> shutdown_lock(shutdown_mu_);
  if (joined_) return;
  {
    std::lock_guard<std::mutex> lock(rebalance_mu_);
    stop_rebalancer_ = true;
  }
  rebalance_cv_.notify_all();
  if (rebalancer_.joinable()) rebalancer_.join();
  std::vector<service::BfsService*> services;
  {
    std::shared_lock<std::shared_mutex> route_lock(route_mu_);
    services.reserve(shards_.size());
    for (const auto& shard : shards_) services.push_back(shard.get());
  }
  for (service::BfsService* shard : services) shard->Shutdown();
  // Every shard future is resolved now: hedged wrappers finish their
  // polls immediately, then gather tasks (which wait on the wrapped
  // futures those wrappers resolve) finish too — so the pools must drain
  // in this order.
  hedge_pool_.reset();
  gather_pool_.reset();
  joined_ = true;
}

}  // namespace ibfs::fleet
