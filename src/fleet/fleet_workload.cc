#include "fleet/fleet_workload.h"

#include <algorithm>
#include <chrono>
#include <thread>
#include <unordered_map>
#include <utility>

#include "baselines/reference_bfs.h"
#include "core/engine.h"
#include "obs/metrics.h"
#include "util/checksum.h"

namespace ibfs::fleet {
namespace {

using Clock = std::chrono::steady_clock;

/// How long the drain waits on one future before declaring it unanswered.
/// The fleet's contract makes every future resolve during Shutdown, so
/// this only fires on a genuine availability bug.
constexpr std::chrono::seconds kDrainTimeout{60};

}  // namespace

Status FleetWorkloadOptions::Validate() const {
  IBFS_RETURN_NOT_OK(workload.Validate());
  if (multi_source < 1) {
    return Status::InvalidArgument("multi_source must be >= 1");
  }
  if (kill_shard < -1) {
    return Status::InvalidArgument("kill_shard must be >= -1");
  }
  if (join_shards < 0) {
    return Status::InvalidArgument("join_shards must be >= 0");
  }
  if (join_weight < 1) {
    return Status::InvalidArgument("join_weight must be >= 1");
  }
  return Status::OK();
}

Result<FleetDriveResult> DriveFleet(
    FleetFrontDoor* fleet, std::span<const service::WorkloadEvent> events,
    const FleetWorkloadOptions& options) {
  if (fleet == nullptr) {
    return Status::InvalidArgument("no fleet to drive");
  }
  if (events.empty()) {
    return Status::InvalidArgument("no workload events");
  }
  IBFS_RETURN_NOT_OK(options.Validate());
  if (options.kill_shard >= fleet->options().shards) {
    return Status::InvalidArgument("kill_shard outside the fleet");
  }

  bool kill_pending = options.kill_shard >= 0;
  const double kill_at_s = options.kill_at_s >= 0.0
                               ? options.kill_at_s
                               : events.back().at_s * 0.5;
  int joins_pending = options.join_shards;
  const double join_at_s = options.join_at_s >= 0.0
                               ? options.join_at_s
                               : events.back().at_s * 0.75;
  const auto run_joins = [&] {
    while (joins_pending > 0) {
      // A join failure (shard spin-up error) must not abort the drive —
      // elasticity is best-effort while traffic keeps flowing.
      if (!fleet->AddShard(options.join_weight).ok()) break;
      --joins_pending;
    }
  };

  const size_t bundle = static_cast<size_t>(options.multi_source);
  std::vector<std::future<service::QueryResult>> singles;
  std::vector<std::future<MultiQueryResult>> multis;
  std::vector<size_t> multi_sizes;
  const auto start = Clock::now();
  for (size_t i = 0; i < events.size();) {
    const service::WorkloadEvent& event = events[i];
    if (kill_pending && event.at_s >= kill_at_s) {
      fleet->KillShard(options.kill_shard);
      kill_pending = false;
    }
    if (joins_pending > 0 && event.at_s >= join_at_s) run_joins();
    // Open loop: hold to the schedule even if the fleet is behind.
    std::this_thread::sleep_until(
        start + std::chrono::duration_cast<Clock::duration>(
                    std::chrono::duration<double>(event.at_s)));
    if (bundle <= 1) {
      singles.push_back(fleet->Submit(event.source));
      ++i;
    } else {
      // A scatter bundle takes the next `multi_source` arrivals at the
      // first one's time — the queried source multiset matches the
      // single-source drive exactly.
      const size_t take = std::min(bundle, events.size() - i);
      std::vector<graph::VertexId> sources;
      sources.reserve(take);
      for (size_t k = 0; k < take; ++k) {
        sources.push_back(events[i + k].source);
      }
      multis.push_back(fleet->SubmitMulti(std::move(sources)));
      multi_sizes.push_back(take);
      i += take;
    }
  }
  if (kill_pending) fleet->KillShard(options.kill_shard);
  run_joins();
  // Probe health while the survivors are still serving (post-shutdown
  // error counts would pollute the probe); the marks persist into the
  // final snapshot below.
  fleet->CheckHealth();
  FleetDriveResult drive;
  fleet->Shutdown();
  const double wall_seconds =
      std::chrono::duration<double>(Clock::now() - start).count();

  drive.results.reserve(events.size());
  drive.multi_queries = static_cast<int64_t>(multis.size());
  auto drain_single = [&](std::future<service::QueryResult>& future) {
    if (future.wait_for(kDrainTimeout) != std::future_status::ready) {
      ++drive.unanswered;
      service::QueryResult lost;
      lost.status = Status::Internal("future never resolved");
      drive.results.push_back(std::move(lost));
      return;
    }
    drive.results.push_back(future.get());
  };
  if (bundle <= 1) {
    for (auto& future : singles) drain_single(future);
  } else {
    for (size_t m = 0; m < multis.size(); ++m) {
      if (multis[m].wait_for(kDrainTimeout) != std::future_status::ready) {
        drive.unanswered += static_cast<int64_t>(multi_sizes[m]);
        for (size_t k = 0; k < multi_sizes[m]; ++k) {
          service::QueryResult lost;
          lost.status = Status::Internal("future never resolved");
          drive.results.push_back(std::move(lost));
        }
        continue;
      }
      MultiQueryResult multi = multis[m].get();
      for (service::QueryResult& result : multi.results) {
        drive.results.push_back(std::move(result));
      }
    }
  }

  uint64_t checksum = kFnv1aOffsetBasis;
  int64_t completed = 0;
  for (const service::QueryResult& result : drive.results) {
    if (!result.status.ok()) continue;
    checksum = FoldChecksum(checksum, result.depth_checksum);
    ++completed;
  }
  drive.checksum = checksum;
  drive.wall_seconds = wall_seconds;
  drive.achieved_qps =
      wall_seconds > 0.0 ? static_cast<double>(completed) / wall_seconds
                         : 0.0;
  // Snapshot after the drain: Shutdown resolved every future, and each
  // shard accounts before completing, so the per-shard counters are final.
  drive.stats = fleet->stats();
  return drive;
}

obs::FleetReport BuildFleetReport(const std::string& graph_name,
                                  const graph::Csr& graph,
                                  const FleetOptions& fleet_options,
                                  const FleetWorkloadOptions& workload,
                                  const FleetDriveResult& drive) {
  obs::FleetReport report;
  report.graph = graph_name;
  report.vertex_count = graph.vertex_count();
  report.edge_count = graph.edge_count();
  report.strategy = StrategyName(fleet_options.service.engine.strategy);
  report.grouping =
      GroupingPolicyName(fleet_options.service.engine.grouping);
  report.shards = fleet_options.shards;
  report.vnodes = fleet_options.vnodes;
  report.ring_seed = static_cast<int64_t>(fleet_options.ring_seed);

  report.arrival = service::ArrivalProcessName(workload.workload.arrival);
  report.offered_qps = workload.workload.qps;
  report.duration_seconds = workload.workload.duration_s;
  report.queries = static_cast<int64_t>(drive.results.size());
  report.multi_source = workload.multi_source;
  report.multi_queries = drive.multi_queries;
  report.killed_shard = workload.kill_shard;

  const FleetStats& stats = drive.stats;
  report.joined_shards = stats.shard_joins;
  report.replication = stats.replication;
  report.shard_joins = stats.shard_joins;
  report.warmup_entries = stats.warmup_entries;
  report.hedges_fired = stats.hedges_fired;
  report.hedges_won = stats.hedges_won;
  report.hedges_cancelled = stats.hedges_cancelled;
  report.replica_mismatches = stats.replica_mismatches;
  report.replica_cache_writes = stats.replica_cache_writes;
  report.recoveries = stats.recoveries;
  report.rebalance_runs = stats.rebalance_runs;
  report.weight_changes = stats.weight_changes;
  for (size_t s = 0; s < stats.shard.size(); ++s) {
    obs::FleetReportShard row;
    row.shard = static_cast<int>(s);
    row.health = ShardHealthName(s < stats.health.size()
                                     ? stats.health[s]
                                     : ShardHealth::kHealthy);
    row.weight = s < stats.weight.size() ? stats.weight[s] : 0;
    row.routed = s < stats.routed.size() ? stats.routed[s] : 0;
    row.queries = stats.shard[s].queries;
    row.completed = stats.shard[s].completed;
    row.failed = stats.shard[s].failed;
    row.degraded = stats.shard[s].degraded;
    row.cache_hits = stats.shard[s].cache_hits;
    row.batches = stats.shard[s].batches;
    row.groups = stats.shard[s].groups;
    row.sim_seconds = stats.shard[s].sim_seconds;
    report.shard_rows.push_back(std::move(row));
  }

  report.completed = stats.totals.completed;
  report.failed = stats.totals.failed;
  report.achieved_qps = drive.achieved_qps;
  report.wall_seconds = drive.wall_seconds;
  report.imbalance = stats.Imbalance();
  report.failover_reroutes = stats.failover_reroutes;
  report.fallback_answers = stats.fallback_answers;
  report.healthy = stats.healthy;
  report.degraded = stats.degraded;
  report.down = stats.down;

  report.checksum = drive.checksum;
  report.unanswered = drive.unanswered;

  const std::vector<double> bounds = obs::PowerOfTwoBounds(0.001, 32);
  obs::Histogram total("total_ms", bounds);
  for (const service::QueryResult& result : drive.results) {
    if (!result.status.ok()) continue;
    total.Observe(result.latency.total_ms);
  }
  report.total_ms.p50 = total.Percentile(0.50);
  report.total_ms.p95 = total.Percentile(0.95);
  report.total_ms.p99 = total.Percentile(0.99);
  report.total_ms.mean = total.Mean();
  report.total_ms.max = total.max();
  return report;
}

Result<obs::FleetReport> RunFleetChaos(
    const std::string& graph_name, const graph::Csr& graph,
    const FleetOptions& fleet_options,
    const FleetWorkloadOptions& workload) {
  IBFS_RETURN_NOT_OK(fleet_options.Validate());
  IBFS_RETURN_NOT_OK(workload.Validate());
  Result<std::vector<service::WorkloadEvent>> events =
      service::GenerateArrivals(graph, workload.workload);
  if (!events.ok()) return events.status();

  // Fault-free baseline: BFS depths are unique per source, so whatever
  // path the fleet takes to an OK answer — home shard, failover survivor,
  // survivor cache, or the front door's CPU fallback — its depth checksum
  // must equal the sequential reference's.
  std::vector<graph::VertexId> sources;
  sources.reserve(events.value().size());
  for (const service::WorkloadEvent& event : events.value()) {
    sources.push_back(event.source);
  }
  std::sort(sources.begin(), sources.end());
  sources.erase(std::unique(sources.begin(), sources.end()), sources.end());
  std::unordered_map<graph::VertexId, uint64_t> expected;
  expected.reserve(sources.size());
  for (graph::VertexId source : sources) {
    expected[source] = Fnv1a(baselines::ReferenceDepthsU8(
        graph, source, fleet_options.service.engine.traversal.max_level));
  }

  Result<std::unique_ptr<FleetFrontDoor>> fleet =
      FleetFrontDoor::Create(&graph, fleet_options);
  if (!fleet.ok()) return fleet.status();
  Result<FleetDriveResult> driven =
      DriveFleet(fleet.value().get(), events.value(), workload);
  if (!driven.ok()) return driven.status();
  const FleetDriveResult& drive = driven.value();

  obs::FleetReport report = BuildFleetReport(graph_name, graph,
                                             fleet_options, workload, drive);
  for (const service::QueryResult& result : drive.results) {
    if (!result.status.ok()) continue;
    const auto it = expected.find(result.source);
    if (it == expected.end()) continue;  // unreachable: all sources ran
    ++report.checksums_compared;
    if (result.depth_checksum != it->second) ++report.checksum_mismatches;
  }
  return report;
}

}  // namespace ibfs::fleet
