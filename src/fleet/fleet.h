#ifndef IBFS_FLEET_FLEET_H_
#define IBFS_FLEET_FLEET_H_

#include <condition_variable>
#include <cstdint>
#include <future>
#include <memory>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <string>
#include <thread>
#include <vector>

#include "graph/csr.h"
#include "service/service.h"
#include "util/hash_ring.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace ibfs::fleet {

/// Distributed serving fleet, modeled in-process: N shared-nothing
/// `BfsService` shards — each with its own engine, simulated device fleet,
/// result/plan caches, and telemetry — behind a front door that routes
/// every source over a seeded consistent-hash ring, scatters multi-source
/// queries across the owning shards and gathers them with a
/// bit-deterministic merge, and survives shard loss by rebalancing the dead
/// shard's ring segment to the survivors (optionally answering degraded
/// from the CPU reference path when no shard is left at all). The sharding
/// follows the owner-computes discipline of distributed BFS (Buluç &
/// Madduri's 1D decomposition): a source's owner is a pure function of the
/// ring, so routing needs no coordination.
///
/// The fleet is elastic and redundant (docs/SERVING.md "Elasticity &
/// replication"): AddShard joins a fresh shard with a targeted cache
/// warmup of the segment it steals, replication > 1 routes each source to
/// an ordered replica set with hedged reads against the second replica,
/// and Rebalance adjusts ring weights from live per-shard p99.

/// Front-door view of one shard's health. A degraded shard keeps serving —
/// its answers are still correct — and CheckHealth restores it to healthy
/// once its rolling error window clears; a down shard leaves the ring
/// (AddShard can later grow the fleet back).
enum class ShardHealth {
  kHealthy = 0,
  kDegraded = 1,
  kDown = 2,
};

const char* ShardHealthName(ShardHealth health);

/// Folds one per-source depth checksum into a running FNV-1a state
/// (little-endian byte order, start from kFnv1aOffsetBasis) — the
/// bit-deterministic merge used by scatter-gather and the workload
/// driver's submit-order drive checksum.
uint64_t FoldChecksum(uint64_t state, uint64_t checksum);

/// Configuration of one fleet.
struct FleetOptions {
  /// Initial shard count; each shard is one independent BfsService.
  /// AddShard grows the fleet beyond this at runtime.
  int shards = 4;
  /// Virtual nodes per unit of ring weight (HashRing::Options).
  int vnodes = 128;
  /// Ring placement seed; fleets with equal seeds route identically.
  uint64_t ring_seed = 2016;
  /// Template for every shard's service (engine, batching, resilience,
  /// caching, telemetry). All shards share the same configuration — and
  /// the same metrics registry / sinks when set — so their answers are
  /// interchangeable with a single service's. Joined shards are built
  /// from the same template.
  service::ServiceOptions service;
  /// Health probe: a shard whose failures since its last probe baseline
  /// exceed this fraction of answered queries (with at least
  /// `min_health_samples` answered) is marked degraded by CheckHealth.
  double error_rate_threshold = 0.5;
  int64_t min_health_samples = 16;
  /// When every shard is down, answer from the sequential CPU reference
  /// BFS with QueryResult::degraded set instead of failing Unavailable.
  bool cpu_fallback = true;
  /// Workers gathering SubmitMulti scatter results (>= 1).
  int gather_threads = 2;

  /// Replication factor R: each source routes to an ordered set of R
  /// distinct shards (primary first). At R = 1 reads go straight to the
  /// owner (the PR-8 behavior, zero added overhead); at R > 1 reads hedge
  /// to the second replica and OK answers fan their cache entry out to
  /// the other replicas.
  int replication = 1;
  /// Hedge trigger delay in host ms. Negative = derive per query from the
  /// primary's live p50 (hedge_p50_multiplier * p50, floored at
  /// hedge_min_delay_ms). The hedge fires with no delay at all when the
  /// primary is kDegraded, its breakers are all open, or its leg already
  /// failed.
  double hedge_delay_ms = -1.0;
  double hedge_p50_multiplier = 2.0;
  double hedge_min_delay_ms = 0.2;
  /// Workers running hedged-read wrappers at R > 1 (>= 1). Each in-flight
  /// replicated read occupies one worker until its primary (or hedge)
  /// answers.
  int hedge_threads = 4;

  /// Recovery probe: a degraded shard returns to healthy once its rolling
  /// live error ratio and its failure rate since the degrade snapshot are
  /// both at or below this, with no new breaker/quarantine/fallback
  /// signals since the degrade.
  double recovery_error_rate = 0.05;

  /// Rebalancing controller. 0 disables the periodic thread; Rebalance()
  /// can still be called manually. Each pass moves a shard's ring weight
  /// by at most one step within [1, rebalance_max_weight], and only when
  /// its rolling p99 leaves the [mean/h, mean*h] hysteresis band.
  double rebalance_interval_s = 0.0;
  double rebalance_hysteresis = 1.5;
  int rebalance_max_weight = 4;

  /// Max donor cache entries replayed into a joining shard's cache.
  int64_t warmup_limit = 4096;

  Status Validate() const;
};

/// Fleet-level counters plus a consistent per-shard snapshot, as returned
/// by FleetFrontDoor::stats().
struct FleetStats {
  /// Field-wise sum of every shard's Stats (Stats::Add).
  service::BfsService::Stats totals;
  /// Per-shard snapshots and front-door routing counts, indexed by shard.
  std::vector<service::BfsService::Stats> shard;
  std::vector<int64_t> routed;
  std::vector<ShardHealth> health;
  /// Active ring weight per shard (0 = off the ring) and its share of the
  /// total ring weight (expected fraction of the key space).
  std::vector<int> weight;
  std::vector<double> weight_share;
  /// Queries whose home shard left the ring and were served by a survivor.
  int64_t failover_reroutes = 0;
  /// Queries answered inline from the CPU reference path because no shard
  /// was left on the ring.
  int64_t fallback_answers = 0;
  /// Scatter-gather accounting: MultiQuery/SubmitMulti calls and the
  /// sources they carried.
  int64_t multi_queries = 0;
  int64_t multi_sources = 0;
  /// Elasticity accounting: shards joined, donor cache entries replayed
  /// into joiners, hedged reads fired / won by the hedge / discarded
  /// loser legs, replica checksum disagreements, replica cache fan-out
  /// writes, degraded->healthy recoveries, rebalance passes, and ring
  /// weight adjustments applied.
  int64_t shard_joins = 0;
  int64_t warmup_entries = 0;
  int64_t hedges_fired = 0;
  int64_t hedges_won = 0;
  int64_t hedges_cancelled = 0;
  int64_t replica_mismatches = 0;
  int64_t replica_cache_writes = 0;
  int64_t recoveries = 0;
  int64_t rebalance_runs = 0;
  int64_t weight_changes = 0;
  /// Configured replication factor.
  int replication = 1;
  int healthy = 0;
  int degraded = 0;
  int down = 0;

  /// Worst per-shard ratio of observed load share (routed / total routed)
  /// to ring weight share, over shards that are not down; 0 before any
  /// routing. 1.0 = every shard carries exactly its weighted share, so
  /// weighted fleets don't report false imbalance. When weight shares are
  /// absent (hand-built stats) every live shard is assumed equal-share,
  /// which reduces to max(routed)/mean(routed).
  double Imbalance() const;
};

/// What a scatter-gather query resolves to: per-source results in request
/// order plus a combined checksum that is a pure fold of the per-source
/// depth checksums — identical for any shard count, which is how the tests
/// pin bit-deterministic merge.
struct MultiQueryResult {
  /// OK when every source completed OK; otherwise the first (request
  /// order) non-OK per-source status.
  Status status;
  std::vector<service::QueryResult> results;
  /// FNV-1a fold of results[i].depth_checksum bytes in request order
  /// (OK results only contribute their checksum; failures contribute 0).
  uint64_t combined_checksum = 0;
  /// Distinct shards the scatter touched (0 when everything fell back).
  int shards_touched = 0;
};

/// Pure decision core of one hedged read, driven entirely by an external
/// clock and observed leg states — no timers, threads, or futures — so
/// tests pin the fire/serve/cancel ordering with a fake clock. The
/// enclosing wrapper polls its two futures, translates them to LegStates,
/// and executes whatever action Step returns.
///
/// Policy: the primary is served the moment it answers OK (primary wins
/// ties). The hedge fires once, when the delay expires, immediately when
/// constructed with `fire_immediately`, or the moment the primary leg
/// fails — an error is a stronger signal than a slow p50. An errored leg
/// is never served while the other leg is still pending; only when both
/// legs have failed does the primary's error propagate.
class HedgeStateMachine {
 public:
  /// Observed state of one request leg.
  enum class Leg {
    kPending = 0,  ///< in flight (or, for the hedge, not yet fired)
    kOk = 1,
    kError = 2,
  };
  enum class Action {
    kWait = 0,
    kFireHedge = 1,
    kServePrimary = 2,
    kServeHedge = 3,
  };

  HedgeStateMachine(double delay_ms, bool fire_immediately)
      : delay_ms_(delay_ms), fire_immediately_(fire_immediately) {}

  /// Advances the machine at `now_ms` (ms since the primary was
  /// submitted). Returns kFireHedge exactly once.
  Action Step(double now_ms, Leg primary, Leg hedge) {
    if (primary == Leg::kOk) return Action::kServePrimary;
    if (!fired_) {
      if (fire_immediately_ || primary == Leg::kError ||
          now_ms >= delay_ms_) {
        fired_ = true;
        return Action::kFireHedge;
      }
      return Action::kWait;
    }
    if (hedge == Leg::kOk) return Action::kServeHedge;
    if (primary == Leg::kError && hedge == Leg::kError) {
      return Action::kServePrimary;  // both failed: propagate primary's error
    }
    return Action::kWait;
  }

  bool hedge_fired() const { return fired_; }

 private:
  double delay_ms_;
  bool fire_immediately_;
  bool fired_ = false;
};

/// The scatter-gather front door. Thread-safe: Submit/MultiQuery/
/// SubmitMulti may be called from any number of client threads
/// concurrently with KillShard, AddShard, CheckHealth, and Rebalance.
/// Shutdown (or destruction) drains every shard — no future is ever
/// abandoned.
class FleetFrontDoor {
 public:
  /// Validates options and spins up the shards. The graph must outlive
  /// the fleet.
  static Result<std::unique_ptr<FleetFrontDoor>> Create(
      const graph::Csr* graph, FleetOptions options);

  ~FleetFrontDoor();
  FleetFrontDoor(const FleetFrontDoor&) = delete;
  FleetFrontDoor& operator=(const FleetFrontDoor&) = delete;

  /// Routes one query to the owning shard (at replication > 1, to its
  /// replica set with a hedged read). The future always becomes ready:
  /// from a shard, from the CPU fallback (degraded) when no shard is
  /// left, or with Unavailable when fallback is disabled too.
  std::future<service::QueryResult> Submit(graph::VertexId source);

  /// Blocking scatter-gather over `sources` (request order preserved).
  MultiQueryResult MultiQuery(const std::vector<graph::VertexId>& sources);

  /// Async scatter-gather: scatters inline (routing happens now, against
  /// the current ring), gathers on the internal pool.
  std::future<MultiQueryResult> SubmitMulti(
      std::vector<graph::VertexId> sources);

  /// Removes a shard: marks it down, rebalances its ring segment to the
  /// survivors, then drains it (every in-flight future resolves). Returns
  /// false when the shard id is out of range or already down. A killed
  /// shard id stays retired; capacity comes back via AddShard.
  bool KillShard(int shard);

  /// Elastic join: spins up a fresh shard from the service template,
  /// inserts its virtual nodes into the ring (stealing only the keys that
  /// land on them — minimal disruption), then replays the hottest
  /// remapped sources from the surviving shards' result caches into the
  /// new shard's cache, so a hot source that was cached anywhere misses
  /// the fleet cache zero times after the join and a cold one at most
  /// once. Returns the new shard's id.
  Result<int> AddShard(int weight = 1);

  /// Health probe over every live shard: marks shards degraded when their
  /// failure rate since the last probe baseline (or their resilience
  /// signals) worsen, and restores degraded shards to healthy once their
  /// rolling error window clears with no new signals since the degrade.
  /// Refreshes the fleet.* health gauges. Returns the number of shards
  /// whose health changed.
  int CheckHealth();

  /// One pass of the weighted rebalancing controller: reads every live
  /// shard's rolling p99 and moves ring weight away from shards slower
  /// than rebalance_hysteresis x the fleet mean (and toward faster ones),
  /// one step at a time within [1, rebalance_max_weight]. Shards without
  /// min_health_samples live samples are left alone. Returns the number
  /// of weight changes applied. Runs periodically when
  /// rebalance_interval_s > 0.
  int Rebalance();

  /// The shard currently owning `source` (-1 when the ring is empty).
  int OwnerShard(graph::VertexId source) const;
  /// The shard that would own `source` with every shard up (failure-free
  /// ring including joins), for failover accounting.
  int HomeShard(graph::VertexId source) const;
  /// Ordered replica set `source` routes to under the current ring.
  std::vector<int> ReplicaSet(graph::VertexId source) const;

  ShardHealth shard_health(int shard) const;
  /// Shards ever created (initial + joined), including down ones.
  int shard_count() const;
  /// Active ring weight of a shard (0 when down).
  int ShardWeight(int shard) const;

  /// Consistent fleet-level snapshot: per-shard Stats, their merged
  /// totals, routing counts, health, weights, and elasticity counters.
  FleetStats stats() const;

  /// Test hook: the underlying shard service (observing a down shard is
  /// fine; shards are never destroyed before Shutdown).
  service::BfsService* shard_for_test(int shard);

  /// Drains and joins every shard. Idempotent; called by the destructor.
  void Shutdown();

  const FleetOptions& options() const { return options_; }

 private:
  /// Cumulative-counter snapshot CheckHealth probes against: deltas since
  /// the snapshot decide degradation, equality since it gates recovery.
  struct ProbeBaseline {
    int64_t completed = 0;
    int64_t failed = 0;
    int64_t breaker_opened = 0;
    int64_t quarantined = 0;
    int64_t fallback_groups = 0;
  };

  /// Everything a hedged-read wrapper task needs, captured at route time.
  struct HedgeContext {
    graph::VertexId source = 0;
    service::BfsService* primary = nullptr;
    service::BfsService* hedge = nullptr;
    int primary_shard = -1;
    int hedge_shard = -1;
    std::vector<int> replicas;
    double delay_ms = 0.0;
    bool fire_immediately = false;
  };

  FleetFrontDoor(const graph::Csr* graph, FleetOptions options);

  /// Routing core shared by Submit and the scatter paths. Returns the
  /// future and reports the serving shard via `shard_out` (-1 = answered
  /// by CPU fallback or failed Unavailable).
  std::future<service::QueryResult> SubmitRouted(graph::VertexId source,
                                                 int* shard_out);
  /// Resolves a future inline from the CPU reference BFS (degraded) or
  /// with Unavailable, for sources no shard can own anymore.
  std::future<service::QueryResult> AnswerUnowned(graph::VertexId source);
  /// Body of one hedged read: runs a HedgeStateMachine against the real
  /// clock, serves the winner into `client`, drains and accounts the
  /// loser, quarantines both replicas' cache entries on a checksum
  /// disagreement, and fans the winner's cache entry out to the replicas.
  void RunHedged(HedgeContext ctx,
                 std::future<service::QueryResult> primary_future,
                 std::shared_ptr<std::promise<service::QueryResult>> client);
  /// Replicates the winner's cached entry for `source` to the other live
  /// replicas (checksum-verified on both ends).
  void FanOutCacheEntry(const HedgeContext& ctx, int winner_shard);
  MultiQueryResult Gather(std::vector<std::future<service::QueryResult>>
                              futures,
                          int shards_touched);
  void PublishHealthGauges();
  void RebalancerLoop();
  void BumpCounter(const char* name, int64_t amount = 1);

  const graph::Csr* graph_;
  FleetOptions options_;

  /// Routing state. `ring_` tracks the live fleet (losing segments on
  /// kills, gaining them on joins and weight changes); `full_ring_`
  /// mirrors joins and weight changes but never removals, identifying
  /// each source's failure-free home shard so reroutes can be counted.
  /// `shards_` only ever grows and entries are never destroyed before
  /// Shutdown, so a BfsService* read under the lock stays valid after
  /// releasing it. Shared-locked on the submit path, unique-locked by
  /// KillShard/AddShard/CheckHealth/Rebalance.
  mutable std::shared_mutex route_mu_;
  std::vector<std::unique_ptr<service::BfsService>> shards_;
  HashRing ring_;
  HashRing full_ring_;
  std::vector<ShardHealth> health_;
  std::vector<ProbeBaseline> probe_base_;

  /// Front-door counters (separate from per-shard Stats).
  mutable std::mutex stats_mu_;
  std::vector<int64_t> routed_;
  int64_t failover_reroutes_ = 0;
  int64_t fallback_answers_ = 0;
  int64_t multi_queries_ = 0;
  int64_t multi_sources_ = 0;
  int64_t shard_joins_ = 0;
  int64_t warmup_entries_ = 0;
  int64_t hedges_fired_ = 0;
  int64_t hedges_won_ = 0;
  int64_t hedges_cancelled_ = 0;
  int64_t replica_mismatches_ = 0;
  int64_t replica_cache_writes_ = 0;
  int64_t recoveries_ = 0;
  int64_t rebalance_runs_ = 0;
  int64_t weight_changes_ = 0;

  std::unique_ptr<ThreadPool> gather_pool_;
  /// Runs hedged-read wrappers at replication > 1; reset before
  /// gather_pool_ at Shutdown (gather tasks wait on wrapped futures that
  /// hedge tasks resolve).
  std::unique_ptr<ThreadPool> hedge_pool_;

  std::thread rebalancer_;
  std::mutex rebalance_mu_;
  std::condition_variable rebalance_cv_;
  bool stop_rebalancer_ = false;  // guarded by rebalance_mu_

  bool joined_ = false;  // guarded by shutdown_mu_
  std::mutex shutdown_mu_;
};

}  // namespace ibfs::fleet

#endif  // IBFS_FLEET_FLEET_H_
