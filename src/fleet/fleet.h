#ifndef IBFS_FLEET_FLEET_H_
#define IBFS_FLEET_FLEET_H_

#include <cstdint>
#include <future>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <vector>

#include "graph/csr.h"
#include "service/service.h"
#include "util/hash_ring.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace ibfs::fleet {

/// Distributed serving fleet, modeled in-process: N shared-nothing
/// `BfsService` shards — each with its own engine, simulated device fleet,
/// result/plan caches, and telemetry — behind a front door that routes
/// every source over a seeded consistent-hash ring, scatters multi-source
/// queries across the owning shards and gathers them with a
/// bit-deterministic merge, and survives shard loss by rebalancing the dead
/// shard's ring segment to the survivors (optionally answering degraded
/// from the CPU reference path when no shard is left at all). The sharding
/// follows the owner-computes discipline of distributed BFS (Buluç &
/// Madduri's 1D decomposition): a source's owner is a pure function of the
/// ring, so routing needs no coordination. See docs/SERVING.md "Fleet".

/// Front-door view of one shard's health. Transitions only move toward
/// worse states (like the circuit breakers the signals come from): a
/// degraded shard keeps serving — its answers are still correct — while a
/// down shard leaves the ring permanently.
enum class ShardHealth {
  kHealthy = 0,
  kDegraded = 1,
  kDown = 2,
};

const char* ShardHealthName(ShardHealth health);

/// Folds one per-source depth checksum into a running FNV-1a state
/// (little-endian byte order, start from kFnv1aOffsetBasis) — the
/// bit-deterministic merge used by scatter-gather and the workload
/// driver's submit-order drive checksum.
uint64_t FoldChecksum(uint64_t state, uint64_t checksum);

/// Configuration of one fleet.
struct FleetOptions {
  /// Shard count; each shard is one independent BfsService.
  int shards = 4;
  /// Virtual nodes per shard on the routing ring (HashRing::Options).
  int vnodes = 128;
  /// Ring placement seed; fleets with equal seeds route identically.
  uint64_t ring_seed = 2016;
  /// Template for every shard's service (engine, batching, resilience,
  /// caching, telemetry). All shards share the same configuration — and
  /// the same metrics registry / sinks when set — so their answers are
  /// interchangeable with a single service's.
  service::ServiceOptions service;
  /// Health probe: a shard whose failed/(completed+failed) exceeds this
  /// (with at least `min_health_samples` answered queries) is marked
  /// degraded by CheckHealth.
  double error_rate_threshold = 0.5;
  int64_t min_health_samples = 16;
  /// When every shard is down, answer from the sequential CPU reference
  /// BFS with QueryResult::degraded set instead of failing Unavailable.
  bool cpu_fallback = true;
  /// Workers gathering SubmitMulti scatter results (>= 1).
  int gather_threads = 2;

  Status Validate() const;
};

/// Fleet-level counters plus a consistent per-shard snapshot, as returned
/// by FleetFrontDoor::stats().
struct FleetStats {
  /// Field-wise sum of every shard's Stats (Stats::Add).
  service::BfsService::Stats totals;
  /// Per-shard snapshots and front-door routing counts, indexed by shard.
  std::vector<service::BfsService::Stats> shard;
  std::vector<int64_t> routed;
  std::vector<ShardHealth> health;
  /// Queries whose home shard left the ring and were served by a survivor.
  int64_t failover_reroutes = 0;
  /// Queries answered inline from the CPU reference path because no shard
  /// was left on the ring.
  int64_t fallback_answers = 0;
  /// Scatter-gather accounting: MultiQuery/SubmitMulti calls and the
  /// sources they carried.
  int64_t multi_queries = 0;
  int64_t multi_sources = 0;
  int healthy = 0;
  int degraded = 0;
  int down = 0;

  /// max(routed) / mean(routed) over shards that are not down; 0 before
  /// any routing. 1.0 = perfectly even.
  double Imbalance() const;
};

/// What a scatter-gather query resolves to: per-source results in request
/// order plus a combined checksum that is a pure fold of the per-source
/// depth checksums — identical for any shard count, which is how the tests
/// pin bit-deterministic merge.
struct MultiQueryResult {
  /// OK when every source completed OK; otherwise the first (request
  /// order) non-OK per-source status.
  Status status;
  std::vector<service::QueryResult> results;
  /// FNV-1a fold of results[i].depth_checksum bytes in request order
  /// (OK results only contribute their checksum; failures contribute 0).
  uint64_t combined_checksum = 0;
  /// Distinct shards the scatter touched (0 when everything fell back).
  int shards_touched = 0;
};

/// The scatter-gather front door. Thread-safe: Submit/MultiQuery/
/// SubmitMulti may be called from any number of client threads
/// concurrently with KillShard and CheckHealth. Shutdown (or destruction)
/// drains every shard — no future is ever abandoned.
class FleetFrontDoor {
 public:
  /// Validates options and spins up the shards. The graph must outlive
  /// the fleet.
  static Result<std::unique_ptr<FleetFrontDoor>> Create(
      const graph::Csr* graph, FleetOptions options);

  ~FleetFrontDoor();
  FleetFrontDoor(const FleetFrontDoor&) = delete;
  FleetFrontDoor& operator=(const FleetFrontDoor&) = delete;

  /// Routes one query to the owning shard. The future always becomes
  /// ready: from the shard, from the CPU fallback (degraded) when no
  /// shard is left, or with Unavailable when fallback is disabled too.
  std::future<service::QueryResult> Submit(graph::VertexId source);

  /// Blocking scatter-gather over `sources` (request order preserved).
  MultiQueryResult MultiQuery(const std::vector<graph::VertexId>& sources);

  /// Async scatter-gather: scatters inline (routing happens now, against
  /// the current ring), gathers on the internal pool.
  std::future<MultiQueryResult> SubmitMulti(
      std::vector<graph::VertexId> sources);

  /// Permanently removes a shard: marks it down, rebalances its ring
  /// segment to the survivors, then drains it (every in-flight future
  /// resolves). Returns false when the shard id is out of range or
  /// already down.
  bool KillShard(int shard);

  /// Error-rate / breaker / quarantine probe over every live shard;
  /// marks shards degraded and refreshes the fleet.* health gauges.
  /// Returns the number of shards whose health changed.
  int CheckHealth();

  /// The shard currently owning `source` (-1 when the ring is empty).
  int OwnerShard(graph::VertexId source) const;
  /// The shard that owned `source` before any failures (full ring).
  int HomeShard(graph::VertexId source) const;

  ShardHealth shard_health(int shard) const;

  /// Consistent fleet-level snapshot: per-shard Stats, their merged
  /// totals, routing counts, and health.
  FleetStats stats() const;

  /// Test hook: the underlying shard service (null when down is fine to
  /// observe; shards are never destroyed before Shutdown).
  service::BfsService* shard_for_test(int shard) {
    return shards_[static_cast<size_t>(shard)].get();
  }

  /// Drains and joins every shard. Idempotent; called by the destructor.
  void Shutdown();

  const FleetOptions& options() const { return options_; }

 private:
  FleetFrontDoor(const graph::Csr* graph, FleetOptions options);

  /// Routing core shared by Submit and the scatter paths. Returns the
  /// future and reports the serving shard via `shard_out` (-1 = answered
  /// by CPU fallback or failed Unavailable).
  std::future<service::QueryResult> SubmitRouted(graph::VertexId source,
                                                 int* shard_out);
  /// Resolves a future inline from the CPU reference BFS (degraded) or
  /// with Unavailable, for sources no shard can own anymore.
  std::future<service::QueryResult> AnswerUnowned(graph::VertexId source);
  MultiQueryResult Gather(std::vector<std::future<service::QueryResult>>
                              futures,
                          int shards_touched);
  void PublishHealthGauges();

  const graph::Csr* graph_;
  FleetOptions options_;
  std::vector<std::unique_ptr<service::BfsService>> shards_;

  /// Routing state. `ring_` loses segments as shards die; `full_ring_`
  /// never changes and identifies each source's home shard (so reroutes
  /// can be counted). Shared-locked on the submit path, unique-locked by
  /// KillShard/CheckHealth.
  mutable std::shared_mutex route_mu_;
  HashRing ring_;
  const HashRing full_ring_;
  std::vector<ShardHealth> health_;

  /// Front-door counters (separate from per-shard Stats).
  mutable std::mutex stats_mu_;
  std::vector<int64_t> routed_;
  int64_t failover_reroutes_ = 0;
  int64_t fallback_answers_ = 0;
  int64_t multi_queries_ = 0;
  int64_t multi_sources_ = 0;

  std::unique_ptr<ThreadPool> gather_pool_;
  bool joined_ = false;  // guarded by shutdown_mu_
  std::mutex shutdown_mu_;
};

}  // namespace ibfs::fleet

#endif  // IBFS_FLEET_FLEET_H_
