#ifndef IBFS_OBS_JSON_H_
#define IBFS_OBS_JSON_H_

#include <cstdint>
#include <map>
#include <memory>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace ibfs::obs {

/// Minimal JSON support for the observability layer: a streaming writer
/// (used by the metrics snapshot, the Chrome-trace serializer, and the run
/// report) and a small recursive-descent parser (used by ValidateTraceFile
/// and the tests to parse emitted documents back). No external dependency —
/// the formats stay verifiable from plain ctest.

/// Appends the JSON string-literal encoding of `s` (including the
/// surrounding quotes) to `os`, escaping control characters.
void WriteJsonString(std::ostream& os, std::string_view s);

/// Writes a double the way JSON requires: no NaN/Inf (clamped to 0),
/// round-trippable precision, integral values without exponent noise.
void WriteJsonNumber(std::ostream& os, double value);

/// Streaming JSON writer with automatic comma placement. Usage:
///   JsonWriter w(os);
///   w.BeginObject();
///   w.Key("name"); w.String("td_inspect");
///   w.Key("levels"); w.BeginArray(); w.Int(3); w.EndArray();
///   w.EndObject();
/// The writer does not pretty-print; documents are single-line.
class JsonWriter {
 public:
  explicit JsonWriter(std::ostream& os) : os_(os) {}

  void BeginObject();
  void EndObject();
  void BeginArray();
  void EndArray();
  void Key(std::string_view key);
  void String(std::string_view value);
  void Int(int64_t value);
  void Uint(uint64_t value);
  void Double(double value);
  void Bool(bool value);
  void Null();
  /// Splices a pre-serialized JSON value verbatim (caller guarantees
  /// validity); used to embed a metrics snapshot into a run report.
  void Raw(std::string_view json);

 private:
  void BeforeValue();

  std::ostream& os_;
  // One frame per open container: true once the first element was written.
  std::vector<bool> wrote_element_;
  bool pending_key_ = false;
};

/// Parsed JSON value (tree form). Arrays/objects own their children.
class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_object() const { return kind_ == Kind::kObject; }

  bool bool_value() const { return bool_; }
  double number_value() const { return number_; }
  const std::string& string_value() const { return string_; }
  const std::vector<JsonValue>& array() const { return array_; }
  const std::map<std::string, JsonValue>& object() const { return object_; }

  /// Object member lookup; nullptr when absent or not an object.
  const JsonValue* Find(std::string_view key) const;

  static JsonValue Null();
  static JsonValue Bool(bool b);
  static JsonValue Number(double d);
  static JsonValue String(std::string s);
  static JsonValue Array(std::vector<JsonValue> items);
  static JsonValue Object(std::map<std::string, JsonValue> members);

 private:
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> array_;
  std::map<std::string, JsonValue> object_;
};

/// Parses one JSON document (trailing whitespace allowed, nothing else).
Result<JsonValue> ParseJson(std::string_view text);

/// Reads and parses a JSON file.
Result<JsonValue> ParseJsonFile(const std::string& path);

}  // namespace ibfs::obs

#endif  // IBFS_OBS_JSON_H_
