#ifndef IBFS_OBS_LIVE_H_
#define IBFS_OBS_LIVE_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <ostream>
#include <span>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "util/status.h"

namespace ibfs::obs {

class MetricsRegistry;

/// Live serving telemetry: rolling time-windowed statistics (rates and
/// percentiles over "the last N seconds", not since boot), the structured
/// per-query access log, the Prometheus text renderer, and the periodic
/// snapshot exporter. The cumulative MetricsRegistry answers "what happened
/// this run"; this module answers "what is happening right now", which is
/// what a long-running `serve` needs on a dashboard. See
/// docs/OBSERVABILITY.md ("Live telemetry").
///
/// Clock model: every read/write takes an explicit `now_s` timestamp
/// (seconds on any monotonic timeline — the service passes seconds since
/// its start). Nothing here calls a clock, so window rotation is exactly
/// testable with a fake clock. Times should be non-decreasing, but a stale
/// `now_s` is tolerated, never corrupting: a stale read sees the window as
/// of the latest time already seen, a stale write still inside the window
/// lands in its own slot, and a write older than the window is counted at
/// the latest time (it must not reset the slot holding the newest data).

/// Slotted sliding-window accumulator: the window [now - window_s, now] is
/// covered by `slots` ring slots of window_s / slots seconds each; Add
/// lands in the current slot and Sum totals the slots still inside the
/// window (expired slots are skipped, giving O(slots) reads and O(1)
/// writes with no timer thread). Resolution is one slot width: a sample
/// leaves the window somewhere within its slot's width of the exact
/// expiry instant. Thread-safe.
class RollingWindow {
 public:
  explicit RollingWindow(double window_seconds, int slots = 16);

  void Add(double now_s, double delta = 1.0);
  /// Total of the samples still in the window at `now_s`.
  double Sum(double now_s) const;
  /// Sum / window_seconds — the windowed event rate.
  double RatePerSec(double now_s) const;

  double window_seconds() const { return window_seconds_; }
  int slots() const { return static_cast<int>(ring_.size()); }

 private:
  struct Slot {
    int64_t epoch = -1;  // floor(t / slot_width) when last written
    double sum = 0.0;
  };

  int64_t EpochOf(double t_s) const;

  double window_seconds_;
  double slot_width_s_;
  mutable std::mutex mu_;
  std::vector<Slot> ring_;
  int64_t latest_epoch_ = -1;
};

/// Sliding-window histogram over fixed bucket bounds (same layout as
/// obs::Histogram): per-slot bucket counts merged at read time, with
/// percentiles interpolated by the shared BucketPercentile estimator.
/// An empty window reports count 0 and percentile 0. Thread-safe.
class RollingHistogram {
 public:
  RollingHistogram(double window_seconds, std::span<const double> bounds,
                   int slots = 16);

  void Observe(double now_s, double value);
  int64_t Count(double now_s) const;
  double Percentile(double now_s, double p) const;
  double Min(double now_s) const;
  double Max(double now_s) const;

  double window_seconds() const { return window_seconds_; }

 private:
  struct Slot {
    int64_t epoch = -1;
    std::vector<int64_t> counts;
    int64_t count = 0;
    double min = 0.0;
    double max = 0.0;
  };
  /// Live slots merged into one distribution.
  struct Merged {
    std::vector<int64_t> counts;
    int64_t count = 0;
    double min = 0.0;
    double max = 0.0;
  };

  int64_t EpochOf(double t_s) const;
  Merged MergeLocked(double now_s) const;

  double window_seconds_;
  double slot_width_s_;
  std::vector<double> bounds_;
  mutable std::mutex mu_;
  std::vector<Slot> ring_;
  /// Newest epoch ever written; clamps stale reads (a stale `now_s` reads
  /// as of the latest time seen) and over-stale writes (which would
  /// otherwise reset the newest slot), mirroring RollingWindow.
  int64_t latest_epoch_ = -1;
};

/// One completed query, as the access log and the flight recorder see it.
/// Plain scalars/strings only: the obs layer stays below service, which
/// fills this from its QueryResult at completion time.
struct AccessRecord {
  /// Completion time, seconds since service start.
  double ts_s = 0.0;
  int64_t query_id = -1;
  int64_t source = -1;
  /// StatusCodeName of the outcome ("OK", "DeadlineExceeded", ...).
  std::string status = "OK";
  bool ok = true;
  bool cached = false;
  bool degraded = false;
  /// Device execution attempts (0 = never reached a device).
  int64_t attempts = 0;
  int64_t batch_id = -1;
  int64_t group_index = -1;
  double queue_ms = 0.0;
  double batch_ms = 0.0;
  double execute_ms = 0.0;
  double total_ms = 0.0;
  int64_t reached = 0;

  /// One JSON object, single line, no trailing newline — the JSONL row.
  void WriteJson(std::ostream& os) const;
};

/// Structured per-query access log: one JSON line per completed query,
/// appended under a mutex so concurrent executor threads never interleave
/// bytes. Lines are flushed per append — the log must be readable while
/// the server is up (that is its point).
class AccessLog {
 public:
  /// Opens `path` for appending.
  static Result<std::unique_ptr<AccessLog>> Open(const std::string& path);
  /// Logs into a caller-owned stream (tests; must outlive the log).
  explicit AccessLog(std::ostream* os);
  ~AccessLog();

  AccessLog(const AccessLog&) = delete;
  AccessLog& operator=(const AccessLog&) = delete;

  void Append(const AccessRecord& record);
  int64_t lines() const { return lines_.load(std::memory_order_relaxed); }

 private:
  AccessLog() = default;

  std::mutex mu_;
  std::unique_ptr<std::ostream> owned_;
  std::ostream* os_ = nullptr;
  std::atomic<int64_t> lines_{0};
};

/// Rolling-window service statistics published as `live.*` gauges:
/// completion rate, error ratio, and total-latency percentiles over the
/// last `window_seconds` — the numbers a dashboard polls, as opposed to
/// the cumulative `service.*` counters. Thread-safe.
class LiveStats {
 public:
  LiveStats(double window_seconds, int slots = 20);

  void RecordQuery(double now_s, double total_ms, bool ok);

  double QueryRate(double now_s) const;
  double ErrorRatio(double now_s) const;
  double PercentileMs(double now_s, double p) const;
  int64_t WindowCount(double now_s) const;

  /// Writes live.qps, live.error_ratio, live.p50_ms/p95_ms/p99_ms, and
  /// live.window_seconds into `metrics` (no-op when null).
  void PublishTo(MetricsRegistry* metrics, double now_s) const;

  double window_seconds() const { return completions_.window_seconds(); }

 private:
  RollingWindow completions_;
  RollingWindow errors_;
  RollingHistogram total_ms_;
};

/// Renders the registry in the Prometheus text exposition format (v0.0.4):
/// names are `ibfs_` + the dotted metric name with dots replaced by
/// underscores; counters gain the conventional `_total` suffix; histograms
/// expand to cumulative `_bucket{le="..."}` series plus `_sum`/`_count`.
/// See the naming table in docs/OBSERVABILITY.md.
std::string RenderPrometheusText(const MetricsRegistry& registry);

/// The dotted-name -> Prometheus-name mapping used by the renderer
/// (without the counter `_total` suffix).
std::string PrometheusName(std::string_view metric_name);

/// Writes `content` to `path` via a temp file + rename, so a concurrent
/// reader (dashboard scraper, tail) never observes a half-written file.
Status WriteFileAtomic(const std::string& path, std::string_view content);

/// What the exporter rewrites each tick. Empty path = that output is off.
struct LiveExporterOptions {
  double interval_s = 0.25;
  /// "ibfs.live_snapshot" JSON: uptime plus the full metrics snapshot.
  std::string live_out;
  /// Prometheus text exposition of the same registry.
  std::string prom_out;
  /// Plain metrics snapshot (the --metrics-out format), rewritten
  /// periodically so the file is useful for a server that never exits.
  std::string metrics_out;
};

/// Periodic snapshot publisher: a background thread that every
/// `interval_s` calls the caller's `on_tick(now_s)` hook (where the
/// service refreshes live.* gauges and re-evaluates its SLO) and then
/// atomically rewrites the configured files. `now_s` is seconds since
/// Start. Stop() (or destruction) performs one final tick + write, so
/// short runs still leave fresh files behind.
class LiveExporter {
 public:
  LiveExporter(LiveExporterOptions options, const MetricsRegistry* metrics,
               std::function<void(double now_s)> on_tick = {});
  ~LiveExporter();

  LiveExporter(const LiveExporter&) = delete;
  LiveExporter& operator=(const LiveExporter&) = delete;

  void Start();
  void Stop();

  /// One tick's publication, also used directly by tests: on_tick, then
  /// every configured file. Returns the first write error.
  Status WriteOnce(double now_s);

  int64_t ticks() const { return ticks_.load(std::memory_order_relaxed); }
  bool running() const { return running_; }

 private:
  void Loop();

  LiveExporterOptions options_;
  const MetricsRegistry* metrics_;
  std::function<void(double)> on_tick_;

  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_requested_ = false;
  bool running_ = false;
  std::thread thread_;
  std::chrono::steady_clock::time_point started_;
  std::atomic<int64_t> ticks_{0};
};

}  // namespace ibfs::obs

#endif  // IBFS_OBS_LIVE_H_
