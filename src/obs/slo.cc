#include "obs/slo.h"

#include <charconv>
#include <sstream>

#include "obs/metrics.h"
#include "util/logging.h"

namespace ibfs::obs {

namespace {

Result<double> ParseDouble(std::string_view text, std::string_view what) {
  double value = 0.0;
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), value);
  if (ec != std::errc() || ptr != text.data() + text.size()) {
    return Status::InvalidArgument("bad " + std::string(what) + ": '" +
                                   std::string(text) + "'");
  }
  return value;
}

}  // namespace

Result<SloSpec> SloSpec::Parse(std::string_view text) {
  const size_t first = text.find(':');
  const size_t second =
      first == std::string_view::npos ? first : text.find(':', first + 1);
  if (first == std::string_view::npos || second == std::string_view::npos ||
      text.find(':', second + 1) != std::string_view::npos) {
    return Status::InvalidArgument(
        "SLO spec must be <class>:<objective_ms>:<target>, got '" +
        std::string(text) + "'");
  }
  SloSpec spec;
  spec.class_name = std::string(text.substr(0, first));
  if (spec.class_name.empty()) {
    return Status::InvalidArgument("SLO class name must be non-empty");
  }
  auto objective =
      ParseDouble(text.substr(first + 1, second - first - 1), "objective_ms");
  if (!objective.ok()) return objective.status();
  auto target = ParseDouble(text.substr(second + 1), "target");
  if (!target.ok()) return target.status();
  spec.objective_ms = objective.value();
  spec.target = target.value();
  if (spec.objective_ms <= 0.0) {
    return Status::InvalidArgument("SLO objective_ms must be positive");
  }
  if (spec.target <= 0.0 || spec.target >= 1.0) {
    return Status::InvalidArgument("SLO target must be in (0, 1)");
  }
  return spec;
}

std::string SloSpec::ToString() const {
  std::ostringstream os;
  os << class_name << ":" << objective_ms << ":" << target;
  return os.str();
}

SloTracker::SloTracker(SloSpec spec)
    : SloTracker(std::move(spec), Options()) {}

SloTracker::SloTracker(SloSpec spec, Options options)
    : spec_(std::move(spec)),
      options_(options),
      error_budget_(1.0 - spec_.target),
      fast_total_(options.fast_window_s, options.slots),
      fast_bad_(options.fast_window_s, options.slots),
      slow_total_(options.slow_window_s, options.slots),
      slow_bad_(options.slow_window_s, options.slots) {
  IBFS_CHECK(error_budget_ > 0.0) << "SLO target must be < 1";
}

double SloTracker::Burn(const RollingWindow& bad, const RollingWindow& total,
                        double error_budget, double now_s) {
  const double n = total.Sum(now_s);
  if (n <= 0.0) return 0.0;
  return (bad.Sum(now_s) / n) / error_budget;
}

SloTransition SloTracker::Record(double now_s, double latency_ms, bool ok) {
  const bool good = ok && latency_ms <= spec_.objective_ms;
  fast_total_.Add(now_s);
  slow_total_.Add(now_s);
  if (!good) {
    fast_bad_.Add(now_s);
    slow_bad_.Add(now_s);
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (good) {
    ++good_;
  } else {
    ++bad_count_;
  }
  return EvaluateLocked(now_s);
}

SloTransition SloTracker::Evaluate(double now_s) {
  std::lock_guard<std::mutex> lock(mu_);
  return EvaluateLocked(now_s);
}

SloTransition SloTracker::EvaluateLocked(double now_s) {
  const double fast = Burn(fast_bad_, fast_total_, error_budget_, now_s);
  const double slow = Burn(slow_bad_, slow_total_, error_budget_, now_s);
  if (!alert_active_) {
    if (fast >= options_.burn_threshold && slow >= options_.burn_threshold) {
      alert_active_ = true;
      ++alerts_fired_;
      return SloTransition::kFired;
    }
  } else if (fast < options_.burn_threshold) {
    alert_active_ = false;
    ++alerts_cleared_;
    return SloTransition::kCleared;
  }
  return SloTransition::kNone;
}

double SloTracker::BurnRateFast(double now_s) const {
  return Burn(fast_bad_, fast_total_, error_budget_, now_s);
}

double SloTracker::BurnRateSlow(double now_s) const {
  return Burn(slow_bad_, slow_total_, error_budget_, now_s);
}

bool SloTracker::alert_active() const {
  std::lock_guard<std::mutex> lock(mu_);
  return alert_active_;
}

int64_t SloTracker::alerts_fired() const {
  std::lock_guard<std::mutex> lock(mu_);
  return alerts_fired_;
}

int64_t SloTracker::alerts_cleared() const {
  std::lock_guard<std::mutex> lock(mu_);
  return alerts_cleared_;
}

int64_t SloTracker::good() const {
  std::lock_guard<std::mutex> lock(mu_);
  return good_;
}

int64_t SloTracker::bad() const {
  std::lock_guard<std::mutex> lock(mu_);
  return bad_count_;
}

void SloTracker::PublishTo(MetricsRegistry* metrics, double now_s) const {
  if (metrics == nullptr) return;
  metrics->GetGauge("slo.objective_ms")->Set(spec_.objective_ms);
  metrics->GetGauge("slo.target")->Set(spec_.target);
  metrics->GetGauge("slo.burn_rate_fast")->Set(BurnRateFast(now_s));
  metrics->GetGauge("slo.burn_rate_slow")->Set(BurnRateSlow(now_s));
  std::lock_guard<std::mutex> lock(mu_);
  metrics->GetGauge("slo.alert_active")->Set(alert_active_ ? 1.0 : 0.0);
  metrics->GetGauge("slo.good")->Set(static_cast<double>(good_));
  metrics->GetGauge("slo.bad")->Set(static_cast<double>(bad_count_));
  metrics->GetGauge("slo.alerts_fired")
      ->Set(static_cast<double>(alerts_fired_));
  metrics->GetGauge("slo.alerts_cleared")
      ->Set(static_cast<double>(alerts_cleared_));
}

}  // namespace ibfs::obs
