#include "obs/trace.h"

#include <atomic>
#include <fstream>
#include <sstream>

#include "obs/json.h"
#include "obs/metrics.h"
#include "util/logging.h"

namespace ibfs::obs {
namespace {

// Monotonic tracer ids let a thread-local cache map "this thread's buffer
// in this tracer" without dangling across tracer destruction/reuse.
std::atomic<uint64_t> next_tracer_id{1};

}  // namespace

Tracer::Tracer() : tracer_id_(next_tracer_id.fetch_add(1)) {}

Tracer::EventBuffer* Tracer::ThisThreadBuffer() {
  thread_local uint64_t cached_id = 0;
  thread_local EventBuffer* cached = nullptr;
  if (cached_id != tracer_id_) {
    // First event from this thread into this tracer: register a buffer.
    // (A thread alternating between live tracers re-registers per switch —
    // fine for the engine, which threads exactly one tracer through a run.)
    std::lock_guard<std::mutex> lock(mu_);
    buffers_.push_back(std::make_unique<EventBuffer>());
    cached = buffers_.back().get();
    cached_id = tracer_id_;
  }
  return cached;
}

void Tracer::Append(Event event) {
  EventBuffer* buffer = ThisThreadBuffer();
  const size_t cap = max_events_per_thread_.load(std::memory_order_relaxed);
  if (buffer->events.size() < cap) {
    buffer->events.push_back(std::move(event));
    return;
  }
  // At capacity: the buffer is a ring; overwrite the oldest slot.
  if (buffer->next >= buffer->events.size()) buffer->next = 0;
  buffer->events[buffer->next] = std::move(event);
  ++buffer->next;
  ++buffer->dropped;
  if (Counter* counter = drop_counter_.load(std::memory_order_relaxed)) {
    counter->Increment();
  }
}

void Tracer::SetMaxEventsPerThread(size_t cap) {
  IBFS_CHECK(cap >= 1) << "tracer event cap must be >= 1";
  max_events_per_thread_.store(cap, std::memory_order_relaxed);
}

void Tracer::SetDropCounter(Counter* counter) {
  drop_counter_.store(counter, std::memory_order_relaxed);
}

int64_t Tracer::dropped_events() const {
  std::lock_guard<std::mutex> lock(mu_);
  int64_t dropped = 0;
  for (const auto& buffer : buffers_) dropped += buffer->dropped;
  return dropped;
}

TraceArg Arg(std::string_view key, std::string_view value) {
  return {std::string(key), std::string(value), /*quoted=*/true};
}

TraceArg Arg(std::string_view key, const char* value) {
  return Arg(key, std::string_view(value));
}

TraceArg Arg(std::string_view key, int64_t value) {
  return {std::string(key), std::to_string(value), /*quoted=*/false};
}

TraceArg Arg(std::string_view key, int value) {
  return Arg(key, static_cast<int64_t>(value));
}

TraceArg Arg(std::string_view key, uint64_t value) {
  return {std::string(key), std::to_string(value), /*quoted=*/false};
}

TraceArg Arg(std::string_view key, double value) {
  std::ostringstream os;
  WriteJsonNumber(os, value);
  return {std::string(key), os.str(), /*quoted=*/false};
}

TraceArg Arg(std::string_view key, bool value) {
  return {std::string(key), value ? "true" : "false", /*quoted=*/false};
}

void Tracer::SetProcessName(int pid, std::string_view name) {
  Event e;
  e.ph = 'M';
  e.name = "process_name";
  e.pid = pid;
  e.tid = 0;
  e.args.push_back(Arg("name", name));
  Append(std::move(e));
}

void Tracer::SetThreadName(int pid, int tid, std::string_view name) {
  Event e;
  e.ph = 'M';
  e.name = "thread_name";
  e.pid = pid;
  e.tid = tid;
  e.args.push_back(Arg("name", name));
  Append(std::move(e));
}

void Tracer::CompleteSpan(TraceTrack track, std::string_view name,
                          std::string_view category, double ts_us,
                          double dur_us, std::vector<TraceArg> args) {
  Event e;
  e.ph = 'X';
  e.name = std::string(name);
  e.category = std::string(category);
  e.ts_us = ts_us;
  e.dur_us = dur_us;
  e.pid = track.pid;
  e.tid = track.tid;
  e.args = std::move(args);
  Append(std::move(e));
}

void Tracer::BeginSpan(TraceTrack track, std::string_view name,
                       std::string_view category, double ts_us) {
  std::lock_guard<std::mutex> lock(mu_);
  open_spans_[{track.pid, track.tid}].push_back(
      {std::string(name), std::string(category), ts_us});
}

void Tracer::EndSpan(TraceTrack track, double ts_us,
                     std::vector<TraceArg> args) {
  OpenSpan span;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = open_spans_.find({track.pid, track.tid});
    if (it == open_spans_.end() || it->second.empty()) {
      IBFS_LOG(Warning) << "EndSpan with no open span on track ("
                        << track.pid << "," << track.tid << ")";
      return;
    }
    span = std::move(it->second.back());
    it->second.pop_back();
  }
  CompleteSpan(track, span.name, span.category, span.ts_us,
               ts_us - span.ts_us, std::move(args));
}

size_t Tracer::OpenSpans(TraceTrack track) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = open_spans_.find({track.pid, track.tid});
  return it == open_spans_.end() ? 0 : it->second.size();
}

void Tracer::Instant(TraceTrack track, std::string_view name, double ts_us,
                     std::vector<TraceArg> args) {
  Event e;
  e.ph = 'i';
  e.name = std::string(name);
  e.ts_us = ts_us;
  e.pid = track.pid;
  e.tid = track.tid;
  e.args = std::move(args);
  Append(std::move(e));
}

void Tracer::CounterValue(TraceTrack track, std::string_view series,
                          double ts_us, double value) {
  Event e;
  e.ph = 'C';
  e.name = std::string(series);
  e.ts_us = ts_us;
  e.pid = track.pid;
  e.tid = track.tid;
  e.args.push_back(Arg("value", value));
  Append(std::move(e));
}

size_t Tracer::event_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t n = 0;
  for (const auto& buffer : buffers_) n += buffer->events.size();
  return n;
}

void Tracer::WriteJson(std::ostream& os) const {
  // Merge the per-thread buffers in registration order; viewers sort by
  // timestamp, so cross-thread file order is irrelevant.
  std::lock_guard<std::mutex> lock(mu_);
  JsonWriter w(os);
  w.BeginObject();
  w.Key("traceEvents");
  w.BeginArray();
  auto write_event = [&w](const Event& e) {
    w.BeginObject();
    w.Key("name");
    w.String(e.name);
    w.Key("ph");
    w.String(std::string_view(&e.ph, 1));
    if (!e.category.empty()) {
      w.Key("cat");
      w.String(e.category);
    }
    w.Key("ts");
    w.Double(e.ts_us);
    if (e.ph == 'X') {
      w.Key("dur");
      w.Double(e.dur_us);
    }
    if (e.ph == 'i') {
      w.Key("s");
      w.String("t");
    }
    w.Key("pid");
    w.Int(e.pid);
    w.Key("tid");
    w.Int(e.tid);
    if (!e.args.empty()) {
      w.Key("args");
      w.BeginObject();
      for (const TraceArg& arg : e.args) {
        w.Key(arg.key);
        if (arg.quoted) {
          w.String(arg.value);
        } else {
          w.Raw(arg.value);
        }
      }
      w.EndObject();
    }
    w.EndObject();
  };
  for (const auto& buffer : buffers_) {
    for (const Event& e : buffer->events) write_event(e);
  }
  w.EndArray();
  w.Key("displayTimeUnit");
  w.String("ms");
  w.EndObject();
}

Status Tracer::WriteFile(const std::string& path) const {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IoError("cannot open " + path + " for writing");
  WriteJson(out);
  out << '\n';
  if (!out) return Status::IoError("write to " + path + " failed");
  return Status::OK();
}

}  // namespace ibfs::obs
