#include "obs/validate.h"

#include <cmath>
#include <string>

namespace ibfs::obs {
namespace {

Status Bad(const std::string& what) {
  return Status::InvalidArgument(what);
}

const JsonValue* RequireMember(const JsonValue& obj, const std::string& key,
                               JsonValue::Kind kind, Status* status,
                               const std::string& where) {
  const JsonValue* member = obj.Find(key);
  if (member == nullptr) {
    *status = Bad(where + ": missing \"" + key + "\"");
    return nullptr;
  }
  if (member->kind() != kind) {
    *status = Bad(where + ": \"" + key + "\" has wrong type");
    return nullptr;
  }
  return member;
}

Status ValidatePhaseObject(const JsonValue& phase, const std::string& where) {
  Status st;
  if (!phase.is_object()) return Bad(where + ": phase is not an object");
  if (RequireMember(phase, "name", JsonValue::Kind::kString, &st, where) ==
      nullptr) {
    return st;
  }
  for (const char* key :
       {"seconds", "launches", "load_transactions", "store_transactions",
        "load_requests", "store_requests", "load_transactions_per_request",
        "atomic_ops", "shared_bytes"}) {
    if (RequireMember(phase, key, JsonValue::Kind::kNumber, &st, where) ==
        nullptr) {
      return st;
    }
  }
  return Status::OK();
}

}  // namespace

Status ValidateTrace(const JsonValue& doc, bool require_spans) {
  if (!doc.is_object()) return Bad("trace: top level is not an object");
  Status st;
  const JsonValue* events = RequireMember(
      doc, "traceEvents", JsonValue::Kind::kArray, &st, "trace");
  if (events == nullptr) return st;
  size_t span_count = 0;
  size_t index = 0;
  for (const JsonValue& event : events->array()) {
    const std::string where = "trace event " + std::to_string(index++);
    if (!event.is_object()) return Bad(where + ": not an object");
    const JsonValue* ph =
        RequireMember(event, "ph", JsonValue::Kind::kString, &st, where);
    if (ph == nullptr) return st;
    if (ph->string_value().size() != 1) {
      return Bad(where + ": \"ph\" must be one character");
    }
    if (RequireMember(event, "name", JsonValue::Kind::kString, &st, where) ==
        nullptr) {
      return st;
    }
    for (const char* key : {"pid", "tid"}) {
      if (RequireMember(event, key, JsonValue::Kind::kNumber, &st, where) ==
          nullptr) {
        return st;
      }
    }
    const char phase = ph->string_value()[0];
    if (phase != 'M') {
      if (RequireMember(event, "ts", JsonValue::Kind::kNumber, &st, where) ==
          nullptr) {
        return st;
      }
    }
    if (phase == 'X') {
      const JsonValue* dur =
          RequireMember(event, "dur", JsonValue::Kind::kNumber, &st, where);
      if (dur == nullptr) return st;
      if (dur->number_value() < 0.0) {
        return Bad(where + ": negative span duration");
      }
      ++span_count;
    }
  }
  if (require_spans && span_count == 0) {
    return Bad("trace: no complete spans (\"ph\":\"X\") recorded");
  }
  return Status::OK();
}

Status ValidateTraceFile(const std::string& path, bool require_spans) {
  Result<JsonValue> doc = ParseJsonFile(path);
  if (!doc.ok()) return doc.status();
  return ValidateTrace(doc.value(), require_spans);
}

Status ValidateRunReport(const JsonValue& doc) {
  if (!doc.is_object()) return Bad("report: top level is not an object");
  Status st;
  const JsonValue* schema =
      RequireMember(doc, "schema", JsonValue::Kind::kString, &st, "report");
  if (schema == nullptr) return st;
  if (schema->string_value() != "ibfs.run_report") {
    return Bad("report: unexpected schema \"" + schema->string_value() +
               "\"");
  }
  const JsonValue* version = RequireMember(
      doc, "schema_version", JsonValue::Kind::kNumber, &st, "report");
  if (version == nullptr) return st;
  if (version->number_value() < 1) return Bad("report: bad schema_version");

  const JsonValue* workload = RequireMember(
      doc, "workload", JsonValue::Kind::kObject, &st, "report");
  if (workload == nullptr) return st;
  for (const char* key : {"graph", "strategy", "grouping"}) {
    if (RequireMember(*workload, key, JsonValue::Kind::kString, &st,
                      "report workload") == nullptr) {
      return st;
    }
  }
  for (const char* key :
       {"vertex_count", "edge_count", "instances", "group_size"}) {
    if (RequireMember(*workload, key, JsonValue::Kind::kNumber, &st,
                      "report workload") == nullptr) {
      return st;
    }
  }

  const JsonValue* results =
      RequireMember(doc, "results", JsonValue::Kind::kObject, &st, "report");
  if (results == nullptr) return st;
  for (const char* key :
       {"sim_seconds", "wall_seconds", "teps", "sharing_ratio",
        "sharing_ratio_top_down", "sharing_ratio_bottom_up",
        "rule_matched"}) {
    if (RequireMember(*results, key, JsonValue::Kind::kNumber, &st,
                      "report results") == nullptr) {
      return st;
    }
  }

  const JsonValue* groups =
      RequireMember(doc, "groups", JsonValue::Kind::kArray, &st, "report");
  if (groups == nullptr) return st;
  size_t gi = 0;
  for (const JsonValue& group : groups->array()) {
    const std::string where = "report group " + std::to_string(gi++);
    if (!group.is_object()) return Bad(where + ": not an object");
    for (const char* key : {"index", "instance_count", "sim_seconds",
                            "sharing_degree", "sharing_ratio", "hub"}) {
      if (RequireMember(group, key, JsonValue::Kind::kNumber, &st, where) ==
          nullptr) {
        return st;
      }
    }
    const JsonValue* levels =
        RequireMember(group, "levels", JsonValue::Kind::kArray, &st, where);
    if (levels == nullptr) return st;
    for (const JsonValue& level : levels->array()) {
      if (!level.is_object()) return Bad(where + ": level is not an object");
      if (RequireMember(level, "direction", JsonValue::Kind::kString, &st,
                        where) == nullptr) {
        return st;
      }
      for (const char* key : {"level", "jfq_size", "private_fq_sum",
                              "edges_inspected", "new_visits"}) {
        if (RequireMember(level, key, JsonValue::Kind::kNumber, &st,
                          where) == nullptr) {
          return st;
        }
      }
    }
  }

  const JsonValue* phases =
      RequireMember(doc, "phases", JsonValue::Kind::kArray, &st, "report");
  if (phases == nullptr) return st;
  size_t pi = 0;
  for (const JsonValue& phase : phases->array()) {
    IBFS_RETURN_NOT_OK(
        ValidatePhaseObject(phase, "report phase " + std::to_string(pi++)));
  }
  const JsonValue* totals =
      RequireMember(doc, "totals", JsonValue::Kind::kObject, &st, "report");
  if (totals == nullptr) return st;
  IBFS_RETURN_NOT_OK(ValidatePhaseObject(*totals, "report totals"));

  if (const JsonValue* cluster = doc.Find("cluster")) {
    if (!cluster->is_object()) return Bad("report: cluster is not an object");
    if (RequireMember(*cluster, "policy", JsonValue::Kind::kString, &st,
                      "report cluster") == nullptr) {
      return st;
    }
    for (const char* key :
         {"device_count", "makespan_seconds", "speedup", "teps"}) {
      if (RequireMember(*cluster, key, JsonValue::Kind::kNumber, &st,
                        "report cluster") == nullptr) {
        return st;
      }
    }
  }

  if (const JsonValue* comm = doc.Find("comm")) {
    if (!comm->is_object()) return Bad("report: comm is not an object");
    if (RequireMember(*comm, "schedule", JsonValue::Kind::kString, &st,
                      "report comm") == nullptr) {
      return st;
    }
    for (const char* key :
         {"partitions", "link_gbps", "link_us", "compute_seconds",
          "comm_seconds", "bytes_on_wire", "rounds", "supersteps",
          "edge_imbalance"}) {
      if (RequireMember(*comm, key, JsonValue::Kind::kNumber, &st,
                        "report comm") == nullptr) {
        return st;
      }
    }
    for (const char* key :
         {"partition_vertices", "partition_edges", "device_seconds"}) {
      if (RequireMember(*comm, key, JsonValue::Kind::kArray, &st,
                        "report comm") == nullptr) {
        return st;
      }
    }
  }

  if (const JsonValue* metrics = doc.Find("metrics")) {
    IBFS_RETURN_NOT_OK(ValidateMetrics(*metrics));
  }
  return Status::OK();
}

Status ValidateRunReportFile(const std::string& path) {
  Result<JsonValue> doc = ParseJsonFile(path);
  if (!doc.ok()) return doc.status();
  return ValidateRunReport(doc.value());
}

Status ValidateServiceReport(const JsonValue& doc) {
  if (!doc.is_object()) {
    return Bad("service report: top level is not an object");
  }
  Status st;
  const JsonValue* schema = RequireMember(
      doc, "schema", JsonValue::Kind::kString, &st, "service report");
  if (schema == nullptr) return st;
  if (schema->string_value() != "ibfs.service_report") {
    return Bad("service report: unexpected schema \"" +
               schema->string_value() + "\"");
  }
  const JsonValue* version = RequireMember(
      doc, "schema_version", JsonValue::Kind::kNumber, &st, "service report");
  if (version == nullptr) return st;
  if (version->number_value() < 1) {
    return Bad("service report: bad schema_version");
  }

  const JsonValue* workload = RequireMember(
      doc, "workload", JsonValue::Kind::kObject, &st, "service report");
  if (workload == nullptr) return st;
  for (const char* key : {"graph", "strategy", "grouping", "arrival"}) {
    if (RequireMember(*workload, key, JsonValue::Kind::kString, &st,
                      "service report workload") == nullptr) {
      return st;
    }
  }
  for (const char* key : {"vertex_count", "edge_count", "offered_qps",
                          "duration_seconds", "queries"}) {
    if (RequireMember(*workload, key, JsonValue::Kind::kNumber, &st,
                      "service report workload") == nullptr) {
      return st;
    }
  }

  const JsonValue* service = RequireMember(
      doc, "service", JsonValue::Kind::kObject, &st, "service report");
  if (service == nullptr) return st;
  for (const char* key :
       {"max_batch", "max_delay_ms", "execute_threads", "batches", "groups",
        "size_closes", "deadline_closes", "shutdown_closes",
        "mean_batch_size"}) {
    if (RequireMember(*service, key, JsonValue::Kind::kNumber, &st,
                      "service report service") == nullptr) {
      return st;
    }
  }

  const JsonValue* results = RequireMember(
      doc, "results", JsonValue::Kind::kObject, &st, "service report");
  if (results == nullptr) return st;
  for (const char* key :
       {"completed", "failed", "achieved_qps", "wall_seconds", "sim_seconds",
        "teps", "sharing_ratio", "oracle_sharing_ratio",
        "sharing_fraction"}) {
    if (RequireMember(*results, key, JsonValue::Kind::kNumber, &st,
                      "service report results") == nullptr) {
      return st;
    }
  }

  const JsonValue* latency = RequireMember(
      doc, "latency_ms", JsonValue::Kind::kObject, &st, "service report");
  if (latency == nullptr) return st;
  for (const char* which : {"queue", "execute", "total"}) {
    const std::string where =
        std::string("service report latency_ms ") + which;
    const JsonValue* dist = RequireMember(*latency, which,
                                          JsonValue::Kind::kObject, &st,
                                          "service report latency_ms");
    if (dist == nullptr) return st;
    for (const char* key : {"p50", "p95", "p99", "mean", "max"}) {
      if (RequireMember(*dist, key, JsonValue::Kind::kNumber, &st, where) ==
          nullptr) {
        return st;
      }
    }
    const double p50 = dist->Find("p50")->number_value();
    const double p95 = dist->Find("p95")->number_value();
    const double p99 = dist->Find("p99")->number_value();
    if (p50 < 0.0 || p50 > p95 || p95 > p99) {
      return Bad(where + ": percentiles must satisfy 0 <= p50 <= p95 <= p99");
    }
  }

  // The cache section arrived in schema v2; v1 documents stay valid.
  if (version->number_value() >= 2) {
    const JsonValue* cache = RequireMember(
        doc, "cache", JsonValue::Kind::kObject, &st, "service report");
    if (cache == nullptr) return st;
    if (RequireMember(*cache, "enabled", JsonValue::Kind::kBool, &st,
                      "service report cache") == nullptr) {
      return st;
    }
    for (const char* key :
         {"hits", "misses", "insertions", "evictions", "quarantined",
          "entries", "bytes_resident", "hit_ratio", "plan_hits",
          "plan_misses"}) {
      if (RequireMember(*cache, key, JsonValue::Kind::kNumber, &st,
                        "service report cache") == nullptr) {
        return st;
      }
    }
    const double ratio = cache->Find("hit_ratio")->number_value();
    if (ratio < 0.0 || ratio > 1.0) {
      return Bad("service report cache: hit_ratio must be in [0, 1]");
    }
  }

  if (const JsonValue* metrics = doc.Find("metrics")) {
    IBFS_RETURN_NOT_OK(ValidateMetrics(*metrics));
  }
  return Status::OK();
}

Status ValidateServiceReportFile(const std::string& path) {
  Result<JsonValue> doc = ParseJsonFile(path);
  if (!doc.ok()) return doc.status();
  return ValidateServiceReport(doc.value());
}

Status ValidateResilienceReport(const JsonValue& doc) {
  if (!doc.is_object()) {
    return Bad("resilience report: top level is not an object");
  }
  Status st;
  const JsonValue* schema = RequireMember(
      doc, "schema", JsonValue::Kind::kString, &st, "resilience report");
  if (schema == nullptr) return st;
  if (schema->string_value() != "ibfs.resilience_report") {
    return Bad("resilience report: unexpected schema \"" +
               schema->string_value() + "\"");
  }
  const JsonValue* version =
      RequireMember(doc, "schema_version", JsonValue::Kind::kNumber, &st,
                    "resilience report");
  if (version == nullptr) return st;
  if (version->number_value() < 1) {
    return Bad("resilience report: bad schema_version");
  }

  const JsonValue* workload = RequireMember(
      doc, "workload", JsonValue::Kind::kObject, &st, "resilience report");
  if (workload == nullptr) return st;
  for (const char* key : {"graph", "strategy", "grouping"}) {
    if (RequireMember(*workload, key, JsonValue::Kind::kString, &st,
                      "resilience report workload") == nullptr) {
      return st;
    }
  }
  for (const char* key : {"vertex_count", "edge_count", "queries",
                          "offered_qps", "duration_seconds"}) {
    if (RequireMember(*workload, key, JsonValue::Kind::kNumber, &st,
                      "resilience report workload") == nullptr) {
      return st;
    }
  }

  const JsonValue* plan = RequireMember(
      doc, "fault_plan", JsonValue::Kind::kObject, &st, "resilience report");
  if (plan == nullptr) return st;
  if (RequireMember(*plan, "spec", JsonValue::Kind::kString, &st,
                    "resilience report fault_plan") == nullptr) {
    return st;
  }
  for (const char* key : {"device_count", "seed", "max_attempts",
                          "deadline_ms", "max_pending"}) {
    if (RequireMember(*plan, key, JsonValue::Kind::kNumber, &st,
                      "resilience report fault_plan") == nullptr) {
      return st;
    }
  }
  if (plan->Find("cpu_fallback") == nullptr) {
    return Bad("resilience report fault_plan: missing \"cpu_fallback\"");
  }

  const JsonValue* outcomes = RequireMember(
      doc, "outcomes", JsonValue::Kind::kObject, &st, "resilience report");
  if (outcomes == nullptr) return st;
  for (const char* key :
       {"completed", "failed", "deadline_exceeded", "shed", "degraded",
        "retries", "transient_faults", "corruptions_detected",
        "breaker_opened", "fallback_groups", "wall_seconds"}) {
    const JsonValue* value =
        RequireMember(*outcomes, key, JsonValue::Kind::kNumber, &st,
                      "resilience report outcomes");
    if (value == nullptr) return st;
    if (value->number_value() < 0.0) {
      return Bad(std::string("resilience report outcomes: \"") + key +
                 "\" is negative");
    }
  }

  const JsonValue* verification =
      RequireMember(doc, "verification", JsonValue::Kind::kObject, &st,
                    "resilience report");
  if (verification == nullptr) return st;
  for (const char* key : {"checksums_compared", "checksum_mismatches"}) {
    if (RequireMember(*verification, key, JsonValue::Kind::kNumber, &st,
                      "resilience report verification") == nullptr) {
      return st;
    }
  }
  const double compared =
      verification->Find("checksums_compared")->number_value();
  const double mismatches =
      verification->Find("checksum_mismatches")->number_value();
  if (compared < 0.0 || mismatches < 0.0 || mismatches > compared) {
    return Bad(
        "resilience report verification: need 0 <= checksum_mismatches <= "
        "checksums_compared");
  }

  if (const JsonValue* metrics = doc.Find("metrics")) {
    IBFS_RETURN_NOT_OK(ValidateMetrics(*metrics));
  }
  return Status::OK();
}

Status ValidateResilienceReportFile(const std::string& path) {
  Result<JsonValue> doc = ParseJsonFile(path);
  if (!doc.ok()) return doc.status();
  return ValidateResilienceReport(doc.value());
}

Status ValidateFleetReport(const JsonValue& doc) {
  if (!doc.is_object()) {
    return Bad("fleet report: top level is not an object");
  }
  Status st;
  const JsonValue* schema = RequireMember(
      doc, "schema", JsonValue::Kind::kString, &st, "fleet report");
  if (schema == nullptr) return st;
  if (schema->string_value() != "ibfs.fleet_report") {
    return Bad("fleet report: unexpected schema \"" +
               schema->string_value() + "\"");
  }
  const JsonValue* version = RequireMember(
      doc, "schema_version", JsonValue::Kind::kNumber, &st, "fleet report");
  if (version == nullptr) return st;
  if (version->number_value() < 1) {
    return Bad("fleet report: bad schema_version");
  }
  const bool v2 = version->number_value() >= 2;

  const JsonValue* fleet = RequireMember(
      doc, "fleet", JsonValue::Kind::kObject, &st, "fleet report");
  if (fleet == nullptr) return st;
  for (const char* key : {"graph", "strategy", "grouping"}) {
    if (RequireMember(*fleet, key, JsonValue::Kind::kString, &st,
                      "fleet report fleet") == nullptr) {
      return st;
    }
  }
  for (const char* key :
       {"vertex_count", "edge_count", "shards", "vnodes", "ring_seed"}) {
    if (RequireMember(*fleet, key, JsonValue::Kind::kNumber, &st,
                      "fleet report fleet") == nullptr) {
      return st;
    }
  }
  if (fleet->Find("shards")->number_value() < 1.0) {
    return Bad("fleet report fleet: \"shards\" must be >= 1");
  }

  const JsonValue* workload = RequireMember(
      doc, "workload", JsonValue::Kind::kObject, &st, "fleet report");
  if (workload == nullptr) return st;
  if (RequireMember(*workload, "arrival", JsonValue::Kind::kString, &st,
                    "fleet report workload") == nullptr) {
    return st;
  }
  for (const char* key : {"offered_qps", "duration_seconds", "queries",
                          "multi_source", "multi_queries", "killed_shard"}) {
    if (RequireMember(*workload, key, JsonValue::Kind::kNumber, &st,
                      "fleet report workload") == nullptr) {
      return st;
    }
  }
  if (v2 && RequireMember(*workload, "joined_shards",
                          JsonValue::Kind::kNumber, &st,
                          "fleet report workload") == nullptr) {
    return st;
  }

  if (v2) {
    const JsonValue* elasticity = RequireMember(
        doc, "elasticity", JsonValue::Kind::kObject, &st, "fleet report");
    if (elasticity == nullptr) return st;
    for (const char* key :
         {"replication", "shard_joins", "warmup_entries", "hedges_fired",
          "hedges_won", "hedges_cancelled", "replica_mismatches",
          "replica_cache_writes", "recoveries", "rebalance_runs",
          "weight_changes"}) {
      const JsonValue* value = RequireMember(
          *elasticity, key, JsonValue::Kind::kNumber, &st,
          "fleet report elasticity");
      if (value == nullptr) return st;
      if (value->number_value() < 0.0) {
        return Bad(std::string("fleet report elasticity: \"") + key +
                   "\" is negative");
      }
    }
    if (elasticity->Find("replication")->number_value() < 1.0) {
      return Bad("fleet report elasticity: \"replication\" must be >= 1");
    }
    const double fired = elasticity->Find("hedges_fired")->number_value();
    const double won = elasticity->Find("hedges_won")->number_value();
    if (won > fired) {
      return Bad(
          "fleet report elasticity: need hedges_won <= hedges_fired");
    }
  }

  const JsonValue* shards = RequireMember(
      doc, "shards_detail", JsonValue::Kind::kArray, &st, "fleet report");
  if (shards == nullptr) return st;
  size_t si = 0;
  for (const JsonValue& row : shards->array()) {
    const std::string where =
        "fleet report shards_detail " + std::to_string(si++);
    if (!row.is_object()) return Bad(where + ": not an object");
    const JsonValue* health =
        RequireMember(row, "health", JsonValue::Kind::kString, &st, where);
    if (health == nullptr) return st;
    const std::string& h = health->string_value();
    if (h != "healthy" && h != "degraded" && h != "down") {
      return Bad(where + ": unknown health \"" + h + "\"");
    }
    for (const char* key :
         {"shard", "routed", "queries", "completed", "failed", "degraded",
          "cache_hits", "batches", "groups", "sim_seconds"}) {
      const JsonValue* value =
          RequireMember(row, key, JsonValue::Kind::kNumber, &st, where);
      if (value == nullptr) return st;
      if (value->number_value() < 0.0) {
        return Bad(where + ": \"" + std::string(key) + "\" is negative");
      }
    }
    if (v2) {
      const JsonValue* weight =
          RequireMember(row, "weight", JsonValue::Kind::kNumber, &st, where);
      if (weight == nullptr) return st;
      if (weight->number_value() < 0.0) {
        return Bad(where + ": \"weight\" is negative");
      }
    }
  }

  const JsonValue* aggregate = RequireMember(
      doc, "aggregate", JsonValue::Kind::kObject, &st, "fleet report");
  if (aggregate == nullptr) return st;
  for (const char* key :
       {"completed", "failed", "achieved_qps", "wall_seconds", "imbalance",
        "failover_reroutes", "fallback_answers", "healthy", "degraded",
        "down"}) {
    const JsonValue* value = RequireMember(
        *aggregate, key, JsonValue::Kind::kNumber, &st,
        "fleet report aggregate");
    if (value == nullptr) return st;
    if (value->number_value() < 0.0) {
      return Bad(std::string("fleet report aggregate: \"") + key +
                 "\" is negative");
    }
  }

  const JsonValue* verification = RequireMember(
      doc, "verification", JsonValue::Kind::kObject, &st, "fleet report");
  if (verification == nullptr) return st;
  for (const char* key : {"checksum", "unanswered", "checksums_compared",
                          "checksum_mismatches"}) {
    if (RequireMember(*verification, key, JsonValue::Kind::kNumber, &st,
                      "fleet report verification") == nullptr) {
      return st;
    }
  }
  if (verification->Find("unanswered")->number_value() < 0.0) {
    return Bad("fleet report verification: \"unanswered\" is negative");
  }
  const double compared =
      verification->Find("checksums_compared")->number_value();
  const double mismatches =
      verification->Find("checksum_mismatches")->number_value();
  if (compared < 0.0 || mismatches < 0.0 || mismatches > compared) {
    return Bad(
        "fleet report verification: need 0 <= checksum_mismatches <= "
        "checksums_compared");
  }

  const JsonValue* latency = RequireMember(
      doc, "latency_ms", JsonValue::Kind::kObject, &st, "fleet report");
  if (latency == nullptr) return st;
  const JsonValue* total = RequireMember(
      *latency, "total", JsonValue::Kind::kObject, &st,
      "fleet report latency_ms");
  if (total == nullptr) return st;
  for (const char* key : {"p50", "p95", "p99", "mean", "max"}) {
    if (RequireMember(*total, key, JsonValue::Kind::kNumber, &st,
                      "fleet report latency_ms total") == nullptr) {
      return st;
    }
  }
  const double p50 = total->Find("p50")->number_value();
  const double p95 = total->Find("p95")->number_value();
  const double p99 = total->Find("p99")->number_value();
  if (p50 > p95 || p95 > p99) {
    return Bad("fleet report latency_ms total: need p50 <= p95 <= p99");
  }

  if (const JsonValue* metrics = doc.Find("metrics")) {
    IBFS_RETURN_NOT_OK(ValidateMetrics(*metrics));
  }
  return Status::OK();
}

Status ValidateFleetReportFile(const std::string& path) {
  Result<JsonValue> doc = ParseJsonFile(path);
  if (!doc.ok()) return doc.status();
  return ValidateFleetReport(doc.value());
}

Status ValidateMetrics(const JsonValue& doc) {
  if (!doc.is_object()) return Bad("metrics: top level is not an object");
  Status st;
  for (const char* section : {"counters", "gauges", "histograms"}) {
    if (RequireMember(doc, section, JsonValue::Kind::kObject, &st,
                      "metrics") == nullptr) {
      return st;
    }
  }
  for (const auto& [name, value] : doc.Find("counters")->object()) {
    if (!value.is_number()) {
      return Bad("metrics counter \"" + name + "\" is not a number");
    }
  }
  for (const auto& [name, value] : doc.Find("gauges")->object()) {
    if (!value.is_number()) {
      return Bad("metrics gauge \"" + name + "\" is not a number");
    }
  }
  for (const auto& [name, histogram] : doc.Find("histograms")->object()) {
    const std::string where = "metrics histogram \"" + name + "\"";
    if (!histogram.is_object()) return Bad(where + " is not an object");
    for (const char* key : {"count", "sum", "min", "max"}) {
      if (RequireMember(histogram, key, JsonValue::Kind::kNumber, &st,
                        where) == nullptr) {
        return st;
      }
    }
    const JsonValue* bounds =
        RequireMember(histogram, "bounds", JsonValue::Kind::kArray, &st,
                      where);
    if (bounds == nullptr) return st;
    const JsonValue* buckets =
        RequireMember(histogram, "buckets", JsonValue::Kind::kArray, &st,
                      where);
    if (buckets == nullptr) return st;
    if (buckets->array().size() != bounds->array().size() + 1) {
      return Bad(where + ": buckets must have bounds+1 entries");
    }
    double bucket_sum = 0.0;
    for (const JsonValue& b : buckets->array()) {
      if (!b.is_number()) return Bad(where + ": bucket is not a number");
      bucket_sum += b.number_value();
    }
    const double count = histogram.Find("count")->number_value();
    if (std::fabs(bucket_sum - count) > 0.5) {
      return Bad(where + ": bucket counts do not sum to count");
    }
  }
  return Status::OK();
}

Status ValidateMetricsFile(const std::string& path) {
  Result<JsonValue> doc = ParseJsonFile(path);
  if (!doc.ok()) return doc.status();
  return ValidateMetrics(doc.value());
}

Status ValidateFlightRecord(const JsonValue& doc) {
  if (!doc.is_object()) {
    return Bad("flight record: top level is not an object");
  }
  Status st;
  const JsonValue* schema = RequireMember(
      doc, "schema", JsonValue::Kind::kString, &st, "flight record");
  if (schema == nullptr) return st;
  if (schema->string_value() != "ibfs.flight_record") {
    return Bad("flight record: unexpected schema \"" +
               schema->string_value() + "\"");
  }
  const JsonValue* version = RequireMember(
      doc, "schema_version", JsonValue::Kind::kNumber, &st, "flight record");
  if (version == nullptr) return st;
  if (version->number_value() < 1) {
    return Bad("flight record: bad schema_version");
  }
  if (RequireMember(doc, "trigger", JsonValue::Kind::kString, &st,
                    "flight record") == nullptr) {
    return st;
  }
  for (const char* key : {"ts_s", "dump_index"}) {
    if (RequireMember(doc, key, JsonValue::Kind::kNumber, &st,
                      "flight record") == nullptr) {
      return st;
    }
  }

  const JsonValue* queries = RequireMember(
      doc, "queries", JsonValue::Kind::kArray, &st, "flight record");
  if (queries == nullptr) return st;
  size_t qi = 0;
  for (const JsonValue& query : queries->array()) {
    const std::string where = "flight record query " + std::to_string(qi++);
    if (!query.is_object()) return Bad(where + ": not an object");
    if (RequireMember(query, "status", JsonValue::Kind::kString, &st,
                      where) == nullptr) {
      return st;
    }
    for (const char* key : {"ok", "cached", "degraded"}) {
      if (RequireMember(query, key, JsonValue::Kind::kBool, &st, where) ==
          nullptr) {
        return st;
      }
    }
    for (const char* key :
         {"ts_s", "query_id", "source", "attempts", "batch_id",
          "group_index", "queue_ms", "batch_ms", "execute_ms", "total_ms",
          "reached"}) {
      if (RequireMember(query, key, JsonValue::Kind::kNumber, &st, where) ==
          nullptr) {
        return st;
      }
    }
    for (const char* key : {"queue_ms", "execute_ms", "total_ms"}) {
      if (query.Find(key)->number_value() < 0.0) {
        return Bad(where + ": \"" + key + "\" is negative");
      }
    }
  }

  const JsonValue* events = RequireMember(
      doc, "events", JsonValue::Kind::kArray, &st, "flight record");
  if (events == nullptr) return st;
  size_t ei = 0;
  for (const JsonValue& event : events->array()) {
    const std::string where = "flight record event " + std::to_string(ei++);
    if (!event.is_object()) return Bad(where + ": not an object");
    if (RequireMember(event, "ts_s", JsonValue::Kind::kNumber, &st, where) ==
        nullptr) {
      return st;
    }
    for (const char* key : {"name", "detail"}) {
      if (RequireMember(event, key, JsonValue::Kind::kString, &st, where) ==
          nullptr) {
        return st;
      }
    }
  }
  return Status::OK();
}

Status ValidateFlightRecordFile(const std::string& path) {
  Result<JsonValue> doc = ParseJsonFile(path);
  if (!doc.ok()) return doc.status();
  return ValidateFlightRecord(doc.value());
}

}  // namespace ibfs::obs
