#include "obs/metrics.h"

#include <algorithm>
#include <fstream>
#include <sstream>

#include "obs/json.h"
#include "util/logging.h"

namespace ibfs::obs {

Histogram::Histogram(std::string name, std::span<const double> bounds)
    : name_(std::move(name)), bounds_(bounds.begin(), bounds.end()) {
  IBFS_CHECK(std::is_sorted(bounds_.begin(), bounds_.end()))
      << "histogram bounds must be ascending: " << name_;
  counts_.assign(bounds_.size() + 1, 0);
}

void Histogram::Observe(double value) {
  std::lock_guard<std::mutex> lock(mu_);
  if (count_ == 0) {
    min_ = value;
    max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  sum_ += value;
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
  ++counts_[static_cast<size_t>(it - bounds_.begin())];
}

double Histogram::Mean() const {
  std::lock_guard<std::mutex> lock(mu_);
  return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
}

double Histogram::Percentile(double p) const {
  std::lock_guard<std::mutex> lock(mu_);
  return BucketPercentile(bounds_, counts_, count_, min_, max_, p);
}

double BucketPercentile(std::span<const double> bounds,
                        std::span<const int64_t> counts, int64_t count,
                        double min, double max, double p) {
  if (count == 0) return 0.0;
  p = std::clamp(p, 0.0, 1.0);
  const double target = p * static_cast<double>(count);
  double cumulative = 0.0;
  for (size_t i = 0; i < counts.size(); ++i) {
    if (counts[i] == 0) continue;
    const double in_bucket = static_cast<double>(counts[i]);
    if (cumulative + in_bucket >= target) {
      // Bucket i covers (bounds[i-1], bounds[i]]; the outermost edges are
      // the observed extremes, and interior edges are clamped to them so
      // sparse histograms do not extrapolate past their data.
      double lo = i == 0 ? min : std::max(bounds[i - 1], min);
      double hi = i < bounds.size() ? std::min(bounds[i], max) : max;
      if (hi < lo) hi = lo;
      const double fraction =
          std::clamp((target - cumulative) / in_bucket, 0.0, 1.0);
      return lo + fraction * (hi - lo);
    }
    cumulative += in_bucket;
  }
  return max;
}

std::vector<int64_t> Histogram::bucket_counts() const {
  std::lock_guard<std::mutex> lock(mu_);
  return counts_;
}

Counter* MetricsRegistry::GetCounter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_
             .emplace(std::string(name),
                      std::make_unique<Counter>(std::string(name)))
             .first;
  }
  return it->second.get();
}

Gauge* MetricsRegistry::GetGauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_
             .emplace(std::string(name),
                      std::make_unique<Gauge>(std::string(name)))
             .first;
  }
  return it->second.get();
}

Histogram* MetricsRegistry::GetHistogram(std::string_view name,
                                         std::span<const double> bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(std::string(name),
                      std::make_unique<Histogram>(std::string(name), bounds))
             .first;
  }
  return it->second.get();
}

const Counter* MetricsRegistry::FindCounter(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  return it == counters_.end() ? nullptr : it->second.get();
}

const Gauge* MetricsRegistry::FindGauge(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  return it == gauges_.end() ? nullptr : it->second.get();
}

const Histogram* MetricsRegistry::FindHistogram(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : it->second.get();
}

std::vector<const Counter*> MetricsRegistry::Counters() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<const Counter*> out;
  out.reserve(counters_.size());
  for (const auto& [name, counter] : counters_) out.push_back(counter.get());
  return out;
}

std::vector<const Gauge*> MetricsRegistry::Gauges() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<const Gauge*> out;
  out.reserve(gauges_.size());
  for (const auto& [name, gauge] : gauges_) out.push_back(gauge.get());
  return out;
}

std::vector<const Histogram*> MetricsRegistry::Histograms() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<const Histogram*> out;
  out.reserve(histograms_.size());
  for (const auto& [name, histogram] : histograms_) {
    out.push_back(histogram.get());
  }
  return out;
}

void MetricsRegistry::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
}

void MetricsRegistry::WriteJson(std::ostream& os) const {
  std::lock_guard<std::mutex> lock(mu_);
  JsonWriter w(os);
  w.BeginObject();
  w.Key("counters");
  w.BeginObject();
  for (const auto& [name, counter] : counters_) {
    w.Key(name);
    w.Int(counter->value());
  }
  w.EndObject();
  w.Key("gauges");
  w.BeginObject();
  for (const auto& [name, gauge] : gauges_) {
    w.Key(name);
    w.Double(gauge->value());
  }
  w.EndObject();
  w.Key("histograms");
  w.BeginObject();
  for (const auto& [name, histogram] : histograms_) {
    w.Key(name);
    w.BeginObject();
    w.Key("count");
    w.Int(histogram->count());
    w.Key("sum");
    w.Double(histogram->sum());
    w.Key("min");
    w.Double(histogram->min());
    w.Key("max");
    w.Double(histogram->max());
    w.Key("bounds");
    w.BeginArray();
    for (double b : histogram->bounds()) w.Double(b);
    w.EndArray();
    w.Key("buckets");
    w.BeginArray();
    for (int64_t c : histogram->bucket_counts()) w.Int(c);
    w.EndArray();
    w.EndObject();
  }
  w.EndObject();
  w.EndObject();
}

std::string MetricsRegistry::ToJson() const {
  std::ostringstream os;
  WriteJson(os);
  return os.str();
}

Status MetricsRegistry::WriteFile(const std::string& path) const {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IoError("cannot open " + path + " for writing");
  WriteJson(out);
  out << '\n';
  if (!out) return Status::IoError("write to " + path + " failed");
  return Status::OK();
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* global = new MetricsRegistry();
  return *global;
}

std::vector<double> PowerOfTwoBounds(double first, int count) {
  std::vector<double> bounds;
  bounds.reserve(static_cast<size_t>(std::max(0, count)));
  double b = first;
  for (int i = 0; i < count; ++i) {
    bounds.push_back(b);
    b *= 2.0;
  }
  return bounds;
}

}  // namespace ibfs::obs
