#ifndef IBFS_OBS_METRICS_H_
#define IBFS_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace ibfs::obs {

/// Low-overhead metrics: named counters, gauges, and fixed-bucket
/// histograms held in a registry, exported as one JSON snapshot.
///
/// Naming convention (see docs/OBSERVABILITY.md): lower_snake_case path
/// segments joined by dots, `<subsystem>.<noun>[_<unit>]`, e.g.
/// `engine.levels`, `gpusim.load_transactions`, `ibfs.bu_search_length`.
///
/// Instrumented code caches the handle once (`Counter* c =
/// registry->GetCounter("engine.levels")`) and then pays one pointer
/// indirection plus an integer add per event; with no registry configured
/// the instrumentation sites skip on a null-pointer check, which is the
/// near-zero-cost disabled path.
///
/// Thread safety: the registry and every metric handle are safe to use
/// concurrently (the parallel engine increments from its group workers).
/// Counters and gauges are lock-free atomics; histograms take a short
/// per-histogram mutex. Counter totals are deterministic regardless of
/// thread interleaving (integer adds commute); a histogram's `sum()` of
/// floating-point samples may differ in the last ulps between runs because
/// accumulation order varies.

/// Monotonically increasing integer metric.
class Counter {
 public:
  explicit Counter(std::string name) : name_(std::move(name)) {}

  void Increment(int64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }
  const std::string& name() const { return name_; }

 private:
  std::string name_;
  std::atomic<int64_t> value_{0};
};

/// Last-written-value metric.
class Gauge {
 public:
  explicit Gauge(std::string name) : name_(std::move(name)) {}

  void Set(double value) { value_.store(value, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }
  const std::string& name() const { return name_; }

 private:
  std::string name_;
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram: `bounds` are inclusive upper bounds of the
/// finite buckets, ascending; one overflow bucket catches the rest. A
/// sample v lands in the first bucket with v <= bounds[i].
class Histogram {
 public:
  Histogram(std::string name, std::span<const double> bounds);

  void Observe(double value);

  const std::string& name() const { return name_; }
  int64_t count() const { return Locked(&Histogram::count_); }
  double sum() const { return Locked(&Histogram::sum_); }
  double min() const { return Locked(&Histogram::min_); }
  double max() const { return Locked(&Histogram::max_); }
  double Mean() const;
  /// Percentile estimate by linear interpolation over bucket bounds:
  /// walks the cumulative counts to the bucket containing rank p * count,
  /// then interpolates within that bucket's [lower, upper] span. The first
  /// bucket's lower edge and the overflow bucket's upper edge are the
  /// observed min/max, and every edge is clamped to [min, max], so the
  /// estimate never leaves the sampled range. p is clamped to [0, 1];
  /// returns 0 for an empty histogram. Accuracy is bounded by bucket width
  /// (pick bounds to taste); exact at p = 0 and p = 1.
  double Percentile(double p) const;
  const std::vector<double>& bounds() const { return bounds_; }
  /// bounds().size() + 1 entries; the last is the overflow bucket.
  /// Returns a snapshot copy (buckets mutate concurrently under Observe).
  std::vector<int64_t> bucket_counts() const;

 private:
  template <typename T>
  T Locked(T Histogram::* member) const {
    std::lock_guard<std::mutex> lock(mu_);
    return this->*member;
  }

  std::string name_;
  std::vector<double> bounds_;  // immutable after construction
  mutable std::mutex mu_;       // guards everything below
  std::vector<int64_t> counts_;
  int64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Owns all metrics of one run (or process). Handles returned by the
/// getters are stable for the registry's lifetime. Thread-safe: getters,
/// lookups, snapshots, and the handles themselves may be used concurrently
/// (the parallel group engine meters from every worker thread).
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Returns the named metric, creating it on first use. A histogram's
  /// bucket bounds are fixed by the first call; later calls ignore theirs.
  Counter* GetCounter(std::string_view name);
  Gauge* GetGauge(std::string_view name);
  Histogram* GetHistogram(std::string_view name,
                          std::span<const double> bounds);

  /// Lookup without creation; nullptr when the metric does not exist.
  const Counter* FindCounter(std::string_view name) const;
  const Gauge* FindGauge(std::string_view name) const;
  const Histogram* FindHistogram(std::string_view name) const;

  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return counters_.size() + gauges_.size() + histograms_.size();
  }

  /// Enumeration for exporters (the Prometheus text renderer, the live
  /// snapshot publisher): every metric of one kind, in name order. The
  /// returned handles are stable for the registry's lifetime; the vector
  /// is a snapshot of which metrics existed at call time.
  std::vector<const Counter*> Counters() const;
  std::vector<const Gauge*> Gauges() const;
  std::vector<const Histogram*> Histograms() const;

  /// Drops every metric (tests; long-lived processes between runs).
  void Clear();

  /// Snapshot as one JSON object:
  ///   {"counters":{...},"gauges":{...},
  ///    "histograms":{"n":{"count":..,"sum":..,"min":..,"max":..,
  ///                       "bounds":[..],"buckets":[..]}}}
  void WriteJson(std::ostream& os) const;
  std::string ToJson() const;
  Status WriteFile(const std::string& path) const;

  /// Process-wide default registry, used by the bench harness and anything
  /// without a per-run registry to hand around.
  static MetricsRegistry& Global();

 private:
  mutable std::mutex mu_;  // guards the three maps (not the metrics within)
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

/// Geometrically spaced histogram bounds {1, 2, 4, ...}: `count` powers of
/// two starting at `first` — the workhorse layout for size-like metrics.
std::vector<double> PowerOfTwoBounds(double first, int count);

/// The bucket-walk percentile estimator behind Histogram::Percentile,
/// exposed so windowed histograms (obs/live.h) interpolate identically:
/// `counts` has bounds.size() + 1 entries (last = overflow), `count` their
/// sum, and `min`/`max` the observed extremes that clamp the outer edges.
/// Returns 0 for an empty distribution.
double BucketPercentile(std::span<const double> bounds,
                        std::span<const int64_t> counts, int64_t count,
                        double min, double max, double p);

}  // namespace ibfs::obs

#endif  // IBFS_OBS_METRICS_H_
