#ifndef IBFS_OBS_VALIDATE_H_
#define IBFS_OBS_VALIDATE_H_

#include <string>

#include "obs/json.h"
#include "util/status.h"

namespace ibfs::obs {

/// Structural validators for the observability output formats, used by the
/// `ibfs_cli check` command and the ctest smoke tests so every format the
/// subsystem emits is machine-verified on each `ctest` run — no external
/// JSON tooling required.

/// Checks a parsed Chrome-trace document: top-level object with a
/// "traceEvents" array; every event carries name/ph/pid/tid with the right
/// types; "X" events carry a non-negative "dur"; at least one span when
/// `require_spans` is set.
Status ValidateTrace(const JsonValue& doc, bool require_spans = false);
Status ValidateTraceFile(const std::string& path, bool require_spans = false);

/// Checks a parsed run report against the "ibfs.run_report" schema:
/// schema/version match, required sections present, group levels and phase
/// rows carry their numeric fields.
Status ValidateRunReport(const JsonValue& doc);
Status ValidateRunReportFile(const std::string& path);

/// Checks a parsed service report against the "ibfs.service_report"
/// schema: schema/version match, workload/service/results sections with
/// their numeric fields, and each latency_ms distribution carrying
/// ordered p50 <= p95 <= p99 percentiles.
Status ValidateServiceReport(const JsonValue& doc);
Status ValidateServiceReportFile(const std::string& path);

/// Checks a parsed resilience report against the "ibfs.resilience_report"
/// schema: schema/version match, workload/fault_plan/outcomes/verification
/// sections with their fields, non-negative recovery counters, and
/// checksum_mismatches <= checksums_compared.
Status ValidateResilienceReport(const JsonValue& doc);
Status ValidateResilienceReportFile(const std::string& path);

/// Checks a parsed fleet report against the "ibfs.fleet_report" schema:
/// schema/version match, fleet/workload/aggregate/verification sections
/// with their fields, every shards_detail row carrying a known health
/// state and non-negative counters, unanswered >= 0, and
/// checksum_mismatches <= checksums_compared.
Status ValidateFleetReport(const JsonValue& doc);
Status ValidateFleetReportFile(const std::string& path);

/// Checks a metrics snapshot: counters/gauges/histograms objects; each
/// histogram's buckets array is bounds+1 long and sums to count.
Status ValidateMetrics(const JsonValue& doc);
Status ValidateMetricsFile(const std::string& path);

/// Checks a flight-recorder dump against the "ibfs.flight_record" schema:
/// schema/version/trigger present, every queries[] entry carrying the full
/// access-record field set (ids, flags, latency breakdown), every events[]
/// entry carrying ts_s/name/detail.
Status ValidateFlightRecord(const JsonValue& doc);
Status ValidateFlightRecordFile(const std::string& path);

}  // namespace ibfs::obs

#endif  // IBFS_OBS_VALIDATE_H_
