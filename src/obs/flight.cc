#include "obs/flight.h"

#include <sstream>

#include "obs/json.h"

namespace ibfs::obs {

FlightRecorder::FlightRecorder(Options options)
    : options_(std::move(options)) {}

void FlightRecorder::RecordQuery(const AccessRecord& record) {
  std::lock_guard<std::mutex> lock(mu_);
  queries_.push_back(record);
  while (queries_.size() > options_.max_queries) queries_.pop_front();
}

void FlightRecorder::RecordEvent(double now_s, std::string name,
                                 std::string detail) {
  std::lock_guard<std::mutex> lock(mu_);
  events_.push_back(FlightEvent{now_s, std::move(name), std::move(detail)});
  while (events_.size() > options_.max_events) events_.pop_front();
}

void FlightRecorder::WriteJson(std::ostream& os, std::string_view reason,
                               double now_s) const {
  std::lock_guard<std::mutex> lock(mu_);
  JsonWriter w(os);
  w.BeginObject();
  w.Key("schema");
  w.String("ibfs.flight_record");
  w.Key("schema_version");
  w.Int(1);
  w.Key("trigger");
  w.String(reason);
  w.Key("ts_s");
  w.Double(now_s);
  w.Key("dump_index");
  w.Int(dumps_);
  w.Key("queries");
  w.BeginArray();
  for (const AccessRecord& record : queries_) {
    std::ostringstream one;
    record.WriteJson(one);
    w.Raw(one.str());
  }
  w.EndArray();
  w.Key("events");
  w.BeginArray();
  for (const FlightEvent& event : events_) {
    w.BeginObject();
    w.Key("ts_s");
    w.Double(event.ts_s);
    w.Key("name");
    w.String(event.name);
    w.Key("detail");
    w.String(event.detail);
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  os << '\n';
}

bool FlightRecorder::Trigger(std::string_view reason, double now_s,
                             Status* error) {
  if (error != nullptr) *error = Status::OK();
  std::string content;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (options_.dump_path.empty()) return false;
    if (last_dump_s_ >= 0.0 &&
        now_s - last_dump_s_ < options_.min_dump_interval_s) {
      return false;
    }
    last_dump_s_ = now_s;
    ++dumps_;
  }
  std::ostringstream os;
  WriteJson(os, reason, now_s);
  content = os.str();
  const Status st = WriteFileAtomic(options_.dump_path, content);
  if (!st.ok()) {
    if (error != nullptr) *error = st;
    return false;
  }
  return true;
}

int64_t FlightRecorder::dumps() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dumps_;
}

size_t FlightRecorder::query_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queries_.size();
}

size_t FlightRecorder::event_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_.size();
}

}  // namespace ibfs::obs
