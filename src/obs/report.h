#ifndef IBFS_OBS_REPORT_H_
#define IBFS_OBS_REPORT_H_

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "util/status.h"

namespace ibfs::obs {

class MetricsRegistry;

/// The machine-readable run report: one JSON document unifying what the
/// text UI scatters across `--profile` tables, GroupTrace getters, and
/// stdout lines. Schema name "ibfs.run_report", versioned; see
/// docs/OBSERVABILITY.md for the field reference. The structs here are
/// deliberately plain (no engine types) so the obs layer stays below core;
/// core/observe.h converts an EngineResult into this schema.

/// One traversal level of one group (mirrors ibfs::LevelTrace).
struct ReportLevel {
  int level = 0;
  bool bottom_up = false;
  int64_t jfq_size = 0;
  int64_t private_fq_sum = 0;
  int64_t edges_inspected = 0;
  int64_t new_visits = 0;
};

/// One executed BFS group.
struct ReportGroup {
  int index = 0;
  int instance_count = 0;
  double sim_seconds = 0.0;
  double sharing_degree = 0.0;
  double sharing_ratio = 0.0;
  /// GroupBy hub vertex this group was bucketed on; -1 when the group was
  /// formed randomly (leftovers, or a non-GroupBy policy).
  int64_t hub = -1;
  std::vector<int64_t> sources;
  std::vector<ReportLevel> levels;
};

/// One kernel phase's aggregated device counters (mirrors
/// gpusim::ProfileRow / the nvprof-style table).
struct ReportPhase {
  std::string name;
  double seconds = 0.0;
  int64_t launches = 0;
  uint64_t load_transactions = 0;
  uint64_t store_transactions = 0;
  uint64_t load_requests = 0;
  uint64_t store_requests = 0;
  double load_transactions_per_request = 0.0;
  uint64_t atomic_ops = 0;
  uint64_t shared_bytes = 0;
};

/// Multi-GPU section (present for `cluster` runs).
struct ReportCluster {
  int device_count = 0;
  std::string policy;
  double makespan_seconds = 0.0;
  double speedup = 0.0;
  double teps = 0.0;
  std::vector<double> device_seconds;
};

/// Partitioned-execution section (present for `cluster --partitions` runs):
/// the 1D cut, the frontier-exchange cost model's inputs, and the
/// compute/comm split of the simulated time.
struct ReportComm {
  int partitions = 0;
  std::string schedule;  // "allgather" | "butterfly"
  double link_gbps = 0.0;
  double link_us = 0.0;
  double compute_seconds = 0.0;
  double comm_seconds = 0.0;
  int64_t bytes_on_wire = 0;
  int64_t rounds = 0;
  int64_t supersteps = 0;
  double edge_imbalance = 0.0;
  std::vector<int64_t> partition_vertices;
  std::vector<int64_t> partition_edges;
  std::vector<double> device_seconds;
};

/// Top-level run report.
struct RunReport {
  static constexpr const char* kSchema = "ibfs.run_report";
  static constexpr int kSchemaVersion = 1;

  // Workload.
  std::string graph;
  int64_t vertex_count = 0;
  int64_t edge_count = 0;
  std::string strategy;
  std::string grouping;
  int64_t instances = 0;
  int64_t group_size = 0;

  // Headline results.
  double sim_seconds = 0.0;
  double wall_seconds = 0.0;
  double teps = 0.0;
  double sharing_ratio = 0.0;
  double sharing_ratio_top_down = 0.0;
  double sharing_ratio_bottom_up = 0.0;
  int64_t rule_matched = 0;

  std::vector<ReportGroup> groups;
  std::vector<ReportPhase> phases;
  ReportPhase totals;

  bool has_cluster = false;
  ReportCluster cluster;

  bool has_comm = false;
  ReportComm comm;

  /// Serializes the report; when `metrics` is non-null its snapshot is
  /// embedded under the "metrics" key.
  void WriteJson(std::ostream& os,
                 const MetricsRegistry* metrics = nullptr) const;
  Status WriteFile(const std::string& path,
                   const MetricsRegistry* metrics = nullptr) const;
};

/// One latency distribution of the service report, in milliseconds.
/// Percentiles come from obs::Histogram::Percentile (bucket-interpolated);
/// mean and max are exact.
struct ReportLatency {
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
  double mean = 0.0;
  double max = 0.0;
};

/// The online-serving run report ("ibfs.service_report"): what one
/// `ibfs_cli serve` run or serve_bench point measured — throughput,
/// queue/execute/total latency SLOs, and the dynamic batcher's sharing
/// ratio against the oracle that saw every source up front. Like
/// RunReport, this is a plain struct so the obs layer stays below core;
/// service/workload.h builds it from a driven workload.
struct ServiceReport {
  static constexpr const char* kSchema = "ibfs.service_report";
  /// v2 added the "cache" section (result/plan cache counters).
  static constexpr int kSchemaVersion = 2;

  // Workload.
  std::string graph;
  int64_t vertex_count = 0;
  int64_t edge_count = 0;
  std::string strategy;
  std::string grouping;
  std::string arrival;
  double offered_qps = 0.0;
  double duration_seconds = 0.0;
  int64_t queries = 0;

  // Batcher configuration and behavior.
  int64_t max_batch = 0;
  double max_delay_ms = 0.0;
  int64_t execute_threads = 0;
  int64_t batches = 0;
  int64_t groups = 0;
  int64_t size_closes = 0;
  int64_t deadline_closes = 0;
  int64_t shutdown_closes = 0;
  double mean_batch_size = 0.0;

  // Headline results.
  int64_t completed = 0;
  int64_t failed = 0;
  double achieved_qps = 0.0;
  double wall_seconds = 0.0;
  double sim_seconds = 0.0;
  double teps = 0.0;
  double sharing_ratio = 0.0;
  double oracle_sharing_ratio = 0.0;
  /// sharing_ratio / oracle_sharing_ratio (0 when the oracle is 0) — the
  /// fraction of the offline GroupBy benefit dynamic batching preserved.
  double sharing_fraction = 0.0;

  // Latency SLO breakdown (milliseconds).
  ReportLatency queue_ms;
  ReportLatency execute_ms;
  ReportLatency total_ms;

  // Result/plan cache (schema v2). Counters are zero when the cache is
  // disabled; cache_hit_ratio = hits / (hits + misses).
  bool cache_enabled = false;
  int64_t cache_hits = 0;
  int64_t cache_misses = 0;
  int64_t cache_insertions = 0;
  int64_t cache_evictions = 0;
  int64_t cache_quarantined = 0;
  int64_t cache_entries = 0;
  int64_t cache_bytes_resident = 0;
  double cache_hit_ratio = 0.0;
  int64_t plan_hits = 0;
  int64_t plan_misses = 0;

  /// Serializes the report; when `metrics` is non-null its snapshot is
  /// embedded under the "metrics" key.
  void WriteJson(std::ostream& os,
                 const MetricsRegistry* metrics = nullptr) const;
  Status WriteFile(const std::string& path,
                   const MetricsRegistry* metrics = nullptr) const;
};

/// The chaos-run report ("ibfs.resilience_report"): what one
/// `ibfs_cli chaos` run measured — the injected fault plan, every recovery
/// action the service took (retries, fallbacks, breakers, sheds,
/// deadlines), and the checksum verification of every completed query
/// against a fault-free baseline run. Plain struct like the others so the
/// obs layer stays below core; service/chaos.h builds it.
struct ResilienceReport {
  static constexpr const char* kSchema = "ibfs.resilience_report";
  static constexpr int kSchemaVersion = 1;

  // Workload.
  std::string graph;
  int64_t vertex_count = 0;
  int64_t edge_count = 0;
  std::string strategy;
  std::string grouping;
  int64_t queries = 0;
  double offered_qps = 0.0;
  double duration_seconds = 0.0;

  // Injected fault plan and the resilience configuration facing it.
  std::string fault_spec;  // canonical FaultPlan::ToString form
  int64_t device_count = 0;
  int64_t fault_seed = 0;
  int64_t max_attempts = 0;
  double deadline_ms = 0.0;
  int64_t max_pending = 0;
  bool cpu_fallback = false;

  // Outcomes: query dispositions and recovery actions.
  int64_t completed = 0;
  int64_t failed = 0;
  int64_t deadline_exceeded = 0;
  int64_t shed = 0;
  int64_t degraded = 0;
  int64_t retries = 0;
  int64_t transient_faults = 0;
  int64_t corruptions_detected = 0;
  int64_t breaker_opened = 0;
  int64_t fallback_groups = 0;
  double wall_seconds = 0.0;

  // Verification: every completed query's depth checksum compared against
  // the fault-free baseline execution of the same source.
  int64_t checksums_compared = 0;
  int64_t checksum_mismatches = 0;

  /// Serializes the report; when `metrics` is non-null its snapshot is
  /// embedded under the "metrics" key.
  void WriteJson(std::ostream& os,
                 const MetricsRegistry* metrics = nullptr) const;
  Status WriteFile(const std::string& path,
                   const MetricsRegistry* metrics = nullptr) const;
};

/// One shard's slice of the fleet report: its health as the front door saw
/// it, how many queries the ring routed to it, and its own service
/// counters.
struct FleetReportShard {
  int shard = 0;
  std::string health;  // "healthy" | "degraded" | "down"
  /// Active ring weight (0 = off the ring). Schema v2.
  int64_t weight = 0;
  int64_t routed = 0;
  int64_t queries = 0;
  int64_t completed = 0;
  int64_t failed = 0;
  int64_t degraded = 0;
  int64_t cache_hits = 0;
  int64_t batches = 0;
  int64_t groups = 0;
  double sim_seconds = 0.0;
};

/// The distributed-fleet run report ("ibfs.fleet_report"): what one
/// `ibfs_cli fleet` run measured — the ring configuration, per-shard
/// routing/health/counters, the aggregate merged across shards, the
/// scatter-gather accounting, and the checksum verification that the
/// fleet's answers are bit-identical to a single service's. Plain struct
/// like the others so the obs layer stays below core; fleet/fleet_workload
/// builds it.
struct FleetReport {
  static constexpr const char* kSchema = "ibfs.fleet_report";
  /// v2 adds the "elasticity" section (replication, joins, warmup,
  /// hedging, recoveries, rebalancing) and per-shard ring weights.
  static constexpr int kSchemaVersion = 2;

  // Fleet configuration.
  std::string graph;
  int64_t vertex_count = 0;
  int64_t edge_count = 0;
  std::string strategy;
  std::string grouping;
  int64_t shards = 0;
  int64_t vnodes = 0;
  int64_t ring_seed = 0;

  // Workload.
  std::string arrival;
  double offered_qps = 0.0;
  double duration_seconds = 0.0;
  int64_t queries = 0;
  /// Sources per scatter-gather query (1 = single-source submits only).
  int64_t multi_source = 0;
  int64_t multi_queries = 0;
  /// Which shard was killed mid-run (-1 = none).
  int64_t killed_shard = -1;
  /// Shards joined mid-run (0 = none).
  int64_t joined_shards = 0;

  // Elasticity & replication (schema v2): the configured replication
  // factor and the front door's join/warmup/hedge/recovery/rebalance
  // counters.
  int64_t replication = 1;
  int64_t shard_joins = 0;
  int64_t warmup_entries = 0;
  int64_t hedges_fired = 0;
  int64_t hedges_won = 0;
  int64_t hedges_cancelled = 0;
  int64_t replica_mismatches = 0;
  int64_t replica_cache_writes = 0;
  int64_t recoveries = 0;
  int64_t rebalance_runs = 0;
  int64_t weight_changes = 0;

  // Per-shard sections, indexed by shard.
  std::vector<FleetReportShard> shard_rows;

  // Aggregate across shards plus front-door counters.
  int64_t completed = 0;
  int64_t failed = 0;
  double achieved_qps = 0.0;
  double wall_seconds = 0.0;
  double imbalance = 0.0;
  int64_t failover_reroutes = 0;
  int64_t fallback_answers = 0;
  int64_t healthy = 0;
  int64_t degraded = 0;
  int64_t down = 0;

  // Determinism + availability verification: FNV-1a fold of the OK
  // results' depth checksums in submit order (shard-count invariant),
  // futures that never resolved (must be 0), and the comparison of every
  // OK answer against a fault-free baseline.
  uint64_t checksum = 0;
  int64_t unanswered = 0;
  int64_t checksums_compared = 0;
  int64_t checksum_mismatches = 0;

  // Total-latency distribution (milliseconds).
  ReportLatency total_ms;

  /// Serializes the report; when `metrics` is non-null its snapshot is
  /// embedded under the "metrics" key.
  void WriteJson(std::ostream& os,
                 const MetricsRegistry* metrics = nullptr) const;
  Status WriteFile(const std::string& path,
                   const MetricsRegistry* metrics = nullptr) const;
};

}  // namespace ibfs::obs

#endif  // IBFS_OBS_REPORT_H_
