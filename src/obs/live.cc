#include "obs/live.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>

#include "obs/json.h"
#include "obs/metrics.h"
#include "util/logging.h"

namespace ibfs::obs {

namespace {

/// Latency-style bounds for the rolling total-latency histogram: 0.25 ms ..
/// ~8 s in powers of two, matching the cumulative service.total_ms layout.
std::vector<double> LiveLatencyBounds() { return PowerOfTwoBounds(0.25, 16); }

}  // namespace

// ---------------------------------------------------------------------------
// RollingWindow

RollingWindow::RollingWindow(double window_seconds, int slots)
    : window_seconds_(window_seconds),
      slot_width_s_(window_seconds / std::max(1, slots)),
      ring_(static_cast<size_t>(std::max(1, slots))) {
  IBFS_CHECK(window_seconds > 0.0) << "window must be positive";
}

int64_t RollingWindow::EpochOf(double t_s) const {
  return static_cast<int64_t>(std::floor(t_s / slot_width_s_));
}

void RollingWindow::Add(double now_s, double delta) {
  int64_t epoch = EpochOf(now_s);
  std::lock_guard<std::mutex> lock(mu_);
  // Backwards clock: a write within the live window lands in its own slot
  // (still distinct from every newer epoch's ring index), but one older
  // than the window would reset a slot that currently holds the *newest*
  // data and stamp it with an ancient epoch. Clamp such writes to the
  // latest time already seen — the write-side twin of Sum's read clamp.
  if (epoch < latest_epoch_ - static_cast<int64_t>(ring_.size()) + 1) {
    epoch = latest_epoch_;
  }
  latest_epoch_ = std::max(latest_epoch_, epoch);
  Slot& slot = ring_[static_cast<size_t>(epoch % static_cast<int64_t>(
                         ring_.size()))];
  if (slot.epoch != epoch) {
    // The ring wrapped: this slot last held data from >= window_seconds ago.
    slot.epoch = epoch;
    slot.sum = 0.0;
  }
  slot.sum += delta;
}

double RollingWindow::Sum(double now_s) const {
  std::lock_guard<std::mutex> lock(mu_);
  const int64_t epoch = std::max(latest_epoch_, EpochOf(now_s));
  const int64_t oldest = epoch - static_cast<int64_t>(ring_.size()) + 1;
  double sum = 0.0;
  for (const Slot& slot : ring_) {
    if (slot.epoch >= oldest && slot.epoch <= epoch) sum += slot.sum;
  }
  return sum;
}

double RollingWindow::RatePerSec(double now_s) const {
  return Sum(now_s) / window_seconds_;
}

// ---------------------------------------------------------------------------
// RollingHistogram

RollingHistogram::RollingHistogram(double window_seconds,
                                   std::span<const double> bounds, int slots)
    : window_seconds_(window_seconds),
      slot_width_s_(window_seconds / std::max(1, slots)),
      bounds_(bounds.begin(), bounds.end()),
      ring_(static_cast<size_t>(std::max(1, slots))) {
  IBFS_CHECK(window_seconds > 0.0) << "window must be positive";
  IBFS_CHECK(std::is_sorted(bounds_.begin(), bounds_.end()))
      << "histogram bounds must be ascending";
  for (Slot& slot : ring_) slot.counts.assign(bounds_.size() + 1, 0);
}

int64_t RollingHistogram::EpochOf(double t_s) const {
  return static_cast<int64_t>(std::floor(t_s / slot_width_s_));
}

void RollingHistogram::Observe(double now_s, double value) {
  int64_t epoch = EpochOf(now_s);
  std::lock_guard<std::mutex> lock(mu_);
  // Same backwards-clock clamp as RollingWindow::Add: an over-stale write
  // must not reset the slot holding the newest samples.
  if (epoch < latest_epoch_ - static_cast<int64_t>(ring_.size()) + 1) {
    epoch = latest_epoch_;
  }
  latest_epoch_ = std::max(latest_epoch_, epoch);
  Slot& slot = ring_[static_cast<size_t>(epoch % static_cast<int64_t>(
                         ring_.size()))];
  if (slot.epoch != epoch) {
    slot.epoch = epoch;
    std::fill(slot.counts.begin(), slot.counts.end(), 0);
    slot.count = 0;
    slot.min = 0.0;
    slot.max = 0.0;
  }
  if (slot.count == 0) {
    slot.min = value;
    slot.max = value;
  } else {
    slot.min = std::min(slot.min, value);
    slot.max = std::max(slot.max, value);
  }
  ++slot.count;
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
  ++slot.counts[static_cast<size_t>(it - bounds_.begin())];
}

RollingHistogram::Merged RollingHistogram::MergeLocked(double now_s) const {
  Merged merged;
  merged.counts.assign(bounds_.size() + 1, 0);
  // Stale reads see the window as of the latest time already written,
  // matching RollingWindow::Sum — without the clamp a backwards `now_s`
  // would silently hide the newest slots (slot.epoch > epoch).
  const int64_t epoch = std::max(latest_epoch_, EpochOf(now_s));
  const int64_t oldest = epoch - static_cast<int64_t>(ring_.size()) + 1;
  for (const Slot& slot : ring_) {
    if (slot.epoch < oldest || slot.epoch > epoch || slot.count == 0) continue;
    for (size_t i = 0; i < merged.counts.size(); ++i) {
      merged.counts[i] += slot.counts[i];
    }
    if (merged.count == 0) {
      merged.min = slot.min;
      merged.max = slot.max;
    } else {
      merged.min = std::min(merged.min, slot.min);
      merged.max = std::max(merged.max, slot.max);
    }
    merged.count += slot.count;
  }
  return merged;
}

int64_t RollingHistogram::Count(double now_s) const {
  std::lock_guard<std::mutex> lock(mu_);
  return MergeLocked(now_s).count;
}

double RollingHistogram::Percentile(double now_s, double p) const {
  std::lock_guard<std::mutex> lock(mu_);
  const Merged m = MergeLocked(now_s);
  return BucketPercentile(bounds_, m.counts, m.count, m.min, m.max, p);
}

double RollingHistogram::Min(double now_s) const {
  std::lock_guard<std::mutex> lock(mu_);
  return MergeLocked(now_s).min;
}

double RollingHistogram::Max(double now_s) const {
  std::lock_guard<std::mutex> lock(mu_);
  return MergeLocked(now_s).max;
}

// ---------------------------------------------------------------------------
// AccessRecord / AccessLog

void AccessRecord::WriteJson(std::ostream& os) const {
  JsonWriter w(os);
  w.BeginObject();
  w.Key("ts_s");
  w.Double(ts_s);
  w.Key("query_id");
  w.Int(query_id);
  w.Key("source");
  w.Int(source);
  w.Key("status");
  w.String(status);
  w.Key("ok");
  w.Bool(ok);
  w.Key("cached");
  w.Bool(cached);
  w.Key("degraded");
  w.Bool(degraded);
  w.Key("attempts");
  w.Int(attempts);
  w.Key("batch_id");
  w.Int(batch_id);
  w.Key("group_index");
  w.Int(group_index);
  w.Key("queue_ms");
  w.Double(queue_ms);
  w.Key("batch_ms");
  w.Double(batch_ms);
  w.Key("execute_ms");
  w.Double(execute_ms);
  w.Key("total_ms");
  w.Double(total_ms);
  w.Key("reached");
  w.Int(reached);
  w.EndObject();
}

Result<std::unique_ptr<AccessLog>> AccessLog::Open(const std::string& path) {
  auto stream = std::make_unique<std::ofstream>(path, std::ios::app);
  if (!*stream) {
    return Status::IoError("cannot open access log " + path + " for append");
  }
  auto log = std::unique_ptr<AccessLog>(new AccessLog());
  log->os_ = stream.get();
  log->owned_ = std::move(stream);
  return log;
}

AccessLog::AccessLog(std::ostream* os) : os_(os) {}

AccessLog::~AccessLog() = default;

void AccessLog::Append(const AccessRecord& record) {
  std::lock_guard<std::mutex> lock(mu_);
  record.WriteJson(*os_);
  *os_ << '\n';
  os_->flush();
  lines_.fetch_add(1, std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// LiveStats

LiveStats::LiveStats(double window_seconds, int slots)
    : completions_(window_seconds, slots),
      errors_(window_seconds, slots),
      total_ms_(window_seconds, LiveLatencyBounds(), slots) {}

void LiveStats::RecordQuery(double now_s, double total_ms, bool ok) {
  completions_.Add(now_s);
  if (!ok) errors_.Add(now_s);
  total_ms_.Observe(now_s, total_ms);
}

double LiveStats::QueryRate(double now_s) const {
  return completions_.RatePerSec(now_s);
}

double LiveStats::ErrorRatio(double now_s) const {
  const double total = completions_.Sum(now_s);
  if (total <= 0.0) return 0.0;
  return errors_.Sum(now_s) / total;
}

double LiveStats::PercentileMs(double now_s, double p) const {
  return total_ms_.Percentile(now_s, p);
}

int64_t LiveStats::WindowCount(double now_s) const {
  return total_ms_.Count(now_s);
}

void LiveStats::PublishTo(MetricsRegistry* metrics, double now_s) const {
  if (metrics == nullptr) return;
  metrics->GetGauge("live.qps")->Set(QueryRate(now_s));
  metrics->GetGauge("live.error_ratio")->Set(ErrorRatio(now_s));
  metrics->GetGauge("live.p50_ms")->Set(PercentileMs(now_s, 0.50));
  metrics->GetGauge("live.p95_ms")->Set(PercentileMs(now_s, 0.95));
  metrics->GetGauge("live.p99_ms")->Set(PercentileMs(now_s, 0.99));
  metrics->GetGauge("live.window_seconds")->Set(window_seconds());
}

// ---------------------------------------------------------------------------
// Prometheus text exposition

std::string PrometheusName(std::string_view metric_name) {
  std::string out = "ibfs_";
  out.reserve(out.size() + metric_name.size());
  for (char c : metric_name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_';
    out.push_back(ok ? c : '_');
  }
  return out;
}

namespace {

/// Prometheus floats: integers print bare, +Inf for the overflow bound.
void AppendNumber(std::string& out, double v) {
  if (std::isinf(v)) {
    out += v > 0 ? "+Inf" : "-Inf";
    return;
  }
  char buf[64];
  if (v == std::floor(v) && std::abs(v) < 1e15) {
    std::snprintf(buf, sizeof(buf), "%.0f", v);
  } else {
    std::snprintf(buf, sizeof(buf), "%.9g", v);
  }
  out += buf;
}

}  // namespace

std::string RenderPrometheusText(const MetricsRegistry& registry) {
  std::string out;
  for (const Counter* counter : registry.Counters()) {
    const std::string name = PrometheusName(counter->name()) + "_total";
    out += "# TYPE " + name + " counter\n";
    out += name + " ";
    AppendNumber(out, static_cast<double>(counter->value()));
    out += '\n';
  }
  for (const Gauge* gauge : registry.Gauges()) {
    const std::string name = PrometheusName(gauge->name());
    out += "# TYPE " + name + " gauge\n";
    out += name + " ";
    AppendNumber(out, gauge->value());
    out += '\n';
  }
  for (const Histogram* histogram : registry.Histograms()) {
    const std::string name = PrometheusName(histogram->name());
    out += "# TYPE " + name + " histogram\n";
    const std::vector<double>& bounds = histogram->bounds();
    const std::vector<int64_t> counts = histogram->bucket_counts();
    int64_t cumulative = 0;
    for (size_t i = 0; i < counts.size(); ++i) {
      cumulative += counts[i];
      const double le =
          i < bounds.size() ? bounds[i]
                            : std::numeric_limits<double>::infinity();
      out += name + "_bucket{le=\"";
      AppendNumber(out, le);
      out += "\"} ";
      AppendNumber(out, static_cast<double>(cumulative));
      out += '\n';
    }
    out += name + "_sum ";
    AppendNumber(out, histogram->sum());
    out += '\n';
    out += name + "_count ";
    AppendNumber(out, static_cast<double>(histogram->count()));
    out += '\n';
  }
  return out;
}

// ---------------------------------------------------------------------------
// Atomic file publication

Status WriteFileAtomic(const std::string& path, std::string_view content) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) return Status::IoError("cannot open " + tmp + " for writing");
    out.write(content.data(),
              static_cast<std::streamsize>(content.size()));
    if (!out) return Status::IoError("write to " + tmp + " failed");
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::IoError("rename " + tmp + " -> " + path + " failed");
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// LiveExporter

LiveExporter::LiveExporter(LiveExporterOptions options,
                           const MetricsRegistry* metrics,
                           std::function<void(double)> on_tick)
    : options_(std::move(options)),
      metrics_(metrics),
      on_tick_(std::move(on_tick)) {}

LiveExporter::~LiveExporter() { Stop(); }

void LiveExporter::Start() {
  std::lock_guard<std::mutex> lock(mu_);
  if (running_) return;
  stop_requested_ = false;
  running_ = true;
  started_ = std::chrono::steady_clock::now();
  thread_ = std::thread(&LiveExporter::Loop, this);
}

void LiveExporter::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!running_) return;
    stop_requested_ = true;
  }
  cv_.notify_all();
  thread_.join();
  running_ = false;
}

void LiveExporter::Loop() {
  const auto interval = std::chrono::duration<double>(options_.interval_s);
  std::unique_lock<std::mutex> lock(mu_);
  while (true) {
    // True when woken by Stop: publish one final tick, then exit, so
    // even an immediately-stopped exporter leaves fresh files behind.
    const bool stopping =
        cv_.wait_for(lock, interval, [this] { return stop_requested_; });
    const double now_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      started_)
            .count();
    lock.unlock();
    const Status st = WriteOnce(now_s);
    if (!st.ok()) {
      IBFS_LOG(Warning) << "live exporter: " << st.ToString();
    }
    if (stopping) return;
    lock.lock();
  }
}

Status LiveExporter::WriteOnce(double now_s) {
  if (on_tick_) on_tick_(now_s);
  ticks_.fetch_add(1, std::memory_order_relaxed);
  Status first = Status::OK();
  auto note = [&first](Status st) {
    if (first.ok() && !st.ok()) first = std::move(st);
  };
  if (metrics_ == nullptr) return first;
  if (!options_.live_out.empty()) {
    std::ostringstream os;
    JsonWriter w(os);
    w.BeginObject();
    w.Key("schema");
    w.String("ibfs.live_snapshot");
    w.Key("schema_version");
    w.Int(1);
    w.Key("uptime_s");
    w.Double(now_s);
    w.Key("metrics");
    w.Raw(metrics_->ToJson());
    w.EndObject();
    os << '\n';
    note(WriteFileAtomic(options_.live_out, os.str()));
  }
  if (!options_.prom_out.empty()) {
    note(WriteFileAtomic(options_.prom_out, RenderPrometheusText(*metrics_)));
  }
  if (!options_.metrics_out.empty()) {
    note(WriteFileAtomic(options_.metrics_out, metrics_->ToJson() + "\n"));
  }
  return first;
}

}  // namespace ibfs::obs
