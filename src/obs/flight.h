#ifndef IBFS_OBS_FLIGHT_H_
#define IBFS_OBS_FLIGHT_H_

#include <cstdint>
#include <deque>
#include <mutex>
#include <ostream>
#include <string>

#include "obs/live.h"
#include "util/status.h"

namespace ibfs::obs {

/// Flight recorder: bounded rings of the most recent per-query access
/// records and notable service events, dumped as one schema-validated
/// `ibfs.flight_record` JSON document when something goes wrong (SLO
/// burn-rate alert, circuit-breaker open, cache quarantine). The point is
/// post-hoc debuggability of a bad minute without having had full tracing
/// on: the recorder is always armed, costs O(capacity) memory, and the
/// dump captures what led up to the trigger. Dumps are rate-limited so a
/// sustained breach produces one fresh file per interval, not one per
/// query; each dump atomically overwrites `dump_path` with the latest
/// window (the newest dump is the one you want). Thread-safe; explicit
/// `now_s` timestamps as in obs/live.h.

/// A notable moment worth keeping alongside the query ring — breaker
/// opens, fallbacks, quarantines, SLO transitions.
struct FlightEvent {
  double ts_s = 0.0;
  /// Short machine-readable kind: "breaker_opened", "slo_alert_fired", ...
  std::string name;
  /// Free-form human detail ("device 2", "query 17 checksum mismatch").
  std::string detail;
};

class FlightRecorder {
 public:
  struct Options {
    /// Ring capacities.
    size_t max_queries = 256;
    size_t max_events = 128;
    /// Where Trigger writes the dump; empty disables dumping (the rings
    /// still record, for tests and future inspection endpoints).
    std::string dump_path;
    /// Minimum seconds between dumps (0 = every trigger dumps).
    double min_dump_interval_s = 5.0;
  };

  explicit FlightRecorder(Options options);

  /// Appends to the query ring (oldest record evicted at capacity).
  void RecordQuery(const AccessRecord& record);
  /// Appends to the event ring.
  void RecordEvent(double now_s, std::string name, std::string detail);

  /// A dump-worthy condition occurred. Writes the flight record to
  /// dump_path unless a dump happened less than min_dump_interval_s ago
  /// (or dump_path is empty). Returns true when a file was written; IO
  /// errors are reported through `error` when non-null (best-effort —
  /// the serving path never fails because the flight dump could not be
  /// written).
  bool Trigger(std::string_view reason, double now_s,
               Status* error = nullptr);

  /// Serializes the current rings as an `ibfs.flight_record` document
  /// (single line + newline). `reason` names the trigger.
  void WriteJson(std::ostream& os, std::string_view reason,
                 double now_s) const;

  int64_t dumps() const;
  size_t query_count() const;
  size_t event_count() const;
  const Options& options() const { return options_; }

 private:
  Options options_;
  mutable std::mutex mu_;
  std::deque<AccessRecord> queries_;
  std::deque<FlightEvent> events_;
  int64_t dumps_ = 0;
  double last_dump_s_ = -1.0;
};

}  // namespace ibfs::obs

#endif  // IBFS_OBS_FLIGHT_H_
