#ifndef IBFS_OBS_TRACE_H_
#define IBFS_OBS_TRACE_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/status.h"

namespace ibfs::obs {

class Counter;
class MetricsRegistry;

/// Span-based tracing that serializes to the Chrome trace-event JSON format
/// (the "JSON Array Format" consumed by chrome://tracing and Perfetto).
///
/// Track model: a (pid, tid) pair is one horizontal track in the viewer.
/// The engine emits simulated-time spans on pid = device index (one process
/// per simulated GPU, so a cluster run renders as per-GPU tracks); host
/// wall-clock phases (grouping, I/O) live on kHostPid so the two timebases
/// never share a track. Timestamps are microseconds.
///
/// Span taxonomy (docs/OBSERVABILITY.md):
///   cat "group"     — one BFS group's traversal        (engine)
///   cat "level"     — one traversal level, args direction/jfq_size/...
///   cat "kernel"    — one simulated kernel launch      (gpusim::Device)
///   cat "host"      — wall-clock host phases           (engine, CLI)
///   cat "cluster"   — scheduled group execution on a cluster GPU
///   instant "direction_switch" — td/bu flip markers
///   counter "jfq_size" — joint-frontier-queue occupancy over time

/// Reserved pid for host wall-clock tracks (simulated devices use 0..N-1).
inline constexpr int kHostPid = 1000;

/// One key/value span annotation, pre-serialized. Use the Arg() helpers.
struct TraceArg {
  std::string key;
  std::string value;  // JSON literal body (unescaped text when quoted)
  bool quoted = false;
};

TraceArg Arg(std::string_view key, std::string_view value);
TraceArg Arg(std::string_view key, const char* value);
TraceArg Arg(std::string_view key, int64_t value);
TraceArg Arg(std::string_view key, int value);
TraceArg Arg(std::string_view key, uint64_t value);
TraceArg Arg(std::string_view key, double value);
TraceArg Arg(std::string_view key, bool value);

/// Addressing for one track.
struct TraceTrack {
  int pid = 0;
  int tid = 0;
};

/// Collects trace events in memory and writes them as one Chrome-trace
/// JSON document. Event storage is append-only; a disabled trace is
/// represented by a null Tracer* at the instrumentation site, so the
/// disabled path is one pointer compare.
///
/// Thread safety: events are appended to per-thread buffers (registered
/// lazily under a mutex, then written lock-free by their owning thread) and
/// merged at flush, so the parallel engine's group workers emit spans
/// concurrently without contending. Event order across threads is therefore
/// unspecified; Chrome/Perfetto order by timestamp, not file position.
/// BeginSpan/EndSpan nesting state is keyed by (pid, tid) track under the
/// same mutex — nest spans from one thread per track at a time. Flushing
/// (WriteJson/event_count) must not race with concurrent emission; flush
/// after the instrumented run has joined its workers.
class Tracer {
 public:
  /// Default per-thread event cap (see SetMaxEventsPerThread): high enough
  /// that batch runs never hit it, low enough that a long-running `serve`
  /// with tracing on stays bounded (~256 KiB of Events per thread before
  /// payload strings).
  static constexpr size_t kDefaultMaxEventsPerThread = 1 << 18;

  Tracer();
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// Caps each per-thread buffer: once a buffer holds `cap` events it
  /// becomes a ring and new events overwrite the oldest, so a long-running
  /// server keeps the most recent window instead of growing without bound.
  /// Each overwrite counts as one dropped event. Applies to appends from
  /// the call onward; a buffer already above a lowered cap keeps its size
  /// but stops growing. `cap` must be >= 1.
  void SetMaxEventsPerThread(size_t cap);
  /// Counter incremented per dropped (overwritten) event, typically the
  /// registry's "trace.dropped_events". Pass nullptr to detach.
  void SetDropCounter(Counter* counter);
  /// Total events overwritten across all per-thread rings.
  int64_t dropped_events() const;

  /// Names the viewer track headers ("GPU 0", "host"); last write wins.
  void SetProcessName(int pid, std::string_view name);
  void SetThreadName(int pid, int tid, std::string_view name);

  /// A complete span with explicit begin/duration (simulated timelines
  /// know both up front). "ph":"X".
  void CompleteSpan(TraceTrack track, std::string_view name,
                    std::string_view category, double ts_us, double dur_us,
                    std::vector<TraceArg> args = {});

  /// Nestable spans: Begin pushes onto the track's stack, End pops and
  /// emits the complete event (args attach at End, when results are
  /// known). An unmatched End is dropped with a warning.
  void BeginSpan(TraceTrack track, std::string_view name,
                 std::string_view category, double ts_us);
  void EndSpan(TraceTrack track, double ts_us,
               std::vector<TraceArg> args = {});
  /// Open (begun, unended) spans on one track — 0 when balanced.
  size_t OpenSpans(TraceTrack track) const;

  /// A zero-duration marker ("ph":"i", thread scope).
  void Instant(TraceTrack track, std::string_view name, double ts_us,
               std::vector<TraceArg> args = {});

  /// A counter sample ("ph":"C") — renders as a stacked area chart.
  void CounterValue(TraceTrack track, std::string_view series, double ts_us,
                    double value);

  size_t event_count() const;

  /// Serializes {"traceEvents":[...],"displayTimeUnit":"ms"}. Open spans
  /// are not emitted; call EndSpan first.
  void WriteJson(std::ostream& os) const;
  Status WriteFile(const std::string& path) const;

 private:
  struct Event {
    char ph = 'X';
    std::string name;
    std::string category;
    double ts_us = 0.0;
    double dur_us = 0.0;
    int pid = 0;
    int tid = 0;
    std::vector<TraceArg> args;
  };
  struct OpenSpan {
    std::string name;
    std::string category;
    double ts_us = 0.0;
  };
  /// One thread's private event log: append-only until it reaches the
  /// tracer's cap, then a ring overwriting from `next`.
  struct EventBuffer {
    std::vector<Event> events;
    size_t next = 0;
    int64_t dropped = 0;
  };

  /// The calling thread's buffer, registering one on first use. Only the
  /// owning thread appends; the mutex covers registration and flush.
  EventBuffer* ThisThreadBuffer();
  void Append(Event event);

  const uint64_t tracer_id_;  // distinguishes tracers in thread-local caches
  std::atomic<size_t> max_events_per_thread_{kDefaultMaxEventsPerThread};
  std::atomic<Counter*> drop_counter_{nullptr};
  mutable std::mutex mu_;     // guards buffers_ (the vector) and open_spans_
  std::vector<std::unique_ptr<EventBuffer>> buffers_;
  std::map<std::pair<int, int>, std::vector<OpenSpan>> open_spans_;
};

/// The bundle instrumented code receives: an optional tracer plus the
/// track to emit on, and an optional metrics registry. Default-constructed
/// = observability off; every site guards with a null check.
struct Observer {
  Tracer* tracer = nullptr;
  TraceTrack track;
  MetricsRegistry* metrics = nullptr;
  /// Trace-context: which queries this work is for, as a comma-joined list
  /// of query ids ("q12,q40"). The service sets it per batch/group; engine,
  /// resilient-executor, and gpusim spans attach it as a "ctx" arg so a
  /// span in the trace joins back to its access-log lines. Empty = no
  /// context (batch CLI runs).
  std::string context;

  bool tracing() const { return tracer != nullptr; }
  bool metering() const { return metrics != nullptr; }
  bool enabled() const { return tracing() || metering(); }

  /// Same sinks, different track (cluster engines fan out per-GPU).
  Observer WithTrack(int pid, int tid) const {
    Observer o = *this;
    o.track = {pid, tid};
    return o;
  }

  /// Same sinks and track, new trace-context.
  Observer WithContext(std::string ctx) const {
    Observer o = *this;
    o.context = std::move(ctx);
    return o;
  }
};

}  // namespace ibfs::obs

#endif  // IBFS_OBS_TRACE_H_
