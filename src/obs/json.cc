#include "obs/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <utility>

#include "util/logging.h"

namespace ibfs::obs {

void WriteJsonString(std::ostream& os, std::string_view s) {
  os << '"';
  for (unsigned char c : s) {
    switch (c) {
      case '"':
        os << "\\\"";
        break;
      case '\\':
        os << "\\\\";
        break;
      case '\b':
        os << "\\b";
        break;
      case '\f':
        os << "\\f";
        break;
      case '\n':
        os << "\\n";
        break;
      case '\r':
        os << "\\r";
        break;
      case '\t':
        os << "\\t";
        break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          os << buf;
        } else {
          os << static_cast<char>(c);
        }
    }
  }
  os << '"';
}

void WriteJsonNumber(std::ostream& os, double value) {
  if (!std::isfinite(value)) value = 0.0;
  if (value == static_cast<double>(static_cast<int64_t>(value)) &&
      std::fabs(value) < 1e15) {
    os << static_cast<int64_t>(value);
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  os << buf;
}

void JsonWriter::BeforeValue() {
  if (pending_key_) {
    pending_key_ = false;
    return;
  }
  if (!wrote_element_.empty()) {
    if (wrote_element_.back()) os_ << ',';
    wrote_element_.back() = true;
  }
}

void JsonWriter::BeginObject() {
  BeforeValue();
  wrote_element_.push_back(false);
  os_ << '{';
}

void JsonWriter::EndObject() {
  IBFS_CHECK(!wrote_element_.empty());
  wrote_element_.pop_back();
  os_ << '}';
}

void JsonWriter::BeginArray() {
  BeforeValue();
  wrote_element_.push_back(false);
  os_ << '[';
}

void JsonWriter::EndArray() {
  IBFS_CHECK(!wrote_element_.empty());
  wrote_element_.pop_back();
  os_ << ']';
}

void JsonWriter::Key(std::string_view key) {
  IBFS_CHECK(!wrote_element_.empty());
  if (wrote_element_.back()) os_ << ',';
  wrote_element_.back() = true;
  WriteJsonString(os_, key);
  os_ << ':';
  pending_key_ = true;
}

void JsonWriter::String(std::string_view value) {
  BeforeValue();
  WriteJsonString(os_, value);
}

void JsonWriter::Int(int64_t value) {
  BeforeValue();
  os_ << value;
}

void JsonWriter::Uint(uint64_t value) {
  BeforeValue();
  os_ << value;
}

void JsonWriter::Double(double value) {
  BeforeValue();
  WriteJsonNumber(os_, value);
}

void JsonWriter::Bool(bool value) {
  BeforeValue();
  os_ << (value ? "true" : "false");
}

void JsonWriter::Null() {
  BeforeValue();
  os_ << "null";
}

void JsonWriter::Raw(std::string_view json) {
  BeforeValue();
  os_ << json;
}

const JsonValue* JsonValue::Find(std::string_view key) const {
  if (kind_ != Kind::kObject) return nullptr;
  auto it = object_.find(std::string(key));
  if (it == object_.end()) return nullptr;
  return &it->second;
}

JsonValue JsonValue::Null() { return JsonValue(); }

JsonValue JsonValue::Bool(bool b) {
  JsonValue v;
  v.kind_ = Kind::kBool;
  v.bool_ = b;
  return v;
}

JsonValue JsonValue::Number(double d) {
  JsonValue v;
  v.kind_ = Kind::kNumber;
  v.number_ = d;
  return v;
}

JsonValue JsonValue::String(std::string s) {
  JsonValue v;
  v.kind_ = Kind::kString;
  v.string_ = std::move(s);
  return v;
}

JsonValue JsonValue::Array(std::vector<JsonValue> items) {
  JsonValue v;
  v.kind_ = Kind::kArray;
  v.array_ = std::move(items);
  return v;
}

JsonValue JsonValue::Object(std::map<std::string, JsonValue> members) {
  JsonValue v;
  v.kind_ = Kind::kObject;
  v.object_ = std::move(members);
  return v;
}

namespace {

// Recursive-descent parser over a string_view cursor.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Result<JsonValue> Parse() {
    Result<JsonValue> value = ParseValue();
    if (!value.ok()) return value;
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Error("trailing characters after JSON document");
    }
    return value;
  }

 private:
  Status Error(const std::string& message) const {
    return Status::InvalidArgument("json parse error at offset " +
                                   std::to_string(pos_) + ": " + message);
  }

  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeLiteral(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) == lit) {
      pos_ += lit.size();
      return true;
    }
    return false;
  }

  Result<JsonValue> ParseValue() {
    if (depth_ > kMaxDepth) return Error("nesting too deep");
    SkipWhitespace();
    if (pos_ >= text_.size()) return Error("unexpected end of input");
    const char c = text_[pos_];
    if (c == '{') return ParseObject();
    if (c == '[') return ParseArray();
    if (c == '"') {
      Result<std::string> s = ParseString();
      if (!s.ok()) return s.status();
      return JsonValue::String(std::move(s).value());
    }
    if (ConsumeLiteral("true")) return JsonValue::Bool(true);
    if (ConsumeLiteral("false")) return JsonValue::Bool(false);
    if (ConsumeLiteral("null")) return JsonValue::Null();
    return ParseNumber();
  }

  Result<JsonValue> ParseObject() {
    ++depth_;
    ++pos_;  // '{'
    std::map<std::string, JsonValue> members;
    SkipWhitespace();
    if (Consume('}')) {
      --depth_;
      return JsonValue::Object(std::move(members));
    }
    while (true) {
      SkipWhitespace();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Error("expected object key");
      }
      Result<std::string> key = ParseString();
      if (!key.ok()) return key.status();
      SkipWhitespace();
      if (!Consume(':')) return Error("expected ':' after object key");
      Result<JsonValue> value = ParseValue();
      if (!value.ok()) return value;
      members[std::move(key).value()] = std::move(value).value();
      SkipWhitespace();
      if (Consume(',')) continue;
      if (Consume('}')) break;
      return Error("expected ',' or '}' in object");
    }
    --depth_;
    return JsonValue::Object(std::move(members));
  }

  Result<JsonValue> ParseArray() {
    ++depth_;
    ++pos_;  // '['
    std::vector<JsonValue> items;
    SkipWhitespace();
    if (Consume(']')) {
      --depth_;
      return JsonValue::Array(std::move(items));
    }
    while (true) {
      Result<JsonValue> value = ParseValue();
      if (!value.ok()) return value;
      items.push_back(std::move(value).value());
      SkipWhitespace();
      if (Consume(',')) continue;
      if (Consume(']')) break;
      return Error("expected ',' or ']' in array");
    }
    --depth_;
    return JsonValue::Array(std::move(items));
  }

  Result<std::string> ParseString() {
    ++pos_;  // opening quote
    std::string out;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) {
        return Error("unescaped control character in string");
      }
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) return Error("unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"':
          out.push_back('"');
          break;
        case '\\':
          out.push_back('\\');
          break;
        case '/':
          out.push_back('/');
          break;
        case 'b':
          out.push_back('\b');
          break;
        case 'f':
          out.push_back('\f');
          break;
        case 'n':
          out.push_back('\n');
          break;
        case 'r':
          out.push_back('\r');
          break;
        case 't':
          out.push_back('\t');
          break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return Error("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              return Error("bad \\u escape digit");
            }
          }
          // UTF-8 encode (surrogate pairs are not combined; the observability
          // formats only emit ASCII, so BMP coverage suffices).
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default:
          return Error("unknown escape character");
      }
    }
    return Error("unterminated string");
  }

  Result<JsonValue> ParseNumber() {
    const size_t start = pos_;
    if (Consume('-')) {
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return Error("expected a JSON value");
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double value = std::strtod(token.c_str(), &end);
    if (end == token.c_str() || *end != '\0') {
      return Error("malformed number '" + token + "'");
    }
    return JsonValue::Number(value);
  }

  static constexpr int kMaxDepth = 256;

  std::string_view text_;
  size_t pos_ = 0;
  int depth_ = 0;
};

}  // namespace

Result<JsonValue> ParseJson(std::string_view text) {
  return Parser(text).Parse();
}

Result<JsonValue> ParseJsonFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return ParseJson(buffer.str());
}

}  // namespace ibfs::obs
