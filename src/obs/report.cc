#include "obs/report.h"

#include <fstream>

#include "obs/json.h"
#include "obs/metrics.h"

namespace ibfs::obs {
namespace {

void WritePhase(JsonWriter* w, const ReportPhase& phase) {
  w->BeginObject();
  w->Key("name");
  w->String(phase.name);
  w->Key("seconds");
  w->Double(phase.seconds);
  w->Key("launches");
  w->Int(phase.launches);
  w->Key("load_transactions");
  w->Uint(phase.load_transactions);
  w->Key("store_transactions");
  w->Uint(phase.store_transactions);
  w->Key("load_requests");
  w->Uint(phase.load_requests);
  w->Key("store_requests");
  w->Uint(phase.store_requests);
  w->Key("load_transactions_per_request");
  w->Double(phase.load_transactions_per_request);
  w->Key("atomic_ops");
  w->Uint(phase.atomic_ops);
  w->Key("shared_bytes");
  w->Uint(phase.shared_bytes);
  w->EndObject();
}

}  // namespace

void RunReport::WriteJson(std::ostream& os,
                          const MetricsRegistry* metrics) const {
  JsonWriter w(os);
  w.BeginObject();
  w.Key("schema");
  w.String(kSchema);
  w.Key("schema_version");
  w.Int(kSchemaVersion);

  w.Key("workload");
  w.BeginObject();
  w.Key("graph");
  w.String(graph);
  w.Key("vertex_count");
  w.Int(vertex_count);
  w.Key("edge_count");
  w.Int(edge_count);
  w.Key("strategy");
  w.String(strategy);
  w.Key("grouping");
  w.String(grouping);
  w.Key("instances");
  w.Int(instances);
  w.Key("group_size");
  w.Int(group_size);
  w.EndObject();

  w.Key("results");
  w.BeginObject();
  w.Key("sim_seconds");
  w.Double(sim_seconds);
  w.Key("wall_seconds");
  w.Double(wall_seconds);
  w.Key("teps");
  w.Double(teps);
  w.Key("sharing_ratio");
  w.Double(sharing_ratio);
  w.Key("sharing_ratio_top_down");
  w.Double(sharing_ratio_top_down);
  w.Key("sharing_ratio_bottom_up");
  w.Double(sharing_ratio_bottom_up);
  w.Key("rule_matched");
  w.Int(rule_matched);
  w.EndObject();

  w.Key("groups");
  w.BeginArray();
  for (const ReportGroup& g : groups) {
    w.BeginObject();
    w.Key("index");
    w.Int(g.index);
    w.Key("instance_count");
    w.Int(g.instance_count);
    w.Key("sim_seconds");
    w.Double(g.sim_seconds);
    w.Key("sharing_degree");
    w.Double(g.sharing_degree);
    w.Key("sharing_ratio");
    w.Double(g.sharing_ratio);
    w.Key("hub");
    w.Int(g.hub);
    w.Key("sources");
    w.BeginArray();
    for (int64_t s : g.sources) w.Int(s);
    w.EndArray();
    w.Key("levels");
    w.BeginArray();
    for (const ReportLevel& l : g.levels) {
      w.BeginObject();
      w.Key("level");
      w.Int(l.level);
      w.Key("direction");
      w.String(l.bottom_up ? "bottom_up" : "top_down");
      w.Key("jfq_size");
      w.Int(l.jfq_size);
      w.Key("private_fq_sum");
      w.Int(l.private_fq_sum);
      w.Key("edges_inspected");
      w.Int(l.edges_inspected);
      w.Key("new_visits");
      w.Int(l.new_visits);
      w.EndObject();
    }
    w.EndArray();
    w.EndObject();
  }
  w.EndArray();

  w.Key("phases");
  w.BeginArray();
  for (const ReportPhase& phase : phases) WritePhase(&w, phase);
  w.EndArray();
  w.Key("totals");
  WritePhase(&w, totals);

  if (has_cluster) {
    w.Key("cluster");
    w.BeginObject();
    w.Key("device_count");
    w.Int(cluster.device_count);
    w.Key("policy");
    w.String(cluster.policy);
    w.Key("makespan_seconds");
    w.Double(cluster.makespan_seconds);
    w.Key("speedup");
    w.Double(cluster.speedup);
    w.Key("teps");
    w.Double(cluster.teps);
    w.Key("device_seconds");
    w.BeginArray();
    for (double s : cluster.device_seconds) w.Double(s);
    w.EndArray();
    w.EndObject();
  }

  if (has_comm) {
    w.Key("comm");
    w.BeginObject();
    w.Key("partitions");
    w.Int(comm.partitions);
    w.Key("schedule");
    w.String(comm.schedule);
    w.Key("link_gbps");
    w.Double(comm.link_gbps);
    w.Key("link_us");
    w.Double(comm.link_us);
    w.Key("compute_seconds");
    w.Double(comm.compute_seconds);
    w.Key("comm_seconds");
    w.Double(comm.comm_seconds);
    w.Key("bytes_on_wire");
    w.Int(comm.bytes_on_wire);
    w.Key("rounds");
    w.Int(comm.rounds);
    w.Key("supersteps");
    w.Int(comm.supersteps);
    w.Key("edge_imbalance");
    w.Double(comm.edge_imbalance);
    w.Key("partition_vertices");
    w.BeginArray();
    for (int64_t v : comm.partition_vertices) w.Int(v);
    w.EndArray();
    w.Key("partition_edges");
    w.BeginArray();
    for (int64_t e : comm.partition_edges) w.Int(e);
    w.EndArray();
    w.Key("device_seconds");
    w.BeginArray();
    for (double s : comm.device_seconds) w.Double(s);
    w.EndArray();
    w.EndObject();
  }

  if (metrics != nullptr) {
    w.Key("metrics");
    w.Raw(metrics->ToJson());
  }
  w.EndObject();
}

Status RunReport::WriteFile(const std::string& path,
                            const MetricsRegistry* metrics) const {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IoError("cannot open " + path + " for writing");
  WriteJson(out, metrics);
  out << '\n';
  if (!out) return Status::IoError("write to " + path + " failed");
  return Status::OK();
}

namespace {

void WriteLatency(JsonWriter* w, const ReportLatency& latency) {
  w->BeginObject();
  w->Key("p50");
  w->Double(latency.p50);
  w->Key("p95");
  w->Double(latency.p95);
  w->Key("p99");
  w->Double(latency.p99);
  w->Key("mean");
  w->Double(latency.mean);
  w->Key("max");
  w->Double(latency.max);
  w->EndObject();
}

}  // namespace

void ServiceReport::WriteJson(std::ostream& os,
                              const MetricsRegistry* metrics) const {
  JsonWriter w(os);
  w.BeginObject();
  w.Key("schema");
  w.String(kSchema);
  w.Key("schema_version");
  w.Int(kSchemaVersion);

  w.Key("workload");
  w.BeginObject();
  w.Key("graph");
  w.String(graph);
  w.Key("vertex_count");
  w.Int(vertex_count);
  w.Key("edge_count");
  w.Int(edge_count);
  w.Key("strategy");
  w.String(strategy);
  w.Key("grouping");
  w.String(grouping);
  w.Key("arrival");
  w.String(arrival);
  w.Key("offered_qps");
  w.Double(offered_qps);
  w.Key("duration_seconds");
  w.Double(duration_seconds);
  w.Key("queries");
  w.Int(queries);
  w.EndObject();

  w.Key("service");
  w.BeginObject();
  w.Key("max_batch");
  w.Int(max_batch);
  w.Key("max_delay_ms");
  w.Double(max_delay_ms);
  w.Key("execute_threads");
  w.Int(execute_threads);
  w.Key("batches");
  w.Int(batches);
  w.Key("groups");
  w.Int(groups);
  w.Key("size_closes");
  w.Int(size_closes);
  w.Key("deadline_closes");
  w.Int(deadline_closes);
  w.Key("shutdown_closes");
  w.Int(shutdown_closes);
  w.Key("mean_batch_size");
  w.Double(mean_batch_size);
  w.EndObject();

  w.Key("results");
  w.BeginObject();
  w.Key("completed");
  w.Int(completed);
  w.Key("failed");
  w.Int(failed);
  w.Key("achieved_qps");
  w.Double(achieved_qps);
  w.Key("wall_seconds");
  w.Double(wall_seconds);
  w.Key("sim_seconds");
  w.Double(sim_seconds);
  w.Key("teps");
  w.Double(teps);
  w.Key("sharing_ratio");
  w.Double(sharing_ratio);
  w.Key("oracle_sharing_ratio");
  w.Double(oracle_sharing_ratio);
  w.Key("sharing_fraction");
  w.Double(sharing_fraction);
  w.EndObject();

  w.Key("latency_ms");
  w.BeginObject();
  w.Key("queue");
  WriteLatency(&w, queue_ms);
  w.Key("execute");
  WriteLatency(&w, execute_ms);
  w.Key("total");
  WriteLatency(&w, total_ms);
  w.EndObject();

  w.Key("cache");
  w.BeginObject();
  w.Key("enabled");
  w.Bool(cache_enabled);
  w.Key("hits");
  w.Int(cache_hits);
  w.Key("misses");
  w.Int(cache_misses);
  w.Key("insertions");
  w.Int(cache_insertions);
  w.Key("evictions");
  w.Int(cache_evictions);
  w.Key("quarantined");
  w.Int(cache_quarantined);
  w.Key("entries");
  w.Int(cache_entries);
  w.Key("bytes_resident");
  w.Int(cache_bytes_resident);
  w.Key("hit_ratio");
  w.Double(cache_hit_ratio);
  w.Key("plan_hits");
  w.Int(plan_hits);
  w.Key("plan_misses");
  w.Int(plan_misses);
  w.EndObject();

  if (metrics != nullptr) {
    w.Key("metrics");
    w.Raw(metrics->ToJson());
  }
  w.EndObject();
}

Status ServiceReport::WriteFile(const std::string& path,
                                const MetricsRegistry* metrics) const {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IoError("cannot open " + path + " for writing");
  WriteJson(out, metrics);
  out << '\n';
  if (!out) return Status::IoError("write to " + path + " failed");
  return Status::OK();
}

void ResilienceReport::WriteJson(std::ostream& os,
                                 const MetricsRegistry* metrics) const {
  JsonWriter w(os);
  w.BeginObject();
  w.Key("schema");
  w.String(kSchema);
  w.Key("schema_version");
  w.Int(kSchemaVersion);

  w.Key("workload");
  w.BeginObject();
  w.Key("graph");
  w.String(graph);
  w.Key("vertex_count");
  w.Int(vertex_count);
  w.Key("edge_count");
  w.Int(edge_count);
  w.Key("strategy");
  w.String(strategy);
  w.Key("grouping");
  w.String(grouping);
  w.Key("queries");
  w.Int(queries);
  w.Key("offered_qps");
  w.Double(offered_qps);
  w.Key("duration_seconds");
  w.Double(duration_seconds);
  w.EndObject();

  w.Key("fault_plan");
  w.BeginObject();
  w.Key("spec");
  w.String(fault_spec);
  w.Key("device_count");
  w.Int(device_count);
  w.Key("seed");
  w.Int(fault_seed);
  w.Key("max_attempts");
  w.Int(max_attempts);
  w.Key("deadline_ms");
  w.Double(deadline_ms);
  w.Key("max_pending");
  w.Int(max_pending);
  w.Key("cpu_fallback");
  w.Bool(cpu_fallback);
  w.EndObject();

  w.Key("outcomes");
  w.BeginObject();
  w.Key("completed");
  w.Int(completed);
  w.Key("failed");
  w.Int(failed);
  w.Key("deadline_exceeded");
  w.Int(deadline_exceeded);
  w.Key("shed");
  w.Int(shed);
  w.Key("degraded");
  w.Int(degraded);
  w.Key("retries");
  w.Int(retries);
  w.Key("transient_faults");
  w.Int(transient_faults);
  w.Key("corruptions_detected");
  w.Int(corruptions_detected);
  w.Key("breaker_opened");
  w.Int(breaker_opened);
  w.Key("fallback_groups");
  w.Int(fallback_groups);
  w.Key("wall_seconds");
  w.Double(wall_seconds);
  w.EndObject();

  w.Key("verification");
  w.BeginObject();
  w.Key("checksums_compared");
  w.Int(checksums_compared);
  w.Key("checksum_mismatches");
  w.Int(checksum_mismatches);
  w.EndObject();

  if (metrics != nullptr) {
    w.Key("metrics");
    w.Raw(metrics->ToJson());
  }
  w.EndObject();
}

Status ResilienceReport::WriteFile(const std::string& path,
                                   const MetricsRegistry* metrics) const {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IoError("cannot open " + path + " for writing");
  WriteJson(out, metrics);
  out << '\n';
  if (!out) return Status::IoError("write to " + path + " failed");
  return Status::OK();
}

void FleetReport::WriteJson(std::ostream& os,
                            const MetricsRegistry* metrics) const {
  JsonWriter w(os);
  w.BeginObject();
  w.Key("schema");
  w.String(kSchema);
  w.Key("schema_version");
  w.Int(kSchemaVersion);

  w.Key("fleet");
  w.BeginObject();
  w.Key("graph");
  w.String(graph);
  w.Key("vertex_count");
  w.Int(vertex_count);
  w.Key("edge_count");
  w.Int(edge_count);
  w.Key("strategy");
  w.String(strategy);
  w.Key("grouping");
  w.String(grouping);
  w.Key("shards");
  w.Int(shards);
  w.Key("vnodes");
  w.Int(vnodes);
  w.Key("ring_seed");
  w.Int(ring_seed);
  w.EndObject();

  w.Key("workload");
  w.BeginObject();
  w.Key("arrival");
  w.String(arrival);
  w.Key("offered_qps");
  w.Double(offered_qps);
  w.Key("duration_seconds");
  w.Double(duration_seconds);
  w.Key("queries");
  w.Int(queries);
  w.Key("multi_source");
  w.Int(multi_source);
  w.Key("multi_queries");
  w.Int(multi_queries);
  w.Key("killed_shard");
  w.Int(killed_shard);
  w.Key("joined_shards");
  w.Int(joined_shards);
  w.EndObject();

  w.Key("elasticity");
  w.BeginObject();
  w.Key("replication");
  w.Int(replication);
  w.Key("shard_joins");
  w.Int(shard_joins);
  w.Key("warmup_entries");
  w.Int(warmup_entries);
  w.Key("hedges_fired");
  w.Int(hedges_fired);
  w.Key("hedges_won");
  w.Int(hedges_won);
  w.Key("hedges_cancelled");
  w.Int(hedges_cancelled);
  w.Key("replica_mismatches");
  w.Int(replica_mismatches);
  w.Key("replica_cache_writes");
  w.Int(replica_cache_writes);
  w.Key("recoveries");
  w.Int(recoveries);
  w.Key("rebalance_runs");
  w.Int(rebalance_runs);
  w.Key("weight_changes");
  w.Int(weight_changes);
  w.EndObject();

  w.Key("shards_detail");
  w.BeginArray();
  for (const FleetReportShard& row : shard_rows) {
    w.BeginObject();
    w.Key("shard");
    w.Int(row.shard);
    w.Key("health");
    w.String(row.health);
    w.Key("weight");
    w.Int(row.weight);
    w.Key("routed");
    w.Int(row.routed);
    w.Key("queries");
    w.Int(row.queries);
    w.Key("completed");
    w.Int(row.completed);
    w.Key("failed");
    w.Int(row.failed);
    w.Key("degraded");
    w.Int(row.degraded);
    w.Key("cache_hits");
    w.Int(row.cache_hits);
    w.Key("batches");
    w.Int(row.batches);
    w.Key("groups");
    w.Int(row.groups);
    w.Key("sim_seconds");
    w.Double(row.sim_seconds);
    w.EndObject();
  }
  w.EndArray();

  w.Key("aggregate");
  w.BeginObject();
  w.Key("completed");
  w.Int(completed);
  w.Key("failed");
  w.Int(failed);
  w.Key("achieved_qps");
  w.Double(achieved_qps);
  w.Key("wall_seconds");
  w.Double(wall_seconds);
  w.Key("imbalance");
  w.Double(imbalance);
  w.Key("failover_reroutes");
  w.Int(failover_reroutes);
  w.Key("fallback_answers");
  w.Int(fallback_answers);
  w.Key("healthy");
  w.Int(healthy);
  w.Key("degraded");
  w.Int(degraded);
  w.Key("down");
  w.Int(down);
  w.EndObject();

  w.Key("verification");
  w.BeginObject();
  w.Key("checksum");
  w.Uint(checksum);
  w.Key("unanswered");
  w.Int(unanswered);
  w.Key("checksums_compared");
  w.Int(checksums_compared);
  w.Key("checksum_mismatches");
  w.Int(checksum_mismatches);
  w.EndObject();

  w.Key("latency_ms");
  w.BeginObject();
  w.Key("total");
  WriteLatency(&w, total_ms);
  w.EndObject();

  if (metrics != nullptr) {
    w.Key("metrics");
    w.Raw(metrics->ToJson());
  }
  w.EndObject();
}

Status FleetReport::WriteFile(const std::string& path,
                              const MetricsRegistry* metrics) const {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IoError("cannot open " + path + " for writing");
  WriteJson(out, metrics);
  out << '\n';
  if (!out) return Status::IoError("write to " + path + " failed");
  return Status::OK();
}

}  // namespace ibfs::obs
