#ifndef IBFS_OBS_SLO_H_
#define IBFS_OBS_SLO_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>

#include "obs/live.h"
#include "util/status.h"

namespace ibfs::obs {

class MetricsRegistry;

/// Latency-SLO tracking with multi-window burn-rate alerting, the standard
/// SRE construction: an objective says "at least `target` of queries finish
/// within `objective_ms`"; the burn rate is how fast the error budget
/// (1 - target) is being consumed, bad_fraction / (1 - target), so burn 1.0
/// exactly exhausts the budget over the evaluation period and burn >> 1
/// means minutes matter. Alerts require BOTH a fast window (quick to react,
/// noisy alone) and a slow window (confirms the problem is sustained) to
/// burn above the threshold, and clear when the fast window recovers —
/// the clear is deliberately quicker than the fire so a resolved incident
/// stops paging. Same fake-clock model as obs/live.h: explicit `now_s`.

/// One latency objective, parsed from the CLI form
/// "<class>:<objective_ms>:<target>", e.g. "default:250:0.99".
struct SloSpec {
  std::string class_name = "default";
  double objective_ms = 250.0;
  /// Fraction of queries that must meet the objective, in (0, 1).
  double target = 0.99;

  static Result<SloSpec> Parse(std::string_view text);
  std::string ToString() const;
};

/// What a Record/Evaluate call did to the alert state.
enum class SloTransition {
  kNone = 0,
  kFired,    // alert went inactive -> active
  kCleared,  // alert went active -> inactive
};

/// Tracks one SloSpec over fast and slow sliding windows. Queries are
/// "good" when they finish OK within objective_ms; failures count as bad
/// (a shed or failed query did not meet the latency objective either).
/// Thread-safe.
class SloTracker {
 public:
  struct Options {
    double fast_window_s = 60.0;
    double slow_window_s = 600.0;
    /// Fire when BOTH window burn rates reach this; clear when the fast
    /// window drops below it.
    double burn_threshold = 2.0;
    int slots = 15;
  };

  explicit SloTracker(SloSpec spec);
  SloTracker(SloSpec spec, Options options);

  /// Accounts one finished query and re-evaluates the alert.
  SloTransition Record(double now_s, double latency_ms, bool ok);
  /// Re-evaluates without new data (periodic tick; lets an alert clear
  /// while traffic is idle because the bad samples aged out).
  SloTransition Evaluate(double now_s);

  double BurnRateFast(double now_s) const;
  double BurnRateSlow(double now_s) const;
  bool alert_active() const;
  int64_t alerts_fired() const;
  int64_t alerts_cleared() const;
  int64_t good() const;
  int64_t bad() const;

  const SloSpec& spec() const { return spec_; }
  const Options& options() const { return options_; }

  /// Writes the slo.* gauge/counter set into `metrics` (no-op when null):
  /// slo.objective_ms, slo.target, slo.burn_rate_fast, slo.burn_rate_slow,
  /// slo.alert_active, slo.good, slo.bad, slo.alerts_fired,
  /// slo.alerts_cleared.
  void PublishTo(MetricsRegistry* metrics, double now_s) const;

 private:
  /// Burn of one window; 0 when the window holds no samples (no traffic
  /// is not an SLO violation).
  static double Burn(const RollingWindow& bad, const RollingWindow& total,
                     double error_budget, double now_s);
  SloTransition EvaluateLocked(double now_s);

  SloSpec spec_;
  Options options_;
  double error_budget_;

  RollingWindow fast_total_;
  RollingWindow fast_bad_;
  RollingWindow slow_total_;
  RollingWindow slow_bad_;

  mutable std::mutex mu_;
  bool alert_active_ = false;
  int64_t alerts_fired_ = 0;
  int64_t alerts_cleared_ = 0;
  int64_t good_ = 0;
  int64_t bad_count_ = 0;
};

}  // namespace ibfs::obs

#endif  // IBFS_OBS_SLO_H_
