#ifndef IBFS_CORE_OBSERVE_H_
#define IBFS_CORE_OBSERVE_H_

#include <span>
#include <string>

#include "core/cluster_engine.h"
#include "core/engine.h"
#include "core/options.h"
#include "graph/csr.h"
#include "obs/report.h"

namespace ibfs {

/// Bridges engine results into the obs run-report schema. The obs layer
/// holds only plain structs (it sits below core in the dependency order),
/// so the conversion from EngineResult / ClusterRunResult lives here.

/// Builds a run report from one engine run. `graph_name` is a display
/// label (benchmark name or file path); `instances` is the number of BFS
/// sources the run was asked for.
obs::RunReport BuildRunReport(const std::string& graph_name,
                              const graph::Csr& graph,
                              const EngineOptions& options, int64_t instances,
                              const EngineResult& result);

/// Attaches the multi-GPU section of a cluster run to an existing report.
void AttachClusterSection(const ClusterRunResult& cluster,
                          gpusim::PlacementPolicy policy,
                          obs::RunReport* report);

/// Builds a run report from one 1D-partitioned run: workload and headline
/// fields plus the profile table aggregated over all partitions. Group rows
/// carry sources only — the partitioned loop keeps no per-level traces.
obs::RunReport BuildPartitionedRunReport(const std::string& graph_name,
                                         const graph::Csr& graph,
                                         const EngineOptions& options,
                                         int64_t instances,
                                         const PartitionedRunResult& result);

/// Attaches the partitioned-execution "comm" section to an existing report.
void AttachPartitionSection(const PartitionedRunResult& result,
                            obs::RunReport* report);

}  // namespace ibfs

#endif  // IBFS_CORE_OBSERVE_H_
