#include "core/options.h"

#include <algorithm>
#include <cmath>

#include "util/prng.h"

namespace ibfs {

Status RetryPolicy::Validate() const {
  if (max_attempts < 1) {
    return Status::InvalidArgument("retry.max_attempts must be >= 1");
  }
  if (initial_backoff_ms < 0.0 || max_backoff_ms < 0.0) {
    return Status::InvalidArgument("retry backoff must be non-negative");
  }
  if (backoff_multiplier < 1.0) {
    return Status::InvalidArgument("retry.backoff_multiplier must be >= 1");
  }
  if (jitter < 0.0 || jitter >= 1.0) {
    return Status::InvalidArgument("retry.jitter must be in [0, 1)");
  }
  return Status::OK();
}

double RetryPolicy::BackoffMs(uint64_t salt, int attempt) const {
  const double base = std::min(
      max_backoff_ms,
      initial_backoff_ms *
          std::pow(backoff_multiplier, std::max(0, attempt - 2)));
  if (jitter == 0.0) return base;
  Prng prng(seed ^ (salt * 0x9e3779b97f4a7c15ULL) ^
            (static_cast<uint64_t>(attempt) << 32));
  return base * (1.0 - jitter + 2.0 * jitter * prng.NextDouble());
}

const char* GroupingPolicyName(GroupingPolicy policy) {
  switch (policy) {
    case GroupingPolicy::kInOrder:
      return "in-order";
    case GroupingPolicy::kRandom:
      return "random";
    case GroupingPolicy::kGroupBy:
      return "groupby";
  }
  return "unknown";
}

Status EngineOptions::Validate() const {
  if (group_size < 1) {
    return Status::InvalidArgument("group_size must be >= 1");
  }
  if (group_size > 4096) {
    return Status::InvalidArgument("group_size above supported maximum 4096");
  }
  if (traversal.max_level < 1 ||
      traversal.max_level > TraversalOptions::kMaxTraversalLevel) {
    return Status::InvalidArgument("traversal.max_level out of range");
  }
  if (traversal.alpha <= 0.0 || traversal.beta <= 0.0) {
    return Status::InvalidArgument("direction parameters must be positive");
  }
  if (threads < 0) {
    return Status::InvalidArgument("threads must be >= 0 (0 = auto)");
  }
  if (groupby.q < 0) {
    return Status::InvalidArgument("groupby.q must be non-negative");
  }
  if (groupby.p_sequence.empty()) {
    return Status::InvalidArgument("groupby.p_sequence must not be empty");
  }
  if (device.sm_count <= 0 || device.parallel_warp_slots <= 0 ||
      device.clock_ghz <= 0.0 || device.mem_bandwidth_gbps <= 0.0 ||
      device.transaction_bytes <= 0) {
    return Status::InvalidArgument("device spec fields must be positive");
  }
  IBFS_RETURN_NOT_OK(faults.Validate());
  return retry.Validate();
}

}  // namespace ibfs
