#include "core/options.h"

namespace ibfs {

const char* GroupingPolicyName(GroupingPolicy policy) {
  switch (policy) {
    case GroupingPolicy::kInOrder:
      return "in-order";
    case GroupingPolicy::kRandom:
      return "random";
    case GroupingPolicy::kGroupBy:
      return "groupby";
  }
  return "unknown";
}

Status EngineOptions::Validate() const {
  if (group_size < 1) {
    return Status::InvalidArgument("group_size must be >= 1");
  }
  if (group_size > 4096) {
    return Status::InvalidArgument("group_size above supported maximum 4096");
  }
  if (traversal.max_level < 1 ||
      traversal.max_level > TraversalOptions::kMaxTraversalLevel) {
    return Status::InvalidArgument("traversal.max_level out of range");
  }
  if (traversal.alpha <= 0.0 || traversal.beta <= 0.0) {
    return Status::InvalidArgument("direction parameters must be positive");
  }
  if (threads < 0) {
    return Status::InvalidArgument("threads must be >= 0 (0 = auto)");
  }
  if (groupby.q < 0) {
    return Status::InvalidArgument("groupby.q must be non-negative");
  }
  if (groupby.p_sequence.empty()) {
    return Status::InvalidArgument("groupby.p_sequence must not be empty");
  }
  if (device.sm_count <= 0 || device.parallel_warp_slots <= 0 ||
      device.clock_ghz <= 0.0 || device.mem_bandwidth_gbps <= 0.0 ||
      device.transaction_bytes <= 0) {
    return Status::InvalidArgument("device spec fields must be positive");
  }
  return Status::OK();
}

}  // namespace ibfs
