#include "core/trace_io.h"

#include "util/csv.h"

namespace ibfs {

void WriteLevelTracesCsv(const EngineResult& result, std::ostream& os) {
  CsvTable table({"group", "level", "direction", "jfq_size",
                  "private_fq_sum", "sharing_degree", "edges_inspected",
                  "new_visits"});
  for (size_t g = 0; g < result.groups.size(); ++g) {
    for (const LevelTrace& lt : result.groups[g].trace.levels) {
      table.Row()
          .Add(static_cast<int64_t>(g))
          .Add(lt.level)
          .Add(std::string(lt.bottom_up ? "bottom-up" : "top-down"))
          .Add(lt.jfq_size)
          .Add(lt.private_fq_sum)
          .Add(lt.jfq_size > 0 ? static_cast<double>(lt.private_fq_sum) /
                                     static_cast<double>(lt.jfq_size)
                               : 0.0,
               2)
          .Add(lt.edges_inspected)
          .Add(lt.new_visits);
    }
  }
  table.Print(os);
}

void WritePhasesCsv(const EngineResult& result, std::ostream& os) {
  CsvTable table({"phase", "seconds", "launches", "load_txn", "store_txn",
                  "load_requests", "atomics", "shared_bytes"});
  for (const auto& [tag, st] : result.phases) {
    table.Row()
        .Add(tag)
        .Add(st.seconds, 9)
        .Add(st.launch_count)
        .Add(st.mem.load_transactions)
        .Add(st.mem.store_transactions)
        .Add(st.mem.load_requests)
        .Add(st.mem.atomic_ops)
        .Add(st.mem.shared_bytes);
  }
  table.Print(os);
}

}  // namespace ibfs
