#ifndef IBFS_CORE_SHORTEST_PATHS_H_
#define IBFS_CORE_SHORTEST_PATHS_H_

#include <cstdint>
#include <span>
#include <vector>

#include "core/engine.h"
#include "graph/csr.h"

namespace ibfs {

/// Dense hop-distance matrix over a set of sources, computed by one
/// concurrent-BFS sweep. This is the paper's framing of iBFS as a
/// shortest-path engine on unweighted graphs: i = 1 is SSSP, 1 < i < |V|
/// is MSSP, i = |V| is APSP (Section 1).
class DistanceMatrix {
 public:
  /// Runs iBFS from `sources` and materializes the distances.
  static Result<DistanceMatrix> Compute(const graph::Csr& graph,
                                        std::span<const graph::VertexId>
                                            sources,
                                        const EngineOptions& options = {});

  /// APSP: one BFS per vertex of the graph.
  static Result<DistanceMatrix> AllPairs(const graph::Csr& graph,
                                         const EngineOptions& options = {});

  /// Hop distance from the i-th source to `target`; -1 when unreachable.
  int Distance(int64_t source_index, graph::VertexId target) const;

  /// The source vertex behind row `source_index` (rows follow the
  /// engine's group order, not the input order).
  graph::VertexId SourceAt(int64_t source_index) const {
    return sources_[source_index];
  }

  /// Row index for a source vertex; -1 if the vertex was not a source.
  int64_t RowOf(graph::VertexId source) const;

  int64_t source_count() const {
    return static_cast<int64_t>(sources_.size());
  }
  int64_t vertex_count() const { return vertex_count_; }

  /// Simulated seconds of the underlying traversal.
  double sim_seconds() const { return sim_seconds_; }

 private:
  DistanceMatrix() = default;

  int64_t vertex_count_ = 0;
  std::vector<graph::VertexId> sources_;
  std::vector<int64_t> row_of_;  // vertex -> row or -1
  std::vector<uint8_t> hops_;    // row-major [source][vertex]
  double sim_seconds_ = 0.0;
};

}  // namespace ibfs

#endif  // IBFS_CORE_SHORTEST_PATHS_H_
