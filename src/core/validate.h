#ifndef IBFS_CORE_VALIDATE_H_
#define IBFS_CORE_VALIDATE_H_

#include <cstdint>
#include <span>
#include <vector>

#include "graph/csr.h"
#include "util/status.h"

namespace ibfs {

/// Graph500-style BFS result validation — oracle-free structural checks
/// instead of a second traversal, so they scale to any instance count.
///
/// Depth-array checks (kernels 1/2 of the Graph500 validator):
///  - the source has depth 0 and is the only depth-0 vertex;
///  - every edge (v, w) with v visited has w visited within one level
///    (|d(v) - d(w)| <= 1 over undirected pairs; d(w) <= d(v)+1 directed);
///  - every visited non-source vertex has an in-neighbor one level up
///    (a parent actually exists);
///  - no depth exceeds `max_level`.
/// `depths` uses 0xFF (kUnvisitedDepth) for unreached vertices.
Status ValidateBfsDepths(const graph::Csr& graph, graph::VertexId source,
                         std::span<const uint8_t> depths,
                         int max_level = 0xFE);

/// Validates a BFS parent tree: parent[source] == source; every other
/// reached vertex's parent is a real in-neighbor whose depth is exactly
/// one smaller; unreached vertices have kInvalidVertex parents; and the
/// parent pointers contain no cycles (tree property).
Status ValidateBfsTree(const graph::Csr& graph, graph::VertexId source,
                       std::span<const graph::VertexId> parents,
                       std::span<const uint8_t> depths);

}  // namespace ibfs

#endif  // IBFS_CORE_VALIDATE_H_
