#include "core/observe.h"

#include <utility>
#include <vector>

#include "gpusim/report.h"
#include "ibfs/runner.h"

namespace ibfs {
namespace {

obs::ReportPhase ToReportPhase(const gpusim::ProfileRow& row) {
  obs::ReportPhase phase;
  phase.name = row.phase;
  phase.seconds = row.seconds;
  phase.launches = row.launches;
  phase.load_transactions = row.load_transactions;
  phase.store_transactions = row.store_transactions;
  phase.load_requests = row.load_requests;
  phase.store_requests = row.store_requests;
  phase.load_transactions_per_request = row.load_transactions_per_request;
  phase.atomic_ops = row.atomic_ops;
  phase.shared_bytes = row.shared_bytes;
  return phase;
}

}  // namespace

obs::RunReport BuildRunReport(const std::string& graph_name,
                              const graph::Csr& graph,
                              const EngineOptions& options, int64_t instances,
                              const EngineResult& result) {
  obs::RunReport report;
  report.graph = graph_name;
  report.vertex_count = graph.vertex_count();
  report.edge_count = graph.edge_count();
  report.strategy = StrategyName(options.strategy);
  report.grouping = GroupingPolicyName(options.grouping);
  report.instances = instances;
  report.group_size = options.group_size;

  report.sim_seconds = result.sim_seconds;
  report.wall_seconds = result.wall_seconds;
  report.teps = result.teps;
  report.sharing_ratio = result.SharingRatio();
  report.sharing_ratio_top_down = result.SharingRatio(0);
  report.sharing_ratio_bottom_up = result.SharingRatio(1);
  report.rule_matched = result.rule_matched;

  report.groups.reserve(result.groups.size());
  for (size_t g = 0; g < result.groups.size(); ++g) {
    const GroupResult& gr = result.groups[g];
    obs::ReportGroup out;
    out.index = static_cast<int>(g);
    out.instance_count = gr.trace.instance_count;
    out.sim_seconds =
        g < result.group_seconds.size() ? result.group_seconds[g] : 0.0;
    out.sharing_degree = gr.trace.SharingDegree();
    out.sharing_ratio = gr.trace.SharingRatio();
    out.hub = g < result.group_hubs.size() ? result.group_hubs[g] : -1;
    if (g < result.group_sources.size()) {
      out.sources.reserve(result.group_sources[g].size());
      for (graph::VertexId s : result.group_sources[g]) {
        out.sources.push_back(static_cast<int64_t>(s));
      }
    }
    out.levels.reserve(gr.trace.levels.size());
    for (const LevelTrace& lt : gr.trace.levels) {
      obs::ReportLevel level;
      level.level = lt.level;
      level.bottom_up = lt.bottom_up;
      level.jfq_size = lt.jfq_size;
      level.private_fq_sum = lt.private_fq_sum;
      level.edges_inspected = lt.edges_inspected;
      level.new_visits = lt.new_visits;
      out.levels.push_back(std::move(level));
    }
    report.groups.push_back(std::move(out));
  }

  std::vector<gpusim::ProfileRow> rows =
      gpusim::ProfileRows(result.phases, result.totals, result.sim_seconds);
  for (gpusim::ProfileRow& row : rows) {
    if (row.phase == gpusim::kTotalRowName) {
      report.totals = ToReportPhase(row);
    } else {
      report.phases.push_back(ToReportPhase(row));
    }
  }
  return report;
}

obs::RunReport BuildPartitionedRunReport(const std::string& graph_name,
                                         const graph::Csr& graph,
                                         const EngineOptions& options,
                                         int64_t instances,
                                         const PartitionedRunResult& result) {
  obs::RunReport report;
  report.graph = graph_name;
  report.vertex_count = graph.vertex_count();
  report.edge_count = graph.edge_count();
  report.strategy = StrategyName(options.strategy);
  report.grouping = GroupingPolicyName(options.grouping);
  report.instances = instances;
  report.group_size = options.group_size;

  report.sim_seconds = result.sim_seconds;
  report.wall_seconds = result.wall_seconds;
  report.teps = result.teps;

  report.groups.reserve(result.group_sources.size());
  for (size_t g = 0; g < result.group_sources.size(); ++g) {
    obs::ReportGroup out;
    out.index = static_cast<int>(g);
    out.instance_count = static_cast<int>(result.group_sources[g].size());
    out.sources.reserve(result.group_sources[g].size());
    for (graph::VertexId s : result.group_sources[g]) {
      out.sources.push_back(static_cast<int64_t>(s));
    }
    report.groups.push_back(std::move(out));
  }

  std::vector<gpusim::ProfileRow> rows =
      gpusim::ProfileRows(result.phases, result.totals, result.sim_seconds);
  for (gpusim::ProfileRow& row : rows) {
    if (row.phase == gpusim::kTotalRowName) {
      report.totals = ToReportPhase(row);
    } else {
      report.phases.push_back(ToReportPhase(row));
    }
  }
  return report;
}

void AttachPartitionSection(const PartitionedRunResult& result,
                            obs::RunReport* report) {
  report->has_comm = true;
  obs::ReportComm& comm = report->comm;
  comm.partitions = result.partitions;
  comm.schedule = gpusim::CommScheduleName(result.schedule);
  comm.link_gbps = result.link.bandwidth_gbps;
  comm.link_us = result.link.latency_us;
  comm.compute_seconds = result.compute_seconds;
  comm.comm_seconds = result.comm_seconds;
  comm.bytes_on_wire = result.bytes_on_wire;
  comm.rounds = result.comm_rounds;
  comm.supersteps = result.supersteps;
  comm.edge_imbalance = result.edge_imbalance;
  comm.partition_vertices = result.partition_vertices;
  comm.partition_edges = result.partition_edges;
  comm.device_seconds = result.device_seconds;
}

void AttachClusterSection(const ClusterRunResult& cluster,
                          gpusim::PlacementPolicy policy,
                          obs::RunReport* report) {
  report->has_cluster = true;
  report->cluster.device_count =
      static_cast<int>(cluster.schedule.device_seconds.size());
  report->cluster.policy =
      policy == gpusim::PlacementPolicy::kLpt ? "lpt" : "round-robin";
  report->cluster.makespan_seconds = cluster.schedule.makespan_seconds;
  report->cluster.speedup = cluster.speedup;
  report->cluster.teps = cluster.teps;
  report->cluster.device_seconds = cluster.schedule.device_seconds;
}

}  // namespace ibfs
