#include "core/engine.h"

#include <algorithm>
#include <chrono>
#include <numeric>
#include <string>
#include <utility>
#include <vector>

#include "core/group_plan.h"
#include "core/resilient.h"
#include "ibfs/status_array.h"
#include "obs/metrics.h"
#include "util/logging.h"
#include "util/thread_pool.h"

namespace ibfs {

double EngineResult::SharingRatio(int direction) const {
  int64_t private_sum = 0;
  int64_t joint_sum = 0;
  int64_t instances = 0;
  int64_t group_count = 0;
  for (const GroupResult& g : groups) {
    for (const LevelTrace& lt : g.trace.levels) {
      if (direction == 0 && lt.bottom_up) continue;
      if (direction == 1 && !lt.bottom_up) continue;
      private_sum += lt.private_fq_sum;
      joint_sum += lt.jfq_size;
    }
    instances += g.trace.instance_count;
    ++group_count;
  }
  if (joint_sum == 0 || group_count == 0 || instances == 0) return 0.0;
  const double avg_instances =
      static_cast<double>(instances) / static_cast<double>(group_count);
  const double sd =
      static_cast<double>(private_sum) / static_cast<double>(joint_sum);
  return sd / avg_instances;
}

int EngineResult::DepthOf(size_t g, size_t k, graph::VertexId v) const {
  IBFS_CHECK(g < groups.size());
  IBFS_CHECK(k < groups[g].depths.size());
  const uint8_t d = groups[g].depths[k][v];
  return d == kUnvisitedDepth ? -1 : d;
}

Engine::Engine(const graph::Csr* graph, EngineOptions options)
    : graph_(graph), options_(std::move(options)) {
  IBFS_CHECK(graph_ != nullptr);
}

int64_t Engine::MaxGroupSize(const graph::Csr& graph,
                             const gpusim::DeviceSpec& spec) {
  const int64_t m = spec.global_memory_bytes;
  const int64_t s = graph.StorageBytes();
  const int64_t jfq = graph.vertex_count() *
                      static_cast<int64_t>(sizeof(graph::VertexId));
  const int64_t sa = graph.vertex_count();  // one byte per vertex and instance
  if (m <= s + jfq || sa == 0) return 0;
  return (m - s - jfq) / sa;
}

Result<EngineResult> Engine::Run(
    std::span<const graph::VertexId> sources) const {
  const auto wall_start = std::chrono::steady_clock::now();
  const obs::Observer& observer = options_.observer;
  const auto wall_us = [&wall_start] {
    return std::chrono::duration<double, std::micro>(
               std::chrono::steady_clock::now() - wall_start)
        .count();
  };
  if (observer.tracing()) {
    observer.tracer->SetProcessName(
        observer.track.pid, "GPU " + std::to_string(observer.track.pid) +
                                " (simulated time)");
    observer.tracer->SetProcessName(obs::kHostPid, "host (wall clock)");
  }

  IBFS_RETURN_NOT_OK(options_.Validate());

  const double grouping_start_us = wall_us();
  Result<GroupPlan> plan =
      GroupSources(*graph_, sources, options_, DuplicatePolicy::kAllow);
  if (!plan.ok()) return plan.status();
  Grouping grouping = std::move(plan.value().grouping);
  if (observer.tracing()) {
    observer.tracer->CompleteSpan(
        {obs::kHostPid, 0}, "grouping", "host", grouping_start_us,
        wall_us() - grouping_start_us,
        {obs::Arg("policy", GroupingPolicyName(options_.grouping)),
         obs::Arg("groups", static_cast<int64_t>(grouping.groups.size())),
         obs::Arg("rule_matched", grouping.rule_matched)});
  }
  if (observer.metering()) {
    observer.metrics->GetCounter("engine.groups")
        ->Increment(static_cast<int64_t>(grouping.groups.size()));
    observer.metrics->GetCounter("engine.rule_matched")
        ->Increment(grouping.rule_matched);
  }

  EngineResult result;
  result.rule_matched = grouping.rule_matched;
  result.group_hubs = std::move(grouping.group_hubs);

  // Each group runs on its own fresh device, so its simulated timeline and
  // counters start from zero no matter which worker (or how many) executes
  // it — that is what makes the parallel run bit-identical to the serial
  // one. Trace spans go to a per-group track (tid 1 + g on the engine's
  // pid) in group-local simulated time. Group g maps to fleet device
  // g % faults.device_count, and each attempt runs through the resilient
  // executor (retry + backoff + transfer checksum); with the default
  // disabled fault plan that is exactly one ExecuteGroup per group.
  const size_t group_count = grouping.groups.size();
  struct GroupRun {
    Status status = Status::OK();
    GroupResult result;
    double seconds = 0.0;
    gpusim::KernelStats totals;
    gpusim::PhaseMap phases;
    int retries = 0;
    int transient_faults = 0;
    int corruptions_detected = 0;
    double wasted_sim_seconds = 0.0;
  };
  std::vector<GroupRun> runs(group_count);
  auto run_group = [&](int64_t g) {
    const obs::Observer group_observer =
        observer.WithTrack(observer.track.pid, 1 + static_cast<int>(g));
    GroupRun& run = runs[static_cast<size_t>(g)];
    const int device_id =
        static_cast<int>(g % std::max(1, options_.faults.device_count));
    ResilientOutcome outcome = ExecuteGroupResilient(
        *this, grouping.groups[static_cast<size_t>(g)], device_id,
        static_cast<uint64_t>(g), group_observer);
    run.retries = outcome.attempts - 1;
    run.transient_faults = outcome.transient_faults;
    run.corruptions_detected = outcome.corruptions_detected;
    run.wasted_sim_seconds = outcome.wasted_sim_seconds;
    if (!outcome.status.ok()) {
      run.status = std::move(outcome.status);
      return;
    }
    run.result = std::move(outcome.result);
    run.seconds = outcome.sim_seconds;
    run.totals = outcome.totals;
    run.phases = std::move(outcome.phases);
  };

  const int threads = ResolveThreads(group_count);
  const double exec_start_us = wall_us();
  if (threads <= 1) {
    for (size_t g = 0; g < group_count; ++g) run_group(static_cast<int64_t>(g));
  } else {
    ThreadPool pool(threads);
    pool.ParallelFor(static_cast<int64_t>(group_count), run_group);
  }
  if (observer.tracing()) {
    observer.tracer->CompleteSpan(
        {obs::kHostPid, 0}, "run_groups", "host", exec_start_us,
        wall_us() - exec_start_us,
        {obs::Arg("threads", static_cast<int64_t>(threads)),
         obs::Arg("groups", static_cast<int64_t>(group_count))});
  }

  // Deterministic merge, strictly in group order on this thread: the first
  // failing group's status wins, sim_seconds is the in-order sum of the
  // per-group seconds, and counter/phase totals fold group by group.
  for (size_t g = 0; g < group_count; ++g) {
    GroupRun& run = runs[g];
    result.retries += run.retries;
    result.transient_faults += run.transient_faults;
    result.corruptions_detected += run.corruptions_detected;
    result.wasted_sim_seconds += run.wasted_sim_seconds;
    IBFS_RETURN_NOT_OK(run.status);
    if (observer.tracing()) {
      observer.tracer->SetThreadName(observer.track.pid,
                                     1 + static_cast<int>(g),
                                     "group " + std::to_string(g));
      std::vector<obs::TraceArg> span_args = {
          obs::Arg("instances",
                   static_cast<int64_t>(grouping.groups[g].size())),
          obs::Arg("levels",
                   static_cast<int64_t>(run.result.trace.levels.size())),
          obs::Arg("hub", g < result.group_hubs.size()
                              ? result.group_hubs[g]
                              : int64_t{-1})};
      if (!observer.context.empty()) {
        span_args.push_back(obs::Arg("ctx", observer.context));
      }
      observer.tracer->CompleteSpan(
          {observer.track.pid, 1 + static_cast<int>(g)},
          "group " + std::to_string(g), "group", 0.0, run.seconds * 1e6,
          std::move(span_args));
    }
    result.sim_seconds += run.seconds;
    result.totals.Add(run.totals);
    for (const auto& [phase, stats] : run.phases) {
      result.phases[phase].Add(stats);
    }
    result.group_seconds.push_back(run.seconds);
    result.groups.push_back(std::move(run.result));
    result.group_sources.push_back(std::move(grouping.groups[g]));
  }

  const double edges = static_cast<double>(graph_->edge_count()) *
                       static_cast<double>(sources.size());
  result.teps = result.sim_seconds > 0.0 ? edges / result.sim_seconds : 0.0;
  result.wall_seconds = wall_us() * 1e-6;
  if (observer.metering()) {
    observer.metrics->GetGauge("engine.sim_seconds")
        ->Set(result.sim_seconds);
    observer.metrics->GetGauge("engine.teps")->Set(result.teps);
    observer.metrics->GetGauge("engine.threads")
        ->Set(static_cast<double>(threads));
  }
  return result;
}

Result<GroupResult> Engine::ExecuteGroup(
    std::span<const graph::VertexId> group, gpusim::Device* device,
    const obs::Observer& observer) const {
  IBFS_CHECK(device != nullptr);
  device->SetObserver(observer);
  TraversalOptions traversal = options_.traversal;
  traversal.record_depths = options_.keep_depths;
  traversal.observer = observer;
  return RunGroup(options_.strategy, *graph_, group, traversal, device);
}

int Engine::ResolveThreads(size_t group_count) const {
  const int requested = options_.threads == 0
                            ? ThreadPool::HardwareConcurrency()
                            : options_.threads;
  const int64_t cap = static_cast<int64_t>(std::max<size_t>(group_count, 1));
  return static_cast<int>(std::min<int64_t>(requested, cap));
}

Result<EngineResult> Engine::RunAllSources() const {
  std::vector<graph::VertexId> sources(
      static_cast<size_t>(graph_->vertex_count()));
  std::iota(sources.begin(), sources.end(), 0);
  return Run(sources);
}

}  // namespace ibfs
