#include "core/group_plan.h"

#include <algorithm>
#include <string>
#include <unordered_set>

#include "core/engine.h"
#include "util/checksum.h"

namespace ibfs {

namespace {

uint64_t HashU64(uint64_t state, uint64_t v) {
  return Fnv1aExtend(state,
                     {reinterpret_cast<const uint8_t*>(&v), sizeof(v)});
}

}  // namespace

uint64_t SourceSetFingerprint(std::span<const graph::VertexId> sources) {
  uint64_t state = HashU64(kFnv1aOffsetBasis,
                           static_cast<uint64_t>(sources.size()));
  return Fnv1aExtend(
      state, {reinterpret_cast<const uint8_t*>(sources.data()),
              sources.size() * sizeof(graph::VertexId)});
}

uint64_t GroupConfigFingerprint(const EngineOptions& options) {
  uint64_t state = kFnv1aOffsetBasis;
  state = HashU64(state, static_cast<uint64_t>(options.grouping));
  state = HashU64(state, static_cast<uint64_t>(options.group_size));
  state = HashU64(state, options.seed);
  // The memory bound feeds the group-size clamp.
  state = HashU64(state,
                  static_cast<uint64_t>(options.device.global_memory_bytes));
  const GroupByParams& gb = options.groupby;
  for (int64_t p : gb.p_sequence) {
    state = HashU64(state, static_cast<uint64_t>(p));
  }
  state = HashU64(state, static_cast<uint64_t>(gb.q));
  state = HashU64(state, gb.seed);
  state = HashU64(state, static_cast<uint64_t>(gb.hub_search_depth));
  state = HashU64(state, gb.uniform_fallback ? 1 : 0);
  return state;
}

Result<GroupPlan> GroupSources(const graph::Csr& graph,
                               std::span<const graph::VertexId> sources,
                               const EngineOptions& options,
                               DuplicatePolicy duplicates) {
  if (sources.empty()) {
    return Status::InvalidArgument("no source vertices given");
  }
  for (graph::VertexId s : sources) {
    if (static_cast<int64_t>(s) >= graph.vertex_count()) {
      return Status::OutOfRange("source vertex outside graph");
    }
  }
  if (duplicates == DuplicatePolicy::kReject) {
    std::unordered_set<graph::VertexId> seen;
    seen.reserve(sources.size());
    for (graph::VertexId s : sources) {
      if (!seen.insert(s).second) {
        return Status::InvalidArgument(
            "duplicate source vertex " + std::to_string(s) +
            " in one batch");
      }
    }
  }

  // The device-memory cap on N (Section 3). With the default 12 GB spec and
  // laptop-scale graphs this never binds, but a small spec exercises it.
  const int64_t cap = Engine::MaxGroupSize(graph, options.device);
  if (cap < 1) {
    return Status::FailedPrecondition(
        "graph does not fit in simulated device memory");
  }
  GroupPlan plan;
  plan.group_size =
      static_cast<int>(std::min<int64_t>(options.group_size, cap));

  switch (options.grouping) {
    case GroupingPolicy::kInOrder:
      plan.grouping = ChunkGrouping(sources, plan.group_size);
      break;
    case GroupingPolicy::kRandom:
      plan.grouping = RandomGrouping(sources, plan.group_size, options.seed);
      break;
    case GroupingPolicy::kGroupBy: {
      GroupByParams params = options.groupby;
      params.group_size = plan.group_size;
      plan.grouping = GroupByOutdegree(graph, sources, params);
      break;
    }
  }
  return plan;
}

}  // namespace ibfs
