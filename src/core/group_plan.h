#ifndef IBFS_CORE_GROUP_PLAN_H_
#define IBFS_CORE_GROUP_PLAN_H_

#include <span>

#include "core/options.h"
#include "graph/csr.h"
#include "ibfs/groupby.h"
#include "util/status.h"

namespace ibfs {

/// Whether GroupSources accepts repeated source vertices. Offline batch
/// runs allow them (SampleConnectedSources wraps its pool when asked for
/// more instances than the giant component holds); the online service
/// dedups identical queries before grouping and treats a repeat reaching
/// the grouper as a caller bug.
enum class DuplicatePolicy {
  kAllow,
  kReject,
};

/// The outcome of planning one batch of sources into concurrent groups.
struct GroupPlan {
  Grouping grouping;
  /// Group size actually used: the requested EngineOptions::group_size
  /// clamped to the device-memory bound (Engine::MaxGroupSize).
  int group_size = 0;
};

/// Validates a batch of sources (non-empty, every vertex inside the graph,
/// optionally duplicate-free) and applies the configured grouping policy
/// with the device-memory clamp. This is the single grouping code path:
/// Engine::Run plans its whole workload through it, and the online BFS
/// service plans each dynamically-closed batch through it, so the two
/// always agree on how a set of sources becomes groups.
Result<GroupPlan> GroupSources(const graph::Csr& graph,
                               std::span<const graph::VertexId> sources,
                               const EngineOptions& options,
                               DuplicatePolicy duplicates =
                                   DuplicatePolicy::kAllow);

/// FNV-1a digest of a source batch (the raw vertex-id bytes, in the order
/// given — callers keying on the *set* sort first). The service's plan
/// cache uses it to memoize GroupSources output for repeated batches; a
/// digest is a hash, not an identity, so cache entries must still compare
/// the full key for equality.
uint64_t SourceSetFingerprint(std::span<const graph::VertexId> sources);

/// Digest of the GroupSources inputs that shape a plan beyond the source
/// set itself: grouping policy, requested group size, GroupBy parameters,
/// device spec memory bound, and the random-grouping seed. A plan cache
/// keyed on (config digest, sorted sources) stays correct when options
/// change between services sharing one cache.
uint64_t GroupConfigFingerprint(const EngineOptions& options);

}  // namespace ibfs

#endif  // IBFS_CORE_GROUP_PLAN_H_
