#include "core/cluster_engine.h"

#include <algorithm>
#include <bit>
#include <chrono>
#include <functional>
#include <optional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/group_plan.h"
#include "ibfs/status_array.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/checksum.h"
#include "util/thread_pool.h"

namespace ibfs {
namespace {

// Cluster device tracks live in their own pid range so they never collide
// with the single-device track (engine pid, usually 0) or the host track
// (obs::kHostPid).
constexpr int kClusterPidBase = 100;

// Partitioned-run device tracks get their own pid range above the cluster's
// so a trace can hold both execution modes side by side.
constexpr int kPartitionPidBase = 200;

}  // namespace

Result<ClusterRunResult> RunOnCluster(const graph::Csr& graph,
                                      std::span<const graph::VertexId> sources,
                                      const EngineOptions& options,
                                      int device_count,
                                      gpusim::PlacementPolicy policy) {
  if (device_count < 1) {
    return Status::InvalidArgument("device_count must be >= 1");
  }
  // Measurement pass: one single-device run yields the per-group costs the
  // placement policy needs up front (LPT sorts by cost before assigning).
  EngineOptions opts = options;
  opts.keep_depths = false;
  Engine engine(&graph, opts);
  Result<EngineResult> run = engine.Run(sources);
  IBFS_RETURN_NOT_OK(run.status());

  ClusterRunResult result;
  result.engine = std::move(run).value();
  const EngineResult& res = result.engine;
  result.single_device_seconds = res.sim_seconds;
  const size_t group_count = res.group_seconds.size();
  result.group_count = static_cast<int64_t>(group_count);
  gpusim::Cluster cluster(device_count, opts.device);
  const gpusim::ClusterRun placement = cluster.Place(res.group_seconds, policy);

  // Execution pass: run each device's placed unit list for real, one
  // simulated device per worker thread, instead of replaying the measured
  // timings. Units on one device execute back to back in placement order
  // (ascending planned start), on a continuous per-GPU timeline — so the
  // schedule below carries *measured* starts and busy times. Each device is
  // sequential within itself, so the measured numbers do not depend on the
  // worker count.
  std::vector<std::vector<size_t>> device_units(
      static_cast<size_t>(device_count));
  for (size_t g = 0; g < group_count; ++g) {
    device_units[static_cast<size_t>(placement.unit_device[g])].push_back(g);
  }
  for (auto& units : device_units) {
    std::sort(units.begin(), units.end(), [&](size_t a, size_t b) {
      if (placement.unit_start_seconds[a] != placement.unit_start_seconds[b]) {
        return placement.unit_start_seconds[a] <
               placement.unit_start_seconds[b];
      }
      return a < b;
    });
  }

  result.schedule.unit_device = placement.unit_device;
  result.schedule.total_seconds = placement.total_seconds;
  result.schedule.device_seconds.assign(static_cast<size_t>(device_count),
                                        0.0);
  result.schedule.unit_start_seconds.assign(group_count, 0.0);

  const obs::Observer& observer = options.observer;
  const char* policy_name =
      policy == gpusim::PlacementPolicy::kLpt ? "lpt" : "round-robin";
  if (observer.tracing()) {
    for (int d = 0; d < device_count; ++d) {
      observer.tracer->SetProcessName(
          kClusterPidBase + d,
          "cluster GPU " + std::to_string(d) + " (simulated time)");
    }
  }
  // The execution pass traces (kernel/level/cluster spans on the per-GPU
  // pids) but does not meter: the measurement run already counted every
  // kernel and level once, and executing the same groups again would double
  // the engine.* / gpusim.* counters.
  obs::Observer exec_observer;
  exec_observer.tracer = observer.tracer;

  std::vector<Status> device_status(static_cast<size_t>(device_count),
                                    Status::OK());
  auto run_device = [&](int64_t d) {
    gpusim::Device device(opts.device);
    const obs::Observer dev_observer =
        exec_observer.WithTrack(kClusterPidBase + static_cast<int>(d), 0);
    for (size_t g : device_units[static_cast<size_t>(d)]) {
      const double start = device.elapsed_seconds();
      Result<GroupResult> group_result =
          engine.ExecuteGroup(res.group_sources[g], &device, dev_observer);
      if (!group_result.ok()) {
        device_status[static_cast<size_t>(d)] = group_result.status();
        return;
      }
      result.schedule.unit_start_seconds[g] = start;
      if (dev_observer.tracing()) {
        dev_observer.tracer->CompleteSpan(
            dev_observer.track, "group " + std::to_string(g), "cluster",
            start * 1e6, (device.elapsed_seconds() - start) * 1e6,
            {obs::Arg("device", static_cast<int64_t>(d)),
             obs::Arg("policy", policy_name)});
      }
    }
    result.schedule.device_seconds[static_cast<size_t>(d)] =
        device.elapsed_seconds();
  };

  const int exec_threads = std::min<int>(
      device_count, opts.threads == 0 ? ThreadPool::HardwareConcurrency()
                                      : std::max(1, opts.threads));
  if (exec_threads <= 1) {
    for (int d = 0; d < device_count; ++d) run_device(d);
  } else {
    ThreadPool pool(exec_threads);
    pool.ParallelFor(device_count, run_device);
  }
  for (const Status& s : device_status) IBFS_RETURN_NOT_OK(s);

  result.schedule.makespan_seconds =
      result.schedule.device_seconds.empty()
          ? 0.0
          : *std::max_element(result.schedule.device_seconds.begin(),
                              result.schedule.device_seconds.end());
  if (result.schedule.makespan_seconds > 0.0) {
    result.speedup =
        result.single_device_seconds / result.schedule.makespan_seconds;
    const double edges = static_cast<double>(graph.edge_count()) *
                         static_cast<double>(sources.size());
    result.teps = edges / result.schedule.makespan_seconds;
  }

  if (observer.metering()) {
    observer.metrics->GetGauge("cluster.devices")
        ->Set(static_cast<double>(device_count));
    observer.metrics->GetGauge("cluster.makespan_seconds")
        ->Set(result.schedule.makespan_seconds);
    observer.metrics->GetGauge("cluster.speedup")->Set(result.speedup);
  }
  return result;
}

uint64_t DepthChecksum(std::span<const GroupResult> groups) {
  uint64_t state = kFnv1aOffsetBasis;
  for (const GroupResult& group : groups) {
    for (const std::vector<uint8_t>& depths : group.depths) {
      state = Fnv1aExtend(state, depths);
    }
  }
  return state;
}

Result<PartitionedRunResult> RunPartitioned(
    const graph::Csr& graph, std::span<const graph::VertexId> sources,
    const EngineOptions& options, const PartitionRunOptions& run) {
  IBFS_RETURN_NOT_OK(options.Validate());
  const auto wall_start = std::chrono::steady_clock::now();

  Result<graph::Partitioning> parted =
      graph::PartitionByEdges1D(graph, run.partitions);
  IBFS_RETURN_NOT_OK(parted.status());
  const graph::Partitioning& parts = parted.value();

  // Same single grouping code path as Engine::Run, so the partitioned run's
  // group structure matches the unpartitioned engine exactly.
  Result<GroupPlan> plan =
      GroupSources(graph, sources, options, DuplicatePolicy::kAllow);
  IBFS_RETURN_NOT_OK(plan.status());
  const std::vector<std::vector<graph::VertexId>>& groups =
      plan.value().grouping.groups;

  const int P = parts.partition_count();
  const int64_t vertices = graph.vertex_count();
  const int64_t words = (vertices + 63) / 64;

  gpusim::LinkSpec link{options.device.link_bandwidth_gbps,
                        options.device.link_latency_us};
  if (run.link_gbps > 0.0) link.bandwidth_gbps = run.link_gbps;
  if (run.link_us >= 0.0) link.latency_us = run.link_us;

  // Exchange payload: each rank ships the bitmap words covering its owned
  // range, padded to the widest partition's span — collectives move
  // symmetric slices, so the fleet pays for the worst rank.
  int64_t max_range_words = 0;
  for (const graph::GraphPartition& part : parts.parts) {
    const int64_t wbeg = part.range.begin / 64;
    const int64_t wend = (static_cast<int64_t>(part.range.end) + 63) / 64;
    max_range_words = std::max(max_range_words, wend - wbeg);
  }

  PartitionedRunResult result;
  result.partitions = P;
  result.schedule = run.schedule;
  result.link = link;
  result.edge_imbalance = parts.EdgeImbalance();
  result.device_seconds.assign(static_cast<size_t>(P), 0.0);
  for (const graph::GraphPartition& part : parts.parts) {
    result.partition_vertices.push_back(part.range.size());
    result.partition_edges.push_back(part.local.edge_count());
  }

  const obs::Observer& observer = options.observer;
  if (observer.tracing()) {
    for (int p = 0; p < P; ++p) {
      observer.tracer->SetProcessName(
          kPartitionPidBase + p,
          "partition GPU " + std::to_string(p) + " (simulated time)");
    }
  }
  obs::MetricsRegistry* metrics =
      observer.metering() ? observer.metrics : nullptr;

  const bool faulty = options.faults.enabled();
  const int max_attempts = faulty ? options.retry.max_attempts : 1;
  const int max_level = options.traversal.max_level;

  int threads = options.threads == 0 ? ThreadPool::HardwareConcurrency()
                                     : std::max(1, options.threads);
  threads = std::min(threads, P);
  std::optional<ThreadPool> pool;
  if (threads > 1) pool.emplace(threads);
  const auto for_partitions = [&](const std::function<void(int64_t)>& fn) {
    if (pool.has_value()) {
      pool->ParallelFor(P, fn);
    } else {
      for (int p = 0; p < P; ++p) fn(p);
    }
  };

  for (size_t g = 0; g < groups.size(); ++g) {
    const std::vector<graph::VertexId>& group = groups[g];
    const size_t n = group.size();
    const uint64_t salt = static_cast<uint64_t>(g);

    Status group_status = Status::OK();
    for (int attempt = 1; attempt <= max_attempts; ++attempt) {
      if (attempt > 1) {
        ++result.retries;
        const double backoff_ms = options.retry.BackoffMs(salt, attempt);
        if (metrics != nullptr) {
          metrics->GetCounter("retry.attempts")->Increment();
        }
        if (backoff_ms > 0.0) {
          std::this_thread::sleep_for(
              std::chrono::duration<double, std::milli>(backoff_ms));
        }
      }

      // Fresh devices per attempt, one per partition; partition p draws its
      // faults from fleet device p % faults.device_count, matching the
      // engine's "group g runs on device g % device_count" convention.
      std::vector<gpusim::Device> devices;
      devices.reserve(static_cast<size_t>(P));
      std::vector<gpusim::FaultInjector> injectors;
      injectors.reserve(static_cast<size_t>(P));
      std::vector<gpusim::PhaseId> expand_phase(static_cast<size_t>(P));
      std::vector<gpusim::PhaseId> comm_phase(static_cast<size_t>(P));
      for (int p = 0; p < P; ++p) {
        devices.emplace_back(options.device);
        gpusim::Device& device = devices.back();
        device.SetObserver(observer.WithTrack(kPartitionPidBase + p, 0));
        expand_phase[static_cast<size_t>(p)] =
            device.InternPhase("part_expand");
        comm_phase[static_cast<size_t>(p)] =
            device.InternPhase("part_exchange");
        if (faulty) {
          injectors.emplace_back(options.faults,
                                 p % options.faults.device_count,
                                 salt * 131ULL + static_cast<uint64_t>(attempt));
        }
      }
      if (faulty) {
        for (int p = 0; p < P; ++p) {
          devices[static_cast<size_t>(p)].SetFaultInjector(
              &injectors[static_cast<size_t>(p)]);
        }
      }

      std::vector<std::vector<uint8_t>> depths(
          n, std::vector<uint8_t>(static_cast<size_t>(vertices),
                                  kUnvisitedDepth));
      std::vector<std::vector<uint64_t>> frontier(
          n, std::vector<uint64_t>(static_cast<size_t>(words), 0));
      for (size_t j = 0; j < n; ++j) {
        const graph::VertexId src = group[j];
        depths[j][src] = 0;
        frontier[j][src / 64] |= uint64_t{1} << (src % 64);
      }
      // Per-partition discovery bitmaps: partitions write disjoint buffers,
      // so the parallel expansion is race-free and the host merge below —
      // always in partition order — is deterministic for every thread count.
      std::vector<std::vector<std::vector<uint64_t>>> next(
          static_cast<size_t>(P),
          std::vector<std::vector<uint64_t>>(
              n, std::vector<uint64_t>(static_cast<size_t>(words), 0)));

      double attempt_compute = 0.0;
      double attempt_comm = 0.0;
      int64_t attempt_bytes = 0;
      int64_t attempt_rounds = 0;
      int64_t attempt_steps = 0;
      std::vector<double> level_seconds(static_cast<size_t>(P), 0.0);
      bool device_faulted = false;

      for (int level = 0; level < max_level; ++level) {
        bool any = false;
        for (size_t j = 0; j < n && !any; ++j) {
          for (int64_t w = 0; w < words; ++w) {
            if (frontier[j][static_cast<size_t>(w)] != 0) {
              any = true;
              break;
            }
          }
        }
        if (!any) break;

        const auto expand = [&](int64_t pi) {
          const auto p = static_cast<size_t>(pi);
          const graph::GraphPartition& part = parts.parts[p];
          gpusim::Device& device = devices[p];
          const double mark = device.elapsed_seconds();
          gpusim::KernelScope scope = device.BeginKernel(expand_phase[p]);
          const int64_t wbeg = part.range.begin / 64;
          const int64_t wend =
              (static_cast<int64_t>(part.range.end) + 63) / 64;
          for (size_t j = 0; j < n; ++j) {
            // One coalesced sweep over the owned slice of instance j's
            // frontier bitmap, then one work item per frontier vertex.
            scope.LoadContiguous(wbeg, wend - wbeg, 8);
            scope.BulkCompute(wend - wbeg, 1);
            std::vector<uint64_t>& out = next[p][j];
            const std::vector<uint64_t>& front = frontier[j];
            const std::vector<uint8_t>& depth = depths[j];
            for (int64_t w = wbeg; w < wend; ++w) {
              uint64_t word = front[static_cast<size_t>(w)];
              if (word == 0) continue;
              // Boundary words can carry neighbors' bits; mask to owned.
              if (w == wbeg && part.range.begin % 64 != 0) {
                word &= ~uint64_t{0} << (part.range.begin % 64);
              }
              if (w == wend - 1 && part.range.end % 64 != 0) {
                word &= (uint64_t{1} << (part.range.end % 64)) - 1;
              }
              while (word != 0) {
                const int bit = std::countr_zero(word);
                word &= word - 1;
                const int64_t v = w * 64 + bit;
                const int64_t r = v - part.range.begin;
                scope.BeginItem();
                scope.LoadContiguous(
                    r, 2, static_cast<int>(sizeof(graph::EdgeIndex)));
                const std::span<const graph::VertexId> adj =
                    part.local.OutNeighbors(r);
                scope.LoadContiguous(
                    static_cast<int64_t>(part.local.row_offsets
                                             [static_cast<size_t>(r)]),
                    static_cast<int64_t>(adj.size()),
                    static_cast<int>(sizeof(graph::VertexId)));
                scope.Compute(static_cast<int64_t>(adj.size()));
                for (const graph::VertexId u : adj) {
                  if (depth[u] != kUnvisitedDepth) continue;
                  uint64_t& nw = out[u / 64];
                  const uint64_t ubit = uint64_t{1} << (u % 64);
                  if ((nw & ubit) == 0) {
                    nw |= ubit;
                    scope.Atomic(1);
                  }
                }
                scope.EndItem();
              }
            }
          }
          scope.End();
          level_seconds[p] = device.elapsed_seconds() - mark;
        };
        for_partitions(expand);

        // Level-synchronous: the step takes as long as the slowest rank.
        attempt_compute +=
            *std::max_element(level_seconds.begin(), level_seconds.end());
        ++attempt_steps;

        // Frontier exchange: every rank ends the level holding the merged
        // bitmap, priced once and charged to every device's timeline (they
        // sit synchronized in the collective). Zero-cost at P = 1.
        const int64_t bytes_per_rank =
            max_range_words * 8 * static_cast<int64_t>(n);
        const gpusim::CommCost cost = gpusim::FrontierExchangeCost(
            run.schedule, P, bytes_per_rank, link);
        for (int p = 0; p < P; ++p) {
          devices[static_cast<size_t>(p)].ChargeCommSeconds(
              comm_phase[static_cast<size_t>(p)], cost.seconds);
        }
        attempt_comm += cost.seconds;
        attempt_bytes += cost.bytes_on_wire;
        attempt_rounds += cost.rounds;

        // Host-side merge in partition order; loop bound level < max_level
        // keeps the deepest assigned depth at max_level, exactly like the
        // single-device runners.
        const auto next_depth = static_cast<uint8_t>(level + 1);
        for (size_t j = 0; j < n; ++j) {
          std::vector<uint8_t>& depth = depths[j];
          std::vector<uint64_t>& front = frontier[j];
          for (int64_t w = 0; w < words; ++w) {
            const auto wi = static_cast<size_t>(w);
            uint64_t merged = 0;
            for (int p = 0; p < P; ++p) {
              merged |= next[static_cast<size_t>(p)][j][wi];
              next[static_cast<size_t>(p)][j][wi] = 0;
            }
            uint64_t fresh = 0;
            while (merged != 0) {
              const int bit = std::countr_zero(merged);
              merged &= merged - 1;
              const size_t u = wi * 64 + static_cast<size_t>(bit);
              if (depth[u] == kUnvisitedDepth) {
                depth[u] = next_depth;
                fresh |= uint64_t{1} << bit;
              }
            }
            front[wi] = fresh;
          }
        }

        // A fault latches on the device and surfaces at the next sync
        // point — the end of the level — where the attempt is abandoned.
        device_faulted = false;
        for (int p = 0; p < P; ++p) {
          device_faulted =
              device_faulted || devices[static_cast<size_t>(p)].faulted();
        }
        if (device_faulted) break;
      }

      Status attempt_status = Status::OK();
      for (int p = 0; p < P && attempt_status.ok(); ++p) {
        if (devices[static_cast<size_t>(p)].faulted()) {
          attempt_status = devices[static_cast<size_t>(p)].fault_status();
        }
      }
      if (attempt_status.ok() && faulty && !depths.empty()) {
        // Transfer integrity, as in the resilient executor: checksum the
        // payload "on the devices", let any rank's injector corrupt the
        // copy back, and quarantine the attempt on a mismatch.
        const uint64_t device_checksum = Fnv1aOfDepths(depths);
        for (int p = 0; p < P; ++p) {
          if (injectors[static_cast<size_t>(p)].ShouldCorruptTransfer()) {
            injectors[static_cast<size_t>(p)].CorruptDepths(&depths);
          }
        }
        if (Fnv1aOfDepths(depths) != device_checksum) {
          attempt_status = Status::DataLoss(
              "partitioned depth payload checksum mismatch (injected "
              "transfer corruption)");
          ++result.corruptions_detected;
          if (metrics != nullptr) {
            metrics->GetCounter("fault.corruptions_detected")->Increment();
          }
        }
      }

      if (attempt_status.ok()) {
        result.compute_seconds += attempt_compute;
        result.comm_seconds += attempt_comm;
        result.bytes_on_wire += attempt_bytes;
        result.comm_rounds += attempt_rounds;
        result.supersteps += attempt_steps;
        for (int p = 0; p < P; ++p) {
          const gpusim::Device& device = devices[static_cast<size_t>(p)];
          result.device_seconds[static_cast<size_t>(p)] +=
              device.elapsed_seconds();
          result.totals.Add(device.totals());
          for (const auto& [name, stats] : device.phases()) {
            result.phases[name].Add(stats);
          }
        }
        GroupResult group_result;
        if (options.keep_depths) group_result.depths = std::move(depths);
        result.groups.push_back(std::move(group_result));
        result.group_sources.push_back(group);
        group_status = Status::OK();
        break;
      }

      group_status = attempt_status;
      if (attempt_status.code() == StatusCode::kUnavailable) {
        ++result.transient_faults;
      }
      for (int p = 0; p < P; ++p) {
        result.wasted_sim_seconds +=
            devices[static_cast<size_t>(p)].elapsed_seconds();
      }
      if (metrics != nullptr) {
        metrics->GetCounter("fault.failed_attempts")->Increment();
      }
    }
    if (!group_status.ok()) {
      if (metrics != nullptr) {
        metrics->GetCounter("retry.exhausted")->Increment();
      }
      return group_status;
    }
  }

  result.sim_seconds = result.compute_seconds + result.comm_seconds;
  if (result.sim_seconds > 0.0) {
    result.teps = static_cast<double>(graph.edge_count()) *
                  static_cast<double>(sources.size()) / result.sim_seconds;
  }
  result.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start)
          .count();

  if (metrics != nullptr) {
    metrics->GetGauge("comm.partitions")->Set(static_cast<double>(P));
    metrics->GetGauge("comm.seconds")->Set(result.comm_seconds);
    metrics->GetGauge("comm.edge_imbalance")->Set(result.edge_imbalance);
    metrics->GetCounter("comm.bytes_on_wire")->Increment(result.bytes_on_wire);
    metrics->GetCounter("comm.rounds")->Increment(result.comm_rounds);
    metrics->GetCounter("comm.supersteps")->Increment(result.supersteps);
  }
  return result;
}

}  // namespace ibfs
