#include "core/cluster_engine.h"

namespace ibfs {

Result<ClusterRunResult> RunOnCluster(const graph::Csr& graph,
                                      std::span<const graph::VertexId> sources,
                                      const EngineOptions& options,
                                      int device_count,
                                      gpusim::PlacementPolicy policy) {
  if (device_count < 1) {
    return Status::InvalidArgument("device_count must be >= 1");
  }
  EngineOptions opts = options;
  opts.keep_depths = false;
  Engine engine(&graph, opts);
  Result<EngineResult> run = engine.Run(sources);
  IBFS_RETURN_NOT_OK(run.status());
  const EngineResult& res = run.value();

  ClusterRunResult result;
  result.single_device_seconds = res.sim_seconds;
  result.group_count = static_cast<int64_t>(res.group_seconds.size());
  gpusim::Cluster cluster(device_count, opts.device);
  result.schedule = cluster.Place(res.group_seconds, policy);
  if (result.schedule.makespan_seconds > 0.0) {
    result.speedup =
        result.single_device_seconds / result.schedule.makespan_seconds;
    const double edges = static_cast<double>(graph.edge_count()) *
                         static_cast<double>(sources.size());
    result.teps = edges / result.schedule.makespan_seconds;
  }
  return result;
}

}  // namespace ibfs
