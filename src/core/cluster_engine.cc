#include "core/cluster_engine.h"

#include <algorithm>
#include <string>
#include <utility>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/thread_pool.h"

namespace ibfs {
namespace {

// Cluster device tracks live in their own pid range so they never collide
// with the single-device track (engine pid, usually 0) or the host track
// (obs::kHostPid).
constexpr int kClusterPidBase = 100;

}  // namespace

Result<ClusterRunResult> RunOnCluster(const graph::Csr& graph,
                                      std::span<const graph::VertexId> sources,
                                      const EngineOptions& options,
                                      int device_count,
                                      gpusim::PlacementPolicy policy) {
  if (device_count < 1) {
    return Status::InvalidArgument("device_count must be >= 1");
  }
  // Measurement pass: one single-device run yields the per-group costs the
  // placement policy needs up front (LPT sorts by cost before assigning).
  EngineOptions opts = options;
  opts.keep_depths = false;
  Engine engine(&graph, opts);
  Result<EngineResult> run = engine.Run(sources);
  IBFS_RETURN_NOT_OK(run.status());

  ClusterRunResult result;
  result.engine = std::move(run).value();
  const EngineResult& res = result.engine;
  result.single_device_seconds = res.sim_seconds;
  const size_t group_count = res.group_seconds.size();
  result.group_count = static_cast<int64_t>(group_count);
  gpusim::Cluster cluster(device_count, opts.device);
  const gpusim::ClusterRun placement = cluster.Place(res.group_seconds, policy);

  // Execution pass: run each device's placed unit list for real, one
  // simulated device per worker thread, instead of replaying the measured
  // timings. Units on one device execute back to back in placement order
  // (ascending planned start), on a continuous per-GPU timeline — so the
  // schedule below carries *measured* starts and busy times. Each device is
  // sequential within itself, so the measured numbers do not depend on the
  // worker count.
  std::vector<std::vector<size_t>> device_units(
      static_cast<size_t>(device_count));
  for (size_t g = 0; g < group_count; ++g) {
    device_units[static_cast<size_t>(placement.unit_device[g])].push_back(g);
  }
  for (auto& units : device_units) {
    std::sort(units.begin(), units.end(), [&](size_t a, size_t b) {
      if (placement.unit_start_seconds[a] != placement.unit_start_seconds[b]) {
        return placement.unit_start_seconds[a] <
               placement.unit_start_seconds[b];
      }
      return a < b;
    });
  }

  result.schedule.unit_device = placement.unit_device;
  result.schedule.total_seconds = placement.total_seconds;
  result.schedule.device_seconds.assign(static_cast<size_t>(device_count),
                                        0.0);
  result.schedule.unit_start_seconds.assign(group_count, 0.0);

  const obs::Observer& observer = options.observer;
  const char* policy_name =
      policy == gpusim::PlacementPolicy::kLpt ? "lpt" : "round-robin";
  if (observer.tracing()) {
    for (int d = 0; d < device_count; ++d) {
      observer.tracer->SetProcessName(
          kClusterPidBase + d,
          "cluster GPU " + std::to_string(d) + " (simulated time)");
    }
  }
  // The execution pass traces (kernel/level/cluster spans on the per-GPU
  // pids) but does not meter: the measurement run already counted every
  // kernel and level once, and executing the same groups again would double
  // the engine.* / gpusim.* counters.
  obs::Observer exec_observer;
  exec_observer.tracer = observer.tracer;

  std::vector<Status> device_status(static_cast<size_t>(device_count),
                                    Status::OK());
  auto run_device = [&](int64_t d) {
    gpusim::Device device(opts.device);
    const obs::Observer dev_observer =
        exec_observer.WithTrack(kClusterPidBase + static_cast<int>(d), 0);
    for (size_t g : device_units[static_cast<size_t>(d)]) {
      const double start = device.elapsed_seconds();
      Result<GroupResult> group_result =
          engine.ExecuteGroup(res.group_sources[g], &device, dev_observer);
      if (!group_result.ok()) {
        device_status[static_cast<size_t>(d)] = group_result.status();
        return;
      }
      result.schedule.unit_start_seconds[g] = start;
      if (dev_observer.tracing()) {
        dev_observer.tracer->CompleteSpan(
            dev_observer.track, "group " + std::to_string(g), "cluster",
            start * 1e6, (device.elapsed_seconds() - start) * 1e6,
            {obs::Arg("device", static_cast<int64_t>(d)),
             obs::Arg("policy", policy_name)});
      }
    }
    result.schedule.device_seconds[static_cast<size_t>(d)] =
        device.elapsed_seconds();
  };

  const int exec_threads = std::min<int>(
      device_count, opts.threads == 0 ? ThreadPool::HardwareConcurrency()
                                      : std::max(1, opts.threads));
  if (exec_threads <= 1) {
    for (int d = 0; d < device_count; ++d) run_device(d);
  } else {
    ThreadPool pool(exec_threads);
    pool.ParallelFor(device_count, run_device);
  }
  for (const Status& s : device_status) IBFS_RETURN_NOT_OK(s);

  result.schedule.makespan_seconds =
      result.schedule.device_seconds.empty()
          ? 0.0
          : *std::max_element(result.schedule.device_seconds.begin(),
                              result.schedule.device_seconds.end());
  if (result.schedule.makespan_seconds > 0.0) {
    result.speedup =
        result.single_device_seconds / result.schedule.makespan_seconds;
    const double edges = static_cast<double>(graph.edge_count()) *
                         static_cast<double>(sources.size());
    result.teps = edges / result.schedule.makespan_seconds;
  }

  if (observer.metering()) {
    observer.metrics->GetGauge("cluster.devices")
        ->Set(static_cast<double>(device_count));
    observer.metrics->GetGauge("cluster.makespan_seconds")
        ->Set(result.schedule.makespan_seconds);
    observer.metrics->GetGauge("cluster.speedup")->Set(result.speedup);
  }
  return result;
}

}  // namespace ibfs
