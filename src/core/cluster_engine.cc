#include "core/cluster_engine.h"

#include <string>
#include <utility>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace ibfs {
namespace {

// Cluster device tracks live in their own pid range so they never collide
// with the single-device track (engine pid, usually 0) or the host track
// (obs::kHostPid).
constexpr int kClusterPidBase = 100;

}  // namespace

Result<ClusterRunResult> RunOnCluster(const graph::Csr& graph,
                                      std::span<const graph::VertexId> sources,
                                      const EngineOptions& options,
                                      int device_count,
                                      gpusim::PlacementPolicy policy) {
  if (device_count < 1) {
    return Status::InvalidArgument("device_count must be >= 1");
  }
  EngineOptions opts = options;
  opts.keep_depths = false;
  Engine engine(&graph, opts);
  Result<EngineResult> run = engine.Run(sources);
  IBFS_RETURN_NOT_OK(run.status());

  ClusterRunResult result;
  result.engine = std::move(run).value();
  const EngineResult& res = result.engine;
  result.single_device_seconds = res.sim_seconds;
  result.group_count = static_cast<int64_t>(res.group_seconds.size());
  gpusim::Cluster cluster(device_count, opts.device);
  result.schedule = cluster.Place(res.group_seconds, policy);
  if (result.schedule.makespan_seconds > 0.0) {
    result.speedup =
        result.single_device_seconds / result.schedule.makespan_seconds;
    const double edges = static_cast<double>(graph.edge_count()) *
                         static_cast<double>(sources.size());
    result.teps = edges / result.schedule.makespan_seconds;
  }

  const obs::Observer& observer = options.observer;
  if (observer.tracing()) {
    const char* policy_name =
        policy == gpusim::PlacementPolicy::kLpt ? "lpt" : "round-robin";
    for (int d = 0; d < device_count; ++d) {
      observer.tracer->SetProcessName(
          kClusterPidBase + d,
          "cluster GPU " + std::to_string(d) + " (simulated time)");
    }
    for (size_t g = 0; g < result.schedule.unit_device.size(); ++g) {
      const int dev = result.schedule.unit_device[g];
      observer.tracer->CompleteSpan(
          {kClusterPidBase + dev, 0}, "group " + std::to_string(g),
          "cluster", result.schedule.unit_start_seconds[g] * 1e6,
          res.group_seconds[g] * 1e6,
          {obs::Arg("device", static_cast<int64_t>(dev)),
           obs::Arg("policy", policy_name)});
    }
  }
  if (observer.metering()) {
    observer.metrics->GetGauge("cluster.devices")
        ->Set(static_cast<double>(device_count));
    observer.metrics->GetGauge("cluster.makespan_seconds")
        ->Set(result.schedule.makespan_seconds);
    observer.metrics->GetGauge("cluster.speedup")->Set(result.speedup);
  }
  return result;
}

}  // namespace ibfs
