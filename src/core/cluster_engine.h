#ifndef IBFS_CORE_CLUSTER_ENGINE_H_
#define IBFS_CORE_CLUSTER_ENGINE_H_

#include <cstdint>
#include <span>
#include <vector>

#include "core/engine.h"
#include "gpusim/cluster.h"
#include "gpusim/memory_model.h"
#include "graph/csr.h"
#include "graph/partition.h"

namespace ibfs {

/// Result of running a concurrent-BFS workload on a simulated GPU cluster
/// (the paper's Section 8.3 experiment as a first-class API).
struct ClusterRunResult {
  /// Time if all groups ran on one device.
  double single_device_seconds = 0.0;
  /// Placement of groups onto devices and the resulting makespan (the
  /// paper reports the slowest device's time). Starts, busy times, and the
  /// makespan are *measured* by actually executing each device's unit list
  /// on its own simulated device (one host worker per device), not replayed
  /// from the measurement run.
  gpusim::ClusterRun schedule;
  /// single_device_seconds / makespan.
  double speedup = 0.0;
  /// Aggregate traversal rate at this device count.
  double teps = 0.0;
  /// Number of schedulable groups (the placement granularity; speedup is
  /// capped by group_count / max-groups-per-device).
  int64_t group_count = 0;
  /// The single-device run the schedule was derived from (depths dropped);
  /// feeds the run report's per-group and per-phase sections.
  EngineResult engine;
};

/// Runs the engine once to obtain per-group simulated times (the
/// measurement pass — depths are dropped via keep_depths=false), places the
/// groups onto `device_count` devices, then executes each device's placed
/// unit list for real on its own host worker thread (the execution pass).
/// `options.threads` sizes both passes' worker pools (0 = hardware
/// concurrency). Since iBFS groups are fully independent, no inter-GPU
/// communication is modeled — matching the paper's multi-GPU design.
Result<ClusterRunResult> RunOnCluster(
    const graph::Csr& graph, std::span<const graph::VertexId> sources,
    const EngineOptions& options, int device_count,
    gpusim::PlacementPolicy policy = gpusim::PlacementPolicy::kRoundRobin);

/// Configuration for the 1D edge-partitioned execution path — the scenario
/// where one graph is spread over P devices and every BFS level ends in a
/// frontier exchange, instead of the shared-nothing group placement of
/// RunOnCluster.
struct PartitionRunOptions {
  /// Number of partitions P (devices holding one vertex range each).
  int partitions = 2;
  /// Exchange schedule priced by gpusim::FrontierExchangeCost.
  gpusim::CommSchedule schedule = gpusim::CommSchedule::kAllGather;
  /// Link overrides; link_gbps <= 0 / link_us < 0 fall back to the
  /// DeviceSpec's link_bandwidth_gbps / link_latency_us.
  double link_gbps = 0.0;
  double link_us = -1.0;
};

/// Result of a partitioned run. Depths are merged in partition order every
/// level, so they are bit-identical to the unpartitioned Engine for every
/// (P, schedule, threads) setting — the comm model only shapes *time*.
struct PartitionedRunResult {
  /// One entry per executed group (parallel to group_sources); depths are
  /// full-width per instance, exactly as Engine::Run reports them.
  std::vector<GroupResult> groups;
  std::vector<std::vector<graph::VertexId>> group_sources;

  int partitions = 0;
  gpusim::CommSchedule schedule = gpusim::CommSchedule::kAllGather;
  /// Link actually priced (spec defaults or overrides).
  gpusim::LinkSpec link;

  /// Per-level makespans over partitions, summed (kernel time only).
  double compute_seconds = 0.0;
  /// Frontier-exchange time, summed over supersteps (zero when P = 1).
  double comm_seconds = 0.0;
  /// compute_seconds + comm_seconds; the partitioned wall clock.
  double sim_seconds = 0.0;
  /// i x |E| / sim_seconds.
  double teps = 0.0;

  /// Fleet-wide exchange bytes, latency-bound rounds, and superstep count
  /// (a superstep is one BFS level of one group).
  int64_t bytes_on_wire = 0;
  int64_t comm_rounds = 0;
  int64_t supersteps = 0;

  /// Cut quality: max owned edges / ideal share (1.0 = perfect).
  double edge_imbalance = 0.0;
  std::vector<int64_t> partition_vertices;
  std::vector<int64_t> partition_edges;
  /// Per-partition device clock over successful attempts (compute + comm).
  std::vector<double> device_seconds;

  /// Device counter totals and per-phase aggregates summed over every
  /// partition's successful attempts ("part_expand" kernels plus
  /// "part_exchange" comm entries) — feeds the run report's profile table.
  gpusim::KernelStats totals;
  gpusim::PhaseMap phases;

  /// Fault accounting, mirroring EngineResult's recovery fields.
  int64_t retries = 0;
  int64_t transient_faults = 0;
  int64_t corruptions_detected = 0;
  double wasted_sim_seconds = 0.0;

  double wall_seconds = 0.0;
};

/// Runs the workload 1D-partitioned over `run.partitions` simulated devices:
/// sources are grouped through GroupSources (the same single code path
/// Engine::Run plans through, so groups match the unpartitioned engine
/// exactly), then each group executes level-synchronously — every partition
/// expands its owned slice of the frontier against its local CSR, the
/// per-partition discoveries are exchanged (priced by FrontierExchangeCost
/// and charged to every device's timeline), and the host merges them in
/// partition order. Merging is order-deterministic, so depths are
/// bit-identical to the unpartitioned engine regardless of P, schedule, or
/// host threads. Fault injection follows the engine's convention (partition
/// p draws from fleet device p % faults.device_count) with the same
/// retry/backoff and transfer-checksum flow as the resilient executor.
Result<PartitionedRunResult> RunPartitioned(
    const graph::Csr& graph, std::span<const graph::VertexId> sources,
    const EngineOptions& options, const PartitionRunOptions& run);

/// FNV-1a digest of every group's depth payload in order — the parity
/// currency of the partitioned path: equal checksums mean bit-identical
/// depths. Works on EngineResult::groups and PartitionedRunResult::groups.
uint64_t DepthChecksum(std::span<const GroupResult> groups);

}  // namespace ibfs

#endif  // IBFS_CORE_CLUSTER_ENGINE_H_
