#ifndef IBFS_CORE_CLUSTER_ENGINE_H_
#define IBFS_CORE_CLUSTER_ENGINE_H_

#include <span>

#include "core/engine.h"
#include "gpusim/cluster.h"
#include "graph/csr.h"

namespace ibfs {

/// Result of running a concurrent-BFS workload on a simulated GPU cluster
/// (the paper's Section 8.3 experiment as a first-class API).
struct ClusterRunResult {
  /// Time if all groups ran on one device.
  double single_device_seconds = 0.0;
  /// Placement of groups onto devices and the resulting makespan (the
  /// paper reports the slowest device's time). Starts, busy times, and the
  /// makespan are *measured* by actually executing each device's unit list
  /// on its own simulated device (one host worker per device), not replayed
  /// from the measurement run.
  gpusim::ClusterRun schedule;
  /// single_device_seconds / makespan.
  double speedup = 0.0;
  /// Aggregate traversal rate at this device count.
  double teps = 0.0;
  /// Number of schedulable groups (the placement granularity; speedup is
  /// capped by group_count / max-groups-per-device).
  int64_t group_count = 0;
  /// The single-device run the schedule was derived from (depths dropped);
  /// feeds the run report's per-group and per-phase sections.
  EngineResult engine;
};

/// Runs the engine once to obtain per-group simulated times (the
/// measurement pass — depths are dropped via keep_depths=false), places the
/// groups onto `device_count` devices, then executes each device's placed
/// unit list for real on its own host worker thread (the execution pass).
/// `options.threads` sizes both passes' worker pools (0 = hardware
/// concurrency). Since iBFS groups are fully independent, no inter-GPU
/// communication is modeled — matching the paper's multi-GPU design.
Result<ClusterRunResult> RunOnCluster(
    const graph::Csr& graph, std::span<const graph::VertexId> sources,
    const EngineOptions& options, int device_count,
    gpusim::PlacementPolicy policy = gpusim::PlacementPolicy::kRoundRobin);

}  // namespace ibfs

#endif  // IBFS_CORE_CLUSTER_ENGINE_H_
