#include "core/resilient.h"

#include <algorithm>
#include <chrono>
#include <thread>
#include <utility>

#include "obs/metrics.h"
#include "util/checksum.h"
#include "util/logging.h"

namespace ibfs {
namespace {

std::span<const double> BackoffBoundsMs() {
  static const std::vector<double> bounds = obs::PowerOfTwoBounds(0.125, 12);
  return bounds;
}

}  // namespace

ResilientOutcome ExecuteGroupResilient(const Engine& engine,
                                       std::span<const graph::VertexId> group,
                                       int device_id, uint64_t salt,
                                       const obs::Observer& observer) {
  const EngineOptions& options = engine.options();
  const bool faulty = options.faults.enabled();
  const int max_attempts = faulty ? options.retry.max_attempts : 1;
  obs::MetricsRegistry* metrics =
      observer.metering() ? observer.metrics : nullptr;

  ResilientOutcome outcome;
  for (int attempt = 1; attempt <= max_attempts; ++attempt) {
    if (attempt > 1) {
      const double backoff_ms = options.retry.BackoffMs(salt, attempt);
      outcome.backoff_ms += backoff_ms;
      if (metrics != nullptr) {
        metrics->GetCounter("retry.attempts")->Increment();
        metrics->GetHistogram("retry.backoff_ms", BackoffBoundsMs())
            ->Observe(backoff_ms);
      }
      if (backoff_ms > 0.0) {
        std::this_thread::sleep_for(
            std::chrono::duration<double, std::milli>(backoff_ms));
      }
    }
    ++outcome.attempts;

    gpusim::Device device(options.device);
    gpusim::FaultInjector injector(
        options.faults, device_id,
        salt * 131ULL + static_cast<uint64_t>(attempt));
    if (faulty) device.SetFaultInjector(&injector);

    Result<GroupResult> executed = engine.ExecuteGroup(group, &device,
                                                       observer);
    Status attempt_status =
        executed.ok() ? device.fault_status() : executed.status();

    GroupResult result;
    if (attempt_status.ok()) {
      result = std::move(executed).value();
      // Transfer integrity: the checksum computed "on the device" (before
      // the simulated copy back) must match the payload the host received.
      // An injected transfer corruption flips depth words in between, the
      // checksums disagree, and the attempt is quarantined and re-run.
      if (faulty && !result.depths.empty()) {
        const uint64_t device_checksum = Fnv1aOfDepths(result.depths);
        if (injector.ShouldCorruptTransfer()) {
          injector.CorruptDepths(&result.depths);
        }
        if (Fnv1aOfDepths(result.depths) != device_checksum) {
          attempt_status = Status::DataLoss(
              "depth payload checksum mismatch on device " +
              std::to_string(device_id) + " (injected transfer corruption)");
          ++outcome.corruptions_detected;
          if (metrics != nullptr) {
            metrics->GetCounter("fault.corruptions_detected")->Increment();
          }
        }
      }
    } else if (attempt_status.code() == StatusCode::kUnavailable) {
      ++outcome.transient_faults;
    }

    if (attempt_status.ok()) {
      outcome.status = Status::OK();
      outcome.result = std::move(result);
      outcome.sim_seconds = device.elapsed_seconds();
      outcome.totals = device.totals();
      outcome.phases = device.phases();
      return outcome;
    }

    outcome.status = std::move(attempt_status);
    outcome.wasted_sim_seconds += device.elapsed_seconds();
    if (metrics != nullptr) {
      metrics->GetCounter("fault.failed_attempts")->Increment();
    }
    if (observer.tracing()) {
      std::vector<obs::TraceArg> instant_args = {
          obs::Arg("device", static_cast<int64_t>(device_id)),
          obs::Arg("attempt", static_cast<int64_t>(attempt)),
          obs::Arg("status", outcome.status.ToString())};
      if (!observer.context.empty()) {
        instant_args.push_back(obs::Arg("ctx", observer.context));
      }
      observer.tracer->Instant(observer.track, "attempt_failed", 0.0,
                               std::move(instant_args));
    }
  }
  if (metrics != nullptr) {
    metrics->GetCounter("retry.exhausted")->Increment();
  }
  return outcome;
}

DeviceRouter::DeviceRouter(int device_count, int failure_threshold)
    : consecutive_failures_(static_cast<size_t>(std::max(1, device_count)),
                            0),
      open_(static_cast<size_t>(std::max(1, device_count)), false),
      failure_threshold_(std::max(1, failure_threshold)) {}

int DeviceRouter::Acquire() {
  std::lock_guard<std::mutex> lock(mu_);
  for (size_t probe = 0; probe < open_.size(); ++probe) {
    const size_t id = (next_ + probe) % open_.size();
    if (!open_[id]) {
      next_ = id + 1;
      return static_cast<int>(id);
    }
  }
  return kNoDevice;
}

bool DeviceRouter::ReportFailure(int device_id) {
  std::lock_guard<std::mutex> lock(mu_);
  if (device_id < 0 || static_cast<size_t>(device_id) >= open_.size()) {
    return false;
  }
  const auto id = static_cast<size_t>(device_id);
  if (open_[id]) return false;
  if (++consecutive_failures_[id] >= failure_threshold_) {
    open_[id] = true;
    ++opened_total_;
    return true;
  }
  return false;
}

void DeviceRouter::ReportSuccess(int device_id) {
  std::lock_guard<std::mutex> lock(mu_);
  if (device_id < 0 || static_cast<size_t>(device_id) >= open_.size()) {
    return;
  }
  consecutive_failures_[static_cast<size_t>(device_id)] = 0;
}

bool DeviceRouter::IsOpen(int device_id) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (device_id < 0 || static_cast<size_t>(device_id) >= open_.size()) {
    return false;
  }
  return open_[static_cast<size_t>(device_id)];
}

int DeviceRouter::healthy_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  int healthy = 0;
  for (const bool open : open_) {
    if (!open) ++healthy;
  }
  return healthy;
}

int64_t DeviceRouter::opened_total() const {
  std::lock_guard<std::mutex> lock(mu_);
  return opened_total_;
}

}  // namespace ibfs
