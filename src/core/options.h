#ifndef IBFS_CORE_OPTIONS_H_
#define IBFS_CORE_OPTIONS_H_

#include <cstdint>

#include "gpusim/device_spec.h"
#include "gpusim/fault.h"
#include "ibfs/groupby.h"
#include "ibfs/runner.h"
#include "obs/trace.h"
#include "util/status.h"

namespace ibfs {

/// Per-group retry behavior when a (possibly fault-injected) execution
/// attempt fails. The backoff is exponential with seeded jitter —
/// attempt k sleeps initial_backoff_ms * multiplier^(k-1), capped at
/// max_backoff_ms, then scaled by a uniform factor in
/// [1 - jitter, 1 + jitter] — so retry storms decorrelate while chaos runs
/// stay reproducible. With no faults configured, attempt 1 always succeeds
/// and none of this is exercised.
struct RetryPolicy {
  /// Total attempts per group (1 = no retry).
  int max_attempts = 3;
  double initial_backoff_ms = 0.25;
  double backoff_multiplier = 2.0;
  double max_backoff_ms = 8.0;
  /// Jitter fraction in [0, 1); 0.2 means +/-20%.
  double jitter = 0.2;
  /// Seed for the jitter PRNG (mixed with group index and attempt).
  uint64_t seed = 1;

  Status Validate() const;

  /// Backoff (ms) to sleep before retry `attempt` (2-based) of group
  /// `salt`; deterministic in (policy, salt, attempt).
  double BackoffMs(uint64_t salt, int attempt) const;
};

/// How the engine batches BFS sources into concurrent groups.
enum class GroupingPolicy {
  /// Chunk in the order given (deterministic, no shuffling).
  kInOrder,
  /// Shuffle, then chunk — the "random grouping" baseline of Figures 9/16.
  kRandom,
  /// Outdegree-based GroupBy rules (Section 5).
  kGroupBy,
};

/// Returns a short display name ("in-order", "random", "groupby").
const char* GroupingPolicyName(GroupingPolicy policy);

/// Top-level configuration for running i concurrent BFS instances.
struct EngineOptions {
  Strategy strategy = Strategy::kBitwise;
  GroupingPolicy grouping = GroupingPolicy::kGroupBy;
  /// Group size N (the paper's default is 128); clamped to the
  /// device-memory bound (Section 3) computed by Engine::MaxGroupSize.
  int group_size = 128;
  GroupByParams groupby;
  TraversalOptions traversal;
  gpusim::DeviceSpec device = gpusim::DeviceSpec::K40();
  /// Seed for random grouping.
  uint64_t seed = 1;
  /// Keep per-instance depth vectors in the result (memory-heavy for large
  /// i; benches that only need timing turn it off).
  bool keep_depths = true;
  /// Host worker threads running groups concurrently (each group on its own
  /// simulated device, merged deterministically in group order). 1 = serial;
  /// 0 = one per hardware thread. Results are bit-identical for every
  /// setting; only wall_seconds changes.
  int threads = 1;

  /// Fault-injection plan for the simulated devices (disabled by default).
  /// Group g of a batch run executes on fleet device g % faults.device_count;
  /// the service routes through its circuit breaker instead.
  gpusim::FaultPlan faults;

  /// Per-group retry/backoff when an execution attempt faults. Ignored
  /// (attempt 1 always succeeds) unless `faults` is enabled.
  RetryPolicy retry;

  /// Telemetry sinks (non-owning; both optional). The engine forwards them
  /// to the device (kernel spans, gpusim.* counters) and the strategy
  /// runners (level spans, engine.* metrics), and adds group spans and
  /// host-side wall-clock phases of its own. Defaults to disabled, which
  /// costs one null check per instrumentation site.
  obs::Observer observer;

  /// Validates field ranges and cross-field consistency.
  Status Validate() const;
};

}  // namespace ibfs

#endif  // IBFS_CORE_OPTIONS_H_
