#ifndef IBFS_CORE_OPTIONS_H_
#define IBFS_CORE_OPTIONS_H_

#include <cstdint>

#include "gpusim/device_spec.h"
#include "ibfs/groupby.h"
#include "ibfs/runner.h"
#include "obs/trace.h"
#include "util/status.h"

namespace ibfs {

/// How the engine batches BFS sources into concurrent groups.
enum class GroupingPolicy {
  /// Chunk in the order given (deterministic, no shuffling).
  kInOrder,
  /// Shuffle, then chunk — the "random grouping" baseline of Figures 9/16.
  kRandom,
  /// Outdegree-based GroupBy rules (Section 5).
  kGroupBy,
};

/// Returns a short display name ("in-order", "random", "groupby").
const char* GroupingPolicyName(GroupingPolicy policy);

/// Top-level configuration for running i concurrent BFS instances.
struct EngineOptions {
  Strategy strategy = Strategy::kBitwise;
  GroupingPolicy grouping = GroupingPolicy::kGroupBy;
  /// Group size N (the paper's default is 128); clamped to the
  /// device-memory bound (Section 3) computed by Engine::MaxGroupSize.
  int group_size = 128;
  GroupByParams groupby;
  TraversalOptions traversal;
  gpusim::DeviceSpec device = gpusim::DeviceSpec::K40();
  /// Seed for random grouping.
  uint64_t seed = 1;
  /// Keep per-instance depth vectors in the result (memory-heavy for large
  /// i; benches that only need timing turn it off).
  bool keep_depths = true;
  /// Host worker threads running groups concurrently (each group on its own
  /// simulated device, merged deterministically in group order). 1 = serial;
  /// 0 = one per hardware thread. Results are bit-identical for every
  /// setting; only wall_seconds changes.
  int threads = 1;

  /// Telemetry sinks (non-owning; both optional). The engine forwards them
  /// to the device (kernel spans, gpusim.* counters) and the strategy
  /// runners (level spans, engine.* metrics), and adds group spans and
  /// host-side wall-clock phases of its own. Defaults to disabled, which
  /// costs one null check per instrumentation site.
  obs::Observer observer;

  /// Validates field ranges and cross-field consistency.
  Status Validate() const;
};

}  // namespace ibfs

#endif  // IBFS_CORE_OPTIONS_H_
