#include "core/shortest_paths.h"

#include <numeric>

#include "ibfs/status_array.h"
#include "util/logging.h"

namespace ibfs {

Result<DistanceMatrix> DistanceMatrix::Compute(
    const graph::Csr& graph, std::span<const graph::VertexId> sources,
    const EngineOptions& options) {
  EngineOptions opts = options;
  opts.keep_depths = true;
  Engine engine(&graph, opts);
  Result<EngineResult> run = engine.Run(sources);
  IBFS_RETURN_NOT_OK(run.status());
  const EngineResult& res = run.value();

  DistanceMatrix matrix;
  matrix.vertex_count_ = graph.vertex_count();
  matrix.sim_seconds_ = res.sim_seconds;
  matrix.row_of_.assign(static_cast<size_t>(graph.vertex_count()), -1);
  matrix.hops_.reserve(sources.size() *
                       static_cast<size_t>(graph.vertex_count()));
  for (size_t g = 0; g < res.groups.size(); ++g) {
    for (size_t j = 0; j < res.group_sources[g].size(); ++j) {
      const graph::VertexId s = res.group_sources[g][j];
      // A vertex may appear as a source more than once; keep its first row.
      if (matrix.row_of_[s] < 0) {
        matrix.row_of_[s] =
            static_cast<int64_t>(matrix.sources_.size());
      }
      matrix.sources_.push_back(s);
      const auto& depths = res.groups[g].depths[j];
      matrix.hops_.insert(matrix.hops_.end(), depths.begin(), depths.end());
    }
  }
  return matrix;
}

Result<DistanceMatrix> DistanceMatrix::AllPairs(const graph::Csr& graph,
                                                const EngineOptions& options) {
  std::vector<graph::VertexId> sources(
      static_cast<size_t>(graph.vertex_count()));
  std::iota(sources.begin(), sources.end(), 0);
  return Compute(graph, sources, options);
}

int DistanceMatrix::Distance(int64_t source_index,
                             graph::VertexId target) const {
  IBFS_CHECK(source_index >= 0 &&
             source_index < static_cast<int64_t>(sources_.size()));
  IBFS_CHECK(static_cast<int64_t>(target) < vertex_count_);
  const uint8_t d =
      hops_[source_index * vertex_count_ + static_cast<int64_t>(target)];
  return d == kUnvisitedDepth ? -1 : d;
}

int64_t DistanceMatrix::RowOf(graph::VertexId source) const {
  IBFS_CHECK(static_cast<int64_t>(source) < vertex_count_);
  return row_of_[source];
}

}  // namespace ibfs
