#ifndef IBFS_CORE_ENGINE_H_
#define IBFS_CORE_ENGINE_H_

#include <map>
#include <span>
#include <string>
#include <vector>

#include "core/options.h"
#include "gpusim/device.h"
#include "graph/csr.h"
#include "ibfs/runner.h"

namespace ibfs {

/// Result of running i concurrent BFS instances through the engine.
struct EngineResult {
  /// One entry per executed group, in execution order.
  std::vector<GroupResult> groups;
  /// Sources of each group (parallel to `groups`).
  std::vector<std::vector<graph::VertexId>> group_sources;
  /// Simulated seconds per group (parallel to `groups`) — the unit costs
  /// the multi-GPU scalability study schedules (Figure 17).
  std::vector<double> group_seconds;

  /// Total simulated seconds on one device (sum over groups).
  double sim_seconds = 0.0;
  /// Traversal rate: i x |E| directed edges / sim_seconds (the paper's
  /// TEPS metric — every instance's search counts every directed edge).
  double teps = 0.0;
  /// Device counter totals across the whole run.
  gpusim::KernelStats totals;
  /// Per-phase ("td_inspect", "bu_inspect", "fq_gen") aggregates.
  gpusim::PhaseMap phases;
  /// Sources placed by the GroupBy rules (0 unless grouping == kGroupBy).
  int64_t rule_matched = 0;
  /// Hub vertex each group was bucketed on (-1 = no hub), parallel to
  /// `groups`; surfaces the grouping decisions in the run report.
  std::vector<int64_t> group_hubs;
  /// Host wall-clock seconds spent inside Engine::Run.
  double wall_seconds = 0.0;

  /// Recovery accounting, nonzero only when options.faults is enabled:
  /// extra execution attempts beyond the first, injected launch failures
  /// observed, transfer corruptions caught by the checksum, and simulated
  /// seconds burned by failed attempts (successful-attempt timing is what
  /// sim_seconds/teps report, so fault-free numbers are unchanged).
  int64_t retries = 0;
  int64_t transient_faults = 0;
  int64_t corruptions_detected = 0;
  double wasted_sim_seconds = 0.0;

  /// Aggregate sharing ratio over all groups, optionally restricted to one
  /// traversal direction (pass -1 for both, 0 for top-down, 1 for
  /// bottom-up).
  double SharingRatio(int direction = -1) const;

  /// Looks up the depth of `v` from source instance (group g, member k).
  /// Convenience for examples/tests; prefer iterating `groups` in bulk.
  int DepthOf(size_t g, size_t k, graph::VertexId v) const;
};

/// The iBFS engine: groups the requested source vertices (GroupBy, random,
/// or in-order), runs each group with the configured strategy on a
/// simulated device, and aggregates timing, counters, and traces.
///
/// Groups are independent (separate status arrays, separate simulated
/// kernels), so with `options.threads > 1` the engine executes them on a
/// work-stealing host thread pool, one fresh `gpusim::Device` per group,
/// and merges the per-group results in group order on the calling thread.
/// Every thread count — including 1 — takes the per-group-device path, so
/// depths, traces, counters, `sim_seconds`, and `teps` are bit-identical
/// regardless of parallelism; only `wall_seconds` reflects the speedup.
class Engine {
 public:
  /// The graph must outlive the engine.
  Engine(const graph::Csr* graph, EngineOptions options);

  /// Runs concurrent BFS from every vertex in `sources`.
  Result<EngineResult> Run(std::span<const graph::VertexId> sources) const;

  /// Runs all-pairs (APSP): one BFS from every vertex of the graph.
  Result<EngineResult> RunAllSources() const;

  /// Runs one already-formed group on `device` with this engine's strategy
  /// and traversal configuration, attaching `observer` to both the device
  /// (kernel spans) and the runner (level spans). The device's simulated
  /// clock keeps whatever offset it has — the cluster engine uses this to
  /// execute placed groups back-to-back on continuous per-GPU timelines.
  Result<GroupResult> ExecuteGroup(std::span<const graph::VertexId> group,
                                   gpusim::Device* device,
                                   const obs::Observer& observer) const;

  const EngineOptions& options() const { return options_; }

  /// Worker count actually used for `group_count` groups: resolves
  /// `options.threads` (0 = hardware concurrency) and caps it at the number
  /// of groups — extra workers would only idle.
  int ResolveThreads(size_t group_count) const;

  /// The paper's group-size bound (Section 3):
  /// N <= (M - S - |JFQ|) / |SA|, with M the device memory, S the graph
  /// storage, |JFQ| the joint queue and |SA| one instance's status column.
  static int64_t MaxGroupSize(const graph::Csr& graph,
                              const gpusim::DeviceSpec& spec);

 private:
  const graph::Csr* graph_;
  EngineOptions options_;
};

}  // namespace ibfs

#endif  // IBFS_CORE_ENGINE_H_
