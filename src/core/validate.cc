#include "core/validate.h"

#include <string>

#include "ibfs/status_array.h"

namespace ibfs {
namespace {

std::string At(graph::VertexId v) {
  return " (vertex " + std::to_string(v) + ")";
}

}  // namespace

Status ValidateBfsDepths(const graph::Csr& graph, graph::VertexId source,
                         std::span<const uint8_t> depths, int max_level) {
  const int64_t n = graph.vertex_count();
  if (static_cast<int64_t>(depths.size()) != n) {
    return Status::InvalidArgument("depth array size mismatch");
  }
  if (static_cast<int64_t>(source) >= n) {
    return Status::OutOfRange("source outside graph");
  }
  if (depths[source] != 0) {
    return Status::Internal("source depth is not 0");
  }
  for (int64_t v = 0; v < n; ++v) {
    const uint8_t d = depths[v];
    if (d == kUnvisitedDepth) continue;
    if (d > max_level) {
      return Status::Internal("depth exceeds max_level" +
                              At(static_cast<graph::VertexId>(v)));
    }
    if (d == 0 && static_cast<graph::VertexId>(v) != source) {
      return Status::Internal("non-source vertex at depth 0" +
                              At(static_cast<graph::VertexId>(v)));
    }
    // Edge condition: a visited vertex's out-neighbors must be visited
    // within one level (unless the search was truncated at max_level).
    if (d < max_level) {
      for (graph::VertexId w : graph.OutNeighbors(
               static_cast<graph::VertexId>(v))) {
        if (depths[w] == kUnvisitedDepth || depths[w] > d + 1) {
          return Status::Internal(
              "edge spans more than one level: " + std::to_string(v) +
              " (depth " + std::to_string(d) + ") -> " + std::to_string(w));
        }
      }
    }
    // Parent existence: some in-neighbor sits exactly one level up.
    if (d > 0) {
      bool has_parent = false;
      for (graph::VertexId w : graph.InNeighbors(
               static_cast<graph::VertexId>(v))) {
        if (depths[w] != kUnvisitedDepth && depths[w] + 1 == d) {
          has_parent = true;
          break;
        }
      }
      if (!has_parent) {
        return Status::Internal("no parent one level up" +
                                At(static_cast<graph::VertexId>(v)));
      }
    }
  }
  return Status::OK();
}

Status ValidateBfsTree(const graph::Csr& graph, graph::VertexId source,
                       std::span<const graph::VertexId> parents,
                       std::span<const uint8_t> depths) {
  const int64_t n = graph.vertex_count();
  if (static_cast<int64_t>(parents.size()) != n ||
      static_cast<int64_t>(depths.size()) != n) {
    return Status::InvalidArgument("array size mismatch");
  }
  if (parents[source] != source) {
    return Status::Internal("source is not its own parent");
  }
  for (int64_t v = 0; v < n; ++v) {
    const auto vid = static_cast<graph::VertexId>(v);
    const uint8_t d = depths[v];
    if (d == kUnvisitedDepth) {
      if (parents[v] != graph::kInvalidVertex) {
        return Status::Internal("unreached vertex has a parent" + At(vid));
      }
      continue;
    }
    if (vid == source) continue;
    const graph::VertexId p = parents[v];
    if (p == graph::kInvalidVertex || static_cast<int64_t>(p) >= n) {
      return Status::Internal("reached vertex lacks a valid parent" +
                              At(vid));
    }
    if (depths[p] == kUnvisitedDepth || depths[p] + 1 != d) {
      return Status::Internal("parent not exactly one level up" + At(vid));
    }
    // Parent must be an actual in-neighbor.
    bool is_neighbor = false;
    for (graph::VertexId w : graph.InNeighbors(vid)) {
      if (w == p) {
        is_neighbor = true;
        break;
      }
    }
    if (!is_neighbor) {
      return Status::Internal("parent is not an in-neighbor" + At(vid));
    }
  }
  // Depth-consistency above already rules out parent-pointer cycles
  // (depths strictly decrease along parent chains), so the structure is a
  // forest rooted at the source.
  return Status::OK();
}

}  // namespace ibfs
