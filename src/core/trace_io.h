#ifndef IBFS_CORE_TRACE_IO_H_
#define IBFS_CORE_TRACE_IO_H_

#include <ostream>

#include "core/engine.h"

namespace ibfs {

/// Writes per-(group, level) traversal traces as CSV rows — direction,
/// joint/private frontier sizes, sharing degree, inspections, new visits —
/// for offline plotting of the paper's level-resolved figures (e.g. the
/// Figure 6 sharing-degree trends).
void WriteLevelTracesCsv(const EngineResult& result, std::ostream& os);

/// Writes the per-phase profiler counters of a run as CSV rows.
void WritePhasesCsv(const EngineResult& result, std::ostream& os);

}  // namespace ibfs

#endif  // IBFS_CORE_TRACE_IO_H_
