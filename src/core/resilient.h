#ifndef IBFS_CORE_RESILIENT_H_
#define IBFS_CORE_RESILIENT_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "core/engine.h"
#include "gpusim/fault.h"
#include "util/status.h"

namespace ibfs {

/// Resilient group execution over the fault-injectable device simulator:
/// one call = up to retry.max_attempts executions of one group, each on a
/// fresh simulated device carrying a deterministic FaultInjector, with
/// exponential-backoff-plus-jitter sleeps between attempts and a transfer
/// checksum that quarantines corrupted payloads (a poisoned attempt counts
/// as failed and is re-executed). Consumers: Engine::Run's per-group
/// workers (batch path) and BfsService's executor tasks (online path,
/// which adds circuit breaking and a CPU fallback on top). See
/// docs/RESILIENCE.md.

/// What one resilient group execution did. On final failure `status`
/// carries the last attempt's error and `result` is empty.
struct ResilientOutcome {
  Status status;
  GroupResult result;
  /// Simulated seconds / counters of the *successful* attempt only, so
  /// fault-free timing is unchanged by the retry machinery.
  double sim_seconds = 0.0;
  gpusim::KernelStats totals;
  gpusim::PhaseMap phases;
  /// Simulated seconds burned by failed attempts (retry waste).
  double wasted_sim_seconds = 0.0;
  int attempts = 0;
  /// Injected launch failures observed (transient or permanent).
  int transient_faults = 0;
  /// Transfer corruptions caught by the checksum.
  int corruptions_detected = 0;
  /// Host milliseconds slept in backoff.
  double backoff_ms = 0.0;
};

/// Executes `group` with the engine's strategy on fleet device
/// `device_id`, retrying per engine.options().retry against
/// engine.options().faults. `salt` decorrelates the fault/jitter streams
/// across groups (callers pass a stable per-group value such as the group
/// index or batch*1000+group). Fault-free fast path: when the plan is
/// disabled this is exactly one Engine::ExecuteGroup on a fresh device.
ResilientOutcome ExecuteGroupResilient(const Engine& engine,
                                       std::span<const graph::VertexId> group,
                                       int device_id, uint64_t salt,
                                       const obs::Observer& observer);

/// Round-robin router over the simulated device fleet with one circuit
/// breaker per device: `failure_threshold` consecutive failures open a
/// device's breaker and Acquire stops returning it (a success anywhere
/// before that resets its count). Opened breakers stay open — the injected
/// permanent failures this guards against do not heal — so when every
/// breaker is open Acquire returns kNoDevice and the caller degrades to
/// its fallback. Thread-safe.
class DeviceRouter {
 public:
  static constexpr int kNoDevice = -1;

  DeviceRouter(int device_count, int failure_threshold);

  /// Next healthy device ordinal, or kNoDevice when all breakers are open.
  int Acquire();

  /// Report one attempt's outcome on `device_id`; failures may open the
  /// breaker. Returns true when this call opened it.
  bool ReportFailure(int device_id);
  void ReportSuccess(int device_id);

  bool IsOpen(int device_id) const;
  int healthy_count() const;
  /// Breakers opened since construction.
  int64_t opened_total() const;

 private:
  mutable std::mutex mu_;
  std::vector<int> consecutive_failures_;
  std::vector<bool> open_;
  int failure_threshold_;
  size_t next_ = 0;
  int64_t opened_total_ = 0;
};

}  // namespace ibfs

#endif  // IBFS_CORE_RESILIENT_H_
