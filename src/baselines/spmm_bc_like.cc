#include "baselines/gpu_baselines.h"

namespace ibfs::baselines {

Result<GroupResult> RunSpmmBcLike(const graph::Csr& graph,
                                  std::span<const graph::VertexId> sources,
                                  const TraversalOptions& options,
                                  gpusim::Device* device) {
  // Batched frontier expansion over all instances (joint), but the SpMM
  // formulation has no bottom-up phase and no bitwise packing.
  TraversalOptions opts = options;
  opts.force_top_down = true;
  return RunGroup(Strategy::kJointTraversal, graph, sources, opts, device);
}

}  // namespace ibfs::baselines
