#include "baselines/gpu_baselines.h"

namespace ibfs::baselines {

Result<GroupResult> RunB40cLike(const graph::Csr& graph,
                                std::span<const graph::VertexId> sources,
                                const TraversalOptions& options,
                                gpusim::Device* device) {
  // One direction-optimizing BFS per launch, instances back to back: the
  // sequential strategy is exactly this baseline's cost structure.
  return RunGroup(Strategy::kSequential, graph, sources, options, device);
}

}  // namespace ibfs::baselines
