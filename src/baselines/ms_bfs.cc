#include <algorithm>
#include <vector>

#include "baselines/cpu_bfs.h"
#include "ibfs/status_array.h"
#include "util/bitops.h"

namespace ibfs::baselines {
namespace {

using graph::VertexId;

// Bit-matrix helper over W words per vertex.
class BitRows {
 public:
  BitRows(int64_t vertices, int words) : words_(words) {
    data_.assign(static_cast<size_t>(vertices) * words, 0);
  }
  uint64_t* Row(VertexId v) {
    return data_.data() + static_cast<int64_t>(v) * words_;
  }
  const uint64_t* Row(VertexId v) const {
    return data_.data() + static_cast<int64_t>(v) * words_;
  }
  void Clear() { std::fill(data_.begin(), data_.end(), 0); }
  int64_t bytes() const {
    return static_cast<int64_t>(data_.size() * sizeof(uint64_t));
  }

 private:
  int words_;
  std::vector<uint64_t> data_;
};

}  // namespace

Result<CpuRunResult> RunMsBfs(const graph::Csr& graph,
                              std::span<const graph::VertexId> sources,
                              const TraversalOptions& options,
                              CpuCostModel* cpu) {
  if (cpu == nullptr) return Status::InvalidArgument("cpu model is null");
  if (sources.empty()) return Status::InvalidArgument("no sources");
  for (VertexId s : sources) {
    if (static_cast<int64_t>(s) >= graph.vertex_count()) {
      return Status::OutOfRange("source outside vertex range");
    }
  }
  const int n = static_cast<int>(sources.size());
  const int words = static_cast<int>(CeilDiv(static_cast<uint64_t>(n), 64));
  const uint64_t last_mask =
      n % 64 == 0 ? ~uint64_t{0} : LowMask(n % 64);
  const int64_t v_count = graph.vertex_count();

  const double seconds_before = cpu->Seconds();
  CpuRunResult result;
  result.depths.assign(
      n, std::vector<uint8_t>(static_cast<size_t>(v_count), kUnvisitedDepth));

  BitRows seen(v_count, words);
  BitRows visit(v_count, words);
  BitRows visit_next(v_count, words);

  int64_t frontier_edges = 0;
  int64_t unexplored_edges = static_cast<int64_t>(n) * graph.edge_count();
  for (int j = 0; j < n; ++j) {
    const VertexId s = sources[j];
    seen.Row(s)[j / 64] |= Bit(j % 64);
    visit.Row(s)[j / 64] |= Bit(j % 64);
    result.depths[j][s] = 0;
    frontier_edges += graph.OutDegree(s);
    unexplored_edges -= graph.OutDegree(s);
  }

  bool bottom_up = false;
  for (int level = 1; level <= options.max_level; ++level) {
    cpu->ParallelSection();
    int64_t new_pairs = 0;
    int64_t next_frontier_edges = 0;

    if (!bottom_up) {
      // Top-down: propagate visit bits along out-edges.
      // Streaming scan to find non-empty visit rows.
      cpu->SequentialBytes(visit.bytes());
      for (int64_t v = 0; v < v_count; ++v) {
        const auto vid = static_cast<VertexId>(v);
        const uint64_t* row_visit = visit.Row(vid);
        bool any = false;
        for (int w = 0; w < words; ++w) any |= row_visit[w] != 0;
        if (!any) continue;
        const auto neighbors = graph.OutNeighbors(vid);
        cpu->SequentialBytes(static_cast<int64_t>(neighbors.size()) *
                             static_cast<int64_t>(sizeof(VertexId)));
        for (VertexId nb : neighbors) {
          // seen[nb] and visitNext[nb] are pointer-chased lines.
          cpu->RandomLines(2);
          cpu->Compute(3 * words);
          uint64_t* row_seen = seen.Row(nb);
          uint64_t* row_next = visit_next.Row(nb);
          for (int w = 0; w < words; ++w) {
            const uint64_t d = row_visit[w] & ~row_seen[w];
            ++result.edges_inspected;  // one logical word-check
            if (d != 0) {
              row_next[w] |= d;
              row_seen[w] |= d;
              new_pairs += PopCount(d);
              next_frontier_edges +=
                  static_cast<int64_t>(PopCount(d)) * graph.OutDegree(nb);
              uint64_t bits = d;
              while (bits != 0) {
                const int b = LowestSetBit(bits);
                bits &= bits - 1;
                result.depths[w * 64 + b][nb] =
                    static_cast<uint8_t>(level);
              }
            }
          }
        }
      }
    } else {
      // Bottom-up: every not-fully-seen vertex scans ALL in-neighbors — the
      // per-level reset of `visit` forecloses iBFS-style early termination.
      cpu->SequentialBytes(seen.bytes());
      for (int64_t v = 0; v < v_count; ++v) {
        const auto vid = static_cast<VertexId>(v);
        uint64_t* row_seen = seen.Row(vid);
        bool full = true;
        for (int w = 0; w < words; ++w) {
          const uint64_t valid = w + 1 == words ? last_mask : ~uint64_t{0};
          full &= (row_seen[w] & valid) == valid;
        }
        if (full) continue;
        const auto neighbors = graph.InNeighbors(vid);
        cpu->SequentialBytes(static_cast<int64_t>(neighbors.size()) *
                             static_cast<int64_t>(sizeof(VertexId)));
        uint64_t* row_next = visit_next.Row(vid);
        for (VertexId nb : neighbors) {
          cpu->RandomLines(1);
          cpu->Compute(3 * words);
          const uint64_t* row_visit = visit.Row(nb);
          for (int w = 0; w < words; ++w) {
            ++result.edges_inspected;
            const uint64_t d = row_visit[w] & ~row_seen[w];
            if (d != 0) {
              row_next[w] |= d;
              row_seen[w] |= d;
              new_pairs += PopCount(d);
              next_frontier_edges +=
                  static_cast<int64_t>(PopCount(d)) * graph.OutDegree(vid);
              uint64_t bits = d;
              while (bits != 0) {
                const int b = LowestSetBit(bits);
                bits &= bits - 1;
                result.depths[w * 64 + b][vid] =
                    static_cast<uint8_t>(level);
              }
            }
          }
        }
      }
    }

    if (new_pairs == 0) break;
    unexplored_edges -= next_frontier_edges;
    frontier_edges = next_frontier_edges;

    // Level change: visit <- visitNext, visitNext <- 0. This per-level
    // rebuild is the "reset" Section 6 contrasts with iBFS's cumulative
    // status array.
    std::swap(visit, visit_next);
    visit_next.Clear();
    cpu->SequentialBytes(2 * visit.bytes());

    if (!options.force_top_down) {
      if (!bottom_up && frontier_edges >
                            static_cast<int64_t>(
                                static_cast<double>(unexplored_edges) /
                                options.alpha)) {
        bottom_up = true;
      } else if (bottom_up &&
                 new_pairs < static_cast<int64_t>(
                                 static_cast<double>(n) *
                                 static_cast<double>(v_count) /
                                 options.beta)) {
        bottom_up = false;
      }
    }
  }

  result.seconds = cpu->Seconds() - seconds_before;
  return result;
}

}  // namespace ibfs::baselines
