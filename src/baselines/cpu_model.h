#ifndef IBFS_BASELINES_CPU_MODEL_H_
#define IBFS_BASELINES_CPU_MODEL_H_

#include <cstdint>
#include <string>

namespace ibfs::baselines {

/// Modeled multi-core CPU for the paper's CPU-side comparisons (Figure 22,
/// Table 1): dual Xeon E5-2683-class, 64 hardware threads. Wall-clock on
/// the build machine is not comparable to simulated GPU time, so the CPU
/// implementations count the same event classes (scalar work, cache-line
/// traffic, atomics) over this spec — keeping CPU-vs-GPU ratios meaningful
/// (see DESIGN.md §2).
struct CpuSpec {
  std::string name = "Xeon-E5-2683v3-x2-sim";
  int threads = 64;
  double clock_ghz = 2.1;
  /// Sustained scalar ops per cycle per thread.
  double ipc = 2.0;
  int cache_line_bytes = 64;
  /// Aggregate DRAM bandwidth in GB/s (two sockets).
  double mem_bandwidth_gbps = 120.0;
  double atomic_cost_cycles = 30.0;
  /// Per-level parallel-section overhead (barrier + scheduling), seconds.
  double parallel_section_overhead_s = 10e-6;
};

/// Accumulates counted work and converts it into modeled seconds with a
/// roofline analogous to the GPU simulator's.
class CpuCostModel {
 public:
  explicit CpuCostModel(CpuSpec spec = CpuSpec());

  /// `count` accesses to random cache lines (pointer chasing).
  void RandomLines(int64_t count);
  /// `bytes` of streaming (prefetchable) traffic.
  void SequentialBytes(int64_t bytes);
  /// `ops` scalar ALU operations.
  void Compute(int64_t ops);
  /// `count` atomic read-modify-writes.
  void Atomic(int64_t count);
  /// One parallel section (level barrier).
  void ParallelSection();

  const CpuSpec& spec() const { return spec_; }
  int64_t random_lines() const { return random_lines_; }
  int64_t sequential_bytes() const { return sequential_bytes_; }
  int64_t compute_ops() const { return compute_ops_; }
  int64_t atomics() const { return atomics_; }

  /// Modeled elapsed seconds for everything accumulated so far.
  double Seconds() const;

  void Reset();

 private:
  CpuSpec spec_;
  int64_t random_lines_ = 0;
  int64_t sequential_bytes_ = 0;
  int64_t compute_ops_ = 0;
  int64_t atomics_ = 0;
  int64_t sections_ = 0;
};

}  // namespace ibfs::baselines

#endif  // IBFS_BASELINES_CPU_MODEL_H_
