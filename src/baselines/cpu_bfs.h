#ifndef IBFS_BASELINES_CPU_BFS_H_
#define IBFS_BASELINES_CPU_BFS_H_

#include <cstdint>
#include <span>
#include <vector>

#include "baselines/cpu_model.h"
#include "graph/csr.h"
#include "ibfs/runner.h"
#include "util/status.h"

namespace ibfs::baselines {

/// Result of a CPU-modeled concurrent BFS run over one group.
struct CpuRunResult {
  /// depths[j][v], kUnvisitedDepth (0xFF) when unreached.
  std::vector<std::vector<uint8_t>> depths;
  /// Modeled seconds added to the cost model by this run.
  double seconds = 0.0;
  /// Neighbor checks performed (for workload comparisons).
  int64_t edges_inspected = 0;
};

/// MS-BFS (Then et al., VLDB'15): the state-of-the-art CPU concurrent BFS
/// the paper compares against (Figures 20/22, Table 1). One bit per
/// (vertex, instance) in `visit` / `visitNext` / `seen` arrays; the per-
/// level visit arrays are rebuilt (reset) every level, which is why its
/// bottom-up cannot early-terminate (Section 9); single-thread bitwise ops,
/// so no atomics. Honors options.max_level and options.force_top_down.
Result<CpuRunResult> RunMsBfs(const graph::Csr& graph,
                              std::span<const graph::VertexId> sources,
                              const TraversalOptions& options,
                              CpuCostModel* cpu);

/// CPU port of iBFS (Section 7): joint frontier queue + cumulative bitwise
/// status arrays with bottom-up early termination, but multi-threaded
/// bitwise updates require atomics on CPUs (the notable difference from
/// MS-BFS the paper calls out).
Result<CpuRunResult> RunCpuIbfs(const graph::Csr& graph,
                                std::span<const graph::VertexId> sources,
                                const TraversalOptions& options,
                                CpuCostModel* cpu);

}  // namespace ibfs::baselines

#endif  // IBFS_BASELINES_CPU_BFS_H_
