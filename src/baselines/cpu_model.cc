#include "baselines/cpu_model.h"

#include <algorithm>

namespace ibfs::baselines {

CpuCostModel::CpuCostModel(CpuSpec spec) : spec_(std::move(spec)) {}

void CpuCostModel::RandomLines(int64_t count) {
  if (count > 0) random_lines_ += count;
}

void CpuCostModel::SequentialBytes(int64_t bytes) {
  if (bytes > 0) sequential_bytes_ += bytes;
}

void CpuCostModel::Compute(int64_t ops) {
  if (ops > 0) compute_ops_ += ops;
}

void CpuCostModel::Atomic(int64_t count) {
  if (count > 0) atomics_ += count;
}

void CpuCostModel::ParallelSection() { ++sections_; }

double CpuCostModel::Seconds() const {
  const double cycles =
      static_cast<double>(compute_ops_) / spec_.ipc +
      static_cast<double>(atomics_) * spec_.atomic_cost_cycles;
  const double compute_seconds =
      cycles / (static_cast<double>(spec_.threads) * spec_.clock_ghz * 1e9);
  const double bytes =
      static_cast<double>(random_lines_) * spec_.cache_line_bytes +
      static_cast<double>(sequential_bytes_);
  const double mem_seconds = bytes / (spec_.mem_bandwidth_gbps * 1e9);
  return std::max(compute_seconds, mem_seconds) +
         static_cast<double>(sections_) * spec_.parallel_section_overhead_s;
}

void CpuCostModel::Reset() {
  random_lines_ = 0;
  sequential_bytes_ = 0;
  compute_ops_ = 0;
  atomics_ = 0;
  sections_ = 0;
}

}  // namespace ibfs::baselines
