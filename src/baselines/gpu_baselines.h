#ifndef IBFS_BASELINES_GPU_BASELINES_H_
#define IBFS_BASELINES_GPU_BASELINES_H_

#include <span>

#include "gpusim/device.h"
#include "graph/csr.h"
#include "ibfs/runner.h"

namespace ibfs::baselines {

/// B40C-like baseline (Merrill et al., PPoPP'12): a state-of-the-art
/// *single-source* GPU BFS. Concurrent workloads run instance after
/// instance — "similar performance as the sequential or naive
/// implementation" (Section 8.6).
Result<GroupResult> RunB40cLike(const graph::Csr& graph,
                                std::span<const graph::VertexId> sources,
                                const TraversalOptions& options,
                                gpusim::Device* device);

/// SpMM-BC-like baseline (Sarıyüce et al.): concurrent GPU BFS by batched
/// sparse operations — joint over instances, but top-down only ("does not
/// support bottom-up BFS", Section 9) and without bitwise packing.
Result<GroupResult> RunSpmmBcLike(const graph::Csr& graph,
                                  std::span<const graph::VertexId> sources,
                                  const TraversalOptions& options,
                                  gpusim::Device* device);

}  // namespace ibfs::baselines

#endif  // IBFS_BASELINES_GPU_BASELINES_H_
