#include <algorithm>
#include <vector>

#include "baselines/cpu_bfs.h"
#include "ibfs/status_array.h"
#include "util/bitops.h"

namespace ibfs::baselines {
namespace {

using graph::VertexId;

}  // namespace

Result<CpuRunResult> RunCpuIbfs(const graph::Csr& graph,
                                std::span<const graph::VertexId> sources,
                                const TraversalOptions& options,
                                CpuCostModel* cpu) {
  if (cpu == nullptr) return Status::InvalidArgument("cpu model is null");
  if (sources.empty()) return Status::InvalidArgument("no sources");
  for (VertexId s : sources) {
    if (static_cast<int64_t>(s) >= graph.vertex_count()) {
      return Status::OutOfRange("source outside vertex range");
    }
  }
  const int n = static_cast<int>(sources.size());
  const int words = static_cast<int>(CeilDiv(static_cast<uint64_t>(n), 64));
  const uint64_t last_mask = n % 64 == 0 ? ~uint64_t{0} : LowMask(n % 64);
  const int64_t v_count = graph.vertex_count();
  const int64_t row_bytes = static_cast<int64_t>(words) * 8;

  const double seconds_before = cpu->Seconds();
  CpuRunResult result;
  result.depths.assign(
      n, std::vector<uint8_t>(static_cast<size_t>(v_count), kUnvisitedDepth));

  // Cumulative bitwise status arrays (current and previous level), as on
  // the GPU (Section 7: the design carries over; atomics are the cost).
  std::vector<uint64_t> cur(static_cast<size_t>(v_count) * words, 0);
  std::vector<uint64_t> prev;
  std::vector<VertexId> jfq;

  auto row = [&](std::vector<uint64_t>& a, VertexId v) {
    return a.data() + static_cast<int64_t>(v) * words;
  };
  auto crow = [&](const std::vector<uint64_t>& a, VertexId v) {
    return a.data() + static_cast<int64_t>(v) * words;
  };
  auto row_full = [&](const uint64_t* r) {
    for (int w = 0; w + 1 < words; ++w) {
      if (r[w] != ~uint64_t{0}) return false;
    }
    return (r[words - 1] & last_mask) == last_mask;
  };

  int64_t frontier_edges = 0;
  int64_t unexplored_edges = static_cast<int64_t>(n) * graph.edge_count();
  for (int j = 0; j < n; ++j) {
    const VertexId s = sources[j];
    if (std::find(jfq.begin(), jfq.end(), s) == jfq.end()) jfq.push_back(s);
    row(cur, s)[j / 64] |= Bit(j % 64);
    result.depths[j][s] = 0;
    frontier_edges += graph.OutDegree(s);
    unexplored_edges -= graph.OutDegree(s);
  }
  prev = cur;

  bool bottom_up = false;
  for (int level = 1; level <= options.max_level && !jfq.empty(); ++level) {
    cpu->ParallelSection();
    int64_t new_pairs = 0;
    int64_t next_frontier_edges = 0;

    auto record_new_bits = [&](VertexId v, uint64_t diff, int w) {
      new_pairs += PopCount(diff);
      next_frontier_edges +=
          static_cast<int64_t>(PopCount(diff)) * graph.OutDegree(v);
      while (diff != 0) {
        const int b = LowestSetBit(diff);
        diff &= diff - 1;
        result.depths[w * 64 + b][v] = static_cast<uint8_t>(level);
      }
    };

    if (!bottom_up) {
      for (VertexId f : jfq) {
        cpu->RandomLines(CeilDiv(static_cast<uint64_t>(row_bytes), 64));
        const uint64_t* mask_f = crow(prev, f);
        const auto neighbors = graph.OutNeighbors(f);
        cpu->SequentialBytes(static_cast<int64_t>(neighbors.size()) *
                             static_cast<int64_t>(sizeof(VertexId)));
        int share = 0;
        for (int w = 0; w < words; ++w) share += PopCount(mask_f[w]);
        for (VertexId nb : neighbors) {
          // Multi-threaded bitwise OR into a shared row: CPU atomics — the
          // cost MS-BFS's single-thread formulation avoids (Section 7).
          cpu->RandomLines(1);
          cpu->Atomic(words);
          cpu->Compute(2 * words);
          result.edges_inspected += share;
          uint64_t* row_nb = row(cur, nb);
          for (int w = 0; w < words; ++w) {
            const uint64_t after = row_nb[w] | mask_f[w];
            const uint64_t diff = after ^ row_nb[w];
            if (diff != 0) {
              row_nb[w] = after;
              record_new_bits(nb, diff, w);
            }
          }
        }
      }
    } else {
      for (VertexId f : jfq) {
        cpu->RandomLines(1);
        uint64_t* row_f = row(cur, f);
        const auto neighbors = graph.InNeighbors(f);
        int64_t scanned = 0;
        for (VertexId nb : neighbors) {
          if (options.early_termination && row_full(row_f)) {
            break;  // early termination: all instances have a parent for f
          }
          ++scanned;
          cpu->RandomLines(1);
          cpu->Compute(2 * words);
          const uint64_t* row_nb = crow(prev, nb);
          for (int w = 0; w < words; ++w) {
            const uint64_t valid = w + 1 == words ? last_mask : ~uint64_t{0};
            result.edges_inspected += PopCount(~row_f[w] & valid);
            const uint64_t after = row_f[w] | row_nb[w];
            const uint64_t diff = after ^ row_f[w];
            if (diff != 0) {
              row_f[w] = after;
              record_new_bits(f, diff, w);
            }
          }
        }
        cpu->SequentialBytes(scanned *
                             static_cast<int64_t>(sizeof(VertexId)));
      }
    }

    if (new_pairs == 0) break;
    unexplored_edges -= next_frontier_edges;
    frontier_edges = next_frontier_edges;

    if (!options.force_top_down) {
      if (!bottom_up && frontier_edges >
                            static_cast<int64_t>(
                                static_cast<double>(unexplored_edges) /
                                options.alpha)) {
        bottom_up = true;
      } else if (bottom_up &&
                 new_pairs < static_cast<int64_t>(
                                 static_cast<double>(n) *
                                 static_cast<double>(v_count) /
                                 options.beta)) {
        bottom_up = false;
      }
    }

    // Joint frontier identification (XOR / NOT scans) + BSA copy.
    cpu->SequentialBytes(3 * static_cast<int64_t>(cur.size()) * 8);
    jfq.clear();
    for (int64_t v = 0; v < v_count; ++v) {
      const auto vid = static_cast<VertexId>(v);
      const uint64_t* rc = crow(cur, vid);
      const uint64_t* rp = crow(prev, vid);
      bool is_frontier = false;
      if (!bottom_up) {
        for (int w = 0; w < words; ++w) is_frontier |= (rc[w] ^ rp[w]) != 0;
      } else {
        is_frontier = !row_full(rc);
      }
      if (is_frontier) jfq.push_back(vid);
    }
    prev = cur;
  }

  result.seconds = cpu->Seconds() - seconds_before;
  return result;
}

}  // namespace ibfs::baselines
