#ifndef IBFS_BASELINES_REFERENCE_BFS_H_
#define IBFS_BASELINES_REFERENCE_BFS_H_

#include <cstdint>
#include <vector>

#include "graph/csr.h"

namespace ibfs::baselines {

/// Textbook queue-based BFS — the oracle every strategy's depths are tested
/// against. Not instrumented; host-speed only.
/// Returns depths with -1 for unreachable vertices. `max_level` truncates
/// the search (k-hop), matching TraversalOptions::max_level.
std::vector<int32_t> ReferenceBfs(const graph::Csr& graph,
                                  graph::VertexId source,
                                  int max_level = 0x7fffffff);

/// ReferenceBfs in the engine's depth encoding: one byte per vertex, 0xFF
/// (kUnvisitedDepth) for unreached. Requires max_level < 255 so every
/// reachable depth fits the byte; this is the payload the service's
/// degraded CPU fallback returns in place of a device execution.
std::vector<uint8_t> ReferenceDepthsU8(const graph::Csr& graph,
                                       graph::VertexId source, int max_level);

/// True iff `depths` (kUnvisitedDepth == 0xFF for unreached) matches the
/// reference exactly.
bool DepthsMatchReference(const graph::Csr& graph, graph::VertexId source,
                          const std::vector<uint8_t>& depths,
                          int max_level = 0x7fffffff);

}  // namespace ibfs::baselines

#endif  // IBFS_BASELINES_REFERENCE_BFS_H_
