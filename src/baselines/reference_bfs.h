#ifndef IBFS_BASELINES_REFERENCE_BFS_H_
#define IBFS_BASELINES_REFERENCE_BFS_H_

#include <cstdint>
#include <vector>

#include "graph/csr.h"

namespace ibfs::baselines {

/// Textbook queue-based BFS — the oracle every strategy's depths are tested
/// against. Not instrumented; host-speed only.
/// Returns depths with -1 for unreachable vertices. `max_level` truncates
/// the search (k-hop), matching TraversalOptions::max_level.
std::vector<int32_t> ReferenceBfs(const graph::Csr& graph,
                                  graph::VertexId source,
                                  int max_level = 0x7fffffff);

/// True iff `depths` (kUnvisitedDepth == 0xFF for unreached) matches the
/// reference exactly.
bool DepthsMatchReference(const graph::Csr& graph, graph::VertexId source,
                          const std::vector<uint8_t>& depths,
                          int max_level = 0x7fffffff);

}  // namespace ibfs::baselines

#endif  // IBFS_BASELINES_REFERENCE_BFS_H_
