#include "baselines/reference_bfs.h"

#include <deque>

namespace ibfs::baselines {

std::vector<int32_t> ReferenceBfs(const graph::Csr& graph,
                                  graph::VertexId source, int max_level) {
  std::vector<int32_t> depths(static_cast<size_t>(graph.vertex_count()), -1);
  std::deque<graph::VertexId> queue;
  depths[source] = 0;
  queue.push_back(source);
  while (!queue.empty()) {
    const graph::VertexId v = queue.front();
    queue.pop_front();
    const int32_t d = depths[v];
    if (d >= max_level) continue;
    for (graph::VertexId w : graph.OutNeighbors(v)) {
      if (depths[w] < 0) {
        depths[w] = d + 1;
        queue.push_back(w);
      }
    }
  }
  return depths;
}

std::vector<uint8_t> ReferenceDepthsU8(const graph::Csr& graph,
                                       graph::VertexId source, int max_level) {
  const std::vector<int32_t> ref = ReferenceBfs(graph, source, max_level);
  std::vector<uint8_t> depths(ref.size(), 0xFF);
  for (size_t v = 0; v < ref.size(); ++v) {
    if (ref[v] >= 0) depths[v] = static_cast<uint8_t>(ref[v]);
  }
  return depths;
}

bool DepthsMatchReference(const graph::Csr& graph, graph::VertexId source,
                          const std::vector<uint8_t>& depths, int max_level) {
  const std::vector<int32_t> ref = ReferenceBfs(graph, source, max_level);
  if (depths.size() != ref.size()) return false;
  for (size_t v = 0; v < ref.size(); ++v) {
    const int32_t got = depths[v] == 0xFF ? -1 : depths[v];
    if (got != ref[v]) return false;
  }
  return true;
}

}  // namespace ibfs::baselines
