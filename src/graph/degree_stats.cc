#include "graph/degree_stats.h"

#include <algorithm>
#include <cmath>

#include "util/stats_math.h"

namespace ibfs::graph {

DegreeStats ComputeDegreeStats(const Csr& graph) {
  DegreeStats stats;
  stats.vertex_count = graph.vertex_count();
  stats.edge_count = graph.edge_count();
  RunningStats deg;
  for (int64_t v = 0; v < stats.vertex_count; ++v) {
    const int64_t d = graph.OutDegree(static_cast<VertexId>(v));
    deg.Add(static_cast<double>(d));
    stats.max_outdegree = std::max(stats.max_outdegree, d);
    if (d == 0) ++stats.zero_degree_count;
  }
  stats.avg_outdegree = deg.mean();
  stats.stddev_outdegree = deg.stddev();
  return stats;
}

std::vector<VertexId> HighOutDegreeVertices(const Csr& graph,
                                            int64_t threshold) {
  std::vector<VertexId> hubs;
  const int64_t n = graph.vertex_count();
  for (int64_t v = 0; v < n; ++v) {
    if (graph.OutDegree(static_cast<VertexId>(v)) > threshold) {
      hubs.push_back(static_cast<VertexId>(v));
    }
  }
  return hubs;
}

std::vector<int64_t> DegreeHistogram(const Csr& graph) {
  std::vector<int64_t> histogram;
  const int64_t n = graph.vertex_count();
  for (int64_t v = 0; v < n; ++v) {
    const int64_t d = graph.OutDegree(static_cast<VertexId>(v));
    const int bucket =
        d <= 1 ? 0 : static_cast<int>(std::floor(std::log2(
                         static_cast<double>(d))));
    if (static_cast<size_t>(bucket) >= histogram.size()) {
      histogram.resize(bucket + 1, 0);
    }
    ++histogram[bucket];
  }
  return histogram;
}

}  // namespace ibfs::graph
