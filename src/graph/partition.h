#ifndef IBFS_GRAPH_PARTITION_H_
#define IBFS_GRAPH_PARTITION_H_

#include <cstdint>
#include <span>
#include <vector>

#include "graph/csr.h"
#include "util/status.h"

namespace ibfs::graph {

/// Deterministic 1D edge partitioning (Buluc & Madduri's row decomposition):
/// the vertex set is cut into P contiguous ranges chosen so each range owns
/// roughly |E| / P out-edges, and each partition stores the local CSR of its
/// owned vertices' out-edges. Level-synchronous BFS then runs each level on
/// every partition against its local edges and all-gathers the discovered
/// frontier between levels — the first scenario class where the graph itself
/// does not fit one device. The cut depends only on (graph, P), never on
/// threads or traversal order, so partitioned runs are bit-reproducible.

/// Contiguous vertex range [begin, end) owned by one partition.
struct VertexRange {
  VertexId begin = 0;
  VertexId end = 0;

  int64_t size() const { return static_cast<int64_t>(end) - begin; }
  bool Contains(VertexId v) const { return v >= begin && v < end; }
};

/// The out-edge CSR of one partition's owned vertices. Row r describes
/// global vertex `range.begin + r`; adjacency entries keep their *global*
/// vertex ids (a frontier exchange needs no translation). Only out-edges
/// are stored: the 1D decomposition's per-level expansion is top-down, and
/// owned in-edges generally differ in count from owned out-edges on
/// directed graphs, which the full Csr invariants do not allow.
struct LocalCsr {
  std::vector<EdgeIndex> row_offsets;  // local rows; size = range.size() + 1
  std::vector<VertexId> adjacency;     // global neighbor ids

  int64_t vertex_count() const {
    return static_cast<int64_t>(row_offsets.size()) - 1;
  }
  int64_t edge_count() const { return static_cast<int64_t>(adjacency.size()); }

  /// Out-neighbors of local row `r` (global ids, ascending).
  std::span<const VertexId> OutNeighbors(int64_t r) const {
    return {adjacency.data() + row_offsets[static_cast<size_t>(r)],
            adjacency.data() + row_offsets[static_cast<size_t>(r) + 1]};
  }

  int64_t StorageBytes() const {
    return static_cast<int64_t>(row_offsets.size() * sizeof(EdgeIndex) +
                                adjacency.size() * sizeof(VertexId));
  }

  /// FNV-1a digest of the local arrays alone — the analogue of
  /// Csr::Fingerprint. Deliberately *not* a cache key: two partitions of
  /// one parent graph can have bit-identical local shapes (see
  /// GraphPartition::Fingerprint).
  uint64_t TopologyFingerprint() const;
};

/// One partition: owner range plus its local CSR.
struct GraphPartition {
  int index = 0;
  VertexRange range;
  LocalCsr local;

  /// Cache-key fingerprint: TopologyFingerprint salted with the owner
  /// vertex range. Result caches key on (graph fingerprint, source,
  /// strategy); without the salt, two partitions of the same parent graph
  /// whose local CSRs happen to coincide (e.g. two disjoint identical
  /// components split at the component boundary) would collide and serve
  /// each other's depths.
  uint64_t Fingerprint() const;
};

/// A full 1D partitioning of one graph.
struct Partitioning {
  std::vector<GraphPartition> parts;
  /// ends[p] = parts[p].range.end; OwnerOf binary-searches this.
  std::vector<VertexId> range_ends;
  int64_t total_edges = 0;

  int partition_count() const { return static_cast<int>(parts.size()); }

  /// Owner partition of global vertex `v`.
  int OwnerOf(VertexId v) const;

  /// max(owned edges) / (total edges / P) — 1.0 is a perfect cut.
  double EdgeImbalance() const;
};

/// Cuts `graph` into `partitions` contiguous vertex ranges balanced by
/// out-edge count: a greedy prefix scan closes a range once it holds at
/// least (remaining edges) / (remaining partitions), so every partition is
/// non-empty in vertices whenever V >= P and the heaviest partition stays
/// within one vertex's degree of the ideal cut. Deterministic in (graph,
/// partitions). Fails on partitions < 1 or partitions > vertex count.
Result<Partitioning> PartitionByEdges1D(const Csr& graph, int partitions);

}  // namespace ibfs::graph

#endif  // IBFS_GRAPH_PARTITION_H_
