#include "graph/partition.h"

#include <algorithm>

#include "util/checksum.h"
#include "util/logging.h"

namespace ibfs::graph {

uint64_t LocalCsr::TopologyFingerprint() const {
  uint64_t state = kFnv1aOffsetBasis;
  const uint64_t v = static_cast<uint64_t>(vertex_count());
  const uint64_t e = static_cast<uint64_t>(edge_count());
  state = Fnv1aExtend(state, {reinterpret_cast<const uint8_t*>(&v),
                              sizeof(v)});
  state = Fnv1aExtend(state, {reinterpret_cast<const uint8_t*>(&e),
                              sizeof(e)});
  state = Fnv1aExtend(state,
                      {reinterpret_cast<const uint8_t*>(row_offsets.data()),
                       row_offsets.size() * sizeof(EdgeIndex)});
  state = Fnv1aExtend(state,
                      {reinterpret_cast<const uint8_t*>(adjacency.data()),
                       adjacency.size() * sizeof(VertexId)});
  return state;
}

uint64_t GraphPartition::Fingerprint() const {
  uint64_t state = local.TopologyFingerprint();
  const uint64_t lo = range.begin;
  const uint64_t hi = range.end;
  state = Fnv1aExtend(state, {reinterpret_cast<const uint8_t*>(&lo),
                              sizeof(lo)});
  state = Fnv1aExtend(state, {reinterpret_cast<const uint8_t*>(&hi),
                              sizeof(hi)});
  return state;
}

int Partitioning::OwnerOf(VertexId v) const {
  const auto it = std::upper_bound(range_ends.begin(), range_ends.end(), v);
  IBFS_CHECK(it != range_ends.end()) << "vertex " << v << " outside ranges";
  return static_cast<int>(it - range_ends.begin());
}

double Partitioning::EdgeImbalance() const {
  if (parts.empty() || total_edges == 0) return 1.0;
  int64_t heaviest = 0;
  for (const GraphPartition& part : parts) {
    heaviest = std::max(heaviest, part.local.edge_count());
  }
  const double ideal = static_cast<double>(total_edges) /
                       static_cast<double>(parts.size());
  return ideal > 0.0 ? static_cast<double>(heaviest) / ideal : 1.0;
}

Result<Partitioning> PartitionByEdges1D(const Csr& graph, int partitions) {
  const int64_t vertices = graph.vertex_count();
  const int64_t edges = graph.edge_count();
  if (partitions < 1) {
    return Status::InvalidArgument("partitions must be >= 1");
  }
  if (vertices < partitions) {
    return Status::InvalidArgument(
        "partitions (" + std::to_string(partitions) +
        ") exceeds vertex count (" + std::to_string(vertices) + ")");
  }

  Partitioning result;
  result.total_edges = edges;
  result.parts.reserve(static_cast<size_t>(partitions));
  result.range_ends.reserve(static_cast<size_t>(partitions));

  const std::span<const EdgeIndex> offsets = graph.row_offsets();
  VertexId cursor = 0;
  for (int p = 0; p < partitions; ++p) {
    const int remaining_parts = partitions - p;
    VertexRange range;
    range.begin = cursor;
    if (p + 1 == partitions) {
      range.end = static_cast<VertexId>(vertices);
    } else {
      // Close this range once it owns its fair share of the edges still
      // unassigned, but never so greedily that a later partition would be
      // left without a vertex.
      const int64_t remaining_edges =
          edges - static_cast<int64_t>(offsets[cursor]);
      const int64_t target =
          (remaining_edges + remaining_parts - 1) / remaining_parts;
      const VertexId max_end =
          static_cast<VertexId>(vertices - (remaining_parts - 1));
      VertexId end = cursor + 1;  // every partition owns >= 1 vertex
      while (end < max_end &&
             static_cast<int64_t>(offsets[end] - offsets[range.begin]) <
                 target) {
        ++end;
      }
      range.end = end;
      cursor = end;
    }

    GraphPartition part;
    part.index = p;
    part.range = range;
    const int64_t rows = range.size();
    part.local.row_offsets.resize(static_cast<size_t>(rows) + 1);
    const EdgeIndex base = offsets[range.begin];
    for (int64_t r = 0; r <= rows; ++r) {
      part.local.row_offsets[static_cast<size_t>(r)] =
          offsets[static_cast<size_t>(range.begin) + static_cast<size_t>(r)] -
          base;
    }
    const std::span<const VertexId> adjacency = graph.adjacency();
    part.local.adjacency.assign(
        adjacency.begin() + static_cast<int64_t>(base),
        adjacency.begin() + static_cast<int64_t>(offsets[range.end]));
    result.range_ends.push_back(range.end);
    result.parts.push_back(std::move(part));
  }
  IBFS_CHECK(result.range_ends.back() == static_cast<VertexId>(vertices));
  return result;
}

}  // namespace ibfs::graph
