#ifndef IBFS_GRAPH_BUILDER_H_
#define IBFS_GRAPH_BUILDER_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "graph/csr.h"
#include "util/status.h"

namespace ibfs::graph {

/// A directed edge (source, destination).
struct Edge {
  VertexId src;
  VertexId dst;

  friend bool operator==(const Edge&, const Edge&) = default;
};

/// Accumulates an edge list and produces a validated Csr.
///
/// Matching the paper's preprocessing (Section 8.1): undirected inputs add
/// each edge in both directions; for directed graphs the reverse adjacency is
/// materialized as well so bottom-up traversal can search in-neighbors.
/// Duplicate edges are removed and adjacency lists are sorted so traversal
/// order — and therefore bottom-up early termination — is deterministic.
class GraphBuilder {
 public:
  /// Creates a builder for a graph with `vertex_count` vertices.
  explicit GraphBuilder(int64_t vertex_count);

  /// Adds a directed edge. Out-of-range endpoints are reported by Build().
  void AddEdge(VertexId src, VertexId dst);

  /// Adds both (u, v) and (v, u).
  void AddUndirectedEdge(VertexId u, VertexId v);

  /// Adds every edge from `edges`.
  void AddEdges(const std::vector<Edge>& edges);

  int64_t edge_count() const { return static_cast<int64_t>(edges_.size()); }

  /// Sorts, deduplicates (keeping self-loops, as Graph500 TEPS counting
  /// allows them), validates endpoints, and emits the CSR plus its reverse.
  Result<Csr> Build() &&;

 private:
  int64_t vertex_count_;
  std::vector<Edge> edges_;
};

}  // namespace ibfs::graph

#endif  // IBFS_GRAPH_BUILDER_H_
