#ifndef IBFS_GRAPH_COMPONENTS_H_
#define IBFS_GRAPH_COMPONENTS_H_

#include <cstdint>
#include <vector>

#include "graph/csr.h"

namespace ibfs::graph {

/// Weakly-connected component labeling (every edge treated as
/// undirected). labels[v] is a component id in [0, component_count);
/// ids are assigned in discovery order from vertex 0.
struct ComponentLabels {
  std::vector<int32_t> labels;
  std::vector<int64_t> sizes;  // indexed by component id
  int32_t component_count = 0;
  /// Id of the largest component (smallest id wins ties).
  int32_t giant_id = 0;
};

/// Labels every weakly-connected component with one BFS sweep.
ComponentLabels ConnectedComponents(const Csr& graph);

/// Membership mask of the largest weakly-connected component (treating
/// every edge as undirected, i.e. following both out- and in-neighbors).
std::vector<bool> GiantComponentMask(const Csr& graph);

/// Vertices of the largest weakly-connected component, ascending.
std::vector<VertexId> GiantComponent(const Csr& graph);

/// Samples `count` distinct vertices from the giant component, shuffled
/// deterministically by `seed` — the paper's source-selection discipline
/// (Graph500 requires search keys with degree >= 1 that reach the bulk of
/// the graph; a source in a tiny component degenerates the traversal and,
/// for concurrent BFS, forecloses bottom-up early termination because its
/// instance can never visit most vertices). If the component has fewer
/// than `count` vertices, wraps around (duplicates allowed).
std::vector<VertexId> SampleConnectedSources(const Csr& graph, int64_t count,
                                             uint64_t seed);

}  // namespace ibfs::graph

#endif  // IBFS_GRAPH_COMPONENTS_H_
