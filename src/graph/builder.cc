#include "graph/builder.h"

#include <algorithm>
#include <string>

namespace ibfs::graph {
namespace {

// Counting-sort an edge list into CSR arrays keyed by `key`, storing `value`.
void EdgesToCsr(const std::vector<Edge>& edges, int64_t vertex_count,
                bool key_is_src, std::vector<EdgeIndex>* offsets,
                std::vector<VertexId>* adjacency) {
  offsets->assign(static_cast<size_t>(vertex_count) + 1, 0);
  for (const Edge& e : edges) {
    const VertexId key = key_is_src ? e.src : e.dst;
    ++(*offsets)[key + 1];
  }
  for (size_t v = 1; v < offsets->size(); ++v) (*offsets)[v] += (*offsets)[v - 1];
  adjacency->resize(edges.size());
  std::vector<EdgeIndex> cursor(offsets->begin(), offsets->end() - 1);
  for (const Edge& e : edges) {
    const VertexId key = key_is_src ? e.src : e.dst;
    const VertexId value = key_is_src ? e.dst : e.src;
    (*adjacency)[cursor[key]++] = value;
  }
  // Counting sort preserves no order among a vertex's neighbors; sort each
  // list so traversal (and early termination) is deterministic.
  for (int64_t v = 0; v < vertex_count; ++v) {
    std::sort(adjacency->begin() + static_cast<int64_t>((*offsets)[v]),
              adjacency->begin() + static_cast<int64_t>((*offsets)[v + 1]));
  }
}

}  // namespace

GraphBuilder::GraphBuilder(int64_t vertex_count)
    : vertex_count_(vertex_count) {}

void GraphBuilder::AddEdge(VertexId src, VertexId dst) {
  edges_.push_back({src, dst});
}

void GraphBuilder::AddUndirectedEdge(VertexId u, VertexId v) {
  edges_.push_back({u, v});
  edges_.push_back({v, u});
}

void GraphBuilder::AddEdges(const std::vector<Edge>& edges) {
  edges_.insert(edges_.end(), edges.begin(), edges.end());
}

Result<Csr> GraphBuilder::Build() && {
  if (vertex_count_ <= 0) {
    return Status::InvalidArgument("vertex_count must be positive");
  }
  if (vertex_count_ > static_cast<int64_t>(kInvalidVertex)) {
    return Status::InvalidArgument("vertex_count exceeds VertexId range");
  }
  for (const Edge& e : edges_) {
    if (e.src >= vertex_count_ || e.dst >= vertex_count_) {
      return Status::OutOfRange("edge endpoint " + std::to_string(e.src) +
                                "->" + std::to_string(e.dst) +
                                " outside vertex range");
    }
  }
  std::sort(edges_.begin(), edges_.end(), [](const Edge& a, const Edge& b) {
    return a.src != b.src ? a.src < b.src : a.dst < b.dst;
  });
  edges_.erase(std::unique(edges_.begin(), edges_.end()), edges_.end());

  std::vector<EdgeIndex> out_offsets;
  std::vector<VertexId> out_adj;
  EdgesToCsr(edges_, vertex_count_, /*key_is_src=*/true, &out_offsets,
             &out_adj);
  std::vector<EdgeIndex> in_offsets;
  std::vector<VertexId> in_adj;
  EdgesToCsr(edges_, vertex_count_, /*key_is_src=*/false, &in_offsets,
             &in_adj);
  return Csr(std::move(out_offsets), std::move(out_adj), std::move(in_offsets),
             std::move(in_adj));
}

}  // namespace ibfs::graph
