#include "graph/io.h"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <vector>

namespace ibfs::graph {

Result<Csr> LoadEdgeList(const std::string& path, int64_t vertex_count,
                         bool undirected) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open " + path);

  std::vector<Edge> edges;
  int64_t max_id = -1;
  std::string line;
  int64_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#' || line[0] == '%') continue;
    std::istringstream ls(line);
    uint64_t src = 0;
    uint64_t dst = 0;
    if (!(ls >> src >> dst)) {
      return Status::IoError(path + ":" + std::to_string(line_no) +
                             ": malformed edge line");
    }
    if (src > kInvalidVertex - 1 || dst > kInvalidVertex - 1) {
      return Status::OutOfRange(path + ":" + std::to_string(line_no) +
                                ": vertex id exceeds 32-bit range");
    }
    edges.push_back(
        {static_cast<VertexId>(src), static_cast<VertexId>(dst)});
    max_id = std::max<int64_t>(max_id, static_cast<int64_t>(std::max(src, dst)));
  }
  if (vertex_count < 0) vertex_count = max_id + 1;
  if (vertex_count <= 0) {
    return Status::InvalidArgument(path + ": no vertices");
  }

  GraphBuilder builder(vertex_count);
  for (const Edge& e : edges) {
    if (undirected) {
      builder.AddUndirectedEdge(e.src, e.dst);
    } else {
      builder.AddEdge(e.src, e.dst);
    }
  }
  return std::move(builder).Build();
}

namespace {

constexpr uint64_t kBinaryMagic = 0x53464249'48505247ULL;  // "GRPHIBFS"
constexpr uint32_t kBinaryVersion = 1;

template <typename T>
void WritePod(std::ofstream& out, const T& value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
bool ReadPod(std::ifstream& in, T* value) {
  in.read(reinterpret_cast<char*>(value), sizeof(T));
  return static_cast<bool>(in);
}

template <typename T>
void WriteVec(std::ofstream& out, std::span<const T> values) {
  out.write(reinterpret_cast<const char*>(values.data()),
            static_cast<std::streamsize>(values.size() * sizeof(T)));
}

template <typename T>
bool ReadVec(std::ifstream& in, size_t count, std::vector<T>* values) {
  values->resize(count);
  in.read(reinterpret_cast<char*>(values->data()),
          static_cast<std::streamsize>(count * sizeof(T)));
  return static_cast<bool>(in);
}

}  // namespace

Status SaveBinary(const Csr& graph, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IoError("cannot open " + path + " for writing");
  WritePod(out, kBinaryMagic);
  WritePod(out, kBinaryVersion);
  WritePod(out, static_cast<uint64_t>(graph.vertex_count()));
  WritePod(out, static_cast<uint64_t>(graph.edge_count()));
  WriteVec(out, graph.row_offsets());
  WriteVec(out, graph.adjacency());
  WriteVec(out, graph.in_row_offsets());
  WriteVec(out, graph.in_adjacency());
  if (!out) return Status::IoError("write to " + path + " failed");
  return Status::OK();
}

Result<Csr> LoadBinary(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open " + path);
  uint64_t magic = 0;
  uint32_t version = 0;
  uint64_t vertices = 0;
  uint64_t edges = 0;
  if (!ReadPod(in, &magic) || magic != kBinaryMagic) {
    return Status::IoError(path + ": not an ibfs binary graph");
  }
  if (!ReadPod(in, &version) || version != kBinaryVersion) {
    return Status::IoError(path + ": unsupported version");
  }
  if (!ReadPod(in, &vertices) || !ReadPod(in, &edges) || vertices == 0) {
    return Status::IoError(path + ": corrupt header");
  }
  std::vector<EdgeIndex> offsets;
  std::vector<VertexId> adjacency;
  std::vector<EdgeIndex> in_offsets;
  std::vector<VertexId> in_adjacency;
  if (!ReadVec(in, vertices + 1, &offsets) ||
      !ReadVec(in, edges, &adjacency) ||
      !ReadVec(in, vertices + 1, &in_offsets) ||
      !ReadVec(in, edges, &in_adjacency)) {
    return Status::IoError(path + ": truncated graph data");
  }
  if (offsets.front() != 0 || offsets.back() != edges ||
      in_offsets.front() != 0 || in_offsets.back() != edges) {
    return Status::IoError(path + ": inconsistent offsets");
  }
  for (VertexId v : adjacency) {
    if (v >= vertices) return Status::IoError(path + ": vertex out of range");
  }
  return Csr(std::move(offsets), std::move(adjacency), std::move(in_offsets),
             std::move(in_adjacency));
}

Result<Csr> LoadMatrixMarket(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open " + path);
  std::string header;
  if (!std::getline(in, header) ||
      header.rfind("%%MatrixMarket", 0) != 0) {
    return Status::IoError(path + ": missing MatrixMarket banner");
  }
  std::istringstream hs(header);
  std::string banner, object, format, field, symmetry;
  hs >> banner >> object >> format >> field >> symmetry;
  if (object != "matrix" || format != "coordinate") {
    return Status::IoError(path + ": only coordinate matrices supported");
  }
  if (field != "pattern" && field != "integer" && field != "real") {
    return Status::IoError(path + ": unsupported field " + field);
  }
  if (symmetry != "general" && symmetry != "symmetric") {
    return Status::IoError(path + ": unsupported symmetry " + symmetry);
  }
  const bool symmetric = symmetry == "symmetric";
  const bool has_value = field != "pattern";

  std::string line;
  // Skip comments to the size line.
  while (std::getline(in, line)) {
    if (!line.empty() && line[0] != '%') break;
  }
  std::istringstream size_line(line);
  int64_t rows = 0, cols = 0, entries = 0;
  if (!(size_line >> rows >> cols >> entries) || rows <= 0 || cols <= 0) {
    return Status::IoError(path + ": malformed size line");
  }
  const int64_t n = std::max(rows, cols);

  GraphBuilder builder(n);
  for (int64_t e = 0; e < entries; ++e) {
    if (!std::getline(in, line)) {
      return Status::IoError(path + ": truncated entry list");
    }
    std::istringstream ls(line);
    int64_t r = 0, c = 0;
    double value = 0.0;
    if (!(ls >> r >> c) || (has_value && !(ls >> value))) {
      return Status::IoError(path + ": malformed entry");
    }
    if (r < 1 || r > n || c < 1 || c > n) {
      return Status::OutOfRange(path + ": 1-based index out of range");
    }
    const auto u = static_cast<VertexId>(r - 1);
    const auto v = static_cast<VertexId>(c - 1);
    if (symmetric) {
      builder.AddUndirectedEdge(u, v);
    } else {
      builder.AddEdge(u, v);
    }
  }
  return std::move(builder).Build();
}

Status SaveEdgeList(const Csr& graph, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot open " + path + " for writing");
  const int64_t n = graph.vertex_count();
  for (int64_t v = 0; v < n; ++v) {
    for (VertexId w : graph.OutNeighbors(static_cast<VertexId>(v))) {
      out << v << ' ' << w << '\n';
    }
  }
  if (!out) return Status::IoError("write to " + path + " failed");
  return Status::OK();
}

}  // namespace ibfs::graph
