#include "graph/components.h"

#include <deque>

#include "util/prng.h"

namespace ibfs::graph {
namespace {

// Marks the weak component containing `start` in `label` with `id`.
int64_t FloodFill(const Csr& graph, VertexId start, int32_t id,
                  std::vector<int32_t>* label) {
  int64_t size = 0;
  std::deque<VertexId> queue{start};
  (*label)[start] = id;
  while (!queue.empty()) {
    const VertexId v = queue.front();
    queue.pop_front();
    ++size;
    for (VertexId w : graph.OutNeighbors(v)) {
      if ((*label)[w] < 0) {
        (*label)[w] = id;
        queue.push_back(w);
      }
    }
    for (VertexId w : graph.InNeighbors(v)) {
      if ((*label)[w] < 0) {
        (*label)[w] = id;
        queue.push_back(w);
      }
    }
  }
  return size;
}

}  // namespace

ComponentLabels ConnectedComponents(const Csr& graph) {
  const int64_t n = graph.vertex_count();
  ComponentLabels result;
  result.labels.assign(static_cast<size_t>(n), -1);
  for (int64_t v = 0; v < n; ++v) {
    if (result.labels[v] >= 0) continue;
    const int64_t size = FloodFill(graph, static_cast<VertexId>(v),
                                   result.component_count, &result.labels);
    result.sizes.push_back(size);
    if (size > result.sizes[result.giant_id]) {
      result.giant_id = result.component_count;
    }
    ++result.component_count;
  }
  return result;
}

std::vector<bool> GiantComponentMask(const Csr& graph) {
  const ComponentLabels cc = ConnectedComponents(graph);
  std::vector<bool> mask(cc.labels.size(), false);
  for (size_t v = 0; v < cc.labels.size(); ++v) {
    mask[v] = cc.labels[v] == cc.giant_id;
  }
  return mask;
}

std::vector<VertexId> GiantComponent(const Csr& graph) {
  const auto mask = GiantComponentMask(graph);
  std::vector<VertexId> members;
  for (size_t v = 0; v < mask.size(); ++v) {
    if (mask[v]) members.push_back(static_cast<VertexId>(v));
  }
  return members;
}

std::vector<VertexId> SampleConnectedSources(const Csr& graph, int64_t count,
                                             uint64_t seed) {
  std::vector<VertexId> pool = GiantComponent(graph);
  if (pool.empty() || count <= 0) return {};
  Prng prng(seed);
  for (size_t i = pool.size(); i > 1; --i) {
    std::swap(pool[i - 1], pool[prng.NextBounded(i)]);
  }
  std::vector<VertexId> sources;
  sources.reserve(static_cast<size_t>(count));
  for (int64_t i = 0; i < count; ++i) {
    sources.push_back(pool[static_cast<size_t>(i) % pool.size()]);
  }
  return sources;
}

}  // namespace ibfs::graph
