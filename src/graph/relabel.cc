#include "graph/relabel.h"

#include <algorithm>
#include <numeric>

#include "graph/builder.h"

namespace ibfs::graph {

Result<RelabeledGraph> RelabelByDegree(const Csr& graph) {
  const int64_t n = graph.vertex_count();
  std::vector<VertexId> order(static_cast<size_t>(n));
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(),
                   [&](VertexId a, VertexId b) {
                     return graph.OutDegree(a) > graph.OutDegree(b);
                   });

  std::vector<VertexId> new_id(static_cast<size_t>(n));
  for (int64_t rank = 0; rank < n; ++rank) {
    new_id[order[rank]] = static_cast<VertexId>(rank);
  }

  GraphBuilder builder(n);
  for (int64_t v = 0; v < n; ++v) {
    const auto vid = static_cast<VertexId>(v);
    for (VertexId w : graph.OutNeighbors(vid)) {
      builder.AddEdge(new_id[vid], new_id[w]);
    }
  }
  Result<Csr> rebuilt = std::move(builder).Build();
  IBFS_RETURN_NOT_OK(rebuilt.status());
  return RelabeledGraph{std::move(rebuilt).value(), std::move(new_id),
                        std::move(order)};
}

std::vector<uint8_t> MapDepthsToOriginal(const RelabeledGraph& relabeled,
                                         const std::vector<uint8_t>& depths) {
  std::vector<uint8_t> out(depths.size());
  for (size_t new_v = 0; new_v < depths.size(); ++new_v) {
    out[relabeled.old_id[new_v]] = depths[new_v];
  }
  return out;
}

}  // namespace ibfs::graph
