#ifndef IBFS_GRAPH_CSR_H_
#define IBFS_GRAPH_CSR_H_

#include <cstdint>
#include <span>
#include <vector>

#include "util/status.h"

namespace ibfs::graph {

/// Vertex identifier. 32 bits covers the scaled benchmark suite; the builder
/// rejects graphs that would overflow.
using VertexId = uint32_t;

/// Index into the CSR edge array (64-bit: edge counts exceed 2^32 at paper
/// scale).
using EdgeIndex = uint64_t;

/// Sentinel for "no vertex".
inline constexpr VertexId kInvalidVertex = ~VertexId{0};

/// Immutable directed graph in Compressed Sparse Row form, the storage format
/// the paper uses (Section 8.1). Bottom-up traversal searches a vertex's
/// *in*-neighbors for a visited parent, so the graph also carries the reverse
/// (in-edge) CSR. For the undirected benchmark graphs the two are identical
/// by construction (each undirected edge is stored as two directed edges).
class Csr {
 public:
  /// Builds a CSR from already-validated arrays. `row_offsets` has
  /// vertex_count+1 entries; `row_offsets.back() == adjacency.size()`.
  /// Prefer GraphBuilder (builder.h) which sorts, deduplicates, and
  /// validates; this constructor IBFS_CHECKs structural invariants.
  Csr(std::vector<EdgeIndex> row_offsets, std::vector<VertexId> adjacency,
      std::vector<EdgeIndex> in_row_offsets,
      std::vector<VertexId> in_adjacency);

  Csr(Csr&&) = default;
  Csr& operator=(Csr&&) = default;
  Csr(const Csr&) = delete;
  Csr& operator=(const Csr&) = delete;

  int64_t vertex_count() const {
    return static_cast<int64_t>(row_offsets_.size()) - 1;
  }
  /// Number of directed edges (the paper's |E|; undirected input doubles).
  int64_t edge_count() const { return static_cast<int64_t>(adjacency_.size()); }

  /// Out-neighbors of `v`, in ascending order.
  std::span<const VertexId> OutNeighbors(VertexId v) const {
    return {adjacency_.data() + row_offsets_[v],
            adjacency_.data() + row_offsets_[v + 1]};
  }

  /// In-neighbors of `v` (used by bottom-up parent search).
  std::span<const VertexId> InNeighbors(VertexId v) const {
    return {in_adjacency_.data() + in_row_offsets_[v],
            in_adjacency_.data() + in_row_offsets_[v + 1]};
  }

  int64_t OutDegree(VertexId v) const {
    return static_cast<int64_t>(row_offsets_[v + 1] - row_offsets_[v]);
  }
  int64_t InDegree(VertexId v) const {
    return static_cast<int64_t>(in_row_offsets_[v + 1] - in_row_offsets_[v]);
  }

  /// Raw CSR arrays, exposed for the simulator's address-level memory
  /// accounting (the kernels compute which 128-byte segments a warp touches).
  std::span<const EdgeIndex> row_offsets() const { return row_offsets_; }
  std::span<const VertexId> adjacency() const { return adjacency_; }
  std::span<const EdgeIndex> in_row_offsets() const { return in_row_offsets_; }
  std::span<const VertexId> in_adjacency() const { return in_adjacency_; }

  /// Bytes of device memory the graph occupies (the S term of the paper's
  /// group-size bound N <= (M - S - |JFQ|) / |SA|).
  int64_t StorageBytes() const;

  /// FNV-1a digest of the out-CSR arrays (counts, row offsets, adjacency).
  /// Two Csr objects with equal topology hash equal; any structural change
  /// changes it with high probability. O(V + E) — callers that key caches
  /// on graph identity compute it once and hold the value (the service's
  /// result cache does this at Create).
  uint64_t Fingerprint() const;

 private:
  std::vector<EdgeIndex> row_offsets_;
  std::vector<VertexId> adjacency_;
  std::vector<EdgeIndex> in_row_offsets_;
  std::vector<VertexId> in_adjacency_;
};

}  // namespace ibfs::graph

#endif  // IBFS_GRAPH_CSR_H_
