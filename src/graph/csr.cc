#include "graph/csr.h"

#include "util/checksum.h"
#include "util/logging.h"

namespace ibfs::graph {

Csr::Csr(std::vector<EdgeIndex> row_offsets, std::vector<VertexId> adjacency,
         std::vector<EdgeIndex> in_row_offsets,
         std::vector<VertexId> in_adjacency)
    : row_offsets_(std::move(row_offsets)),
      adjacency_(std::move(adjacency)),
      in_row_offsets_(std::move(in_row_offsets)),
      in_adjacency_(std::move(in_adjacency)) {
  IBFS_CHECK(!row_offsets_.empty());
  IBFS_CHECK(row_offsets_.size() == in_row_offsets_.size());
  IBFS_CHECK(row_offsets_.front() == 0);
  IBFS_CHECK(row_offsets_.back() == adjacency_.size());
  IBFS_CHECK(in_row_offsets_.front() == 0);
  IBFS_CHECK(in_row_offsets_.back() == in_adjacency_.size());
  IBFS_CHECK(adjacency_.size() == in_adjacency_.size());
}

uint64_t Csr::Fingerprint() const {
  // The out-CSR determines the in-CSR (the builder derives one from the
  // other), so hashing row offsets + adjacency identifies the topology.
  uint64_t state = kFnv1aOffsetBasis;
  const uint64_t v = static_cast<uint64_t>(vertex_count());
  const uint64_t e = static_cast<uint64_t>(edge_count());
  state = Fnv1aExtend(
      state, {reinterpret_cast<const uint8_t*>(&v), sizeof(v)});
  state = Fnv1aExtend(
      state, {reinterpret_cast<const uint8_t*>(&e), sizeof(e)});
  state = Fnv1aExtend(
      state, {reinterpret_cast<const uint8_t*>(row_offsets_.data()),
              row_offsets_.size() * sizeof(EdgeIndex)});
  state = Fnv1aExtend(
      state, {reinterpret_cast<const uint8_t*>(adjacency_.data()),
              adjacency_.size() * sizeof(VertexId)});
  return state;
}

int64_t Csr::StorageBytes() const {
  return static_cast<int64_t>(row_offsets_.size() * sizeof(EdgeIndex) +
                              adjacency_.size() * sizeof(VertexId) +
                              in_row_offsets_.size() * sizeof(EdgeIndex) +
                              in_adjacency_.size() * sizeof(VertexId));
}

}  // namespace ibfs::graph
