#ifndef IBFS_GRAPH_RELABEL_H_
#define IBFS_GRAPH_RELABEL_H_

#include <vector>

#include "graph/csr.h"
#include "util/status.h"

namespace ibfs::graph {

/// A relabeled graph plus the id mappings between old and new worlds.
struct RelabeledGraph {
  Csr graph;
  /// new_id[old] — apply to sources before traversing the relabeled graph.
  std::vector<VertexId> new_id;
  /// old_id[new] — apply to results to map back.
  std::vector<VertexId> old_id;
};

/// Renumbers vertices by descending outdegree (ties by old id). A standard
/// GPU-BFS preprocessing step (Enterprise uses it): hubs get small ids, so
/// frontier queues and status-array accesses for the hot vertices land in
/// the same memory segments, and sorted adjacency lists place hubs first —
/// which also makes bottom-up parent searches hit sooner.
Result<RelabeledGraph> RelabelByDegree(const Csr& graph);

/// Maps a depth array computed on the relabeled graph back to original
/// vertex ids.
std::vector<uint8_t> MapDepthsToOriginal(const RelabeledGraph& relabeled,
                                         const std::vector<uint8_t>& depths);

}  // namespace ibfs::graph

#endif  // IBFS_GRAPH_RELABEL_H_
