#ifndef IBFS_GRAPH_IO_H_
#define IBFS_GRAPH_IO_H_

#include <string>

#include "graph/builder.h"
#include "graph/csr.h"
#include "util/status.h"

namespace ibfs::graph {

/// Loads a whitespace-separated edge list ("src dst" per line; '#' and '%'
/// comment lines skipped — the SNAP dataset format the paper's real graphs
/// ship in). Vertex ids must be < vertex_count; when vertex_count is -1 it
/// is inferred as max id + 1.
Result<Csr> LoadEdgeList(const std::string& path, int64_t vertex_count = -1,
                         bool undirected = false);

/// Writes a graph's out-edges as an edge list (one "src dst" per line).
Status SaveEdgeList(const Csr& graph, const std::string& path);

/// Writes the CSR (both directions) in a compact binary format — magic,
/// version, counts, then the four arrays — so large generated benchmarks
/// load without re-sorting. Little-endian, not portable across
/// architectures of different endianness.
Status SaveBinary(const Csr& graph, const std::string& path);

/// Loads a graph written by SaveBinary, validating header and sizes.
Result<Csr> LoadBinary(const std::string& path);

/// Loads a Matrix Market coordinate file (the format the paper's
/// University-of-Florida / SuiteSparse graphs such as WK ship in).
/// Supports `matrix coordinate pattern|integer|real general|symmetric`;
/// symmetric matrices add both directions; entry values are ignored
/// (pattern connectivity only); 1-based indices are converted.
Result<Csr> LoadMatrixMarket(const std::string& path);

}  // namespace ibfs::graph

#endif  // IBFS_GRAPH_IO_H_
