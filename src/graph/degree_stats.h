#ifndef IBFS_GRAPH_DEGREE_STATS_H_
#define IBFS_GRAPH_DEGREE_STATS_H_

#include <cstdint>
#include <vector>

#include "graph/csr.h"

namespace ibfs::graph {

/// Aggregate outdegree statistics; the GroupBy rules (Section 5.2) are
/// driven entirely by outdegrees, so this is the analysis the grouper runs.
struct DegreeStats {
  int64_t vertex_count = 0;
  int64_t edge_count = 0;
  double avg_outdegree = 0.0;
  int64_t max_outdegree = 0;
  double stddev_outdegree = 0.0;
  /// Vertices with outdegree 0 (never frontiers in top-down expansion).
  int64_t zero_degree_count = 0;
};

/// Computes aggregate outdegree statistics for `graph`.
DegreeStats ComputeDegreeStats(const Csr& graph);

/// Returns all vertices with outdegree > threshold, ascending by id — the
/// "high-outdegree vertices" of GroupBy Rule 2.
std::vector<VertexId> HighOutDegreeVertices(const Csr& graph,
                                            int64_t threshold);

/// Histogram of log2(outdegree) buckets: bucket b counts vertices with
/// outdegree in [2^b, 2^(b+1)); bucket 0 also counts degree 0 and 1.
std::vector<int64_t> DegreeHistogram(const Csr& graph);

}  // namespace ibfs::graph

#endif  // IBFS_GRAPH_DEGREE_STATS_H_
