#ifndef IBFS_IBFS_H_
#define IBFS_IBFS_H_

/// Umbrella header: the iBFS public API in one include.
///
///   #include "ibfs.h"
///
///   auto graph   = ibfs::gen::GenerateRmat({.scale = 12});
///   auto sources = ibfs::graph::SampleConnectedSources(graph.value(), 128, 1);
///   ibfs::Engine engine(&graph.value(), {});
///   auto result  = engine.Run(sources);
///
/// Sub-headers remain individually includable; this file only aggregates.

#include "core/cluster_engine.h"
#include "core/engine.h"
#include "core/options.h"
#include "core/shortest_paths.h"
#include "core/trace_io.h"
#include "core/validate.h"
#include "gen/benchmarks.h"
#include "gen/rmat.h"
#include "gen/uniform.h"
#include "gpusim/cluster.h"
#include "gpusim/device.h"
#include "gpusim/device_spec.h"
#include "gpusim/report.h"
#include "graph/builder.h"
#include "graph/components.h"
#include "graph/csr.h"
#include "graph/degree_stats.h"
#include "graph/io.h"
#include "graph/relabel.h"
#include "ibfs/groupby.h"
#include "ibfs/runner.h"
#include "ibfs/trace.h"
#include "util/status.h"

#endif  // IBFS_IBFS_H_
