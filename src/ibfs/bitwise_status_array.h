#ifndef IBFS_IBFS_BITWISE_STATUS_ARRAY_H_
#define IBFS_IBFS_BITWISE_STATUS_ARRAY_H_

#include <cstdint>
#include <span>
#include <vector>

#include "graph/csr.h"
#include "util/bitops.h"

namespace ibfs {

/// Bitwise Status Array (Section 6): one *bit* per (vertex, instance),
/// packed into 64-bit words. Bit j of vertex v's row is 1 iff instance j
/// has visited v — cumulatively, across all levels. That cumulative record
/// is what enables bottom-up early termination (all bits set => stop
/// scanning neighbors), the key difference from MS-BFS which resets its bit
/// array every level.
///
/// With N instances a row is ceil(N/64) words, so inspecting a vertex for
/// the whole group costs one thread a handful of word ops instead of N
/// byte probes — the paper's 11x.
class BitwiseStatusArray {
 public:
  BitwiseStatusArray(int64_t vertex_count, int instance_count);

  int64_t vertex_count() const { return vertex_count_; }
  int instance_count() const { return instance_count_; }
  /// Words per vertex row: ceil(instance_count / 64).
  int words_per_vertex() const { return words_; }

  bool TestBit(graph::VertexId v, int j) const {
    return ibfs::TestBit(data_[RowOffset(v) + j / 64], j % 64);
  }

  void SetBit(graph::VertexId v, int j) {
    data_[RowOffset(v) + j / 64] |= Bit(j % 64);
  }

  /// The vertex's packed row.
  std::span<const uint64_t> Row(graph::VertexId v) const {
    return {data_.data() + RowOffset(v), static_cast<size_t>(words_)};
  }

  /// The whole array as a flat word sequence (vertex v's row occupies
  /// words [v*words_per_vertex, (v+1)*words_per_vertex)) — lets the fused
  /// frontier sweep scan without materializing per-row spans.
  std::span<const uint64_t> Words() const { return data_; }
  std::span<uint64_t> MutableWords() { return data_; }
  std::span<uint64_t> MutableRow(graph::VertexId v) {
    return {data_.data() + RowOffset(v), static_cast<size_t>(words_)};
  }

  /// ORs `src`'s row into `v`'s row (Algorithm 1's inspection step);
  /// returns true if any bit changed.
  bool OrRowFrom(graph::VertexId v, const BitwiseStatusArray& src,
                 graph::VertexId src_vertex);

  /// True iff every instance has visited `v` (the early-termination test);
  /// bits beyond instance_count are masked off.
  bool RowAllSet(graph::VertexId v) const;

  /// True iff no instance has visited `v`.
  bool RowAllClear(graph::VertexId v) const;

  /// Number of set bits in `v`'s row.
  int RowPopCount(graph::VertexId v) const;

  /// Copies all rows from `other` (the per-level BSA_{k+1} <- BSA_k copy).
  void CopyFrom(const BitwiseStatusArray& other);

  /// Word element index of (v, word) for transaction accounting.
  int64_t ElementIndex(graph::VertexId v, int word) const {
    return RowOffset(v) + word;
  }

  int64_t StorageBytes() const {
    return static_cast<int64_t>(data_.size() * sizeof(uint64_t));
  }

  /// Mask of valid bits in the last word of a row.
  uint64_t LastWordMask() const { return last_word_mask_; }

 private:
  int64_t RowOffset(graph::VertexId v) const {
    return static_cast<int64_t>(v) * words_;
  }

  int64_t vertex_count_;
  int instance_count_;
  int words_;
  uint64_t last_word_mask_;
  std::vector<uint64_t> data_;
};

}  // namespace ibfs

#endif  // IBFS_IBFS_BITWISE_STATUS_ARRAY_H_
