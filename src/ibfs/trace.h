#ifndef IBFS_IBFS_TRACE_H_
#define IBFS_IBFS_TRACE_H_

#include <cstdint>
#include <vector>

#include "util/stats_math.h"

namespace ibfs {

/// Per-level record of one group traversal.
struct LevelTrace {
  int level = 0;
  bool bottom_up = false;
  /// Entries in the joint frontier queue at this level (shared frontiers
  /// appear once). For private-queue strategies this equals the union size.
  int64_t jfq_size = 0;
  /// Sum over instances of their private frontier counts at this level
  /// (shared frontiers counted once per instance) — the numerator of Eq. 1.
  int64_t private_fq_sum = 0;
  /// Neighbor checks performed at this level across all instances.
  int64_t edges_inspected = 0;
  /// (vertex, instance) pairs newly visited at this level.
  int64_t new_visits = 0;
};

/// Trace of one group's traversal: levels, per-instance counters, and the
/// sharing statistics of Section 5.1.
struct GroupTrace {
  int instance_count = 0;
  std::vector<LevelTrace> levels;
  /// Per-instance bottom-up inspection totals.
  std::vector<int64_t> bottom_up_inspections_per_instance;
  /// Distribution of bottom-up parent-search lengths: for each (frontier,
  /// instance) search, how many neighbors were scanned before a parent was
  /// found (or the full in-degree when none was). Figure 11 reports this
  /// distribution's standard deviation — GroupBy shrinks it because
  /// grouped instances discover shared parents at similar positions
  /// (Section 5.3).
  RunningStats bottom_up_search_lengths;
  /// Simulated seconds spent on this group.
  double sim_seconds = 0.0;

  /// Sharing Degree, Eq. (1): SD = (sum_k sum_j |FQ_j(k)|) / (sum_k |JFQ(k)|).
  /// On average, each joint frontier is shared by SD instances.
  double SharingDegree() const;

  /// SD divided by the instance count: the fraction of instances sharing an
  /// average joint frontier (Figures 2 and 9 report this as a percentage).
  double SharingRatio() const;

  /// Sharing degree restricted to one direction's levels.
  double DirectionSharingDegree(bool bottom_up) const;
  /// Sharing ratio restricted to one direction's levels.
  double DirectionSharingRatio(bool bottom_up) const;

  /// Sharing degree at a single level (Figure 6's per-level trend);
  /// returns 0 when the level was not traversed.
  double LevelSharingDegree(int level) const;

  /// Total edges inspected (all levels, all instances).
  int64_t TotalInspections() const;
};

}  // namespace ibfs

#endif  // IBFS_IBFS_TRACE_H_
