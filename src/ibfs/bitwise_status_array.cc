#include "ibfs/bitwise_status_array.h"

#include "util/logging.h"

namespace ibfs {

BitwiseStatusArray::BitwiseStatusArray(int64_t vertex_count,
                                       int instance_count)
    : vertex_count_(vertex_count),
      instance_count_(instance_count),
      words_(static_cast<int>(CeilDiv(static_cast<uint64_t>(instance_count),
                                      64))) {
  IBFS_CHECK(vertex_count > 0);
  IBFS_CHECK(instance_count > 0);
  const int rem = instance_count_ % 64;
  last_word_mask_ = rem == 0 ? ~uint64_t{0} : LowMask(rem);
  data_.assign(static_cast<size_t>(vertex_count) * words_, 0);
}

bool BitwiseStatusArray::OrRowFrom(graph::VertexId v,
                                   const BitwiseStatusArray& src,
                                   graph::VertexId src_vertex) {
  uint64_t* dst = data_.data() + RowOffset(v);
  const uint64_t* from = src.data_.data() + src.RowOffset(src_vertex);
  bool changed = false;
  for (int w = 0; w < words_; ++w) {
    const uint64_t updated = dst[w] | from[w];
    changed |= updated != dst[w];
    dst[w] = updated;
  }
  return changed;
}

bool BitwiseStatusArray::RowAllSet(graph::VertexId v) const {
  const uint64_t* row = data_.data() + RowOffset(v);
  for (int w = 0; w + 1 < words_; ++w) {
    if (row[w] != ~uint64_t{0}) return false;
  }
  return (row[words_ - 1] & last_word_mask_) == last_word_mask_;
}

bool BitwiseStatusArray::RowAllClear(graph::VertexId v) const {
  const uint64_t* row = data_.data() + RowOffset(v);
  for (int w = 0; w < words_; ++w) {
    if (row[w] != 0) return false;
  }
  return true;
}

int BitwiseStatusArray::RowPopCount(graph::VertexId v) const {
  const uint64_t* row = data_.data() + RowOffset(v);
  int count = 0;
  for (int w = 0; w < words_; ++w) count += PopCount(row[w]);
  return count;
}

void BitwiseStatusArray::CopyFrom(const BitwiseStatusArray& other) {
  IBFS_CHECK(other.vertex_count_ == vertex_count_);
  IBFS_CHECK(other.instance_count_ == instance_count_);
  data_ = other.data_;
}

}  // namespace ibfs
