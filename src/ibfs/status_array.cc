#include "ibfs/status_array.h"

#include "util/logging.h"

namespace ibfs {

JointStatusArray::JointStatusArray(int64_t vertex_count, int instance_count)
    : vertex_count_(vertex_count), instance_count_(instance_count) {
  IBFS_CHECK(vertex_count > 0);
  IBFS_CHECK(instance_count > 0);
  data_.assign(static_cast<size_t>(vertex_count) * instance_count,
               kUnvisitedDepth);
}

}  // namespace ibfs
