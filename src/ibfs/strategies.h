#ifndef IBFS_IBFS_STRATEGIES_H_
#define IBFS_IBFS_STRATEGIES_H_

#include <span>

#include "gpusim/device.h"
#include "graph/csr.h"
#include "ibfs/runner.h"

namespace ibfs::internal_strategies {

/// Per-strategy group runners behind RunGroup(). Inputs are validated by
/// the dispatcher; each runner may assume sources are in range and the
/// group is non-empty.

Result<GroupResult> RunSequentialGroup(const graph::Csr& graph,
                                       std::span<const graph::VertexId> sources,
                                       const TraversalOptions& options,
                                       gpusim::Device* device);

Result<GroupResult> RunNaiveGroup(const graph::Csr& graph,
                                  std::span<const graph::VertexId> sources,
                                  const TraversalOptions& options,
                                  gpusim::Device* device);

Result<GroupResult> RunJointGroup(const graph::Csr& graph,
                                  std::span<const graph::VertexId> sources,
                                  const TraversalOptions& options,
                                  gpusim::Device* device);

Result<GroupResult> RunBitwiseGroup(const graph::Csr& graph,
                                    std::span<const graph::VertexId> sources,
                                    const TraversalOptions& options,
                                    gpusim::Device* device);

}  // namespace ibfs::internal_strategies

#endif  // IBFS_IBFS_STRATEGIES_H_
