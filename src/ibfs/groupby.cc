#include "ibfs/groupby.h"

#include <algorithm>
#include <map>
#include <vector>

#include "util/prng.h"

namespace ibfs {
namespace {

using graph::VertexId;

void ChunkInto(std::span<const VertexId> sources, int group_size,
               std::vector<std::vector<VertexId>>* groups) {
  for (size_t i = 0; i < sources.size(); i += group_size) {
    const size_t end = std::min(sources.size(), i + group_size);
    groups->emplace_back(sources.begin() + i, sources.begin() + end);
  }
}

}  // namespace

Grouping GroupByOutdegree(const graph::Csr& graph,
                          std::span<const graph::VertexId> sources,
                          const GroupByParams& params) {
  Grouping result;
  const int group_size = std::max(1, params.group_size);

  // Rule 2 bucket key: a common vertex with outdegree > q among a source's
  // out-neighbors. Sources sharing a hub will share that hub as a frontier
  // within the first levels, which by Theorem 1 keeps their sharing ratio
  // high at later levels. Among qualifying neighbors we bucket on the
  // best-connected one: its (large) neighborhood becomes the group's
  // shared level-2 frontier. A q above every outdegree matches no one
  // (Figure 8's right end) and the rules fall back to random grouping.
  // Bound on neighbor-of-neighbor probes per source for depth-2 search,
  // keeping the grouping pass linear-ish even around mega-hubs.
  constexpr int64_t kTwoHopScanLimit = 64;
  auto find_hub = [&](VertexId s) -> int64_t {
    int64_t hub = -1;
    int64_t hub_degree = 0;
    auto consider = [&](VertexId w) {
      const int64_t d = graph.OutDegree(w);
      if (d > params.q && d > hub_degree) {
        hub = static_cast<int64_t>(w);
        hub_degree = d;
      }
    };
    for (VertexId w : graph.OutNeighbors(s)) consider(w);
    if (hub < 0 && params.hub_search_depth >= 2) {
      int64_t scanned = 0;
      for (VertexId w : graph.OutNeighbors(s)) {
        for (VertexId x : graph.OutNeighbors(w)) {
          consider(x);
          if (++scanned >= kTwoHopScanLimit) break;
        }
        if (scanned >= kTwoHopScanLimit) break;
      }
    }
    return hub;
  };

  // p ascending: smaller-degree sources are grouped first so that high
  // outdegrees at the source do not dilute the shared hub's contribution
  // (Rule 1's rationale).
  std::vector<int64_t> p_seq = params.p_sequence;
  std::sort(p_seq.begin(), p_seq.end());

  // Buckets are keyed by hub alone: the paper combines the small per-p
  // groups of one hub ("several small groups, likely using different
  // values of p, will be combined and run together"). Sources are placed
  // in ascending-p order, so within a bucket low-degree sources — whose
  // non-shared edges dilute the hub's contribution least — group first.
  std::map<int64_t, std::vector<VertexId>> buckets;
  std::vector<VertexId> leftovers;
  for (size_t pi = 0; pi < p_seq.size(); ++pi) {
    const int64_t p = p_seq[pi];
    const int64_t prev_p = pi == 0 ? -1 : p_seq[pi - 1];
    for (VertexId s : sources) {
      const int64_t outdeg = graph.OutDegree(s);
      if (outdeg >= p || outdeg < prev_p) continue;  // other p's band
      const int64_t hub = find_hub(s);
      if (hub >= 0) {
        buckets[hub].push_back(s);
        ++result.rule_matched;
      } else {
        leftovers.push_back(s);
      }
    }
  }
  // Sources failing Rule 1 entirely (outdegree >= every p).
  for (VertexId s : sources) {
    if (graph.OutDegree(s) >= p_seq.back()) leftovers.push_back(s);
  }

  // Uniform-graph fallback (the paper's RD rule): no hubs exist, so group
  // sources that share a common neighbor instead.
  if (buckets.empty() && params.uniform_fallback) {
    std::vector<VertexId> still_left;
    for (VertexId s : leftovers) {
      const auto neighbors = graph.OutNeighbors(s);
      if (!neighbors.empty()) {
        buckets[static_cast<int64_t>(neighbors.front())].push_back(s);
        ++result.rule_matched;
      } else {
        still_left.push_back(s);
      }
    }
    leftovers.swap(still_left);
  }

  // Emit full groups per bucket; combine the sub-N tails of different
  // buckets (the paper: "several small groups, likely using different
  // values of p, will be combined and run together", then across hubs).
  std::vector<VertexId> tail_pool;
  for (auto& [key, members] : buckets) {
    size_t i = 0;
    for (; i + group_size <= members.size(); i += group_size) {
      result.groups.emplace_back(members.begin() + i,
                                 members.begin() + i + group_size);
      result.group_hubs.push_back(key);
    }
    tail_pool.insert(tail_pool.end(), members.begin() + i, members.end());
  }

  // Rule-failing leftovers are shuffled and appended behind the bucket
  // tails, then everything is chunked in one pass so at most one group
  // ends up smaller than N.
  if (!leftovers.empty()) {
    Prng prng(params.seed);
    for (size_t i = leftovers.size(); i > 1; --i) {
      std::swap(leftovers[i - 1], leftovers[prng.NextBounded(i)]);
    }
    tail_pool.insert(tail_pool.end(), leftovers.begin(), leftovers.end());
  }
  ChunkInto(tail_pool, group_size, &result.groups);
  result.group_hubs.resize(result.groups.size(), -1);
  return result;
}

Grouping RandomGrouping(std::span<const graph::VertexId> sources,
                        int group_size, uint64_t seed) {
  Grouping result;
  std::vector<VertexId> shuffled(sources.begin(), sources.end());
  Prng prng(seed);
  for (size_t i = shuffled.size(); i > 1; --i) {
    std::swap(shuffled[i - 1], shuffled[prng.NextBounded(i)]);
  }
  ChunkInto(shuffled, std::max(1, group_size), &result.groups);
  result.group_hubs.assign(result.groups.size(), -1);
  return result;
}

Grouping ChunkGrouping(std::span<const graph::VertexId> sources,
                       int group_size) {
  Grouping result;
  ChunkInto(sources, std::max(1, group_size), &result.groups);
  result.group_hubs.assign(result.groups.size(), -1);
  return result;
}

}  // namespace ibfs
