#ifndef IBFS_IBFS_FRONTIER_QUEUE_H_
#define IBFS_IBFS_FRONTIER_QUEUE_H_

#include <cstdint>
#include <span>
#include <vector>

#include "graph/csr.h"

namespace ibfs {

/// Frontier queue: the vertices to expand at the next level. Used both as a
/// per-instance private queue and as the Joint Frontier Queue (Section 4),
/// where a vertex that is a frontier for several instances appears exactly
/// once — which is why the JFQ needs at most |V| slots while private queues
/// need i x |V| in aggregate.
class FrontierQueue {
 public:
  FrontierQueue() = default;

  void Clear() { vertices_.clear(); }

  /// Appends a frontier; callers guarantee enqueue-once semantics (the
  /// kernels elect a single enqueuing thread via warp votes).
  void Push(graph::VertexId v) { vertices_.push_back(v); }

  int64_t size() const { return static_cast<int64_t>(vertices_.size()); }
  bool empty() const { return vertices_.empty(); }

  std::span<const graph::VertexId> vertices() const { return vertices_; }

  void Reserve(int64_t n) { vertices_.reserve(static_cast<size_t>(n)); }

  /// Swaps contents with `other` (double-buffering across levels).
  void Swap(FrontierQueue& other) { vertices_.swap(other.vertices_); }

 private:
  std::vector<graph::VertexId> vertices_;
};

}  // namespace ibfs

#endif  // IBFS_IBFS_FRONTIER_QUEUE_H_
