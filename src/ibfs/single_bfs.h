#ifndef IBFS_IBFS_SINGLE_BFS_H_
#define IBFS_IBFS_SINGLE_BFS_H_

#include <cstdint>
#include <vector>

#include "gpusim/device.h"
#include "graph/csr.h"
#include "ibfs/frontier_queue.h"
#include "ibfs/runner.h"
#include "ibfs/status_array.h"

namespace ibfs {

/// State of one direction-optimizing BFS instance with private data
/// structures — the per-instance building block of the sequential and naive
/// concurrent strategies (and the B40C-like baseline). Mirrors the
/// Enterprise-style single BFS the paper builds on: top-down levels switch
/// to bottom-up by Beamer's heuristic, and every level performs expansion,
/// inspection, and frontier-queue generation.
class SingleBfs {
 public:
  /// Initializes a BFS from `source`. The graph must outlive this object.
  SingleBfs(const graph::Csr& graph, graph::VertexId source,
            const TraversalOptions& options);

  /// True once the traversal can make no further progress (or max_level
  /// was reached).
  bool finished() const { return finished_; }

  int level() const { return level_; }
  bool bottom_up() const { return bottom_up_; }

  /// Frontier count for the upcoming level.
  int64_t frontier_size() const { return frontier_.size(); }

  /// Runs expansion + inspection for the current level, charging memory
  /// traffic and compute to `scope`. Returns (vertex) visits made.
  int64_t RunLevel(gpusim::KernelScope* scope);

  /// Scans the status array to build the next level's frontier queue
  /// (charged to `scope`), updates the traversal direction, and advances
  /// the level counter.
  void GenerateNextFrontier(gpusim::KernelScope* scope);

  /// Depths after (or during) traversal; kUnvisitedDepth when unreached.
  const std::vector<uint8_t>& depths() const { return depths_; }
  std::vector<uint8_t> TakeDepths() { return std::move(depths_); }

  /// BFS-tree parents (kInvalidVertex when unreached; the source is its
  /// own parent). Maintained alongside the depths at one extra store per
  /// discovery.
  const std::vector<graph::VertexId>& parents() const { return parents_; }
  std::vector<graph::VertexId> TakeParents() { return std::move(parents_); }

  /// Neighbor checks performed during bottom-up levels (Figure 11 metric).
  int64_t bottom_up_inspections() const { return bu_inspections_; }
  /// Neighbor checks performed over the whole traversal.
  int64_t total_inspections() const { return total_inspections_; }

 private:
  void UpdateDirection();

  const graph::Csr& graph_;
  TraversalOptions options_;
  std::vector<uint8_t> depths_;
  std::vector<graph::VertexId> parents_;
  FrontierQueue frontier_;
  int level_ = 1;          // level being discovered by the next RunLevel
  bool bottom_up_ = false;
  bool finished_ = false;
  int64_t visited_count_ = 0;
  int64_t frontier_edges_ = 0;    // sum of outdegrees of current frontier
  int64_t unexplored_edges_ = 0;  // sum of outdegrees of unvisited vertices
  int64_t last_new_visits_ = 0;
  int64_t bu_inspections_ = 0;
  int64_t total_inspections_ = 0;
};

}  // namespace ibfs

#endif  // IBFS_IBFS_SINGLE_BFS_H_
