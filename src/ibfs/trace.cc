#include "ibfs/trace.h"

namespace ibfs {

double GroupTrace::SharingDegree() const {
  int64_t private_sum = 0;
  int64_t joint_sum = 0;
  for (const LevelTrace& lt : levels) {
    private_sum += lt.private_fq_sum;
    joint_sum += lt.jfq_size;
  }
  if (joint_sum == 0) return 0.0;
  return static_cast<double>(private_sum) / static_cast<double>(joint_sum);
}

double GroupTrace::SharingRatio() const {
  if (instance_count == 0) return 0.0;
  return SharingDegree() / static_cast<double>(instance_count);
}

double GroupTrace::DirectionSharingDegree(bool bottom_up) const {
  int64_t private_sum = 0;
  int64_t joint_sum = 0;
  for (const LevelTrace& lt : levels) {
    if (lt.bottom_up != bottom_up) continue;
    private_sum += lt.private_fq_sum;
    joint_sum += lt.jfq_size;
  }
  if (joint_sum == 0) return 0.0;
  return static_cast<double>(private_sum) / static_cast<double>(joint_sum);
}

double GroupTrace::DirectionSharingRatio(bool bottom_up) const {
  if (instance_count == 0) return 0.0;
  return DirectionSharingDegree(bottom_up) /
         static_cast<double>(instance_count);
}

double GroupTrace::LevelSharingDegree(int level) const {
  for (const LevelTrace& lt : levels) {
    if (lt.level == level && lt.jfq_size > 0) {
      return static_cast<double>(lt.private_fq_sum) /
             static_cast<double>(lt.jfq_size);
    }
  }
  return 0.0;
}

int64_t GroupTrace::TotalInspections() const {
  int64_t total = 0;
  for (const LevelTrace& lt : levels) total += lt.edges_inspected;
  return total;
}

}  // namespace ibfs
