#ifndef IBFS_IBFS_GROUPBY_H_
#define IBFS_IBFS_GROUPBY_H_

#include <cstdint>
#include <span>
#include <vector>

#include "graph/csr.h"

namespace ibfs {

/// Parameters for the outdegree-based GroupBy rules (Section 5.2):
///   Rule 1 — the source's outdegree is less than p;
///   Rule 2 — sources in a group connect to a common vertex whose
///            outdegree is greater than q.
struct GroupByParams {
  /// p candidates tried in ascending order (the paper's 4, 16, 64, 128).
  std::vector<int64_t> p_sequence = {4, 16, 64, 128};
  /// Hub threshold. The paper defaults to 128 on graphs of 10^6..10^7
  /// vertices; the scaled presets default lower (Figure 8 sweeps this).
  int64_t q = 32;
  /// Maximum group size N (bounded by device memory, Section 3).
  int group_size = 128;
  /// Seed for the random placement of rule-failing leftovers.
  uint64_t seed = 7;
  /// How many hops from the source to search for a qualifying hub. The
  /// paper: "It is not required that the source vertex directly connects
  /// to a high-outdegree vertex, as long as within the first several
  /// levels." Depth 1 = direct neighbors only; depth 2 also considers
  /// neighbors-of-neighbors (bounded scan, see kTwoHopScanLimit).
  int hub_search_depth = 1;
  /// Fallback for uniform-outdegree graphs (the paper's RD rule): when no
  /// vertex exceeds q, group sources that share a low-id common neighbor.
  bool uniform_fallback = true;
};

/// A grouping of BFS sources into concurrently-executed batches.
struct Grouping {
  std::vector<std::vector<graph::VertexId>> groups;
  /// Sources placed via Rules 1+2 (the rest were grouped randomly).
  int64_t rule_matched = 0;
  /// Parallel to `groups`: the hub vertex each group was bucketed on, or
  /// -1 when the group was formed without a hub (random / in-order /
  /// combined leftover tails). Feeds the run report's grouping-decision
  /// section.
  std::vector<int64_t> group_hubs;
};

/// Applies the GroupBy rules: sources with outdegree < p that reach a
/// common hub (outdegree > q) are batched together; groups are padded and
/// merged to size `group_size`; leftovers are grouped randomly.
Grouping GroupByOutdegree(const graph::Csr& graph,
                          std::span<const graph::VertexId> sources,
                          const GroupByParams& params);

/// Random grouping baseline (shuffle, then chunk into `group_size`).
Grouping RandomGrouping(std::span<const graph::VertexId> sources,
                        int group_size, uint64_t seed);

/// In-order chunking (no shuffle); the "as given" policy.
Grouping ChunkGrouping(std::span<const graph::VertexId> sources,
                       int group_size);

}  // namespace ibfs

#endif  // IBFS_IBFS_GROUPBY_H_
