#ifndef IBFS_IBFS_STATUS_ARRAY_H_
#define IBFS_IBFS_STATUS_ARRAY_H_

#include <cstdint>
#include <span>
#include <vector>

#include "graph/csr.h"

namespace ibfs {

/// Depth value meaning "unvisited" in a status array.
inline constexpr uint8_t kUnvisitedDepth = 0xFF;

/// Maximum representable BFS depth (one byte per status, as in the paper's
/// JSA where four bytes serve four instances — Figure 4).
inline constexpr int kMaxDepth = 0xFE;

/// Joint Status Array (Section 4): per-vertex statuses of all instances of
/// a group stored contiguously, so that the N contiguous threads inspecting
/// one vertex coalesce into ceil(N/128) global transactions instead of N.
///
/// A status is the vertex's BFS depth, or kUnvisitedDepth. "Frontier" is a
/// per-level predicate (depth == level-1 for top-down; unvisited for
/// bottom-up), exactly as the paper's F/U/depth markings.
///
/// With instance_count() == 1 this doubles as the private status array of a
/// single BFS.
class JointStatusArray {
 public:
  /// Creates an all-unvisited array for `vertex_count` vertices and
  /// `instance_count` concurrent BFS instances.
  JointStatusArray(int64_t vertex_count, int instance_count);

  int64_t vertex_count() const { return vertex_count_; }
  int instance_count() const { return instance_count_; }

  /// Depth of `v` in instance `j`, or kUnvisitedDepth.
  uint8_t Depth(graph::VertexId v, int j) const {
    return data_[RowOffset(v) + j];
  }

  void SetDepth(graph::VertexId v, int j, uint8_t depth) {
    data_[RowOffset(v) + j] = depth;
  }

  bool IsVisited(graph::VertexId v, int j) const {
    return Depth(v, j) != kUnvisitedDepth;
  }

  /// The contiguous status row of one vertex (the unit the simulator's
  /// coalescing model charges as ceil(N / 128) transactions).
  std::span<const uint8_t> Row(graph::VertexId v) const {
    return {data_.data() + RowOffset(v), static_cast<size_t>(instance_count_)};
  }
  std::span<uint8_t> MutableRow(graph::VertexId v) {
    return {data_.data() + RowOffset(v), static_cast<size_t>(instance_count_)};
  }

  /// Element index of (v, j) in the flat array, used for address-level
  /// transaction accounting.
  int64_t ElementIndex(graph::VertexId v, int j) const {
    return RowOffset(v) + j;
  }

  /// Bytes of device memory the array occupies (the |SA| term of the
  /// group-size bound in Section 3).
  int64_t StorageBytes() const { return static_cast<int64_t>(data_.size()); }

 private:
  int64_t RowOffset(graph::VertexId v) const {
    return static_cast<int64_t>(v) * instance_count_;
  }

  int64_t vertex_count_;
  int instance_count_;
  std::vector<uint8_t> data_;
};

}  // namespace ibfs

#endif  // IBFS_IBFS_STATUS_ARRAY_H_
