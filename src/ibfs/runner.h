#ifndef IBFS_IBFS_RUNNER_H_
#define IBFS_IBFS_RUNNER_H_

#include <cstdint>
#include <span>
#include <vector>

#include "gpusim/device.h"
#include "graph/csr.h"
#include "ibfs/trace.h"
#include "obs/trace.h"
#include "util/status.h"

namespace ibfs {

/// The execution strategies evaluated in Figure 15, in increasing order of
/// sophistication.
enum class Strategy {
  /// Run every instance's BFS back to back (state-of-the-art single BFS).
  kSequential,
  /// All instances in flight at once as independent kernels (Hyper-Q), with
  /// private queues/status arrays and no sharing.
  kNaiveConcurrent,
  /// Single kernel, Joint Frontier Queue + Joint Status Array (Section 4).
  kJointTraversal,
  /// Joint traversal with the Bitwise Status Array (Section 6).
  kBitwise,
};

/// Returns a short display name ("sequential", "bitwise", ...).
const char* StrategyName(Strategy strategy);

/// Knobs shared by all strategies. Defaults reproduce the paper's system;
/// the non-default settings exist for baselines and ablation benches.
struct TraversalOptions {
  /// Stop after this many levels (Table 1's k-hop reachability truncation).
  int max_level = kMaxTraversalLevel;

  /// Bottom-up early termination for the bitwise strategy (Section 6).
  /// Disabling reproduces the MS-BFS-style baseline of Figure 20.
  bool early_termination = true;

  /// MS-BFS resets its bit array each level instead of accumulating
  /// visited bits; enabling adds that per-level reset traffic and disables
  /// the cumulative-row early-termination test.
  bool msbfs_reset = false;

  /// Shared-memory adjacency cache: load each joint frontier's neighbor
  /// list from global memory once for all instances (Section 4).
  bool adjacency_cache = true;

  /// Per-CTA shared-memory footprint of the cache (a tile of neighbor
  /// ids). Larger tiles amortize more reloads but cost occupancy — the
  /// simulator's occupancy model kicks in past ~24 KiB per CTA.
  int64_t cache_tile_bytes = 8192;

  /// Record per-(vertex, instance) discovery depths (the traversal result).
  /// All strategies pay the same coalesced store cost for it.
  bool record_depths = true;

  /// Also record BFS parent trees (GroupResult::parents). Supported by the
  /// per-instance strategies (sequential, naive); the joint/bitwise
  /// kernels, like the paper's, output depths only — parent attribution
  /// would cost i x |V| extra words of device memory.
  bool record_parents = false;

  /// Collect per-instance private frontier counts and bottom-up inspection
  /// counts (needed by Figures 2, 6, 9, 11; costs host time, not simulated
  /// time).
  bool collect_instance_stats = true;

  /// Direction-optimizing switch parameters (Beamer-style, as Enterprise):
  /// go bottom-up when frontier-edges > unexplored-edges / alpha; return to
  /// top-down when the frontier shrinks below |V| / beta per instance.
  double alpha = 14.0;
  double beta = 24.0;

  /// Never switch to bottom-up (the SpMM-BC-like baseline of Figure 22
  /// "does not support bottom-up BFS").
  bool force_top_down = false;

  /// Telemetry sinks (non-owning). When the tracer is set, runners emit a
  /// span per traversal level plus direction-switch markers; when the
  /// metrics registry is set, they bump engine.* counters/histograms.
  /// Default = disabled; the per-level cost is then a null check.
  obs::Observer observer;

  static constexpr int kMaxTraversalLevel = 0xFE;
};

/// Result of traversing one group of BFS instances.
struct GroupResult {
  /// depths[j][v] = BFS depth of vertex v from source j, or kUnvisitedDepth.
  std::vector<std::vector<uint8_t>> depths;
  /// parents[j][v] = BFS-tree parent of v in instance j (kInvalidVertex
  /// when unreached; the source is its own parent). Only populated when
  /// TraversalOptions::record_parents is set on a supporting strategy.
  std::vector<std::vector<graph::VertexId>> parents;
  GroupTrace trace;
};

/// Runs one group of concurrent BFS instances (all `sources` together)
/// under the given strategy, charging simulated work to `device`.
/// Group size is limited only by memory accounting fidelity; the paper's
/// hardware bound is modeled by Engine::MaxGroupSize.
Result<GroupResult> RunGroup(Strategy strategy, const graph::Csr& graph,
                             std::span<const graph::VertexId> sources,
                             const TraversalOptions& options,
                             gpusim::Device* device);

}  // namespace ibfs

#endif  // IBFS_IBFS_RUNNER_H_
