#include <algorithm>
#include <memory>
#include <vector>

#include "gpusim/warp.h"
#include "ibfs/frontier_queue.h"
#include "ibfs/level_observer.h"
#include "ibfs/status_array.h"
#include "ibfs/strategies.h"

namespace ibfs::internal_strategies {
namespace {

using graph::VertexId;

// Neighbors per schedulable top-down expansion item (Enterprise-style
// parallel expansion of high-degree frontiers).
constexpr int64_t kExpandChunk = 256;

// Joint-traversal runner state (Section 4): one kernel per level over a
// Joint Frontier Queue, with the Joint Status Array providing coalesced
// per-vertex status rows.
class JointRunner {
 public:
  JointRunner(const graph::Csr& graph,
              std::span<const graph::VertexId> sources,
              const TraversalOptions& options, gpusim::Device* device)
      : graph_(graph),
        options_(options),
        device_(device),
        n_(static_cast<int>(sources.size())),
        jsa_(graph.vertex_count(), n_),
        sources_(sources.begin(), sources.end()),
        bu_inspections_per_instance_(n_, 0) {}

  GroupResult Run();

 private:
  void InitSources();
  // Expansion + inspection over the JFQ for the current level.
  int64_t RunTopDownLevel(gpusim::KernelScope* scope);
  int64_t RunBottomUpLevel(gpusim::KernelScope* scope);
  // Scans the JSA, chooses the next direction, and rebuilds the JFQ.
  void GenerateFrontier(gpusim::KernelScope* scope);
  void ChooseDirection();

  const graph::Csr& graph_;
  const TraversalOptions& options_;
  gpusim::Device* device_;
  const int n_;
  JointStatusArray jsa_;
  std::vector<VertexId> sources_;
  FrontierQueue jfq_;
  GroupTrace trace_;
  std::vector<int64_t> bu_inspections_per_instance_;

  int level_ = 1;
  bool bottom_up_ = false;
  bool finished_ = false;
  int64_t level_new_visits_ = 0;
  int64_t level_inspections_ = 0;
  // Pending stats computed by the previous GenerateFrontier for the level
  // about to run.
  int64_t pending_private_fq_sum_ = 0;
  // Direction-heuristic accumulators (summed over all instances).
  int64_t td_frontier_edges_ = 0;
  int64_t unexplored_edges_ = 0;
  int64_t visited_pairs_ = 0;
};

void JointRunner::InitSources() {
  const int64_t e = graph_.edge_count();
  unexplored_edges_ = static_cast<int64_t>(n_) * e;
  for (int j = 0; j < n_; ++j) {
    const VertexId s = sources_[j];
    if (!jsa_.IsVisited(s, j)) {
      // A vertex may serve as source for several instances; enqueue once.
      bool already_queued = false;
      for (VertexId q : jfq_.vertices()) already_queued |= (q == s);
      if (!already_queued) jfq_.Push(s);
    }
    jsa_.SetDepth(s, j, 0);
    td_frontier_edges_ += graph_.OutDegree(s);
    unexplored_edges_ -= graph_.OutDegree(s);
    ++visited_pairs_;
  }
  pending_private_fq_sum_ = n_;
}

int64_t JointRunner::RunTopDownLevel(gpusim::KernelScope* scope) {
  int64_t new_visits = 0;
  if (options_.adjacency_cache) {
    scope->SetCtaSharedBytes(options_.cache_tile_bytes);
  }
  std::vector<int> active;
  active.reserve(n_);
  for (VertexId f : jfq_.vertices()) {
    scope->BeginItem();
    // All N contiguous threads read the frontier's status row: coalesced.
    scope->LoadContiguous(jsa_.ElementIndex(f, 0), n_, 1);
    active.clear();
    const auto row_f = jsa_.Row(f);
    for (int j = 0; j < n_; ++j) {
      if (row_f[j] == static_cast<uint8_t>(level_ - 1)) active.push_back(j);
    }
    scope->Compute(n_);
    if (active.empty()) {
      scope->EndItem();
      continue;
    }

    const auto neighbors = graph_.OutNeighbors(f);
    // The adjacency list is loaded from global memory once and served to
    // every instance from the shared-memory cache (Section 4). Without the
    // cache, each instance's threads reload it.
    const int64_t adj_start = static_cast<int64_t>(graph_.row_offsets()[f]);
    const int64_t deg = static_cast<int64_t>(neighbors.size());
    if (options_.adjacency_cache) {
      scope->LoadContiguous(adj_start, deg, sizeof(VertexId));
      scope->SharedBytes(deg * static_cast<int64_t>(sizeof(VertexId)));
    } else {
      for (size_t rep = 0; rep < active.size(); ++rep) {
        scope->LoadContiguous(adj_start, deg, sizeof(VertexId));
      }
    }

    int64_t chunk_progress = 0;
    for (VertexId w : neighbors) {
      // Large frontiers are expanded by many thread groups in parallel
      // (Enterprise's workload classification); re-open the schedulable
      // item every kExpandChunk neighbors so a hub does not serialize.
      if (++chunk_progress > kExpandChunk) {
        scope->EndItem();
        scope->BeginItem();
        chunk_progress = 1;
      }
      // N contiguous threads inspect w's status row: one coalesced request.
      scope->LoadContiguous(jsa_.ElementIndex(w, 0), n_, 1);
      scope->Compute(2 * static_cast<int64_t>(active.size()));
      auto row_w = jsa_.MutableRow(w);
      bool any_update = false;
      for (int j : active) {
        ++level_inspections_;
        if (row_w[j] == kUnvisitedDepth) {
          row_w[j] = static_cast<uint8_t>(level_);
          any_update = true;
          ++new_visits;
          td_frontier_edges_ += graph_.OutDegree(w);
          unexplored_edges_ -= graph_.OutDegree(w);
        }
      }
      if (any_update) {
        // Updates from contiguous threads coalesce into one store request.
        scope->StoreContiguous(jsa_.ElementIndex(w, 0), n_, 1);
      }
    }
    scope->EndItem();
  }
  return new_visits;
}

int64_t JointRunner::RunBottomUpLevel(gpusim::KernelScope* scope) {
  int64_t new_visits = 0;
  if (options_.adjacency_cache) {
    scope->SetCtaSharedBytes(options_.cache_tile_bytes);
  }
  std::vector<int> active;
  active.reserve(n_);
  for (VertexId f : jfq_.vertices()) {
    scope->BeginItem();
    scope->LoadContiguous(jsa_.ElementIndex(f, 0), n_, 1);
    active.clear();
    auto row_f = jsa_.MutableRow(f);
    for (int j = 0; j < n_; ++j) {
      if (row_f[j] == kUnvisitedDepth) active.push_back(j);
    }
    scope->Compute(n_);

    const auto neighbors = graph_.InNeighbors(f);
    int64_t scanned = 0;
    bool any_update = false;
    for (VertexId w : neighbors) {
      // Each instance's thread exits as soon as it finds a parent; the
      // frontier is done when every instance has.
      if (active.empty()) break;
      ++scanned;
      scope->LoadContiguous(jsa_.ElementIndex(w, 0), n_, 1);
      scope->Compute(2 * static_cast<int64_t>(active.size()));
      const auto row_w = jsa_.Row(w);
      size_t i = 0;
      while (i < active.size()) {
        const int j = active[i];
        ++level_inspections_;
        if (options_.collect_instance_stats) {
          ++bu_inspections_per_instance_[j];
        }
        if (row_w[j] < static_cast<uint8_t>(level_)) {
          row_f[j] = static_cast<uint8_t>(level_);
          any_update = true;
          ++new_visits;
          td_frontier_edges_ += graph_.OutDegree(f);
          unexplored_edges_ -= graph_.OutDegree(f);
          if (options_.collect_instance_stats) {
            // Parent found after `scanned` probes: one sample of the
            // bottom-up search-length distribution (Figure 11).
            trace_.bottom_up_search_lengths.Add(
                static_cast<double>(scanned));
          }
          active[i] = active.back();
          active.pop_back();
        } else {
          ++i;
        }
      }
    }
    if (options_.collect_instance_stats) {
      // Searches that exhausted the neighbor list without finding a parent
      // also contribute their full scan length.
      for (size_t i = 0; i < active.size(); ++i) {
        trace_.bottom_up_search_lengths.Add(static_cast<double>(scanned));
      }
    }
    scope->LoadContiguous(static_cast<int64_t>(graph_.in_row_offsets()[f]),
                          scanned, sizeof(VertexId));
    if (options_.adjacency_cache) {
      scope->SharedBytes(scanned * static_cast<int64_t>(sizeof(VertexId)));
    }
    if (any_update) {
      scope->StoreContiguous(jsa_.ElementIndex(f, 0), n_, 1);
    }
    scope->EndItem();
  }
  return new_visits;
}

void JointRunner::ChooseDirection() {
  if (options_.force_top_down) {
    bottom_up_ = false;
    return;
  }
  const int64_t n_pairs =
      static_cast<int64_t>(n_) * graph_.vertex_count();
  if (!bottom_up_) {
    if (td_frontier_edges_ >
        static_cast<int64_t>(static_cast<double>(unexplored_edges_) /
                             options_.alpha)) {
      bottom_up_ = true;
    }
  } else {
    if (level_new_visits_ <
        static_cast<int64_t>(static_cast<double>(n_pairs) / options_.beta)) {
      bottom_up_ = false;
    }
  }
}

void JointRunner::GenerateFrontier(gpusim::KernelScope* scope) {
  visited_pairs_ += level_new_visits_;
  if (level_new_visits_ == 0 || level_ >= options_.max_level) {
    finished_ = true;
    jfq_.Clear();
    return;
  }
  // td_frontier_edges_ holds the outdegree sum of the pairs discovered at
  // the level that just ran (accumulated during inspection) — exactly the
  // candidate top-down frontier's edge count.
  ChooseDirection();

  const int64_t n_vertices = graph_.vertex_count();
  jfq_.Clear();
  int64_t private_sum = 0;
  std::unique_ptr<bool[]> lane_preds(new bool[n_]);
  const int next_level = level_ + 1;
  for (int64_t v = 0; v < n_vertices; ++v) {
    const auto vid = static_cast<VertexId>(v);
    // One warp scans each vertex's status row (Figure 4) and votes.
    scope->LoadContiguous(jsa_.ElementIndex(vid, 0), n_, 1);
    scope->Compute(n_);
    const auto row = jsa_.Row(vid);
    int hits = 0;
    for (int j = 0; j < n_; ++j) {
      const bool is_frontier =
          bottom_up_ ? row[j] == kUnvisitedDepth
                     : row[j] == static_cast<uint8_t>(next_level - 1);
      lane_preds[j] = is_frontier;
      if (is_frontier) ++hits;
    }
    // Warp vote (__any over 32-lane chunks): any instance claims v.
    bool any = false;
    for (int base = 0; base < n_; base += gpusim::kWarpSize) {
      const int chunk = std::min(gpusim::kWarpSize, n_ - base);
      any |= gpusim::Any({lane_preds.get() + base,
                          static_cast<size_t>(chunk)});
      if (any) break;
    }
    if (any) {
      jfq_.Push(vid);
      private_sum += hits;
    }
  }
  // Shared frontiers are enqueued exactly once: the store (and its atomic
  // cursor bump) happens per JFQ entry, not per instance — the saving of
  // Figure 18.
  scope->StoreContiguous(0, jfq_.size(), sizeof(VertexId));
  scope->Atomic((jfq_.size() + gpusim::kWarpSize - 1) / gpusim::kWarpSize);
  pending_private_fq_sum_ = private_sum;
  if (jfq_.empty()) finished_ = true;
  ++level_;
}

GroupResult JointRunner::Run() {
  InitSources();
  LevelObserver level_observer(options_.observer, device_);
  while (!finished_) {
    LevelTrace lt;
    lt.level = level_;
    lt.bottom_up = bottom_up_;
    lt.jfq_size = jfq_.size();
    lt.private_fq_sum = pending_private_fq_sum_;
    level_observer.LevelStart(lt.jfq_size);
    level_new_visits_ = 0;
    level_inspections_ = 0;
    // Accumulates the discovered pairs' outdegrees during this level only,
    // feeding the direction heuristic (kept identical to the bitwise
    // runner's so both take the same per-level decisions).
    td_frontier_edges_ = 0;
    {
      auto scope =
          device_->BeginKernel(bottom_up_ ? "bu_inspect" : "td_inspect");
      level_new_visits_ =
          bottom_up_ ? RunBottomUpLevel(&scope) : RunTopDownLevel(&scope);
    }
    {
      auto scope = device_->BeginKernel("fq_gen");
      GenerateFrontier(&scope);
    }
    lt.edges_inspected = level_inspections_;
    lt.new_visits = level_new_visits_;
    level_observer.LevelEnd(lt, bottom_up_, finished_);
    trace_.levels.push_back(lt);
  }

  GroupResult result;
  result.trace = std::move(trace_);
  result.trace.instance_count = n_;
  if (options_.collect_instance_stats) {
    result.trace.bottom_up_inspections_per_instance =
        std::move(bu_inspections_per_instance_);
  }
  if (options_.record_depths) {
    result.depths.assign(n_, {});
    for (int j = 0; j < n_; ++j) {
      auto& d = result.depths[j];
      d.resize(static_cast<size_t>(graph_.vertex_count()));
      for (int64_t v = 0; v < graph_.vertex_count(); ++v) {
        d[v] = jsa_.Depth(static_cast<VertexId>(v), j);
      }
    }
  }
  return result;
}

}  // namespace

Result<GroupResult> RunJointGroup(const graph::Csr& graph,
                                  std::span<const graph::VertexId> sources,
                                  const TraversalOptions& options,
                                  gpusim::Device* device) {
  JointRunner runner(graph, sources, options, device);
  return runner.Run();
}

}  // namespace ibfs::internal_strategies
