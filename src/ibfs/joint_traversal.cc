#include <algorithm>
#include <cstring>
#include <memory>
#include <vector>

#include "gpusim/warp.h"
#include "ibfs/frontier_queue.h"
#include "ibfs/level_observer.h"
#include "ibfs/status_array.h"
#include "ibfs/strategies.h"
#include "util/bitops.h"

namespace ibfs::internal_strategies {
namespace {

using graph::VertexId;

// Neighbors per schedulable top-down expansion item (Enterprise-style
// parallel expansion of high-degree frontiers).
constexpr int64_t kExpandChunk = 256;

// Bytes of `row[0..n)` equal to `target`, counted eight at a time with the
// exact SWAR zero-byte test (no false positives from borrow propagation).
// This is the frontier predicate of every JSA row scan; one word op per 8
// instances replaces 8 byte compares.
inline int CountEqualBytes(const uint8_t* row, int n, uint8_t target) {
  constexpr uint64_t kLow = 0x0101010101010101ULL;
  constexpr uint64_t kMask7f = 0x7f7f7f7f7f7f7f7fULL;
  const uint64_t broadcast = kLow * target;
  int count = 0;
  int k = 0;
  for (; k + 8 <= n; k += 8) {
    uint64_t x;
    std::memcpy(&x, row + k, 8);
    const uint64_t z = x ^ broadcast;
    // Byte of y is 0x80 iff the corresponding byte of z is zero.
    const uint64_t y = ~((((z & kMask7f) + kMask7f) | z) | kMask7f);
    count += PopCount(y);
  }
  for (; k < n; ++k) count += row[k] == target;
  return count;
}

// Joint-traversal runner state (Section 4): one kernel per level over a
// Joint Frontier Queue, with the Joint Status Array providing coalesced
// per-vertex status rows.
//
// Accounting discipline: the per-neighbor row loads/stores run through
// ContiguousRunAggregators (all rows share one shape: n_ one-byte
// elements) and compute ops accumulate in plain integers, flushed at every
// item boundary — bit-identical totals to the former per-call charges.
class JointRunner {
 public:
  JointRunner(const graph::Csr& graph,
              std::span<const graph::VertexId> sources,
              const TraversalOptions& options, gpusim::Device* device)
      : graph_(graph),
        options_(options),
        device_(device),
        n_(static_cast<int>(sources.size())),
        jsa_(graph.vertex_count(), n_),
        sources_(sources.begin(), sources.end()),
        td_phase_(device->InternPhase("td_inspect")),
        bu_phase_(device->InternPhase("bu_inspect")),
        fq_phase_(device->InternPhase("fq_gen")),
        row_loads_(n_, 1, device->spec().transaction_bytes,
                   device->spec().warp_size),
        row_stores_(n_, 1, device->spec().transaction_bytes,
                    device->spec().warp_size),
        bu_inspections_per_instance_(n_, 0) {}

  GroupResult Run();

 private:
  void InitSources();
  // Expansion + inspection over the JFQ for the current level.
  int64_t RunTopDownLevel(gpusim::KernelScope* scope);
  int64_t RunBottomUpLevel(gpusim::KernelScope* scope);
  // Scans the JSA, chooses the next direction, and rebuilds the JFQ.
  void GenerateFrontier(gpusim::KernelScope* scope);
  void ChooseDirection();

  const graph::Csr& graph_;
  const TraversalOptions& options_;
  gpusim::Device* device_;
  const int n_;
  JointStatusArray jsa_;
  std::vector<VertexId> sources_;
  const gpusim::PhaseId td_phase_;
  const gpusim::PhaseId bu_phase_;
  const gpusim::PhaseId fq_phase_;
  // Status rows all have the same transaction shape; the aggregators
  // memoize per-residue counts across the whole run.
  gpusim::ContiguousRunAggregator row_loads_;
  gpusim::ContiguousRunAggregator row_stores_;
  FrontierQueue jfq_;
  GroupTrace trace_;
  std::vector<int64_t> bu_inspections_per_instance_;

  int level_ = 1;
  bool bottom_up_ = false;
  bool finished_ = false;
  int64_t level_new_visits_ = 0;
  int64_t level_inspections_ = 0;
  // Pending stats computed by the previous GenerateFrontier for the level
  // about to run.
  int64_t pending_private_fq_sum_ = 0;
  // Direction-heuristic accumulators (summed over all instances).
  int64_t td_frontier_edges_ = 0;
  int64_t unexplored_edges_ = 0;
  int64_t visited_pairs_ = 0;
};

void JointRunner::InitSources() {
  const int64_t e = graph_.edge_count();
  unexplored_edges_ = static_cast<int64_t>(n_) * e;
  for (int j = 0; j < n_; ++j) {
    const VertexId s = sources_[j];
    if (!jsa_.IsVisited(s, j)) {
      // A vertex may serve as source for several instances; enqueue once.
      bool already_queued = false;
      for (VertexId q : jfq_.vertices()) already_queued |= (q == s);
      if (!already_queued) jfq_.Push(s);
    }
    jsa_.SetDepth(s, j, 0);
    td_frontier_edges_ += graph_.OutDegree(s);
    unexplored_edges_ -= graph_.OutDegree(s);
    ++visited_pairs_;
  }
  pending_private_fq_sum_ = n_;
}

int64_t JointRunner::RunTopDownLevel(gpusim::KernelScope* scope) {
  int64_t new_visits = 0;
  if (options_.adjacency_cache) {
    scope->SetCtaSharedBytes(options_.cache_tile_bytes);
  }
  std::vector<int> active;
  active.reserve(n_);
  for (VertexId f : jfq_.vertices()) {
    scope->BeginItem();
    // All N contiguous threads read the frontier's status row: coalesced.
    scope->LoadContiguous(jsa_.ElementIndex(f, 0), n_, 1);
    active.clear();
    const auto row_f = jsa_.Row(f);
    for (int j = 0; j < n_; ++j) {
      if (row_f[j] == static_cast<uint8_t>(level_ - 1)) active.push_back(j);
    }
    scope->Compute(n_);
    if (active.empty()) {
      scope->EndItem();
      continue;
    }

    const auto neighbors = graph_.OutNeighbors(f);
    // The adjacency list is loaded from global memory once and served to
    // every instance from the shared-memory cache (Section 4). Without the
    // cache, each instance's threads reload it.
    const int64_t adj_start = static_cast<int64_t>(graph_.row_offsets()[f]);
    const int64_t deg = static_cast<int64_t>(neighbors.size());
    if (options_.adjacency_cache) {
      scope->LoadContiguous(adj_start, deg, sizeof(VertexId));
      scope->SharedBytes(deg * static_cast<int64_t>(sizeof(VertexId)));
    } else {
      for (size_t rep = 0; rep < active.size(); ++rep) {
        scope->LoadContiguous(adj_start, deg, sizeof(VertexId));
      }
    }

    // Per-neighbor charges accumulate below and flush at item boundaries:
    // one coalesced row load + 2 ops per active instance each, plus a row
    // store for neighbors that took an update.
    const int64_t ops_per_neighbor = 2 * static_cast<int64_t>(active.size());
    int64_t in_chunk = 0;
    const auto flush_chunk = [&] {
      scope->LoadRuns(row_loads_);
      row_loads_.Reset();
      scope->StoreRuns(row_stores_);
      row_stores_.Reset();
      scope->BulkCompute(in_chunk, ops_per_neighbor);
      in_chunk = 0;
    };
    for (VertexId w : neighbors) {
      // Large frontiers are expanded by many thread groups in parallel
      // (Enterprise's workload classification); re-open the schedulable
      // item every kExpandChunk neighbors so a hub does not serialize.
      if (in_chunk == kExpandChunk) {
        flush_chunk();
        scope->EndItem();
        scope->BeginItem();
      }
      ++in_chunk;
      // N contiguous threads inspect w's status row: one coalesced request.
      row_loads_.Observe(jsa_.ElementIndex(w, 0));
      auto row_w = jsa_.MutableRow(w);
      int updates = 0;
      for (int j : active) {
        if (row_w[j] == kUnvisitedDepth) {
          row_w[j] = static_cast<uint8_t>(level_);
          ++updates;
        }
      }
      if (updates > 0) {
        const int64_t d = graph_.OutDegree(w);
        new_visits += updates;
        td_frontier_edges_ += static_cast<int64_t>(updates) * d;
        unexplored_edges_ -= static_cast<int64_t>(updates) * d;
        // Updates from contiguous threads coalesce into one store request.
        row_stores_.Observe(jsa_.ElementIndex(w, 0));
      }
    }
    flush_chunk();
    level_inspections_ +=
        static_cast<int64_t>(active.size()) * static_cast<int64_t>(deg);
    scope->EndItem();
  }
  return new_visits;
}

int64_t JointRunner::RunBottomUpLevel(gpusim::KernelScope* scope) {
  int64_t new_visits = 0;
  if (options_.adjacency_cache) {
    scope->SetCtaSharedBytes(options_.cache_tile_bytes);
  }
  std::vector<int> active;
  active.reserve(n_);
  for (VertexId f : jfq_.vertices()) {
    scope->BeginItem();
    scope->LoadContiguous(jsa_.ElementIndex(f, 0), n_, 1);
    active.clear();
    auto row_f = jsa_.MutableRow(f);
    for (int j = 0; j < n_; ++j) {
      if (row_f[j] == kUnvisitedDepth) active.push_back(j);
    }
    scope->Compute(n_);

    const int64_t deg_f = graph_.OutDegree(f);
    const auto neighbors = graph_.InNeighbors(f);
    int64_t scanned = 0;
    int64_t item_ops = 0;
    int64_t updates = 0;
    for (VertexId w : neighbors) {
      // Each instance's thread exits as soon as it finds a parent; the
      // frontier is done when every instance has.
      if (active.empty()) break;
      ++scanned;
      row_loads_.Observe(jsa_.ElementIndex(w, 0));
      item_ops += 2 * static_cast<int64_t>(active.size());
      level_inspections_ += static_cast<int64_t>(active.size());
      const auto row_w = jsa_.Row(w);
      size_t i = 0;
      while (i < active.size()) {
        const int j = active[i];
        if (options_.collect_instance_stats) {
          ++bu_inspections_per_instance_[j];
        }
        if (row_w[j] < static_cast<uint8_t>(level_)) {
          row_f[j] = static_cast<uint8_t>(level_);
          ++updates;
          if (options_.collect_instance_stats) {
            // Parent found after `scanned` probes: one sample of the
            // bottom-up search-length distribution (Figure 11).
            trace_.bottom_up_search_lengths.Add(
                static_cast<double>(scanned));
          }
          active[i] = active.back();
          active.pop_back();
        } else {
          ++i;
        }
      }
    }
    scope->LoadRuns(row_loads_);
    row_loads_.Reset();
    scope->Compute(item_ops);
    if (updates > 0) {
      new_visits += updates;
      td_frontier_edges_ += updates * deg_f;
      unexplored_edges_ -= updates * deg_f;
    }
    if (options_.collect_instance_stats) {
      // Searches that exhausted the neighbor list without finding a parent
      // also contribute their full scan length.
      for (size_t i = 0; i < active.size(); ++i) {
        trace_.bottom_up_search_lengths.Add(static_cast<double>(scanned));
      }
    }
    scope->LoadContiguous(static_cast<int64_t>(graph_.in_row_offsets()[f]),
                          scanned, sizeof(VertexId));
    if (options_.adjacency_cache) {
      scope->SharedBytes(scanned * static_cast<int64_t>(sizeof(VertexId)));
    }
    if (updates > 0) {
      scope->StoreContiguous(jsa_.ElementIndex(f, 0), n_, 1);
    }
    scope->EndItem();
  }
  return new_visits;
}

void JointRunner::ChooseDirection() {
  if (options_.force_top_down) {
    bottom_up_ = false;
    return;
  }
  const int64_t n_pairs =
      static_cast<int64_t>(n_) * graph_.vertex_count();
  if (!bottom_up_) {
    if (td_frontier_edges_ >
        static_cast<int64_t>(static_cast<double>(unexplored_edges_) /
                             options_.alpha)) {
      bottom_up_ = true;
    }
  } else {
    if (level_new_visits_ <
        static_cast<int64_t>(static_cast<double>(n_pairs) / options_.beta)) {
      bottom_up_ = false;
    }
  }
}

void JointRunner::GenerateFrontier(gpusim::KernelScope* scope) {
  visited_pairs_ += level_new_visits_;
  if (level_new_visits_ == 0 || level_ >= options_.max_level) {
    finished_ = true;
    jfq_.Clear();
    return;
  }
  // td_frontier_edges_ holds the outdegree sum of the pairs discovered at
  // the level that just ran (accumulated during inspection) — exactly the
  // candidate top-down frontier's edge count.
  ChooseDirection();

  const int64_t n_vertices = graph_.vertex_count();
  jfq_.Clear();
  int64_t private_sum = 0;
  const uint8_t target = bottom_up_ ? kUnvisitedDepth
                                    : static_cast<uint8_t>(level_);
  for (int64_t v = 0; v < n_vertices; ++v) {
    const auto vid = static_cast<VertexId>(v);
    // One warp scans each vertex's status row (Figure 4) and votes: the
    // SWAR byte match is the whole row's predicates + __any in word ops.
    row_loads_.Observe(jsa_.ElementIndex(vid, 0));
    const int hits = CountEqualBytes(jsa_.Row(vid).data(), n_, target);
    if (hits > 0) {
      jfq_.Push(vid);
      private_sum += hits;
    }
  }
  scope->LoadRuns(row_loads_);
  row_loads_.Reset();
  scope->BulkCompute(n_vertices, n_);
  // Shared frontiers are enqueued exactly once: the store (and its atomic
  // cursor bump) happens per JFQ entry, not per instance — the saving of
  // Figure 18.
  scope->StoreContiguous(0, jfq_.size(), sizeof(VertexId));
  scope->Atomic((jfq_.size() + gpusim::kWarpSize - 1) / gpusim::kWarpSize);
  pending_private_fq_sum_ = private_sum;
  if (jfq_.empty()) finished_ = true;
  ++level_;
}

GroupResult JointRunner::Run() {
  InitSources();
  LevelObserver level_observer(options_.observer, device_);
  while (!finished_) {
    LevelTrace lt;
    lt.level = level_;
    lt.bottom_up = bottom_up_;
    lt.jfq_size = jfq_.size();
    lt.private_fq_sum = pending_private_fq_sum_;
    level_observer.LevelStart(lt.jfq_size);
    level_new_visits_ = 0;
    level_inspections_ = 0;
    // Accumulates the discovered pairs' outdegrees during this level only,
    // feeding the direction heuristic (kept identical to the bitwise
    // runner's so both take the same per-level decisions).
    td_frontier_edges_ = 0;
    {
      auto scope = device_->BeginKernel(bottom_up_ ? bu_phase_ : td_phase_);
      level_new_visits_ =
          bottom_up_ ? RunBottomUpLevel(&scope) : RunTopDownLevel(&scope);
    }
    {
      auto scope = device_->BeginKernel(fq_phase_);
      GenerateFrontier(&scope);
    }
    lt.edges_inspected = level_inspections_;
    lt.new_visits = level_new_visits_;
    level_observer.LevelEnd(lt, bottom_up_, finished_);
    trace_.levels.push_back(lt);
  }

  GroupResult result;
  result.trace = std::move(trace_);
  result.trace.instance_count = n_;
  if (options_.collect_instance_stats) {
    result.trace.bottom_up_inspections_per_instance =
        std::move(bu_inspections_per_instance_);
  }
  if (options_.record_depths) {
    result.depths.assign(n_, {});
    for (int j = 0; j < n_; ++j) {
      auto& d = result.depths[j];
      d.resize(static_cast<size_t>(graph_.vertex_count()));
      for (int64_t v = 0; v < graph_.vertex_count(); ++v) {
        d[v] = jsa_.Depth(static_cast<VertexId>(v), j);
      }
    }
  }
  return result;
}

}  // namespace

Result<GroupResult> RunJointGroup(const graph::Csr& graph,
                                  std::span<const graph::VertexId> sources,
                                  const TraversalOptions& options,
                                  gpusim::Device* device) {
  JointRunner runner(graph, sources, options, device);
  return runner.Run();
}

}  // namespace ibfs::internal_strategies
