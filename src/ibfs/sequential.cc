#include "ibfs/single_bfs.h"
#include "ibfs/strategies.h"

namespace ibfs::internal_strategies {

// Runs each instance's full BFS back to back: the paper's "sequential"
// baseline of Figure 15 (state-of-the-art single BFS, repeated i times).
// Every level of every instance pays its own kernel launches, and the
// private per-byte status probes coalesce poorly.
Result<GroupResult> RunSequentialGroup(const graph::Csr& graph,
                                       std::span<const graph::VertexId> sources,
                                       const TraversalOptions& options,
                                       gpusim::Device* device) {
  GroupResult result;
  result.trace.instance_count = static_cast<int>(sources.size());

  // One interning per run; per-level kernel opens are then index lookups.
  const gpusim::PhaseId td_phase = device->InternPhase("td_inspect");
  const gpusim::PhaseId bu_phase = device->InternPhase("bu_inspect");
  const gpusim::PhaseId fq_phase = device->InternPhase("fq_gen");

  for (graph::VertexId source : sources) {
    SingleBfs bfs(graph, source, options);
    while (!bfs.finished()) {
      const int level = bfs.level();
      const bool bottom_up = bfs.bottom_up();
      const int64_t frontier_size = bfs.frontier_size();
      const int64_t inspections_before = bfs.total_inspections();

      int64_t new_visits = 0;
      {
        auto scope = device->BeginKernel(bottom_up ? bu_phase : td_phase);
        new_visits = bfs.RunLevel(&scope);
      }
      {
        auto scope = device->BeginKernel(fq_phase);
        bfs.GenerateNextFrontier(&scope);
      }

      // Merge this (instance, level) into the group trace. With private
      // queues nothing is shared, so the joint size equals the private sum.
      if (static_cast<size_t>(level) > result.trace.levels.size()) {
        result.trace.levels.resize(level);
      }
      LevelTrace& lt = result.trace.levels[level - 1];
      lt.level = level;
      lt.bottom_up = lt.bottom_up || bottom_up;
      lt.jfq_size += frontier_size;
      lt.private_fq_sum += frontier_size;
      lt.edges_inspected += bfs.total_inspections() - inspections_before;
      lt.new_visits += new_visits;
    }
    if (options.collect_instance_stats) {
      result.trace.bottom_up_inspections_per_instance.push_back(
          bfs.bottom_up_inspections());
    }
    if (options.record_parents) result.parents.push_back(bfs.TakeParents());
    result.depths.push_back(bfs.TakeDepths());
  }
  return result;
}

}  // namespace ibfs::internal_strategies
