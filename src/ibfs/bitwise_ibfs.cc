#include <algorithm>
#include <vector>

#include "gpusim/warp.h"
#include "ibfs/bitwise_status_array.h"
#include "ibfs/level_observer.h"
#include "ibfs/status_array.h"
#include "ibfs/strategies.h"
#include "util/bitops.h"

namespace ibfs::internal_strategies {
namespace {

using graph::VertexId;

// Neighbors per schedulable top-down expansion item: high-degree frontiers
// are expanded by many thread groups in parallel (Enterprise-style
// classification), unlike bottom-up where one thread owns a frontier's
// serial parent scan — the imbalance Figure 11 measures.
constexpr int64_t kExpandChunk = 256;

// Bitwise iBFS (Section 6): the status of a vertex for all N instances is
// packed into ceil(N/64) words, so a single thread inspects a vertex for
// the whole group with a couple of OR instructions (Algorithm 1), and
// frontier identification is XOR / NOT over whole rows (Algorithm 2).
// Because the array accumulates *all* visited bits across levels, bottom-up
// inspection can stop as soon as a frontier's row is all ones — the early
// termination that MS-BFS's per-level reset forecloses.
class BitwiseRunner {
 public:
  BitwiseRunner(const graph::Csr& graph,
                std::span<const graph::VertexId> sources,
                const TraversalOptions& options, gpusim::Device* device)
      : graph_(graph),
        options_(options),
        device_(device),
        n_(static_cast<int>(sources.size())),
        words_(static_cast<int>(CeilDiv(static_cast<uint64_t>(n_), 64))),
        cur_(graph.vertex_count(), n_),
        prev_(graph.vertex_count(), n_),
        sources_(sources.begin(), sources.end()),
        row_diff_(static_cast<size_t>(words_), 0) {}

  GroupResult Run();

 private:
  void InitSources();
  int64_t RunTopDownLevel(gpusim::KernelScope* scope);
  int64_t RunBottomUpLevel(gpusim::KernelScope* scope);
  void GenerateFrontier(gpusim::KernelScope* scope);
  void ChooseDirection();

  // Share mask of JFQ entry i (which instances claim it — the paper's
  // per-frontier __ballot variable).
  std::span<const uint64_t> JfqMask(size_t i) const {
    return {jfq_masks_.data() + i * words_, static_cast<size_t>(words_)};
  }

  const graph::Csr& graph_;
  const TraversalOptions& options_;
  gpusim::Device* device_;
  const int n_;
  const int words_;
  BitwiseStatusArray cur_;
  BitwiseStatusArray prev_;
  std::vector<VertexId> sources_;
  std::vector<VertexId> jfq_;
  std::vector<uint64_t> jfq_masks_;
  // Scratch for the fused frontier-generation sweep: the speculative
  // top-down queue (swapped into jfq_ when top-down wins) and one row's
  // XOR diff.
  std::vector<VertexId> next_jfq_;
  std::vector<uint64_t> next_masks_;
  std::vector<uint64_t> row_diff_;
  // depths[j][v]; recorded as frontier identification discovers new bits.
  std::vector<std::vector<uint8_t>> depths_;
  GroupTrace trace_;

  int level_ = 1;
  bool bottom_up_ = false;
  bool finished_ = false;
  int64_t level_new_visits_ = 0;
  int64_t level_inspections_ = 0;
  int64_t pending_private_fq_sum_ = 0;
  // Σ outdegrees of the (vertex, instance) pairs discovered at the level
  // that just ran — the candidate top-down frontier edge count.
  int64_t new_frontier_edges_ = 0;
  int64_t unexplored_edges_ = 0;
};

void BitwiseRunner::InitSources() {
  unexplored_edges_ = static_cast<int64_t>(n_) * graph_.edge_count();
  if (options_.record_depths) {
    depths_.assign(n_, std::vector<uint8_t>(
                           static_cast<size_t>(graph_.vertex_count()),
                           kUnvisitedDepth));
  }
  for (int j = 0; j < n_; ++j) {
    const VertexId s = sources_[j];
    if (cur_.RowAllClear(s)) {
      jfq_.push_back(s);
      jfq_masks_.resize(jfq_masks_.size() + words_, 0);
    }
    cur_.SetBit(s, j);
    if (options_.record_depths) depths_[j][s] = 0;
    new_frontier_edges_ += graph_.OutDegree(s);
    unexplored_edges_ -= graph_.OutDegree(s);
  }
  // Source share masks: all bits the source holds in cur_.
  for (size_t i = 0; i < jfq_.size(); ++i) {
    const auto row = cur_.Row(jfq_[i]);
    std::copy(row.begin(), row.end(), jfq_masks_.begin() + i * words_);
  }
  prev_.CopyFrom(cur_);
  pending_private_fq_sum_ = n_;
}

int64_t BitwiseRunner::RunTopDownLevel(gpusim::KernelScope* scope) {
  int64_t new_visits = 0;
  if (options_.adjacency_cache) {
    scope->SetCtaSharedBytes(options_.cache_tile_bytes);
  }
  for (size_t i = 0; i < jfq_.size(); ++i) {
    const VertexId f = jfq_[i];
    scope->BeginItem();
    // One thread serves the whole group: load the frontier's full visited
    // mask (Algorithm 1 line 5 ORs BSA_k[f], not just the new bits — the
    // extra bits are harmless because their neighbors are already visited).
    scope->LoadContiguous(prev_.ElementIndex(f, 0), words_, 8);
    const auto mask_f = prev_.Row(f);

    // Logical inspections: each instance sharing f inspects each edge.
    int share_count = 0;
    for (uint64_t word : JfqMask(i)) share_count += PopCount(word);

    const auto neighbors = graph_.OutNeighbors(f);
    scope->LoadContiguous(static_cast<int64_t>(graph_.row_offsets()[f]),
                          static_cast<int64_t>(neighbors.size()),
                          sizeof(VertexId));
    if (options_.adjacency_cache) {
      scope->SharedBytes(static_cast<int64_t>(neighbors.size()) *
                         static_cast<int64_t>(sizeof(VertexId)));
    }

    int64_t chunk_progress = 0;
    for (VertexId v : neighbors) {
      if (++chunk_progress > kExpandChunk) {
        scope->EndItem();
        scope->BeginItem();
        chunk_progress = 1;
      }
      // Updates are merged in shared memory within the CTA first (the
      // paper's scheme for avoiding per-neighbor atomic overhead); only
      // words that actually change are pushed to global memory with an
      // atomic OR — the synchronization MS-BFS's single-thread formulation
      // does not need (Section 6).
      scope->SharedBytes(8 * words_);
      scope->Compute(words_);
      auto row_v = cur_.MutableRow(v);
      int changed_words = 0;
      for (int w = 0; w < words_; ++w) {
        const uint64_t before = row_v[w];
        const uint64_t after = before | mask_f[w];
        if (after != before) {
          row_v[w] = after;
          ++changed_words;
          new_visits += PopCount(after ^ before);
        }
      }
      if (changed_words > 0) scope->Atomic(changed_words);
      level_inspections_ += share_count;
    }
    scope->EndItem();
  }
  return new_visits;
}

int64_t BitwiseRunner::RunBottomUpLevel(gpusim::KernelScope* scope) {
  const bool can_terminate_early =
      options_.early_termination && !options_.msbfs_reset;
  int64_t new_visits = 0;
  for (VertexId f : jfq_) {
    scope->BeginItem();
    scope->LoadContiguous(cur_.ElementIndex(f, 0), words_, 8);
    auto row_f = cur_.MutableRow(f);

    // Saturated-word count for row f, kept incrementally below: the
    // early-termination test becomes one integer compare per neighbor
    // instead of an O(words) RowAllSet rescan. A word is saturated when
    // every valid instance bit is set.
    int saturated_words = 0;
    for (int wi = 0; wi < words_; ++wi) {
      const uint64_t valid =
          wi + 1 == words_ ? cur_.LastWordMask() : ~uint64_t{0};
      if (row_f[wi] == valid) ++saturated_words;
    }

    const auto neighbors = graph_.InNeighbors(f);
    int64_t scanned = 0;
    bool changed = false;
    for (VertexId w : neighbors) {
      if (can_terminate_early && saturated_words == words_) {
        // Early termination: every instance has found f's parent; the
        // thread is freed for other frontiers (Section 6).
        break;
      }
      ++scanned;
      scope->LoadContiguous(prev_.ElementIndex(w, 0), words_, 8);
      scope->Compute(words_);
      // Logical inspections: instances still lacking a parent for f.
      for (int wi = 0; wi < words_; ++wi) {
        const uint64_t valid =
            wi + 1 == words_ ? cur_.LastWordMask() : ~uint64_t{0};
        level_inspections_ += PopCount(~row_f[wi] & valid);
      }
      const auto row_w = prev_.Row(w);
      for (int wi = 0; wi < words_; ++wi) {
        const uint64_t before = row_f[wi];
        const uint64_t after = before | row_w[wi];
        if (after != before) {
          row_f[wi] = after;
          changed = true;
          new_visits += PopCount(after ^ before);
          const uint64_t valid =
              wi + 1 == words_ ? cur_.LastWordMask() : ~uint64_t{0};
          if (after == valid) ++saturated_words;
        }
      }
    }
    scope->LoadContiguous(static_cast<int64_t>(graph_.in_row_offsets()[f]),
                          scanned, sizeof(VertexId));
    if (changed) {
      // One thread owns row f: plain (non-atomic) write-back, as the
      // paper's warp/CTA tree-merging avoids atomics in bottom-up.
      scope->StoreContiguous(cur_.ElementIndex(f, 0), words_, 8);
    }
    if (options_.collect_instance_stats) {
      // One thread's bottom-up workload for this frontier: the number of
      // neighbors it scanned before early termination (or exhaustion).
      // The spread of these scan lengths is the warp imbalance Figure 11
      // reports; GroupBy narrows it because grouped instances fill the
      // row early and together.
      trace_.bottom_up_search_lengths.Add(static_cast<double>(scanned));
    }
    scope->EndItem();
  }
  return new_visits;
}

void BitwiseRunner::ChooseDirection() {
  if (options_.force_top_down) {
    bottom_up_ = false;
    return;
  }
  const int64_t n_pairs = static_cast<int64_t>(n_) * graph_.vertex_count();
  if (!bottom_up_) {
    if (new_frontier_edges_ >
        static_cast<int64_t>(static_cast<double>(unexplored_edges_) /
                             options_.alpha)) {
      bottom_up_ = true;
    }
  } else {
    if (level_new_visits_ <
        static_cast<int64_t>(static_cast<double>(n_pairs) / options_.beta)) {
      bottom_up_ = false;
    }
  }
}

void BitwiseRunner::GenerateFrontier(gpusim::KernelScope* scope) {
  const int64_t n_vertices = graph_.vertex_count();

  // Fused sweep — newly visited bits (XOR of the level's BSAs,
  // Algorithm 2): one pass records depths, updates the direction-heuristic
  // accumulators, AND builds the candidate top-down JFQ. This used to be
  // two full O(V*words) sweeps (the second recomputed every XOR after the
  // direction choice); the direction cannot be chosen mid-sweep, so the
  // top-down queue is built speculatively into next_jfq_/next_masks_ and
  // swapped in when top-down wins. The simulated cost is unchanged — the
  // kernel already billed both status-array reads below.
  scope->LoadContiguous(0, n_vertices * words_, 8);
  scope->LoadContiguous(0, n_vertices * words_, 8);
  scope->Compute(n_vertices * words_);
  new_frontier_edges_ = 0;
  next_jfq_.clear();
  next_masks_.clear();
  int64_t td_private_sum = 0;
  for (int64_t v = 0; v < n_vertices; ++v) {
    const auto vid = static_cast<VertexId>(v);
    const auto row_cur = cur_.Row(vid);
    const auto row_prev = prev_.Row(vid);
    int new_bits = 0;
    for (int w = 0; w < words_; ++w) {
      uint64_t diff = row_cur[w] ^ row_prev[w];
      row_diff_[w] = diff;
      new_bits += PopCount(diff);
      if (options_.record_depths) {
        while (diff != 0) {
          const int bit = LowestSetBit(diff);
          diff &= diff - 1;
          depths_[w * 64 + bit][v] = static_cast<uint8_t>(level_);
        }
      }
    }
    if (new_bits > 0) {
      const int64_t d = graph_.OutDegree(vid);
      new_frontier_edges_ += static_cast<int64_t>(new_bits) * d;
      unexplored_edges_ -= static_cast<int64_t>(new_bits) * d;
      next_jfq_.push_back(vid);
      next_masks_.insert(next_masks_.end(), row_diff_.begin(),
                         row_diff_.end());
      td_private_sum += new_bits;
      if (options_.record_depths) {
        // Depth write-out: one coalesced store touching v's depth row.
        scope->StoreContiguous(static_cast<int64_t>(v) * n_, new_bits, 1);
      }
    }
  }

  // Depths are recorded above even when terminating, so a max_level
  // truncation (the k-hop reachability workload) keeps its last level.
  if (level_new_visits_ == 0 || level_ >= options_.max_level) {
    finished_ = true;
    jfq_.clear();
    prev_.CopyFrom(cur_);
    return;
  }

  ChooseDirection();

  int64_t private_sum = 0;
  if (!bottom_up_) {
    // Top-down frontier: any bit changed this level (XOR != 0) — exactly
    // the queue the fused sweep built. Swapping keeps the old vectors as
    // scratch capacity for the next level.
    jfq_.swap(next_jfq_);
    jfq_masks_.swap(next_masks_);
    private_sum = td_private_sum;
  } else {
    // Bottom-up frontier: any instance still unvisited (NOT all-ones).
    // This predicate reads cur_ only, so it cannot ride the XOR sweep.
    jfq_.clear();
    jfq_masks_.clear();
    for (int64_t v = 0; v < n_vertices; ++v) {
      const auto vid = static_cast<VertexId>(v);
      if (!cur_.RowAllSet(vid)) {
        const auto row_cur = cur_.Row(vid);
        jfq_.push_back(vid);
        int unvisited = 0;
        for (int w = 0; w < words_; ++w) {
          const uint64_t valid =
              w + 1 == words_ ? cur_.LastWordMask() : ~uint64_t{0};
          const uint64_t mask = ~row_cur[w] & valid;
          jfq_masks_.push_back(mask);
          unvisited += PopCount(mask);
        }
        private_sum += unvisited;
      }
    }
  }

  // JFQ write-out: one enqueue per entry regardless of sharing.
  scope->StoreContiguous(0, static_cast<int64_t>(jfq_.size()),
                         sizeof(VertexId));
  scope->Atomic((static_cast<int64_t>(jfq_.size()) + gpusim::kWarpSize - 1) /
                gpusim::kWarpSize);

  // BSA_{k+1} <- BSA_k (Algorithm 1 line 1): stream copy.
  prev_.CopyFrom(cur_);
  scope->LoadContiguous(0, n_vertices * words_, 8);
  scope->StoreContiguous(0, n_vertices * words_, 8);
  if (options_.msbfs_reset) {
    // MS-BFS-style per-level reset of the visit array: extra streaming
    // store (and the loss of early termination, handled in bottom-up).
    scope->StoreContiguous(0, n_vertices * words_, 8);
  }

  pending_private_fq_sum_ = private_sum;
  if (jfq_.empty()) finished_ = true;
  ++level_;
}

GroupResult BitwiseRunner::Run() {
  InitSources();
  LevelObserver level_observer(options_.observer, device_);
  while (!finished_) {
    LevelTrace lt;
    lt.level = level_;
    lt.bottom_up = bottom_up_;
    lt.jfq_size = static_cast<int64_t>(jfq_.size());
    lt.private_fq_sum = pending_private_fq_sum_;
    level_observer.LevelStart(lt.jfq_size);
    level_new_visits_ = 0;
    level_inspections_ = 0;
    {
      auto scope =
          device_->BeginKernel(bottom_up_ ? "bu_inspect" : "td_inspect");
      level_new_visits_ =
          bottom_up_ ? RunBottomUpLevel(&scope) : RunTopDownLevel(&scope);
    }
    {
      auto scope = device_->BeginKernel("fq_gen");
      GenerateFrontier(&scope);
    }
    lt.edges_inspected = level_inspections_;
    lt.new_visits = level_new_visits_;
    level_observer.LevelEnd(lt, bottom_up_, finished_);
    trace_.levels.push_back(lt);
  }

  GroupResult result;
  result.trace = std::move(trace_);
  result.trace.instance_count = n_;
  result.depths = std::move(depths_);
  return result;
}

}  // namespace

Result<GroupResult> RunBitwiseGroup(const graph::Csr& graph,
                                    std::span<const graph::VertexId> sources,
                                    const TraversalOptions& options,
                                    gpusim::Device* device) {
  BitwiseRunner runner(graph, sources, options, device);
  return runner.Run();
}

}  // namespace ibfs::internal_strategies
