#include <algorithm>
#include <vector>

#include "gpusim/warp.h"
#include "ibfs/bitwise_status_array.h"
#include "ibfs/level_observer.h"
#include "ibfs/status_array.h"
#include "ibfs/strategies.h"
#include "util/bitops.h"

namespace ibfs::internal_strategies {
namespace {

using graph::VertexId;

// Neighbors per schedulable top-down expansion item: high-degree frontiers
// are expanded by many thread groups in parallel (Enterprise-style
// classification), unlike bottom-up where one thread owns a frontier's
// serial parent scan — the imbalance Figure 11 measures.
constexpr int64_t kExpandChunk = 256;

// Bitwise iBFS (Section 6): the status of a vertex for all N instances is
// packed into ceil(N/64) words, so a single thread inspects a vertex for
// the whole group with a couple of OR instructions (Algorithm 1), and
// frontier identification is XOR / NOT over whole rows (Algorithm 2).
// Because the array accumulates *all* visited bits across levels, bottom-up
// inspection can stop as soon as a frontier's row is all ones — the early
// termination that MS-BFS's per-level reset forecloses.
//
// Accounting discipline: the inner loops charge nothing per neighbor —
// they count events in plain integers and flush through the scope's Bulk*
// / LoadRuns entry points at every item boundary, so the batched totals
// (and therefore max_item_cycles and the simulated seconds) are
// bit-identical to the former one-call-per-neighbor accounting.
class BitwiseRunner {
 public:
  BitwiseRunner(const graph::Csr& graph,
                std::span<const graph::VertexId> sources,
                const TraversalOptions& options, gpusim::Device* device)
      : graph_(graph),
        options_(options),
        device_(device),
        n_(static_cast<int>(sources.size())),
        words_(static_cast<int>(CeilDiv(static_cast<uint64_t>(n_), 64))),
        cur_(graph.vertex_count(), n_),
        prev_(graph.vertex_count(), n_),
        sources_(sources.begin(), sources.end()),
        td_phase_(device->InternPhase("td_inspect")),
        bu_phase_(device->InternPhase("bu_inspect")),
        fq_phase_(device->InternPhase("fq_gen")),
        changed_rows_bm_(
            CeilDiv(static_cast<uint64_t>(graph.vertex_count()), 64), 0) {}

  GroupResult Run();

 private:
  void InitSources();

  // Re-establishes prev_ == cur_ after a level: swaps the buffers (prev_
  // then holds the up-to-date state) and patches cur_'s stale rows — only
  // `changed` rows can differ, because every mutation this level happened
  // on a row the XOR sweep collected.
  void SyncShadow(const std::vector<VertexId>& changed) {
    std::swap(cur_, prev_);
    for (VertexId v : changed) {
      const auto src = prev_.Row(v);
      auto dst = cur_.MutableRow(v);
      std::copy(src.begin(), src.end(), dst.begin());
    }
  }
  int64_t RunTopDownLevel(gpusim::KernelScope* scope);
  int64_t RunBottomUpLevel(gpusim::KernelScope* scope);
  void GenerateFrontier(gpusim::KernelScope* scope);
  void ChooseDirection();

  // Share mask of JFQ entry i (which instances claim it — the paper's
  // per-frontier __ballot variable).
  std::span<const uint64_t> JfqMask(size_t i) const {
    return {jfq_masks_.data() + i * words_, static_cast<size_t>(words_)};
  }

  const graph::Csr& graph_;
  const TraversalOptions& options_;
  gpusim::Device* device_;
  const int n_;
  const int words_;
  BitwiseStatusArray cur_;
  BitwiseStatusArray prev_;
  std::vector<VertexId> sources_;
  const gpusim::PhaseId td_phase_;
  const gpusim::PhaseId bu_phase_;
  const gpusim::PhaseId fq_phase_;
  std::vector<VertexId> jfq_;
  std::vector<uint64_t> jfq_masks_;
  // Scratch for the fused frontier-generation sweep: the speculative
  // top-down queue (swapped into jfq_ when top-down wins) and its masks.
  std::vector<VertexId> next_jfq_;
  std::vector<uint64_t> next_masks_;
  // Bottom-up candidate queue collected *inside* RunBottomUpLevel: each
  // item owns its row, so it knows at EndItem whether the row is still
  // unsaturated. When consecutive levels run bottom-up the frontier
  // generation swaps this in instead of rescanning every vertex (rows only
  // gain bits, so unsaturated rows are always a subset of the current
  // bottom-up queue — identical to the full scan's result).
  std::vector<VertexId> bu_next_jfq_;
  std::vector<uint64_t> bu_next_masks_;
  int64_t bu_private_sum_ = 0;
  // One bit per vertex, set by the level kernels the moment a row gains a
  // bit. The frontier sweep walks only these rows (in ascending vertex
  // order, same as a full scan) instead of XOR-scanning all V*words words;
  // cleared after each sweep. Purely a host-side shortcut — the simulated
  // kernel still bills both full status-array reads.
  std::vector<uint64_t> changed_rows_bm_;
  // Depth matrix in vertex-major order, depth of (v, j) at [v*n_ + j]:
  // the fused sweep discovers new bits row by row, so recording a row's
  // depths touches adjacent bytes instead of n_ distinct per-instance
  // arrays. Transposed into GroupResult's instance-major layout once at
  // the end of Run.
  std::vector<uint8_t> depth_matrix_;
  GroupTrace trace_;

  int level_ = 1;
  bool bottom_up_ = false;
  bool finished_ = false;
  int64_t level_new_visits_ = 0;
  int64_t level_inspections_ = 0;
  int64_t pending_private_fq_sum_ = 0;
  // Σ outdegrees of the (vertex, instance) pairs discovered at the level
  // that just ran — the candidate top-down frontier edge count.
  int64_t new_frontier_edges_ = 0;
  int64_t unexplored_edges_ = 0;
};

void BitwiseRunner::InitSources() {
  unexplored_edges_ = static_cast<int64_t>(n_) * graph_.edge_count();
  // Queue entries are unique vertices, so V (and V*words for the masks)
  // bounds every frontier vector; reserving once spares the hot push_back
  // paths all reallocation for the rest of the run.
  const auto v_cap = static_cast<size_t>(graph_.vertex_count());
  const size_t mask_cap = v_cap * static_cast<size_t>(words_);
  jfq_.reserve(v_cap);
  next_jfq_.reserve(v_cap);
  bu_next_jfq_.reserve(v_cap);
  jfq_masks_.reserve(mask_cap);
  next_masks_.reserve(mask_cap);
  bu_next_masks_.reserve(mask_cap);
  if (options_.record_depths) {
    depth_matrix_.assign(
        static_cast<size_t>(graph_.vertex_count()) * n_, kUnvisitedDepth);
  }
  for (int j = 0; j < n_; ++j) {
    const VertexId s = sources_[j];
    if (cur_.RowAllClear(s)) {
      jfq_.push_back(s);
      jfq_masks_.resize(jfq_masks_.size() + words_, 0);
    }
    cur_.SetBit(s, j);
    if (options_.record_depths) {
      depth_matrix_[static_cast<size_t>(s) * n_ + j] = 0;
    }
    new_frontier_edges_ += graph_.OutDegree(s);
    unexplored_edges_ -= graph_.OutDegree(s);
  }
  // Source share masks: all bits the source holds in cur_.
  for (size_t i = 0; i < jfq_.size(); ++i) {
    const auto row = cur_.Row(jfq_[i]);
    std::copy(row.begin(), row.end(), jfq_masks_.begin() + i * words_);
  }
  prev_.CopyFrom(cur_);
  pending_private_fq_sum_ = n_;
}

int64_t BitwiseRunner::RunTopDownLevel(gpusim::KernelScope* scope) {
  int64_t new_visits = 0;
  if (options_.adjacency_cache) {
    scope->SetCtaSharedBytes(options_.cache_tile_bytes);
  }
  // Status rows all share one transaction shape (words_ x 8 bytes); their
  // loads run through the memoizing aggregator and drain at item
  // boundaries.
  gpusim::ContiguousRunAggregator row_loads(
      words_, 8, device_->spec().transaction_bytes,
      device_->spec().warp_size);
  const bool uniform_rows = row_loads.UniformAligned();
  for (size_t i = 0; i < jfq_.size(); ++i) {
    const VertexId f = jfq_[i];
    scope->BeginItem();
    // One thread serves the whole group: load the frontier's full visited
    // mask (Algorithm 1 line 5 ORs BSA_k[f], not just the new bits — the
    // extra bits are harmless because their neighbors are already visited).
    if (uniform_rows) {
      row_loads.ObserveAlignedRuns(1);
    } else {
      row_loads.Observe(prev_.ElementIndex(f, 0));
    }
    const auto mask_f = prev_.Row(f);

    // Logical inspections: each instance sharing f inspects each edge.
    int share_count = 0;
    for (uint64_t word : JfqMask(i)) share_count += PopCount(word);

    const auto neighbors = graph_.OutNeighbors(f);
    scope->LoadContiguous(static_cast<int64_t>(graph_.row_offsets()[f]),
                          static_cast<int64_t>(neighbors.size()),
                          sizeof(VertexId));
    if (options_.adjacency_cache) {
      scope->SharedBytes(static_cast<int64_t>(neighbors.size()) *
                         static_cast<int64_t>(sizeof(VertexId)));
    }

    // Updates are merged in shared memory within the CTA first (the
    // paper's scheme for avoiding per-neighbor atomic overhead); only
    // words that actually change are pushed to global memory with an
    // atomic OR — the synchronization MS-BFS's single-thread formulation
    // does not need (Section 6). Per neighbor that is 8*words_ shared
    // bytes + words_ ops + the changed-word atomics, accumulated here and
    // flushed at each item boundary.
    int64_t in_chunk = 0;
    int64_t chunk_atomics = 0;
    const auto flush_chunk = [&] {
      scope->LoadRuns(row_loads);
      row_loads.Reset();
      scope->BulkShared(in_chunk, 8 * words_);
      scope->BulkCompute(in_chunk, words_);
      scope->BulkAtomics(chunk_atomics);
      in_chunk = 0;
      chunk_atomics = 0;
    };
    if (words_ == 1) {
      // Whole-group state is a single word: one OR per neighbor, straight
      // off the flat word array. The chunk boundary is hoisted out of the
      // per-neighbor loop: process min(kExpandChunk - in_chunk, remaining)
      // neighbors back to back, then flush — the same item brackets the
      // per-neighbor form produces.
      const uint64_t mask = mask_f[0];
      uint64_t* const cwords = cur_.MutableWords().data();
      uint64_t* const bm = changed_rows_bm_.data();
      const VertexId* const nb = neighbors.data();
      const int64_t n_nbrs = static_cast<int64_t>(neighbors.size());
      int64_t pos = 0;
      while (pos < n_nbrs) {
        if (in_chunk == kExpandChunk) {
          flush_chunk();
          scope->EndItem();
          scope->BeginItem();
        }
        const int64_t stop =
            std::min(n_nbrs, pos + (kExpandChunk - in_chunk));
        in_chunk += stop - pos;
        for (; pos < stop; ++pos) {
          const VertexId v = nb[pos];
          uint64_t& cell = cwords[v];
          const uint64_t after = cell | mask;
          if (after != cell) {
            new_visits += PopCount(after ^ cell);
            cell = after;
            ++chunk_atomics;
            bm[static_cast<uint64_t>(v) >> 6] |= uint64_t{1} << (v & 63);
          }
        }
      }
    } else {
      uint64_t* const bm = changed_rows_bm_.data();
      for (VertexId v : neighbors) {
        if (in_chunk == kExpandChunk) {
          flush_chunk();
          scope->EndItem();
          scope->BeginItem();
        }
        ++in_chunk;
        auto row_v = cur_.MutableRow(v);
        for (int w = 0; w < words_; ++w) {
          const uint64_t before = row_v[w];
          const uint64_t after = before | mask_f[w];
          if (after != before) {
            row_v[w] = after;
            ++chunk_atomics;
            new_visits += PopCount(after ^ before);
            bm[static_cast<uint64_t>(v) >> 6] |= uint64_t{1} << (v & 63);
          }
        }
      }
    }
    flush_chunk();
    level_inspections_ +=
        static_cast<int64_t>(share_count) *
        static_cast<int64_t>(neighbors.size());
    scope->EndItem();
  }
  return new_visits;
}

int64_t BitwiseRunner::RunBottomUpLevel(gpusim::KernelScope* scope) {
  const bool can_terminate_early =
      options_.early_termination && !options_.msbfs_reset;
  int64_t new_visits = 0;
  bu_next_jfq_.clear();
  bu_next_masks_.clear();
  bu_private_sum_ = 0;
  // Per-neighbor row loads all have the same shape (words_ elements of 8
  // bytes); the aggregator memoizes their transaction counts by residue
  // and drains before each EndItem.
  gpusim::ContiguousRunAggregator row_loads(
      words_, 8, device_->spec().transaction_bytes,
      device_->spec().warp_size);
  // Row starts are always multiples of words_, so when the row span
  // divides the segment the whole neighbor scan is charged with one
  // ObserveAlignedRuns(scanned) call instead of one Observe per parent.
  const bool uniform_rows = row_loads.UniformAligned();
  for (VertexId f : jfq_) {
    scope->BeginItem();
    if (!uniform_rows) row_loads.Observe(cur_.ElementIndex(f, 0));
    auto row_f = cur_.MutableRow(f);

    // Unset valid bits of row f (= logical inspections each neighbor scan
    // performs), kept incrementally: the early-termination test becomes
    // one integer compare per neighbor instead of an O(words) rescan.
    int64_t unset_bits = 0;
    for (int wi = 0; wi < words_; ++wi) {
      const uint64_t valid =
          wi + 1 == words_ ? cur_.LastWordMask() : ~uint64_t{0};
      unset_bits += PopCount(~row_f[wi] & valid);
    }

    const auto neighbors = graph_.InNeighbors(f);
    int64_t scanned = 0;
    bool changed = false;
    if (words_ == 1) {
      const uint64_t valid = cur_.LastWordMask();
      const uint64_t* const pwords = prev_.Words().data();
      uint64_t row = row_f[0];
      // Inspections accrue at the *current* unset-bit count, which only
      // moves when the row gains bits — so the charge is accumulated per
      // stretch of unchanged scans (scan_base marks the stretch start)
      // instead of per neighbor. Same total, fewer adds.
      int64_t scan_base = 0;
      if (can_terminate_early && uniform_rows) {
        // Tightest form: rows entering the bottom-up queue are unsaturated
        // by construction (both queue builders filter all-ones rows and
        // bits only accumulate), so unset_bits > 0 until an update drives
        // it to zero — the early-termination test needs to run only inside
        // the update branch, not once per scanned neighbor. Breaking there
        // stops before the next scan, exactly where the per-neighbor test
        // would have stopped.
        const VertexId* const nbp = neighbors.data();
        const int64_t n_nbrs = static_cast<int64_t>(neighbors.size());
        int64_t idx = 0;
        bool terminated = false;
        // Exact scan of one neighbor; true when the row just saturated.
        const auto scan_one = [&](int64_t at) {
          const uint64_t after = row | (pwords[nbp[at]] & valid);
          if (after != row) {
            // Neighbor `at` itself was inspected at the pre-update count.
            level_inspections_ += unset_bits * (at + 1 - scan_base);
            scan_base = at + 1;
            const int added = PopCount(after ^ row);
            new_visits += added;
            unset_bits -= added;
            row = after;
            changed = true;
            return unset_bits == 0;
          }
          return false;
        };
        // Blocks of four parents whose combined words add nothing to the
        // row (the common case once the group saturates) are skipped with
        // one OR-tree and one compare; a block that would change the row
        // is replayed one parent at a time so the inspection stretches and
        // the early-termination point stay exact.
        while (idx + 4 <= n_nbrs) {
          const uint64_t blk = pwords[nbp[idx]] | pwords[nbp[idx + 1]] |
                               pwords[nbp[idx + 2]] | pwords[nbp[idx + 3]];
          if ((blk & valid & ~row) == 0) {
            idx += 4;
            continue;
          }
          const int64_t e = idx + 4;
          for (; idx < e; ++idx) {
            if (scan_one(idx)) {
              // Early termination: every instance has found f's parent;
              // the thread is freed for other frontiers (Section 6).
              ++idx;
              terminated = true;
              break;
            }
          }
          if (terminated) break;
        }
        while (!terminated && idx < n_nbrs) {
          if (scan_one(idx)) {
            ++idx;
            break;
          }
          ++idx;
        }
        scanned = idx;
      } else {
        for (VertexId w : neighbors) {
          if (can_terminate_early && unset_bits == 0) break;
          ++scanned;
          if (!uniform_rows) row_loads.Observe(w);
          const uint64_t after = row | (pwords[w] & valid);
          if (after != row) {
            level_inspections_ += unset_bits * (scanned - scan_base);
            scan_base = scanned;
            new_visits += PopCount(after ^ row);
            unset_bits -= PopCount(after ^ row);
            row = after;
            changed = true;
          }
        }
      }
      level_inspections_ += unset_bits * (scanned - scan_base);
      row_f[0] = row;
    } else {
      for (VertexId w : neighbors) {
        if (can_terminate_early && unset_bits == 0) break;
        ++scanned;
        if (!uniform_rows) row_loads.Observe(prev_.ElementIndex(w, 0));
        level_inspections_ += unset_bits;
        const auto row_w = prev_.Row(w);
        for (int wi = 0; wi < words_; ++wi) {
          const uint64_t before = row_f[wi];
          const uint64_t after = before | row_w[wi];
          if (after != before) {
            row_f[wi] = after;
            changed = true;
            new_visits += PopCount(after ^ before);
            unset_bits -= PopCount(after ^ before);
          }
        }
      }
    }
    if (unset_bits > 0) {
      // Row f is still unsaturated: it stays on the bottom-up frontier.
      // Recording it here (with its unvisited mask) is what lets a
      // bottom-up -> bottom-up transition skip the full-vertex rescan.
      bu_next_jfq_.push_back(f);
      const uint64_t last_valid = cur_.LastWordMask();
      for (int wi = 0; wi < words_; ++wi) {
        const uint64_t valid = wi + 1 == words_ ? last_valid : ~uint64_t{0};
        bu_next_masks_.push_back(~row_f[wi] & valid);
      }
      bu_private_sum_ += unset_bits;
    }
    if (uniform_rows) {
      // scanned parent-row loads + the initial load of row f itself.
      row_loads.ObserveAlignedRuns(scanned + 1);
    }
    scope->BulkCompute(scanned, words_);
    scope->LoadRuns(row_loads);
    row_loads.Reset();
    scope->LoadContiguous(static_cast<int64_t>(graph_.in_row_offsets()[f]),
                          scanned, sizeof(VertexId));
    if (changed) {
      // One thread owns row f: plain (non-atomic) write-back, as the
      // paper's warp/CTA tree-merging avoids atomics in bottom-up.
      scope->StoreContiguous(cur_.ElementIndex(f, 0), words_, 8);
      changed_rows_bm_[static_cast<uint64_t>(f) >> 6] |=
          uint64_t{1} << (f & 63);
    }
    if (options_.collect_instance_stats) {
      // One thread's bottom-up workload for this frontier: the number of
      // neighbors it scanned before early termination (or exhaustion).
      // The spread of these scan lengths is the warp imbalance Figure 11
      // reports; GroupBy narrows it because grouped instances fill the
      // row early and together.
      trace_.bottom_up_search_lengths.Add(static_cast<double>(scanned));
    }
    scope->EndItem();
  }
  return new_visits;
}

void BitwiseRunner::ChooseDirection() {
  if (options_.force_top_down) {
    bottom_up_ = false;
    return;
  }
  const int64_t n_pairs = static_cast<int64_t>(n_) * graph_.vertex_count();
  if (!bottom_up_) {
    if (new_frontier_edges_ >
        static_cast<int64_t>(static_cast<double>(unexplored_edges_) /
                             options_.alpha)) {
      bottom_up_ = true;
    }
  } else {
    if (level_new_visits_ <
        static_cast<int64_t>(static_cast<double>(n_pairs) / options_.beta)) {
      bottom_up_ = false;
    }
  }
}

void BitwiseRunner::GenerateFrontier(gpusim::KernelScope* scope) {
  const int64_t n_vertices = graph_.vertex_count();

  // Fused sweep — newly visited bits (XOR of the level's BSAs,
  // Algorithm 2): one pass records depths, updates the direction-heuristic
  // accumulators, AND builds the candidate top-down JFQ. This used to be
  // two full O(V*words) sweeps (the second recomputed every XOR after the
  // direction choice); the direction cannot be chosen mid-sweep, so the
  // top-down queue is built speculatively into next_jfq_/next_masks_ and
  // swapped in when top-down wins. The simulated cost is unchanged — the
  // kernel already billed both status-array reads below.
  scope->LoadContiguous(0, n_vertices * words_, 8);
  scope->LoadContiguous(0, n_vertices * words_, 8);
  scope->Compute(n_vertices * words_);
  new_frontier_edges_ = 0;
  next_jfq_.clear();
  next_masks_.clear();
  int64_t td_private_sum = 0;
  // The level kernels marked every row they changed in changed_rows_bm_,
  // so the host walks exactly those rows (ascending vertex order — the
  // order a flat scan would visit them) instead of XOR-scanning all
  // V*words words. A marked row always holds a changed word: marks are
  // set only when an OR actually added bits, and bits are never cleared
  // within a level.
  const uint64_t* const cw = cur_.Words().data();
  const uint64_t* const pw = prev_.Words().data();
  const int64_t bm_words = static_cast<int64_t>(changed_rows_bm_.size());
  for (int64_t bwi = 0; bwi < bm_words; ++bwi) {
    uint64_t marks = changed_rows_bm_[bwi];
    if (marks == 0) continue;
    changed_rows_bm_[bwi] = 0;
    while (marks != 0) {
      const int64_t v = bwi * 64 + LowestSetBit(marks);
      marks &= marks - 1;
      const int64_t base = v * words_;
      const auto vid = static_cast<VertexId>(v);
      int new_bits = 0;
      uint8_t* const depth_row =
          options_.record_depths ? depth_matrix_.data() + v * n_ : nullptr;
      for (int w = 0; w < words_; ++w) {
        uint64_t diff = cw[base + w] ^ pw[base + w];
        next_masks_.push_back(diff);
        new_bits += PopCount(diff);
        if (depth_row != nullptr) {
          while (diff != 0) {
            const int bit = LowestSetBit(diff);
            diff &= diff - 1;
            depth_row[w * 64 + bit] = static_cast<uint8_t>(level_);
          }
        }
      }
      // new_bits > 0 by construction: this row contains a changed word.
      const int64_t d = graph_.OutDegree(vid);
      new_frontier_edges_ += static_cast<int64_t>(new_bits) * d;
      unexplored_edges_ -= static_cast<int64_t>(new_bits) * d;
      next_jfq_.push_back(vid);
      td_private_sum += new_bits;
      if (options_.record_depths) {
        // Depth write-out: one coalesced store touching v's depth row.
        scope->StoreContiguous(static_cast<int64_t>(v) * n_, new_bits, 1);
      }
    }
  }

  // Depths are recorded above even when terminating, so a max_level
  // truncation (the k-hop reachability workload) keeps its last level.
  if (level_new_visits_ == 0 || level_ >= options_.max_level) {
    finished_ = true;
    jfq_.clear();
    SyncShadow(next_jfq_);
    return;
  }

  const bool was_bottom_up = bottom_up_;
  ChooseDirection();

  int64_t private_sum = 0;
  if (!bottom_up_) {
    // Top-down frontier: any bit changed this level (XOR != 0) — exactly
    // the queue the fused sweep built. Swapping keeps the old vectors as
    // scratch capacity for the next level.
    jfq_.swap(next_jfq_);
    jfq_masks_.swap(next_masks_);
    private_sum = td_private_sum;
  } else if (was_bottom_up) {
    // Bottom-up again: the level just run already recorded every row that
    // stayed unsaturated (rows only gain bits, so no vertex outside the
    // old queue can have become a candidate). Same queue, same masks, same
    // order as the full scan below — without re-reading V rows.
    jfq_.swap(bu_next_jfq_);
    jfq_masks_.swap(bu_next_masks_);
    private_sum = bu_private_sum_;
  } else {
    // Top-down -> bottom-up switch: any instance still unvisited (NOT
    // all-ones). This predicate reads cur_ only, so it cannot ride the XOR
    // sweep, and after a top-down level no per-row record exists — scan.
    jfq_.clear();
    jfq_masks_.clear();
    const uint64_t last_valid = cur_.LastWordMask();
    if (words_ == 1) {
      for (int64_t v = 0; v < n_vertices; ++v) {
        const uint64_t mask = ~cw[v] & last_valid;
        if (mask == 0) continue;
        jfq_.push_back(static_cast<VertexId>(v));
        jfq_masks_.push_back(mask);
        private_sum += PopCount(mask);
      }
    } else {
      for (int64_t v = 0; v < n_vertices; ++v) {
        const int64_t base = v * words_;
        bool saturated = true;
        for (int w = 0; w < words_; ++w) {
          const uint64_t valid = w + 1 == words_ ? last_valid : ~uint64_t{0};
          if (cw[base + w] != valid) {
            saturated = false;
            break;
          }
        }
        if (saturated) continue;
        jfq_.push_back(static_cast<VertexId>(v));
        int unvisited = 0;
        for (int w = 0; w < words_; ++w) {
          const uint64_t valid = w + 1 == words_ ? last_valid : ~uint64_t{0};
          const uint64_t mask = ~cw[base + w] & valid;
          jfq_masks_.push_back(mask);
          unvisited += PopCount(mask);
        }
        private_sum += unvisited;
      }
    }
  }

  // JFQ write-out: one enqueue per entry regardless of sharing.
  scope->StoreContiguous(0, static_cast<int64_t>(jfq_.size()),
                         sizeof(VertexId));
  scope->Atomic((static_cast<int64_t>(jfq_.size()) + gpusim::kWarpSize - 1) /
                gpusim::kWarpSize);

  // BSA_{k+1} <- BSA_k (Algorithm 1 line 1). The simulated device streams
  // the whole array (charged below); the host gets away with a buffer swap
  // plus re-copying only the rows this level changed — the list the fused
  // sweep just built (swapped into jfq_ when top-down won).
  SyncShadow(bottom_up_ ? next_jfq_ : jfq_);
  scope->LoadContiguous(0, n_vertices * words_, 8);
  scope->StoreContiguous(0, n_vertices * words_, 8);
  if (options_.msbfs_reset) {
    // MS-BFS-style per-level reset of the visit array: extra streaming
    // store (and the loss of early termination, handled in bottom-up).
    scope->StoreContiguous(0, n_vertices * words_, 8);
  }

  pending_private_fq_sum_ = private_sum;
  if (jfq_.empty()) finished_ = true;
  ++level_;
}

GroupResult BitwiseRunner::Run() {
  InitSources();
  LevelObserver level_observer(options_.observer, device_);
  while (!finished_) {
    LevelTrace lt;
    lt.level = level_;
    lt.bottom_up = bottom_up_;
    lt.jfq_size = static_cast<int64_t>(jfq_.size());
    lt.private_fq_sum = pending_private_fq_sum_;
    level_observer.LevelStart(lt.jfq_size);
    level_new_visits_ = 0;
    level_inspections_ = 0;
    {
      auto scope = device_->BeginKernel(bottom_up_ ? bu_phase_ : td_phase_);
      level_new_visits_ =
          bottom_up_ ? RunBottomUpLevel(&scope) : RunTopDownLevel(&scope);
    }
    {
      auto scope = device_->BeginKernel(fq_phase_);
      GenerateFrontier(&scope);
    }
    lt.edges_inspected = level_inspections_;
    lt.new_visits = level_new_visits_;
    level_observer.LevelEnd(lt, bottom_up_, finished_);
    trace_.levels.push_back(lt);
  }

  GroupResult result;
  result.trace = std::move(trace_);
  result.trace.instance_count = n_;
  if (options_.record_depths) {
    // Blocked transpose of the vertex-major depth matrix into the
    // instance-major result layout: a 64-vertex block's rows (<= 4 KiB for
    // group sizes up to 64) stay cached across all n_ output columns.
    const int64_t n_vertices = graph_.vertex_count();
    result.depths.assign(
        n_, std::vector<uint8_t>(static_cast<size_t>(n_vertices)));
    constexpr int64_t kBlock = 64;
    for (int64_t v0 = 0; v0 < n_vertices; v0 += kBlock) {
      const int64_t v1 = std::min(n_vertices, v0 + kBlock);
      for (int j = 0; j < n_; ++j) {
        uint8_t* const out = result.depths[j].data();
        const uint8_t* const in = depth_matrix_.data() + j;
        for (int64_t v = v0; v < v1; ++v) {
          out[v] = in[static_cast<size_t>(v) * n_];
        }
      }
    }
  }
  return result;
}

}  // namespace

Result<GroupResult> RunBitwiseGroup(const graph::Csr& graph,
                                    std::span<const graph::VertexId> sources,
                                    const TraversalOptions& options,
                                    gpusim::Device* device) {
  BitwiseRunner runner(graph, sources, options, device);
  return runner.Run();
}

}  // namespace ibfs::internal_strategies
