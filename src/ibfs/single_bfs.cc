#include "ibfs/single_bfs.h"

#include <array>

#include "gpusim/memory_model.h"
#include "gpusim/warp.h"

namespace ibfs {
namespace {

// Charges one warp-sized batch of random single-byte status probes.
class GatherBatcher {
 public:
  GatherBatcher(gpusim::KernelScope* scope, int elem_bytes)
      : scope_(scope), elem_bytes_(elem_bytes) {}

  void Add(int64_t element_index) {
    lanes_[count_++] = element_index;
    if (count_ == gpusim::kWarpSize) Flush();
  }

  void Flush() {
    if (count_ == 0) return;
    scope_->LoadGather({lanes_.data(), static_cast<size_t>(count_)},
                       elem_bytes_);
    count_ = 0;
  }

 private:
  gpusim::KernelScope* scope_;
  int elem_bytes_;
  std::array<int64_t, gpusim::kWarpSize> lanes_{};
  int count_ = 0;
};

// Same, for scattered stores.
class ScatterBatcher {
 public:
  ScatterBatcher(gpusim::KernelScope* scope, int elem_bytes)
      : scope_(scope), elem_bytes_(elem_bytes) {}

  void Add(int64_t element_index) {
    lanes_[count_++] = element_index;
    if (count_ == gpusim::kWarpSize) Flush();
  }

  void Flush() {
    if (count_ == 0) return;
    scope_->StoreGather({lanes_.data(), static_cast<size_t>(count_)},
                        elem_bytes_);
    count_ = 0;
  }

 private:
  gpusim::KernelScope* scope_;
  int elem_bytes_;
  std::array<int64_t, gpusim::kWarpSize> lanes_{};
  int count_ = 0;
};

}  // namespace

SingleBfs::SingleBfs(const graph::Csr& graph, graph::VertexId source,
                     const TraversalOptions& options)
    : graph_(graph), options_(options) {
  depths_.assign(static_cast<size_t>(graph.vertex_count()), kUnvisitedDepth);
  parents_.assign(static_cast<size_t>(graph.vertex_count()),
                  graph::kInvalidVertex);
  depths_[source] = 0;
  parents_[source] = source;
  frontier_.Push(source);
  visited_count_ = 1;
  frontier_edges_ = graph.OutDegree(source);
  unexplored_edges_ = graph.edge_count() - frontier_edges_;
}

int64_t SingleBfs::RunLevel(gpusim::KernelScope* scope) {
  if (finished_) return 0;
  int64_t new_visits = 0;
  GatherBatcher status_loads(scope, /*elem_bytes=*/1);
  ScatterBatcher status_stores(scope, /*elem_bytes=*/1);

  if (!bottom_up_) {
    // Top-down: mark unvisited out-neighbors of each frontier. Large
    // frontiers are expanded by many thread groups in parallel
    // (Enterprise's workload classification), so the schedulable item is
    // re-opened every 256 neighbors.
    constexpr int64_t kExpandChunk = 256;
    for (graph::VertexId f : frontier_.vertices()) {
      scope->BeginItem();
      const auto neighbors = graph_.OutNeighbors(f);
      scope->LoadContiguous(
          static_cast<int64_t>(graph_.row_offsets()[f]),
          static_cast<int64_t>(neighbors.size()), sizeof(graph::VertexId));
      // The 2 ops per inspected neighbor accumulate per chunk and flush
      // before every item boundary — same totals at every EndItem snapshot
      // as charging them one by one.
      int64_t in_chunk = 0;
      for (graph::VertexId w : neighbors) {
        if (in_chunk == kExpandChunk) {
          scope->BulkCompute(in_chunk, 2);
          in_chunk = 0;
          scope->EndItem();
          scope->BeginItem();
        }
        ++in_chunk;
        ++total_inspections_;
        status_loads.Add(w);
        if (depths_[w] == kUnvisitedDepth) {
          depths_[w] = static_cast<uint8_t>(level_);
          parents_[w] = f;
          status_stores.Add(w);
          ++new_visits;
        }
      }
      scope->BulkCompute(in_chunk, 2);
      scope->EndItem();
    }
  } else {
    // Bottom-up: each unvisited vertex searches its in-neighbors for a
    // parent visited at an earlier level, stopping at the first hit.
    for (graph::VertexId v : frontier_.vertices()) {
      scope->BeginItem();
      const auto neighbors = graph_.InNeighbors(v);
      int64_t scanned = 0;
      for (graph::VertexId w : neighbors) {
        ++scanned;
        ++bu_inspections_;
        ++total_inspections_;
        status_loads.Add(w);
        if (depths_[w] < level_) {  // kUnvisitedDepth compares greater
          depths_[v] = static_cast<uint8_t>(level_);
          parents_[v] = w;
          status_stores.Add(v);
          ++new_visits;
          break;  // per-instance early exit inherent to bottom-up
        }
      }
      scope->BulkCompute(scanned, 2);
      scope->LoadContiguous(
          static_cast<int64_t>(graph_.in_row_offsets()[v]), scanned,
          sizeof(graph::VertexId));
      scope->EndItem();
    }
  }
  status_loads.Flush();
  status_stores.Flush();
  last_new_visits_ = new_visits;
  return new_visits;
}

void SingleBfs::GenerateNextFrontier(gpusim::KernelScope* scope) {
  if (finished_) return;
  const int64_t n = graph_.vertex_count();
  visited_count_ += last_new_visits_;
  if (last_new_visits_ == 0 || level_ >= options_.max_level ||
      visited_count_ >= n) {
    finished_ = true;
    frontier_.Clear();
    return;
  }

  // Scan the status array once: collect the newly visited set's stats and
  // decide the next direction before materializing the queue.
  scope->LoadContiguous(0, n, /*elem_bytes=*/1);
  scope->Compute(n);
  int64_t new_frontier_edges = 0;
  for (int64_t v = 0; v < n; ++v) {
    if (depths_[v] == level_) {
      new_frontier_edges +=
          graph_.OutDegree(static_cast<graph::VertexId>(v));
    }
  }
  unexplored_edges_ -= new_frontier_edges;
  frontier_edges_ = new_frontier_edges;
  UpdateDirection();

  frontier_.Clear();
  if (!bottom_up_) {
    for (int64_t v = 0; v < n; ++v) {
      if (depths_[v] == level_) {
        frontier_.Push(static_cast<graph::VertexId>(v));
      }
    }
  } else {
    for (int64_t v = 0; v < n; ++v) {
      if (depths_[v] == kUnvisitedDepth) {
        frontier_.Push(static_cast<graph::VertexId>(v));
      }
    }
  }
  scope->StoreContiguous(0, frontier_.size(), sizeof(graph::VertexId));
  scope->Atomic((frontier_.size() + gpusim::kWarpSize - 1) /
                gpusim::kWarpSize);
  if (frontier_.empty()) finished_ = true;
  ++level_;
}

void SingleBfs::UpdateDirection() {
  if (options_.force_top_down) {
    bottom_up_ = false;
    return;
  }
  const int64_t n = graph_.vertex_count();
  if (!bottom_up_) {
    // Frontier is "hot" enough that scanning unvisited vertices is cheaper.
    if (frontier_edges_ >
        static_cast<int64_t>(static_cast<double>(unexplored_edges_) /
                             options_.alpha)) {
      bottom_up_ = true;
    }
  } else {
    // Frontier (newly visited set) has shrunk: go back to top-down.
    if (last_new_visits_ <
        static_cast<int64_t>(static_cast<double>(n) / options_.beta)) {
      bottom_up_ = false;
    }
  }
}

}  // namespace ibfs
