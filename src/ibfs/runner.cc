#include "ibfs/runner.h"

#include <string>

#include "ibfs/strategies.h"

namespace ibfs {

const char* StrategyName(Strategy strategy) {
  switch (strategy) {
    case Strategy::kSequential:
      return "sequential";
    case Strategy::kNaiveConcurrent:
      return "naive";
    case Strategy::kJointTraversal:
      return "joint";
    case Strategy::kBitwise:
      return "bitwise";
  }
  return "unknown";
}

Result<GroupResult> RunGroup(Strategy strategy, const graph::Csr& graph,
                             std::span<const graph::VertexId> sources,
                             const TraversalOptions& options,
                             gpusim::Device* device) {
  if (device == nullptr) {
    return Status::InvalidArgument("device must not be null");
  }
  if (sources.empty()) {
    return Status::InvalidArgument("group must contain at least one source");
  }
  for (graph::VertexId s : sources) {
    if (static_cast<int64_t>(s) >= graph.vertex_count()) {
      return Status::OutOfRange("source " + std::to_string(s) +
                                " outside vertex range");
    }
  }
  if (options.max_level < 1 ||
      options.max_level > TraversalOptions::kMaxTraversalLevel) {
    return Status::InvalidArgument("max_level out of range");
  }
  if (options.alpha <= 0.0 || options.beta <= 0.0) {
    return Status::InvalidArgument("direction parameters must be positive");
  }

  switch (strategy) {
    case Strategy::kSequential:
      return internal_strategies::RunSequentialGroup(graph, sources, options,
                                                     device);
    case Strategy::kNaiveConcurrent:
      return internal_strategies::RunNaiveGroup(graph, sources, options,
                                                device);
    case Strategy::kJointTraversal:
      return internal_strategies::RunJointGroup(graph, sources, options,
                                                device);
    case Strategy::kBitwise:
      return internal_strategies::RunBitwiseGroup(graph, sources, options,
                                                  device);
  }
  return Status::InvalidArgument("unknown strategy");
}

}  // namespace ibfs
