#include <memory>
#include <vector>

#include "ibfs/single_bfs.h"
#include "ibfs/strategies.h"

namespace ibfs::internal_strategies {

// All instances in flight at once as separate kernels (Hyper-Q style), with
// fully private data structures: the paper's "naive" concurrent BFS. The
// kernels of one level overlap on the device (the simulator folds their work
// into one accounting scope), but nothing is shared, each instance still
// pays its own launch, and at direction-switch levels every instance wants
// the whole machine — which is why the paper measures it at roughly
// sequential speed (Section 2).
Result<GroupResult> RunNaiveGroup(const graph::Csr& graph,
                                  std::span<const graph::VertexId> sources,
                                  const TraversalOptions& options,
                                  gpusim::Device* device) {
  GroupResult result;
  result.trace.instance_count = static_cast<int>(sources.size());

  // One interning per run; per-level kernel opens are then index lookups.
  const gpusim::PhaseId td_phase = device->InternPhase("td_inspect");
  const gpusim::PhaseId bu_phase = device->InternPhase("bu_inspect");
  const gpusim::PhaseId fq_phase = device->InternPhase("fq_gen");

  std::vector<std::unique_ptr<SingleBfs>> instances;
  instances.reserve(sources.size());
  for (graph::VertexId source : sources) {
    instances.push_back(std::make_unique<SingleBfs>(graph, source, options));
  }

  int level = 1;
  for (;;) {
    int64_t active = 0;
    for (const auto& bfs : instances) {
      if (!bfs->finished()) ++active;
    }
    if (active == 0) break;

    LevelTrace lt;
    lt.level = level;

    // Expansion + inspection: one overlapping kernel per active instance,
    // routed into direction-tagged scopes.
    {
      auto td_scope = device->BeginKernel(td_phase);
      auto bu_scope = device->BeginKernel(bu_phase);
      int64_t td_kernels = 0;
      int64_t bu_kernels = 0;
      for (auto& bfs : instances) {
        if (bfs->finished()) continue;
        const bool bottom_up = bfs->bottom_up();
        lt.bottom_up = lt.bottom_up || bottom_up;
        lt.jfq_size += bfs->frontier_size();
        lt.private_fq_sum += bfs->frontier_size();
        const int64_t before = bfs->total_inspections();
        lt.new_visits += bfs->RunLevel(bottom_up ? &bu_scope : &td_scope);
        lt.edges_inspected += bfs->total_inspections() - before;
        ++(bottom_up ? bu_kernels : td_kernels);
      }
      if (td_kernels > 1) td_scope.ExtraLaunches(td_kernels - 1);
      if (bu_kernels > 1) bu_scope.ExtraLaunches(bu_kernels - 1);
    }
    // Frontier queue generation, again one kernel per active instance.
    {
      auto scope = device->BeginKernel(fq_phase);
      int64_t kernels = 0;
      for (auto& bfs : instances) {
        if (bfs->finished()) continue;
        bfs->GenerateNextFrontier(&scope);
        ++kernels;
      }
      if (kernels > 1) scope.ExtraLaunches(kernels - 1);
    }
    result.trace.levels.push_back(lt);
    ++level;
  }

  for (auto& bfs : instances) {
    if (options.collect_instance_stats) {
      result.trace.bottom_up_inspections_per_instance.push_back(
          bfs->bottom_up_inspections());
    }
    if (options.record_parents) result.parents.push_back(bfs->TakeParents());
    result.depths.push_back(bfs->TakeDepths());
  }
  return result;
}

}  // namespace ibfs::internal_strategies
