#ifndef IBFS_IBFS_LEVEL_OBSERVER_H_
#define IBFS_IBFS_LEVEL_OBSERVER_H_

#include <string>

#include "gpusim/device.h"
#include "ibfs/trace.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace ibfs::internal_strategies {

/// Per-level telemetry shared by the joint and bitwise runners: one span
/// per traversal level (cat "level", simulated time), a jfq_size counter
/// track, direction-switch instant markers, and the engine.* metrics.
/// Every method reduces to a null check when observability is disabled, so
/// the uninstrumented hot path stays unmeasurably close to free.
class LevelObserver {
 public:
  LevelObserver(const obs::Observer& observer, gpusim::Device* device)
      : observer_(observer), device_(device) {
    if (observer_.metering()) {
      metric_levels_ = observer_.metrics->GetCounter("engine.levels");
      metric_new_visits_ =
          observer_.metrics->GetCounter("engine.new_visits");
      metric_edges_ =
          observer_.metrics->GetCounter("engine.edges_inspected");
      metric_switches_ =
          observer_.metrics->GetCounter("engine.direction_switches");
      metric_jfq_ = observer_.metrics->GetHistogram(
          "engine.jfq_size", obs::PowerOfTwoBounds(1.0, 24));
    }
  }

  /// Before the level's kernels run.
  void LevelStart(int64_t jfq_size) {
    if (!observer_.enabled()) return;
    start_us_ = device_->elapsed_seconds() * 1e6;
    if (observer_.tracing()) {
      observer_.tracer->CounterValue(observer_.track, "jfq_size", start_us_,
                                     static_cast<double>(jfq_size));
    }
  }

  /// After the level's kernels (inspection + frontier generation).
  /// `next_bottom_up` is the direction chosen for the following level.
  void LevelEnd(const LevelTrace& lt, bool next_bottom_up, bool finished) {
    if (!observer_.enabled()) return;
    const double end_us = device_->elapsed_seconds() * 1e6;
    const bool switched = !finished && next_bottom_up != lt.bottom_up;
    if (observer_.tracing()) {
      observer_.tracer->CompleteSpan(
          observer_.track, "level " + std::to_string(lt.level), "level",
          start_us_, end_us - start_us_,
          {obs::Arg("direction", lt.bottom_up ? "bottom_up" : "top_down"),
           obs::Arg("jfq_size", lt.jfq_size),
           obs::Arg("private_fq_sum", lt.private_fq_sum),
           obs::Arg("edges_inspected", lt.edges_inspected),
           obs::Arg("new_visits", lt.new_visits)});
      if (switched) {
        observer_.tracer->Instant(
            observer_.track, "direction_switch", end_us,
            {obs::Arg("after_level", lt.level),
             obs::Arg("to", next_bottom_up ? "bottom_up" : "top_down")});
      }
    }
    if (observer_.metering()) {
      metric_levels_->Increment();
      metric_new_visits_->Increment(lt.new_visits);
      metric_edges_->Increment(lt.edges_inspected);
      metric_jfq_->Observe(static_cast<double>(lt.jfq_size));
      if (switched) metric_switches_->Increment();
    }
  }

 private:
  obs::Observer observer_;
  gpusim::Device* device_;
  double start_us_ = 0.0;
  obs::Counter* metric_levels_ = nullptr;
  obs::Counter* metric_new_visits_ = nullptr;
  obs::Counter* metric_edges_ = nullptr;
  obs::Counter* metric_switches_ = nullptr;
  obs::Histogram* metric_jfq_ = nullptr;
};

}  // namespace ibfs::internal_strategies

#endif  // IBFS_IBFS_LEVEL_OBSERVER_H_
