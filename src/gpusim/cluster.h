#ifndef IBFS_GPUSIM_CLUSTER_H_
#define IBFS_GPUSIM_CLUSTER_H_

#include <cstdint>
#include <span>
#include <vector>

#include "gpusim/device_spec.h"

namespace ibfs::gpusim {

/// How work units (BFS groups) are placed onto devices of the simulated
/// cluster. The paper's multi-GPU iBFS needs no inter-GPU communication —
/// each GPU runs independent BFS groups — so scalability is purely a
/// placement/imbalance question (Section 8.3).
enum class PlacementPolicy {
  /// Static round-robin, matching the paper's straightforward partitioning;
  /// imbalance grows with device count, which is why Fig. 17 tops out at an
  /// average 85x on 112 GPUs.
  kRoundRobin,
  /// Greedy longest-processing-time placement (an upper bound on what a
  /// smarter scheduler could achieve).
  kLpt,
};

/// Result of simulating one cluster run.
struct ClusterRun {
  /// Per-device busy seconds.
  std::vector<double> device_seconds;
  /// Device each work unit was placed on (parallel to the input costs) —
  /// the assignment the trace exporter renders as per-GPU tracks.
  std::vector<int> unit_device;
  /// Start offset of each unit on its device (units on one device run
  /// back to back in placement order).
  std::vector<double> unit_start_seconds;
  /// Reported time = slowest device (the paper reports "the longest time
  /// consumption of all the GPUs").
  double makespan_seconds = 0.0;
  /// Sum of work (equals single-device time).
  double total_seconds = 0.0;
};

/// A homogeneous cluster of `device_count` simulated GPUs.
class Cluster {
 public:
  Cluster(int device_count, DeviceSpec spec = DeviceSpec::K20());

  int device_count() const { return device_count_; }
  const DeviceSpec& spec() const { return spec_; }

  /// Places independent work units with the given per-unit costs (seconds)
  /// onto the devices and returns the resulting schedule.
  ClusterRun Place(std::span<const double> unit_costs,
                   PlacementPolicy policy) const;

 private:
  int device_count_;
  DeviceSpec spec_;
};

/// Speedup of running `unit_costs` on `devices` GPUs versus one GPU.
double ClusterSpeedup(std::span<const double> unit_costs, int devices,
                      PlacementPolicy policy);

}  // namespace ibfs::gpusim

#endif  // IBFS_GPUSIM_CLUSTER_H_
