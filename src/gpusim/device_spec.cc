#include "gpusim/device_spec.h"

namespace ibfs::gpusim {

DeviceSpec DeviceSpec::K40() { return DeviceSpec{}; }

DeviceSpec DeviceSpec::K20() {
  DeviceSpec spec;
  spec.name = "K20-sim";
  spec.sm_count = 13;
  spec.parallel_warp_slots = 78;  // 2496 cores / 32
  spec.clock_ghz = 0.706;
  spec.mem_bandwidth_gbps = 208.0;
  spec.global_memory_bytes = int64_t{5} * 1024 * 1024 * 1024;
  // Stampede ranks exchange over InfiniBand FDR: ~6 GB/s effective with
  // ~2us MPI latency, not the in-box PCIe link of the K40 default.
  spec.link_bandwidth_gbps = 6.0;
  spec.link_latency_us = 2.0;
  return spec;
}

}  // namespace ibfs::gpusim
