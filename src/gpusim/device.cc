#include "gpusim/device.h"

#include <algorithm>

#include "gpusim/fault.h"
#include "obs/metrics.h"
#include "util/logging.h"

namespace ibfs::gpusim {

void KernelStats::Add(const KernelStats& other) {
  mem.Add(other.mem);
  compute_cycles += other.compute_cycles;
  max_item_cycles = std::max(max_item_cycles, other.max_item_cycles);
  item_count += other.item_count;
  launch_count += other.launch_count;
  seconds += other.seconds;
}

KernelScope::KernelScope(Device* device, std::string tag)
    : device_(device), tag_(std::move(tag)) {}

KernelScope::KernelScope(KernelScope&& other) noexcept
    : device_(other.device_),
      tag_(std::move(other.tag_)),
      mem_(other.mem_),
      compute_cycles_(other.compute_cycles_),
      max_item_cycles_(other.max_item_cycles_),
      item_start_cycles_(other.item_start_cycles_),
      in_item_(other.in_item_),
      item_count_(other.item_count_),
      launch_count_(other.launch_count_),
      cta_shared_bytes_(other.cta_shared_bytes_) {
  other.device_ = nullptr;
}

KernelScope::~KernelScope() { End(); }

double KernelScope::CyclesNow() const {
  const DeviceSpec& spec = device_->spec();
  return compute_cycles_ +
         static_cast<double>(mem_.load_transactions) *
             spec.cycles_per_load_transaction +
         static_cast<double>(mem_.store_transactions) *
             spec.cycles_per_store_transaction +
         static_cast<double>(mem_.atomic_ops) * spec.cycles_per_atomic +
         static_cast<double>(mem_.shared_bytes) * spec.cycles_per_shared_byte;
}

void KernelScope::LoadGather(std::span<const int64_t> indices,
                             int elem_bytes) {
  const DeviceSpec& spec = device_->spec();
  mem_.load_requests += 1;
  mem_.load_transactions += static_cast<uint64_t>(
      GatherTransactions(indices, elem_bytes, spec.transaction_bytes));
}

void KernelScope::LoadContiguous(int64_t start_elem, int64_t count,
                                 int elem_bytes) {
  if (count <= 0) return;
  const DeviceSpec& spec = device_->spec();
  const int64_t txns = ContiguousTransactions(start_elem, count, elem_bytes,
                                              spec.transaction_bytes);
  // One request per warp-worth of lanes touching the run.
  const int64_t lanes_per_request = spec.warp_size;
  mem_.load_requests +=
      static_cast<uint64_t>((count + lanes_per_request - 1) /
                            lanes_per_request);
  mem_.load_transactions += static_cast<uint64_t>(txns);
}

void KernelScope::StoreGather(std::span<const int64_t> indices,
                              int elem_bytes) {
  const DeviceSpec& spec = device_->spec();
  mem_.store_requests += 1;
  mem_.store_transactions += static_cast<uint64_t>(
      GatherTransactions(indices, elem_bytes, spec.transaction_bytes));
}

void KernelScope::StoreContiguous(int64_t start_elem, int64_t count,
                                  int elem_bytes) {
  if (count <= 0) return;
  const DeviceSpec& spec = device_->spec();
  const int64_t txns = ContiguousTransactions(start_elem, count, elem_bytes,
                                              spec.transaction_bytes);
  const int64_t lanes_per_request = spec.warp_size;
  mem_.store_requests +=
      static_cast<uint64_t>((count + lanes_per_request - 1) /
                            lanes_per_request);
  mem_.store_transactions += static_cast<uint64_t>(txns);
}

void KernelScope::Atomic(int64_t count) {
  if (count > 0) mem_.atomic_ops += static_cast<uint64_t>(count);
}

void KernelScope::SharedBytes(int64_t bytes) {
  if (bytes > 0) mem_.shared_bytes += static_cast<uint64_t>(bytes);
}

void KernelScope::Compute(int64_t ops) {
  if (ops > 0) compute_cycles_ += static_cast<double>(ops) *
                                  device_->spec().cycles_per_compute_op;
}

void KernelScope::ExtraLaunches(int64_t count) {
  if (count > 0) launch_count_ += count;
}

void KernelScope::SetCtaSharedBytes(int64_t bytes) {
  cta_shared_bytes_ = std::max(cta_shared_bytes_, bytes);
}

void KernelScope::BeginItem() {
  IBFS_CHECK(!in_item_);
  in_item_ = true;
  item_start_cycles_ = CyclesNow();
}

void KernelScope::EndItem() {
  IBFS_CHECK(in_item_);
  in_item_ = false;
  ++item_count_;
  max_item_cycles_ =
      std::max(max_item_cycles_, CyclesNow() - item_start_cycles_);
}

void KernelScope::End() {
  if (device_ == nullptr) return;
  device_->FinishKernel(this);
  device_ = nullptr;
}

Device::Device(DeviceSpec spec) : spec_(std::move(spec)) {}

KernelScope Device::BeginKernel(std::string_view tag) {
  return KernelScope(this, std::string(tag));
}

void Device::FinishKernel(KernelScope* scope) {
  const double total_cycles = scope->CyclesNow();
  // Shared-memory occupancy: each resident CTA claims cta_shared bytes,
  // so an SM hosts at most shared_capacity / cta_shared CTAs. When the
  // resident-warp count falls below the saturation point, latency hiding
  // degrades and the effective parallel slots shrink proportionally.
  double slots = static_cast<double>(spec_.parallel_warp_slots);
  if (scope->cta_shared_bytes_ > 0) {
    const double max_ctas_by_shared =
        static_cast<double>(spec_.shared_mem_per_sm_bytes) /
        static_cast<double>(scope->cta_shared_bytes_);
    const double occupancy =
        std::min(1.0, max_ctas_by_shared *
                          static_cast<double>(spec_.warps_per_cta) /
                          static_cast<double>(spec_.resident_warps_per_sm));
    const double saturation =
        std::min(1.0, occupancy / spec_.saturation_occupancy);
    slots = std::max(1.0, slots * saturation);
  }
  // Roofline: compute-issue makespan over the parallel warp slots, bounded
  // below by the slowest single work item and by DRAM bandwidth.
  const double compute_seconds =
      std::max(total_cycles / slots, scope->max_item_cycles_) /
      (spec_.clock_ghz * 1e9);
  const double dram_seconds =
      static_cast<double>(scope->mem_.DramBytes(spec_.dram_sector_bytes)) /
      (spec_.mem_bandwidth_gbps * 1e9);
  double seconds =
      std::max(compute_seconds, dram_seconds) +
      static_cast<double>(scope->launch_count_) * spec_.kernel_launch_overhead_s;
  if (fault_injector_ != nullptr) {
    seconds *= fault_injector_->straggler_multiplier();
    if (!faulted()) {
      Status launch = fault_injector_->OnKernelLaunch();
      if (!launch.ok()) {
        fault_status_ = std::move(launch);
        if (observer_.metering()) {
          observer_.metrics->GetCounter("fault.kernel_faults")->Increment();
        }
        if (observer_.tracing()) {
          observer_.tracer->Instant(
              observer_.track, "kernel_fault", elapsed_seconds_ * 1e6,
              {obs::Arg("tag", scope->tag_),
               obs::Arg("status", fault_status_.ToString())});
        }
      }
    }
  }

  KernelStats stats;
  stats.mem = scope->mem_;
  stats.compute_cycles = total_cycles;
  stats.max_item_cycles = scope->max_item_cycles_;
  stats.item_count = scope->item_count_;
  stats.launch_count = scope->launch_count_;
  stats.seconds = seconds;

  if (observer_.tracing()) {
    std::vector<obs::TraceArg> span_args = {
        obs::Arg("load_transactions", stats.mem.load_transactions),
        obs::Arg("store_transactions", stats.mem.store_transactions),
        obs::Arg("atomic_ops", stats.mem.atomic_ops),
        obs::Arg("launches", stats.launch_count),
        obs::Arg("items", stats.item_count)};
    if (!observer_.context.empty()) {
      span_args.push_back(obs::Arg("ctx", observer_.context));
    }
    observer_.tracer->CompleteSpan(observer_.track, scope->tag_, "kernel",
                                   elapsed_seconds_ * 1e6, seconds * 1e6,
                                   std::move(span_args));
  }
  if (metric_kernels_ != nullptr) {
    metric_kernels_->Increment(stats.launch_count);
    metric_load_txn_->Increment(
        static_cast<int64_t>(stats.mem.load_transactions));
    metric_store_txn_->Increment(
        static_cast<int64_t>(stats.mem.store_transactions));
    metric_atomics_->Increment(static_cast<int64_t>(stats.mem.atomic_ops));
  }

  elapsed_seconds_ += seconds;
  totals_.Add(stats);
  phases_[scope->tag_].Add(stats);
}

void Device::SetFaultInjector(FaultInjector* injector) {
  fault_injector_ = injector;
}

void Device::SetObserver(const obs::Observer& observer) {
  observer_ = observer;
  if (observer_.metering()) {
    metric_kernels_ = observer_.metrics->GetCounter("gpusim.kernel_launches");
    metric_load_txn_ =
        observer_.metrics->GetCounter("gpusim.load_transactions");
    metric_store_txn_ =
        observer_.metrics->GetCounter("gpusim.store_transactions");
    metric_atomics_ = observer_.metrics->GetCounter("gpusim.atomic_ops");
  } else {
    metric_kernels_ = nullptr;
    metric_load_txn_ = nullptr;
    metric_store_txn_ = nullptr;
    metric_atomics_ = nullptr;
  }
}

KernelStats Device::PhaseStats(std::string_view tag) const {
  auto it = phases_.find(std::string(tag));
  if (it == phases_.end()) return KernelStats{};
  return it->second;
}

void Device::ResetStats() {
  elapsed_seconds_ = 0.0;
  totals_ = KernelStats{};
  phases_.clear();
}

}  // namespace ibfs::gpusim
