#include "gpusim/device.h"

#include <algorithm>

#include "gpusim/fault.h"
#include "obs/metrics.h"

namespace ibfs::gpusim {

void KernelStats::Add(const KernelStats& other) {
  mem.Add(other.mem);
  compute_cycles += other.compute_cycles;
  max_item_cycles = std::max(max_item_cycles, other.max_item_cycles);
  item_count += other.item_count;
  launch_count += other.launch_count;
  seconds += other.seconds;
}

KernelScope::KernelScope(Device* device, const DeviceSpec* spec,
                         PhaseId phase)
    : device_(device), spec_(spec), phase_(phase) {}

KernelScope::KernelScope(KernelScope&& other) noexcept
    : device_(other.device_),
      spec_(other.spec_),
      phase_(other.phase_),
      mem_(other.mem_),
      compute_ops_(other.compute_ops_),
      max_item_cycles_(other.max_item_cycles_),
      item_start_compute_ops_(other.item_start_compute_ops_),
      item_start_load_txn_(other.item_start_load_txn_),
      item_start_store_txn_(other.item_start_store_txn_),
      item_start_atomics_(other.item_start_atomics_),
      item_start_shared_(other.item_start_shared_),
      in_item_(other.in_item_),
      item_count_(other.item_count_),
      launch_count_(other.launch_count_),
      cta_shared_bytes_(other.cta_shared_bytes_) {
  other.device_ = nullptr;
}

KernelScope::~KernelScope() { End(); }

void KernelScope::LoadGather(std::span<const int64_t> indices,
                             int elem_bytes) {
  mem_.load_requests += 1;
  mem_.load_transactions += static_cast<uint64_t>(
      GatherTransactions(indices, elem_bytes, spec_->transaction_bytes));
}

void KernelScope::StoreGather(std::span<const int64_t> indices,
                              int elem_bytes) {
  mem_.store_requests += 1;
  mem_.store_transactions += static_cast<uint64_t>(
      GatherTransactions(indices, elem_bytes, spec_->transaction_bytes));
}

void KernelScope::ExtraLaunches(int64_t count) {
  if (count > 0) launch_count_ += count;
}

void KernelScope::SetCtaSharedBytes(int64_t bytes) {
  cta_shared_bytes_ = std::max(cta_shared_bytes_, bytes);
}

void KernelScope::End() {
  if (device_ == nullptr) return;
  device_->FinishKernel(this);
  device_ = nullptr;
}

Device::Device(DeviceSpec spec) : spec_(std::move(spec)) {}

PhaseId Device::InternPhase(std::string_view tag) {
  const auto it = phase_ids_.find(tag);
  if (it != phase_ids_.end()) return it->second;
  const PhaseId id = static_cast<PhaseId>(phase_slots_.size());
  const auto id_node = phase_ids_.emplace(std::string(tag), id).first;
  const auto stat_node = phases_.emplace(id_node->first, KernelStats{}).first;
  phase_slots_.push_back(PhaseSlot{&id_node->first, &stat_node->second});
  return id;
}

KernelScope Device::BeginKernel(PhaseId phase) {
  IBFS_CHECK(phase >= 0 &&
             static_cast<size_t>(phase) < phase_slots_.size());
  ++open_kernels_;
  return KernelScope(this, &spec_, phase);
}

void Device::FinishKernel(KernelScope* scope) {
  // The timing model runs here, once per kernel, over the scope's batched
  // totals: strategies only touched integer accumulators until now.
  const double total_cycles = scope->CyclesNow();
  // Shared-memory occupancy: each resident CTA claims cta_shared bytes,
  // so an SM hosts at most shared_capacity / cta_shared CTAs. When the
  // resident-warp count falls below the saturation point, latency hiding
  // degrades and the effective parallel slots shrink proportionally.
  double slots = static_cast<double>(spec_.parallel_warp_slots);
  if (scope->cta_shared_bytes_ > 0) {
    const double max_ctas_by_shared =
        static_cast<double>(spec_.shared_mem_per_sm_bytes) /
        static_cast<double>(scope->cta_shared_bytes_);
    const double occupancy =
        std::min(1.0, max_ctas_by_shared *
                          static_cast<double>(spec_.warps_per_cta) /
                          static_cast<double>(spec_.resident_warps_per_sm));
    const double saturation =
        std::min(1.0, occupancy / spec_.saturation_occupancy);
    slots = std::max(1.0, slots * saturation);
  }
  // Roofline: compute-issue makespan over the parallel warp slots, bounded
  // below by the slowest single work item and by DRAM bandwidth.
  const double compute_seconds =
      std::max(total_cycles / slots, scope->max_item_cycles_) /
      (spec_.clock_ghz * 1e9);
  const double dram_seconds =
      static_cast<double>(scope->mem_.DramBytes(spec_.dram_sector_bytes)) /
      (spec_.mem_bandwidth_gbps * 1e9);
  double seconds =
      std::max(compute_seconds, dram_seconds) +
      static_cast<double>(scope->launch_count_) * spec_.kernel_launch_overhead_s;
  const PhaseSlot& slot = phase_slots_[static_cast<size_t>(scope->phase_)];
  if (fault_injector_ != nullptr) {
    seconds *= fault_injector_->straggler_multiplier();
    if (!faulted()) {
      Status launch = fault_injector_->OnKernelLaunch();
      if (!launch.ok()) {
        fault_status_ = std::move(launch);
        if (observer_.metering()) {
          observer_.metrics->GetCounter("fault.kernel_faults")->Increment();
        }
        if (observer_.tracing()) {
          observer_.tracer->Instant(
              observer_.track, "kernel_fault", elapsed_seconds_ * 1e6,
              {obs::Arg("tag", *slot.name),
               obs::Arg("status", fault_status_.ToString())});
        }
      }
    }
  }

  KernelStats stats;
  stats.mem = scope->mem_;
  stats.compute_cycles = total_cycles;
  stats.max_item_cycles = scope->max_item_cycles_;
  stats.item_count = scope->item_count_;
  stats.launch_count = scope->launch_count_;
  stats.seconds = seconds;

  if (observer_.tracing()) {
    std::vector<obs::TraceArg> span_args = {
        obs::Arg("load_transactions", stats.mem.load_transactions),
        obs::Arg("store_transactions", stats.mem.store_transactions),
        obs::Arg("atomic_ops", stats.mem.atomic_ops),
        obs::Arg("launches", stats.launch_count),
        obs::Arg("items", stats.item_count)};
    if (!observer_.context.empty()) {
      span_args.push_back(obs::Arg("ctx", observer_.context));
    }
    observer_.tracer->CompleteSpan(observer_.track, *slot.name, "kernel",
                                   elapsed_seconds_ * 1e6, seconds * 1e6,
                                   std::move(span_args));
  }
  if (metric_kernels_ != nullptr) {
    metric_kernels_->Increment(stats.launch_count);
    metric_load_txn_->Increment(
        static_cast<int64_t>(stats.mem.load_transactions));
    metric_store_txn_->Increment(
        static_cast<int64_t>(stats.mem.store_transactions));
    metric_atomics_->Increment(static_cast<int64_t>(stats.mem.atomic_ops));
  }

  elapsed_seconds_ += seconds;
  totals_.Add(stats);
  slot.stats->Add(stats);
  --open_kernels_;
}

void Device::ChargeCommSeconds(PhaseId phase, double seconds) {
  IBFS_CHECK(phase >= 0 && static_cast<size_t>(phase) < phase_slots_.size());
  if (seconds <= 0.0) return;
  const PhaseSlot& slot = phase_slots_[static_cast<size_t>(phase)];
  if (observer_.tracing()) {
    std::vector<obs::TraceArg> span_args;
    if (!observer_.context.empty()) {
      span_args.push_back(obs::Arg("ctx", observer_.context));
    }
    observer_.tracer->CompleteSpan(observer_.track, *slot.name, "comm",
                                   elapsed_seconds_ * 1e6, seconds * 1e6,
                                   std::move(span_args));
  }
  KernelStats stats;
  stats.seconds = seconds;
  stats.launch_count = 0;
  elapsed_seconds_ += seconds;
  totals_.Add(stats);
  slot.stats->Add(stats);
}

void Device::SetFaultInjector(FaultInjector* injector) {
  fault_injector_ = injector;
}

void Device::SetObserver(const obs::Observer& observer) {
  observer_ = observer;
  if (observer_.metering()) {
    metric_kernels_ = observer_.metrics->GetCounter("gpusim.kernel_launches");
    metric_load_txn_ =
        observer_.metrics->GetCounter("gpusim.load_transactions");
    metric_store_txn_ =
        observer_.metrics->GetCounter("gpusim.store_transactions");
    metric_atomics_ = observer_.metrics->GetCounter("gpusim.atomic_ops");
  } else {
    metric_kernels_ = nullptr;
    metric_load_txn_ = nullptr;
    metric_store_txn_ = nullptr;
    metric_atomics_ = nullptr;
  }
}

KernelStats Device::PhaseStats(std::string_view tag) const {
  const auto it = phases_.find(tag);
  if (it == phases_.end()) return KernelStats{};
  return it->second;
}

void Device::ResetStats() {
  IBFS_CHECK(open_kernels_ == 0)
      << "ResetStats with a kernel scope still open";
  elapsed_seconds_ = 0.0;
  totals_ = KernelStats{};
  phases_.clear();
  phase_ids_.clear();
  phase_slots_.clear();
}

}  // namespace ibfs::gpusim
