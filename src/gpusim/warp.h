#ifndef IBFS_GPUSIM_WARP_H_
#define IBFS_GPUSIM_WARP_H_

#include <cstdint>
#include <span>

namespace ibfs::gpusim {

/// SIMT warp-vote primitives. iBFS's joint frontier queue generation uses
/// CUDA's __any() to decide whether any instance considers a vertex a
/// frontier, and __ballot() to record *which* instances share it
/// (Section 4). In the simulator a warp's lane predicates are explicit, so
/// the primitives are pure bit math — but they are exercised through this
/// API so the kernel code reads like its CUDA counterpart.

inline constexpr int kWarpSize = 32;

/// CUDA __ballot(): bit i of the result is lane i's predicate.
/// Lanes beyond predicates.size() contribute 0. Precondition: <= 32 lanes.
uint32_t Ballot(std::span<const bool> predicates);

/// CUDA __any(): true if any lane's predicate is set.
bool Any(std::span<const bool> predicates);

/// CUDA __all(): true if every lane in [0, lane_count) is set.
bool All(std::span<const bool> predicates);

/// Lane id of the first set bit of a ballot mask (leader election for the
/// single thread that enqueues a shared frontier); -1 if mask == 0.
int LeaderLane(uint32_t ballot_mask);

}  // namespace ibfs::gpusim

#endif  // IBFS_GPUSIM_WARP_H_
