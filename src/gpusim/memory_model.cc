#include "gpusim/memory_model.h"

#include <algorithm>
#include <numeric>

#include "util/logging.h"

namespace ibfs::gpusim {

const char* CommScheduleName(CommSchedule schedule) {
  switch (schedule) {
    case CommSchedule::kAllGather:
      return "allgather";
    case CommSchedule::kButterfly:
      return "butterfly";
  }
  return "unknown";
}

CommCost FrontierExchangeCost(CommSchedule schedule, int participants,
                              int64_t bytes_per_rank, const LinkSpec& link) {
  CommCost cost;
  if (participants <= 1 || bytes_per_rank <= 0) return cost;
  IBFS_CHECK(link.bandwidth_gbps > 0.0 && link.latency_us >= 0.0);
  const int64_t p = participants;
  // Every rank must end up with every other rank's slice, so (P-1) slices
  // cross each rank's link regardless of schedule; fleet-wide that is
  // P * (P-1) slices on the wire.
  cost.bytes_on_wire = p * (p - 1) * bytes_per_rank;
  const double slice_seconds =
      static_cast<double>(bytes_per_rank) / (link.bandwidth_gbps * 1e9);
  const double latency_s = link.latency_us * 1e-6;
  switch (schedule) {
    case CommSchedule::kAllGather:
      // Ring: round r forwards one slice; P-1 rounds, each latency + one
      // slice of serialization.
      cost.rounds = p - 1;
      cost.seconds = static_cast<double>(p - 1) * (latency_s + slice_seconds);
      break;
    case CommSchedule::kButterfly: {
      // Recursive doubling: round r exchanges 2^r slices, so the payload
      // term is the same (P-1) slices but only ceil(log2 P) latencies are
      // serialized. Non-power-of-two P pays the same ceil(log2 P) rounds
      // with a final fix-up round folded in.
      int64_t rounds = 0;
      for (int64_t reach = 1; reach < p; reach <<= 1) ++rounds;
      cost.rounds = rounds;
      cost.seconds = static_cast<double>(rounds) * latency_s +
                     static_cast<double>(p - 1) * slice_seconds;
      break;
    }
  }
  return cost;
}

int64_t ContiguousTransactions(int64_t start_elem, int64_t count,
                               int elem_bytes, int seg_bytes,
                               int warp_size) {
  if (count <= 0) return 0;
  IBFS_CHECK(elem_bytes > 0 && seg_bytes > 0 && warp_size > 0);
  // Sub-warp run: a single (partial) chunk — the common case for status-row
  // probes, kept free of the periodicity machinery below.
  if (count < warp_size) {
    return ChunkTransactions(start_elem * elem_bytes, count * elem_bytes,
                             seg_bytes);
  }
  const int64_t span = int64_t{warp_size} * elem_bytes;
  const int64_t full_chunks = count / warp_size;
  // A full chunk's transaction count depends only on its starting byte
  // offset modulo seg_bytes, and successive chunks advance that offset by
  // span mod seg_bytes — so the per-chunk counts repeat with period
  // seg_bytes / gcd(span, seg_bytes) chunks. Sum one period directly and
  // scale; the leftover full chunks are a prefix of the period. Identical
  // integers to walking every chunk.
  const int64_t period =
      seg_bytes / std::gcd(span, static_cast<int64_t>(seg_bytes));
  int64_t transactions = 0;
  if (full_chunks <= 2 * period) {
    for (int64_t c = 0; c < full_chunks; ++c) {
      transactions += ChunkTransactions((start_elem + c * warp_size) *
                                            elem_bytes,
                                        span, seg_bytes);
    }
  } else {
    const int64_t reps = full_chunks / period;
    const int64_t rem = full_chunks % period;
    int64_t per_period = 0;
    int64_t rem_sum = 0;
    for (int64_t c = 0; c < period; ++c) {
      const int64_t t = ChunkTransactions(
          (start_elem + c * warp_size) * elem_bytes, span, seg_bytes);
      per_period += t;
      if (c < rem) rem_sum += t;
    }
    transactions = reps * per_period + rem_sum;
  }
  const int64_t tail = count % warp_size;
  if (tail > 0) {
    transactions += ChunkTransactions(
        (start_elem + full_chunks * warp_size) * elem_bytes,
        tail * elem_bytes, seg_bytes);
  }
  return transactions;
}

int64_t GatherTransactions(std::span<const int64_t> indices, int elem_bytes,
                           int seg_bytes) {
  IBFS_CHECK(elem_bytes > 0 && seg_bytes > 0);
  // Warp-sized inputs: dedupe segment ids with a small stack buffer.
  int64_t segs[64];
  size_t n = 0;
  for (int64_t idx : indices) {
    if (idx == kInactiveLane) continue;
    const int64_t seg = idx * elem_bytes / seg_bytes;
    bool seen = false;
    for (size_t i = 0; i < n; ++i) {
      if (segs[i] == seg) {
        seen = true;
        break;
      }
    }
    if (!seen && n < 64) segs[n++] = seg;
  }
  return static_cast<int64_t>(n);
}

ContiguousRunAggregator::ContiguousRunAggregator(int64_t count,
                                                int elem_bytes,
                                                int seg_bytes,
                                                int warp_size)
    : count_(count),
      elem_bytes_(elem_bytes),
      seg_bytes_(seg_bytes),
      warp_size_(warp_size),
      residue_mask_((seg_bytes & (seg_bytes - 1)) == 0 ? seg_bytes - 1 : -1),
      uniform_aligned_(residue_mask_ >= 0 && count > 0 && elem_bytes > 0 &&
                       seg_bytes % (count * elem_bytes) == 0),
      requests_per_run_((count + warp_size - 1) / warp_size),
      table_(static_cast<size_t>(seg_bytes), -1) {
  IBFS_CHECK(count > 0 && elem_bytes > 0 && seg_bytes > 0 && warp_size > 0);
}

int64_t ContiguousRunAggregator::TransactionsFor(int64_t start_elem) const {
  return ContiguousTransactions(start_elem, count_, elem_bytes_, seg_bytes_,
                                warp_size_);
}

void MemCounters::Add(const MemCounters& other) {
  load_transactions += other.load_transactions;
  store_transactions += other.store_transactions;
  load_requests += other.load_requests;
  store_requests += other.store_requests;
  atomic_ops += other.atomic_ops;
  shared_bytes += other.shared_bytes;
}

int64_t MemCounters::DramBytes(int transaction_bytes) const {
  return static_cast<int64_t>(load_transactions + store_transactions +
                              atomic_ops) *
         transaction_bytes;
}

double MemCounters::LoadTransactionsPerRequest() const {
  if (load_requests == 0) return 0.0;
  return static_cast<double>(load_transactions) /
         static_cast<double>(load_requests);
}

}  // namespace ibfs::gpusim
