#include "gpusim/memory_model.h"

#include <algorithm>

#include "util/logging.h"

namespace ibfs::gpusim {

int64_t ContiguousTransactions(int64_t start_elem, int64_t count,
                               int elem_bytes, int seg_bytes,
                               int warp_size) {
  if (count <= 0) return 0;
  IBFS_CHECK(elem_bytes > 0 && seg_bytes > 0 && warp_size > 0);
  int64_t transactions = 0;
  for (int64_t chunk = 0; chunk < count; chunk += warp_size) {
    const int64_t chunk_count = std::min<int64_t>(warp_size, count - chunk);
    const int64_t first_byte = (start_elem + chunk) * elem_bytes;
    const int64_t last_byte =
        (start_elem + chunk + chunk_count) * elem_bytes - 1;
    transactions += last_byte / seg_bytes - first_byte / seg_bytes + 1;
  }
  return transactions;
}

int64_t GatherTransactions(std::span<const int64_t> indices, int elem_bytes,
                           int seg_bytes) {
  IBFS_CHECK(elem_bytes > 0 && seg_bytes > 0);
  // Warp-sized inputs: dedupe segment ids with a small stack buffer.
  int64_t segs[64];
  size_t n = 0;
  for (int64_t idx : indices) {
    if (idx == kInactiveLane) continue;
    const int64_t seg = idx * elem_bytes / seg_bytes;
    bool seen = false;
    for (size_t i = 0; i < n; ++i) {
      if (segs[i] == seg) {
        seen = true;
        break;
      }
    }
    if (!seen && n < 64) segs[n++] = seg;
  }
  return static_cast<int64_t>(n);
}

void MemCounters::Add(const MemCounters& other) {
  load_transactions += other.load_transactions;
  store_transactions += other.store_transactions;
  load_requests += other.load_requests;
  store_requests += other.store_requests;
  atomic_ops += other.atomic_ops;
  shared_bytes += other.shared_bytes;
}

int64_t MemCounters::DramBytes(int transaction_bytes) const {
  return static_cast<int64_t>(load_transactions + store_transactions +
                              atomic_ops) *
         transaction_bytes;
}

double MemCounters::LoadTransactionsPerRequest() const {
  if (load_requests == 0) return 0.0;
  return static_cast<double>(load_transactions) /
         static_cast<double>(load_requests);
}

}  // namespace ibfs::gpusim
