#ifndef IBFS_GPUSIM_REPORT_H_
#define IBFS_GPUSIM_REPORT_H_

#include <map>
#include <string>

#include "gpusim/device.h"

namespace ibfs::gpusim {

/// Renders a device's accumulated per-phase counters as an
/// nvprof-style text table: one row per kernel tag with simulated time,
/// launches, load/store transactions, transactions-per-request, atomics
/// and shared-memory traffic, plus a totals row. Intended for examples,
/// the CLI, and debugging — the figure harnesses read the raw counters.
std::string FormatProfile(const Device& device);

/// Same, for an explicit phase map (e.g. an EngineResult's snapshot).
std::string FormatProfile(const std::map<std::string, KernelStats>& phases,
                          const KernelStats& totals, double elapsed_seconds);

}  // namespace ibfs::gpusim

#endif  // IBFS_GPUSIM_REPORT_H_
