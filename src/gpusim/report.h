#ifndef IBFS_GPUSIM_REPORT_H_
#define IBFS_GPUSIM_REPORT_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "gpusim/device.h"

namespace ibfs::gpusim {

/// One row of the per-phase profile: the structured form shared by the
/// nvprof-style text table and the JSON run report, so both render the
/// same numbers from one code path. The final row is the totals row,
/// named kTotalRowName.
struct ProfileRow {
  std::string phase;
  double seconds = 0.0;
  double percent = 0.0;
  int64_t launches = 0;
  uint64_t load_transactions = 0;
  uint64_t store_transactions = 0;
  uint64_t load_requests = 0;
  uint64_t store_requests = 0;
  double load_transactions_per_request = 0.0;
  uint64_t atomic_ops = 0;
  uint64_t shared_bytes = 0;
};

inline constexpr const char* kTotalRowName = "TOTAL";

/// Builds the profile rows (one per phase tag, plus the totals row last)
/// from an explicit phase map — e.g. an EngineResult's snapshot.
std::vector<ProfileRow> ProfileRows(
    const PhaseMap& phases,
    const KernelStats& totals, double elapsed_seconds);

/// Same, from a device's accumulated counters.
std::vector<ProfileRow> ProfileRows(const Device& device);

/// Renders a device's accumulated per-phase counters as an
/// nvprof-style text table: one row per kernel tag with simulated time,
/// launches, load/store transactions, transactions-per-request, atomics
/// and shared-memory traffic, plus a totals row. Intended for examples,
/// the CLI, and debugging — the figure harnesses read the raw counters.
std::string FormatProfile(const Device& device);

/// Same, for an explicit phase map (e.g. an EngineResult's snapshot).
std::string FormatProfile(const PhaseMap& phases,
                          const KernelStats& totals, double elapsed_seconds);

}  // namespace ibfs::gpusim

#endif  // IBFS_GPUSIM_REPORT_H_
