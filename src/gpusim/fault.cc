#include "gpusim/fault.h"

#include <algorithm>
#include <charconv>
#include <cmath>
#include <sstream>

namespace ibfs::gpusim {
namespace {

/// splitmix64 finalizer — mixes plan seed, device id, and attempt salt
/// into one well-distributed injector seed.
uint64_t Mix(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

Result<double> ParseDouble(std::string_view text, const std::string& key) {
  double value = 0.0;
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), value);
  if (ec != std::errc() || ptr != text.data() + text.size()) {
    return Status::InvalidArgument("fault spec: bad number for \"" + key +
                                   "\"");
  }
  return value;
}

Result<int64_t> ParseInt(std::string_view text, const std::string& key) {
  int64_t value = 0;
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), value);
  if (ec != std::errc() || ptr != text.data() + text.size()) {
    return Status::InvalidArgument("fault spec: bad integer for \"" + key +
                                   "\"");
  }
  return value;
}

std::string FormatP(double p) {
  std::ostringstream os;
  os << p;
  return os.str();
}

}  // namespace

bool FaultPlan::enabled() const {
  if (defaults.any()) return true;
  for (const auto& [id, faults] : per_device) {
    if (faults.any()) return true;
  }
  return false;
}

const DeviceFaults& FaultPlan::ForDevice(int device_id) const {
  const auto it = per_device.find(device_id);
  return it == per_device.end() ? defaults : it->second;
}

std::vector<int> FaultPlan::PermanentlyFailedDevices() const {
  std::vector<int> dead;
  for (int d = 0; d < device_count; ++d) {
    if (ForDevice(d).permanent_failure) dead.push_back(d);
  }
  return dead;
}

double FaultPlan::MaxStragglerMultiplier() const {
  double max_mult = defaults.straggler_multiplier;
  for (int d = 0; d < device_count; ++d) {
    max_mult = std::max(max_mult, ForDevice(d).straggler_multiplier);
  }
  return max_mult;
}

Status FaultPlan::Validate() const {
  if (device_count < 1) {
    return Status::InvalidArgument("fault plan: device_count must be >= 1");
  }
  auto check = [](const DeviceFaults& f) {
    if (f.launch_failure_p < 0.0 || f.launch_failure_p > 1.0) {
      return Status::InvalidArgument(
          "fault plan: launch_failure_p must be in [0, 1]");
    }
    if (f.corruption_p < 0.0 || f.corruption_p > 1.0) {
      return Status::InvalidArgument(
          "fault plan: corruption_p must be in [0, 1]");
    }
    if (f.straggler_multiplier < 1.0 ||
        !std::isfinite(f.straggler_multiplier)) {
      return Status::InvalidArgument(
          "fault plan: straggler_multiplier must be >= 1 and finite");
    }
    return Status::OK();
  };
  IBFS_RETURN_NOT_OK(check(defaults));
  for (const auto& [id, faults] : per_device) {
    if (id < 0 || id >= device_count) {
      return Status::InvalidArgument(
          "fault plan: per-device override outside fleet: device " +
          std::to_string(id));
    }
    IBFS_RETURN_NOT_OK(check(faults));
  }
  return Status::OK();
}

Result<FaultPlan> FaultPlan::Parse(std::string_view spec) {
  FaultPlan plan;
  size_t pos = 0;
  while (pos <= spec.size()) {
    const size_t comma = std::min(spec.find(',', pos), spec.size());
    const std::string_view item = spec.substr(pos, comma - pos);
    pos = comma + 1;
    if (item.empty()) {
      if (comma == spec.size()) break;
      continue;
    }
    const size_t eq = item.find('=');
    if (eq == std::string_view::npos) {
      return Status::InvalidArgument("fault spec: expected key=value, got \"" +
                                     std::string(item) + "\"");
    }
    const std::string key(item.substr(0, eq));
    const std::string_view value = item.substr(eq + 1);
    if (key == "seed") {
      auto v = ParseInt(value, key);
      if (!v.ok()) return v.status();
      plan.seed = static_cast<uint64_t>(v.value());
    } else if (key == "devices") {
      auto v = ParseInt(value, key);
      if (!v.ok()) return v.status();
      plan.device_count = static_cast<int>(v.value());
    } else if (key == "p_fail") {
      auto v = ParseDouble(value, key);
      if (!v.ok()) return v.status();
      plan.defaults.launch_failure_p = v.value();
    } else if (key == "corrupt") {
      auto v = ParseDouble(value, key);
      if (!v.ok()) return v.status();
      plan.defaults.corruption_p = v.value();
    } else if (key == "perm") {
      auto v = ParseInt(value, key);
      if (!v.ok()) return v.status();
      const int device = static_cast<int>(v.value());
      auto [it, inserted] = plan.per_device.try_emplace(
          device, plan.defaults);
      it->second.permanent_failure = true;
    } else if (key == "straggle") {
      const size_t colon = value.find(':');
      if (colon == std::string_view::npos) {
        auto mult = ParseDouble(value, key);
        if (!mult.ok()) return mult.status();
        plan.defaults.straggler_multiplier = mult.value();
      } else {
        auto device = ParseInt(value.substr(0, colon), key);
        if (!device.ok()) return device.status();
        auto mult = ParseDouble(value.substr(colon + 1), key);
        if (!mult.ok()) return mult.status();
        auto [it, inserted] = plan.per_device.try_emplace(
            static_cast<int>(device.value()), plan.defaults);
        it->second.straggler_multiplier = mult.value();
      }
    } else {
      return Status::InvalidArgument("fault spec: unknown key \"" + key +
                                     "\"");
    }
    if (comma == spec.size()) break;
  }
  // Overrides created before a later fleet-wide key keep their snapshot of
  // the defaults; re-apply the final defaults to fields the override never
  // customized so "p_fail=...,perm=D" and "perm=D,p_fail=..." agree.
  for (auto& [id, faults] : plan.per_device) {
    DeviceFaults merged = plan.defaults;
    merged.permanent_failure = faults.permanent_failure;
    if (faults.straggler_multiplier != 1.0) {
      merged.straggler_multiplier = faults.straggler_multiplier;
    }
    faults = merged;
  }
  IBFS_RETURN_NOT_OK(plan.Validate());
  return plan;
}

std::string FaultPlan::ToString() const {
  if (!enabled()) return "";
  std::string out = "seed=" + std::to_string(seed) +
                    ",devices=" + std::to_string(device_count);
  if (defaults.launch_failure_p > 0.0) {
    out += ",p_fail=" + FormatP(defaults.launch_failure_p);
  }
  if (defaults.corruption_p > 0.0) {
    out += ",corrupt=" + FormatP(defaults.corruption_p);
  }
  if (defaults.straggler_multiplier != 1.0) {
    out += ",straggle=" + FormatP(defaults.straggler_multiplier);
  }
  for (const auto& [id, faults] : per_device) {
    if (faults.permanent_failure) out += ",perm=" + std::to_string(id);
    if (faults.straggler_multiplier != defaults.straggler_multiplier) {
      out += ",straggle=" + std::to_string(id) + ":" +
             FormatP(faults.straggler_multiplier);
    }
  }
  return out;
}

FaultInjector::FaultInjector(const FaultPlan& plan, int device_id,
                             uint64_t salt)
    : faults_(plan.ForDevice(device_id)),
      device_id_(device_id),
      prng_(Mix(plan.seed) ^ Mix(static_cast<uint64_t>(device_id) + 1) ^
            Mix(salt + 0x517cc1b727220a95ULL)) {}

Status FaultInjector::OnKernelLaunch() {
  if (faults_.permanent_failure) {
    return Status::Unavailable("injected permanent failure on device " +
                               std::to_string(device_id_));
  }
  if (faults_.launch_failure_p > 0.0 &&
      prng_.NextBool(faults_.launch_failure_p)) {
    return Status::Unavailable(
        "injected transient kernel-launch failure on device " +
        std::to_string(device_id_));
  }
  return Status::OK();
}

bool FaultInjector::ShouldCorruptTransfer() {
  return faults_.corruption_p > 0.0 && prng_.NextBool(faults_.corruption_p);
}

void FaultInjector::CorruptDepths(
    std::vector<std::vector<uint8_t>>* depths) {
  if (depths == nullptr) return;
  for (std::vector<uint8_t>& d : *depths) {
    if (d.empty()) continue;
    const size_t at = static_cast<size_t>(prng_.NextBounded(d.size()));
    d[at] ^= static_cast<uint8_t>(1 + prng_.NextBounded(255));
  }
}

}  // namespace ibfs::gpusim
