#ifndef IBFS_GPUSIM_FAULT_H_
#define IBFS_GPUSIM_FAULT_H_

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "util/prng.h"
#include "util/status.h"

namespace ibfs::gpusim {

/// Deterministic fault injection for the simulated GPU fleet. A seeded
/// FaultPlan describes what goes wrong (per-device kernel-launch failure
/// probability, permanent device death, straggler slowdowns, and
/// result-corruption on the device-to-host transfer); a FaultInjector
/// instantiated per execution attempt draws from a PRNG seeded by
/// (plan seed, device id, attempt salt), so a chaos run replays bit-for-bit
/// given the same seed and schedule. The consumers (Engine retry loop,
/// BfsService circuit breaker + CPU fallback) are in core/resilient.h and
/// service/; see docs/RESILIENCE.md.

/// One device's fault profile.
struct DeviceFaults {
  /// Probability that a kernel launch fails transiently (the whole group
  /// execution on that device aborts; a retry may succeed).
  double launch_failure_p = 0.0;
  /// Device is permanently dead: every kernel launch fails. Models a
  /// failed rank that a circuit breaker must route around.
  bool permanent_failure = false;
  /// Multiplies every kernel's simulated time (>= 1). Models a straggler
  /// rank (thermal throttling, contended PCIe link).
  double straggler_multiplier = 1.0;
  /// Probability that a group's depth payload is corrupted in flight on
  /// the device-to-host transfer (flipped depth words). Detected by the
  /// resilient executor's transfer checksum.
  double corruption_p = 0.0;

  bool any() const {
    return launch_failure_p > 0.0 || permanent_failure ||
           straggler_multiplier != 1.0 || corruption_p > 0.0;
  }
};

/// The whole fleet's fault configuration. Device ids are ordinals
/// 0..device_count-1; `per_device` overrides the default profile.
struct FaultPlan {
  uint64_t seed = 1;
  /// Size of the simulated device fleet faults are spread over (group g of
  /// a batch run executes on device g % device_count; the service's router
  /// assigns ids round-robin, skipping open breakers).
  int device_count = 1;
  DeviceFaults defaults;
  std::map<int, DeviceFaults> per_device;

  /// True when any device can fault at all (the engine skips injector
  /// setup entirely otherwise, keeping the fault-free path unchanged).
  bool enabled() const;

  /// The effective profile for one device ordinal.
  const DeviceFaults& ForDevice(int device_id) const;

  /// Device ordinals whose profile has permanent_failure set.
  std::vector<int> PermanentlyFailedDevices() const;

  /// Largest straggler multiplier across the fleet.
  double MaxStragglerMultiplier() const;

  Status Validate() const;

  /// Parses a comma-separated spec, e.g.
  ///   "seed=7,devices=4,p_fail=0.1,perm=1,straggle=2:8,corrupt=0.05"
  /// Keys: seed=S, devices=N, p_fail=P (fleet-wide transient launch
  /// failure), corrupt=P (fleet-wide transfer corruption), perm=D (device D
  /// permanently fails; repeatable), straggle=D:M (device D runs M times
  /// slower; repeatable; "straggle=M" applies fleet-wide).
  static Result<FaultPlan> Parse(std::string_view spec);

  /// Round-trippable display form of the plan ("" when !enabled()).
  std::string ToString() const;
};

/// Draws fault decisions for one execution attempt on one device.
/// Deterministic: the decision stream depends only on (plan seed,
/// device_id, salt) and the order of calls, never on wall-clock time or
/// thread scheduling.
class FaultInjector {
 public:
  /// `salt` distinguishes attempts (retry k must not replay attempt k-1's
  /// coin flips); callers pass a stable per-(group, attempt) value.
  FaultInjector(const FaultPlan& plan, int device_id, uint64_t salt);

  int device_id() const { return device_id_; }

  /// Simulated-time multiplier for every kernel on this device (>= 1).
  double straggler_multiplier() const { return faults_.straggler_multiplier; }

  /// Decides whether the next kernel launch fails. Returns OK, or
  /// Unavailable for an injected failure (permanent devices always fail).
  Status OnKernelLaunch();

  /// Decides whether this attempt's result payload is corrupted in
  /// transfer.
  bool ShouldCorruptTransfer();

  /// Flips one depth word per non-empty instance vector at a seeded
  /// position — the "result-corruption faults that flip depth words" of
  /// the plan. No-op on an empty payload.
  void CorruptDepths(std::vector<std::vector<uint8_t>>* depths);

 private:
  DeviceFaults faults_;
  int device_id_;
  Prng prng_;
};

}  // namespace ibfs::gpusim

#endif  // IBFS_GPUSIM_FAULT_H_
