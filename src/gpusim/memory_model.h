#ifndef IBFS_GPUSIM_MEMORY_MODEL_H_
#define IBFS_GPUSIM_MEMORY_MODEL_H_

#include <cstdint>
#include <span>

namespace ibfs::gpusim {

/// Coalescing arithmetic for the simulated global-memory system.
///
/// CUDA devices service a warp's memory request in 128-byte aligned
/// segments: lanes touching the same segment share one transaction, lanes
/// scattered across segments each cost one. This is the mechanism behind the
/// paper's Figures 18, 19 and 21 — the joint status array turns per-instance
/// byte probes into contiguous runs, cutting transactions per request from
/// ~4 to 1, and the bitwise array shrinks the bytes themselves.

/// Sentinel element index for an inactive lane.
inline constexpr int64_t kInactiveLane = -1;

/// Transactions needed to access `count` contiguous elements of size
/// `elem_bytes` starting at element index `start_elem` of a segment-aligned
/// array. Returns 0 when count <= 0. Coalescing happens per warp request:
/// each 32-element chunk is served separately (two warps never merge into
/// one transaction, even on adjacent addresses), so a 128-byte status row
/// read by 128 one-byte threads costs four transactions — while one thread
/// reading the same statuses as two packed words costs one. This is the
/// hardware fact behind the bitwise status array's advantage (Section 6).
int64_t ContiguousTransactions(int64_t start_elem, int64_t count,
                               int elem_bytes, int seg_bytes,
                               int warp_size = 32);

/// Transactions needed for one warp gather: each active lane accesses
/// element `indices[lane]` of a segment-aligned array of `elem_bytes`
/// elements; kInactiveLane lanes are masked off. Counts distinct segments.
int64_t GatherTransactions(std::span<const int64_t> indices, int elem_bytes,
                           int seg_bytes);

/// Counters for one kernel (or one aggregated phase). Mirrors the NVIDIA
/// profiler metrics the paper reports: gld/gst transactions, requests
/// (one per warp memory instruction), and atomics.
struct MemCounters {
  uint64_t load_transactions = 0;
  uint64_t store_transactions = 0;
  uint64_t load_requests = 0;
  uint64_t store_requests = 0;
  uint64_t atomic_ops = 0;
  uint64_t shared_bytes = 0;

  void Add(const MemCounters& other);

  /// DRAM traffic implied by the transaction counts.
  int64_t DramBytes(int transaction_bytes) const;

  /// Average global load transactions per load request (Figure 19 metric).
  double LoadTransactionsPerRequest() const;
};

}  // namespace ibfs::gpusim

#endif  // IBFS_GPUSIM_MEMORY_MODEL_H_
