#ifndef IBFS_GPUSIM_MEMORY_MODEL_H_
#define IBFS_GPUSIM_MEMORY_MODEL_H_

#include <bit>
#include <cstdint>
#include <span>
#include <vector>

namespace ibfs::gpusim {

/// Coalescing arithmetic for the simulated global-memory system.
///
/// CUDA devices service a warp's memory request in 128-byte aligned
/// segments: lanes touching the same segment share one transaction, lanes
/// scattered across segments each cost one. This is the mechanism behind the
/// paper's Figures 18, 19 and 21 — the joint status array turns per-instance
/// byte probes into contiguous runs, cutting transactions per request from
/// ~4 to 1, and the bitwise array shrinks the bytes themselves.

/// Sentinel element index for an inactive lane.
inline constexpr int64_t kInactiveLane = -1;

/// Transactions for one warp chunk spanning bytes
/// [first_byte, first_byte + span_bytes - 1]: the number of seg_bytes
/// segments the span touches. Inline so KernelScope's sub-warp fast path
/// (runs shorter than a warp are always a single chunk) avoids an
/// out-of-line call; every shipped DeviceSpec uses a power-of-two segment,
/// so the common case is two shifts rather than two int64 divisions (the
/// offsets are non-negative, so shift == division exactly).
inline int64_t ChunkTransactions(int64_t first_byte, int64_t span_bytes,
                                 int seg_bytes) {
  if ((seg_bytes & (seg_bytes - 1)) == 0) {
    const int shift = std::countr_zero(static_cast<uint32_t>(seg_bytes));
    return ((first_byte + span_bytes - 1) >> shift) -
           (first_byte >> shift) + 1;
  }
  return (first_byte + span_bytes - 1) / seg_bytes - first_byte / seg_bytes +
         1;
}

/// Transactions needed to access `count` contiguous elements of size
/// `elem_bytes` starting at element index `start_elem` of a segment-aligned
/// array. Returns 0 when count <= 0. Coalescing happens per warp request:
/// each 32-element chunk is served separately (two warps never merge into
/// one transaction, even on adjacent addresses), so a 128-byte status row
/// read by 128 one-byte threads costs four transactions — while one thread
/// reading the same statuses as two packed words costs one. This is the
/// hardware fact behind the bitwise status array's advantage (Section 6).
///
/// Internally O(seg_bytes / gcd) rather than O(count / warp_size): the
/// per-chunk transaction count is periodic in the chunk's byte offset, so
/// long runs are summed one period at a time. The result is the same
/// integer the per-chunk walk produces.
int64_t ContiguousTransactions(int64_t start_elem, int64_t count,
                               int elem_bytes, int seg_bytes,
                               int warp_size = 32);

/// Transactions needed for one warp gather: each active lane accesses
/// element `indices[lane]` of a segment-aligned array of `elem_bytes`
/// elements; kInactiveLane lanes are masked off. Counts distinct segments.
int64_t GatherTransactions(std::span<const int64_t> indices, int elem_bytes,
                           int seg_bytes);

/// Batches the accounting of many equal-length contiguous accesses — the
/// shape of every status-row probe in the joint and bitwise strategies
/// (`count` and `elem_bytes` fixed per kernel, only the row start varies).
/// A run's transaction count depends only on its starting *byte offset
/// within a segment*, so the aggregator memoizes one ContiguousTransactions
/// result per observed residue and each further Observe is a table lookup
/// and two adds. Totals are bit-identical to calling
/// KernelScope::LoadContiguous / StoreContiguous once per run (same
/// integers, summed in the same order-independent domain); drain into a
/// scope with KernelScope::LoadRuns / StoreRuns.
class ContiguousRunAggregator {
 public:
  ContiguousRunAggregator(int64_t count, int elem_bytes, int seg_bytes,
                          int warp_size = 32);

  /// Accounts one contiguous run of `count` elements starting at
  /// `start_elem` (element index, must be >= 0). The residue reduction is a
  /// mask when seg_bytes is a power of two (all shipped specs), a modulo
  /// otherwise — same index either way.
  void Observe(int64_t start_elem) {
    const int64_t start_byte = start_elem * elem_bytes_;
    const size_t residue = static_cast<size_t>(
        residue_mask_ >= 0 ? start_byte & residue_mask_
                           : start_byte % seg_bytes_);
    int64_t& txns = table_[residue];
    if (txns < 0) txns = TransactionsFor(start_elem);
    transactions_ += txns;
    ++runs_;
  }

  /// True when every *span-aligned* run (start_elem a multiple of count)
  /// costs exactly one transaction: the span divides the power-of-two
  /// segment, so an aligned run can never straddle a segment boundary.
  /// Status-row probes qualify whenever the row size divides 128 bytes —
  /// the common group sizes — and their inner loops can then charge a whole
  /// scan with one ObserveAlignedRuns call instead of one Observe per row.
  bool UniformAligned() const { return uniform_aligned_; }

  /// Accounts `n` span-aligned runs at once. Only valid when
  /// UniformAligned() — identical integers to n Observe calls whose
  /// start_elem values are multiples of count().
  void ObserveAlignedRuns(int64_t n) {
    runs_ += n;
    transactions_ += n;
  }

  /// Forgets the observed runs (the memo table survives) — lets one
  /// aggregator serve many drain points, e.g. one flush per work item.
  void Reset() {
    runs_ = 0;
    transactions_ = 0;
  }

  /// Runs observed so far.
  int64_t runs() const { return runs_; }
  /// Total transactions across all observed runs.
  int64_t transactions() const { return transactions_; }
  /// Total warp requests across all observed runs (one per warp-worth of
  /// lanes per run, matching LoadContiguous/StoreContiguous).
  int64_t requests() const { return runs_ * requests_per_run_; }

  int64_t count() const { return count_; }
  int elem_bytes() const { return elem_bytes_; }

 private:
  int64_t TransactionsFor(int64_t start_elem) const;

  int64_t count_;
  int elem_bytes_;
  int seg_bytes_;
  int warp_size_;
  // seg_bytes - 1 when seg_bytes is a power of two, -1 otherwise.
  int64_t residue_mask_;
  // See UniformAligned().
  bool uniform_aligned_;
  int64_t requests_per_run_;
  int64_t runs_ = 0;
  int64_t transactions_ = 0;
  // Transactions per starting-byte residue, -1 until first observed.
  std::vector<int64_t> table_;
};

/// Inter-device frontier-exchange schedules for partitioned execution.
/// Both move the same payload (every rank ends up holding every rank's
/// frontier slice); they differ in how many latency-bound rounds the
/// schedule serializes.
enum class CommSchedule {
  /// Ring all-gather: P-1 rounds, each forwarding one rank-sized slice.
  kAllGather,
  /// Butterfly (recursive-doubling) all-gather: ceil(log2 P) rounds with
  /// doubling slice sizes — same bytes on the wire, fewer latency terms.
  kButterfly,
};

/// Returns "allgather" / "butterfly".
const char* CommScheduleName(CommSchedule schedule);

/// Inter-device link description (bandwidth/latency come from DeviceSpec;
/// the CLI can override both).
struct LinkSpec {
  /// Point-to-point link bandwidth in GB/s (1 GB = 1e9 bytes).
  double bandwidth_gbps = 12.0;
  /// One-way message latency in microseconds, paid once per round.
  double latency_us = 5.0;
};

/// Modeled cost of one frontier exchange (one BFS superstep).
struct CommCost {
  /// Wall time of the exchange on the critical path.
  double seconds = 0.0;
  /// Total bytes crossing links fleet-wide: P * (P-1) * bytes_per_rank for
  /// either schedule (all-gather moves every slice to every other rank).
  int64_t bytes_on_wire = 0;
  /// Latency-bound rounds the schedule serializes.
  int64_t rounds = 0;
};

/// Cost of all-gathering `bytes_per_rank` bytes from each of `participants`
/// ranks under `schedule` over `link`. The bandwidth term is identical for
/// both schedules ((P-1) slices through each rank's link); the ring pays
/// P-1 latencies where the butterfly pays ceil(log2 P) — so the butterfly
/// wins whenever P >= 4 latency-bound exchanges matter, and ties at P <= 2.
/// Returns all-zero cost for participants <= 1 (nothing to exchange).
CommCost FrontierExchangeCost(CommSchedule schedule, int participants,
                              int64_t bytes_per_rank, const LinkSpec& link);

/// Counters for one kernel (or one aggregated phase). Mirrors the NVIDIA
/// profiler metrics the paper reports: gld/gst transactions, requests
/// (one per warp memory instruction), and atomics.
struct MemCounters {
  uint64_t load_transactions = 0;
  uint64_t store_transactions = 0;
  uint64_t load_requests = 0;
  uint64_t store_requests = 0;
  uint64_t atomic_ops = 0;
  uint64_t shared_bytes = 0;

  void Add(const MemCounters& other);

  /// DRAM traffic implied by the transaction counts.
  int64_t DramBytes(int transaction_bytes) const;

  /// Average global load transactions per load request (Figure 19 metric).
  double LoadTransactionsPerRequest() const;
};

}  // namespace ibfs::gpusim

#endif  // IBFS_GPUSIM_MEMORY_MODEL_H_
