#include "gpusim/cluster.h"

#include <algorithm>
#include <numeric>

#include "util/logging.h"

namespace ibfs::gpusim {

Cluster::Cluster(int device_count, DeviceSpec spec)
    : device_count_(device_count), spec_(std::move(spec)) {
  IBFS_CHECK(device_count_ > 0);
}

ClusterRun Cluster::Place(std::span<const double> unit_costs,
                          PlacementPolicy policy) const {
  ClusterRun run;
  run.device_seconds.assign(device_count_, 0.0);
  run.unit_device.assign(unit_costs.size(), 0);
  run.unit_start_seconds.assign(unit_costs.size(), 0.0);
  switch (policy) {
    case PlacementPolicy::kRoundRobin: {
      for (size_t i = 0; i < unit_costs.size(); ++i) {
        const int device = static_cast<int>(i % device_count_);
        run.unit_device[i] = device;
        run.unit_start_seconds[i] = run.device_seconds[device];
        run.device_seconds[device] += unit_costs[i];
      }
      break;
    }
    case PlacementPolicy::kLpt: {
      std::vector<size_t> order(unit_costs.size());
      std::iota(order.begin(), order.end(), 0);
      std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
        return unit_costs[a] > unit_costs[b];
      });
      for (size_t i : order) {
        auto least = std::min_element(run.device_seconds.begin(),
                                      run.device_seconds.end());
        const int device =
            static_cast<int>(least - run.device_seconds.begin());
        run.unit_device[i] = device;
        run.unit_start_seconds[i] = *least;
        *least += unit_costs[i];
      }
      break;
    }
  }
  run.makespan_seconds =
      *std::max_element(run.device_seconds.begin(), run.device_seconds.end());
  run.total_seconds =
      std::accumulate(unit_costs.begin(), unit_costs.end(), 0.0);
  return run;
}

double ClusterSpeedup(std::span<const double> unit_costs, int devices,
                      PlacementPolicy policy) {
  if (unit_costs.empty()) return 0.0;
  Cluster cluster(devices);
  const ClusterRun run = cluster.Place(unit_costs, policy);
  if (run.makespan_seconds <= 0.0) return 0.0;
  return run.total_seconds / run.makespan_seconds;
}

}  // namespace ibfs::gpusim
