#include "gpusim/warp.h"

#include "util/bitops.h"
#include "util/logging.h"

namespace ibfs::gpusim {

uint32_t Ballot(std::span<const bool> predicates) {
  IBFS_CHECK(predicates.size() <= static_cast<size_t>(kWarpSize));
  uint32_t mask = 0;
  for (size_t lane = 0; lane < predicates.size(); ++lane) {
    if (predicates[lane]) mask |= uint32_t{1} << lane;
  }
  return mask;
}

bool Any(std::span<const bool> predicates) {
  return Ballot(predicates) != 0;
}

bool All(std::span<const bool> predicates) {
  const uint32_t mask = Ballot(predicates);
  const auto n = static_cast<int>(predicates.size());
  return mask == static_cast<uint32_t>(LowMask(n));
}

int LeaderLane(uint32_t ballot_mask) {
  if (ballot_mask == 0) return -1;
  return LowestSetBit(ballot_mask);
}

}  // namespace ibfs::gpusim
