#ifndef IBFS_GPUSIM_DEVICE_SPEC_H_
#define IBFS_GPUSIM_DEVICE_SPEC_H_

#include <cstdint>
#include <string>

namespace ibfs::gpusim {

/// Static description of a simulated GPU. Defaults model the NVIDIA Tesla
/// K40 the paper evaluates on (15 SMXs, 2880 cores, 288 GB/s GDDR5, 12 GB);
/// K20() models the Stampede nodes of the scalability study.
///
/// The simulator is a throughput model, not cycle-accurate silicon: kernel
/// time is max(compute makespan, DRAM bandwidth bound) + launch overheads.
/// All paper effects we reproduce (coalescing, shared frontiers, bitwise
/// packing, early termination, load imbalance) express themselves through
/// the counted quantities, so relative results are robust to the constants.
struct DeviceSpec {
  std::string name = "K40-sim";
  /// Number of streaming multiprocessors.
  int sm_count = 15;
  /// Lanes per warp (CUDA SIMT width).
  int warp_size = 32;
  /// Warps the device can issue truly in parallel (cores / warp_size).
  int parallel_warp_slots = 90;
  /// Core clock in GHz.
  double clock_ghz = 0.745;
  /// Global-memory bandwidth in GB/s.
  double mem_bandwidth_gbps = 288.0;
  /// Global-memory transaction granularity in bytes (L2 segment); the
  /// coalescer merges lane accesses within this window.
  int transaction_bytes = 128;
  /// DRAM bytes moved per transaction for the bandwidth roofline. Kepler
  /// fetches 32-byte sectors; charging one sector per counted transaction
  /// keeps scattered byte probes from being billed a full 128B line each.
  int dram_sector_bytes = 32;
  /// Device memory capacity in bytes (caps the group size N, Section 3).
  int64_t global_memory_bytes = int64_t{12} * 1024 * 1024 * 1024;
  /// Shared memory per SM (K40: 48 KiB). Kernels that declare per-CTA
  /// shared usage (the adjacency cache) lose occupancy when
  /// cta_shared * resident-CTAs exceeds this.
  int64_t shared_mem_per_sm_bytes = 48 * 1024;
  /// Warps per CTA assumed by the occupancy model (256 threads).
  int warps_per_cta = 8;
  /// Resident warps per SM at full occupancy (K40: 64).
  int resident_warps_per_sm = 64;
  /// Fraction of full occupancy needed to keep the issue pipeline
  /// saturated (latency hiding); below it, effective slots scale down.
  double saturation_occupancy = 0.5;

  /// Issue-cost model, in cycles consumed by one warp.
  double cycles_per_load_transaction = 8.0;
  double cycles_per_store_transaction = 8.0;
  double cycles_per_atomic = 32.0;
  /// Per *scalar* (lane) op. Kernels report one "op" per logical
  /// inspection step (load + compare + branch + bookkeeping, ~16
  /// instructions); a warp retires 32 lanes per issue cycle, so one op
  /// costs 16/32 = 0.5 warp-cycles. This makes per-instance inspection
  /// work the dominant cost for byte-status kernels — the regime the
  /// paper's 11x bitwise speedup lives in (one word op serves 64
  /// instances).
  double cycles_per_compute_op = 0.5;
  double cycles_per_shared_byte = 0.125;

  /// Host-side cost of one kernel launch, in seconds. Stream-pipelined
  /// launches overlap issue with execution, so the marginal cost is well
  /// under the ~5us of an isolated synchronous launch.
  double kernel_launch_overhead_s = 2e-7;

  /// Inter-device link for partitioned execution's frontier exchange
  /// (gpusim::FrontierExchangeCost). Defaults model PCIe 3.0 x16 between
  /// boards in one box: ~12 GB/s effective, ~5us one-way. The K20 Stampede
  /// nodes talk over InfiniBand FDR instead (see K20()).
  double link_bandwidth_gbps = 12.0;
  double link_latency_us = 5.0;

  /// The K40 configuration used throughout the single-GPU evaluation.
  static DeviceSpec K40();
  /// The K20 configuration of the 112-GPU Stampede experiment (Fig. 17).
  static DeviceSpec K20();
};

}  // namespace ibfs::gpusim

#endif  // IBFS_GPUSIM_DEVICE_SPEC_H_
