#include "gpusim/report.h"

#include <sstream>

#include "util/csv.h"

namespace ibfs::gpusim {
namespace {

ProfileRow MakeRow(const std::string& name, const KernelStats& st,
                   double elapsed_seconds) {
  ProfileRow row;
  row.phase = name;
  row.seconds = st.seconds;
  row.percent =
      elapsed_seconds > 0 ? 100.0 * st.seconds / elapsed_seconds : 0.0;
  row.launches = st.launch_count;
  row.load_transactions = st.mem.load_transactions;
  row.store_transactions = st.mem.store_transactions;
  row.load_requests = st.mem.load_requests;
  row.store_requests = st.mem.store_requests;
  row.load_transactions_per_request = st.mem.LoadTransactionsPerRequest();
  row.atomic_ops = st.mem.atomic_ops;
  row.shared_bytes = st.mem.shared_bytes;
  return row;
}

}  // namespace

std::vector<ProfileRow> ProfileRows(
    const PhaseMap& phases,
    const KernelStats& totals, double elapsed_seconds) {
  std::vector<ProfileRow> rows;
  rows.reserve(phases.size() + 1);
  for (const auto& [tag, stats] : phases) {
    rows.push_back(MakeRow(tag, stats, elapsed_seconds));
  }
  rows.push_back(MakeRow(kTotalRowName, totals, elapsed_seconds));
  return rows;
}

std::vector<ProfileRow> ProfileRows(const Device& device) {
  return ProfileRows(device.phases(), device.totals(),
                     device.elapsed_seconds());
}

std::string FormatProfile(const PhaseMap& phases,
                          const KernelStats& totals,
                          double elapsed_seconds) {
  ibfs::CsvTable table({"phase", "time_ms", "pct", "launches", "gld_txn",
                        "gst_txn", "gld_per_req", "atomics", "shared_KiB"});
  for (const ProfileRow& row : ProfileRows(phases, totals, elapsed_seconds)) {
    table.Row()
        .Add(row.phase)
        .Add(row.seconds * 1e3, 3)
        .Add(row.percent, 1)
        .Add(row.launches)
        .Add(row.load_transactions)
        .Add(row.store_transactions)
        .Add(row.load_transactions_per_request, 2)
        .Add(row.atomic_ops)
        .Add(static_cast<double>(row.shared_bytes) / 1024.0, 1);
  }
  std::ostringstream os;
  table.Print(os);
  return os.str();
}

std::string FormatProfile(const Device& device) {
  return FormatProfile(device.phases(), device.totals(),
                       device.elapsed_seconds());
}

}  // namespace ibfs::gpusim
