#include "gpusim/report.h"

#include <sstream>

#include "util/csv.h"

namespace ibfs::gpusim {

std::string FormatProfile(const std::map<std::string, KernelStats>& phases,
                          const KernelStats& totals,
                          double elapsed_seconds) {
  ibfs::CsvTable table({"phase", "time_ms", "pct", "launches", "gld_txn",
                        "gst_txn", "gld_per_req", "atomics", "shared_KiB"});
  auto add_row = [&](const std::string& name, const KernelStats& st) {
    table.Row()
        .Add(name)
        .Add(st.seconds * 1e3, 3)
        .Add(elapsed_seconds > 0 ? 100.0 * st.seconds / elapsed_seconds
                                 : 0.0,
             1)
        .Add(st.launch_count)
        .Add(st.mem.load_transactions)
        .Add(st.mem.store_transactions)
        .Add(st.mem.LoadTransactionsPerRequest(), 2)
        .Add(st.mem.atomic_ops)
        .Add(static_cast<double>(st.mem.shared_bytes) / 1024.0, 1);
  };
  for (const auto& [tag, stats] : phases) add_row(tag, stats);
  add_row("TOTAL", totals);
  std::ostringstream os;
  table.Print(os);
  return os.str();
}

std::string FormatProfile(const Device& device) {
  return FormatProfile(device.phases(), device.totals(),
                       device.elapsed_seconds());
}

}  // namespace ibfs::gpusim
