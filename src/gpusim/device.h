#ifndef IBFS_GPUSIM_DEVICE_H_
#define IBFS_GPUSIM_DEVICE_H_

#include <cstdint>
#include <map>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "gpusim/device_spec.h"
#include "gpusim/memory_model.h"
#include "obs/trace.h"
#include "util/logging.h"
#include "util/status.h"

namespace ibfs::obs {
class Counter;
}  // namespace ibfs::obs

namespace ibfs::gpusim {

class Device;
class FaultInjector;

/// Accounting for one finished kernel launch.
struct KernelStats {
  MemCounters mem;
  double compute_cycles = 0.0;
  double max_item_cycles = 0.0;
  int64_t item_count = 0;
  int64_t launch_count = 0;
  double seconds = 0.0;

  void Add(const KernelStats& other);
};

/// Interned phase tag: index into a device's phase table. Strategies
/// intern their tags once (Device::InternPhase) and open kernels by id, so
/// the per-kernel cost of tagging is an array index — no string allocation,
/// no map lookup.
using PhaseId = int32_t;

/// Per-phase aggregates keyed by tag. The transparent comparator lets
/// lookups run on string_view without materializing a std::string.
using PhaseMap = std::map<std::string, KernelStats, std::less<>>;

/// RAII accounting scope for one simulated kernel launch. Algorithm code
/// opens a scope, reports its memory traffic and compute through the typed
/// methods, and the device converts the totals into simulated time when the
/// scope finishes.
///
/// The scope is the *functional* half of the simulator: its methods only
/// bump plain integer accumulators (transactions via the coalescing
/// arithmetic, op and byte counts verbatim). The *timing* half — the
/// roofline model, occupancy, launch overhead, fault stretching — runs once
/// per kernel in Device::FinishKernel. Cost-model constants in the shipped
/// DeviceSpecs are dyadic rationals, so the simulated seconds produced from
/// the batched totals are bit-identical to charging every call through the
/// model individually.
///
/// Work items (BeginItem/EndItem) bracket one schedulable unit — typically
/// the per-frontier work of one warp — so the device can bound the makespan
/// by the slowest unit, which is how bottom-up workload imbalance
/// (Figure 11) becomes visible in simulated time. Batched charges must land
/// inside the same item bracket as the per-call charges they replace, or
/// the makespan bound would shift.
class KernelScope {
 public:
  KernelScope(KernelScope&& other) noexcept;
  KernelScope& operator=(KernelScope&&) = delete;
  KernelScope(const KernelScope&) = delete;
  KernelScope& operator=(const KernelScope&) = delete;

  /// Finishes the kernel if End() was not called explicitly.
  ~KernelScope();

  /// One warp load request gathering lanes' `indices` into an array of
  /// `elem_bytes` elements (kInactiveLane masks a lane off).
  void LoadGather(std::span<const int64_t> indices, int elem_bytes);

  /// One-or-more warp load requests covering `count` contiguous elements.
  /// Sub-warp runs (the per-item status-row and short adjacency loads that
  /// dominate the strategies' inner loops) resolve to one inline chunk
  /// computation; longer runs take the closed-form path. Same integers
  /// either way.
  void LoadContiguous(int64_t start_elem, int64_t count, int elem_bytes) {
    if (count <= 0) return;
    if (count < spec_->warp_size) {
      ++mem_.load_requests;
      mem_.load_transactions += static_cast<uint64_t>(ChunkTransactions(
          start_elem * elem_bytes, count * elem_bytes,
          spec_->transaction_bytes));
      return;
    }
    mem_.load_requests += static_cast<uint64_t>(
        (count + spec_->warp_size - 1) / spec_->warp_size);
    mem_.load_transactions += static_cast<uint64_t>(ContiguousTransactions(
        start_elem, count, elem_bytes, spec_->transaction_bytes,
        spec_->warp_size));
  }

  /// One warp store request scattering to lanes' `indices`.
  void StoreGather(std::span<const int64_t> indices, int elem_bytes);

  /// Contiguous (coalesced) store of `count` elements.
  void StoreContiguous(int64_t start_elem, int64_t count, int elem_bytes) {
    if (count <= 0) return;
    if (count < spec_->warp_size) {
      ++mem_.store_requests;
      mem_.store_transactions += static_cast<uint64_t>(ChunkTransactions(
          start_elem * elem_bytes, count * elem_bytes,
          spec_->transaction_bytes));
      return;
    }
    mem_.store_requests += static_cast<uint64_t>(
        (count + spec_->warp_size - 1) / spec_->warp_size);
    mem_.store_transactions += static_cast<uint64_t>(ContiguousTransactions(
        start_elem, count, elem_bytes, spec_->transaction_bytes,
        spec_->warp_size));
  }

  /// Drains a ContiguousRunAggregator as loads: bit-identical to one
  /// LoadContiguous call per observed run.
  void LoadRuns(const ContiguousRunAggregator& agg) {
    mem_.load_requests += static_cast<uint64_t>(agg.requests());
    mem_.load_transactions += static_cast<uint64_t>(agg.transactions());
  }

  /// Drains a ContiguousRunAggregator as stores.
  void StoreRuns(const ContiguousRunAggregator& agg) {
    mem_.store_requests += static_cast<uint64_t>(agg.requests());
    mem_.store_transactions += static_cast<uint64_t>(agg.transactions());
  }

  /// `count` atomic read-modify-writes to global memory.
  void Atomic(int64_t count = 1) {
    if (count > 0) mem_.atomic_ops += static_cast<uint64_t>(count);
  }

  /// Shared-memory traffic in bytes (the adjacency cache of Section 4).
  void SharedBytes(int64_t bytes) {
    if (bytes > 0) mem_.shared_bytes += static_cast<uint64_t>(bytes);
  }

  /// `ops` warp-wide ALU instructions.
  void Compute(int64_t ops) {
    if (ops > 0) compute_ops_ += ops;
  }

  /// Batched entry points for hot loops that charge `count` identical
  /// events at once instead of one call per event. Equivalent to calling
  /// the per-event method `count` times.
  void BulkCompute(int64_t count, int64_t ops_each) {
    if (count > 0 && ops_each > 0) compute_ops_ += count * ops_each;
  }
  void BulkShared(int64_t count, int64_t bytes_each) {
    if (count > 0 && bytes_each > 0) {
      mem_.shared_bytes += static_cast<uint64_t>(count * bytes_each);
    }
  }
  void BulkAtomics(int64_t count) { Atomic(count); }

  /// Extra kernel launches beyond the implicit one (the naive multi-kernel
  /// strategy pays one per BFS instance per level).
  void ExtraLaunches(int64_t count);

  /// Declares the per-CTA shared-memory footprint of this kernel (e.g.
  /// the adjacency cache). Occupancy drops when resident CTAs cannot all
  /// fit their footprint into the SM's shared memory, shrinking the
  /// effective parallel warp slots for this launch.
  void SetCtaSharedBytes(int64_t bytes);

  /// Brackets one schedulable work item (see class comment). BeginItem
  /// snapshots the integer accumulators; EndItem converts the integer
  /// deltas to cycles with one dot product. Because every cost constant is
  /// dyadic and the counts are far below 2^53, each term and each sum is an
  /// exactly-represented rational, so the delta form is bit-identical to
  /// differencing two CyclesNow() evaluations — at half the floating-point
  /// work per item.
  void BeginItem() {
    IBFS_CHECK(!in_item_);
    in_item_ = true;
    item_start_compute_ops_ = compute_ops_;
    item_start_load_txn_ = mem_.load_transactions;
    item_start_store_txn_ = mem_.store_transactions;
    item_start_atomics_ = mem_.atomic_ops;
    item_start_shared_ = mem_.shared_bytes;
  }
  void EndItem() {
    IBFS_CHECK(in_item_);
    in_item_ = false;
    ++item_count_;
    const double cycles =
        static_cast<double>(compute_ops_ - item_start_compute_ops_) *
            spec_->cycles_per_compute_op +
        static_cast<double>(mem_.load_transactions - item_start_load_txn_) *
            spec_->cycles_per_load_transaction +
        static_cast<double>(mem_.store_transactions -
                            item_start_store_txn_) *
            spec_->cycles_per_store_transaction +
        static_cast<double>(mem_.atomic_ops - item_start_atomics_) *
            spec_->cycles_per_atomic +
        static_cast<double>(mem_.shared_bytes - item_start_shared_) *
            spec_->cycles_per_shared_byte;
    if (cycles > max_item_cycles_) max_item_cycles_ = cycles;
  }

  /// Finalizes accounting and charges simulated time to the device.
  /// Idempotent; also called by the destructor.
  void End();

  const MemCounters& mem() const { return mem_; }
  double compute_cycles() const {
    return static_cast<double>(compute_ops_) * spec_->cycles_per_compute_op;
  }

 private:
  friend class Device;
  KernelScope(Device* device, const DeviceSpec* spec, PhaseId phase);

  /// Issue cycles implied by the accumulators so far (compute + memory
  /// system). Exact for dyadic cost constants. Called once per kernel by
  /// Device::FinishKernel — the per-item hot path uses the delta form in
  /// EndItem instead.
  double CyclesNow() const {
    return static_cast<double>(compute_ops_) *
               spec_->cycles_per_compute_op +
           static_cast<double>(mem_.load_transactions) *
               spec_->cycles_per_load_transaction +
           static_cast<double>(mem_.store_transactions) *
               spec_->cycles_per_store_transaction +
           static_cast<double>(mem_.atomic_ops) * spec_->cycles_per_atomic +
           static_cast<double>(mem_.shared_bytes) *
               spec_->cycles_per_shared_byte;
  }

  Device* device_;  // null after End()
  const DeviceSpec* spec_;
  PhaseId phase_;
  MemCounters mem_;
  int64_t compute_ops_ = 0;
  double max_item_cycles_ = 0.0;
  // Accumulator snapshots taken at BeginItem (see EndItem's delta form).
  int64_t item_start_compute_ops_ = 0;
  uint64_t item_start_load_txn_ = 0;
  uint64_t item_start_store_txn_ = 0;
  uint64_t item_start_atomics_ = 0;
  uint64_t item_start_shared_ = 0;
  bool in_item_ = false;
  int64_t item_count_ = 0;
  int64_t launch_count_ = 1;
  int64_t cta_shared_bytes_ = 0;
};

/// One simulated GPU. Accumulates simulated time and per-phase counters
/// across kernel launches; strategies tag phases ("td_inspect",
/// "fq_gen", ...) so the figure harnesses can report phase-local metrics
/// exactly as the paper does with the NVIDIA profiler.
class Device {
 public:
  explicit Device(DeviceSpec spec = DeviceSpec::K40());

  /// Interns `tag`, returning its stable id. Idempotent; the first call
  /// per tag allocates its phase slot, later calls are a transparent map
  /// probe. Ids stay valid until ResetStats.
  PhaseId InternPhase(std::string_view tag);

  /// Opens an accounting scope for one kernel launch on an interned phase
  /// — the hot path, no lookup at all.
  KernelScope BeginKernel(PhaseId phase);

  /// Opens an accounting scope for one kernel launch tagged `tag`
  /// (interns on the fly; loops should intern once and use the id form).
  KernelScope BeginKernel(std::string_view tag) {
    return BeginKernel(InternPhase(tag));
  }

  const DeviceSpec& spec() const { return spec_; }

  /// Total simulated seconds across all finished kernels.
  double elapsed_seconds() const { return elapsed_seconds_; }

  /// Counter totals across all finished kernels.
  const KernelStats& totals() const { return totals_; }

  /// Aggregated stats for one phase tag (zeroes if never used).
  KernelStats PhaseStats(std::string_view tag) const;

  /// All phase tags seen so far. The reference stays valid (and its nodes
  /// stable) until ResetStats.
  const PhaseMap& phases() const { return phases_; }

  /// Display name of an interned phase.
  const std::string& PhaseName(PhaseId phase) const {
    return *phase_slots_[static_cast<size_t>(phase)].name;
  }

  /// Charges `seconds` of inter-device communication (a frontier exchange
  /// modeled by FrontierExchangeCost) to this device's timeline under
  /// `phase`: advances the simulated clock, folds one launch-less entry
  /// into the phase/total stats, and emits a "comm" trace span when
  /// observing. Comm time is wall time the device spends synchronized in
  /// the exchange, so it is *not* stretched by a straggler injector and
  /// cannot fault — only kernels launch.
  void ChargeCommSeconds(PhaseId phase, double seconds);

  /// Clears all counters, simulated time, and interned phases. No kernel
  /// scope may be open (open scopes hold phase slots).
  void ResetStats();

  /// Attaches an observer: every finished kernel then emits one trace span
  /// (cat "kernel", simulated-time track from the observer) and bumps the
  /// gpusim.* metric counters. Default observer = disabled; the hot path
  /// then pays one null-pointer check per kernel.
  void SetObserver(const obs::Observer& observer);

  const obs::Observer& observer() const { return observer_; }

  /// Attaches a fault injector (non-owning; null detaches). Every finished
  /// kernel then has its simulated time stretched by the injector's
  /// straggler multiplier, and may latch an injected launch failure into
  /// fault_status(). The default (no injector) leaves the timing model
  /// byte-identical to a fault-free device.
  void SetFaultInjector(FaultInjector* injector);

  /// First injected failure since construction/ClearFault (OK = healthy).
  /// Strategies keep charging work after a fault — the model is a launch
  /// failure detected at the next synchronization point — so callers check
  /// this after a group finishes and discard the attempt on non-OK.
  const Status& fault_status() const { return fault_status_; }
  bool faulted() const { return !fault_status_.ok(); }
  void ClearFault() { fault_status_ = Status::OK(); }

 private:
  friend class KernelScope;

  /// Interned phase: name and aggregate point into the maps below (map
  /// nodes are stable), so FinishKernel folds stats in by array index.
  struct PhaseSlot {
    const std::string* name;
    KernelStats* stats;
  };

  /// Converts a finished scope into simulated seconds (roofline model) and
  /// folds it into the device totals.
  void FinishKernel(KernelScope* scope);

  DeviceSpec spec_;
  double elapsed_seconds_ = 0.0;
  KernelStats totals_;
  PhaseMap phases_;
  std::map<std::string, PhaseId, std::less<>> phase_ids_;
  std::vector<PhaseSlot> phase_slots_;
  int open_kernels_ = 0;
  obs::Observer observer_;
  FaultInjector* fault_injector_ = nullptr;
  Status fault_status_;
  // Metric handles cached at SetObserver time (null when metering is off).
  obs::Counter* metric_kernels_ = nullptr;
  obs::Counter* metric_load_txn_ = nullptr;
  obs::Counter* metric_store_txn_ = nullptr;
  obs::Counter* metric_atomics_ = nullptr;
};

}  // namespace ibfs::gpusim

#endif  // IBFS_GPUSIM_DEVICE_H_
