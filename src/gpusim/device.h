#ifndef IBFS_GPUSIM_DEVICE_H_
#define IBFS_GPUSIM_DEVICE_H_

#include <cstdint>
#include <map>
#include <span>
#include <string>
#include <string_view>

#include "gpusim/device_spec.h"
#include "gpusim/memory_model.h"
#include "obs/trace.h"
#include "util/status.h"

namespace ibfs::obs {
class Counter;
}  // namespace ibfs::obs

namespace ibfs::gpusim {

class Device;
class FaultInjector;

/// Accounting for one finished kernel launch.
struct KernelStats {
  MemCounters mem;
  double compute_cycles = 0.0;
  double max_item_cycles = 0.0;
  int64_t item_count = 0;
  int64_t launch_count = 0;
  double seconds = 0.0;

  void Add(const KernelStats& other);
};

/// RAII accounting scope for one simulated kernel launch. Algorithm code
/// opens a scope, reports its memory traffic and compute through the typed
/// methods, and the device converts the totals into simulated time when the
/// scope finishes.
///
/// Work items (BeginItem/EndItem) bracket one schedulable unit — typically
/// the per-frontier work of one warp — so the device can bound the makespan
/// by the slowest unit, which is how bottom-up workload imbalance
/// (Figure 11) becomes visible in simulated time.
class KernelScope {
 public:
  KernelScope(KernelScope&& other) noexcept;
  KernelScope& operator=(KernelScope&&) = delete;
  KernelScope(const KernelScope&) = delete;
  KernelScope& operator=(const KernelScope&) = delete;

  /// Finishes the kernel if End() was not called explicitly.
  ~KernelScope();

  /// One warp load request gathering lanes' `indices` into an array of
  /// `elem_bytes` elements (kInactiveLane masks a lane off).
  void LoadGather(std::span<const int64_t> indices, int elem_bytes);

  /// One-or-more warp load requests covering `count` contiguous elements.
  void LoadContiguous(int64_t start_elem, int64_t count, int elem_bytes);

  /// One warp store request scattering to lanes' `indices`.
  void StoreGather(std::span<const int64_t> indices, int elem_bytes);

  /// Contiguous (coalesced) store of `count` elements.
  void StoreContiguous(int64_t start_elem, int64_t count, int elem_bytes);

  /// `count` atomic read-modify-writes to global memory.
  void Atomic(int64_t count = 1);

  /// Shared-memory traffic in bytes (the adjacency cache of Section 4).
  void SharedBytes(int64_t bytes);

  /// `ops` warp-wide ALU instructions.
  void Compute(int64_t ops);

  /// Extra kernel launches beyond the implicit one (the naive multi-kernel
  /// strategy pays one per BFS instance per level).
  void ExtraLaunches(int64_t count);

  /// Declares the per-CTA shared-memory footprint of this kernel (e.g.
  /// the adjacency cache). Occupancy drops when resident CTAs cannot all
  /// fit their footprint into the SM's shared memory, shrinking the
  /// effective parallel warp slots for this launch.
  void SetCtaSharedBytes(int64_t bytes);

  /// Brackets one schedulable work item (see class comment).
  void BeginItem();
  void EndItem();

  /// Finalizes accounting and charges simulated time to the device.
  /// Idempotent; also called by the destructor.
  void End();

  const MemCounters& mem() const { return mem_; }
  double compute_cycles() const { return compute_cycles_; }

 private:
  friend class Device;
  KernelScope(Device* device, std::string tag);

  double CyclesNow() const;

  Device* device_;  // null after End()
  std::string tag_;
  MemCounters mem_;
  double compute_cycles_ = 0.0;
  double max_item_cycles_ = 0.0;
  double item_start_cycles_ = 0.0;
  bool in_item_ = false;
  int64_t item_count_ = 0;
  int64_t launch_count_ = 1;
  int64_t cta_shared_bytes_ = 0;
};

/// One simulated GPU. Accumulates simulated time and per-phase counters
/// across kernel launches; strategies tag phases ("td_inspect",
/// "fq_gen", ...) so the figure harnesses can report phase-local metrics
/// exactly as the paper does with the NVIDIA profiler.
class Device {
 public:
  explicit Device(DeviceSpec spec = DeviceSpec::K40());

  /// Opens an accounting scope for one kernel launch tagged `tag`.
  KernelScope BeginKernel(std::string_view tag);

  const DeviceSpec& spec() const { return spec_; }

  /// Total simulated seconds across all finished kernels.
  double elapsed_seconds() const { return elapsed_seconds_; }

  /// Counter totals across all finished kernels.
  const KernelStats& totals() const { return totals_; }

  /// Aggregated stats for one phase tag (zeroes if never used).
  KernelStats PhaseStats(std::string_view tag) const;

  /// All phase tags seen so far.
  std::map<std::string, KernelStats> phases() const { return phases_; }

  /// Clears all counters and simulated time.
  void ResetStats();

  /// Attaches an observer: every finished kernel then emits one trace span
  /// (cat "kernel", simulated-time track from the observer) and bumps the
  /// gpusim.* metric counters. Default observer = disabled; the hot path
  /// then pays one null-pointer check per kernel.
  void SetObserver(const obs::Observer& observer);

  const obs::Observer& observer() const { return observer_; }

  /// Attaches a fault injector (non-owning; null detaches). Every finished
  /// kernel then has its simulated time stretched by the injector's
  /// straggler multiplier, and may latch an injected launch failure into
  /// fault_status(). The default (no injector) leaves the timing model
  /// byte-identical to a fault-free device.
  void SetFaultInjector(FaultInjector* injector);

  /// First injected failure since construction/ClearFault (OK = healthy).
  /// Strategies keep charging work after a fault — the model is a launch
  /// failure detected at the next synchronization point — so callers check
  /// this after a group finishes and discard the attempt on non-OK.
  const Status& fault_status() const { return fault_status_; }
  bool faulted() const { return !fault_status_.ok(); }
  void ClearFault() { fault_status_ = Status::OK(); }

 private:
  friend class KernelScope;

  /// Converts a finished scope into simulated seconds (roofline model) and
  /// folds it into the device totals.
  void FinishKernel(KernelScope* scope);

  DeviceSpec spec_;
  double elapsed_seconds_ = 0.0;
  KernelStats totals_;
  std::map<std::string, KernelStats> phases_;
  obs::Observer observer_;
  FaultInjector* fault_injector_ = nullptr;
  Status fault_status_;
  // Metric handles cached at SetObserver time (null when metering is off).
  obs::Counter* metric_kernels_ = nullptr;
  obs::Counter* metric_load_txn_ = nullptr;
  obs::Counter* metric_store_txn_ = nullptr;
  obs::Counter* metric_atomics_ = nullptr;
};

}  // namespace ibfs::gpusim

#endif  // IBFS_GPUSIM_DEVICE_H_
