#ifndef IBFS_APPS_BETWEENNESS_DEVICE_H_
#define IBFS_APPS_BETWEENNESS_DEVICE_H_

#include <cstdint>
#include <span>
#include <vector>

#include "gpusim/device.h"
#include "gpusim/device_spec.h"
#include "graph/csr.h"
#include "util/status.h"

namespace ibfs::apps {

/// Multi-source Brandes betweenness on the simulated GPU — the workload of
/// the paper's SpMM-BC and McLaughlin/Bader comparisons (Section 9):
/// each group of pivots runs a concurrent forward BFS that also counts
/// shortest paths (sigma), then a level-by-level backward sweep
/// accumulates dependencies. Joint data structures hold the per-(vertex,
/// pivot) depth/sigma/delta values contiguously, so the same coalescing
/// that powers iBFS applies.
struct DeviceBetweennessResult {
  /// Accumulated (unnormalized, directed) betweenness per vertex over the
  /// given pivots — exact when pivots cover all vertices, a pivot-sampled
  /// approximation otherwise (Brandes–Pich style).
  std::vector<double> centrality;
  /// Simulated seconds on the device.
  double sim_seconds = 0.0;
};

/// Runs grouped multi-source Brandes from `pivots` with groups of
/// `group_size` on a device with the given spec.
Result<DeviceBetweennessResult> DeviceBetweenness(
    const graph::Csr& graph, std::span<const graph::VertexId> pivots,
    int group_size = 64,
    const gpusim::DeviceSpec& spec = gpusim::DeviceSpec::K40());

}  // namespace ibfs::apps

#endif  // IBFS_APPS_BETWEENNESS_DEVICE_H_
