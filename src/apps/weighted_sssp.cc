#include "apps/weighted_sssp.h"

#include <algorithm>
#include <queue>

namespace ibfs::apps {
namespace {

using graph::Csr;
using graph::VertexId;

// Mixes an unordered vertex pair and a seed into a weight; both directions
// of an undirected edge hash identically.
uint8_t PairWeight(VertexId u, VertexId v, uint8_t max_weight,
                   uint64_t seed) {
  const uint64_t a = std::min(u, v);
  const uint64_t b = std::max(u, v);
  uint64_t h = seed ^ (a * 0x9e3779b97f4a7c15ULL) ^ (b + 0x7f4a7c15u);
  h ^= h >> 33;
  h *= 0xff51afd7ed558ccdULL;
  h ^= h >> 33;
  return static_cast<uint8_t>(1 + h % max_weight);
}

// Instrumented Dial core shared by the single- and multi-source entries.
Result<std::vector<int64_t>> DialCore(const Csr& graph,
                                      const EdgeWeights& weights,
                                      VertexId source,
                                      baselines::CpuCostModel* cpu) {
  const int64_t n = graph.vertex_count();
  if (static_cast<int64_t>(weights.weights.size()) != graph.edge_count()) {
    return Status::InvalidArgument("weights size != edge count");
  }
  if (weights.max_weight == 0) {
    return Status::InvalidArgument("max_weight must be >= 1");
  }
  if (static_cast<int64_t>(source) >= n) {
    return Status::OutOfRange("source outside graph");
  }
  for (uint8_t w : weights.weights) {
    if (w == 0 || w > weights.max_weight) {
      return Status::InvalidArgument("edge weight outside [1, max_weight]");
    }
  }

  std::vector<int64_t> dist(static_cast<size_t>(n), -1);
  // Circular bucket queue over max_weight+1 distance classes: the weighted
  // generalization of the BFS frontier queue.
  const size_t bucket_count = static_cast<size_t>(weights.max_weight) + 1;
  std::vector<std::vector<VertexId>> buckets(bucket_count);
  dist[source] = 0;
  buckets[0].push_back(source);
  int64_t settled = 0;
  for (int64_t d = 0; settled < n; ++d) {
    auto& bucket = buckets[static_cast<size_t>(d) % bucket_count];
    if (bucket.empty()) {
      // Termination: all buckets drained.
      bool any = false;
      for (const auto& b : buckets) any |= !b.empty();
      if (!any) break;
      continue;
    }
    std::vector<VertexId> frontier;
    frontier.swap(bucket);
    for (VertexId v : frontier) {
      if (dist[v] != d) continue;  // stale entry, superseded earlier
      ++settled;
      const auto neighbors = graph.OutNeighbors(v);
      const auto base = static_cast<size_t>(graph.row_offsets()[v]);
      if (cpu != nullptr) {
        cpu->SequentialBytes(static_cast<int64_t>(neighbors.size()) *
                             (sizeof(VertexId) + 1));
        cpu->RandomLines(static_cast<int64_t>(neighbors.size()));
        cpu->Compute(3 * static_cast<int64_t>(neighbors.size()));
      }
      for (size_t i = 0; i < neighbors.size(); ++i) {
        const VertexId w = neighbors[i];
        const int64_t nd = d + weights.weights[base + i];
        if (dist[w] < 0 || nd < dist[w]) {
          dist[w] = nd;
          buckets[static_cast<size_t>(nd) % bucket_count].push_back(w);
        }
      }
    }
  }
  return dist;
}

}  // namespace

EdgeWeights GenerateWeights(const Csr& graph, uint8_t max_weight,
                            uint64_t seed) {
  EdgeWeights out;
  out.max_weight = std::max<uint8_t>(1, max_weight);
  out.weights.reserve(static_cast<size_t>(graph.edge_count()));
  for (int64_t v = 0; v < graph.vertex_count(); ++v) {
    for (VertexId w : graph.OutNeighbors(static_cast<VertexId>(v))) {
      out.weights.push_back(PairWeight(static_cast<VertexId>(v), w,
                                       out.max_weight, seed));
    }
  }
  return out;
}

Result<std::vector<int64_t>> DialSssp(const Csr& graph,
                                      const EdgeWeights& weights,
                                      VertexId source) {
  return DialCore(graph, weights, source, nullptr);
}

std::vector<int64_t> DijkstraReference(const Csr& graph,
                                       const EdgeWeights& weights,
                                       VertexId source) {
  const int64_t n = graph.vertex_count();
  std::vector<int64_t> dist(static_cast<size_t>(n), -1);
  using Entry = std::pair<int64_t, VertexId>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap;
  dist[source] = 0;
  heap.push({0, source});
  while (!heap.empty()) {
    const auto [d, v] = heap.top();
    heap.pop();
    if (d != dist[v]) continue;
    const auto neighbors = graph.OutNeighbors(v);
    const auto base = static_cast<size_t>(graph.row_offsets()[v]);
    for (size_t i = 0; i < neighbors.size(); ++i) {
      const int64_t nd = d + weights.weights[base + i];
      const VertexId w = neighbors[i];
      if (dist[w] < 0 || nd < dist[w]) {
        dist[w] = nd;
        heap.push({nd, w});
      }
    }
  }
  return dist;
}

Result<std::vector<std::vector<int64_t>>> ConcurrentWeightedSssp(
    const Csr& graph, const EdgeWeights& weights,
    std::span<const VertexId> sources, baselines::CpuCostModel* cpu) {
  if (cpu == nullptr) return Status::InvalidArgument("cpu model is null");
  if (sources.empty()) return Status::InvalidArgument("no sources");
  std::vector<std::vector<int64_t>> out;
  out.reserve(sources.size());
  cpu->ParallelSection();
  for (VertexId s : sources) {
    Result<std::vector<int64_t>> dist = DialCore(graph, weights, s, cpu);
    IBFS_RETURN_NOT_OK(dist.status());
    out.push_back(std::move(dist).value());
  }
  return out;
}

}  // namespace ibfs::apps
