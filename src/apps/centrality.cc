#include "apps/centrality.h"

#include <deque>

#include "ibfs/status_array.h"

namespace ibfs::apps {

Result<std::vector<double>> ClosenessCentrality(
    const graph::Csr& graph, std::span<const graph::VertexId> sources,
    const EngineOptions& options, double* sim_seconds) {
  EngineOptions opts = options;
  opts.keep_depths = true;
  Engine engine(&graph, opts);
  Result<EngineResult> run = engine.Run(sources);
  IBFS_RETURN_NOT_OK(run.status());
  const EngineResult& res = run.value();
  if (sim_seconds != nullptr) *sim_seconds = res.sim_seconds;

  // The engine may regroup sources; map results back to input order.
  std::vector<double> by_source(graph.vertex_count(), 0.0);
  const double n_minus_1 =
      static_cast<double>(graph.vertex_count()) - 1.0;
  for (size_t g = 0; g < res.groups.size(); ++g) {
    for (size_t j = 0; j < res.group_sources[g].size(); ++j) {
      const auto& depths = res.groups[g].depths[j];
      int64_t reached = 0;
      int64_t depth_sum = 0;
      for (uint8_t d : depths) {
        if (d != kUnvisitedDepth) {
          ++reached;
          depth_sum += d;
        }
      }
      double c = 0.0;
      if (reached > 1 && depth_sum > 0 && n_minus_1 > 0) {
        const double r_minus_1 = static_cast<double>(reached) - 1.0;
        c = (r_minus_1 / n_minus_1) *
            (r_minus_1 / static_cast<double>(depth_sum));
      }
      by_source[res.group_sources[g][j]] = c;
    }
  }
  std::vector<double> out;
  out.reserve(sources.size());
  for (graph::VertexId s : sources) out.push_back(by_source[s]);
  return out;
}

std::vector<double> BetweennessCentrality(
    const graph::Csr& graph, std::span<const graph::VertexId> sources) {
  const int64_t n = graph.vertex_count();
  std::vector<double> bc(static_cast<size_t>(n), 0.0);

  // Brandes' algorithm: forward BFS builds shortest-path counts sigma and
  // the level DAG; the backward sweep accumulates dependencies.
  std::vector<int32_t> dist(static_cast<size_t>(n));
  std::vector<double> sigma(static_cast<size_t>(n));
  std::vector<double> delta(static_cast<size_t>(n));
  std::vector<graph::VertexId> order;
  order.reserve(static_cast<size_t>(n));

  for (graph::VertexId s : sources) {
    std::fill(dist.begin(), dist.end(), -1);
    std::fill(sigma.begin(), sigma.end(), 0.0);
    std::fill(delta.begin(), delta.end(), 0.0);
    order.clear();

    dist[s] = 0;
    sigma[s] = 1.0;
    std::deque<graph::VertexId> queue{s};
    while (!queue.empty()) {
      const graph::VertexId v = queue.front();
      queue.pop_front();
      order.push_back(v);
      for (graph::VertexId w : graph.OutNeighbors(v)) {
        if (dist[w] < 0) {
          dist[w] = dist[v] + 1;
          queue.push_back(w);
        }
        if (dist[w] == dist[v] + 1) sigma[w] += sigma[v];
      }
    }
    for (auto it = order.rbegin(); it != order.rend(); ++it) {
      const graph::VertexId w = *it;
      for (graph::VertexId v : graph.InNeighbors(w)) {
        if (dist[v] == dist[w] - 1 && sigma[w] > 0.0) {
          delta[v] += sigma[v] / sigma[w] * (1.0 + delta[w]);
        }
      }
      if (w != s) bc[w] += delta[w];
    }
  }
  return bc;
}

}  // namespace ibfs::apps
