#include "apps/eccentricity.h"

#include <algorithm>

#include "graph/components.h"
#include "ibfs/status_array.h"

namespace ibfs::apps {

Result<EccentricityResult> ComputeEccentricities(
    const graph::Csr& graph, std::span<const graph::VertexId> sources,
    const EngineOptions& options) {
  EngineOptions opts = options;
  opts.keep_depths = true;
  Engine engine(&graph, opts);
  Result<EngineResult> run = engine.Run(sources);
  IBFS_RETURN_NOT_OK(run.status());
  const EngineResult& res = run.value();

  // Map per-group results back to input order.
  std::vector<int> by_vertex(static_cast<size_t>(graph.vertex_count()), -1);
  for (size_t g = 0; g < res.groups.size(); ++g) {
    for (size_t j = 0; j < res.group_sources[g].size(); ++j) {
      int ecc = 0;
      for (uint8_t d : res.groups[g].depths[j]) {
        if (d != kUnvisitedDepth) ecc = std::max(ecc, static_cast<int>(d));
      }
      by_vertex[res.group_sources[g][j]] = ecc;
    }
  }

  EccentricityResult result;
  result.sim_seconds = res.sim_seconds;
  result.eccentricity.reserve(sources.size());
  int diameter = 0;
  int radius = 0x7fffffff;
  for (graph::VertexId s : sources) {
    const int ecc = by_vertex[s];
    result.eccentricity.push_back(ecc);
    diameter = std::max(diameter, ecc);
    radius = std::min(radius, ecc);
  }
  result.diameter_lower_bound = diameter;
  result.radius_upper_bound = sources.empty() ? 0 : radius;
  return result;
}

Result<int> EstimateDiameterDoubleSweep(const graph::Csr& graph, int rounds,
                                        uint64_t seed,
                                        const EngineOptions& options) {
  if (rounds < 1) return Status::InvalidArgument("rounds must be >= 1");
  EngineOptions opts = options;
  opts.keep_depths = true;

  // One BFS; returns (farthest vertex, eccentricity of the source).
  auto sweep = [&](graph::VertexId s) -> Result<std::pair<graph::VertexId,
                                                          int>> {
    Engine engine(&graph, opts);
    const graph::VertexId batch[1] = {s};
    Result<EngineResult> run = engine.Run({batch, 1});
    IBFS_RETURN_NOT_OK(run.status());
    const auto& depths = run.value().groups[0].depths[0];
    graph::VertexId farthest = s;
    int ecc = 0;
    for (int64_t v = 0; v < graph.vertex_count(); ++v) {
      if (depths[v] != kUnvisitedDepth && depths[v] > ecc) {
        ecc = depths[v];
        farthest = static_cast<graph::VertexId>(v);
      }
    }
    return std::make_pair(farthest, ecc);
  };

  const auto seeds = graph::SampleConnectedSources(graph, rounds, seed);
  if (seeds.empty()) return Status::FailedPrecondition("empty graph");
  int best = 0;
  for (graph::VertexId s : seeds) {
    auto first = sweep(s);
    IBFS_RETURN_NOT_OK(first.status());
    auto second = sweep(first.value().first);
    IBFS_RETURN_NOT_OK(second.status());
    best = std::max({best, first.value().second, second.value().second});
  }
  return best;
}

}  // namespace ibfs::apps
