#ifndef IBFS_APPS_CENTRALITY_H_
#define IBFS_APPS_CENTRALITY_H_

#include <span>
#include <vector>

#include "core/engine.h"
#include "graph/csr.h"

namespace ibfs::apps {

/// Centrality measures built on concurrent BFS — the broader applications
/// the paper's introduction motivates (closeness [13], betweenness [11]).

/// Closeness centrality of every vertex in `sources`, computed from iBFS
/// depths with the Wasserman–Faust generalization for disconnected graphs:
///   C(s) = ((r-1)/(n-1)) * ((r-1) / sum of depths), r = vertices reached.
/// Returns one value per source (0 when the source reaches nothing) and
/// records the simulated seconds in *sim_seconds when non-null.
Result<std::vector<double>> ClosenessCentrality(
    const graph::Csr& graph, std::span<const graph::VertexId> sources,
    const EngineOptions& options, double* sim_seconds = nullptr);

/// Exact betweenness centrality via Brandes' algorithm, one BFS-based
/// dependency accumulation per source (host-exact; used to validate and to
/// demonstrate the application, not instrumented for simulated time).
/// Pass all vertices as sources for the classical definition.
std::vector<double> BetweennessCentrality(
    const graph::Csr& graph, std::span<const graph::VertexId> sources);

}  // namespace ibfs::apps

#endif  // IBFS_APPS_CENTRALITY_H_
