#include "apps/betweenness_device.h"

#include <vector>

#include "ibfs/status_array.h"
#include "util/logging.h"

namespace ibfs::apps {
namespace {

using graph::VertexId;

// Joint per-(vertex, pivot) state for one group: depth byte, sigma count
// and dependency value, each laid out row-per-vertex like the JSA so that
// the N contiguous threads working on one vertex coalesce.
class GroupState {
 public:
  GroupState(int64_t vertices, int n)
      : n_(n),
        depth_(static_cast<size_t>(vertices) * n, kUnvisitedDepth),
        sigma_(static_cast<size_t>(vertices) * n, 0.0),
        delta_(static_cast<size_t>(vertices) * n, 0.0) {}

  uint8_t& Depth(VertexId v, int j) {
    return depth_[static_cast<int64_t>(v) * n_ + j];
  }
  double& Sigma(VertexId v, int j) {
    return sigma_[static_cast<int64_t>(v) * n_ + j];
  }
  double& Delta(VertexId v, int j) {
    return delta_[static_cast<int64_t>(v) * n_ + j];
  }
  int64_t RowIndex(VertexId v) const {
    return static_cast<int64_t>(v) * n_;
  }

 private:
  int n_;
  std::vector<uint8_t> depth_;
  std::vector<double> sigma_;
  std::vector<double> delta_;
};

// Forward level-synchronous pass: BFS depths plus shortest-path counts.
// Returns the per-level joint frontiers (level 0 = the pivots).
std::vector<std::vector<VertexId>> ForwardPass(
    const graph::Csr& graph, std::span<const VertexId> pivots,
    GroupState* state, gpusim::Device* device) {
  const int n = static_cast<int>(pivots.size());
  std::vector<std::vector<VertexId>> levels;
  {
    std::vector<VertexId> first;
    for (int j = 0; j < n; ++j) {
      state->Depth(pivots[j], j) = 0;
      state->Sigma(pivots[j], j) = 1.0;
      bool queued = false;
      for (VertexId q : first) queued |= q == pivots[j];
      if (!queued) first.push_back(pivots[j]);
    }
    levels.push_back(std::move(first));
  }

  for (int level = 1;; ++level) {
    auto scope = device->BeginKernel("bc_forward");
    const auto& frontier = levels.back();
    std::vector<bool> next_mask(static_cast<size_t>(graph.vertex_count()),
                                false);
    int64_t discovered = 0;
    for (VertexId f : frontier) {
      scope.BeginItem();
      // Load the frontier's depth and sigma rows (coalesced).
      scope.LoadContiguous(state->RowIndex(f), n, 1);
      scope.LoadContiguous(state->RowIndex(f), n, 8);
      const auto neighbors = graph.OutNeighbors(f);
      scope.LoadContiguous(static_cast<int64_t>(graph.row_offsets()[f]),
                           static_cast<int64_t>(neighbors.size()),
                           sizeof(VertexId));
      for (VertexId w : neighbors) {
        scope.LoadContiguous(state->RowIndex(w), n, 1);
        scope.Compute(2 * n);
        bool touched = false;
        for (int j = 0; j < n; ++j) {
          if (state->Depth(f, j) != static_cast<uint8_t>(level - 1)) {
            continue;
          }
          uint8_t& dw = state->Depth(w, j);
          if (dw == kUnvisitedDepth) {
            dw = static_cast<uint8_t>(level);
            ++discovered;
            touched = true;
            if (!next_mask[w]) {
              next_mask[w] = true;
            }
          }
          if (dw == static_cast<uint8_t>(level)) {
            // sigma(w) += sigma(f): concurrent pivots write the same row
            // words, hence the atomic accumulation.
            state->Sigma(w, j) += state->Sigma(f, j);
            touched = true;
          }
        }
        if (touched) {
          scope.Atomic((n * 8 + 127) / 128);
          scope.StoreContiguous(state->RowIndex(w), n, 8);
        }
      }
      scope.EndItem();
    }
    if (discovered == 0) break;
    std::vector<VertexId> next;
    for (int64_t v = 0; v < graph.vertex_count(); ++v) {
      if (next_mask[v]) next.push_back(static_cast<VertexId>(v));
    }
    // Frontier identification scan, as in the BFS kernels.
    scope.LoadContiguous(0, graph.vertex_count() * n, 1);
    scope.StoreContiguous(0, static_cast<int64_t>(next.size()),
                          sizeof(VertexId));
    levels.push_back(std::move(next));
  }
  if (levels.back().empty()) levels.pop_back();
  return levels;
}

// Backward dependency accumulation, deepest level first:
// delta(v) += sigma(v)/sigma(w) * (1 + delta(w)) over tree edges v -> w.
void BackwardPass(const graph::Csr& graph, std::span<const VertexId> pivots,
                  const std::vector<std::vector<VertexId>>& levels,
                  GroupState* state, gpusim::Device* device) {
  const int n = static_cast<int>(pivots.size());
  for (size_t li = levels.size(); li-- > 1;) {
    auto scope = device->BeginKernel("bc_backward");
    for (VertexId w : levels[li]) {
      scope.BeginItem();
      scope.LoadContiguous(state->RowIndex(w), n, 1);
      scope.LoadContiguous(state->RowIndex(w), n, 8);
      const auto preds = graph.InNeighbors(w);
      scope.LoadContiguous(static_cast<int64_t>(graph.in_row_offsets()[w]),
                           static_cast<int64_t>(preds.size()),
                           sizeof(VertexId));
      for (VertexId v : preds) {
        scope.LoadContiguous(state->RowIndex(v), n, 1);
        scope.Compute(3 * n);
        bool touched = false;
        for (int j = 0; j < n; ++j) {
          if (state->Depth(w, j) != static_cast<uint8_t>(li)) continue;
          if (state->Depth(v, j) + 1 != state->Depth(w, j)) continue;
          const double sw = state->Sigma(w, j);
          if (sw <= 0.0) continue;
          state->Delta(v, j) +=
              state->Sigma(v, j) / sw * (1.0 + state->Delta(w, j));
          touched = true;
        }
        if (touched) {
          scope.Atomic((n * 8 + 127) / 128);
          scope.StoreContiguous(state->RowIndex(v), n, 8);
        }
      }
      scope.EndItem();
    }
  }
}

}  // namespace

Result<DeviceBetweennessResult> DeviceBetweenness(
    const graph::Csr& graph, std::span<const VertexId> pivots,
    int group_size, const gpusim::DeviceSpec& spec) {
  if (pivots.empty()) return Status::InvalidArgument("no pivots");
  if (group_size < 1) {
    return Status::InvalidArgument("group_size must be >= 1");
  }
  for (VertexId p : pivots) {
    if (static_cast<int64_t>(p) >= graph.vertex_count()) {
      return Status::OutOfRange("pivot outside graph");
    }
  }

  gpusim::Device device(spec);
  DeviceBetweennessResult result;
  result.centrality.assign(static_cast<size_t>(graph.vertex_count()), 0.0);

  for (size_t begin = 0; begin < pivots.size();
       begin += static_cast<size_t>(group_size)) {
    const size_t end =
        std::min(pivots.size(), begin + static_cast<size_t>(group_size));
    const std::span<const VertexId> group =
        pivots.subspan(begin, end - begin);
    const int n = static_cast<int>(group.size());

    GroupState state(graph.vertex_count(), n);
    const auto levels = ForwardPass(graph, group, &state, &device);
    BackwardPass(graph, group, levels, &state, &device);

    for (int64_t v = 0; v < graph.vertex_count(); ++v) {
      for (int j = 0; j < n; ++j) {
        if (static_cast<VertexId>(v) != group[j]) {
          result.centrality[v] += state.Delta(static_cast<VertexId>(v), j);
        }
      }
    }
  }
  result.sim_seconds = device.elapsed_seconds();
  return result;
}

}  // namespace ibfs::apps
