#ifndef IBFS_APPS_ECCENTRICITY_H_
#define IBFS_APPS_ECCENTRICITY_H_

#include <cstdint>
#include <span>
#include <vector>

#include "core/engine.h"
#include "graph/csr.h"

namespace ibfs::apps {

/// Eccentricities and diameter/radius bounds from concurrent BFS — a
/// classic consumer of multi-source traversal (route planning and network
/// analysis in the paper's introduction).
struct EccentricityResult {
  /// Per input source: the greatest hop distance to any reachable vertex.
  std::vector<int> eccentricity;
  /// max over the sampled sources — a lower bound on the graph diameter
  /// (exact when sources cover a whole component).
  int diameter_lower_bound = 0;
  /// min over the sampled sources — an upper bound on the graph radius.
  int radius_upper_bound = 0;
  /// Simulated seconds of the sweep.
  double sim_seconds = 0.0;
};

/// Runs one concurrent-BFS sweep from `sources` and derives per-source
/// eccentricities plus diameter/radius bounds.
Result<EccentricityResult> ComputeEccentricities(
    const graph::Csr& graph, std::span<const graph::VertexId> sources,
    const EngineOptions& options = {});

/// Double-sweep diameter lower bound: BFS from a seed vertex in the giant
/// component, then BFS from the farthest vertex found; the second
/// eccentricity is a strong diameter lower bound (exact on trees).
/// `rounds` repeats with different seeds, keeping the best bound.
Result<int> EstimateDiameterDoubleSweep(const graph::Csr& graph,
                                        int rounds = 4, uint64_t seed = 1,
                                        const EngineOptions& options = {});

}  // namespace ibfs::apps

#endif  // IBFS_APPS_ECCENTRICITY_H_
