#include "apps/reachability_index.h"

#include "baselines/reference_bfs.h"
#include "ibfs/status_array.h"
#include "util/bitops.h"
#include "util/logging.h"

namespace ibfs::apps {

Result<KHopReachabilityIndex> KHopReachabilityIndex::Build(
    const graph::Csr& graph, std::span<const graph::VertexId> sources,
    int k, EngineOptions options) {
  if (k < 1 || k > TraversalOptions::kMaxTraversalLevel) {
    return Status::InvalidArgument("k out of range");
  }
  options.traversal.max_level = k;
  options.keep_depths = true;

  Engine engine(&graph, options);
  Result<EngineResult> run = engine.Run(sources);
  IBFS_RETURN_NOT_OK(run.status());
  const EngineResult& res = run.value();

  KHopReachabilityIndex index;
  index.k_ = k;
  index.vertex_count_ = graph.vertex_count();
  index.words_per_source_ =
      static_cast<int64_t>(CeilDiv(static_cast<uint64_t>(graph.vertex_count()),
                                   64));
  index.build_seconds_ = res.sim_seconds;

  // Engine grouping may reorder sources; rebuild rows in group order and
  // keep the per-row source id alongside.
  for (size_t g = 0; g < res.groups.size(); ++g) {
    const auto& group = res.groups[g];
    for (size_t j = 0; j < res.group_sources[g].size(); ++j) {
      index.sources_.push_back(res.group_sources[g][j]);
      const auto& depths = group.depths[j];
      const size_t row = index.hops_.size() / graph.vertex_count();
      index.hops_.insert(index.hops_.end(), depths.begin(), depths.end());
      index.bits_.resize((row + 1) * index.words_per_source_, 0);
      uint64_t* bit_row =
          index.bits_.data() + row * index.words_per_source_;
      for (int64_t v = 0; v < graph.vertex_count(); ++v) {
        if (depths[v] != kUnvisitedDepth) {
          bit_row[v / 64] |= Bit(static_cast<int>(v % 64));
        }
      }
    }
  }
  return index;
}

bool KHopReachabilityIndex::Reachable(int64_t source_index,
                                      graph::VertexId target) const {
  IBFS_CHECK(source_index >= 0 &&
             source_index < static_cast<int64_t>(sources_.size()));
  IBFS_CHECK(static_cast<int64_t>(target) < vertex_count_);
  const uint64_t* row = bits_.data() + source_index * words_per_source_;
  return ibfs::TestBit(row[target / 64], static_cast<int>(target % 64));
}

int KHopReachabilityIndex::HopsTo(int64_t source_index,
                                  graph::VertexId target) const {
  IBFS_CHECK(source_index >= 0 &&
             source_index < static_cast<int64_t>(sources_.size()));
  const uint8_t h =
      hops_[source_index * vertex_count_ + static_cast<int64_t>(target)];
  return h == kUnvisitedDepth ? -1 : h;
}

bool KHopReachabilityIndex::ReachableWithin(const graph::Csr& graph,
                                            int64_t source_index,
                                            graph::VertexId target,
                                            int limit) const {
  IBFS_CHECK(source_index >= 0 &&
             source_index < static_cast<int64_t>(sources_.size()));
  if (limit <= 0) return sources_[source_index] == target;
  const int hops = HopsTo(source_index, target);
  if (hops >= 0) return hops <= limit;
  // Within the index's horizon the answer is definitive.
  if (limit <= k_) return false;
  // Beyond k hops: online truncated BFS from the source, the simplest
  // sound fallback.
  const auto depths =
      baselines::ReferenceBfs(graph, sources_[source_index], limit);
  return depths[target] >= 0;
}

int64_t KHopReachabilityIndex::IndexBytes() const {
  return static_cast<int64_t>(bits_.size() * sizeof(uint64_t));
}

}  // namespace ibfs::apps
