#ifndef IBFS_APPS_REACHABILITY_INDEX_H_
#define IBFS_APPS_REACHABILITY_INDEX_H_

#include <cstdint>
#include <span>
#include <vector>

#include "core/engine.h"
#include "graph/csr.h"

namespace ibfs::apps {

/// k-hop reachability index (Section 8.7, Table 1): for a set of index
/// sources, precompute which vertices lie within k hops, so queries
/// "is there a path s -> t with fewer than k edges?" become bit lookups.
/// Construction runs the first k levels of concurrent BFS — the workload
/// iBFS accelerates by an order of magnitude over B40C.
class KHopReachabilityIndex {
 public:
  /// Builds the index by running k-level-truncated concurrent BFS from
  /// `sources` with the given engine configuration.
  static Result<KHopReachabilityIndex> Build(
      const graph::Csr& graph, std::span<const graph::VertexId> sources,
      int k, EngineOptions options);

  /// True iff `target` is within k hops of the i-th index source.
  bool Reachable(int64_t source_index, graph::VertexId target) const;

  /// Hop distance (0..k) or -1 when farther than k hops.
  int HopsTo(int64_t source_index, graph::VertexId target) const;

  /// Answers "is there a path source -> target with fewer than `limit`
  /// edges?" using the index where it can (limit <= k: one bit lookup) and
  /// an online truncated BFS fallback otherwise — the paper's K-reach
  /// usage pattern [15]. `graph` must be the graph the index was built on.
  bool ReachableWithin(const graph::Csr& graph, int64_t source_index,
                       graph::VertexId target, int limit) const;

  int64_t source_count() const {
    return static_cast<int64_t>(sources_.size());
  }
  int k() const { return k_; }

  /// Simulated seconds the index construction took.
  double build_seconds() const { return build_seconds_; }

  /// Bytes the packed reachability bitmap occupies.
  int64_t IndexBytes() const;

 private:
  KHopReachabilityIndex() = default;

  int k_ = 0;
  int64_t vertex_count_ = 0;
  std::vector<graph::VertexId> sources_;
  /// Row-major [source][vertex] hop distances, 0xFF = beyond k.
  std::vector<uint8_t> hops_;
  /// Packed reachability bits, one row of ceil(V/64) words per source.
  std::vector<uint64_t> bits_;
  int64_t words_per_source_ = 0;
  double build_seconds_ = 0.0;
};

}  // namespace ibfs::apps

#endif  // IBFS_APPS_REACHABILITY_INDEX_H_
