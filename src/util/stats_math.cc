#include "util/stats_math.h"

#include <algorithm>
#include <cmath>

namespace ibfs {

void RunningStats::Add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
  if (count_ == 0) return 0.0;
  return m2_ / static_cast<double>(count_);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double StdDev(std::span<const double> values) {
  RunningStats s;
  for (double v : values) s.Add(v);
  return s.stddev();
}

double Mean(std::span<const double> values) {
  RunningStats s;
  for (double v : values) s.Add(v);
  return s.mean();
}

double GeoMean(std::span<const double> values) {
  if (values.empty()) return 0.0;
  double log_sum = 0.0;
  for (double v : values) log_sum += std::log(v);
  return std::exp(log_sum / static_cast<double>(values.size()));
}

}  // namespace ibfs
