#ifndef IBFS_UTIL_HASH_RING_H_
#define IBFS_UTIL_HASH_RING_H_

#include <algorithm>
#include <cstdint>
#include <vector>

namespace ibfs {

/// Consistent-hash ring for routing keys (BFS source vertices) to shards.
///
/// Each shard contributes `vnodes * weight` virtual nodes, placed by a
/// seeded 64-bit mix, so the key space splits into many small segments and
/// per-shard load stays balanced (the fleet tests pin <= 15% imbalance at
/// 128 vnodes). Removing a shard erases only its virtual nodes: every key
/// it owned falls through to the next surviving point while keys owned by
/// other shards keep their owner — the minimal-disruption property that
/// makes failover cheap (only the dead shard's sources remap, so only
/// those queries re-warm a survivor's cache). Adding a shard is symmetric:
/// only keys the new shard's points capture move, everything else keeps
/// its owner, so joins disturb exactly the stolen segment.
///
/// The placement is a pure function of (seed, shard, vnode) and lookups are
/// pure functions of (seed, key), so two rings built with the same
/// parameters route identically across processes and platforms — the fleet
/// relies on this for bit-deterministic scatter/gather. A consequence: a
/// shard removed and later re-added at the same weight reproduces its exact
/// original points, so `Remove` + `Add` round-trips to the original ring.
///
/// Not thread-safe; FleetFrontDoor guards its ring with a shared mutex.
class HashRing {
 public:
  struct Options {
    /// Virtual nodes per unit of weight. More vnodes = smoother balance at
    /// the cost of a larger (still tiny) sorted point table.
    int vnodes = 128;
    /// Placement seed; rings with equal seeds route identically.
    uint64_t seed = 2016;
    /// Optional per-shard weights (empty = all 1). Shard s gets
    /// vnodes * weights[s] points, i.e. roughly weights[s] / sum(weights)
    /// of the key space.
    std::vector<int> weights;
  };

  /// splitmix64 finalizer: the avalanche mix behind both virtual-node
  /// placement and key hashing.
  static uint64_t Mix(uint64_t x) {
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
  }

  explicit HashRing(int shard_count) : HashRing(shard_count, Options()) {}

  HashRing(int shard_count, Options options)
      : seed_(options.seed), vnodes_(options.vnodes < 1 ? 1 : options.vnodes) {
    for (int shard = 0; shard < shard_count; ++shard) {
      const int weight =
          static_cast<size_t>(shard) < options.weights.size()
              ? std::max(1, options.weights[static_cast<size_t>(shard)])
              : 1;
      Add(shard, weight);
    }
  }

  /// Owning shard for `key`, or -1 when every shard has been removed.
  int ShardFor(uint64_t key) const {
    if (ring_.empty()) return -1;
    return FirstPointFor(key)->shard;
  }

  /// Ordered replica set for `key`: up to `replicas` distinct shards,
  /// walking clockwise from the key's point. Element 0 is always
  /// ShardFor(key) (the primary); subsequent elements are the shards whose
  /// points come next on the ring, which is exactly where the key would
  /// fall over if earlier replicas were removed — so replica sets stay
  /// aligned with failover routing. Returns fewer than `replicas` entries
  /// when the ring has fewer distinct shards.
  std::vector<int> ReplicasFor(uint64_t key, int replicas) const {
    std::vector<int> out;
    if (ring_.empty() || replicas < 1) return out;
    auto it = FirstPointFor(key);
    const size_t start = static_cast<size_t>(it - ring_.begin());
    for (size_t step = 0; step < ring_.size(); ++step) {
      const int shard = ring_[(start + step) % ring_.size()].shard;
      if (std::find(out.begin(), out.end(), shard) == out.end()) {
        out.push_back(shard);
        if (static_cast<int>(out.size()) == replicas) break;
      }
    }
    return out;
  }

  /// Adds a shard's virtual nodes. `shard` may be a brand-new id (equal to
  /// shard_count(), growing the ring) or a previously removed id rejoining.
  /// Placement depends only on (seed, shard, vnode), so a rejoining shard
  /// reclaims exactly the points it had before at the same weight, and only
  /// keys landing on the inserted points move — minimal disruption.
  /// Returns false when the shard is already active, the id would leave a
  /// gap (> shard_count()), or the weight is < 1.
  bool Add(int shard, int weight = 1) {
    if (shard < 0 || weight < 1 ||
        static_cast<size_t>(shard) > active_.size()) {
      return false;
    }
    if (static_cast<size_t>(shard) == active_.size()) {
      active_.push_back(false);
      weights_.push_back(0);
    }
    if (active_[static_cast<size_t>(shard)]) return false;
    active_[static_cast<size_t>(shard)] = true;
    weights_[static_cast<size_t>(shard)] = weight;
    InsertPoints(shard, weight);
    return true;
  }

  /// Removes a shard's virtual nodes (its keys fall to the survivors that
  /// own the next points clockwise). Returns false when the shard id is out
  /// of range or already removed. A removed shard can rejoin via Add — the
  /// fleet uses that for elastic recovery after a kill.
  bool Remove(int shard) {
    if (!Contains(shard)) return false;
    active_[static_cast<size_t>(shard)] = false;
    weights_[static_cast<size_t>(shard)] = 0;
    ErasePoints(shard);
    return true;
  }

  /// Changes an active shard's weight by rebuilding only that shard's
  /// points: growing from w to w' adds vnodes*(w'-w) points (stealing only
  /// the keys they capture), shrinking removes the tail points (releasing
  /// only the keys they owned). Keys not adjacent to the changed points
  /// keep their owner. Returns false for inactive shards or weight < 1.
  bool SetWeight(int shard, int weight) {
    if (!Contains(shard) || weight < 1) return false;
    const int current = weights_[static_cast<size_t>(shard)];
    if (weight == current) return true;
    ErasePoints(shard);
    weights_[static_cast<size_t>(shard)] = weight;
    InsertPoints(shard, weight);
    return true;
  }

  /// Active shard's weight; 0 when removed or out of range.
  int weight(int shard) const {
    return Contains(shard) ? weights_[static_cast<size_t>(shard)] : 0;
  }

  /// Shard's share of the total active ring weight (its expected fraction
  /// of the key space); 0 when removed or the ring is empty.
  double WeightShare(int shard) const {
    if (!Contains(shard)) return 0.0;
    int64_t total = 0;
    for (size_t s = 0; s < weights_.size(); ++s) {
      if (active_[s]) total += weights_[s];
    }
    if (total <= 0) return 0.0;
    return static_cast<double>(weights_[static_cast<size_t>(shard)]) /
           static_cast<double>(total);
  }

  bool Contains(int shard) const {
    return shard >= 0 && static_cast<size_t>(shard) < active_.size() &&
           active_[static_cast<size_t>(shard)];
  }

  /// Shards still on the ring.
  int active_count() const {
    int count = 0;
    for (bool a : active_) count += a ? 1 : 0;
    return count;
  }

  int shard_count() const { return static_cast<int>(active_.size()); }
  bool empty() const { return ring_.empty(); }
  size_t point_count() const { return ring_.size(); }

 private:
  struct Point {
    uint64_t hash = 0;
    int shard = 0;
  };

  static bool PointLess(const Point& a, const Point& b) {
    return a.hash != b.hash ? a.hash < b.hash : a.shard < b.shard;
  }

  /// Domain separator between key hashes and virtual-node placement.
  /// Points hash Mix(seed ^ Mix((shard << 32) | v)); without the salt a
  /// key k < vnodes hashes exactly onto shard 0's point (0 << 32 | k), so
  /// shard 0 would capture every small key — fatal for graphs with
  /// vertex_count <= vnodes.
  static constexpr uint64_t kKeyDomain = 0xc2b2ae3d27d4eb4fULL;

  std::vector<Point>::const_iterator FirstPointFor(uint64_t key) const {
    const uint64_t h = Mix(seed_ ^ kKeyDomain ^ Mix(key));
    auto it = std::lower_bound(
        ring_.begin(), ring_.end(), h,
        [](const Point& p, uint64_t value) { return p.hash < value; });
    if (it == ring_.end()) it = ring_.begin();  // wrap past the last point
    return it;
  }

  void InsertPoints(int shard, int weight) {
    std::vector<Point> fresh;
    fresh.reserve(static_cast<size_t>(vnodes_) * static_cast<size_t>(weight));
    for (int v = 0; v < vnodes_ * weight; ++v) {
      const uint64_t point =
          Mix(seed_ ^ Mix((static_cast<uint64_t>(shard) << 32) |
                          static_cast<uint64_t>(v)));
      fresh.push_back({point, shard});
    }
    // Hash ties (vanishingly rare) break by shard id so the order — and
    // therefore every routing decision — is fully deterministic.
    std::sort(fresh.begin(), fresh.end(), PointLess);
    std::vector<Point> merged;
    merged.reserve(ring_.size() + fresh.size());
    std::merge(ring_.begin(), ring_.end(), fresh.begin(), fresh.end(),
               std::back_inserter(merged), PointLess);
    ring_ = std::move(merged);
  }

  void ErasePoints(int shard) {
    ring_.erase(std::remove_if(
                    ring_.begin(), ring_.end(),
                    [shard](const Point& p) { return p.shard == shard; }),
                ring_.end());
  }

  uint64_t seed_;
  int vnodes_;
  std::vector<bool> active_;
  /// Weight per shard id; 0 while removed (the pre-removal weight is not
  /// retained — rejoin chooses its weight explicitly).
  std::vector<int> weights_;
  /// Sorted by (hash, shard); binary-searched by ShardFor.
  std::vector<Point> ring_;
};

}  // namespace ibfs

#endif  // IBFS_UTIL_HASH_RING_H_
