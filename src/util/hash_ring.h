#ifndef IBFS_UTIL_HASH_RING_H_
#define IBFS_UTIL_HASH_RING_H_

#include <algorithm>
#include <cstdint>
#include <vector>

namespace ibfs {

/// Consistent-hash ring for routing keys (BFS source vertices) to shards.
///
/// Each shard contributes `vnodes * weight` virtual nodes, placed by a
/// seeded 64-bit mix, so the key space splits into many small segments and
/// per-shard load stays balanced (the fleet tests pin <= 15% imbalance at
/// 128 vnodes). Removing a shard erases only its virtual nodes: every key
/// it owned falls through to the next surviving point while keys owned by
/// other shards keep their owner — the minimal-disruption property that
/// makes failover cheap (only the dead shard's sources remap, so only
/// those queries re-warm a survivor's cache).
///
/// The placement is a pure function of (seed, shard, vnode) and lookups are
/// pure functions of (seed, key), so two rings built with the same
/// parameters route identically across processes and platforms — the fleet
/// relies on this for bit-deterministic scatter/gather.
///
/// Not thread-safe; FleetFrontDoor guards its ring with a shared mutex.
class HashRing {
 public:
  struct Options {
    /// Virtual nodes per unit of weight. More vnodes = smoother balance at
    /// the cost of a larger (still tiny) sorted point table.
    int vnodes = 128;
    /// Placement seed; rings with equal seeds route identically.
    uint64_t seed = 2016;
    /// Optional per-shard weights (empty = all 1). Shard s gets
    /// vnodes * weights[s] points, i.e. roughly weights[s] / sum(weights)
    /// of the key space.
    std::vector<int> weights;
  };

  /// splitmix64 finalizer: the avalanche mix behind both virtual-node
  /// placement and key hashing.
  static uint64_t Mix(uint64_t x) {
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
  }

  explicit HashRing(int shard_count) : HashRing(shard_count, Options()) {}

  HashRing(int shard_count, Options options)
      : seed_(options.seed),
        active_(static_cast<size_t>(shard_count < 0 ? 0 : shard_count),
                true) {
    const int vnodes = options.vnodes < 1 ? 1 : options.vnodes;
    for (int shard = 0; shard < shard_count; ++shard) {
      const int weight =
          static_cast<size_t>(shard) < options.weights.size()
              ? std::max(1, options.weights[static_cast<size_t>(shard)])
              : 1;
      for (int v = 0; v < vnodes * weight; ++v) {
        const uint64_t point =
            Mix(seed_ ^ Mix((static_cast<uint64_t>(shard) << 32) |
                            static_cast<uint64_t>(v)));
        ring_.push_back({point, shard});
      }
    }
    // Hash ties (vanishingly rare) break by shard id so the order — and
    // therefore every routing decision — is fully deterministic.
    std::sort(ring_.begin(), ring_.end(), [](const Point& a, const Point& b) {
      return a.hash != b.hash ? a.hash < b.hash : a.shard < b.shard;
    });
  }

  /// Owning shard for `key`, or -1 when every shard has been removed.
  int ShardFor(uint64_t key) const {
    if (ring_.empty()) return -1;
    const uint64_t h = Mix(seed_ ^ Mix(key));
    auto it = std::lower_bound(
        ring_.begin(), ring_.end(), h,
        [](const Point& p, uint64_t value) { return p.hash < value; });
    if (it == ring_.end()) it = ring_.begin();  // wrap past the last point
    return it->shard;
  }

  /// Removes a shard's virtual nodes (its keys fall to the survivors that
  /// own the next points clockwise). Returns false when the shard id is out
  /// of range or already removed. Removed shards never come back — the
  /// fleet models permanent loss, like its circuit breakers.
  bool Remove(int shard) {
    if (shard < 0 || static_cast<size_t>(shard) >= active_.size() ||
        !active_[static_cast<size_t>(shard)]) {
      return false;
    }
    active_[static_cast<size_t>(shard)] = false;
    ring_.erase(std::remove_if(ring_.begin(), ring_.end(),
                               [shard](const Point& p) {
                                 return p.shard == shard;
                               }),
                ring_.end());
    return true;
  }

  bool Contains(int shard) const {
    return shard >= 0 && static_cast<size_t>(shard) < active_.size() &&
           active_[static_cast<size_t>(shard)];
  }

  /// Shards still on the ring.
  int active_count() const {
    int count = 0;
    for (bool a : active_) count += a ? 1 : 0;
    return count;
  }

  int shard_count() const { return static_cast<int>(active_.size()); }
  bool empty() const { return ring_.empty(); }
  size_t point_count() const { return ring_.size(); }

 private:
  struct Point {
    uint64_t hash = 0;
    int shard = 0;
  };

  uint64_t seed_;
  std::vector<bool> active_;
  /// Sorted by (hash, shard); binary-searched by ShardFor.
  std::vector<Point> ring_;
};

}  // namespace ibfs

#endif  // IBFS_UTIL_HASH_RING_H_
