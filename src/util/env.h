#ifndef IBFS_UTIL_ENV_H_
#define IBFS_UTIL_ENV_H_

#include <cstdint>
#include <string>

namespace ibfs {

/// Reads an integer configuration knob from the environment, falling back to
/// `def` when unset or unparsable. Benchmarks use this (e.g. IBFS_SCALE) so
/// the scaled-down defaults can be grown without recompiling.
int64_t EnvInt64(const char* name, int64_t def);

/// EnvInt64 narrowed to int — most knobs (thread counts, scales, group
/// sizes) land in int-typed options, so this keeps the cast in one place.
int EnvInt(const char* name, int def);

/// Reads a floating-point knob from the environment, falling back to `def`
/// when unset or unparsable (e.g. IBFS_DURATION for the serving bench).
double EnvDouble(const char* name, double def);

/// Reads a boolean knob: 0/false/off/no (case-insensitive) are false, any
/// other non-empty parsable value is true; unset or unparsable falls back
/// to `def`.
bool EnvBool(const char* name, bool def);

/// Reads a string knob from the environment.
std::string EnvString(const char* name, const std::string& def);

}  // namespace ibfs

#endif  // IBFS_UTIL_ENV_H_
