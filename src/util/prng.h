#ifndef IBFS_UTIL_PRNG_H_
#define IBFS_UTIL_PRNG_H_

#include <cstdint>

namespace ibfs {

/// Deterministic 64-bit PRNG (splitmix64 seeding + xoshiro256**).
///
/// Every randomized component of the library (graph generators, random
/// grouping, source sampling) takes an explicit seed so experiments are
/// reproducible run-to-run and across platforms; std::mt19937 is avoided
/// because its distributions are not implementation-stable.
class Prng {
 public:
  /// Seeds the generator; equal seeds yield identical streams.
  explicit Prng(uint64_t seed);

  /// Returns the next 64 uniformly distributed bits.
  uint64_t Next();

  /// Returns a uniform integer in [0, bound). Precondition: bound > 0.
  /// Uses rejection sampling, so the result is exactly uniform.
  uint64_t NextBounded(uint64_t bound);

  /// Returns a uniform double in [0, 1).
  double NextDouble();

  /// Returns true with probability p (clamped to [0, 1]).
  bool NextBool(double p);

 private:
  uint64_t s_[4];
};

}  // namespace ibfs

#endif  // IBFS_UTIL_PRNG_H_
