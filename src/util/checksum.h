#ifndef IBFS_UTIL_CHECKSUM_H_
#define IBFS_UTIL_CHECKSUM_H_

#include <cstdint>
#include <span>
#include <vector>

namespace ibfs {

/// FNV-1a, the one checksum implementation shared by every payload-integrity
/// path: the service's per-query depth checksums, the resilient executor's
/// device-to-host transfer verification, and the chaos harness's
/// fault-free-vs-chaos comparison. Deterministic across platforms (pure
/// integer arithmetic), cheap (one xor + one multiply per byte), and good
/// enough to catch flipped depth words — this is corruption *detection*,
/// not cryptography.
inline constexpr uint64_t kFnv1aOffsetBasis = 14695981039346656037ULL;
inline constexpr uint64_t kFnv1aPrime = 1099511628211ULL;

/// Folds `bytes` into a running FNV-1a state (pass the previous return
/// value to chain buffers; start from kFnv1aOffsetBasis).
inline uint64_t Fnv1aExtend(uint64_t state, std::span<const uint8_t> bytes) {
  for (uint8_t b : bytes) {
    state ^= b;
    state *= kFnv1aPrime;
  }
  return state;
}

/// One-shot hash of a byte buffer.
inline uint64_t Fnv1a(std::span<const uint8_t> bytes) {
  return Fnv1aExtend(kFnv1aOffsetBasis, bytes);
}

/// Hash of a whole group's depth payload (every instance's vector, in
/// order), used to verify the simulated device-to-host transfer.
inline uint64_t Fnv1aOfDepths(
    const std::vector<std::vector<uint8_t>>& depths) {
  uint64_t state = kFnv1aOffsetBasis;
  for (const std::vector<uint8_t>& d : depths) state = Fnv1aExtend(state, d);
  return state;
}

}  // namespace ibfs

#endif  // IBFS_UTIL_CHECKSUM_H_
