#include "util/env.h"

#include <cstdlib>

namespace ibfs {

int64_t EnvInt64(const char* name, int64_t def) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || raw[0] == '\0') return def;
  char* end = nullptr;
  const long long parsed = std::strtoll(raw, &end, 10);
  if (end == raw || *end != '\0') return def;
  return parsed;
}

double EnvDouble(const char* name, double def) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || raw[0] == '\0') return def;
  char* end = nullptr;
  const double parsed = std::strtod(raw, &end);
  if (end == raw || *end != '\0') return def;
  return parsed;
}

std::string EnvString(const char* name, const std::string& def) {
  const char* raw = std::getenv(name);
  if (raw == nullptr) return def;
  return raw;
}

}  // namespace ibfs
