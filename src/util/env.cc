#include "util/env.h"

#include <cctype>
#include <cstdlib>

namespace ibfs {

int64_t EnvInt64(const char* name, int64_t def) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || raw[0] == '\0') return def;
  char* end = nullptr;
  const long long parsed = std::strtoll(raw, &end, 10);
  if (end == raw || *end != '\0') return def;
  return parsed;
}

int EnvInt(const char* name, int def) {
  return static_cast<int>(EnvInt64(name, def));
}

double EnvDouble(const char* name, double def) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || raw[0] == '\0') return def;
  char* end = nullptr;
  const double parsed = std::strtod(raw, &end);
  if (end == raw || *end != '\0') return def;
  return parsed;
}

bool EnvBool(const char* name, bool def) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || raw[0] == '\0') return def;
  std::string lowered;
  for (const char* p = raw; *p != '\0'; ++p) {
    lowered.push_back(
        static_cast<char>(std::tolower(static_cast<unsigned char>(*p))));
  }
  if (lowered == "0" || lowered == "false" || lowered == "off" ||
      lowered == "no") {
    return false;
  }
  if (lowered == "1" || lowered == "true" || lowered == "on" ||
      lowered == "yes") {
    return true;
  }
  char* end = nullptr;
  const long long parsed = std::strtoll(raw, &end, 10);
  if (end == raw || *end != '\0') return def;
  return parsed != 0;
}

std::string EnvString(const char* name, const std::string& def) {
  const char* raw = std::getenv(name);
  if (raw == nullptr) return def;
  return raw;
}

}  // namespace ibfs
