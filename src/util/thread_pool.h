#ifndef IBFS_UTIL_THREAD_POOL_H_
#define IBFS_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace ibfs {

/// A small work-stealing thread pool for host-side parallelism (the engine
/// runs independent BFS groups on it; the cluster engine runs one simulated
/// device per worker).
///
/// Scheduling model: each worker owns a deque. Tasks submitted from a worker
/// go to the back of its own deque (LIFO for locality); tasks submitted from
/// outside the pool are distributed round-robin. A worker pops from the back
/// of its own deque and, when empty, steals from the *front* of a sibling's
/// deque — the classic Chase-Lev discipline (mutex-protected here; task
/// granularity is whole BFS groups, so queue overhead is noise).
///
/// Tasks must not throw — the library is no-throw (Status-based) by
/// convention, and an exception escaping a worker would terminate.
class ThreadPool {
 public:
  /// Spawns `thread_count` workers (clamped to >= 1).
  explicit ThreadPool(int thread_count);
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Drains nothing: outstanding tasks are completed before destruction
  /// returns (the destructor joins after the queues empty).
  ~ThreadPool();

  int thread_count() const { return static_cast<int>(workers_.size()); }

  /// Enqueues one task.
  void Submit(std::function<void()> task);

  /// Runs fn(0..n-1) across the pool and blocks until every call returned.
  /// Index order of execution is unspecified; callers needing deterministic
  /// output must merge by index afterwards. When called from one of this
  /// pool's own workers (nesting), the iterations run inline on the calling
  /// thread instead — blocking there would deadlock the worker the
  /// submitted iterations need — and a warning is logged.
  void ParallelFor(int64_t n, const std::function<void(int64_t)>& fn);

  /// Index of the calling pool worker in [0, thread_count), or -1 when the
  /// caller is not one of this pool's workers.
  static int CurrentWorkerIndex();

  /// std::thread::hardware_concurrency with a >= 1 guarantee.
  static int HardwareConcurrency();

 private:
  struct Worker {
    std::mutex mu;
    std::deque<std::function<void()>> tasks;
  };

  void WorkerLoop(int index);
  /// Pops a task for worker `index` (own back first, then steal a sibling's
  /// front). Returns an empty function when every deque is empty.
  std::function<void()> TakeTask(int index);

  std::vector<std::unique_ptr<Worker>> workers_;
  std::vector<std::thread> threads_;

  // Sleep/wake plumbing: pending_ counts queued-but-unstarted tasks, so
  // idle workers can block instead of spinning.
  std::mutex wake_mu_;
  std::condition_variable wake_cv_;
  int64_t pending_ = 0;
  bool shutdown_ = false;
  // Round-robin cursor for external submissions.
  std::mutex submit_mu_;
  size_t next_worker_ = 0;
};

}  // namespace ibfs

#endif  // IBFS_UTIL_THREAD_POOL_H_
