#ifndef IBFS_UTIL_CSV_H_
#define IBFS_UTIL_CSV_H_

#include <ostream>
#include <string>
#include <vector>

namespace ibfs {

/// Emits aligned, comma-separated tables to a stream. Used by the benchmark
/// harnesses so every figure/table of the paper prints in a uniform,
/// machine-parsable format.
class CsvTable {
 public:
  /// Creates a table with the given column headers.
  explicit CsvTable(std::vector<std::string> header);

  /// Starts a new row. Subsequent Add* calls fill it left to right.
  CsvTable& Row();
  CsvTable& Add(const std::string& cell);
  CsvTable& Add(double value, int precision = 3);
  CsvTable& Add(int64_t value);
  CsvTable& Add(uint64_t value);
  CsvTable& Add(int value);

  /// Writes header plus all rows, comma-separated with aligned columns.
  void Print(std::ostream& os) const;

  size_t row_count() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace ibfs

#endif  // IBFS_UTIL_CSV_H_
