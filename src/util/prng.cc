#include "util/prng.h"

namespace ibfs {
namespace {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Prng::Prng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(&sm);
}

uint64_t Prng::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Prng::NextBounded(uint64_t bound) {
  // Rejection sampling over the largest multiple of `bound` below 2^64.
  const uint64_t threshold = -bound % bound;
  for (;;) {
    const uint64_t r = Next();
    if (r >= threshold) return r % bound;
  }
}

double Prng::NextDouble() {
  // 53 high bits -> [0, 1) with full double precision.
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

bool Prng::NextBool(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

}  // namespace ibfs
