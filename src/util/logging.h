#ifndef IBFS_UTIL_LOGGING_H_
#define IBFS_UTIL_LOGGING_H_

#include <sstream>
#include <string>

namespace ibfs {

/// Severity for the minimal logging facility. kFatal aborts the process; it
/// backs IBFS_CHECK, the library's invariant-violation path (exceptions are
/// not used).
enum class LogSeverity { kInfo, kWarning, kError, kFatal };

/// The runtime severity floor, read once from the IBFS_LOG_LEVEL
/// environment variable (accepted: "info"/"warning"/"error"/"fatal",
/// their initials, or 0-3; default info). Lines below the floor are
/// swallowed at emit time; kFatal always prints and aborts.
LogSeverity LogLevelFloor();

/// True when a line of `severity` would be emitted under the current floor.
bool ShouldLog(LogSeverity severity);

namespace internal_logging {

/// Parses an IBFS_LOG_LEVEL value; falls back to kInfo on unknown input.
/// Exposed for tests; callers use LogLevelFloor().
LogSeverity ParseLogLevel(const std::string& value);

/// Accumulates one log line and emits it (to stderr) on destruction, as
/// `[<severity> <HH:MM:SS.mmm> <file>:<line>] <message>`.
class LogMessage {
 public:
  LogMessage(LogSeverity severity, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostream& stream() { return stream_; }

 private:
  LogSeverity severity_;
  std::ostringstream stream_;
};

}  // namespace internal_logging
}  // namespace ibfs

#define IBFS_LOG(severity)                                              \
  ::ibfs::internal_logging::LogMessage(::ibfs::LogSeverity::k##severity, \
                                       __FILE__, __LINE__)              \
      .stream()

/// Aborts with a message when `cond` is false. Used for programmer-error
/// invariants (never for recoverable conditions, which return Status).
#define IBFS_CHECK(cond)                                  \
  if (!(cond)) IBFS_LOG(Fatal) << "Check failed: " #cond " "

#endif  // IBFS_UTIL_LOGGING_H_
