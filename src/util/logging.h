#ifndef IBFS_UTIL_LOGGING_H_
#define IBFS_UTIL_LOGGING_H_

#include <sstream>
#include <string>

namespace ibfs {

/// Severity for the minimal logging facility. kFatal aborts the process; it
/// backs IBFS_CHECK, the library's invariant-violation path (exceptions are
/// not used).
enum class LogSeverity { kInfo, kWarning, kError, kFatal };

namespace internal_logging {

/// Accumulates one log line and emits it (to stderr) on destruction.
class LogMessage {
 public:
  LogMessage(LogSeverity severity, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostream& stream() { return stream_; }

 private:
  LogSeverity severity_;
  std::ostringstream stream_;
};

}  // namespace internal_logging
}  // namespace ibfs

#define IBFS_LOG(severity)                                              \
  ::ibfs::internal_logging::LogMessage(::ibfs::LogSeverity::k##severity, \
                                       __FILE__, __LINE__)              \
      .stream()

/// Aborts with a message when `cond` is false. Used for programmer-error
/// invariants (never for recoverable conditions, which return Status).
#define IBFS_CHECK(cond)                                  \
  if (!(cond)) IBFS_LOG(Fatal) << "Check failed: " #cond " "

#endif  // IBFS_UTIL_LOGGING_H_
