#ifndef IBFS_UTIL_BITOPS_H_
#define IBFS_UTIL_BITOPS_H_

#include <bit>
#include <cstdint>

namespace ibfs {

/// Word-level bit helpers shared by the bitwise status array and the warp
/// ballot primitives. All are header-inline; they sit on the hottest path of
/// the bitwise traversal.

/// Number of set bits.
inline int PopCount(uint64_t word) { return std::popcount(word); }

/// Index (0-based, from LSB) of the lowest set bit. Precondition: word != 0.
inline int LowestSetBit(uint64_t word) { return std::countr_zero(word); }

/// Word with only bit `i` set. Precondition: 0 <= i < 64.
inline uint64_t Bit(int i) { return uint64_t{1} << i; }

/// Word with the lowest `n` bits set; n == 64 yields all-ones, n == 0 zero.
inline uint64_t LowMask(int n) {
  if (n >= 64) return ~uint64_t{0};
  return (uint64_t{1} << n) - 1;
}

/// True if bit `i` of `word` is set.
inline bool TestBit(uint64_t word, int i) { return (word >> i) & 1u; }

/// Rounds `x` up to the next multiple of `m`. Precondition: m > 0.
inline uint64_t RoundUp(uint64_t x, uint64_t m) { return (x + m - 1) / m * m; }

/// Ceiling division. Precondition: m > 0.
inline uint64_t CeilDiv(uint64_t x, uint64_t m) { return (x + m - 1) / m; }

}  // namespace ibfs

#endif  // IBFS_UTIL_BITOPS_H_
