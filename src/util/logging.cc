#include "util/logging.h"

#include <cctype>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <ctime>

#include "util/env.h"

namespace ibfs {
namespace internal_logging {
namespace {

const char* SeverityTag(LogSeverity severity) {
  switch (severity) {
    case LogSeverity::kInfo:
      return "I";
    case LogSeverity::kWarning:
      return "W";
    case LogSeverity::kError:
      return "E";
    case LogSeverity::kFatal:
      return "F";
  }
  return "?";
}

// Wall-clock HH:MM:SS.mmm, local time. Written into `buf` (>= 16 bytes).
void FormatTimestamp(char* buf, size_t buf_size) {
  const auto now = std::chrono::system_clock::now();
  const std::time_t seconds = std::chrono::system_clock::to_time_t(now);
  const auto millis = std::chrono::duration_cast<std::chrono::milliseconds>(
                          now.time_since_epoch())
                          .count() %
                      1000;
  std::tm tm_buf{};
  localtime_r(&seconds, &tm_buf);
  std::snprintf(buf, buf_size, "%02d:%02d:%02d.%03d", tm_buf.tm_hour,
                tm_buf.tm_min, tm_buf.tm_sec, static_cast<int>(millis));
}

}  // namespace

LogSeverity ParseLogLevel(const std::string& value) {
  std::string lower;
  lower.reserve(value.size());
  for (char c : value) {
    lower.push_back(
        static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
  }
  if (lower == "info" || lower == "i" || lower == "0") {
    return LogSeverity::kInfo;
  }
  if (lower == "warning" || lower == "warn" || lower == "w" || lower == "1") {
    return LogSeverity::kWarning;
  }
  if (lower == "error" || lower == "e" || lower == "2") {
    return LogSeverity::kError;
  }
  if (lower == "fatal" || lower == "f" || lower == "3") {
    return LogSeverity::kFatal;
  }
  return LogSeverity::kInfo;
}

LogMessage::LogMessage(LogSeverity severity, const char* file, int line)
    : severity_(severity) {
  char timestamp[16];
  FormatTimestamp(timestamp, sizeof(timestamp));
  stream_ << "[" << SeverityTag(severity) << " " << timestamp << " " << file
          << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  // Fatal lines are never filtered: the process is about to abort and the
  // message is the only diagnostic.
  if (severity_ == LogSeverity::kFatal || ShouldLog(severity_)) {
    std::fprintf(stderr, "%s\n", stream_.str().c_str());
  }
  if (severity_ == LogSeverity::kFatal) std::abort();
}

}  // namespace internal_logging

LogSeverity LogLevelFloor() {
  static const LogSeverity floor =
      internal_logging::ParseLogLevel(EnvString("IBFS_LOG_LEVEL", "info"));
  return floor;
}

bool ShouldLog(LogSeverity severity) {
  return static_cast<int>(severity) >= static_cast<int>(LogLevelFloor());
}

}  // namespace ibfs
