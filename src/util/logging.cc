#include "util/logging.h"

#include <cstdio>
#include <cstdlib>

namespace ibfs {
namespace internal_logging {
namespace {

const char* SeverityTag(LogSeverity severity) {
  switch (severity) {
    case LogSeverity::kInfo:
      return "I";
    case LogSeverity::kWarning:
      return "W";
    case LogSeverity::kError:
      return "E";
    case LogSeverity::kFatal:
      return "F";
  }
  return "?";
}

}  // namespace

LogMessage::LogMessage(LogSeverity severity, const char* file, int line)
    : severity_(severity) {
  stream_ << "[" << SeverityTag(severity) << " " << file << ":" << line
          << "] ";
}

LogMessage::~LogMessage() {
  std::fprintf(stderr, "%s\n", stream_.str().c_str());
  if (severity_ == LogSeverity::kFatal) std::abort();
}

}  // namespace internal_logging
}  // namespace ibfs
