#include "util/flags.h"

#include <cstdlib>

namespace ibfs {

Result<Flags> Flags::Parse(int argc, const char* const* argv) {
  Flags flags;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      flags.positional_.push_back(arg);
      continue;
    }
    const std::string body = arg.substr(2);
    const size_t eq = body.find('=');
    if (eq != std::string::npos) {
      const std::string key = body.substr(0, eq);
      if (key.empty()) return Status::InvalidArgument("empty flag name");
      flags.values_[key] = body.substr(eq + 1);
      continue;
    }
    if (body.empty()) return Status::InvalidArgument("empty flag name");
    // `--key value` when the next token is not itself a flag; otherwise a
    // bare boolean switch.
    if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      flags.values_[body] = argv[++i];
    } else {
      flags.values_[body] = "true";
    }
  }
  return flags;
}

std::string Flags::GetString(const std::string& key,
                             const std::string& def) const {
  auto it = values_.find(key);
  return it == values_.end() ? def : it->second;
}

int64_t Flags::GetInt(const std::string& key, int64_t def) const {
  auto it = values_.find(key);
  if (it == values_.end()) return def;
  char* end = nullptr;
  const long long parsed = std::strtoll(it->second.c_str(), &end, 10);
  if (end == it->second.c_str() || *end != '\0') return def;
  return parsed;
}

double Flags::GetDouble(const std::string& key, double def) const {
  auto it = values_.find(key);
  if (it == values_.end()) return def;
  char* end = nullptr;
  const double parsed = std::strtod(it->second.c_str(), &end);
  if (end == it->second.c_str() || *end != '\0') return def;
  return parsed;
}

bool Flags::GetBool(const std::string& key, bool def) const {
  auto it = values_.find(key);
  if (it == values_.end()) return def;
  return it->second != "false" && it->second != "0";
}

std::vector<std::string> Flags::Keys() const {
  std::vector<std::string> keys;
  keys.reserve(values_.size());
  for (const auto& [key, value] : values_) keys.push_back(key);
  return keys;
}

}  // namespace ibfs
