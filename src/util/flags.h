#ifndef IBFS_UTIL_FLAGS_H_
#define IBFS_UTIL_FLAGS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "util/status.h"

namespace ibfs {

/// Minimal command-line parser for the CLI tool: accepts
/// `--key=value` and `--key value` pairs plus bare `--switch` booleans;
/// everything else is a positional argument.
class Flags {
 public:
  /// Parses argv; returns an error for malformed input (`--=x`).
  static Result<Flags> Parse(int argc, const char* const* argv);

  bool Has(const std::string& key) const { return values_.count(key) > 0; }

  /// String value or `def` when absent.
  std::string GetString(const std::string& key,
                        const std::string& def = "") const;

  /// Integer value or `def` when absent/unparsable.
  int64_t GetInt(const std::string& key, int64_t def) const;

  /// Double value or `def` when absent/unparsable.
  double GetDouble(const std::string& key, double def) const;

  /// True when the switch is present (and not "false"/"0").
  bool GetBool(const std::string& key, bool def = false) const;

  const std::vector<std::string>& positional() const { return positional_; }

  /// Keys that were parsed, for unknown-flag detection.
  std::vector<std::string> Keys() const;

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace ibfs

#endif  // IBFS_UTIL_FLAGS_H_
