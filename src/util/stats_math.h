#ifndef IBFS_UTIL_STATS_MATH_H_
#define IBFS_UTIL_STATS_MATH_H_

#include <cstddef>
#include <cstdint>
#include <span>

namespace ibfs {

/// Streaming mean/variance accumulator (Welford's algorithm). Numerically
/// stable for the long counter series produced by the benchmark harnesses.
class RunningStats {
 public:
  /// Adds one observation.
  void Add(double x);

  int64_t count() const { return count_; }
  double mean() const { return count_ > 0 ? mean_ : 0.0; }
  /// Population variance (divides by n).
  double variance() const;
  /// Population standard deviation.
  double stddev() const;
  double min() const { return count_ > 0 ? min_ : 0.0; }
  double max() const { return count_ > 0 ? max_ : 0.0; }
  double sum() const { return sum_; }

 private:
  int64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Population standard deviation of a sequence (convenience wrapper).
double StdDev(std::span<const double> values);

/// Arithmetic mean; returns 0 for an empty span.
double Mean(std::span<const double> values);

/// Geometric mean; all values must be > 0. Returns 0 for an empty span.
double GeoMean(std::span<const double> values);

}  // namespace ibfs

#endif  // IBFS_UTIL_STATS_MATH_H_
