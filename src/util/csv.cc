#include "util/csv.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>

namespace ibfs {
namespace {

std::string FormatDouble(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

}  // namespace

CsvTable::CsvTable(std::vector<std::string> header)
    : header_(std::move(header)) {}

CsvTable& CsvTable::Row() {
  rows_.emplace_back();
  return *this;
}

CsvTable& CsvTable::Add(const std::string& cell) {
  rows_.back().push_back(cell);
  return *this;
}

CsvTable& CsvTable::Add(double value, int precision) {
  return Add(FormatDouble(value, precision));
}

CsvTable& CsvTable::Add(int64_t value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRId64, value);
  return Add(std::string(buf));
}

CsvTable& CsvTable::Add(uint64_t value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, value);
  return Add(std::string(buf));
}

CsvTable& CsvTable::Add(int value) { return Add(static_cast<int64_t>(value)); }

void CsvTable::Print(std::ostream& os) const {
  std::vector<size_t> widths(header_.size(), 0);
  for (size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size() && c < widths.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      if (c > 0) os << ", ";
      os << row[c];
      if (c + 1 < row.size() && c < widths.size()) {
        for (size_t pad = row[c].size(); pad < widths[c]; ++pad) os << ' ';
      }
    }
    os << '\n';
  };
  print_row(header_);
  for (const auto& row : rows_) print_row(row);
}

}  // namespace ibfs
