#include "util/thread_pool.h"

#include <algorithm>
#include <atomic>

#include "util/logging.h"

namespace ibfs {
namespace {

// Identity of the worker thread currently executing, for Submit's
// push-to-own-deque fast path and CurrentWorkerIndex. One pool is active
// per worker thread by construction (workers never nest pools).
thread_local const ThreadPool* tls_pool = nullptr;
thread_local int tls_worker_index = -1;

}  // namespace

ThreadPool::ThreadPool(int thread_count) {
  const int n = std::max(1, thread_count);
  workers_.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    workers_.push_back(std::make_unique<Worker>());
  }
  threads_.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    threads_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(wake_mu_);
    shutdown_ = true;
  }
  wake_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  size_t target;
  if (tls_pool == this && tls_worker_index >= 0) {
    target = static_cast<size_t>(tls_worker_index);
    std::lock_guard<std::mutex> lock(workers_[target]->mu);
    workers_[target]->tasks.push_back(std::move(task));
  } else {
    {
      std::lock_guard<std::mutex> lock(submit_mu_);
      target = next_worker_;
      next_worker_ = (next_worker_ + 1) % workers_.size();
    }
    std::lock_guard<std::mutex> lock(workers_[target]->mu);
    workers_[target]->tasks.push_back(std::move(task));
  }
  {
    std::lock_guard<std::mutex> lock(wake_mu_);
    ++pending_;
  }
  wake_cv_.notify_one();
}

std::function<void()> ThreadPool::TakeTask(int index) {
  const size_t n = workers_.size();
  // Own deque: LIFO end.
  {
    Worker& own = *workers_[static_cast<size_t>(index)];
    std::lock_guard<std::mutex> lock(own.mu);
    if (!own.tasks.empty()) {
      auto task = std::move(own.tasks.back());
      own.tasks.pop_back();
      return task;
    }
  }
  // Steal: siblings' FIFO end, scanning from the next worker around.
  for (size_t off = 1; off < n; ++off) {
    Worker& victim = *workers_[(static_cast<size_t>(index) + off) % n];
    std::lock_guard<std::mutex> lock(victim.mu);
    if (!victim.tasks.empty()) {
      auto task = std::move(victim.tasks.front());
      victim.tasks.pop_front();
      return task;
    }
  }
  return {};
}

void ThreadPool::WorkerLoop(int index) {
  tls_pool = this;
  tls_worker_index = index;
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(wake_mu_);
      wake_cv_.wait(lock, [this] { return pending_ > 0 || shutdown_; });
      if (pending_ == 0 && shutdown_) break;
      // Claim one pending slot before unlocking; the matching task is
      // guaranteed to be in some deque already.
      --pending_;
    }
    task = TakeTask(index);
    // pending_ and the deques are updated under different mutexes, so a
    // claimed slot's task may momentarily be handed to another thief; spin
    // through the deques until it surfaces.
    while (!task) task = TakeTask(index);
    task();
  }
  tls_pool = nullptr;
  tls_worker_index = -1;
}

void ThreadPool::ParallelFor(int64_t n, const std::function<void(int64_t)>& fn) {
  if (n <= 0) return;
  if (n == 1) {
    fn(0);
    return;
  }
  // Nested call from one of this pool's own workers: blocking on done_cv
  // would park the worker that the submitted iterations need (a guaranteed
  // deadlock at thread_count 1, and a slot leak otherwise). Degrade to
  // inline execution — same iterations, same thread, no waiting.
  if (tls_pool == this) {
    IBFS_LOG(Warning) << "ParallelFor called from worker "
                      << tls_worker_index
                      << " of its own pool; running " << n
                      << " iterations inline to avoid self-deadlock";
    for (int64_t i = 0; i < n; ++i) fn(i);
    return;
  }
  std::mutex done_mu;
  std::condition_variable done_cv;
  int64_t remaining = n;
  for (int64_t i = 0; i < n; ++i) {
    Submit([&, i] {
      fn(i);
      // Notify under the lock: done_cv lives on the caller's stack, and an
      // unlocked notify could still be running when the woken caller
      // destroys it.
      std::lock_guard<std::mutex> lock(done_mu);
      --remaining;
      done_cv.notify_one();
    });
  }
  std::unique_lock<std::mutex> lock(done_mu);
  done_cv.wait(lock, [&] { return remaining == 0; });
}

int ThreadPool::CurrentWorkerIndex() { return tls_worker_index; }

int ThreadPool::HardwareConcurrency() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

}  // namespace ibfs
