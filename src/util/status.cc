#include "util/status.h"

namespace ibfs {
namespace {

const char* CodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kIoError:
      return "IoError";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kUnavailable:
      return "Unavailable";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kDataLoss:
      return "DataLoss";
  }
  return "Unknown";
}

}  // namespace

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = CodeName(code_);
  out += ": ";
  out += message_;
  return out;
}

}  // namespace ibfs
