#ifndef IBFS_UTIL_STATUS_H_
#define IBFS_UTIL_STATUS_H_

#include <string>
#include <utility>
#include <variant>

namespace ibfs {

/// Error codes used across the library. Library code does not throw; fallible
/// operations return Status (or Result<T>), in the style of Arrow / RocksDB.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kOutOfRange,
  kNotFound,
  kIoError,
  kFailedPrecondition,
  kInternal,
  /// A transient failure (injected or real); retrying may succeed.
  kUnavailable,
  /// A per-query deadline expired before the result was produced.
  kDeadlineExceeded,
  /// Admission control shed the request (queue over capacity).
  kResourceExhausted,
  /// Payload failed its integrity check (checksum mismatch).
  kDataLoss,
};

/// Display name of a code ("OK", "DeadlineExceeded", ...) — stable strings
/// used by Status::ToString and the structured access log.
const char* StatusCodeName(StatusCode code);

/// A success-or-error value. Cheap to copy on success (no allocation).
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  /// Constructs a status with the given code and human-readable message.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status DataLoss(std::string msg) {
    return Status(StatusCode::kDataLoss, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Renders "OK" or "<code>: <message>" for logs and test failures.
  std::string ToString() const;

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

/// A value-or-error result. Holds T on success, Status on failure.
template <typename T>
class Result {
 public:
  /// Implicit from value: `return some_graph;`.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit from error status: `return Status::InvalidArgument(...)`.
  Result(Status status) : value_(std::move(status)) {}  // NOLINT

  bool ok() const { return std::holds_alternative<T>(value_); }

  /// Returns the error status; OK if the result holds a value.
  Status status() const {
    if (ok()) return Status::OK();
    return std::get<Status>(value_);
  }

  /// Precondition: ok().
  const T& value() const& { return std::get<T>(value_); }
  T& value() & { return std::get<T>(value_); }
  T&& value() && { return std::get<T>(std::move(value_)); }

 private:
  std::variant<T, Status> value_;
};

}  // namespace ibfs

/// Propagates a non-OK Status from an expression, RocksDB-style.
#define IBFS_RETURN_NOT_OK(expr)                 \
  do {                                           \
    ::ibfs::Status _st = (expr);                 \
    if (!_st.ok()) return _st;                   \
  } while (false)

#endif  // IBFS_UTIL_STATUS_H_
