#ifndef IBFS_SERVICE_SERVICE_H_
#define IBFS_SERVICE_SERVICE_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

#include "core/engine.h"
#include "core/options.h"
#include "core/resilient.h"
#include "graph/csr.h"
#include "obs/flight.h"
#include "obs/live.h"
#include "obs/slo.h"
#include "obs/trace.h"
#include "service/cache.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace ibfs::service {

/// Online BFS query serving: clients submit single-source BFS queries to a
/// thread-safe admission queue and receive futures; a dynamic batcher
/// closes a batch when `max_batch` queries are pending or the oldest one
/// has waited `max_delay_ms` (whichever first), plans the batch through
/// the shared GroupSources/GroupBy path, and executes the resulting groups
/// asynchronously on a host thread pool — the dynamic-batching tradeoff
/// inference servers make, applied to the paper's GroupBy rules. See
/// docs/SERVING.md.

/// Reserved trace pid for the service's wall-clock tracks. Each closed
/// batch gets its own track (tid = batch id + 1) carrying its
/// queue -> group -> execute spans, so chrome://tracing shows the latency
/// anatomy per batch.
inline constexpr int kServicePid = 2000;

/// Failure-handling knobs of one BfsService. Execution-side fault
/// injection and retry policy live on EngineOptions (faults / retry);
/// these govern what the service does around them. See docs/RESILIENCE.md.
struct ResilienceOptions {
  /// Per-query completion deadline in host milliseconds since submit
  /// (0 = no deadline). An expired query completes with DeadlineExceeded —
  /// at batch close if it expired while queued, or at fan-out if its
  /// group's execution finished too late.
  double deadline_ms = 0.0;
  /// Admission-queue bound: Submit sheds with ResourceExhausted once this
  /// many queries are pending (0 = unbounded).
  int max_pending = 0;
  /// Consecutive failures on one simulated device that open its circuit
  /// breaker (the router stops offering the device).
  int breaker_threshold = 3;
  /// When retries are exhausted or every breaker is open, serve the group
  /// from the sequential CPU reference BFS and mark its queries
  /// `degraded` — correct depths, no GPU sharing. Off = fail the queries.
  bool cpu_fallback = true;
};

/// Configuration of one BfsService.
struct ServiceOptions {
  /// Close the open batch once this many queries are pending.
  int max_batch = 64;
  /// ... or once the oldest pending query has waited this long (0 = close
  /// as soon as the batcher wakes, i.e. effectively batch-of-arrivals).
  double max_delay_ms = 2.0;
  /// Workers executing closed batches' groups concurrently (0 = one per
  /// hardware thread). Per-query depths are bit-identical at any setting;
  /// only latencies change.
  int execute_threads = 1;
  /// Return each query's full depth vector in its QueryResult. Costs
  /// |V| bytes per query; benches that only need latency/checksum turn it
  /// off (the depth checksum is always computed).
  bool keep_depths = true;
  /// Strategy, grouping policy, group size, device spec, and GroupBy
  /// parameters for batch execution. `engine.threads` is unused here
  /// (execute_threads governs service parallelism);
  /// `engine.traversal.collect_instance_stats` is forced on so the
  /// achieved sharing ratio is measurable.
  EngineOptions engine;
  /// Deadlines, admission bounds, circuit breaking, and degraded fallback.
  ResilienceOptions resilience;
  /// Result + plan caching (docs/SERVING.md "Caching"). Hits are stripped
  /// at admission: the future resolves immediately from the cached depth
  /// vector (checksum re-verified) without ever joining a batch.
  CacheOptions cache;
  /// Service-level telemetry: per-batch wall-clock trace tracks and
  /// service.* metrics. Kernel-level simulated-time spans stay off these
  /// tracks (the two timebases must not share one), but the metrics
  /// registry is forwarded to execution, and when tracing is on each
  /// group execution additionally emits its simulated-time kernel spans
  /// on a per-execution device track carrying the batch's query ids as a
  /// "ctx" trace-context arg.
  obs::Observer observer;

  /// Live telemetry sinks, all optional and caller-owned (must outlive
  /// the service). Every query completion that carries a query id flows
  /// through all of them: one JSONL line to `access_log`, one sample to
  /// the SLO tracker, one ring entry to the flight recorder. Shed
  /// admissions and bad-source rejects never receive an id and are
  /// visible through shed.*/service.failed metrics instead.
  obs::AccessLog* access_log = nullptr;
  obs::SloTracker* slo = nullptr;
  obs::FlightRecorder* flight = nullptr;
  /// Window of the live.* rolling gauges (qps, error ratio, latency
  /// percentiles), published by PublishLiveTelemetry.
  double live_window_s = 10.0;

  /// Validates the batching knobs and the embedded engine options.
  Status Validate() const;
};

/// Per-query latency breakdown, milliseconds of host wall clock.
struct QueryLatency {
  /// Submit -> batch close (admission-queue wait).
  double queue_ms = 0.0;
  /// Batch close -> group execution start (grouping + executor wait).
  double batch_ms = 0.0;
  /// Group execution (host wall clock of the simulated traversal).
  double execute_ms = 0.0;
  /// Submit -> completion.
  double total_ms = 0.0;
};

/// What a query's future resolves to.
struct QueryResult {
  /// Non-OK when the query failed (invalid source, rejected batch) or the
  /// service was torn down before execution.
  Status status;
  graph::VertexId source = 0;
  int64_t query_id = -1;
  /// Which closed batch and which group within it served this query.
  int64_t batch_id = -1;
  int group_index = -1;
  /// depths[v] = BFS depth of v from `source` (kUnvisitedDepth when
  /// unreached). Empty when ServiceOptions::keep_depths is off.
  std::vector<uint8_t> depths;
  /// FNV-1a hash over the depth bytes — always computed, so determinism
  /// can be checked without retaining |V| bytes per query.
  uint64_t depth_checksum = 0;
  /// Vertices reached (depth != kUnvisitedDepth).
  int64_t reached = 0;
  /// True when the query was served by the CPU fallback path instead of a
  /// simulated device (correct depths, degraded performance contract).
  bool degraded = false;
  /// True when the answer came from the result cache at admission (no
  /// batch joined; batch_id/group_index stay -1 and attempts 0).
  bool cached = false;
  /// Device execution attempts spent on this query's group (1 = first try
  /// succeeded; 0 = never reached a device, e.g. pure fallback).
  int attempts = 0;
  QueryLatency latency;
};

/// The online BFS query service. Thread-safe: Submit may be called from
/// any number of client threads; results are completed from the executor
/// pool. Shutdown (or destruction) drains — every pending query's future
/// completes, none are abandoned.
class BfsService {
 public:
  /// Aggregate counters since Create. stats() returns a copy taken under
  /// one lock, and every mutation path accounts *before* it completes the
  /// client-visible future — so a snapshot taken after a future resolved
  /// already includes that query's contribution, and cross-field
  /// invariants (completed + failed <= queries + cache_hits + shed +
  /// rejected, MeanBatchSize inputs) hold in every snapshot.
  struct Stats {
    int64_t queries = 0;
    int64_t completed = 0;
    int64_t failed = 0;
    int64_t batches = 0;
    int64_t groups = 0;
    int64_t executed_instances = 0;
    /// Batch-close reasons: reached max_batch / max_delay_ms expired /
    /// drained at shutdown.
    int64_t size_closes = 0;
    int64_t deadline_closes = 0;
    int64_t shutdown_closes = 0;
    /// Resilience accounting: queries shed at admission, queries that
    /// missed their deadline, queries served degraded (CPU fallback),
    /// device retries beyond first attempts, injected launch failures
    /// observed, corruptions caught by the transfer checksum, groups
    /// served by the CPU fallback, and circuit breakers opened.
    int64_t shed = 0;
    int64_t deadline_exceeded = 0;
    /// Queries answered from the result cache at admission (counted in
    /// `completed` but not `queries` — like shed queries they never join
    /// a batch, so MeanBatchSize stays a statement about executed work).
    int64_t cache_hits = 0;
    /// Submissions refused at the front door (bad source, post-shutdown)
    /// — counted in `failed` but not `queries`: like shed queries they
    /// never join a batch.
    int64_t rejected = 0;
    int64_t degraded = 0;
    int64_t retries = 0;
    int64_t transient_faults = 0;
    int64_t corruptions_detected = 0;
    int64_t fallback_groups = 0;
    int64_t breaker_opened = 0;
    /// Total simulated seconds across executed groups.
    double sim_seconds = 0.0;
    /// Sharing-ratio accumulators over all executed groups (same
    /// definition as EngineResult::SharingRatio).
    int64_t private_fq_sum = 0;
    int64_t jfq_sum = 0;

    /// Field-wise accumulation — the fleet front door merges per-shard
    /// snapshots into fleet-level totals with this.
    void Add(const Stats& other);

    /// Aggregate sharing ratio achieved by dynamic batching so far.
    double SharingRatio() const;
    /// i x |E| / sim_seconds over everything executed so far.
    double Teps(int64_t edge_count) const;
    double MeanBatchSize() const {
      return batches == 0
                 ? 0.0
                 : static_cast<double>(queries) /
                       static_cast<double>(batches);
    }
  };

  /// Validates options and starts the batcher thread and executor pool.
  /// The graph must outlive the service.
  static Result<std::unique_ptr<BfsService>> Create(const graph::Csr* graph,
                                                    ServiceOptions options);

  /// Drains and joins (equivalent to Shutdown()).
  ~BfsService();

  BfsService(const BfsService&) = delete;
  BfsService& operator=(const BfsService&) = delete;

  /// Enqueues one BFS query. The future always becomes ready: with depths
  /// on success, with a non-OK QueryResult::status on failure (including
  /// an out-of-range source, reported per-query rather than poisoning the
  /// whole batch). After Shutdown, completes immediately with
  /// FailedPrecondition.
  std::future<QueryResult> Submit(graph::VertexId source);

  /// Closes admission, drains every pending query through execution, and
  /// joins the batcher and executor. Idempotent; called by the destructor.
  void Shutdown();

  /// Drops every entry from the result and plan caches (e.g. after the
  /// underlying graph data changed). No-op when caching is disabled.
  void InvalidateCache();

  /// Combined cache counters (result-cache hits/misses/bytes + plan-cache
  /// hits/misses). All zeros when caching is disabled.
  CacheStats cache_stats() const;

  /// Test hook: the underlying result cache (null when caching is
  /// disabled), so integrity tests can corrupt an entry in place and watch
  /// the quarantine path fire.
  ResultCache* result_cache_for_test() { return result_cache_.get(); }

  /// Refreshes the live.*, slo.*, and cache.hit_ratio gauges from the
  /// rolling windows and re-evaluates the SLO alert (so an alert can clear
  /// while traffic is idle). Called by the live exporter's tick and safe
  /// to call from anywhere; a no-op for sinks that are not configured.
  void PublishLiveTelemetry();

  /// Rolling-window views over the live stats (window = live_window_s,
  /// same data behind the live.* gauges). The fleet's rebalancing
  /// controller reads the percentiles; its health recovery probe reads the
  /// error ratio, which — unlike Stats::failed — forgets a burst once the
  /// window slides past it.
  double LivePercentileMs(double p) const;
  double LiveErrorRatio() const;
  int64_t LiveWindowCount() const;

  /// Sources currently resident in the result cache (empty when caching is
  /// disabled). Donor-side enumeration for fleet join warmup.
  std::vector<graph::VertexId> CachedSources() const;
  /// Non-mutating cache read (no LRU/stat effects, checksum still
  /// verified); nullopt on miss or when caching is disabled.
  std::optional<CachedDepths> PeekCache(graph::VertexId source) const;
  /// Inserts an externally computed answer (replica fan-out / join
  /// warmup). The checksum must match the depth bytes — a mismatch is
  /// rejected so a corrupt donor can never seed this shard's cache.
  /// Returns false on mismatch, bad source, or disabled cache.
  bool WarmCache(graph::VertexId source, const CachedDepths& value);
  /// Drops one cached answer (replica checksum-mismatch quarantine).
  bool EvictCacheEntry(graph::VertexId source);

  /// Test hook: records one synthetic completion into the rolling live
  /// window, so controllers that read LivePercentileMs can be driven
  /// deterministically without timing-sensitive traffic.
  void RecordLiveSampleForTest(double total_ms, bool ok);
  /// Test hook: opens every device circuit breaker, as a burst of
  /// persistent device failures would. With cpu_fallback off the next
  /// groups fail Unavailable — how hedging tests force a sick primary.
  void TripBreakersForTest();
  /// True when every device breaker is open (the service can only answer
  /// via CPU fallback, if enabled). One of the fleet's hedge triggers.
  bool BreakersOpen() const;

  Stats stats() const;
  const ServiceOptions& options() const { return options_; }

 private:
  struct PendingQuery {
    std::promise<QueryResult> promise;
    graph::VertexId source = 0;
    int64_t query_id = -1;
    std::chrono::steady_clock::time_point submitted;
  };

  BfsService(const graph::Csr* graph, ServiceOptions options);

  /// The batcher thread: waits for size/deadline/shutdown, closes batches,
  /// plans them, and dispatches their groups to the executor.
  void BatcherLoop();
  enum class CloseReason { kSize, kDeadline, kShutdown };
  void DispatchBatch(std::vector<PendingQuery> batch, CloseReason reason);

  double SinceStartUs(std::chrono::steady_clock::time_point tp) const {
    return std::chrono::duration<double, std::micro>(tp - start_).count();
  }
  /// Seconds since service start — the timeline every live-telemetry
  /// window runs on.
  double NowS() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }

  /// Central completion hook: every query that resolves with an assigned
  /// query id passes through here exactly once, feeding the access log,
  /// the rolling live stats, the SLO tracker (handling any alert
  /// transition), and the flight recorder.
  void RecordCompletion(const QueryResult& result);
  void HandleSloTransition(obs::SloTransition transition, double now_s);
  /// Dumps a flight record when the result cache quarantined an entry
  /// since the last check.
  void CheckQuarantineTrigger(double now_s);

  const graph::Csr* graph_;
  ServiceOptions options_;
  Engine engine_;
  std::chrono::steady_clock::time_point start_;

  std::mutex mu_;  // guards pending_, next_query_id_, shutdown_
  std::condition_variable cv_;
  std::deque<PendingQuery> pending_;
  int64_t next_query_id_ = 0;
  bool shutdown_ = false;

  mutable std::mutex stats_mu_;
  Stats stats_;
  int64_t next_batch_id_ = 0;  // batcher thread only

  /// Rolling-window qps/error/latency behind the live.* gauges.
  obs::LiveStats live_stats_;
  /// Last cache-quarantine count seen, for the flight trigger.
  std::atomic<int64_t> last_quarantined_{0};
  /// Allocates one simulated-time trace track per group execution (tid
  /// 1, 2, ... on the executing device's pid), so concurrent groups on
  /// one device never interleave kernel spans on a single track.
  std::atomic<int> next_exec_track_{0};

  /// Round-robin device router with per-device circuit breakers over the
  /// engine's simulated fleet (engine.faults.device_count ordinals).
  std::unique_ptr<DeviceRouter> router_;

  /// Cross-batch redundancy elimination (null when options_.cache.enabled
  /// is false): completed answers keyed by source, and memoized GroupBy
  /// plans keyed by the sorted source set.
  std::unique_ptr<ResultCache> result_cache_;
  std::unique_ptr<PlanCache> plan_cache_;

  std::unique_ptr<ThreadPool> executor_;
  std::thread batcher_;
  bool joined_ = false;  // guarded by shutdown_mu_
  std::mutex shutdown_mu_;
};

}  // namespace ibfs::service

#endif  // IBFS_SERVICE_SERVICE_H_
