#include "service/workload.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <thread>
#include <utility>

#include "core/engine.h"
#include "graph/components.h"
#include "ibfs/runner.h"
#include "obs/metrics.h"
#include "util/prng.h"

namespace ibfs::service {
namespace {

using Clock = std::chrono::steady_clock;

/// Exponential inter-arrival sample at `rate` per second.
double NextExponential(Prng* prng, double rate) {
  // 1 - u in (0, 1]: log never sees 0.
  return -std::log(1.0 - prng->NextDouble()) / rate;
}

}  // namespace

const char* ArrivalProcessName(ArrivalProcess arrival) {
  switch (arrival) {
    case ArrivalProcess::kPoisson:
      return "poisson";
    case ArrivalProcess::kBursty:
      return "bursty";
    case ArrivalProcess::kUniform:
      return "uniform";
  }
  return "unknown";
}

std::optional<ArrivalProcess> ParseArrivalProcess(std::string_view name) {
  if (name == "poisson") return ArrivalProcess::kPoisson;
  if (name == "bursty") return ArrivalProcess::kBursty;
  if (name == "uniform") return ArrivalProcess::kUniform;
  return std::nullopt;
}

Status WorkloadOptions::Validate() const {
  if (qps <= 0.0) return Status::InvalidArgument("qps must be positive");
  if (duration_s <= 0.0) {
    return Status::InvalidArgument("duration must be positive");
  }
  if (burst_size < 1) {
    return Status::InvalidArgument("burst_size must be >= 1");
  }
  if (max_queries < 0) {
    return Status::InvalidArgument("max_queries must be non-negative");
  }
  if (source_pool < 0) {
    return Status::InvalidArgument("source_pool must be non-negative");
  }
  return Status::OK();
}

Result<std::vector<WorkloadEvent>> GenerateArrivals(
    const graph::Csr& graph, const WorkloadOptions& options) {
  IBFS_RETURN_NOT_OK(options.Validate());
  std::vector<graph::VertexId> pool = graph::GiantComponent(graph);
  if (pool.empty()) {
    return Status::FailedPrecondition("graph has no connected component");
  }
  // Independent streams for arrival times and source picks, so changing
  // the arrival process does not reshuffle which sources are queried.
  Prng time_prng(options.seed);
  Prng source_prng(options.seed ^ 0x9e3779b97f4a7c15ULL);
  if (options.source_pool > 0 &&
      options.source_pool < static_cast<int64_t>(pool.size())) {
    // Hot-source mode: shrink the pool to `source_pool` distinct vertices
    // via a partial Fisher-Yates draw on the source stream, so the chosen
    // hot set is deterministic in the seed.
    for (int64_t i = 0; i < options.source_pool; ++i) {
      const int64_t j =
          i + static_cast<int64_t>(source_prng.NextBounded(
                  pool.size() - static_cast<size_t>(i)));
      std::swap(pool[static_cast<size_t>(i)], pool[static_cast<size_t>(j)]);
    }
    pool.resize(static_cast<size_t>(options.source_pool));
  }

  std::vector<WorkloadEvent> events;
  const int64_t cap =
      options.max_queries > 0
          ? options.max_queries
          : static_cast<int64_t>(options.qps * options.duration_s) * 4 + 64;
  auto emit = [&](double at_s) {
    WorkloadEvent event;
    event.at_s = at_s;
    event.source =
        pool[static_cast<size_t>(source_prng.NextBounded(pool.size()))];
    events.push_back(event);
  };
  double t = 0.0;
  switch (options.arrival) {
    case ArrivalProcess::kPoisson:
      for (t = NextExponential(&time_prng, options.qps);
           t < options.duration_s &&
           static_cast<int64_t>(events.size()) < cap;
           t += NextExponential(&time_prng, options.qps)) {
        emit(t);
      }
      break;
    case ArrivalProcess::kBursty: {
      const double burst_rate =
          options.qps / static_cast<double>(options.burst_size);
      for (t = NextExponential(&time_prng, burst_rate);
           t < options.duration_s &&
           static_cast<int64_t>(events.size()) < cap;
           t += NextExponential(&time_prng, burst_rate)) {
        for (int b = 0;
             b < options.burst_size &&
             static_cast<int64_t>(events.size()) < cap;
             ++b) {
          emit(t);
        }
      }
      break;
    }
    case ArrivalProcess::kUniform: {
      const double step = 1.0 / options.qps;
      for (t = step; t < options.duration_s &&
                     static_cast<int64_t>(events.size()) < cap;
           t += step) {
        emit(t);
      }
      break;
    }
  }
  if (events.empty()) {
    return Status::InvalidArgument(
        "workload generated no arrivals (duration too short for qps)");
  }
  return events;
}

Result<DriveResult> DriveWorkload(BfsService* service,
                                  std::span<const WorkloadEvent> events) {
  if (service == nullptr) {
    return Status::InvalidArgument("no service to drive");
  }
  if (events.empty()) {
    return Status::InvalidArgument("no workload events");
  }
  std::vector<std::future<QueryResult>> futures;
  futures.reserve(events.size());
  const auto start = Clock::now();
  for (const WorkloadEvent& event : events) {
    // Open loop: hold to the schedule even if the service is behind —
    // backpressure must show up as queue latency, not as reduced load.
    std::this_thread::sleep_until(
        start + std::chrono::duration_cast<Clock::duration>(
                    std::chrono::duration<double>(event.at_s)));
    futures.push_back(service->Submit(event.source));
  }
  service->Shutdown();
  const double wall_seconds =
      std::chrono::duration<double>(Clock::now() - start).count();

  DriveResult drive;
  drive.results.reserve(futures.size());
  int64_t completed = 0;
  for (std::future<QueryResult>& future : futures) {
    drive.results.push_back(future.get());
    if (drive.results.back().status.ok()) ++completed;
  }
  drive.wall_seconds = wall_seconds;
  drive.achieved_qps =
      wall_seconds > 0.0 ? static_cast<double>(completed) / wall_seconds
                         : 0.0;
  drive.stats = service->stats();
  drive.cache = service->cache_stats();
  return drive;
}

Result<double> OracleSharingRatio(const graph::Csr& graph,
                                  EngineOptions engine_options,
                                  std::span<const WorkloadEvent> events) {
  // The oracle sees the whole workload at once and dedups exactly like
  // the service's batches do, so the comparison isolates the cost of
  // grouping online instead of offline.
  std::vector<graph::VertexId> sources;
  sources.reserve(events.size());
  for (const WorkloadEvent& event : events) sources.push_back(event.source);
  std::sort(sources.begin(), sources.end());
  sources.erase(std::unique(sources.begin(), sources.end()), sources.end());

  engine_options.keep_depths = false;
  engine_options.traversal.collect_instance_stats = true;
  engine_options.observer = obs::Observer();  // do not pollute run sinks
  Engine engine(&graph, engine_options);
  Result<EngineResult> run = engine.Run(sources);
  if (!run.ok()) return run.status();
  return run.value().SharingRatio();
}

obs::ServiceReport BuildServiceReport(const std::string& graph_name,
                                      const graph::Csr& graph,
                                      const ServiceOptions& service_options,
                                      const WorkloadOptions& workload,
                                      const DriveResult& drive,
                                      double oracle_sharing_ratio) {
  obs::ServiceReport report;
  report.graph = graph_name;
  report.vertex_count = graph.vertex_count();
  report.edge_count = graph.edge_count();
  report.strategy = StrategyName(service_options.engine.strategy);
  report.grouping = GroupingPolicyName(service_options.engine.grouping);
  report.arrival = ArrivalProcessName(workload.arrival);
  report.offered_qps = workload.qps;
  report.duration_seconds = workload.duration_s;
  report.queries = static_cast<int64_t>(drive.results.size());

  report.max_batch = service_options.max_batch;
  report.max_delay_ms = service_options.max_delay_ms;
  report.execute_threads = service_options.execute_threads;
  report.batches = drive.stats.batches;
  report.groups = drive.stats.groups;
  report.size_closes = drive.stats.size_closes;
  report.deadline_closes = drive.stats.deadline_closes;
  report.shutdown_closes = drive.stats.shutdown_closes;
  report.mean_batch_size = drive.stats.MeanBatchSize();

  report.completed = drive.stats.completed;
  report.failed = drive.stats.failed;
  report.achieved_qps = drive.achieved_qps;
  report.wall_seconds = drive.wall_seconds;
  report.sim_seconds = drive.stats.sim_seconds;
  report.teps = drive.stats.Teps(graph.edge_count());
  report.sharing_ratio = drive.stats.SharingRatio();
  report.oracle_sharing_ratio = oracle_sharing_ratio;
  report.sharing_fraction = oracle_sharing_ratio > 0.0
                                ? report.sharing_ratio / oracle_sharing_ratio
                                : 0.0;

  report.cache_enabled = service_options.cache.enabled;
  report.cache_hits = drive.cache.hits;
  report.cache_misses = drive.cache.misses;
  report.cache_insertions = drive.cache.insertions;
  report.cache_evictions = drive.cache.evictions;
  report.cache_quarantined = drive.cache.quarantined;
  report.cache_entries = drive.cache.entries;
  report.cache_bytes_resident = drive.cache.bytes_resident;
  report.cache_hit_ratio = drive.cache.HitRatio();
  report.plan_hits = drive.cache.plan_hits;
  report.plan_misses = drive.cache.plan_misses;

  // Percentiles via the histogram accessor (the satellite this PR adds):
  // one local histogram per distribution, then interpolated p50/p95/p99.
  const std::vector<double> bounds = obs::PowerOfTwoBounds(0.001, 32);
  obs::Histogram queue("queue_ms", bounds);
  obs::Histogram execute("execute_ms", bounds);
  obs::Histogram total("total_ms", bounds);
  for (const QueryResult& result : drive.results) {
    if (!result.status.ok()) continue;
    queue.Observe(result.latency.queue_ms);
    execute.Observe(result.latency.execute_ms);
    total.Observe(result.latency.total_ms);
  }
  auto fill = [](const obs::Histogram& h, obs::ReportLatency* out) {
    out->p50 = h.Percentile(0.50);
    out->p95 = h.Percentile(0.95);
    out->p99 = h.Percentile(0.99);
    out->mean = h.Mean();
    out->max = h.max();
  };
  fill(queue, &report.queue_ms);
  fill(execute, &report.execute_ms);
  fill(total, &report.total_ms);
  return report;
}

}  // namespace ibfs::service
