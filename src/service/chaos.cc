#include "service/chaos.h"

#include <algorithm>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/engine.h"
#include "util/checksum.h"

namespace ibfs::service {

Result<obs::ResilienceReport> RunChaos(const std::string& graph_name,
                                       const graph::Csr& graph,
                                       const ChaosOptions& options) {
  IBFS_RETURN_NOT_OK(options.service.Validate());
  Result<std::vector<WorkloadEvent>> events =
      GenerateArrivals(graph, options.workload);
  if (!events.ok()) return events.status();

  // Fault-free baseline: one offline engine run over the deduped workload
  // sources with injection disabled. BFS depths are unique per source, so
  // whatever path the chaotic service takes to an OK answer — first try,
  // retry on another attempt, or the CPU fallback — its depth checksum
  // must equal this baseline's.
  std::vector<graph::VertexId> sources;
  sources.reserve(events.value().size());
  for (const WorkloadEvent& event : events.value()) {
    sources.push_back(event.source);
  }
  std::sort(sources.begin(), sources.end());
  sources.erase(std::unique(sources.begin(), sources.end()), sources.end());

  EngineOptions baseline_options = options.service.engine;
  baseline_options.faults = gpusim::FaultPlan();
  baseline_options.keep_depths = true;
  baseline_options.observer = obs::Observer();  // no sinks for the oracle
  Engine baseline(&graph, baseline_options);
  Result<EngineResult> base_run = baseline.Run(sources);
  if (!base_run.ok()) return base_run.status();
  std::unordered_map<graph::VertexId, uint64_t> expected;
  expected.reserve(sources.size());
  const EngineResult& base = base_run.value();
  for (size_t g = 0; g < base.groups.size(); ++g) {
    for (size_t k = 0; k < base.group_sources[g].size(); ++k) {
      expected[base.group_sources[g][k]] = Fnv1a(base.groups[g].depths[k]);
    }
  }

  // Chaos drive: same workload, faults armed.
  Result<std::unique_ptr<BfsService>> service =
      BfsService::Create(&graph, options.service);
  if (!service.ok()) return service.status();
  Result<DriveResult> driven =
      DriveWorkload(service.value().get(), events.value());
  if (!driven.ok()) return driven.status();
  const DriveResult& drive = driven.value();

  obs::ResilienceReport report;
  report.graph = graph_name;
  report.vertex_count = graph.vertex_count();
  report.edge_count = graph.edge_count();
  report.strategy = StrategyName(options.service.engine.strategy);
  report.grouping = GroupingPolicyName(options.service.engine.grouping);
  report.queries = static_cast<int64_t>(drive.results.size());
  report.offered_qps = options.workload.qps;
  report.duration_seconds = options.workload.duration_s;

  const gpusim::FaultPlan& plan = options.service.engine.faults;
  report.fault_spec = plan.ToString();
  report.device_count = plan.device_count;
  report.fault_seed = static_cast<int64_t>(plan.seed);
  report.max_attempts = options.service.engine.retry.max_attempts;
  report.deadline_ms = options.service.resilience.deadline_ms;
  report.max_pending = options.service.resilience.max_pending;
  report.cpu_fallback = options.service.resilience.cpu_fallback;

  report.completed = drive.stats.completed;
  report.failed = drive.stats.failed;
  report.deadline_exceeded = drive.stats.deadline_exceeded;
  report.shed = drive.stats.shed;
  report.degraded = drive.stats.degraded;
  report.retries = drive.stats.retries;
  report.transient_faults = drive.stats.transient_faults;
  report.corruptions_detected = drive.stats.corruptions_detected;
  report.breaker_opened = drive.stats.breaker_opened;
  report.fallback_groups = drive.stats.fallback_groups;
  report.wall_seconds = drive.wall_seconds;

  for (const QueryResult& result : drive.results) {
    if (!result.status.ok()) continue;
    const auto it = expected.find(result.source);
    if (it == expected.end()) continue;  // unreachable: all sources ran
    ++report.checksums_compared;
    if (result.depth_checksum != it->second) ++report.checksum_mismatches;
  }
  return report;
}

}  // namespace ibfs::service
