#ifndef IBFS_SERVICE_CHAOS_H_
#define IBFS_SERVICE_CHAOS_H_

#include <string>

#include "graph/csr.h"
#include "obs/report.h"
#include "service/service.h"
#include "service/workload.h"
#include "util/status.h"

namespace ibfs::service {

/// Chaos harness: drives one workload through a BfsService while the
/// configured fault plan injects failures, and verifies that every query
/// the service completed returned depths bit-identical to a fault-free
/// baseline execution of the same source. The output is an
/// "ibfs.resilience_report" (obs::ResilienceReport); `ibfs_cli chaos`
/// turns checksum_mismatches > 0 into a nonzero exit. See
/// docs/RESILIENCE.md.
struct ChaosOptions {
  /// Arrival process, load, and seed for the driven queries.
  WorkloadOptions workload;
  /// Service under test; `service.engine.faults` is the injected plan and
  /// `service.resilience` the recovery configuration facing it.
  ServiceOptions service;
};

/// Runs the baseline, the chaos drive, and the verification. Fails only on
/// setup errors (bad options, unrunnable baseline); injected-fault query
/// failures are data, reported in the returned document.
Result<obs::ResilienceReport> RunChaos(const std::string& graph_name,
                                       const graph::Csr& graph,
                                       const ChaosOptions& options);

}  // namespace ibfs::service

#endif  // IBFS_SERVICE_CHAOS_H_
