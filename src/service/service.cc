#include "service/service.h"

#include <algorithm>
#include <string>
#include <unordered_map>
#include <utility>

#include "baselines/reference_bfs.h"
#include "core/group_plan.h"
#include "ibfs/status_array.h"
#include "obs/metrics.h"
#include "util/checksum.h"
#include "util/logging.h"

namespace ibfs::service {
namespace {

using Clock = std::chrono::steady_clock;

double MsBetween(Clock::time_point from, Clock::time_point to) {
  return std::chrono::duration<double, std::milli>(to - from).count();
}

const char* CloseReasonName(int reason) {
  switch (reason) {
    case 0:
      return "size";
    case 1:
      return "deadline";
    default:
      return "shutdown";
  }
}

/// Bucket layouts for the service.* latency and size histograms.
std::span<const double> LatencyBoundsMs() {
  static const std::vector<double> bounds =
      obs::PowerOfTwoBounds(0.001, 32);
  return bounds;
}

std::span<const double> BatchSizeBounds() {
  static const std::vector<double> bounds = obs::PowerOfTwoBounds(1, 13);
  return bounds;
}

}  // namespace

Status ServiceOptions::Validate() const {
  if (max_batch < 1) {
    return Status::InvalidArgument("max_batch must be >= 1");
  }
  if (max_delay_ms < 0.0) {
    return Status::InvalidArgument("max_delay_ms must be non-negative");
  }
  if (execute_threads < 0) {
    return Status::InvalidArgument(
        "execute_threads must be >= 0 (0 = auto)");
  }
  if (resilience.deadline_ms < 0.0) {
    return Status::InvalidArgument(
        "resilience.deadline_ms must be non-negative (0 = no deadline)");
  }
  if (resilience.max_pending < 0) {
    return Status::InvalidArgument(
        "resilience.max_pending must be >= 0 (0 = unbounded)");
  }
  if (resilience.breaker_threshold < 1) {
    return Status::InvalidArgument(
        "resilience.breaker_threshold must be >= 1");
  }
  IBFS_RETURN_NOT_OK(cache.Validate());
  return engine.Validate();
}

void BfsService::Stats::Add(const Stats& other) {
  queries += other.queries;
  completed += other.completed;
  failed += other.failed;
  batches += other.batches;
  groups += other.groups;
  executed_instances += other.executed_instances;
  size_closes += other.size_closes;
  deadline_closes += other.deadline_closes;
  shutdown_closes += other.shutdown_closes;
  shed += other.shed;
  deadline_exceeded += other.deadline_exceeded;
  cache_hits += other.cache_hits;
  rejected += other.rejected;
  degraded += other.degraded;
  retries += other.retries;
  transient_faults += other.transient_faults;
  corruptions_detected += other.corruptions_detected;
  fallback_groups += other.fallback_groups;
  breaker_opened += other.breaker_opened;
  sim_seconds += other.sim_seconds;
  private_fq_sum += other.private_fq_sum;
  jfq_sum += other.jfq_sum;
}

double BfsService::Stats::SharingRatio() const {
  if (jfq_sum == 0 || groups == 0 || executed_instances == 0) return 0.0;
  const double avg_instances = static_cast<double>(executed_instances) /
                               static_cast<double>(groups);
  const double sd = static_cast<double>(private_fq_sum) /
                    static_cast<double>(jfq_sum);
  return sd / avg_instances;
}

double BfsService::Stats::Teps(int64_t edge_count) const {
  if (sim_seconds <= 0.0) return 0.0;
  return static_cast<double>(executed_instances) *
         static_cast<double>(edge_count) / sim_seconds;
}

BfsService::BfsService(const graph::Csr* graph, ServiceOptions options)
    : graph_(graph),
      options_(std::move(options)),
      engine_(graph, options_.engine),
      start_(Clock::now()),
      live_stats_(options_.live_window_s > 0.0 ? options_.live_window_s
                                               : 10.0) {}

void BfsService::RecordCompletion(const QueryResult& result) {
  const double now_s = NowS();
  const bool ok = result.status.ok();
  obs::AccessRecord record;
  record.ts_s = now_s;
  record.query_id = result.query_id;
  record.source = static_cast<int64_t>(result.source);
  record.status = StatusCodeName(result.status.code());
  record.ok = ok;
  record.cached = result.cached;
  record.degraded = result.degraded;
  record.attempts = result.attempts;
  record.batch_id = result.batch_id;
  record.group_index = result.group_index;
  record.queue_ms = result.latency.queue_ms;
  record.batch_ms = result.latency.batch_ms;
  record.execute_ms = result.latency.execute_ms;
  record.total_ms = result.latency.total_ms;
  record.reached = result.reached;

  if (options_.access_log != nullptr) options_.access_log->Append(record);
  if (options_.flight != nullptr) options_.flight->RecordQuery(record);
  live_stats_.RecordQuery(now_s, result.latency.total_ms, ok);
  if (options_.slo != nullptr) {
    const obs::SloTransition transition =
        options_.slo->Record(now_s, result.latency.total_ms, ok);
    HandleSloTransition(transition, now_s);
  }
}

void BfsService::HandleSloTransition(obs::SloTransition transition,
                                     double now_s) {
  if (transition == obs::SloTransition::kNone || options_.slo == nullptr) {
    return;
  }
  const bool fired = transition == obs::SloTransition::kFired;
  const char* name = fired ? "slo_alert_fired" : "slo_alert_cleared";
  const double fast = options_.slo->BurnRateFast(now_s);
  const double slow = options_.slo->BurnRateSlow(now_s);
  options_.slo->PublishTo(options_.observer.metrics, now_s);
  if (options_.observer.tracing()) {
    // SLO transitions land next to cache activity on tid 0 of the service
    // pid (batch tracks start at tid 1).
    options_.observer.tracer->Instant(
        obs::TraceTrack{kServicePid, 0}, name, now_s * 1e6,
        {obs::Arg("class", options_.slo->spec().class_name),
         obs::Arg("burn_fast", fast), obs::Arg("burn_slow", slow)});
  }
  if (options_.flight != nullptr) {
    options_.flight->RecordEvent(
        now_s, name,
        options_.slo->spec().class_name + " burn fast=" +
            std::to_string(fast) + " slow=" + std::to_string(slow));
    if (fired) options_.flight->Trigger("slo_alert", now_s);
  }
}

void BfsService::CheckQuarantineTrigger(double now_s) {
  if (result_cache_ == nullptr) return;
  const int64_t quarantined = result_cache_->stats().quarantined;
  int64_t prev = last_quarantined_.load(std::memory_order_relaxed);
  while (quarantined > prev) {
    if (last_quarantined_.compare_exchange_weak(prev, quarantined,
                                                std::memory_order_relaxed)) {
      if (options_.flight != nullptr) {
        options_.flight->RecordEvent(
            now_s, "cache_quarantined",
            "quarantined entries now " + std::to_string(quarantined));
        options_.flight->Trigger("quarantine", now_s);
      }
      return;
    }
  }
}

void BfsService::PublishLiveTelemetry() {
  const double now_s = NowS();
  obs::MetricsRegistry* metrics = options_.observer.metrics;
  live_stats_.PublishTo(metrics, now_s);
  if (options_.slo != nullptr) {
    HandleSloTransition(options_.slo->Evaluate(now_s), now_s);
    options_.slo->PublishTo(metrics, now_s);
  }
  if (metrics != nullptr && result_cache_ != nullptr) {
    metrics->GetGauge("cache.hit_ratio")
        ->Set(result_cache_->stats().HitRatio());
  }
}

double BfsService::LivePercentileMs(double p) const {
  return live_stats_.PercentileMs(NowS(), p);
}

double BfsService::LiveErrorRatio() const {
  return live_stats_.ErrorRatio(NowS());
}

int64_t BfsService::LiveWindowCount() const {
  return live_stats_.WindowCount(NowS());
}

std::vector<graph::VertexId> BfsService::CachedSources() const {
  if (result_cache_ == nullptr) return {};
  return result_cache_->Sources();
}

std::optional<CachedDepths> BfsService::PeekCache(
    graph::VertexId source) const {
  if (result_cache_ == nullptr) return std::nullopt;
  return result_cache_->Peek(source);
}

bool BfsService::WarmCache(graph::VertexId source, const CachedDepths& value) {
  if (result_cache_ == nullptr) return false;
  if (static_cast<int64_t>(source) >= graph_->vertex_count()) return false;
  if (Fnv1a(value.depths) != value.checksum) return false;
  result_cache_->Put(source, value);
  return true;
}

bool BfsService::EvictCacheEntry(graph::VertexId source) {
  if (result_cache_ == nullptr) return false;
  return result_cache_->Erase(source);
}

void BfsService::RecordLiveSampleForTest(double total_ms, bool ok) {
  live_stats_.RecordQuery(NowS(), total_ms, ok);
}

void BfsService::TripBreakersForTest() {
  const int devices = options_.engine.faults.device_count;
  for (int d = 0; d < devices; ++d) {
    for (int i = 0; i < options_.resilience.breaker_threshold; ++i) {
      router_->ReportFailure(d);
    }
  }
}

bool BfsService::BreakersOpen() const {
  return router_ != nullptr && router_->healthy_count() == 0;
}

Result<std::unique_ptr<BfsService>> BfsService::Create(
    const graph::Csr* graph, ServiceOptions options) {
  if (graph == nullptr) {
    return Status::InvalidArgument("service needs a graph");
  }
  // Execution always records depths (the query result) and instance stats
  // (the achieved-sharing measurement); the keep_depths service knob only
  // controls whether each QueryResult retains its copy.
  options.engine.keep_depths = true;
  options.engine.traversal.collect_instance_stats = true;
  IBFS_RETURN_NOT_OK(options.Validate());

  const int threads = options.execute_threads == 0
                          ? ThreadPool::HardwareConcurrency()
                          : options.execute_threads;
  std::unique_ptr<BfsService> svc(new BfsService(graph, std::move(options)));
  if (svc->options_.observer.tracing()) {
    svc->options_.observer.tracer->SetProcessName(kServicePid,
                                                  "service (wall clock)");
  }
  svc->router_ = std::make_unique<DeviceRouter>(
      svc->options_.engine.faults.device_count,
      svc->options_.resilience.breaker_threshold);
  if (svc->options_.cache.enabled) {
    // The fingerprint is computed once here (O(V+E)) and baked into every
    // cache key, so entries surviving a graph swap are detected as stale.
    svc->result_cache_ = std::make_unique<ResultCache>(
        graph->Fingerprint(), svc->options_.engine.strategy,
        svc->options_.cache);
    svc->plan_cache_ = std::make_unique<PlanCache>(
        GroupConfigFingerprint(svc->options_.engine),
        svc->options_.cache.plan_capacity);
    if (svc->options_.observer.tracing()) {
      svc->options_.observer.tracer->SetThreadName(kServicePid, 0, "cache");
    }
  }
  svc->executor_ = std::make_unique<ThreadPool>(threads);
  svc->batcher_ = std::thread([s = svc.get()] { s->BatcherLoop(); });
  return svc;
}

BfsService::~BfsService() { Shutdown(); }

std::future<QueryResult> BfsService::Submit(graph::VertexId source) {
  std::promise<QueryResult> promise;
  std::future<QueryResult> future = promise.get_future();
  auto reject = [&](Status status) {
    QueryResult result;
    result.status = std::move(status);
    result.source = source;
    // Account before completing (the invariant every completion path
    // keeps): a stats() snapshot taken after the future resolves must
    // already count this failure.
    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++stats_.failed;
      ++stats_.rejected;
    }
    promise.set_value(std::move(result));
  };
  // Per-query admission check: a bad source fails its own future instead
  // of poisoning the batch it would have joined.
  if (static_cast<int64_t>(source) >= graph_->vertex_count()) {
    reject(Status::OutOfRange("source vertex outside graph"));
    return future;
  }
  // Cache hits are stripped before admission: the future resolves here,
  // without joining a batch or counting against max_pending. (A shutdown
  // racing the lookup below may still deliver a cached answer — benign:
  // the answer was correct and the client's future resolves either way.)
  if (result_cache_ != nullptr) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (shutdown_) {
        reject(Status::FailedPrecondition("service is shut down"));
        return future;
      }
    }
    const auto submitted = Clock::now();
    std::optional<CachedDepths> hit = result_cache_->Get(source);
    obs::MetricsRegistry* metrics = options_.observer.metrics;
    if (hit.has_value()) {
      QueryResult result;
      result.source = source;
      result.cached = true;
      result.depth_checksum = hit->checksum;
      result.reached = hit->reached;
      if (options_.keep_depths) result.depths = std::move(hit->depths);
      {
        std::lock_guard<std::mutex> lock(mu_);
        result.query_id = next_query_id_++;
      }
      result.latency.total_ms = MsBetween(submitted, Clock::now());
      {
        std::lock_guard<std::mutex> lock(stats_mu_);
        ++stats_.cache_hits;
        ++stats_.completed;
      }
      if (metrics != nullptr) {
        metrics->GetCounter("cache.hits")->Increment();
        metrics->GetCounter("service.completed")->Increment();
        metrics->GetHistogram("service.total_ms", LatencyBoundsMs())
            ->Observe(result.latency.total_ms);
      }
      if (options_.observer.tracing()) {
        // Cache activity lands on tid 0 of the service pid (batch tracks
        // start at tid 1), keeping hits visible next to batch spans.
        options_.observer.tracer->Instant(
            obs::TraceTrack{kServicePid, 0}, "cache_hit",
            SinceStartUs(submitted),
            {obs::Arg("source", static_cast<int64_t>(source))});
      }
      if (metrics != nullptr) {
        metrics->GetGauge("cache.hit_ratio")
            ->Set(result_cache_->stats().HitRatio());
      }
      RecordCompletion(result);
      promise.set_value(std::move(result));
      return future;
    }
    if (metrics != nullptr) {
      metrics->GetCounter("cache.misses")->Increment();
      metrics->GetGauge("cache.hit_ratio")
          ->Set(result_cache_->stats().HitRatio());
    }
    if (options_.observer.tracing()) {
      options_.observer.tracer->Instant(
          obs::TraceTrack{kServicePid, 0}, "cache_miss",
          SinceStartUs(submitted),
          {obs::Arg("source", static_cast<int64_t>(source))});
    }
    // A miss may also have quarantined a corrupted entry in place.
    CheckQuarantineTrigger(NowS());
  }
  {
    std::unique_lock<std::mutex> lock(mu_);
    if (shutdown_) {
      lock.unlock();
      reject(Status::FailedPrecondition("service is shut down"));
      return future;
    }
    // Overload shedding: a bounded admission queue fails fast instead of
    // letting queue_ms grow without bound under sustained overload.
    if (options_.resilience.max_pending > 0 &&
        pending_.size() >=
            static_cast<size_t>(options_.resilience.max_pending)) {
      lock.unlock();
      QueryResult result;
      result.status = Status::ResourceExhausted(
          "admission queue full (max_pending=" +
          std::to_string(options_.resilience.max_pending) + ")");
      result.source = source;
      {
        std::lock_guard<std::mutex> stats_lock(stats_mu_);
        ++stats_.shed;
      }
      promise.set_value(std::move(result));
      if (options_.observer.metering()) {
        options_.observer.metrics->GetCounter("shed.queries")->Increment();
      }
      return future;
    }
    PendingQuery query;
    query.promise = std::move(promise);
    query.source = source;
    query.query_id = next_query_id_++;
    query.submitted = Clock::now();
    // Count the admission before the query becomes visible to the batcher
    // (we still hold mu_, so it cannot be batched or completed yet):
    // otherwise a snapshot could see a batch's completions with the
    // admissions that formed it not yet counted. Lock order is always
    // mu_ -> stats_mu_; stats_mu_ is never held across another lock.
    {
      std::lock_guard<std::mutex> stats_lock(stats_mu_);
      ++stats_.queries;
    }
    pending_.push_back(std::move(query));
  }
  cv_.notify_all();
  if (options_.observer.metering()) {
    options_.observer.metrics->GetCounter("service.queries")->Increment();
  }
  return future;
}

void BfsService::BatcherLoop() {
  const auto delay = std::chrono::duration_cast<Clock::duration>(
      std::chrono::duration<double, std::milli>(options_.max_delay_ms));
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    cv_.wait(lock, [&] { return shutdown_ || !pending_.empty(); });
    if (pending_.empty()) {
      if (shutdown_) return;
      continue;
    }
    // A batch is open from the oldest pending query; wait until it fills,
    // its deadline passes, or shutdown flushes it.
    const auto deadline = pending_.front().submitted + delay;
    while (!shutdown_ &&
           pending_.size() < static_cast<size_t>(options_.max_batch)) {
      if (cv_.wait_until(lock, deadline) == std::cv_status::timeout) break;
    }
    const size_t take = std::min(
        pending_.size(), static_cast<size_t>(options_.max_batch));
    std::vector<PendingQuery> batch;
    batch.reserve(take);
    for (size_t i = 0; i < take; ++i) {
      batch.push_back(std::move(pending_.front()));
      pending_.pop_front();
    }
    const CloseReason reason =
        take >= static_cast<size_t>(options_.max_batch)
            ? CloseReason::kSize
            : (shutdown_ ? CloseReason::kShutdown : CloseReason::kDeadline);
    lock.unlock();
    DispatchBatch(std::move(batch), reason);
    lock.lock();
  }
}

void BfsService::DispatchBatch(std::vector<PendingQuery> batch,
                               CloseReason reason) {
  const auto closed = Clock::now();
  const int64_t batch_id = next_batch_id_++;
  const obs::TraceTrack track{kServicePid, 1 + static_cast<int>(batch_id)};
  obs::Tracer* tracer = options_.observer.tracer;
  obs::MetricsRegistry* metrics = options_.observer.metrics;

  if (tracer != nullptr) {
    tracer->SetThreadName(kServicePid, track.tid,
                          "batch " + std::to_string(batch_id));
    const double queue_start_us = SinceStartUs(batch.front().submitted);
    tracer->CompleteSpan(
        track, "queue", "service", queue_start_us,
        SinceStartUs(closed) - queue_start_us,
        {obs::Arg("queries", static_cast<int64_t>(batch.size())),
         obs::Arg("close", CloseReasonName(static_cast<int>(reason)))});
  }
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.batches;
    switch (reason) {
      case CloseReason::kSize:
        ++stats_.size_closes;
        break;
      case CloseReason::kDeadline:
        ++stats_.deadline_closes;
        break;
      case CloseReason::kShutdown:
        ++stats_.shutdown_closes;
        break;
    }
  }
  if (metrics != nullptr) {
    metrics->GetCounter("service.batches")->Increment();
    metrics->GetHistogram("service.batch_size", BatchSizeBounds())
        ->Observe(static_cast<double>(batch.size()));
    switch (reason) {
      case CloseReason::kSize:
        metrics->GetCounter("service.size_closes")->Increment();
        break;
      case CloseReason::kDeadline:
        metrics->GetCounter("service.deadline_closes")->Increment();
        break;
      case CloseReason::kShutdown:
        metrics->GetCounter("service.shutdown_closes")->Increment();
        break;
    }
  }

  // Per-query deadlines: anything that expired while queued completes with
  // DeadlineExceeded now instead of occupying device time.
  if (options_.resilience.deadline_ms > 0.0) {
    std::vector<PendingQuery> live;
    live.reserve(batch.size());
    std::vector<std::pair<PendingQuery, QueryResult>> expired;
    for (PendingQuery& query : batch) {
      const double waited_ms = MsBetween(query.submitted, closed);
      if (waited_ms > options_.resilience.deadline_ms) {
        QueryResult result;
        result.status = Status::DeadlineExceeded(
            "query deadline expired in admission queue");
        result.source = query.source;
        result.query_id = query.query_id;
        result.batch_id = batch_id;
        result.latency.queue_ms = waited_ms;
        result.latency.total_ms = waited_ms;
        expired.emplace_back(std::move(query), std::move(result));
      } else {
        live.push_back(std::move(query));
      }
    }
    batch = std::move(live);
    if (!expired.empty()) {
      const int64_t count = static_cast<int64_t>(expired.size());
      // Account before completing (stats() snapshot invariant).
      {
        std::lock_guard<std::mutex> lock(stats_mu_);
        stats_.deadline_exceeded += count;
      }
      if (metrics != nullptr) {
        metrics->GetCounter("shed.deadline_exceeded")->Increment(count);
      }
      if (tracer != nullptr) {
        tracer->Instant(track, "deadline_expired", SinceStartUs(closed),
                        {obs::Arg("queries", count)});
      }
      for (auto& [query, result] : expired) {
        RecordCompletion(result);
        query.promise.set_value(std::move(result));
      }
    }
    if (batch.empty()) return;
  }

  // Two clients asking for the same source share one execution: the batch
  // dedups to unique sources (the grouper's precondition) and fans each
  // group member's depths out to every query that wanted it.
  struct BatchState {
    std::vector<PendingQuery> queries;
    std::unordered_map<graph::VertexId, std::vector<size_t>> by_source;
    std::vector<std::vector<graph::VertexId>> groups;
    Clock::time_point closed;
    int64_t batch_id = 0;
  };
  auto state = std::make_shared<BatchState>();
  state->closed = closed;
  state->batch_id = batch_id;
  std::vector<graph::VertexId> unique;
  unique.reserve(batch.size());
  for (size_t i = 0; i < batch.size(); ++i) {
    auto& indices = state->by_source[batch[i].source];
    if (indices.empty()) unique.push_back(batch[i].source);
    indices.push_back(i);
  }
  state->queries = std::move(batch);

  // Plan memoization: a batch whose deduplicated source set matches an
  // earlier batch reuses its GroupBy output instead of redoing the hub
  // search. Keyed on the *sorted* set — arrival order must not matter —
  // and the grouping it returns partitions exactly this set, so fan-out
  // below is unaffected.
  std::vector<graph::VertexId> sorted_unique;
  std::optional<GroupPlan> memoized;
  if (plan_cache_ != nullptr) {
    sorted_unique = unique;
    std::sort(sorted_unique.begin(), sorted_unique.end());
    memoized = plan_cache_->Get(sorted_unique);
    if (metrics != nullptr) {
      metrics->GetCounter(memoized.has_value() ? "cache.plan_hits"
                                               : "cache.plan_misses")
          ->Increment();
    }
  }
  Result<GroupPlan> plan =
      memoized.has_value()
          ? Result<GroupPlan>(std::move(*memoized))
          : GroupSources(*graph_, unique, options_.engine,
                         DuplicatePolicy::kReject);
  if (plan.ok() && plan_cache_ != nullptr && !memoized.has_value()) {
    plan_cache_->Put(sorted_unique, plan.value());
  }
  if (!plan.ok()) {
    // Account before completing (stats() snapshot invariant).
    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      stats_.failed += static_cast<int64_t>(state->queries.size());
    }
    for (PendingQuery& query : state->queries) {
      QueryResult result;
      result.status = plan.status();
      result.source = query.source;
      result.query_id = query.query_id;
      result.batch_id = batch_id;
      result.latency.queue_ms = MsBetween(query.submitted, closed);
      result.latency.total_ms = MsBetween(query.submitted, Clock::now());
      RecordCompletion(result);
      query.promise.set_value(std::move(result));
    }
    return;
  }
  state->groups = std::move(plan.value().grouping.groups);
  if (tracer != nullptr) {
    tracer->CompleteSpan(
        track, "group", "service", SinceStartUs(closed),
        SinceStartUs(Clock::now()) - SinceStartUs(closed),
        {obs::Arg("sources", static_cast<int64_t>(unique.size())),
         obs::Arg("groups", static_cast<int64_t>(state->groups.size()))});
  }

  for (size_t g = 0; g < state->groups.size(); ++g) {
    executor_->Submit([this, state, g, track] {
      const std::vector<graph::VertexId>& group = state->groups[g];
      const auto exec_start = Clock::now();
      // Trace-context: the ids of every query this group answers, joined
      // as "q12,q40,...". Execution spans (engine group spans, gpusim
      // kernel spans, retry instants) attach it as a "ctx" arg so a span
      // in the trace joins back to its access-log lines.
      std::string ctx;
      for (graph::VertexId source : group) {
        for (size_t qi : state->by_source.at(source)) {
          if (!ctx.empty()) ctx += ',';
          ctx += 'q';
          ctx += std::to_string(state->queries[qi].query_id);
        }
      }
      // Execution meters into the shared registry. Kernel spans carry
      // simulated timestamps, which must not land on the service's
      // wall-clock batch tracks — so when tracing is on, each execution
      // gets its own simulated-time track on the serving device's pid
      // (consistent with the engine's pid = device index model).
      obs::Observer exec_observer;
      exec_observer.metrics = options_.observer.metrics;
      exec_observer.context = ctx;
      obs::MetricsRegistry* metrics = options_.observer.metrics;

      // Resilient execution: route to a healthy simulated device (circuit
      // breakers skip devices the injected faults have killed), retry per
      // engine.retry with the transfer checksum quarantining corrupted
      // payloads, and finally degrade to the CPU reference path if the
      // fleet cannot serve the group at all.
      const uint64_t salt =
          static_cast<uint64_t>(state->batch_id) * 1000ULL +
          static_cast<uint64_t>(g);
      const int device_id = router_->Acquire();
      ResilientOutcome outcome;
      bool breaker_opened = false;
      if (device_id != DeviceRouter::kNoDevice) {
        if (options_.observer.tracing()) {
          const int exec_tid =
              1 + next_exec_track_.fetch_add(1, std::memory_order_relaxed);
          exec_observer.tracer = options_.observer.tracer;
          exec_observer.track = {device_id, exec_tid};
          exec_observer.tracer->SetThreadName(
              device_id, exec_tid,
              "serve batch " + std::to_string(state->batch_id) + " group " +
                  std::to_string(g));
        }
        outcome = ExecuteGroupResilient(engine_, group, device_id, salt,
                                        exec_observer);
        if (outcome.status.ok()) {
          router_->ReportSuccess(device_id);
        } else {
          breaker_opened = router_->ReportFailure(device_id);
          if (breaker_opened && metrics != nullptr) {
            metrics->GetCounter("fault.breaker_opened")->Increment();
          }
        }
      } else {
        outcome.status =
            Status::Unavailable("all device circuit breakers are open");
      }
      bool degraded = false;
      if (!outcome.status.ok() && options_.resilience.cpu_fallback) {
        // Graceful degradation: the sequential CPU reference BFS produces
        // the same (unique) depths a healthy device would have — only the
        // performance contract is degraded, not correctness.
        degraded = true;
        GroupResult fallback;
        fallback.depths.reserve(group.size());
        for (graph::VertexId source : group) {
          fallback.depths.push_back(baselines::ReferenceDepthsU8(
              *graph_, source, options_.engine.traversal.max_level));
        }
        outcome.result = std::move(fallback);
        outcome.status = Status::OK();
        if (metrics != nullptr) {
          metrics->GetCounter("retry.fallbacks")->Increment();
        }
      }
      const auto exec_end = Clock::now();

      obs::Tracer* task_tracer = options_.observer.tracer;
      if (task_tracer != nullptr) {
        const double start_us = SinceStartUs(exec_start);
        task_tracer->CompleteSpan(
            track, "execute group " + std::to_string(g), "service",
            start_us, SinceStartUs(exec_end) - start_us,
            {obs::Arg("instances", static_cast<int64_t>(group.size())),
             obs::Arg("sim_ms", outcome.sim_seconds * 1e3),
             obs::Arg("device", static_cast<int64_t>(device_id)),
             obs::Arg("attempts", static_cast<int64_t>(outcome.attempts)),
             obs::Arg("degraded", degraded), obs::Arg("ctx", ctx)});
        if (breaker_opened) {
          task_tracer->Instant(
              track, "breaker_opened", SinceStartUs(exec_end),
              {obs::Arg("device", static_cast<int64_t>(device_id))});
        }
        if (degraded) {
          task_tracer->Instant(
              track, "cpu_fallback", SinceStartUs(exec_end),
              {obs::Arg("group", static_cast<int64_t>(g))});
        }
      }
      if (options_.flight != nullptr) {
        const double exec_end_s = NowS();
        if (breaker_opened) {
          options_.flight->RecordEvent(
              exec_end_s, "breaker_opened",
              "device " + std::to_string(device_id));
          options_.flight->Trigger("breaker_open", exec_end_s);
        }
        if (degraded) {
          options_.flight->RecordEvent(
              exec_end_s, "cpu_fallback",
              "batch " + std::to_string(state->batch_id) + " group " +
                  std::to_string(g));
        }
      }

      const bool deadline_armed = options_.resilience.deadline_ms > 0.0;
      int64_t completed = 0;
      int64_t failed = 0;
      int64_t expired = 0;
      std::vector<std::pair<size_t, QueryResult>> ready;
      for (size_t j = 0; j < group.size(); ++j) {
        // One checksum/reached scan per executed instance, shared by every
        // query that asked for this source and by the cache entry.
        uint64_t depth_checksum = 0;
        int64_t reached = 0;
        if (outcome.status.ok()) {
          const std::vector<uint8_t>& depths = outcome.result.depths[j];
          depth_checksum = Fnv1a(depths);
          for (uint8_t d : depths) {
            if (d != kUnvisitedDepth) ++reached;
          }
          if (result_cache_ != nullptr) {
            // Degraded (CPU-fallback) answers are cached too: their depths
            // are correct, and the cache stores answers, not contracts.
            result_cache_->Put(group[j],
                               CachedDepths{depths, depth_checksum, reached});
            if (metrics != nullptr) {
              metrics->GetCounter("cache.insertions")->Increment();
            }
          }
        }
        const auto it = state->by_source.find(group[j]);
        IBFS_CHECK(it != state->by_source.end());
        for (size_t qi : it->second) {
          const PendingQuery& query = state->queries[qi];
          QueryResult result;
          result.source = query.source;
          result.query_id = query.query_id;
          result.batch_id = state->batch_id;
          result.group_index = static_cast<int>(g);
          result.degraded = degraded;
          result.attempts = outcome.attempts;
          result.latency.queue_ms =
              MsBetween(query.submitted, state->closed);
          result.latency.batch_ms = MsBetween(state->closed, exec_start);
          result.latency.execute_ms = MsBetween(exec_start, exec_end);
          result.latency.total_ms = MsBetween(query.submitted, exec_end);
          if (deadline_armed &&
              result.latency.total_ms > options_.resilience.deadline_ms) {
            result.status = Status::DeadlineExceeded(
                "query deadline expired during execution");
            ++expired;
          } else if (!outcome.status.ok()) {
            result.status = outcome.status;
            ++failed;
          } else {
            result.depth_checksum = depth_checksum;
            result.reached = reached;
            if (options_.keep_depths) {
              result.depths = outcome.result.depths[j];
            }
            ++completed;
          }
          if (options_.observer.metering()) {
            obs::MetricsRegistry* m = options_.observer.metrics;
            m->GetHistogram("service.queue_ms", LatencyBoundsMs())
                ->Observe(result.latency.queue_ms);
            m->GetHistogram("service.execute_ms", LatencyBoundsMs())
                ->Observe(result.latency.execute_ms);
            m->GetHistogram("service.total_ms", LatencyBoundsMs())
                ->Observe(result.latency.total_ms);
            m->GetCounter(result.status.ok() ? "service.completed"
                                             : "service.failed")
                ->Increment();
          }
          ready.emplace_back(qi, std::move(result));
        }
      }
      if (expired > 0 && metrics != nullptr) {
        metrics->GetCounter("shed.deadline_exceeded")->Increment(expired);
      }
      if (result_cache_ != nullptr && metrics != nullptr) {
        metrics->GetGauge("cache.bytes_resident")
            ->Set(static_cast<double>(result_cache_->bytes_resident()));
      }

      // Account before completing, so once a client observes its future
      // ready, its group's contribution to stats() is already visible.
      {
        std::lock_guard<std::mutex> lock(stats_mu_);
        ++stats_.groups;
        stats_.executed_instances += static_cast<int64_t>(group.size());
        stats_.sim_seconds += outcome.sim_seconds;
        stats_.completed += completed;
        stats_.failed += failed;
        stats_.deadline_exceeded += expired;
        if (outcome.attempts > 0) stats_.retries += outcome.attempts - 1;
        stats_.transient_faults += outcome.transient_faults;
        stats_.corruptions_detected += outcome.corruptions_detected;
        if (degraded) {
          ++stats_.fallback_groups;
          stats_.degraded += completed;
        }
        if (breaker_opened) ++stats_.breaker_opened;
        if (outcome.status.ok() && !degraded) {
          for (const LevelTrace& level : outcome.result.trace.levels) {
            stats_.private_fq_sum += level.private_fq_sum;
            stats_.jfq_sum += level.jfq_size;
          }
        }
      }
      for (auto& [qi, result] : ready) {
        RecordCompletion(result);
        state->queries[qi].promise.set_value(std::move(result));
      }
    });
  }
}

void BfsService::Shutdown() {
  std::lock_guard<std::mutex> shutdown_lock(shutdown_mu_);
  if (joined_) return;
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  cv_.notify_all();
  batcher_.join();
  // The pool destructor completes every dispatched group task, so all
  // futures are resolved once this returns.
  executor_.reset();
  joined_ = true;
}

void BfsService::InvalidateCache() {
  if (result_cache_ != nullptr) result_cache_->Clear();
  if (plan_cache_ != nullptr) plan_cache_->Clear();
  if (options_.observer.metering()) {
    options_.observer.metrics->GetCounter("cache.invalidations")->Increment();
    if (result_cache_ != nullptr) {
      options_.observer.metrics->GetGauge("cache.bytes_resident")->Set(0.0);
    }
  }
}

CacheStats BfsService::cache_stats() const {
  CacheStats combined;
  if (result_cache_ != nullptr) combined = result_cache_->stats();
  if (plan_cache_ != nullptr) {
    const CacheStats plan = plan_cache_->stats();
    combined.plan_hits = plan.plan_hits;
    combined.plan_misses = plan.plan_misses;
    combined.plan_insertions = plan.plan_insertions;
    combined.plan_evictions = plan.plan_evictions;
  }
  return combined;
}

BfsService::Stats BfsService::stats() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  return stats_;
}

}  // namespace ibfs::service
