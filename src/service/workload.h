#ifndef IBFS_SERVICE_WORKLOAD_H_
#define IBFS_SERVICE_WORKLOAD_H_

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "graph/csr.h"
#include "obs/report.h"
#include "service/service.h"
#include "util/status.h"

namespace ibfs::service {

/// Open-loop workload generation and driving for the BFS query service:
/// arrivals are scheduled up front from a seeded Prng (reproducible
/// run-to-run), submitted at their wall-clock times regardless of how the
/// service keeps up (open loop — queueing shows up as latency, exactly
/// what an SLO report must see), and summarized into an
/// obs::ServiceReport.

/// The arrival processes the driver can generate.
enum class ArrivalProcess {
  /// Exponential inter-arrival times at rate qps.
  kPoisson,
  /// Back-to-back bursts of `burst_size` queries; burst starts arrive as
  /// a Poisson process at rate qps / burst_size, so the long-run offered
  /// load is still qps with maximally bunched arrivals.
  kBursty,
  /// Evenly spaced arrivals (1/qps apart) — the no-jitter baseline.
  kUniform,
};

/// Display name ("poisson", "bursty", "uniform").
const char* ArrivalProcessName(ArrivalProcess arrival);

/// Parses a display name back; nullopt for unknown names.
std::optional<ArrivalProcess> ParseArrivalProcess(std::string_view name);

struct WorkloadOptions {
  ArrivalProcess arrival = ArrivalProcess::kPoisson;
  /// Offered load, queries per second.
  double qps = 1000.0;
  /// Arrival window in seconds; the last arrival lands before this.
  double duration_s = 1.0;
  /// Seed for both arrival times and source selection.
  uint64_t seed = 1;
  /// Queries per burst (kBursty only).
  int burst_size = 16;
  /// Hard cap on generated queries (0 = none) — guards tiny-duration /
  /// huge-qps combinations.
  int64_t max_queries = 0;
  /// Restrict source sampling to this many distinct vertices of the giant
  /// component, chosen deterministically from the seed (0 = the whole
  /// component). Small pools model hot-source traffic — the workload the
  /// result cache exists for.
  int64_t source_pool = 0;

  Status Validate() const;
};

/// One scheduled arrival: submit a BFS query for `source` at `at_s`
/// seconds after the drive starts.
struct WorkloadEvent {
  double at_s = 0.0;
  graph::VertexId source = 0;
};

/// Generates the arrival schedule: times from the configured process,
/// sources sampled from the graph's giant component (wrapping the pool
/// when the workload outnumbers it, like SampleConnectedSources).
Result<std::vector<WorkloadEvent>> GenerateArrivals(
    const graph::Csr& graph, const WorkloadOptions& options);

/// The outcome of driving one workload through a service.
struct DriveResult {
  /// Per query, in submit order.
  std::vector<QueryResult> results;
  /// Wall seconds from first submit to full drain.
  double wall_seconds = 0.0;
  /// Completed-OK queries per wall second.
  double achieved_qps = 0.0;
  /// Service counters snapshot after the drain.
  BfsService::Stats stats;
  /// Cache counters snapshot after the drain (all zero when caching is
  /// disabled on the driven service).
  CacheStats cache;
};

/// Submits every event at its scheduled time (sleeping between arrivals),
/// shuts the service down (draining all pending queries), and collects
/// every future. The service is unusable afterwards.
Result<DriveResult> DriveWorkload(BfsService* service,
                                  std::span<const WorkloadEvent> events);

/// Oracle baseline for the sharing-ratio SLO: one offline engine run that
/// groups every workload source (deduped) with full knowledge, i.e. what
/// the paper's batch GroupBy would have achieved had all queries been
/// known up front. Returns its aggregate sharing ratio.
Result<double> OracleSharingRatio(const graph::Csr& graph,
                                  EngineOptions engine_options,
                                  std::span<const WorkloadEvent> events);

/// Builds the "ibfs.service_report" document from a driven workload.
/// Latency percentiles are computed through obs::Histogram::Percentile.
obs::ServiceReport BuildServiceReport(const std::string& graph_name,
                                      const graph::Csr& graph,
                                      const ServiceOptions& service_options,
                                      const WorkloadOptions& workload,
                                      const DriveResult& drive,
                                      double oracle_sharing_ratio);

}  // namespace ibfs::service

#endif  // IBFS_SERVICE_WORKLOAD_H_
