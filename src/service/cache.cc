#include "service/cache.h"

#include <algorithm>

#include "util/checksum.h"
#include "util/logging.h"

namespace ibfs::service {

Status CacheOptions::Validate() const {
  if (result_budget_bytes < 0) {
    return Status::InvalidArgument("cache result_budget_bytes must be >= 0");
  }
  if (shards < 1) {
    return Status::InvalidArgument("cache shards must be >= 1");
  }
  if (plan_capacity < 0) {
    return Status::InvalidArgument("cache plan_capacity must be >= 0");
  }
  return Status::OK();
}

ResultCache::ResultCache(uint64_t graph_fingerprint, Strategy strategy,
                         const CacheOptions& options)
    : graph_fingerprint_(graph_fingerprint),
      strategy_(strategy),
      shard_budget_bytes_(options.result_budget_bytes /
                          std::max(1, options.shards)) {
  IBFS_CHECK(options.Validate().ok());
  shards_.reserve(options.shards);
  for (int i = 0; i < options.shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

ResultCache::Shard& ResultCache::ShardFor(graph::VertexId source) {
  // Fibonacci scramble: consecutive hot sources land on distinct shards.
  const uint64_t mixed =
      static_cast<uint64_t>(source) * 0x9e3779b97f4a7c15ULL;
  return *shards_[(mixed >> 32) % shards_.size()];
}

int64_t ResultCache::EntryBytes(const CachedDepths& value) {
  // Payload plus a flat estimate of list/map node overhead; exactness does
  // not matter, only that the budget tracks resident memory to first order.
  constexpr int64_t kNodeOverhead = 96;
  return static_cast<int64_t>(value.depths.size()) + kNodeOverhead;
}

std::optional<CachedDepths> ResultCache::Get(graph::VertexId source) {
  Shard& shard = ShardFor(source);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.index.find(source);
  if (it == shard.index.end()) {
    ++shard.stats.misses;
    return std::nullopt;
  }
  Entry& entry = *it->second;
  if (entry.fingerprint != graph_fingerprint_) {
    // Stale graph: evict silently and miss.
    shard.bytes -= EntryBytes(entry.value);
    shard.lru.erase(it->second);
    shard.index.erase(it);
    ++shard.stats.misses;
    return std::nullopt;
  }
  if (Fnv1a(entry.value.depths) != entry.value.checksum) {
    // Stored bytes no longer match the checksum taken at insert: quarantine.
    // Serving a corrupted depth vector would poison every future hit, so the
    // entry is dropped and the query re-executes.
    ++shard.stats.quarantined;
    ++shard.stats.misses;
    shard.bytes -= EntryBytes(entry.value);
    shard.lru.erase(it->second);
    shard.index.erase(it);
    IBFS_LOG(Warning) << "result cache quarantined corrupted entry for source "
                      << source;
    return std::nullopt;
  }
  ++shard.stats.hits;
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  return entry.value;
}

void ResultCache::Put(graph::VertexId source, CachedDepths value) {
  const int64_t bytes = EntryBytes(value);
  Shard& shard = ShardFor(source);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.index.find(source);
  if (it != shard.index.end()) {
    shard.bytes -= EntryBytes(it->second->value);
    shard.lru.erase(it->second);
    shard.index.erase(it);
  }
  if (bytes > shard_budget_bytes_) return;  // larger than a whole shard
  shard.lru.push_front(
      Entry{source, graph_fingerprint_, std::move(value)});
  shard.index.emplace(source, shard.lru.begin());
  shard.bytes += bytes;
  ++shard.stats.insertions;
  while (shard.bytes > shard_budget_bytes_ && shard.lru.size() > 1) {
    Entry& victim = shard.lru.back();
    shard.bytes -= EntryBytes(victim.value);
    shard.index.erase(victim.source);
    shard.lru.pop_back();
    ++shard.stats.evictions;
  }
}

std::optional<CachedDepths> ResultCache::Peek(graph::VertexId source) {
  Shard& shard = ShardFor(source);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.index.find(source);
  if (it == shard.index.end()) return std::nullopt;
  Entry& entry = *it->second;
  if (entry.fingerprint != graph_fingerprint_ ||
      Fnv1a(entry.value.depths) != entry.value.checksum) {
    if (entry.fingerprint == graph_fingerprint_) ++shard.stats.quarantined;
    shard.bytes -= EntryBytes(entry.value);
    shard.lru.erase(it->second);
    shard.index.erase(it);
    return std::nullopt;
  }
  return entry.value;
}

bool ResultCache::Erase(graph::VertexId source) {
  Shard& shard = ShardFor(source);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.index.find(source);
  if (it == shard.index.end()) return false;
  shard.bytes -= EntryBytes(it->second->value);
  shard.lru.erase(it->second);
  shard.index.erase(it);
  return true;
}

std::vector<graph::VertexId> ResultCache::Sources() const {
  std::vector<graph::VertexId> out;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    for (const Entry& entry : shard->lru) out.push_back(entry.source);
  }
  return out;
}

void ResultCache::Clear() {
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    shard->lru.clear();
    shard->index.clear();
    shard->bytes = 0;
  }
}

CacheStats ResultCache::stats() const {
  CacheStats total;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    total.hits += shard->stats.hits;
    total.misses += shard->stats.misses;
    total.insertions += shard->stats.insertions;
    total.evictions += shard->stats.evictions;
    total.quarantined += shard->stats.quarantined;
    total.entries += static_cast<int64_t>(shard->lru.size());
    total.bytes_resident += shard->bytes;
  }
  return total;
}

int64_t ResultCache::bytes_resident() const {
  int64_t total = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    total += shard->bytes;
  }
  return total;
}

bool ResultCache::CorruptEntryForTest(graph::VertexId source) {
  Shard& shard = ShardFor(source);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.index.find(source);
  if (it == shard.index.end()) return false;
  std::vector<uint8_t>& depths = it->second->value.depths;
  if (depths.empty()) return false;
  depths[depths.size() / 2] ^= 0x40;
  return true;
}

PlanCache::PlanCache(uint64_t config_fingerprint, int capacity)
    : config_fingerprint_(config_fingerprint),
      capacity_(capacity) {}

std::optional<GroupPlan> PlanCache::Get(
    std::span<const graph::VertexId> sorted_sources) {
  const uint64_t hash =
      config_fingerprint_ ^ SourceSetFingerprint(sorted_sources);
  std::lock_guard<std::mutex> lock(mu_);
  auto [first, last] = index_.equal_range(hash);
  for (auto it = first; it != last; ++it) {
    Entry& entry = *it->second;
    if (entry.sources.size() == sorted_sources.size() &&
        std::equal(entry.sources.begin(), entry.sources.end(),
                   sorted_sources.begin())) {
      ++stats_.plan_hits;
      lru_.splice(lru_.begin(), lru_, it->second);
      return entry.plan;
    }
  }
  ++stats_.plan_misses;
  return std::nullopt;
}

void PlanCache::Put(std::span<const graph::VertexId> sorted_sources,
                    const GroupPlan& plan) {
  if (capacity_ <= 0) return;
  const uint64_t hash =
      config_fingerprint_ ^ SourceSetFingerprint(sorted_sources);
  std::lock_guard<std::mutex> lock(mu_);
  auto [first, last] = index_.equal_range(hash);
  for (auto it = first; it != last; ++it) {
    const Entry& entry = *it->second;
    if (entry.sources.size() == sorted_sources.size() &&
        std::equal(entry.sources.begin(), entry.sources.end(),
                   sorted_sources.begin())) {
      return;  // already memoized (plans for one key never change)
    }
  }
  lru_.push_front(Entry{
      hash,
      std::vector<graph::VertexId>(sorted_sources.begin(),
                                   sorted_sources.end()),
      plan});
  index_.emplace(hash, lru_.begin());
  ++stats_.plan_insertions;
  while (static_cast<int>(lru_.size()) > capacity_) {
    const Entry& victim = lru_.back();
    auto [vfirst, vlast] = index_.equal_range(victim.hash);
    for (auto it = vfirst; it != vlast; ++it) {
      if (&*it->second == &victim) {
        index_.erase(it);
        break;
      }
    }
    lru_.pop_back();
    ++stats_.plan_evictions;
  }
}

void PlanCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  lru_.clear();
  index_.clear();
}

CacheStats PlanCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace ibfs::service
