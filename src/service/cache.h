#ifndef IBFS_SERVICE_CACHE_H_
#define IBFS_SERVICE_CACHE_H_

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/group_plan.h"
#include "core/options.h"
#include "graph/csr.h"
#include "util/status.h"

namespace ibfs::service {

/// Configuration for the serving-layer caches. The result cache holds
/// completed per-query depth vectors; the plan cache memoizes GroupSources
/// output for repeated batches. Both are owned by one BfsService and sized
/// at Create.
struct CacheOptions {
  /// Master switch. Disabled means every query executes from scratch
  /// (the pre-cache serving behavior, and what chaos baselines compare
  /// against).
  bool enabled = true;
  /// Byte budget for resident depth vectors across all shards. Each shard
  /// gets an equal slice; eviction is LRU within a shard.
  int64_t result_budget_bytes = int64_t{64} << 20;
  /// Number of independently-locked result shards. More shards cut
  /// contention when many executor threads publish completions at once.
  int shards = 8;
  /// Entries the plan cache retains (LRU by batch count, not bytes — plans
  /// are small relative to depth vectors).
  int plan_capacity = 64;

  Status Validate() const;
};

/// Counters for one cache (snapshot; taken under the shard locks).
struct CacheStats {
  int64_t hits = 0;
  int64_t misses = 0;
  int64_t insertions = 0;
  int64_t evictions = 0;
  /// Entries dropped because their stored checksum no longer matched the
  /// stored bytes (corruption detected on read; treated as a miss).
  int64_t quarantined = 0;
  int64_t entries = 0;
  int64_t bytes_resident = 0;
  int64_t plan_hits = 0;
  int64_t plan_misses = 0;
  int64_t plan_insertions = 0;
  int64_t plan_evictions = 0;

  double HitRatio() const {
    const int64_t total = hits + misses;
    return total > 0 ? static_cast<double>(hits) / total : 0.0;
  }
};

/// One cached BFS answer: the depth vector, its FNV-1a checksum (computed
/// at insert, re-verified at every read), and the reached-vertex count so
/// hits can fill QueryResult without rescanning depths.
struct CachedDepths {
  std::vector<uint8_t> depths;
  uint64_t checksum = 0;
  int64_t reached = 0;
};

/// Sharded, byte-budgeted LRU cache of completed BFS results, keyed by
/// (graph fingerprint, source vertex, strategy). The fingerprint and
/// strategy are fixed per instance (a service serves one graph with one
/// engine config), so lookups hash only the source; the fingerprint still
/// lives in the stored key so Get can reject stale entries after a graph
/// swap that skipped Invalidate.
///
/// Integrity: Get recomputes the FNV-1a checksum of the stored bytes and
/// compares it to the checksum stored at insert. A mismatch (bit rot, a
/// torn write, a buggy mutation) quarantines the entry — it is erased,
/// counted, and the lookup reports a miss — so a corrupted cache can cost
/// latency but never wrong answers.
///
/// Thread safety: all methods are safe to call concurrently; each shard has
/// its own mutex and LRU list.
class ResultCache {
 public:
  ResultCache(uint64_t graph_fingerprint, Strategy strategy,
              const CacheOptions& options);

  ResultCache(const ResultCache&) = delete;
  ResultCache& operator=(const ResultCache&) = delete;

  /// Returns the cached answer for `source`, or nullopt on miss, stale
  /// fingerprint, or checksum mismatch (the latter also erases the entry
  /// and bumps `quarantined`). A hit refreshes LRU recency.
  std::optional<CachedDepths> Get(graph::VertexId source);

  /// Inserts (or refreshes) the answer for `source`, then evicts
  /// least-recently-used entries until the shard fits its byte budget.
  /// Entries larger than a whole shard budget are not admitted.
  void Put(graph::VertexId source, CachedDepths value);

  /// Read-only lookup for replication fan-out and join warmup: returns the
  /// entry without touching LRU recency or the hit/miss counters, but still
  /// re-verifies the checksum (a corrupted entry is quarantined exactly as
  /// in Get, so replicas never receive poisoned bytes).
  std::optional<CachedDepths> Peek(graph::VertexId source);

  /// Drops one entry (replica checksum-mismatch quarantine). Returns true
  /// if an entry was present.
  bool Erase(graph::VertexId source);

  /// Sources currently resident, most-recently-used first within each
  /// shard — the donor-side enumeration a joining shard replays for its
  /// targeted warmup.
  std::vector<graph::VertexId> Sources() const;

  /// Drops every entry (graph swap / explicit invalidation).
  void Clear();

  CacheStats stats() const;
  int64_t bytes_resident() const;

  /// Test hook: flips one byte of the stored depth vector for `source`
  /// (if present) without updating its checksum, so the next Get exercises
  /// the quarantine path. Returns true if an entry was corrupted.
  bool CorruptEntryForTest(graph::VertexId source);

 private:
  struct Entry {
    graph::VertexId source = 0;
    uint64_t fingerprint = 0;
    CachedDepths value;
  };
  struct Shard {
    mutable std::mutex mu;
    /// Front = most recently used.
    std::list<Entry> lru;
    std::unordered_map<graph::VertexId, std::list<Entry>::iterator> index;
    int64_t bytes = 0;
    CacheStats stats;
  };

  Shard& ShardFor(graph::VertexId source);
  static int64_t EntryBytes(const CachedDepths& value);

  const uint64_t graph_fingerprint_;
  const Strategy strategy_;
  const int64_t shard_budget_bytes_;
  std::vector<std::unique_ptr<Shard>> shards_;
};

/// Memoizes GroupSources output keyed by the sorted source set, so a batch
/// whose (deduplicated, sorted) sources match an earlier batch skips the
/// GroupBy hub search entirely. The key hash is SourceSetFingerprint but
/// entries store the full source vector and compare it exactly — a digest
/// collision degrades to a miss, never a wrong plan. Single mutex: plan
/// lookups happen once per batch, not per query, so contention is nil.
class PlanCache {
 public:
  PlanCache(uint64_t config_fingerprint, int capacity);

  PlanCache(const PlanCache&) = delete;
  PlanCache& operator=(const PlanCache&) = delete;

  /// Returns a copy of the memoized plan for this exact sorted source set,
  /// or nullopt. `sorted_sources` must be sorted and duplicate-free.
  std::optional<GroupPlan> Get(std::span<const graph::VertexId> sorted_sources);

  void Put(std::span<const graph::VertexId> sorted_sources,
           const GroupPlan& plan);

  void Clear();

  CacheStats stats() const;

 private:
  struct Entry {
    uint64_t hash = 0;
    std::vector<graph::VertexId> sources;
    GroupPlan plan;
  };

  const uint64_t config_fingerprint_;
  const int capacity_;
  mutable std::mutex mu_;
  /// Front = most recently used.
  std::list<Entry> lru_;
  std::unordered_multimap<uint64_t, std::list<Entry>::iterator> index_;
  CacheStats stats_;
};

}  // namespace ibfs::service

#endif  // IBFS_SERVICE_CACHE_H_
