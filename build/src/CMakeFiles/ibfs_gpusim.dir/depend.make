# Empty dependencies file for ibfs_gpusim.
# This may be replaced when dependencies are built.
