file(REMOVE_RECURSE
  "libibfs_gpusim.a"
)
