
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gpusim/cluster.cc" "src/CMakeFiles/ibfs_gpusim.dir/gpusim/cluster.cc.o" "gcc" "src/CMakeFiles/ibfs_gpusim.dir/gpusim/cluster.cc.o.d"
  "/root/repo/src/gpusim/device.cc" "src/CMakeFiles/ibfs_gpusim.dir/gpusim/device.cc.o" "gcc" "src/CMakeFiles/ibfs_gpusim.dir/gpusim/device.cc.o.d"
  "/root/repo/src/gpusim/device_spec.cc" "src/CMakeFiles/ibfs_gpusim.dir/gpusim/device_spec.cc.o" "gcc" "src/CMakeFiles/ibfs_gpusim.dir/gpusim/device_spec.cc.o.d"
  "/root/repo/src/gpusim/memory_model.cc" "src/CMakeFiles/ibfs_gpusim.dir/gpusim/memory_model.cc.o" "gcc" "src/CMakeFiles/ibfs_gpusim.dir/gpusim/memory_model.cc.o.d"
  "/root/repo/src/gpusim/report.cc" "src/CMakeFiles/ibfs_gpusim.dir/gpusim/report.cc.o" "gcc" "src/CMakeFiles/ibfs_gpusim.dir/gpusim/report.cc.o.d"
  "/root/repo/src/gpusim/warp.cc" "src/CMakeFiles/ibfs_gpusim.dir/gpusim/warp.cc.o" "gcc" "src/CMakeFiles/ibfs_gpusim.dir/gpusim/warp.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ibfs_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
