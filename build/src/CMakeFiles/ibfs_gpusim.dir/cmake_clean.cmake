file(REMOVE_RECURSE
  "CMakeFiles/ibfs_gpusim.dir/gpusim/cluster.cc.o"
  "CMakeFiles/ibfs_gpusim.dir/gpusim/cluster.cc.o.d"
  "CMakeFiles/ibfs_gpusim.dir/gpusim/device.cc.o"
  "CMakeFiles/ibfs_gpusim.dir/gpusim/device.cc.o.d"
  "CMakeFiles/ibfs_gpusim.dir/gpusim/device_spec.cc.o"
  "CMakeFiles/ibfs_gpusim.dir/gpusim/device_spec.cc.o.d"
  "CMakeFiles/ibfs_gpusim.dir/gpusim/memory_model.cc.o"
  "CMakeFiles/ibfs_gpusim.dir/gpusim/memory_model.cc.o.d"
  "CMakeFiles/ibfs_gpusim.dir/gpusim/report.cc.o"
  "CMakeFiles/ibfs_gpusim.dir/gpusim/report.cc.o.d"
  "CMakeFiles/ibfs_gpusim.dir/gpusim/warp.cc.o"
  "CMakeFiles/ibfs_gpusim.dir/gpusim/warp.cc.o.d"
  "libibfs_gpusim.a"
  "libibfs_gpusim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ibfs_gpusim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
