
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/cluster_engine.cc" "src/CMakeFiles/ibfs_core.dir/core/cluster_engine.cc.o" "gcc" "src/CMakeFiles/ibfs_core.dir/core/cluster_engine.cc.o.d"
  "/root/repo/src/core/engine.cc" "src/CMakeFiles/ibfs_core.dir/core/engine.cc.o" "gcc" "src/CMakeFiles/ibfs_core.dir/core/engine.cc.o.d"
  "/root/repo/src/core/options.cc" "src/CMakeFiles/ibfs_core.dir/core/options.cc.o" "gcc" "src/CMakeFiles/ibfs_core.dir/core/options.cc.o.d"
  "/root/repo/src/core/shortest_paths.cc" "src/CMakeFiles/ibfs_core.dir/core/shortest_paths.cc.o" "gcc" "src/CMakeFiles/ibfs_core.dir/core/shortest_paths.cc.o.d"
  "/root/repo/src/core/trace_io.cc" "src/CMakeFiles/ibfs_core.dir/core/trace_io.cc.o" "gcc" "src/CMakeFiles/ibfs_core.dir/core/trace_io.cc.o.d"
  "/root/repo/src/core/validate.cc" "src/CMakeFiles/ibfs_core.dir/core/validate.cc.o" "gcc" "src/CMakeFiles/ibfs_core.dir/core/validate.cc.o.d"
  "/root/repo/src/ibfs/bitwise_ibfs.cc" "src/CMakeFiles/ibfs_core.dir/ibfs/bitwise_ibfs.cc.o" "gcc" "src/CMakeFiles/ibfs_core.dir/ibfs/bitwise_ibfs.cc.o.d"
  "/root/repo/src/ibfs/bitwise_status_array.cc" "src/CMakeFiles/ibfs_core.dir/ibfs/bitwise_status_array.cc.o" "gcc" "src/CMakeFiles/ibfs_core.dir/ibfs/bitwise_status_array.cc.o.d"
  "/root/repo/src/ibfs/groupby.cc" "src/CMakeFiles/ibfs_core.dir/ibfs/groupby.cc.o" "gcc" "src/CMakeFiles/ibfs_core.dir/ibfs/groupby.cc.o.d"
  "/root/repo/src/ibfs/joint_traversal.cc" "src/CMakeFiles/ibfs_core.dir/ibfs/joint_traversal.cc.o" "gcc" "src/CMakeFiles/ibfs_core.dir/ibfs/joint_traversal.cc.o.d"
  "/root/repo/src/ibfs/naive_concurrent.cc" "src/CMakeFiles/ibfs_core.dir/ibfs/naive_concurrent.cc.o" "gcc" "src/CMakeFiles/ibfs_core.dir/ibfs/naive_concurrent.cc.o.d"
  "/root/repo/src/ibfs/runner.cc" "src/CMakeFiles/ibfs_core.dir/ibfs/runner.cc.o" "gcc" "src/CMakeFiles/ibfs_core.dir/ibfs/runner.cc.o.d"
  "/root/repo/src/ibfs/sequential.cc" "src/CMakeFiles/ibfs_core.dir/ibfs/sequential.cc.o" "gcc" "src/CMakeFiles/ibfs_core.dir/ibfs/sequential.cc.o.d"
  "/root/repo/src/ibfs/single_bfs.cc" "src/CMakeFiles/ibfs_core.dir/ibfs/single_bfs.cc.o" "gcc" "src/CMakeFiles/ibfs_core.dir/ibfs/single_bfs.cc.o.d"
  "/root/repo/src/ibfs/status_array.cc" "src/CMakeFiles/ibfs_core.dir/ibfs/status_array.cc.o" "gcc" "src/CMakeFiles/ibfs_core.dir/ibfs/status_array.cc.o.d"
  "/root/repo/src/ibfs/trace.cc" "src/CMakeFiles/ibfs_core.dir/ibfs/trace.cc.o" "gcc" "src/CMakeFiles/ibfs_core.dir/ibfs/trace.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ibfs_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ibfs_gpusim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ibfs_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
