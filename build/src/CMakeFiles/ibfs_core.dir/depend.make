# Empty dependencies file for ibfs_core.
# This may be replaced when dependencies are built.
