file(REMOVE_RECURSE
  "libibfs_core.a"
)
