
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/util/csv.cc" "src/CMakeFiles/ibfs_util.dir/util/csv.cc.o" "gcc" "src/CMakeFiles/ibfs_util.dir/util/csv.cc.o.d"
  "/root/repo/src/util/env.cc" "src/CMakeFiles/ibfs_util.dir/util/env.cc.o" "gcc" "src/CMakeFiles/ibfs_util.dir/util/env.cc.o.d"
  "/root/repo/src/util/flags.cc" "src/CMakeFiles/ibfs_util.dir/util/flags.cc.o" "gcc" "src/CMakeFiles/ibfs_util.dir/util/flags.cc.o.d"
  "/root/repo/src/util/logging.cc" "src/CMakeFiles/ibfs_util.dir/util/logging.cc.o" "gcc" "src/CMakeFiles/ibfs_util.dir/util/logging.cc.o.d"
  "/root/repo/src/util/prng.cc" "src/CMakeFiles/ibfs_util.dir/util/prng.cc.o" "gcc" "src/CMakeFiles/ibfs_util.dir/util/prng.cc.o.d"
  "/root/repo/src/util/stats_math.cc" "src/CMakeFiles/ibfs_util.dir/util/stats_math.cc.o" "gcc" "src/CMakeFiles/ibfs_util.dir/util/stats_math.cc.o.d"
  "/root/repo/src/util/status.cc" "src/CMakeFiles/ibfs_util.dir/util/status.cc.o" "gcc" "src/CMakeFiles/ibfs_util.dir/util/status.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
