file(REMOVE_RECURSE
  "CMakeFiles/ibfs_util.dir/util/csv.cc.o"
  "CMakeFiles/ibfs_util.dir/util/csv.cc.o.d"
  "CMakeFiles/ibfs_util.dir/util/env.cc.o"
  "CMakeFiles/ibfs_util.dir/util/env.cc.o.d"
  "CMakeFiles/ibfs_util.dir/util/flags.cc.o"
  "CMakeFiles/ibfs_util.dir/util/flags.cc.o.d"
  "CMakeFiles/ibfs_util.dir/util/logging.cc.o"
  "CMakeFiles/ibfs_util.dir/util/logging.cc.o.d"
  "CMakeFiles/ibfs_util.dir/util/prng.cc.o"
  "CMakeFiles/ibfs_util.dir/util/prng.cc.o.d"
  "CMakeFiles/ibfs_util.dir/util/stats_math.cc.o"
  "CMakeFiles/ibfs_util.dir/util/stats_math.cc.o.d"
  "CMakeFiles/ibfs_util.dir/util/status.cc.o"
  "CMakeFiles/ibfs_util.dir/util/status.cc.o.d"
  "libibfs_util.a"
  "libibfs_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ibfs_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
