file(REMOVE_RECURSE
  "libibfs_util.a"
)
