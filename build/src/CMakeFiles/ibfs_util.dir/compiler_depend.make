# Empty compiler generated dependencies file for ibfs_util.
# This may be replaced when dependencies are built.
