
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/b40c_like.cc" "src/CMakeFiles/ibfs_baselines.dir/baselines/b40c_like.cc.o" "gcc" "src/CMakeFiles/ibfs_baselines.dir/baselines/b40c_like.cc.o.d"
  "/root/repo/src/baselines/cpu_ibfs.cc" "src/CMakeFiles/ibfs_baselines.dir/baselines/cpu_ibfs.cc.o" "gcc" "src/CMakeFiles/ibfs_baselines.dir/baselines/cpu_ibfs.cc.o.d"
  "/root/repo/src/baselines/cpu_model.cc" "src/CMakeFiles/ibfs_baselines.dir/baselines/cpu_model.cc.o" "gcc" "src/CMakeFiles/ibfs_baselines.dir/baselines/cpu_model.cc.o.d"
  "/root/repo/src/baselines/ms_bfs.cc" "src/CMakeFiles/ibfs_baselines.dir/baselines/ms_bfs.cc.o" "gcc" "src/CMakeFiles/ibfs_baselines.dir/baselines/ms_bfs.cc.o.d"
  "/root/repo/src/baselines/reference_bfs.cc" "src/CMakeFiles/ibfs_baselines.dir/baselines/reference_bfs.cc.o" "gcc" "src/CMakeFiles/ibfs_baselines.dir/baselines/reference_bfs.cc.o.d"
  "/root/repo/src/baselines/spmm_bc_like.cc" "src/CMakeFiles/ibfs_baselines.dir/baselines/spmm_bc_like.cc.o" "gcc" "src/CMakeFiles/ibfs_baselines.dir/baselines/spmm_bc_like.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ibfs_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ibfs_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ibfs_gpusim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ibfs_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
