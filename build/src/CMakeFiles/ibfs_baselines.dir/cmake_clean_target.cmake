file(REMOVE_RECURSE
  "libibfs_baselines.a"
)
