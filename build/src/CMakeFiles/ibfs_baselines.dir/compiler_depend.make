# Empty compiler generated dependencies file for ibfs_baselines.
# This may be replaced when dependencies are built.
