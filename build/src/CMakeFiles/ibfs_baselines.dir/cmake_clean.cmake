file(REMOVE_RECURSE
  "CMakeFiles/ibfs_baselines.dir/baselines/b40c_like.cc.o"
  "CMakeFiles/ibfs_baselines.dir/baselines/b40c_like.cc.o.d"
  "CMakeFiles/ibfs_baselines.dir/baselines/cpu_ibfs.cc.o"
  "CMakeFiles/ibfs_baselines.dir/baselines/cpu_ibfs.cc.o.d"
  "CMakeFiles/ibfs_baselines.dir/baselines/cpu_model.cc.o"
  "CMakeFiles/ibfs_baselines.dir/baselines/cpu_model.cc.o.d"
  "CMakeFiles/ibfs_baselines.dir/baselines/ms_bfs.cc.o"
  "CMakeFiles/ibfs_baselines.dir/baselines/ms_bfs.cc.o.d"
  "CMakeFiles/ibfs_baselines.dir/baselines/reference_bfs.cc.o"
  "CMakeFiles/ibfs_baselines.dir/baselines/reference_bfs.cc.o.d"
  "CMakeFiles/ibfs_baselines.dir/baselines/spmm_bc_like.cc.o"
  "CMakeFiles/ibfs_baselines.dir/baselines/spmm_bc_like.cc.o.d"
  "libibfs_baselines.a"
  "libibfs_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ibfs_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
