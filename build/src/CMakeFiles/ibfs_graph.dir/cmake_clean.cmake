file(REMOVE_RECURSE
  "CMakeFiles/ibfs_graph.dir/graph/builder.cc.o"
  "CMakeFiles/ibfs_graph.dir/graph/builder.cc.o.d"
  "CMakeFiles/ibfs_graph.dir/graph/components.cc.o"
  "CMakeFiles/ibfs_graph.dir/graph/components.cc.o.d"
  "CMakeFiles/ibfs_graph.dir/graph/csr.cc.o"
  "CMakeFiles/ibfs_graph.dir/graph/csr.cc.o.d"
  "CMakeFiles/ibfs_graph.dir/graph/degree_stats.cc.o"
  "CMakeFiles/ibfs_graph.dir/graph/degree_stats.cc.o.d"
  "CMakeFiles/ibfs_graph.dir/graph/io.cc.o"
  "CMakeFiles/ibfs_graph.dir/graph/io.cc.o.d"
  "CMakeFiles/ibfs_graph.dir/graph/relabel.cc.o"
  "CMakeFiles/ibfs_graph.dir/graph/relabel.cc.o.d"
  "libibfs_graph.a"
  "libibfs_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ibfs_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
