
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/graph/builder.cc" "src/CMakeFiles/ibfs_graph.dir/graph/builder.cc.o" "gcc" "src/CMakeFiles/ibfs_graph.dir/graph/builder.cc.o.d"
  "/root/repo/src/graph/components.cc" "src/CMakeFiles/ibfs_graph.dir/graph/components.cc.o" "gcc" "src/CMakeFiles/ibfs_graph.dir/graph/components.cc.o.d"
  "/root/repo/src/graph/csr.cc" "src/CMakeFiles/ibfs_graph.dir/graph/csr.cc.o" "gcc" "src/CMakeFiles/ibfs_graph.dir/graph/csr.cc.o.d"
  "/root/repo/src/graph/degree_stats.cc" "src/CMakeFiles/ibfs_graph.dir/graph/degree_stats.cc.o" "gcc" "src/CMakeFiles/ibfs_graph.dir/graph/degree_stats.cc.o.d"
  "/root/repo/src/graph/io.cc" "src/CMakeFiles/ibfs_graph.dir/graph/io.cc.o" "gcc" "src/CMakeFiles/ibfs_graph.dir/graph/io.cc.o.d"
  "/root/repo/src/graph/relabel.cc" "src/CMakeFiles/ibfs_graph.dir/graph/relabel.cc.o" "gcc" "src/CMakeFiles/ibfs_graph.dir/graph/relabel.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ibfs_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
