file(REMOVE_RECURSE
  "libibfs_graph.a"
)
