# Empty compiler generated dependencies file for ibfs_graph.
# This may be replaced when dependencies are built.
