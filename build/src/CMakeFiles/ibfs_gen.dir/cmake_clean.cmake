file(REMOVE_RECURSE
  "CMakeFiles/ibfs_gen.dir/gen/benchmarks.cc.o"
  "CMakeFiles/ibfs_gen.dir/gen/benchmarks.cc.o.d"
  "CMakeFiles/ibfs_gen.dir/gen/rmat.cc.o"
  "CMakeFiles/ibfs_gen.dir/gen/rmat.cc.o.d"
  "CMakeFiles/ibfs_gen.dir/gen/uniform.cc.o"
  "CMakeFiles/ibfs_gen.dir/gen/uniform.cc.o.d"
  "libibfs_gen.a"
  "libibfs_gen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ibfs_gen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
