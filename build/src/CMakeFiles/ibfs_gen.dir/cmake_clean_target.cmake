file(REMOVE_RECURSE
  "libibfs_gen.a"
)
