
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gen/benchmarks.cc" "src/CMakeFiles/ibfs_gen.dir/gen/benchmarks.cc.o" "gcc" "src/CMakeFiles/ibfs_gen.dir/gen/benchmarks.cc.o.d"
  "/root/repo/src/gen/rmat.cc" "src/CMakeFiles/ibfs_gen.dir/gen/rmat.cc.o" "gcc" "src/CMakeFiles/ibfs_gen.dir/gen/rmat.cc.o.d"
  "/root/repo/src/gen/uniform.cc" "src/CMakeFiles/ibfs_gen.dir/gen/uniform.cc.o" "gcc" "src/CMakeFiles/ibfs_gen.dir/gen/uniform.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ibfs_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ibfs_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
