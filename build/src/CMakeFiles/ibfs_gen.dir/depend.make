# Empty dependencies file for ibfs_gen.
# This may be replaced when dependencies are built.
