file(REMOVE_RECURSE
  "CMakeFiles/ibfs_apps.dir/apps/betweenness_device.cc.o"
  "CMakeFiles/ibfs_apps.dir/apps/betweenness_device.cc.o.d"
  "CMakeFiles/ibfs_apps.dir/apps/centrality.cc.o"
  "CMakeFiles/ibfs_apps.dir/apps/centrality.cc.o.d"
  "CMakeFiles/ibfs_apps.dir/apps/eccentricity.cc.o"
  "CMakeFiles/ibfs_apps.dir/apps/eccentricity.cc.o.d"
  "CMakeFiles/ibfs_apps.dir/apps/reachability_index.cc.o"
  "CMakeFiles/ibfs_apps.dir/apps/reachability_index.cc.o.d"
  "CMakeFiles/ibfs_apps.dir/apps/weighted_sssp.cc.o"
  "CMakeFiles/ibfs_apps.dir/apps/weighted_sssp.cc.o.d"
  "libibfs_apps.a"
  "libibfs_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ibfs_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
