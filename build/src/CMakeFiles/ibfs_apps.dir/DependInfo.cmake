
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/betweenness_device.cc" "src/CMakeFiles/ibfs_apps.dir/apps/betweenness_device.cc.o" "gcc" "src/CMakeFiles/ibfs_apps.dir/apps/betweenness_device.cc.o.d"
  "/root/repo/src/apps/centrality.cc" "src/CMakeFiles/ibfs_apps.dir/apps/centrality.cc.o" "gcc" "src/CMakeFiles/ibfs_apps.dir/apps/centrality.cc.o.d"
  "/root/repo/src/apps/eccentricity.cc" "src/CMakeFiles/ibfs_apps.dir/apps/eccentricity.cc.o" "gcc" "src/CMakeFiles/ibfs_apps.dir/apps/eccentricity.cc.o.d"
  "/root/repo/src/apps/reachability_index.cc" "src/CMakeFiles/ibfs_apps.dir/apps/reachability_index.cc.o" "gcc" "src/CMakeFiles/ibfs_apps.dir/apps/reachability_index.cc.o.d"
  "/root/repo/src/apps/weighted_sssp.cc" "src/CMakeFiles/ibfs_apps.dir/apps/weighted_sssp.cc.o" "gcc" "src/CMakeFiles/ibfs_apps.dir/apps/weighted_sssp.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ibfs_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ibfs_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ibfs_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ibfs_gpusim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ibfs_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
