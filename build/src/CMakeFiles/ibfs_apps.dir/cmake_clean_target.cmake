file(REMOVE_RECURSE
  "libibfs_apps.a"
)
