# Empty dependencies file for ibfs_apps.
# This may be replaced when dependencies are built.
