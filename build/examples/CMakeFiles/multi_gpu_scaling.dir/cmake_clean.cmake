file(REMOVE_RECURSE
  "CMakeFiles/multi_gpu_scaling.dir/multi_gpu_scaling.cpp.o"
  "CMakeFiles/multi_gpu_scaling.dir/multi_gpu_scaling.cpp.o.d"
  "multi_gpu_scaling"
  "multi_gpu_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multi_gpu_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
