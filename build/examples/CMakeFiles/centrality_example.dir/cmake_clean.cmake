file(REMOVE_RECURSE
  "CMakeFiles/centrality_example.dir/centrality.cpp.o"
  "CMakeFiles/centrality_example.dir/centrality.cpp.o.d"
  "centrality_example"
  "centrality_example.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/centrality_example.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
