# Empty dependencies file for centrality_example.
# This may be replaced when dependencies are built.
