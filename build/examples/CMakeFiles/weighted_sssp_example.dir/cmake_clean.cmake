file(REMOVE_RECURSE
  "CMakeFiles/weighted_sssp_example.dir/weighted_sssp.cpp.o"
  "CMakeFiles/weighted_sssp_example.dir/weighted_sssp.cpp.o.d"
  "weighted_sssp_example"
  "weighted_sssp_example.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/weighted_sssp_example.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
