# Empty dependencies file for weighted_sssp_example.
# This may be replaced when dependencies are built.
