file(REMOVE_RECURSE
  "CMakeFiles/reachability_index_example.dir/reachability_index.cpp.o"
  "CMakeFiles/reachability_index_example.dir/reachability_index.cpp.o.d"
  "reachability_index_example"
  "reachability_index_example.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reachability_index_example.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
