# Empty dependencies file for reachability_index_example.
# This may be replaced when dependencies are built.
