# Empty compiler generated dependencies file for io_extra_test.
# This may be replaced when dependencies are built.
