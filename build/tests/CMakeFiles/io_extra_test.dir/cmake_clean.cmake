file(REMOVE_RECURSE
  "CMakeFiles/io_extra_test.dir/io_extra_test.cc.o"
  "CMakeFiles/io_extra_test.dir/io_extra_test.cc.o.d"
  "io_extra_test"
  "io_extra_test.pdb"
  "io_extra_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/io_extra_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
