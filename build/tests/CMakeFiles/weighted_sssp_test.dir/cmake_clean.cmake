file(REMOVE_RECURSE
  "CMakeFiles/weighted_sssp_test.dir/weighted_sssp_test.cc.o"
  "CMakeFiles/weighted_sssp_test.dir/weighted_sssp_test.cc.o.d"
  "weighted_sssp_test"
  "weighted_sssp_test.pdb"
  "weighted_sssp_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/weighted_sssp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
