# Empty dependencies file for weighted_sssp_test.
# This may be replaced when dependencies are built.
