file(REMOVE_RECURSE
  "CMakeFiles/strategies_test.dir/strategies_test.cc.o"
  "CMakeFiles/strategies_test.dir/strategies_test.cc.o.d"
  "strategies_test"
  "strategies_test.pdb"
  "strategies_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/strategies_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
