file(REMOVE_RECURSE
  "CMakeFiles/groupby_test.dir/groupby_test.cc.o"
  "CMakeFiles/groupby_test.dir/groupby_test.cc.o.d"
  "groupby_test"
  "groupby_test.pdb"
  "groupby_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/groupby_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
