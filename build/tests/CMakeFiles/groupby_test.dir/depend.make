# Empty dependencies file for groupby_test.
# This may be replaced when dependencies are built.
