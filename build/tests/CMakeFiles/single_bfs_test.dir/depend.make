# Empty dependencies file for single_bfs_test.
# This may be replaced when dependencies are built.
