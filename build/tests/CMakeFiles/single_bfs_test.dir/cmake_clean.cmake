file(REMOVE_RECURSE
  "CMakeFiles/single_bfs_test.dir/single_bfs_test.cc.o"
  "CMakeFiles/single_bfs_test.dir/single_bfs_test.cc.o.d"
  "single_bfs_test"
  "single_bfs_test.pdb"
  "single_bfs_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/single_bfs_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
