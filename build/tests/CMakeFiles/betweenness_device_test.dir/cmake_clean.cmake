file(REMOVE_RECURSE
  "CMakeFiles/betweenness_device_test.dir/betweenness_device_test.cc.o"
  "CMakeFiles/betweenness_device_test.dir/betweenness_device_test.cc.o.d"
  "betweenness_device_test"
  "betweenness_device_test.pdb"
  "betweenness_device_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/betweenness_device_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
