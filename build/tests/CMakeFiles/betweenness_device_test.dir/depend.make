# Empty dependencies file for betweenness_device_test.
# This may be replaced when dependencies are built.
