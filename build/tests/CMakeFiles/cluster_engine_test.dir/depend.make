# Empty dependencies file for cluster_engine_test.
# This may be replaced when dependencies are built.
