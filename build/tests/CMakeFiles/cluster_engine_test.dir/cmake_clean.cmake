file(REMOVE_RECURSE
  "CMakeFiles/cluster_engine_test.dir/cluster_engine_test.cc.o"
  "CMakeFiles/cluster_engine_test.dir/cluster_engine_test.cc.o.d"
  "cluster_engine_test"
  "cluster_engine_test.pdb"
  "cluster_engine_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cluster_engine_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
