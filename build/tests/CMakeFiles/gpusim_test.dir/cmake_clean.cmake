file(REMOVE_RECURSE
  "CMakeFiles/gpusim_test.dir/gpusim_test.cc.o"
  "CMakeFiles/gpusim_test.dir/gpusim_test.cc.o.d"
  "gpusim_test"
  "gpusim_test.pdb"
  "gpusim_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpusim_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
