file(REMOVE_RECURSE
  "CMakeFiles/engine_sweep_test.dir/engine_sweep_test.cc.o"
  "CMakeFiles/engine_sweep_test.dir/engine_sweep_test.cc.o.d"
  "engine_sweep_test"
  "engine_sweep_test.pdb"
  "engine_sweep_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/engine_sweep_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
