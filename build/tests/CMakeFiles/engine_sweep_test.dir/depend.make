# Empty dependencies file for engine_sweep_test.
# This may be replaced when dependencies are built.
