# Empty compiler generated dependencies file for status_array_test.
# This may be replaced when dependencies are built.
