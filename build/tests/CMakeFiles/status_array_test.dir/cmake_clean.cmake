file(REMOVE_RECURSE
  "CMakeFiles/status_array_test.dir/status_array_test.cc.o"
  "CMakeFiles/status_array_test.dir/status_array_test.cc.o.d"
  "status_array_test"
  "status_array_test.pdb"
  "status_array_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/status_array_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
