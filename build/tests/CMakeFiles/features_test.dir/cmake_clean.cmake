file(REMOVE_RECURSE
  "CMakeFiles/features_test.dir/features_test.cc.o"
  "CMakeFiles/features_test.dir/features_test.cc.o.d"
  "features_test"
  "features_test.pdb"
  "features_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/features_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
