# Empty compiler generated dependencies file for micro_coalescing.
# This may be replaced when dependencies are built.
