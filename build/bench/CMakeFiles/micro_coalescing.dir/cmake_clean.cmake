file(REMOVE_RECURSE
  "CMakeFiles/micro_coalescing.dir/micro_coalescing.cc.o"
  "CMakeFiles/micro_coalescing.dir/micro_coalescing.cc.o.d"
  "micro_coalescing"
  "micro_coalescing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_coalescing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
