file(REMOVE_RECURSE
  "CMakeFiles/fig16_group_count.dir/fig16_group_count.cc.o"
  "CMakeFiles/fig16_group_count.dir/fig16_group_count.cc.o.d"
  "fig16_group_count"
  "fig16_group_count.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig16_group_count.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
