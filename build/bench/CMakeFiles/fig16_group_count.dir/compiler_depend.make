# Empty compiler generated dependencies file for fig16_group_count.
# This may be replaced when dependencies are built.
