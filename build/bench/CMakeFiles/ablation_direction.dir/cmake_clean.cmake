file(REMOVE_RECURSE
  "CMakeFiles/ablation_direction.dir/ablation_direction.cc.o"
  "CMakeFiles/ablation_direction.dir/ablation_direction.cc.o.d"
  "ablation_direction"
  "ablation_direction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_direction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
