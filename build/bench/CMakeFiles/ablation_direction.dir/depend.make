# Empty dependencies file for ablation_direction.
# This may be replaced when dependencies are built.
