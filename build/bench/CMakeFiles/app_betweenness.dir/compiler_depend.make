# Empty compiler generated dependencies file for app_betweenness.
# This may be replaced when dependencies are built.
