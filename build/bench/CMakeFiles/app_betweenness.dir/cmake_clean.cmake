file(REMOVE_RECURSE
  "CMakeFiles/app_betweenness.dir/app_betweenness.cc.o"
  "CMakeFiles/app_betweenness.dir/app_betweenness.cc.o.d"
  "app_betweenness"
  "app_betweenness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/app_betweenness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
