# Empty dependencies file for micro_bitwise.
# This may be replaced when dependencies are built.
