file(REMOVE_RECURSE
  "CMakeFiles/micro_bitwise.dir/micro_bitwise.cc.o"
  "CMakeFiles/micro_bitwise.dir/micro_bitwise.cc.o.d"
  "micro_bitwise"
  "micro_bitwise.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_bitwise.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
