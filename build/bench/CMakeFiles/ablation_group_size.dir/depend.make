# Empty dependencies file for ablation_group_size.
# This may be replaced when dependencies are built.
