file(REMOVE_RECURSE
  "CMakeFiles/ablation_group_size.dir/ablation_group_size.cc.o"
  "CMakeFiles/ablation_group_size.dir/ablation_group_size.cc.o.d"
  "ablation_group_size"
  "ablation_group_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_group_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
