file(REMOVE_RECURSE
  "CMakeFiles/fig09_sharing_ratio.dir/fig09_sharing_ratio.cc.o"
  "CMakeFiles/fig09_sharing_ratio.dir/fig09_sharing_ratio.cc.o.d"
  "fig09_sharing_ratio"
  "fig09_sharing_ratio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_sharing_ratio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
