# Empty compiler generated dependencies file for fig09_sharing_ratio.
# This may be replaced when dependencies are built.
