# Empty compiler generated dependencies file for micro_generator.
# This may be replaced when dependencies are built.
