file(REMOVE_RECURSE
  "CMakeFiles/fig18_store_transactions.dir/fig18_store_transactions.cc.o"
  "CMakeFiles/fig18_store_transactions.dir/fig18_store_transactions.cc.o.d"
  "fig18_store_transactions"
  "fig18_store_transactions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig18_store_transactions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
