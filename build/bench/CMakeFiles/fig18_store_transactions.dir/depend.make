# Empty dependencies file for fig18_store_transactions.
# This may be replaced when dependencies are built.
