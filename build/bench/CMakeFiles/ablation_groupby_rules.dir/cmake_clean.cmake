file(REMOVE_RECURSE
  "CMakeFiles/ablation_groupby_rules.dir/ablation_groupby_rules.cc.o"
  "CMakeFiles/ablation_groupby_rules.dir/ablation_groupby_rules.cc.o.d"
  "ablation_groupby_rules"
  "ablation_groupby_rules.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_groupby_rules.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
