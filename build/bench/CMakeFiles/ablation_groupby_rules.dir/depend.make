# Empty dependencies file for ablation_groupby_rules.
# This may be replaced when dependencies are built.
