file(REMOVE_RECURSE
  "CMakeFiles/fig21_load_transactions.dir/fig21_load_transactions.cc.o"
  "CMakeFiles/fig21_load_transactions.dir/fig21_load_transactions.cc.o.d"
  "fig21_load_transactions"
  "fig21_load_transactions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig21_load_transactions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
