# Empty dependencies file for fig21_load_transactions.
# This may be replaced when dependencies are built.
