file(REMOVE_RECURSE
  "CMakeFiles/fig08_q_sweep.dir/fig08_q_sweep.cc.o"
  "CMakeFiles/fig08_q_sweep.dir/fig08_q_sweep.cc.o.d"
  "fig08_q_sweep"
  "fig08_q_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_q_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
