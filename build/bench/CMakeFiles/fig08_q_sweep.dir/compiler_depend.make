# Empty compiler generated dependencies file for fig08_q_sweep.
# This may be replaced when dependencies are built.
