# Empty dependencies file for fig11_balance.
# This may be replaced when dependencies are built.
