file(REMOVE_RECURSE
  "CMakeFiles/fig11_balance.dir/fig11_balance.cc.o"
  "CMakeFiles/fig11_balance.dir/fig11_balance.cc.o.d"
  "fig11_balance"
  "fig11_balance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_balance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
