file(REMOVE_RECURSE
  "CMakeFiles/fig22_state_of_art.dir/fig22_state_of_art.cc.o"
  "CMakeFiles/fig22_state_of_art.dir/fig22_state_of_art.cc.o.d"
  "fig22_state_of_art"
  "fig22_state_of_art.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig22_state_of_art.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
