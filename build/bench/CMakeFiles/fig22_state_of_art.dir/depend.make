# Empty dependencies file for fig22_state_of_art.
# This may be replaced when dependencies are built.
