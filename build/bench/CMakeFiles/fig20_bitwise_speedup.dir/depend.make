# Empty dependencies file for fig20_bitwise_speedup.
# This may be replaced when dependencies are built.
