file(REMOVE_RECURSE
  "CMakeFiles/fig20_bitwise_speedup.dir/fig20_bitwise_speedup.cc.o"
  "CMakeFiles/fig20_bitwise_speedup.dir/fig20_bitwise_speedup.cc.o.d"
  "fig20_bitwise_speedup"
  "fig20_bitwise_speedup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig20_bitwise_speedup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
