# Empty compiler generated dependencies file for fig15_traversal_rate.
# This may be replaced when dependencies are built.
