file(REMOVE_RECURSE
  "CMakeFiles/fig15_traversal_rate.dir/fig15_traversal_rate.cc.o"
  "CMakeFiles/fig15_traversal_rate.dir/fig15_traversal_rate.cc.o.d"
  "fig15_traversal_rate"
  "fig15_traversal_rate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_traversal_rate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
