# Empty dependencies file for table1_reachability.
# This may be replaced when dependencies are built.
