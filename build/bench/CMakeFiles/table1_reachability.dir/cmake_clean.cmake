file(REMOVE_RECURSE
  "CMakeFiles/table1_reachability.dir/table1_reachability.cc.o"
  "CMakeFiles/table1_reachability.dir/table1_reachability.cc.o.d"
  "table1_reachability"
  "table1_reachability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_reachability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
