file(REMOVE_RECURSE
  "CMakeFiles/fig19_load_per_request.dir/fig19_load_per_request.cc.o"
  "CMakeFiles/fig19_load_per_request.dir/fig19_load_per_request.cc.o.d"
  "fig19_load_per_request"
  "fig19_load_per_request.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig19_load_per_request.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
