# Empty compiler generated dependencies file for fig19_load_per_request.
# This may be replaced when dependencies are built.
