# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for fig19_load_per_request.
