# Empty dependencies file for fig14_graphs.
# This may be replaced when dependencies are built.
