file(REMOVE_RECURSE
  "CMakeFiles/fig14_graphs.dir/fig14_graphs.cc.o"
  "CMakeFiles/fig14_graphs.dir/fig14_graphs.cc.o.d"
  "fig14_graphs"
  "fig14_graphs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_graphs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
