file(REMOVE_RECURSE
  "CMakeFiles/ablation_early_termination.dir/ablation_early_termination.cc.o"
  "CMakeFiles/ablation_early_termination.dir/ablation_early_termination.cc.o.d"
  "ablation_early_termination"
  "ablation_early_termination.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_early_termination.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
