# Empty compiler generated dependencies file for ablation_early_termination.
# This may be replaced when dependencies are built.
