file(REMOVE_RECURSE
  "CMakeFiles/graph500_bfs.dir/graph500_bfs.cc.o"
  "CMakeFiles/graph500_bfs.dir/graph500_bfs.cc.o.d"
  "graph500_bfs"
  "graph500_bfs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/graph500_bfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
