# Empty dependencies file for graph500_bfs.
# This may be replaced when dependencies are built.
