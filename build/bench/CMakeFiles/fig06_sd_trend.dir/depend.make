# Empty dependencies file for fig06_sd_trend.
# This may be replaced when dependencies are built.
