file(REMOVE_RECURSE
  "CMakeFiles/fig06_sd_trend.dir/fig06_sd_trend.cc.o"
  "CMakeFiles/fig06_sd_trend.dir/fig06_sd_trend.cc.o.d"
  "fig06_sd_trend"
  "fig06_sd_trend.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_sd_trend.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
