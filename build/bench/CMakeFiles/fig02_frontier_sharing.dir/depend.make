# Empty dependencies file for fig02_frontier_sharing.
# This may be replaced when dependencies are built.
