file(REMOVE_RECURSE
  "CMakeFiles/fig02_frontier_sharing.dir/fig02_frontier_sharing.cc.o"
  "CMakeFiles/fig02_frontier_sharing.dir/fig02_frontier_sharing.cc.o.d"
  "fig02_frontier_sharing"
  "fig02_frontier_sharing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig02_frontier_sharing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
