# Empty dependencies file for fig17_scalability.
# This may be replaced when dependencies are built.
