# Empty dependencies file for ibfs_cli.
# This may be replaced when dependencies are built.
