file(REMOVE_RECURSE
  "CMakeFiles/ibfs_cli.dir/ibfs_cli.cc.o"
  "CMakeFiles/ibfs_cli.dir/ibfs_cli.cc.o.d"
  "ibfs_cli"
  "ibfs_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ibfs_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
