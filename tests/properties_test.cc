// Property-style invariants spanning modules: BFS validity without an
// oracle, the paper's Lemma 1 identity, strategy agreement, coalescing
// arithmetic, and sharing-ratio persistence (Theorem 1's observable form).
#include <numeric>
#include <set>
#include <vector>

#include "gpusim/device.h"
#include "gpusim/memory_model.h"
#include "gtest/gtest.h"
#include "ibfs/groupby.h"
#include "ibfs/runner.h"
#include "ibfs/status_array.h"
#include "test_util.h"
#include "util/prng.h"

namespace ibfs {
namespace {

using graph::VertexId;

std::vector<VertexId> FirstSources(int64_t n) {
  std::vector<VertexId> s;
  for (int64_t i = 0; i < n; ++i) s.push_back(static_cast<VertexId>(i));
  return s;
}

// ---------------------------------------------------------------------------
// BFS validity without an oracle: the triangle inequality over edges plus
// source-depth-zero characterizes correct BFS depths.
// ---------------------------------------------------------------------------

class BfsValidityTest
    : public ::testing::TestWithParam<std::tuple<Strategy, uint64_t>> {};

TEST_P(BfsValidityTest, EdgeTriangleInequalityHolds) {
  const auto [strategy, seed] = GetParam();
  const graph::Csr g = testing::MakeRmatGraph(7, 8, seed);
  const auto sources = FirstSources(24);
  gpusim::Device device;
  auto result = RunGroup(strategy, g, sources, {}, &device);
  ASSERT_TRUE(result.ok());
  for (size_t j = 0; j < sources.size(); ++j) {
    const auto& d = result.value().depths[j];
    ASSERT_EQ(d[sources[j]], 0);
    for (int64_t v = 0; v < g.vertex_count(); ++v) {
      if (d[v] == kUnvisitedDepth) continue;
      for (VertexId w : g.OutNeighbors(static_cast<VertexId>(v))) {
        // Reachable neighbor must be visited, and within one level.
        ASSERT_NE(d[w], kUnvisitedDepth);
        ASSERT_LE(d[w], d[v] + 1);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Validity, BfsValidityTest,
    ::testing::Combine(::testing::Values(Strategy::kSequential,
                                         Strategy::kNaiveConcurrent,
                                         Strategy::kJointTraversal,
                                         Strategy::kBitwise),
                       ::testing::Values(1u, 2u, 3u)));

// ---------------------------------------------------------------------------
// All four strategies agree bit-for-bit on depths (pairwise, via bitwise as
// the pivot) across random source sets.
// ---------------------------------------------------------------------------

class StrategyAgreementTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(StrategyAgreementTest, AllStrategiesAgree) {
  const graph::Csr g = testing::MakeRmatGraph(7, 10, 7);
  Prng prng(GetParam());
  std::vector<VertexId> sources;
  for (int i = 0; i < 20; ++i) {
    sources.push_back(static_cast<VertexId>(
        prng.NextBounded(static_cast<uint64_t>(g.vertex_count()))));
  }
  gpusim::Device device;
  auto pivot = RunGroup(Strategy::kBitwise, g, sources, {}, &device);
  ASSERT_TRUE(pivot.ok());
  for (Strategy s : {Strategy::kSequential, Strategy::kNaiveConcurrent,
                     Strategy::kJointTraversal}) {
    auto other = RunGroup(s, g, sources, {}, &device);
    ASSERT_TRUE(other.ok());
    for (size_t j = 0; j < sources.size(); ++j) {
      ASSERT_EQ(pivot.value().depths[j], other.value().depths[j])
          << StrategyName(s) << " instance " << j;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, StrategyAgreementTest,
                         ::testing::Values(11u, 22u, 33u, 44u));

// ---------------------------------------------------------------------------
// Lemma 1 identity: in pure top-down traversal each vertex becomes a
// frontier exactly once per instance that reaches it, so
// sum_k sum_j |FQ_j(k)| equals the total reachable pairs, and SD equals
// reachable_pairs / sum_k |JFQ(k)|.
// ---------------------------------------------------------------------------

TEST(Lemma1Test, TopDownSharingDegreeIdentity) {
  const graph::Csr g = testing::MakeRmatGraph(7, 8);
  const auto sources = FirstSources(32);
  TraversalOptions options;
  options.force_top_down = true;
  gpusim::Device device;
  auto result =
      RunGroup(Strategy::kJointTraversal, g, sources, options, &device);
  ASSERT_TRUE(result.ok());
  const GroupResult& group = result.value();

  int64_t reachable_pairs = 0;
  for (const auto& d : group.depths) {
    for (uint8_t x : d) reachable_pairs += x != kUnvisitedDepth;
  }
  int64_t private_sum = 0;
  int64_t joint_sum = 0;
  for (const auto& lt : group.trace.levels) {
    private_sum += lt.private_fq_sum;
    joint_sum += lt.jfq_size;
  }
  EXPECT_EQ(private_sum, reachable_pairs);
  EXPECT_DOUBLE_EQ(group.trace.SharingDegree(),
                   static_cast<double>(reachable_pairs) /
                       static_cast<double>(joint_sum));
}

// The JFQ is exactly the union of the private frontiers (pure top-down:
// level-k frontiers are the vertices at reference depth k-1).
TEST(JfqUnionTest, JfqMatchesUnionOfPrivateFrontiers) {
  const graph::Csr g = testing::MakeSmallGraph();
  const std::vector<VertexId> sources = {0, 3, 6, 8};  // the paper's four
  TraversalOptions options;
  options.force_top_down = true;
  gpusim::Device device;
  auto result =
      RunGroup(Strategy::kJointTraversal, g, sources, options, &device);
  ASSERT_TRUE(result.ok());
  const GroupResult& group = result.value();
  for (const auto& lt : group.trace.levels) {
    std::set<VertexId> union_fq;
    int64_t private_count = 0;
    for (size_t j = 0; j < sources.size(); ++j) {
      for (int64_t v = 0; v < g.vertex_count(); ++v) {
        if (group.depths[j][v] == lt.level - 1) {
          union_fq.insert(static_cast<VertexId>(v));
          ++private_count;
        }
      }
    }
    EXPECT_EQ(lt.jfq_size, static_cast<int64_t>(union_fq.size()))
        << "level " << lt.level;
    EXPECT_EQ(lt.private_fq_sum, private_count) << "level " << lt.level;
  }
}

// ---------------------------------------------------------------------------
// Joint and bitwise runners take identical per-level decisions: same
// directions, same joint frontier queues.
// ---------------------------------------------------------------------------

class JointBitwiseEquivalenceTest : public ::testing::TestWithParam<int> {};

TEST_P(JointBitwiseEquivalenceTest, SameLevelStructure) {
  const int n = GetParam();
  const graph::Csr g = testing::MakeRmatGraph(7, 12);
  const auto sources = FirstSources(n);
  gpusim::Device device;
  auto joint = RunGroup(Strategy::kJointTraversal, g, sources, {}, &device);
  auto bitwise = RunGroup(Strategy::kBitwise, g, sources, {}, &device);
  ASSERT_TRUE(joint.ok() && bitwise.ok());
  const auto& jl = joint.value().trace.levels;
  const auto& bl = bitwise.value().trace.levels;
  ASSERT_EQ(jl.size(), bl.size());
  for (size_t i = 0; i < jl.size(); ++i) {
    EXPECT_EQ(jl[i].bottom_up, bl[i].bottom_up) << "level " << i;
    EXPECT_EQ(jl[i].jfq_size, bl[i].jfq_size) << "level " << i;
    EXPECT_EQ(jl[i].private_fq_sum, bl[i].private_fq_sum) << "level " << i;
    EXPECT_EQ(jl[i].new_visits, bl[i].new_visits) << "level " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(GroupSizes, JointBitwiseEquivalenceTest,
                         ::testing::Values(1, 7, 32, 64, 96, 128));

// ---------------------------------------------------------------------------
// Coalescing arithmetic agrees with a brute-force distinct-segment count.
// ---------------------------------------------------------------------------

TEST(CoalescingPropertyTest, GatherMatchesBruteForce) {
  Prng prng(5);
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<int64_t> idx;
    const int lanes = 1 + static_cast<int>(prng.NextBounded(32));
    for (int i = 0; i < lanes; ++i) {
      if (prng.NextBool(0.1)) {
        idx.push_back(gpusim::kInactiveLane);
      } else {
        idx.push_back(static_cast<int64_t>(prng.NextBounded(10000)));
      }
    }
    const int elem = 1 << prng.NextBounded(4);  // 1, 2, 4, 8 bytes
    std::set<int64_t> segments;
    for (int64_t i : idx) {
      if (i != gpusim::kInactiveLane) segments.insert(i * elem / 128);
    }
    EXPECT_EQ(gpusim::GatherTransactions(idx, elem, 128),
              static_cast<int64_t>(segments.size()));
  }
}

TEST(CoalescingPropertyTest, ContiguousMatchesGatherOnSameAddresses) {
  Prng prng(6);
  for (int trial = 0; trial < 100; ++trial) {
    // One warp request: gather and contiguous must agree up to 32 lanes.
    const int64_t start = static_cast<int64_t>(prng.NextBounded(1000));
    const int64_t count = 1 + static_cast<int64_t>(prng.NextBounded(32));
    const int elem = 4;
    std::vector<int64_t> idx;
    for (int64_t i = 0; i < count; ++i) idx.push_back(start + i);
    EXPECT_EQ(gpusim::ContiguousTransactions(start, count, elem, 128),
              gpusim::GatherTransactions(idx, elem, 128));
  }
}

// ---------------------------------------------------------------------------
// Theorem 1, observable form: groups with a higher sharing degree in the
// first levels keep a higher total sharing degree. We compare the GroupBy
// and random groupings' level-2 SD ordering against their total SD ordering.
// ---------------------------------------------------------------------------

TEST(Theorem1Test, EarlySharingPredictsTotalSharing) {
  const graph::Csr g = testing::MakeRmatGraph(9, 16);
  std::vector<VertexId> all(static_cast<size_t>(g.vertex_count()));
  std::iota(all.begin(), all.end(), 0);
  GroupByParams params;
  params.group_size = 32;
  params.q = 32;
  const Grouping good = GroupByOutdegree(g, all, params);
  const Grouping random = RandomGrouping(all, 32, 3);

  auto level_and_total_sd = [&](const std::vector<VertexId>& group,
                                double* early, double* total) {
    gpusim::Device device;
    TraversalOptions options;
    options.record_depths = false;
    auto result =
        RunGroup(Strategy::kJointTraversal, g, group, options, &device);
    ASSERT_TRUE(result.ok());
    *early = result.value().trace.LevelSharingDegree(2);
    *total = result.value().trace.SharingDegree();
  };

  // Average over the first few full groups of each grouping.
  double early_good = 0, total_good = 0, early_rand = 0, total_rand = 0;
  int counted = 0;
  for (size_t i = 0; i < good.groups.size() && counted < 3; ++i) {
    if (static_cast<int>(good.groups[i].size()) != params.group_size) continue;
    double e = 0, t = 0;
    level_and_total_sd(good.groups[i], &e, &t);
    early_good += e;
    total_good += t;
    ++counted;
  }
  for (int i = 0; i < 3; ++i) {
    double e = 0, t = 0;
    level_and_total_sd(random.groups[i], &e, &t);
    early_rand += e;
    total_rand += t;
  }
  ASSERT_GT(counted, 0);
  // GroupBy wins early, and that early advantage persists in the totals.
  EXPECT_GT(early_good / counted, early_rand / 3);
  EXPECT_GT(total_good / counted, total_rand / 3);
}

// ---------------------------------------------------------------------------
// Early termination monotonicity: never more inspections with ET than
// without, across seeds and group sizes.
// ---------------------------------------------------------------------------

class EarlyTerminationTest
    : public ::testing::TestWithParam<std::tuple<int, uint64_t>> {};

TEST_P(EarlyTerminationTest, InspectionsNeverIncrease) {
  const auto [n, seed] = GetParam();
  const graph::Csr g = testing::MakeRmatGraph(7, 12, seed);
  const auto sources = FirstSources(n);
  TraversalOptions with_et;
  TraversalOptions without_et;
  without_et.early_termination = false;
  gpusim::Device d1;
  gpusim::Device d2;
  auto r1 = RunGroup(Strategy::kBitwise, g, sources, with_et, &d1);
  auto r2 = RunGroup(Strategy::kBitwise, g, sources, without_et, &d2);
  ASSERT_TRUE(r1.ok() && r2.ok());
  EXPECT_LE(d1.PhaseStats("bu_inspect").mem.load_transactions,
            d2.PhaseStats("bu_inspect").mem.load_transactions);
  for (size_t j = 0; j < sources.size(); ++j) {
    ASSERT_EQ(r1.value().depths[j], r2.value().depths[j]);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, EarlyTerminationTest,
    ::testing::Combine(::testing::Values(8, 64, 128),
                       ::testing::Values(1u, 9u)));

// ---------------------------------------------------------------------------
// Sequential cost scales linearly in the instance count (it shares nothing).
// ---------------------------------------------------------------------------

TEST(ScalingPropertyTest, SequentialTimeLinearInInstances) {
  const graph::Csr g = testing::MakeRmatGraph(7, 8);
  gpusim::Device d1;
  gpusim::Device d2;
  TraversalOptions options;
  options.collect_instance_stats = false;
  ASSERT_TRUE(
      RunGroup(Strategy::kSequential, g, FirstSources(8), options, &d1).ok());
  ASSERT_TRUE(
      RunGroup(Strategy::kSequential, g, FirstSources(16), options, &d2).ok());
  const double ratio = d2.elapsed_seconds() / d1.elapsed_seconds();
  EXPECT_GT(ratio, 1.6);
  EXPECT_LT(ratio, 2.4);
}

}  // namespace
}  // namespace ibfs
