// Tests for the Matrix Market loader, connected-component labeling,
// two-hop GroupBy hub search, and trace export.
#include <fstream>
#include <numeric>
#include <sstream>

#include "core/engine.h"
#include "core/trace_io.h"
#include "graph/builder.h"
#include "graph/components.h"
#include "graph/io.h"
#include "gtest/gtest.h"
#include "ibfs/groupby.h"
#include "test_util.h"

namespace ibfs {
namespace {

using graph::Csr;
using graph::VertexId;

std::string WriteTemp(const std::string& name, const std::string& content) {
  const std::string path = ::testing::TempDir() + "/" + name;
  std::ofstream out(path);
  out << content;
  return path;
}

TEST(MatrixMarketTest, LoadsGeneralPattern) {
  const std::string path = WriteTemp("mm_general.mtx",
                                     "%%MatrixMarket matrix coordinate "
                                     "pattern general\n"
                                     "% a comment\n"
                                     "3 3 3\n"
                                     "1 2\n"
                                     "2 3\n"
                                     "3 1\n");
  auto g = graph::LoadMatrixMarket(path);
  ASSERT_TRUE(g.ok()) << g.status().ToString();
  EXPECT_EQ(g.value().vertex_count(), 3);
  EXPECT_EQ(g.value().edge_count(), 3);
  EXPECT_EQ(g.value().OutNeighbors(0)[0], 1u);  // 1-based converted
  std::remove(path.c_str());
}

TEST(MatrixMarketTest, SymmetricAddsBothDirections) {
  const std::string path = WriteTemp("mm_symmetric.mtx",
                                     "%%MatrixMarket matrix coordinate "
                                     "real symmetric\n"
                                     "4 4 2\n"
                                     "2 1 0.5\n"
                                     "4 3 1.25\n");
  auto g = graph::LoadMatrixMarket(path);
  ASSERT_TRUE(g.ok()) << g.status().ToString();
  EXPECT_EQ(g.value().edge_count(), 4);
  EXPECT_EQ(g.value().OutDegree(0), 1);
  EXPECT_EQ(g.value().OutDegree(1), 1);
  std::remove(path.c_str());
}

TEST(MatrixMarketTest, RejectsBadInputs) {
  const std::string no_banner = WriteTemp("mm_bad1.mtx", "1 1 0\n");
  EXPECT_FALSE(graph::LoadMatrixMarket(no_banner).ok());
  const std::string dense = WriteTemp(
      "mm_bad2.mtx", "%%MatrixMarket matrix array real general\n2 2\n");
  EXPECT_FALSE(graph::LoadMatrixMarket(dense).ok());
  const std::string truncated = WriteTemp(
      "mm_bad3.mtx",
      "%%MatrixMarket matrix coordinate pattern general\n3 3 5\n1 2\n");
  EXPECT_FALSE(graph::LoadMatrixMarket(truncated).ok());
  const std::string out_of_range = WriteTemp(
      "mm_bad4.mtx",
      "%%MatrixMarket matrix coordinate pattern general\n2 2 1\n3 1\n");
  EXPECT_FALSE(graph::LoadMatrixMarket(out_of_range).ok());
  for (const auto& p : {no_banner, dense, truncated, out_of_range}) {
    std::remove(p.c_str());
  }
}

TEST(ConnectedComponentsTest, LabelsAndSizes) {
  const Csr g = testing::MakeDisconnectedGraph(12);
  const auto cc = graph::ConnectedComponents(g);
  EXPECT_EQ(cc.component_count, 2);
  EXPECT_EQ(cc.giant_id, 0);
  EXPECT_EQ(cc.sizes[0], 10);
  EXPECT_EQ(cc.sizes[1], 2);
  for (int v = 0; v < 10; ++v) EXPECT_EQ(cc.labels[v], 0);
  EXPECT_EQ(cc.labels[10], 1);
  EXPECT_EQ(cc.labels[11], 1);
}

TEST(ConnectedComponentsTest, IsolatedVerticesAreSingletons) {
  graph::GraphBuilder builder(5);
  builder.AddUndirectedEdge(0, 1);
  auto g = std::move(builder).Build();
  ASSERT_TRUE(g.ok());
  const auto cc = graph::ConnectedComponents(g.value());
  EXPECT_EQ(cc.component_count, 4);  // {0,1}, {2}, {3}, {4}
  int64_t total = 0;
  for (int64_t s : cc.sizes) total += s;
  EXPECT_EQ(total, 5);
}

TEST(TwoHopGroupByTest, ReachesHubsBehindOneHop) {
  // Hub 0 — relays 1..10 — two leaves per relay. With q between the relay
  // degree (3) and the hub degree (10), leaves only reach a qualifying
  // hub at depth 2.
  graph::GraphBuilder builder(31);
  std::vector<VertexId> leaves;
  for (VertexId relay = 1; relay <= 10; ++relay) {
    builder.AddUndirectedEdge(0, relay);
    for (int k = 0; k < 2; ++k) {
      const auto leaf = static_cast<VertexId>(9 + relay * 2 + k);
      builder.AddUndirectedEdge(relay, leaf);
      leaves.push_back(leaf);
    }
  }
  auto g = std::move(builder).Build();
  ASSERT_TRUE(g.ok());
  ASSERT_EQ(g.value().OutDegree(0), 10);
  ASSERT_EQ(g.value().OutDegree(1), 3);

  GroupByParams params;
  params.q = 5;
  params.uniform_fallback = false;
  params.hub_search_depth = 1;
  const Grouping one_hop = GroupByOutdegree(g.value(), leaves, params);
  params.hub_search_depth = 2;
  const Grouping two_hop = GroupByOutdegree(g.value(), leaves, params);
  EXPECT_EQ(one_hop.rule_matched, 0);
  EXPECT_EQ(two_hop.rule_matched, static_cast<int64_t>(leaves.size()));
  // All leaves share hub 0, so they land in few groups, not many.
  EXPECT_LE(two_hop.groups.size(), one_hop.groups.size());
}

TEST(TraceIoTest, LevelTracesCsvHasRows) {
  const Csr g = testing::MakeRmatGraph(7, 8);
  std::vector<VertexId> sources(32);
  std::iota(sources.begin(), sources.end(), 0);
  EngineOptions options;
  options.strategy = Strategy::kJointTraversal;
  options.grouping = GroupingPolicy::kInOrder;
  Engine engine(&g, options);
  auto result = engine.Run(sources);
  ASSERT_TRUE(result.ok());
  std::ostringstream os;
  WriteLevelTracesCsv(result.value(), os);
  const std::string out = os.str();
  EXPECT_NE(out.find("sharing_degree"), std::string::npos);
  EXPECT_NE(out.find("top-down"), std::string::npos);
  EXPECT_NE(out.find("bottom-up"), std::string::npos);
  std::ostringstream ph;
  WritePhasesCsv(result.value(), ph);
  EXPECT_NE(ph.str().find("fq_gen"), std::string::npos);
}

}  // namespace
}  // namespace ibfs
