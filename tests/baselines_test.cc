#include <vector>

#include "baselines/cpu_bfs.h"
#include "baselines/cpu_model.h"
#include "baselines/gpu_baselines.h"
#include "baselines/reference_bfs.h"
#include "gtest/gtest.h"
#include "test_util.h"

namespace ibfs::baselines {
namespace {

using graph::VertexId;

std::vector<VertexId> FirstSources(int64_t n) {
  std::vector<VertexId> sources;
  for (int64_t i = 0; i < n; ++i) sources.push_back(static_cast<VertexId>(i));
  return sources;
}

TEST(ReferenceBfsTest, SmallGraphDepths) {
  const graph::Csr g = ibfs::testing::MakeSmallGraph();
  const auto depths = ReferenceBfs(g, 0);
  EXPECT_EQ(depths[0], 0);
  EXPECT_EQ(depths[1], 1);
  EXPECT_EQ(depths[4], 1);
  // Every vertex of the connected example graph is reached.
  for (int32_t d : depths) EXPECT_GE(d, 0);
}

TEST(ReferenceBfsTest, MaxLevelTruncation) {
  const graph::Csr g = ibfs::testing::MakeDisconnectedGraph(12);
  const auto depths = ReferenceBfs(g, 0, 2);
  EXPECT_EQ(depths[2], 2);
  EXPECT_EQ(depths[3], -1);
}

TEST(ReferenceBfsTest, DepthsMatchHelperDetectsMismatch) {
  const graph::Csr g = ibfs::testing::MakeSmallGraph();
  std::vector<uint8_t> depths(9, 0xFF);
  EXPECT_FALSE(DepthsMatchReference(g, 0, depths));
}

TEST(CpuModelTest, AccumulatesAndModelsTime) {
  CpuCostModel cpu;
  EXPECT_EQ(cpu.Seconds(), 0.0);
  cpu.Compute(1000);
  cpu.RandomLines(10);
  cpu.SequentialBytes(4096);
  cpu.Atomic(5);
  cpu.ParallelSection();
  EXPECT_GT(cpu.Seconds(), 0.0);
  EXPECT_EQ(cpu.compute_ops(), 1000);
  EXPECT_EQ(cpu.random_lines(), 10);
  EXPECT_EQ(cpu.atomics(), 5);
  cpu.Reset();
  EXPECT_EQ(cpu.Seconds(), 0.0);
}

TEST(CpuModelTest, BandwidthBoundDominatesMemoryHeavyWork) {
  CpuSpec spec;
  spec.mem_bandwidth_gbps = 1.0;
  CpuCostModel cpu(spec);
  cpu.SequentialBytes(int64_t{1} << 30);
  EXPECT_GE(cpu.Seconds(), 1.0);
}

TEST(MsBfsTest, MatchesReference) {
  const graph::Csr g = ibfs::testing::MakeRmatGraph(7, 8);
  const auto sources = FirstSources(64);
  CpuCostModel cpu;
  auto result = RunMsBfs(g, sources, {}, &cpu);
  ASSERT_TRUE(result.ok());
  for (size_t j = 0; j < sources.size(); ++j) {
    EXPECT_TRUE(
        DepthsMatchReference(g, sources[j], result.value().depths[j]))
        << "instance " << j;
  }
  EXPECT_GT(result.value().seconds, 0.0);
  EXPECT_GT(result.value().edges_inspected, 0);
}

TEST(MsBfsTest, WorksAcrossWordBoundaries) {
  const graph::Csr g = ibfs::testing::MakeRmatGraph(7, 8);
  for (int n : {1, 63, 64, 65}) {
    CpuCostModel cpu;
    auto result = RunMsBfs(g, FirstSources(n), {}, &cpu);
    ASSERT_TRUE(result.ok());
    for (int j = 0; j < n; ++j) {
      EXPECT_TRUE(DepthsMatchReference(g, static_cast<VertexId>(j),
                                       result.value().depths[j]));
    }
  }
}

TEST(MsBfsTest, RespectsMaxLevel) {
  const graph::Csr g = ibfs::testing::MakeDisconnectedGraph(12);
  TraversalOptions options;
  options.max_level = 3;
  CpuCostModel cpu;
  auto result = RunMsBfs(g, FirstSources(2), options, &cpu);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(DepthsMatchReference(g, 0, result.value().depths[0], 3));
}

TEST(MsBfsTest, RejectsBadInputs) {
  const graph::Csr g = ibfs::testing::MakeSmallGraph();
  CpuCostModel cpu;
  EXPECT_FALSE(RunMsBfs(g, {}, {}, &cpu).ok());
  EXPECT_FALSE(RunMsBfs(g, FirstSources(2), {}, nullptr).ok());
}

TEST(CpuIbfsTest, MatchesReference) {
  const graph::Csr g = ibfs::testing::MakeRmatGraph(7, 8);
  const auto sources = FirstSources(64);
  CpuCostModel cpu;
  auto result = RunCpuIbfs(g, sources, {}, &cpu);
  ASSERT_TRUE(result.ok());
  for (size_t j = 0; j < sources.size(); ++j) {
    EXPECT_TRUE(
        DepthsMatchReference(g, sources[j], result.value().depths[j]))
        << "instance " << j;
  }
}

TEST(CpuIbfsTest, WorksAcrossWordBoundaries) {
  const graph::Csr g = ibfs::testing::MakeRmatGraph(7, 8);
  for (int n : {1, 64, 65, 127}) {
    CpuCostModel cpu;
    auto result = RunCpuIbfs(g, FirstSources(n), {}, &cpu);
    ASSERT_TRUE(result.ok());
    for (int j = 0; j < n; ++j) {
      EXPECT_TRUE(DepthsMatchReference(g, static_cast<VertexId>(j),
                                       result.value().depths[j]));
    }
  }
}

TEST(CpuIbfsTest, FasterThanMsBfsOnPowerLaw) {
  // Figure 22's CPU-side claim: CPU-iBFS beats MS-BFS thanks to early
  // termination and the cumulative status array.
  const graph::Csr g = ibfs::testing::MakeRmatGraph(8, 16);
  const auto sources = FirstSources(64);
  CpuCostModel cpu_ms;
  CpuCostModel cpu_ibfs;
  auto ms = RunMsBfs(g, sources, {}, &cpu_ms);
  auto ib = RunCpuIbfs(g, sources, {}, &cpu_ibfs);
  ASSERT_TRUE(ms.ok() && ib.ok());
  EXPECT_LT(ib.value().seconds, ms.value().seconds);
}

TEST(GpuBaselinesTest, B40cMatchesReference) {
  const graph::Csr g = ibfs::testing::MakeRmatGraph(6, 8);
  const auto sources = FirstSources(4);
  gpusim::Device device;
  auto result = RunB40cLike(g, sources, {}, &device);
  ASSERT_TRUE(result.ok());
  for (size_t j = 0; j < sources.size(); ++j) {
    EXPECT_TRUE(
        DepthsMatchReference(g, sources[j], result.value().depths[j]));
  }
}

TEST(GpuBaselinesTest, SpmmBcMatchesReferenceAndStaysTopDown) {
  const graph::Csr g = ibfs::testing::MakeRmatGraph(7, 12);
  const auto sources = FirstSources(16);
  gpusim::Device device;
  auto result = RunSpmmBcLike(g, sources, {}, &device);
  ASSERT_TRUE(result.ok());
  for (size_t j = 0; j < sources.size(); ++j) {
    EXPECT_TRUE(
        DepthsMatchReference(g, sources[j], result.value().depths[j]));
  }
  for (const auto& lt : result.value().trace.levels) {
    EXPECT_FALSE(lt.bottom_up);
  }
  EXPECT_EQ(device.PhaseStats("bu_inspect").launch_count, 0);
}

}  // namespace
}  // namespace ibfs::baselines
