// Timing-model equivalence goldens for the gpusim fast path.
//
// The simulator's accounting was refactored (phase-tag interning, integer
// op accumulators, bulk/batched hot-loop entry points, the roofline timing
// model evaluated once per kernel at FinishKernel) with a hard contract:
// the observable simulation — result depths, transaction counters, and
// simulated seconds — is BIT-IDENTICAL to the original per-call
// accounting. Every golden below was captured from the pre-refactor
// implementation and is compared with EXPECT_EQ, never near-equality.
//
// The arithmetic argument for why exact equality is achievable: all issue
// costs in DeviceSpec are dyadic rationals (8.0, 32.0, 0.5, 0.125), so
// every cycle quantity is an exact multiple of 1/8 far below 2^53 and
// double addition is associative over the values that occur; batching
// per-neighbor charges into per-item totals therefore cannot change a bit.
//
// Regenerate goldens (only when the workload itself changes, never to
// paper over a timing diff):
//   IBFS_PRINT_GOLDENS=1 ./gpusim_perf_test
//       --gtest_filter=GpusimPerfEquivalence.PrintGoldens  (one line)
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/engine.h"
#include "graph/components.h"
#include "test_util.h"
#include "util/checksum.h"

namespace ibfs {
namespace {

using ::ibfs::testing::MakeRmatGraph;

// Option variants layered on the BaseOptions defaults, covering the
// accounting paths that batching touched: the MS-BFS reset store, the
// early-termination branch, uncached adjacency reloads, forced top-down,
// and k-hop truncation.
enum class Variant {
  kDefault,
  kMsbfsReset,
  kNoEarlyTermination,
  kNoAdjacencyCache,
  kForceTopDown,
  kMaxLevel3,
};

struct Config {
  Strategy strategy;
  GroupingPolicy grouping;
  Variant variant;
};

// 4 strategies x 3 groupings with defaults, plus targeted variants.
const Config kConfigs[] = {
    {Strategy::kSequential, GroupingPolicy::kInOrder, Variant::kDefault},
    {Strategy::kSequential, GroupingPolicy::kRandom, Variant::kDefault},
    {Strategy::kSequential, GroupingPolicy::kGroupBy, Variant::kDefault},
    {Strategy::kNaiveConcurrent, GroupingPolicy::kInOrder, Variant::kDefault},
    {Strategy::kNaiveConcurrent, GroupingPolicy::kRandom, Variant::kDefault},
    {Strategy::kNaiveConcurrent, GroupingPolicy::kGroupBy, Variant::kDefault},
    {Strategy::kJointTraversal, GroupingPolicy::kInOrder, Variant::kDefault},
    {Strategy::kJointTraversal, GroupingPolicy::kRandom, Variant::kDefault},
    {Strategy::kJointTraversal, GroupingPolicy::kGroupBy, Variant::kDefault},
    {Strategy::kBitwise, GroupingPolicy::kInOrder, Variant::kDefault},
    {Strategy::kBitwise, GroupingPolicy::kRandom, Variant::kDefault},
    {Strategy::kBitwise, GroupingPolicy::kGroupBy, Variant::kDefault},
    {Strategy::kBitwise, GroupingPolicy::kGroupBy, Variant::kMsbfsReset},
    {Strategy::kBitwise, GroupingPolicy::kGroupBy,
     Variant::kNoEarlyTermination},
    {Strategy::kJointTraversal, GroupingPolicy::kGroupBy,
     Variant::kNoAdjacencyCache},
    {Strategy::kBitwise, GroupingPolicy::kGroupBy, Variant::kForceTopDown},
    {Strategy::kJointTraversal, GroupingPolicy::kGroupBy,
     Variant::kMaxLevel3},
};

// Everything the simulation observably produces for one config, folded to
// fixed-width numbers. Doubles are compared bit-for-bit.
struct Observed {
  uint64_t depth_checksum = 0;
  double sim_seconds = 0.0;
  uint64_t load_transactions = 0;
  uint64_t store_transactions = 0;
  uint64_t load_requests = 0;
  uint64_t store_requests = 0;
  uint64_t atomic_ops = 0;
  uint64_t shared_bytes = 0;
  double compute_cycles = 0.0;
  double max_item_cycles = 0.0;
  int64_t item_count = 0;
  int64_t launch_count = 0;
  // Per-phase slices (zeros when the phase never ran).
  uint64_t td_load_txn = 0, td_store_txn = 0, td_atomics = 0, td_shared = 0;
  uint64_t bu_load_txn = 0, bu_store_txn = 0, bu_atomics = 0, bu_shared = 0;
  uint64_t fq_load_txn = 0, fq_store_txn = 0, fq_atomics = 0, fq_shared = 0;
  double td_seconds = 0.0, bu_seconds = 0.0, fq_seconds = 0.0;
};

EngineOptions OptionsFor(const Config& config, int threads) {
  EngineOptions options;
  options.strategy = config.strategy;
  options.grouping = config.grouping;
  options.group_size = 16;
  options.seed = 7;
  options.keep_depths = true;
  options.threads = threads;
  switch (config.variant) {
    case Variant::kDefault:
      break;
    case Variant::kMsbfsReset:
      options.traversal.msbfs_reset = true;
      break;
    case Variant::kNoEarlyTermination:
      options.traversal.early_termination = false;
      break;
    case Variant::kNoAdjacencyCache:
      options.traversal.adjacency_cache = false;
      break;
    case Variant::kForceTopDown:
      options.traversal.force_top_down = true;
      break;
    case Variant::kMaxLevel3:
      options.traversal.max_level = 3;
      break;
  }
  return options;
}

Observed RunConfig(const graph::Csr& graph,
                   std::span<const graph::VertexId> sources,
                   const Config& config, int threads) {
  Engine engine(&graph, OptionsFor(config, threads));
  auto run = engine.Run(sources);
  IBFS_CHECK(run.ok()) << run.status().ToString();
  const EngineResult& result = run.value();

  Observed observed;
  uint64_t state = kFnv1aOffsetBasis;
  for (const GroupResult& group : result.groups) {
    for (const std::vector<uint8_t>& depths : group.depths) {
      state = Fnv1aExtend(state, depths);
    }
  }
  observed.depth_checksum = state;
  observed.sim_seconds = result.sim_seconds;
  observed.load_transactions = result.totals.mem.load_transactions;
  observed.store_transactions = result.totals.mem.store_transactions;
  observed.load_requests = result.totals.mem.load_requests;
  observed.store_requests = result.totals.mem.store_requests;
  observed.atomic_ops = result.totals.mem.atomic_ops;
  observed.shared_bytes = result.totals.mem.shared_bytes;
  observed.compute_cycles = result.totals.compute_cycles;
  observed.max_item_cycles = result.totals.max_item_cycles;
  observed.item_count = result.totals.item_count;
  observed.launch_count = result.totals.launch_count;
  const auto phase = [&result](const char* tag) {
    auto it = result.phases.find(std::string(tag));
    return it == result.phases.end() ? gpusim::KernelStats{} : it->second;
  };
  const gpusim::KernelStats td = phase("td_inspect");
  const gpusim::KernelStats bu = phase("bu_inspect");
  const gpusim::KernelStats fq = phase("fq_gen");
  observed.td_load_txn = td.mem.load_transactions;
  observed.td_store_txn = td.mem.store_transactions;
  observed.td_atomics = td.mem.atomic_ops;
  observed.td_shared = td.mem.shared_bytes;
  observed.bu_load_txn = bu.mem.load_transactions;
  observed.bu_store_txn = bu.mem.store_transactions;
  observed.bu_atomics = bu.mem.atomic_ops;
  observed.bu_shared = bu.mem.shared_bytes;
  observed.fq_load_txn = fq.mem.load_transactions;
  observed.fq_store_txn = fq.mem.store_transactions;
  observed.fq_atomics = fq.mem.atomic_ops;
  observed.fq_shared = fq.mem.shared_bytes;
  observed.td_seconds = td.seconds;
  observed.bu_seconds = bu.seconds;
  observed.fq_seconds = fq.seconds;
  return observed;
}

class Workload {
 public:
  Workload()
      : graph_(MakeRmatGraph(/*scale=*/10, /*edge_factor=*/8, /*seed=*/42)),
        sources_(graph::SampleConnectedSources(graph_, 48, 2016)) {}

  const graph::Csr& graph() const { return graph_; }
  std::span<const graph::VertexId> sources() const { return sources_; }

 private:
  graph::Csr graph_;
  std::vector<graph::VertexId> sources_;
};

const Workload& SharedWorkload() {
  static const Workload* workload = new Workload();
  return *workload;
}

// Golden table, parallel to kConfigs. Captured from the pre-refactor
// per-call accounting (see file comment); doubles in hexfloat so the
// round-trip is exact.
#include "gpusim_perf_goldens.inc"

std::string ConfigName(const Config& config) {
  std::string name = StrategyName(config.strategy);
  name += "/";
  name += GroupingPolicyName(config.grouping);
  switch (config.variant) {
    case Variant::kDefault:
      break;
    case Variant::kMsbfsReset:
      name += "/msbfs_reset";
      break;
    case Variant::kNoEarlyTermination:
      name += "/no_early_termination";
      break;
    case Variant::kNoAdjacencyCache:
      name += "/no_adjacency_cache";
      break;
    case Variant::kForceTopDown:
      name += "/force_top_down";
      break;
    case Variant::kMaxLevel3:
      name += "/max_level_3";
      break;
  }
  return name;
}

void ExpectMatchesGolden(const Observed& observed, const Observed& golden,
                         const std::string& name) {
  SCOPED_TRACE(name);
  EXPECT_EQ(observed.depth_checksum, golden.depth_checksum);
  EXPECT_EQ(observed.sim_seconds, golden.sim_seconds);
  EXPECT_EQ(observed.load_transactions, golden.load_transactions);
  EXPECT_EQ(observed.store_transactions, golden.store_transactions);
  EXPECT_EQ(observed.load_requests, golden.load_requests);
  EXPECT_EQ(observed.store_requests, golden.store_requests);
  EXPECT_EQ(observed.atomic_ops, golden.atomic_ops);
  EXPECT_EQ(observed.shared_bytes, golden.shared_bytes);
  EXPECT_EQ(observed.compute_cycles, golden.compute_cycles);
  EXPECT_EQ(observed.max_item_cycles, golden.max_item_cycles);
  EXPECT_EQ(observed.item_count, golden.item_count);
  EXPECT_EQ(observed.launch_count, golden.launch_count);
  EXPECT_EQ(observed.td_load_txn, golden.td_load_txn);
  EXPECT_EQ(observed.td_store_txn, golden.td_store_txn);
  EXPECT_EQ(observed.td_atomics, golden.td_atomics);
  EXPECT_EQ(observed.td_shared, golden.td_shared);
  EXPECT_EQ(observed.bu_load_txn, golden.bu_load_txn);
  EXPECT_EQ(observed.bu_store_txn, golden.bu_store_txn);
  EXPECT_EQ(observed.bu_atomics, golden.bu_atomics);
  EXPECT_EQ(observed.bu_shared, golden.bu_shared);
  EXPECT_EQ(observed.fq_load_txn, golden.fq_load_txn);
  EXPECT_EQ(observed.fq_store_txn, golden.fq_store_txn);
  EXPECT_EQ(observed.fq_atomics, golden.fq_atomics);
  EXPECT_EQ(observed.fq_shared, golden.fq_shared);
  EXPECT_EQ(observed.td_seconds, golden.td_seconds);
  EXPECT_EQ(observed.bu_seconds, golden.bu_seconds);
  EXPECT_EQ(observed.fq_seconds, golden.fq_seconds);
}

TEST(GpusimPerfEquivalence, MatchesPreRefactorGoldensSerial) {
  const Workload& workload = SharedWorkload();
  for (size_t i = 0; i < std::size(kConfigs); ++i) {
    const Observed observed =
        RunConfig(workload.graph(), workload.sources(), kConfigs[i],
                  /*threads=*/1);
    ExpectMatchesGolden(observed, kGoldens[i],
                        ConfigName(kConfigs[i]) + "/threads=1");
  }
}

TEST(GpusimPerfEquivalence, MatchesPreRefactorGoldensParallel) {
  const Workload& workload = SharedWorkload();
  for (size_t i = 0; i < std::size(kConfigs); ++i) {
    const Observed observed =
        RunConfig(workload.graph(), workload.sources(), kConfigs[i],
                  /*threads=*/8);
    ExpectMatchesGolden(observed, kGoldens[i],
                        ConfigName(kConfigs[i]) + "/threads=8");
  }
}

// Regenerates the golden table (gated so a plain test run never prints).
TEST(GpusimPerfEquivalence, PrintGoldens) {
  if (std::getenv("IBFS_PRINT_GOLDENS") == nullptr) {
    GTEST_SKIP() << "set IBFS_PRINT_GOLDENS=1 to regenerate";
  }
  const Workload& workload = SharedWorkload();
  std::printf("const Observed kGoldens[] = {\n");
  for (const Config& config : kConfigs) {
    const Observed o =
        RunConfig(workload.graph(), workload.sources(), config, 1);
    std::printf("    // %s\n", ConfigName(config).c_str());
    std::printf("    {0x%016llxULL, %a,\n",
                static_cast<unsigned long long>(o.depth_checksum),
                o.sim_seconds);
    std::printf("     %lluULL, %lluULL, %lluULL, %lluULL, %lluULL, "
                "%lluULL,\n",
                static_cast<unsigned long long>(o.load_transactions),
                static_cast<unsigned long long>(o.store_transactions),
                static_cast<unsigned long long>(o.load_requests),
                static_cast<unsigned long long>(o.store_requests),
                static_cast<unsigned long long>(o.atomic_ops),
                static_cast<unsigned long long>(o.shared_bytes));
    std::printf("     %a, %a, %lld, %lld,\n", o.compute_cycles,
                o.max_item_cycles, static_cast<long long>(o.item_count),
                static_cast<long long>(o.launch_count));
    std::printf("     %lluULL, %lluULL, %lluULL, %lluULL,\n",
                static_cast<unsigned long long>(o.td_load_txn),
                static_cast<unsigned long long>(o.td_store_txn),
                static_cast<unsigned long long>(o.td_atomics),
                static_cast<unsigned long long>(o.td_shared));
    std::printf("     %lluULL, %lluULL, %lluULL, %lluULL,\n",
                static_cast<unsigned long long>(o.bu_load_txn),
                static_cast<unsigned long long>(o.bu_store_txn),
                static_cast<unsigned long long>(o.bu_atomics),
                static_cast<unsigned long long>(o.bu_shared));
    std::printf("     %lluULL, %lluULL, %lluULL, %lluULL,\n",
                static_cast<unsigned long long>(o.fq_load_txn),
                static_cast<unsigned long long>(o.fq_store_txn),
                static_cast<unsigned long long>(o.fq_atomics),
                static_cast<unsigned long long>(o.fq_shared));
    std::printf("     %a, %a, %a},\n", o.td_seconds, o.bu_seconds,
                o.fq_seconds);
  }
  std::printf("};\n");
}

}  // namespace
}  // namespace ibfs
