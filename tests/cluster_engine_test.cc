#include <numeric>

#include "core/cluster_engine.h"
#include "gpusim/report.h"
#include "graph/components.h"
#include "gtest/gtest.h"
#include "test_util.h"

namespace ibfs {
namespace {

using graph::VertexId;

EngineOptions SmallGroups() {
  EngineOptions options;
  options.strategy = Strategy::kBitwise;
  options.grouping = GroupingPolicy::kGroupBy;
  options.group_size = 16;
  options.keep_depths = false;
  options.traversal.collect_instance_stats = false;
  return options;
}

TEST(ClusterEngineTest, OneDeviceIsIdentity) {
  const graph::Csr g = testing::MakeRmatGraph(8, 8);
  const auto sources = graph::SampleConnectedSources(g, 64, 1);
  auto result = RunOnCluster(g, sources, SmallGroups(), 1);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result.value().speedup, 1.0, 1e-9);
  EXPECT_NEAR(result.value().schedule.makespan_seconds,
              result.value().single_device_seconds, 1e-12);
}

TEST(ClusterEngineTest, SpeedupBoundedByDevicesAndGroups) {
  const graph::Csr g = testing::MakeRmatGraph(8, 8);
  const auto sources = graph::SampleConnectedSources(g, 128, 1);
  for (int gpus : {2, 4, 8}) {
    auto result = RunOnCluster(g, sources, SmallGroups(), gpus);
    ASSERT_TRUE(result.ok());
    EXPECT_GT(result.value().speedup, 1.0);
    EXPECT_LE(result.value().speedup, static_cast<double>(gpus) + 1e-9);
    EXPECT_LE(result.value().speedup,
              static_cast<double>(result.value().group_count) + 1e-9);
  }
}

TEST(ClusterEngineTest, LptAtLeastAsGoodAsRoundRobin) {
  const graph::Csr g = testing::MakeRmatGraph(8, 12);
  const auto sources = graph::SampleConnectedSources(g, 128, 1);
  auto rr = RunOnCluster(g, sources, SmallGroups(), 4,
                         gpusim::PlacementPolicy::kRoundRobin);
  auto lpt = RunOnCluster(g, sources, SmallGroups(), 4,
                          gpusim::PlacementPolicy::kLpt);
  ASSERT_TRUE(rr.ok() && lpt.ok());
  EXPECT_GE(lpt.value().speedup, rr.value().speedup - 1e-9);
}

TEST(ClusterEngineTest, WorkConserved) {
  const graph::Csr g = testing::MakeRmatGraph(8, 8);
  const auto sources = graph::SampleConnectedSources(g, 96, 1);
  auto result = RunOnCluster(g, sources, SmallGroups(), 3);
  ASSERT_TRUE(result.ok());
  double device_sum = 0.0;
  for (double s : result.value().schedule.device_seconds) device_sum += s;
  EXPECT_NEAR(device_sum, result.value().single_device_seconds, 1e-12);
}

TEST(ClusterEngineTest, RejectsBadDeviceCount) {
  const graph::Csr g = testing::MakeSmallGraph();
  const std::vector<VertexId> sources = {0};
  EXPECT_FALSE(RunOnCluster(g, sources, SmallGroups(), 0).ok());
}

TEST(ProfileReportTest, ContainsPhasesAndTotals) {
  gpusim::Device device;
  {
    auto scope = device.BeginKernel("td_inspect");
    scope.LoadContiguous(0, 1024, 4);
    scope.Atomic(5);
  }
  {
    auto scope = device.BeginKernel("fq_gen");
    scope.StoreContiguous(0, 64, 4);
  }
  const std::string report = gpusim::FormatProfile(device);
  EXPECT_NE(report.find("td_inspect"), std::string::npos);
  EXPECT_NE(report.find("fq_gen"), std::string::npos);
  EXPECT_NE(report.find("TOTAL"), std::string::npos);
  EXPECT_NE(report.find("gld_txn"), std::string::npos);
}

TEST(ProfileReportTest, EmptyDeviceStillRenders) {
  gpusim::Device device;
  const std::string report = gpusim::FormatProfile(device);
  EXPECT_NE(report.find("TOTAL"), std::string::npos);
}

}  // namespace
}  // namespace ibfs
