#include <vector>

#include "apps/weighted_sssp.h"
#include "baselines/reference_bfs.h"
#include "gtest/gtest.h"
#include "test_util.h"
#include "util/prng.h"

namespace ibfs::apps {
namespace {

using graph::Csr;
using graph::VertexId;

TEST(WeightsTest, InRangeAndSymmetric) {
  const Csr g = testing::MakeSmallGraph();
  const EdgeWeights w = GenerateWeights(g, 5, 42);
  ASSERT_EQ(static_cast<int64_t>(w.weights.size()), g.edge_count());
  for (uint8_t x : w.weights) {
    EXPECT_GE(x, 1);
    EXPECT_LE(x, 5);
  }
  // Symmetry: weight(u->v) == weight(v->u) on the undirected build.
  for (int64_t u = 0; u < g.vertex_count(); ++u) {
    const auto neighbors = g.OutNeighbors(static_cast<VertexId>(u));
    const auto base = static_cast<size_t>(g.row_offsets()[u]);
    for (size_t i = 0; i < neighbors.size(); ++i) {
      const VertexId v = neighbors[i];
      const auto back = g.OutNeighbors(v);
      const auto vbase = static_cast<size_t>(g.row_offsets()[v]);
      for (size_t k = 0; k < back.size(); ++k) {
        if (back[k] == static_cast<VertexId>(u)) {
          EXPECT_EQ(w.weights[base + i], w.weights[vbase + k]);
        }
      }
    }
  }
}

TEST(WeightsTest, DeterministicAndSeedSensitive) {
  const Csr g = testing::MakeRmatGraph(6, 6);
  const EdgeWeights a = GenerateWeights(g, 8, 1);
  const EdgeWeights b = GenerateWeights(g, 8, 1);
  const EdgeWeights c = GenerateWeights(g, 8, 2);
  EXPECT_EQ(a.weights, b.weights);
  EXPECT_NE(a.weights, c.weights);
}

TEST(DialSsspTest, UnitWeightsEqualBfs) {
  const Csr g = testing::MakeRmatGraph(7, 8);
  const EdgeWeights w = GenerateWeights(g, 1, 3);
  for (VertexId s : {0u, 17u, 99u}) {
    auto dial = DialSssp(g, w, s);
    ASSERT_TRUE(dial.ok());
    const auto bfs = baselines::ReferenceBfs(g, s);
    for (int64_t v = 0; v < g.vertex_count(); ++v) {
      EXPECT_EQ(dial.value()[v], static_cast<int64_t>(bfs[v]))
          << "vertex " << v;
    }
  }
}

class DialVsDijkstraTest : public ::testing::TestWithParam<int> {};

TEST_P(DialVsDijkstraTest, MatchesOracle) {
  const int max_weight = GetParam();
  const Csr g = testing::MakeRmatGraph(7, 8, 11);
  const EdgeWeights w =
      GenerateWeights(g, static_cast<uint8_t>(max_weight), 7);
  Prng prng(5);
  for (int trial = 0; trial < 5; ++trial) {
    const auto s = static_cast<VertexId>(
        prng.NextBounded(static_cast<uint64_t>(g.vertex_count())));
    auto dial = DialSssp(g, w, s);
    ASSERT_TRUE(dial.ok());
    EXPECT_EQ(dial.value(), DijkstraReference(g, w, s));
  }
}

INSTANTIATE_TEST_SUITE_P(Weights, DialVsDijkstraTest,
                         ::testing::Values(1, 2, 5, 13, 255));

TEST(DialSsspTest, DisconnectedStaysMinusOne) {
  const Csr g = testing::MakeDisconnectedGraph(12);
  const EdgeWeights w = GenerateWeights(g, 3, 1);
  auto dial = DialSssp(g, w, 0);
  ASSERT_TRUE(dial.ok());
  EXPECT_EQ(dial.value()[10], -1);
  EXPECT_EQ(dial.value()[11], -1);
  EXPECT_GE(dial.value()[9], 9);  // at least 9 unit-weight hops
}

TEST(DialSsspTest, RejectsBadInput) {
  const Csr g = testing::MakeSmallGraph();
  EdgeWeights w = GenerateWeights(g, 3, 1);
  EXPECT_FALSE(DialSssp(g, w, 100).ok());
  w.weights.pop_back();
  EXPECT_FALSE(DialSssp(g, w, 0).ok());
  EdgeWeights zero = GenerateWeights(g, 3, 1);
  zero.weights[0] = 0;
  EXPECT_FALSE(DialSssp(g, zero, 0).ok());
}

TEST(ConcurrentWeightedTest, MatchesPerSourceAndChargesCpu) {
  const Csr g = testing::MakeRmatGraph(7, 8);
  const EdgeWeights w = GenerateWeights(g, 4, 9);
  const std::vector<VertexId> sources = {0, 5, 9, 70};
  baselines::CpuCostModel cpu;
  auto result = ConcurrentWeightedSssp(g, w, sources, &cpu);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result.value().size(), sources.size());
  for (size_t j = 0; j < sources.size(); ++j) {
    EXPECT_EQ(result.value()[j], DijkstraReference(g, w, sources[j]));
  }
  EXPECT_GT(cpu.Seconds(), 0.0);
  EXPECT_FALSE(ConcurrentWeightedSssp(g, w, {}, &cpu).ok());
  EXPECT_FALSE(ConcurrentWeightedSssp(g, w, sources, nullptr).ok());
}

}  // namespace
}  // namespace ibfs::apps
