// Tests of the live-telemetry layer (obs/live.h, obs/slo.h): rolling
// window rotation and decay against a fake clock, windowed-histogram
// percentiles, SLO spec parsing and multi-window burn-rate alerting
// (fire/clear transitions, empty-window behaviour), the access log's
// JSONL rows, the Prometheus text renderer, atomic file publication, and
// the periodic exporter. Every suite name starts with "Live" or "Slo" so
// the tsan preset's test filter picks all of it up. No test here reads a
// real clock: timestamps are explicit, which is the module's contract.
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "obs/json.h"
#include "obs/live.h"
#include "obs/metrics.h"
#include "obs/slo.h"

namespace ibfs::obs {
namespace {

// ------------------------------------------------------ rolling window --

TEST(LiveWindow, SumsWithinWindow) {
  RollingWindow w(10.0, 10);
  w.Add(0.0, 1.0);
  w.Add(0.5, 2.0);
  w.Add(4.0, 3.0);
  EXPECT_DOUBLE_EQ(w.Sum(4.0), 6.0);
  EXPECT_DOUBLE_EQ(w.RatePerSec(4.0), 0.6);
}

TEST(LiveWindow, OldSamplesAgeOut) {
  RollingWindow w(10.0, 10);
  w.Add(0.0, 5.0);
  w.Add(9.0, 1.0);
  // At t=9 both samples are inside the 10 s window.
  EXPECT_DOUBLE_EQ(w.Sum(9.0), 6.0);
  // At t=15 the t=0 sample has expired; the t=9 sample remains.
  EXPECT_DOUBLE_EQ(w.Sum(15.0), 1.0);
  // Far in the future everything has aged out.
  EXPECT_DOUBLE_EQ(w.Sum(100.0), 0.0);
}

TEST(LiveWindow, RotationBoundaryReusesSlots) {
  // 4 slots of 1 s each: writing more epochs than slots must recycle the
  // ring without double counting.
  RollingWindow w(4.0, 4);
  for (int t = 0; t < 12; ++t) {
    w.Add(static_cast<double>(t), 1.0);
  }
  // At t=11 the window [7, 11] holds the samples from t=8..11 (the t=7
  // slot was recycled by the t=11 write).
  EXPECT_DOUBLE_EQ(w.Sum(11.0), 4.0);
}

TEST(LiveWindow, StaleReadUsesLatestTime) {
  // Reads never travel back in time: a reader with a slightly older
  // timestamp sees the window as of the newest write.
  RollingWindow w(10.0, 10);
  w.Add(20.0, 1.0);
  EXPECT_DOUBLE_EQ(w.Sum(0.0), 1.0);
}

TEST(LiveWindow, StaleWriteInsideWindowLandsInItsOwnSlot) {
  // 10 slots of 1 s. A write 5 s behind the newest one is still inside
  // the window: it must keep its own timestamp (own slot) so it ages out
  // 5 s earlier than the newest sample, not be counted at the wrong time.
  RollingWindow w(10.0, 10);
  w.Add(50.0, 1.0);
  w.Add(45.0, 2.0);
  EXPECT_DOUBLE_EQ(w.Sum(50.0), 3.0);
  // At t=56 the t=45 sample has expired; the t=50 one remains.
  EXPECT_DOUBLE_EQ(w.Sum(56.0), 1.0);
}

TEST(LiveWindow, OverStaleWriteDoesNotDestroyTheNewestSlot) {
  // Regression: epochs 50 and 10 map to the same ring index (both mod 10
  // = 0). Before the write-side clamp, the t=10 write reset that slot and
  // stamped it with the ancient epoch — silently destroying the newest
  // sample AND losing its own. Now a write older than the window is
  // counted at the latest time already seen.
  RollingWindow w(10.0, 10);
  w.Add(50.0, 1.0);
  w.Add(10.0, 2.0);
  EXPECT_DOUBLE_EQ(w.Sum(50.0), 3.0);
  // The clamped sample expires with the newest slot, not before.
  EXPECT_DOUBLE_EQ(w.Sum(59.0), 3.0);
  EXPECT_DOUBLE_EQ(w.Sum(100.0), 0.0);
}

TEST(LiveWindow, EmptyWindowIsZero) {
  RollingWindow w(5.0);
  EXPECT_DOUBLE_EQ(w.Sum(123.0), 0.0);
  EXPECT_DOUBLE_EQ(w.RatePerSec(123.0), 0.0);
}

// --------------------------------------------------- rolling histogram --

TEST(LiveHistogram, PercentileOverRecentSamples) {
  const std::vector<double> bounds = PowerOfTwoBounds(1.0, 10);
  RollingHistogram h(10.0, bounds, 10);
  for (int i = 0; i < 100; ++i) {
    h.Observe(1.0, 2.0);
  }
  EXPECT_EQ(h.Count(1.0), 100);
  // All samples sit in one bucket; the estimate stays within it.
  const double p99 = h.Percentile(1.0, 0.99);
  EXPECT_GE(p99, 1.0);
  EXPECT_LE(p99, 2.0);
}

TEST(LiveHistogram, EmptyWindowPercentileIsZero) {
  const std::vector<double> bounds = PowerOfTwoBounds(1.0, 10);
  RollingHistogram h(10.0, bounds, 10);
  EXPECT_EQ(h.Count(0.0), 0);
  EXPECT_DOUBLE_EQ(h.Percentile(0.0, 0.5), 0.0);
  // Samples expire: observed at t=0, gone by t=30.
  h.Observe(0.0, 4.0);
  EXPECT_EQ(h.Count(0.0), 1);
  EXPECT_EQ(h.Count(30.0), 0);
  EXPECT_DOUBLE_EQ(h.Percentile(30.0, 0.5), 0.0);
}

TEST(LiveHistogram, MinMaxTrackWindow) {
  const std::vector<double> bounds = PowerOfTwoBounds(1.0, 10);
  RollingHistogram h(4.0, bounds, 4);
  h.Observe(0.0, 100.0);
  h.Observe(3.0, 2.0);
  EXPECT_DOUBLE_EQ(h.Max(3.0), 100.0);
  // After the t=0 slot expires only the small sample remains.
  EXPECT_DOUBLE_EQ(h.Max(6.0), 2.0);
  EXPECT_DOUBLE_EQ(h.Min(6.0), 2.0);
}

TEST(LiveHistogram, StaleReadSeesTheWindowAsOfTheNewestWrite) {
  const std::vector<double> bounds = PowerOfTwoBounds(1.0, 10);
  RollingHistogram h(10.0, bounds, 10);
  h.Observe(50.0, 4.0);
  // Readers never travel back in time: a stale now_s reads the window as
  // of the latest write, mirroring RollingWindow::Sum.
  EXPECT_EQ(h.Count(0.0), 1);
  EXPECT_DOUBLE_EQ(h.Max(0.0), 4.0);
  EXPECT_GT(h.Percentile(0.0, 0.5), 0.0);
}

TEST(LiveHistogram, OverStaleObserveDoesNotDestroyTheNewestSlot) {
  // Same regression as the RollingWindow twin: epochs 50 and 10 share a
  // ring index, so before the clamp an over-stale Observe zeroed the slot
  // holding the newest samples. Now it is counted at the latest time.
  const std::vector<double> bounds = PowerOfTwoBounds(1.0, 10);
  RollingHistogram h(10.0, bounds, 10);
  h.Observe(50.0, 4.0);
  h.Observe(10.0, 100.0);
  EXPECT_EQ(h.Count(50.0), 2);
  EXPECT_DOUBLE_EQ(h.Min(50.0), 4.0);
  EXPECT_DOUBLE_EQ(h.Max(50.0), 100.0);
  // Both expire together with the newest slot.
  EXPECT_EQ(h.Count(100.0), 0);
}

// ------------------------------------------------------------ LiveStats --

TEST(LiveStats, RatesAndErrorRatioDecay) {
  LiveStats stats(10.0, 10);
  for (int i = 0; i < 20; ++i) {
    stats.RecordQuery(1.0, 5.0, /*ok=*/i % 2 == 0);
  }
  EXPECT_EQ(stats.WindowCount(1.0), 20);
  EXPECT_DOUBLE_EQ(stats.QueryRate(1.0), 2.0);
  EXPECT_DOUBLE_EQ(stats.ErrorRatio(1.0), 0.5);
  // Everything decays out of the window.
  EXPECT_EQ(stats.WindowCount(60.0), 0);
  EXPECT_DOUBLE_EQ(stats.QueryRate(60.0), 0.0);
  EXPECT_DOUBLE_EQ(stats.ErrorRatio(60.0), 0.0);
}

TEST(LiveStats, PublishesGauges) {
  LiveStats stats(10.0, 10);
  stats.RecordQuery(0.0, 3.0, true);
  MetricsRegistry metrics;
  stats.PublishTo(&metrics, 0.0);
  EXPECT_GT(metrics.GetGauge("live.qps")->value(), 0.0);
  EXPECT_DOUBLE_EQ(metrics.GetGauge("live.error_ratio")->value(), 0.0);
  EXPECT_DOUBLE_EQ(metrics.GetGauge("live.window_seconds")->value(), 10.0);
  EXPECT_GT(metrics.GetGauge("live.p99_ms")->value(), 0.0);
  // Null registry is a no-op, not a crash.
  stats.PublishTo(nullptr, 0.0);
}

// ------------------------------------------------------------ SLO spec --

TEST(SloSpecTest, ParsesClassObjectiveTarget) {
  auto spec = SloSpec::Parse("interactive:250:0.99");
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();
  EXPECT_EQ(spec.value().class_name, "interactive");
  EXPECT_DOUBLE_EQ(spec.value().objective_ms, 250.0);
  EXPECT_DOUBLE_EQ(spec.value().target, 0.99);
  EXPECT_EQ(spec.value().ToString(), "interactive:250:0.99");
}

TEST(SloSpecTest, RejectsMalformedSpecs) {
  EXPECT_FALSE(SloSpec::Parse("").ok());
  EXPECT_FALSE(SloSpec::Parse("no-colons").ok());
  EXPECT_FALSE(SloSpec::Parse("a:b:c").ok());
  EXPECT_FALSE(SloSpec::Parse("x:100").ok());
  EXPECT_FALSE(SloSpec::Parse("x:100:0.5:extra").ok());
  EXPECT_FALSE(SloSpec::Parse("x:-5:0.9").ok());   // objective must be > 0
  EXPECT_FALSE(SloSpec::Parse("x:100:0").ok());    // target in (0,1)
  EXPECT_FALSE(SloSpec::Parse("x:100:1").ok());
  EXPECT_FALSE(SloSpec::Parse("x:100:1.5").ok());
}

// ------------------------------------------------------ SLO burn rates --

SloTracker::Options FastSloOptions() {
  SloTracker::Options options;
  options.fast_window_s = 60.0;
  options.slow_window_s = 600.0;
  options.burn_threshold = 2.0;
  return options;
}

TEST(SloBurnRate, EmptyWindowsBurnZero) {
  SloTracker tracker(SloSpec{}, FastSloOptions());
  EXPECT_DOUBLE_EQ(tracker.BurnRateFast(0.0), 0.0);
  EXPECT_DOUBLE_EQ(tracker.BurnRateSlow(0.0), 0.0);
  EXPECT_FALSE(tracker.alert_active());
  EXPECT_EQ(tracker.Evaluate(0.0), SloTransition::kNone);
}

TEST(SloBurnRate, GoodTrafficNeverFires) {
  SloSpec spec;
  spec.objective_ms = 100.0;
  spec.target = 0.9;  // error budget 0.1
  SloTracker tracker(spec, FastSloOptions());
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(tracker.Record(1.0, 10.0, true), SloTransition::kNone);
  }
  EXPECT_DOUBLE_EQ(tracker.BurnRateFast(1.0), 0.0);
  EXPECT_EQ(tracker.good(), 100);
  EXPECT_EQ(tracker.bad(), 0);
  EXPECT_FALSE(tracker.alert_active());
}

TEST(SloBurnRate, BurnIsBadFractionOverBudget) {
  SloSpec spec;
  spec.objective_ms = 100.0;
  spec.target = 0.9;  // budget 0.1
  SloTracker tracker(spec, FastSloOptions());
  // 20% of queries miss the objective -> burn = 0.2 / 0.1 = 2.
  for (int i = 0; i < 10; ++i) {
    tracker.Record(1.0, i < 2 ? 500.0 : 10.0, true);
  }
  EXPECT_NEAR(tracker.BurnRateFast(1.0), 2.0, 1e-9);
  EXPECT_NEAR(tracker.BurnRateSlow(1.0), 2.0, 1e-9);
}

TEST(SloBurnRate, FailuresCountAsBadRegardlessOfLatency) {
  SloSpec spec;
  spec.objective_ms = 100.0;
  spec.target = 0.5;
  SloTracker tracker(spec, FastSloOptions());
  tracker.Record(1.0, 1.0, /*ok=*/false);  // fast but failed
  EXPECT_EQ(tracker.bad(), 1);
  EXPECT_GT(tracker.BurnRateFast(1.0), 0.0);
}

TEST(SloAlert, FiresWhenBothWindowsBurnAndClearsOnFastRecovery) {
  SloSpec spec;
  spec.objective_ms = 100.0;
  spec.target = 0.9;
  SloTracker tracker(spec, FastSloOptions());
  // Sustained 100% bad traffic: burn 10 in both windows -> fires once.
  SloTransition fired = SloTransition::kNone;
  for (int i = 0; i < 10; ++i) {
    const SloTransition t = tracker.Record(1.0, 500.0, true);
    if (t == SloTransition::kFired) fired = t;
  }
  EXPECT_EQ(fired, SloTransition::kFired);
  EXPECT_TRUE(tracker.alert_active());
  EXPECT_EQ(tracker.alerts_fired(), 1);
  // More bad traffic while active does not re-fire.
  EXPECT_EQ(tracker.Record(2.0, 500.0, true), SloTransition::kNone);
  EXPECT_EQ(tracker.alerts_fired(), 1);
  // 90 s later the fast window (60 s) has forgotten the breach while the
  // slow window (600 s) still remembers: the alert clears on fast alone.
  EXPECT_EQ(tracker.Evaluate(95.0), SloTransition::kCleared);
  EXPECT_FALSE(tracker.alert_active());
  EXPECT_EQ(tracker.alerts_cleared(), 1);
  EXPECT_GT(tracker.BurnRateSlow(95.0), 2.0);
}

TEST(SloAlert, FastSpikeAloneDoesNotFire) {
  // A burst of bad queries inflates the fast burn, but with a long prior
  // history of good traffic the slow window stays below threshold.
  SloSpec spec;
  spec.objective_ms = 100.0;
  spec.target = 0.9;
  SloTracker tracker(spec, FastSloOptions());
  // 540 s of good traffic (one per second) fills the slow window.
  for (int t = 0; t < 540; ++t) {
    tracker.Record(static_cast<double>(t), 10.0, true);
  }
  // A 20-query bad burst at t=545: the fast window holds roughly one
  // good sample per second plus the burst (bad fraction ~0.27, burn
  // ~2.7) while the slow window dilutes it (20/560 / 0.1 = 0.36 < 2).
  SloTransition worst = SloTransition::kNone;
  for (int i = 0; i < 20; ++i) {
    const SloTransition t = tracker.Record(545.0, 500.0, true);
    if (t != SloTransition::kNone) worst = t;
  }
  EXPECT_EQ(worst, SloTransition::kNone);
  EXPECT_GT(tracker.BurnRateFast(545.0), 2.0);
  EXPECT_LT(tracker.BurnRateSlow(545.0), 2.0);
  EXPECT_FALSE(tracker.alert_active());
}

TEST(SloAlert, PublishesMetricSet) {
  SloSpec spec;
  spec.objective_ms = 100.0;
  spec.target = 0.9;
  SloTracker tracker(spec, FastSloOptions());
  for (int i = 0; i < 10; ++i) tracker.Record(1.0, 500.0, true);
  MetricsRegistry metrics;
  tracker.PublishTo(&metrics, 1.0);
  EXPECT_DOUBLE_EQ(metrics.GetGauge("slo.objective_ms")->value(), 100.0);
  EXPECT_DOUBLE_EQ(metrics.GetGauge("slo.target")->value(), 0.9);
  EXPECT_DOUBLE_EQ(metrics.GetGauge("slo.alert_active")->value(), 1.0);
  EXPECT_GT(metrics.GetGauge("slo.burn_rate_fast")->value(), 2.0);
  EXPECT_EQ(metrics.GetGauge("slo.bad")->value(), 10.0);
  EXPECT_EQ(metrics.GetGauge("slo.alerts_fired")->value(), 1.0);
}

// ----------------------------------------------------------- access log --

TEST(LiveAccessLog, WritesOneParseableJsonLinePerQuery) {
  std::ostringstream os;
  AccessLog log(&os);
  AccessRecord record;
  record.ts_s = 1.5;
  record.query_id = 42;
  record.source = 7;
  record.status = "OK";
  record.ok = true;
  record.cached = false;
  record.degraded = true;
  record.attempts = 2;
  record.batch_id = 3;
  record.group_index = 1;
  record.queue_ms = 0.5;
  record.total_ms = 4.25;
  record.reached = 100;
  log.Append(record);
  record.query_id = 43;
  log.Append(record);
  EXPECT_EQ(log.lines(), 2);

  std::istringstream lines(os.str());
  std::string line;
  int parsed = 0;
  while (std::getline(lines, line)) {
    auto doc = ParseJson(line);
    ASSERT_TRUE(doc.ok()) << doc.status().ToString() << ": " << line;
    const JsonValue* id = doc.value().Find("query_id");
    ASSERT_NE(id, nullptr);
    EXPECT_EQ(static_cast<int64_t>(id->number_value()), 42 + parsed);
    EXPECT_NE(doc.value().Find("total_ms"), nullptr);
    EXPECT_NE(doc.value().Find("degraded"), nullptr);
    ++parsed;
  }
  EXPECT_EQ(parsed, 2);
}

TEST(LiveAccessLog, OpenAppendsToFile) {
  const std::string path =
      ::testing::TempDir() + "/live_access_test.jsonl";
  std::remove(path.c_str());
  {
    auto log = AccessLog::Open(path);
    ASSERT_TRUE(log.ok()) << log.status().ToString();
    log.value()->Append(AccessRecord{});
  }
  {
    // Re-opening appends — an access log must survive restarts.
    auto log = AccessLog::Open(path);
    ASSERT_TRUE(log.ok());
    log.value()->Append(AccessRecord{});
  }
  std::ifstream in(path);
  int count = 0;
  std::string line;
  while (std::getline(in, line)) ++count;
  EXPECT_EQ(count, 2);
  std::remove(path.c_str());
}

// ----------------------------------------------------------- Prometheus --

TEST(LivePrometheus, NameMapping) {
  EXPECT_EQ(PrometheusName("service.completed"), "ibfs_service_completed");
  EXPECT_EQ(PrometheusName("latency.total_ms"), "ibfs_latency_total_ms");
  EXPECT_EQ(PrometheusName("slo.burn_rate_fast"), "ibfs_slo_burn_rate_fast");
}

TEST(LivePrometheus, RendersCountersGaugesHistograms) {
  MetricsRegistry metrics;
  metrics.GetCounter("service.completed")->Increment(5);
  metrics.GetGauge("live.qps")->Set(12.5);
  const std::vector<double> bounds = {1.0, 2.0};
  auto* h = metrics.GetHistogram("latency.total_ms", bounds);
  h->Observe(0.5);
  h->Observe(1.5);
  h->Observe(99.0);

  const std::string text = RenderPrometheusText(metrics);
  EXPECT_NE(text.find("# TYPE ibfs_service_completed_total counter\n"),
            std::string::npos);
  EXPECT_NE(text.find("ibfs_service_completed_total 5\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE ibfs_live_qps gauge\n"), std::string::npos);
  EXPECT_NE(text.find("ibfs_live_qps 12.5\n"), std::string::npos);
  // Histogram buckets are cumulative and end at +Inf with the total count.
  EXPECT_NE(text.find("ibfs_latency_total_ms_bucket{le=\"1\"} 1\n"),
            std::string::npos);
  EXPECT_NE(text.find("ibfs_latency_total_ms_bucket{le=\"2\"} 2\n"),
            std::string::npos);
  EXPECT_NE(text.find("ibfs_latency_total_ms_bucket{le=\"+Inf\"} 3\n"),
            std::string::npos);
  EXPECT_NE(text.find("ibfs_latency_total_ms_count 3\n"),
            std::string::npos);
}

// ------------------------------------------------------ atomic publish --

TEST(LiveExporterTest, WriteFileAtomicReplacesContent) {
  const std::string path = ::testing::TempDir() + "/live_atomic_test.txt";
  ASSERT_TRUE(WriteFileAtomic(path, "first").ok());
  ASSERT_TRUE(WriteFileAtomic(path, "second").ok());
  std::ifstream in(path);
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  EXPECT_EQ(content, "second");
  // No temp file left behind.
  std::ifstream tmp(path + ".tmp");
  EXPECT_FALSE(tmp.good());
  std::remove(path.c_str());
}

TEST(LiveExporterTest, WriteFileAtomicFailsOnBadDirectory) {
  EXPECT_FALSE(
      WriteFileAtomic("/nonexistent-dir-xyz/file.txt", "data").ok());
}

TEST(LiveExporterTest, WriteOncePublishesSnapshotAndProm) {
  MetricsRegistry metrics;
  metrics.GetCounter("service.completed")->Increment(3);
  LiveExporterOptions options;
  options.live_out = ::testing::TempDir() + "/live_snapshot_test.json";
  options.prom_out = ::testing::TempDir() + "/live_prom_test.txt";
  int tick_count = 0;
  LiveExporter exporter(options, &metrics,
                        [&tick_count](double) { ++tick_count; });
  ASSERT_TRUE(exporter.WriteOnce(1.0).ok());
  EXPECT_EQ(tick_count, 1);

  auto doc = ParseJsonFile(options.live_out);
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  const JsonValue* schema = doc.value().Find("schema");
  ASSERT_NE(schema, nullptr);
  EXPECT_EQ(schema->string_value(), "ibfs.live_snapshot");
  EXPECT_NE(doc.value().Find("metrics"), nullptr);

  std::ifstream prom(options.prom_out);
  std::string text((std::istreambuf_iterator<char>(prom)),
                   std::istreambuf_iterator<char>());
  EXPECT_NE(text.find("ibfs_service_completed_total 3"),
            std::string::npos);
  std::remove(options.live_out.c_str());
  std::remove(options.prom_out.c_str());
}

TEST(LiveExporterTest, StartStopTicksAtLeastOnce) {
  MetricsRegistry metrics;
  LiveExporterOptions options;
  options.interval_s = 0.01;
  options.prom_out = ::testing::TempDir() + "/live_loop_prom_test.txt";
  LiveExporter exporter(options, &metrics);
  exporter.Start();
  EXPECT_TRUE(exporter.running());
  exporter.Stop();  // final tick on stop
  EXPECT_FALSE(exporter.running());
  EXPECT_GE(exporter.ticks(), 1);
  std::ifstream prom(options.prom_out);
  EXPECT_TRUE(prom.good());
  std::remove(options.prom_out.c_str());
}

}  // namespace
}  // namespace ibfs::obs
