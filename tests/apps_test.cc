#include <numeric>

#include "apps/centrality.h"
#include "apps/reachability_index.h"
#include "baselines/reference_bfs.h"
#include "gtest/gtest.h"
#include "test_util.h"

namespace ibfs::apps {
namespace {

using graph::VertexId;

TEST(ReachabilityIndexTest, MatchesTruncatedReference) {
  const graph::Csr g = testing::MakeRmatGraph(7, 8);
  std::vector<VertexId> sources(32);
  std::iota(sources.begin(), sources.end(), 0);
  auto index = KHopReachabilityIndex::Build(g, sources, 3, {});
  ASSERT_TRUE(index.ok());
  const auto& idx = index.value();
  EXPECT_EQ(idx.source_count(), 32);
  EXPECT_EQ(idx.k(), 3);
  EXPECT_GT(idx.build_seconds(), 0.0);
  EXPECT_GT(idx.IndexBytes(), 0);
  for (int64_t i = 0; i < idx.source_count(); ++i) {
    // Recover which source this row belongs to via HopsTo(s) == 0.
    VertexId s = graph::kInvalidVertex;
    for (int64_t v = 0; v < g.vertex_count(); ++v) {
      if (idx.HopsTo(i, static_cast<VertexId>(v)) == 0) {
        s = static_cast<VertexId>(v);
        break;
      }
    }
    ASSERT_NE(s, graph::kInvalidVertex);
    const auto ref = baselines::ReferenceBfs(g, s, 3);
    for (int64_t v = 0; v < g.vertex_count(); ++v) {
      const auto vid = static_cast<VertexId>(v);
      EXPECT_EQ(idx.Reachable(i, vid), ref[v] >= 0);
      EXPECT_EQ(idx.HopsTo(i, vid), ref[v]);
    }
  }
}

TEST(ReachabilityIndexTest, RejectsBadK) {
  const graph::Csr g = testing::MakeSmallGraph();
  const std::vector<VertexId> sources = {0};
  EXPECT_FALSE(KHopReachabilityIndex::Build(g, sources, 0, {}).ok());
  EXPECT_FALSE(KHopReachabilityIndex::Build(g, sources, 300, {}).ok());
}

TEST(ReachabilityIndexTest, UnreachableBeyondKHops) {
  const graph::Csr g = testing::MakeDisconnectedGraph(12);  // a chain
  const std::vector<VertexId> sources = {0};
  auto index = KHopReachabilityIndex::Build(g, sources, 2, {});
  ASSERT_TRUE(index.ok());
  EXPECT_TRUE(index.value().Reachable(0, 2));
  EXPECT_FALSE(index.value().Reachable(0, 3));
  EXPECT_FALSE(index.value().Reachable(0, 11));
}


TEST(ReachabilityIndexTest, ReachableWithinUsesIndexAndFallback) {
  const graph::Csr g = testing::MakeDisconnectedGraph(12);  // chain 0..9
  const std::vector<VertexId> sources = {0};
  auto index = KHopReachabilityIndex::Build(g, sources, 3, {});
  ASSERT_TRUE(index.ok());
  const auto& idx = index.value();
  // Within the horizon: answered from the index.
  EXPECT_TRUE(idx.ReachableWithin(g, 0, 3, 3));
  EXPECT_FALSE(idx.ReachableWithin(g, 0, 4, 3));
  EXPECT_TRUE(idx.ReachableWithin(g, 0, 2, 2));
  EXPECT_FALSE(idx.ReachableWithin(g, 0, 3, 2));
  // Beyond the horizon: online fallback BFS answers correctly.
  EXPECT_TRUE(idx.ReachableWithin(g, 0, 7, 7));
  EXPECT_FALSE(idx.ReachableWithin(g, 0, 8, 7));
  EXPECT_FALSE(idx.ReachableWithin(g, 0, 11, 100));  // island
  // Degenerate limit: only the source itself.
  EXPECT_TRUE(idx.ReachableWithin(g, 0, 0, 0));
  EXPECT_FALSE(idx.ReachableWithin(g, 0, 1, 0));
}

TEST(ClosenessTest, MatchesDirectComputation) {
  const graph::Csr g = testing::MakeSmallGraph();
  std::vector<VertexId> sources(9);
  std::iota(sources.begin(), sources.end(), 0);
  double seconds = 0.0;
  auto result = ClosenessCentrality(g, sources, {}, &seconds);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(seconds, 0.0);
  const auto& cc = result.value();
  ASSERT_EQ(cc.size(), 9u);
  for (size_t s = 0; s < 9; ++s) {
    const auto ref = baselines::ReferenceBfs(g, static_cast<VertexId>(s));
    int64_t reached = 0;
    int64_t sum = 0;
    for (int32_t d : ref) {
      if (d >= 0) {
        ++reached;
        sum += d;
      }
    }
    const double r1 = static_cast<double>(reached) - 1.0;
    const double expected = (r1 / 8.0) * (r1 / static_cast<double>(sum));
    EXPECT_NEAR(cc[s], expected, 1e-12) << "source " << s;
  }
}

TEST(ClosenessTest, CentralVertexScoresHigher) {
  // On a chain, the middle vertex is closer to everything than the end.
  const graph::Csr g = testing::MakeDisconnectedGraph(12);
  const std::vector<VertexId> sources = {0, 5};
  auto result = ClosenessCentrality(g, sources, {});
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result.value()[1], result.value()[0]);
}

TEST(BetweennessTest, ChainInteriorDominates) {
  // Chain 0-1-2-...-9 (plus an island): interior vertices carry all paths.
  const graph::Csr g = testing::MakeDisconnectedGraph(12);
  std::vector<VertexId> sources(10);
  std::iota(sources.begin(), sources.end(), 0);
  const auto bc = BetweennessCentrality(g, sources);
  EXPECT_EQ(bc[0], 0.0);   // endpoints lie on no interior path
  EXPECT_EQ(bc[9], 0.0);
  EXPECT_GT(bc[4], bc[1]);  // middle beats near-end
  EXPECT_GT(bc[5], 0.0);
  EXPECT_EQ(bc[10], 0.0);  // island untouched
}

TEST(BetweennessTest, SymmetricStarCenter) {
  // Star: center 0 connected to 1..4. All shortest paths go through 0.
  graph::GraphBuilder builder(5);
  for (int leaf = 1; leaf < 5; ++leaf) {
    builder.AddUndirectedEdge(0, static_cast<VertexId>(leaf));
  }
  auto g = std::move(builder).Build();
  ASSERT_TRUE(g.ok());
  std::vector<VertexId> sources(5);
  std::iota(sources.begin(), sources.end(), 0);
  const auto bc = BetweennessCentrality(g.value(), sources);
  // 4 leaves, 3 other leaves each, ordered pairs: 4*3 = 12 paths via center.
  EXPECT_NEAR(bc[0], 12.0, 1e-9);
  for (int leaf = 1; leaf < 5; ++leaf) EXPECT_NEAR(bc[leaf], 0.0, 1e-12);
}

}  // namespace
}  // namespace ibfs::apps
