#include <cmath>

#include "gen/benchmarks.h"
#include "gen/rmat.h"
#include "gen/uniform.h"
#include "graph/degree_stats.h"
#include "gtest/gtest.h"

namespace ibfs::gen {
namespace {

TEST(RmatTest, DeterministicForSeed) {
  RmatParams params;
  params.scale = 8;
  params.edge_factor = 8;
  auto a = GenerateRmat(params);
  auto b = GenerateRmat(params);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a.value().edge_count(), b.value().edge_count());
  for (int64_t v = 0; v < a.value().vertex_count(); ++v) {
    const auto na = a.value().OutNeighbors(static_cast<graph::VertexId>(v));
    const auto nb = b.value().OutNeighbors(static_cast<graph::VertexId>(v));
    ASSERT_EQ(na.size(), nb.size());
    for (size_t i = 0; i < na.size(); ++i) ASSERT_EQ(na[i], nb[i]);
  }
}

TEST(RmatTest, DifferentSeedsProduceDifferentGraphs) {
  RmatParams params;
  params.scale = 8;
  RmatParams params2 = params;
  params2.seed = 99;
  auto a = GenerateRmat(params);
  auto b = GenerateRmat(params2);
  ASSERT_TRUE(a.ok() && b.ok());
  bool any_diff = a.value().edge_count() != b.value().edge_count();
  for (int64_t v = 0; !any_diff && v < a.value().vertex_count(); ++v) {
    any_diff |= a.value().OutDegree(static_cast<graph::VertexId>(v)) !=
                b.value().OutDegree(static_cast<graph::VertexId>(v));
  }
  EXPECT_TRUE(any_diff);
}

TEST(RmatTest, SizeMatchesScaleAndFactor) {
  RmatParams params;
  params.scale = 9;
  params.edge_factor = 4;
  auto g = GenerateRmat(params);
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g.value().vertex_count(), 512);
  // Undirected doubling minus dedup losses: between 1x and 2x m.
  EXPECT_GT(g.value().edge_count(), 512 * 4 / 2);
  EXPECT_LE(g.value().edge_count(), 512 * 4 * 2);
}

TEST(RmatTest, PowerLawHasHubs) {
  RmatParams params;
  params.scale = 10;
  params.edge_factor = 16;
  auto g = GenerateRmat(params);
  ASSERT_TRUE(g.ok());
  const auto stats = graph::ComputeDegreeStats(g.value());
  // Skewed distribution: max degree far above average.
  EXPECT_GT(static_cast<double>(stats.max_outdegree),
            8.0 * stats.avg_outdegree);
}

TEST(RmatTest, RejectsBadParameters) {
  RmatParams params;
  params.scale = 0;
  EXPECT_FALSE(GenerateRmat(params).ok());
  params.scale = 8;
  params.edge_factor = 0;
  EXPECT_FALSE(GenerateRmat(params).ok());
  params.edge_factor = 8;
  params.a = 0.9;
  params.b = 0.9;
  EXPECT_FALSE(GenerateRmat(params).ok());
}

TEST(UniformTest, RoughlyUniformDegrees) {
  UniformParams params;
  params.vertex_count = 1024;
  params.outdegree = 8;
  auto g = GenerateUniform(params);
  ASSERT_TRUE(g.ok());
  const auto stats = graph::ComputeDegreeStats(g.value());
  // Each vertex draws 8 out + expects ~8 in (undirected doubling).
  EXPECT_NEAR(stats.avg_outdegree, 16.0, 2.0);
  // No power-law hubs: max degree within a small factor of the average.
  EXPECT_LT(static_cast<double>(stats.max_outdegree),
            4.0 * stats.avg_outdegree);
}

TEST(UniformTest, DeterministicForSeed) {
  UniformParams params;
  params.vertex_count = 128;
  auto a = GenerateUniform(params);
  auto b = GenerateUniform(params);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a.value().edge_count(), b.value().edge_count());
}

TEST(UniformTest, RejectsBadParameters) {
  UniformParams params;
  params.vertex_count = 0;
  EXPECT_FALSE(GenerateUniform(params).ok());
  params.vertex_count = 8;
  params.outdegree = -1;
  EXPECT_FALSE(GenerateUniform(params).ok());
}

TEST(BenchmarksTest, ThirteenPresetsWithPaperNames) {
  const auto& all = AllBenchmarks();
  ASSERT_EQ(all.size(), 13u);
  const char* expected[] = {"FB", "FR", "HW",  "KG0", "KG1", "KG2", "LJ",
                            "OR", "PK", "RD",  "RM",  "TW",  "WK"};
  for (size_t i = 0; i < all.size(); ++i) {
    EXPECT_EQ(all[i].name, expected[i]);
  }
}

TEST(BenchmarksTest, LookupByName) {
  auto id = BenchmarkByName("KG0");
  ASSERT_TRUE(id.has_value());
  EXPECT_EQ(*id, BenchmarkId::kKG0);
  EXPECT_FALSE(BenchmarkByName("nope").has_value());
}

TEST(BenchmarksTest, RdIsUniformOthersSkewed) {
  EXPECT_TRUE(GetBenchmark(BenchmarkId::kRD).uniform);
  EXPECT_FALSE(GetBenchmark(BenchmarkId::kTW).uniform);
}

TEST(BenchmarksTest, GeneratesEveryPreset) {
  for (const auto& spec : AllBenchmarks()) {
    auto g = GenerateBenchmark(spec.id, /*scale_delta=*/-2);
    ASSERT_TRUE(g.ok()) << spec.name << ": " << g.status().ToString();
    EXPECT_EQ(g.value().vertex_count(), int64_t{1}
                                            << (spec.base_scale - 2))
        << spec.name;
    EXPECT_GT(g.value().edge_count(), 0) << spec.name;
  }
}

TEST(BenchmarksTest, Kg0HasHighestAverageDegree) {
  // The paper's KG0 is the high-average-outdegree benchmark.
  double kg0_avg = 0.0;
  double max_other = 0.0;
  for (const auto& spec : AllBenchmarks()) {
    auto g = GenerateBenchmark(spec.id, 0);
    ASSERT_TRUE(g.ok());
    const double avg = static_cast<double>(g.value().edge_count()) /
                       static_cast<double>(g.value().vertex_count());
    if (spec.id == BenchmarkId::kKG0) {
      kg0_avg = avg;
    } else {
      max_other = std::max(max_other, avg);
    }
  }
  EXPECT_GT(kg0_avg, max_other);
}

TEST(BenchmarksTest, ScaleDeltaRejectsDegenerate) {
  EXPECT_FALSE(GenerateBenchmark(BenchmarkId::kKG0, -20).ok());
}

}  // namespace
}  // namespace ibfs::gen
