// Tests of the distributed serving fleet: consistent-hash ring properties
// (seeded determinism, bounded imbalance, minimal disruption on shard
// loss and join), front-door checksum parity with a single BfsService at
// every shard count and replication factor, scatter-gather merge
// determinism, health/failover behavior with degrade->recover lifecycle,
// the CPU-fallback path, cache behavior across a failover, elastic joins
// with targeted cache warmup, hedged reads (fake-clock state machine and
// live breaker-driven hedging), replica mismatch quarantine, the weighted
// rebalancing controller, and the chaos harness + fleet-report validator.
// Suite names start with "Fleet", "HashRing", or "Hedge" so the tsan
// preset's filter picks them up.
#include <algorithm>
#include <cstdint>
#include <map>
#include <sstream>
#include <vector>

#include <gtest/gtest.h>

#include "baselines/reference_bfs.h"
#include "fleet/fleet.h"
#include "fleet/fleet_workload.h"
#include "graph/components.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/validate.h"
#include "service/service.h"
#include "service/workload.h"
#include "test_util.h"
#include "util/checksum.h"
#include "util/hash_ring.h"

namespace ibfs::fleet {
namespace {

using ::ibfs::testing::MakeRmatGraph;

// --------------------------------------------------------------- hash ring --

TEST(HashRingTest, SeededPlacementIsDeterministic) {
  HashRing::Options options;
  options.vnodes = 64;
  options.seed = 7;
  const HashRing a(4, options);
  const HashRing b(4, options);
  for (uint64_t key = 0; key < 4096; ++key) {
    ASSERT_EQ(a.ShardFor(key), b.ShardFor(key)) << "key " << key;
  }
}

TEST(HashRingTest, DifferentSeedsRouteDifferently) {
  HashRing::Options options;
  options.vnodes = 64;
  options.seed = 7;
  const HashRing a(4, options);
  options.seed = 8;
  const HashRing b(4, options);
  int moved = 0;
  for (uint64_t key = 0; key < 4096; ++key) {
    if (a.ShardFor(key) != b.ShardFor(key)) ++moved;
  }
  EXPECT_GT(moved, 0);
}

TEST(HashRingTest, KeyImbalanceStaysUnder15PercentAt128Vnodes) {
  HashRing::Options options;
  options.vnodes = 128;
  options.seed = 2016;
  const int shards = 4;
  const HashRing ring(shards, options);
  std::vector<int64_t> counts(shards, 0);
  const int64_t keys = 100000;
  for (int64_t key = 0; key < keys; ++key) {
    const int shard = ring.ShardFor(static_cast<uint64_t>(key));
    ASSERT_GE(shard, 0);
    ASSERT_LT(shard, shards);
    ++counts[static_cast<size_t>(shard)];
  }
  const double mean =
      static_cast<double>(keys) / static_cast<double>(shards);
  for (int s = 0; s < shards; ++s) {
    const double share = static_cast<double>(counts[static_cast<size_t>(s)]);
    EXPECT_LE(share / mean, 1.15)
        << "shard " << s << " owns " << share << " of " << keys;
    EXPECT_GE(share / mean, 0.85)
        << "shard " << s << " owns " << share << " of " << keys;
  }
}

TEST(HashRingTest, RemovalOnlyMovesKeysOfTheDeadShard) {
  HashRing::Options options;
  options.vnodes = 128;
  options.seed = 2016;
  HashRing ring(4, options);
  const int dead = 2;
  std::map<uint64_t, int> before;
  for (uint64_t key = 0; key < 8192; ++key) {
    before[key] = ring.ShardFor(key);
  }
  ASSERT_TRUE(ring.Remove(dead));
  EXPECT_FALSE(ring.Remove(dead));  // already gone
  int64_t remapped = 0;
  for (const auto& [key, owner] : before) {
    const int now = ring.ShardFor(key);
    ASSERT_NE(now, dead);
    if (owner == dead) {
      ++remapped;  // must land on some survivor
    } else {
      // Minimal disruption: survivors keep every key they already owned.
      EXPECT_EQ(now, owner) << "key " << key << " moved needlessly";
    }
  }
  EXPECT_GT(remapped, 0);
}

TEST(HashRingTest, WeightsBiasOwnership) {
  HashRing::Options options;
  options.vnodes = 128;
  options.seed = 3;
  options.weights = {1, 3};
  const HashRing ring(2, options);
  int64_t heavy = 0;
  const int64_t keys = 20000;
  for (int64_t key = 0; key < keys; ++key) {
    if (ring.ShardFor(static_cast<uint64_t>(key)) == 1) ++heavy;
  }
  // Shard 1 carries 3/4 of the virtual nodes; its key share should be
  // well above an even split.
  EXPECT_GT(static_cast<double>(heavy) / static_cast<double>(keys), 0.6);
}

TEST(HashRingTest, EmptyRingReturnsNoOwner) {
  HashRing::Options options;
  options.vnodes = 8;
  HashRing ring(2, options);
  EXPECT_TRUE(ring.Remove(0));
  EXPECT_TRUE(ring.Remove(1));
  EXPECT_TRUE(ring.empty());
  EXPECT_EQ(ring.ShardFor(123), -1);
}

// ---------------------------------------------------- hash ring elasticity --

TEST(HashRingAddTest, AddOnlyStealsKeysFromSurvivors) {
  HashRing::Options options;
  options.vnodes = 128;
  options.seed = 2016;
  HashRing ring(3, options);
  std::map<uint64_t, int> before;
  for (uint64_t key = 0; key < 8192; ++key) before[key] = ring.ShardFor(key);
  ASSERT_TRUE(ring.Add(3));
  EXPECT_EQ(ring.active_count(), 4);
  int64_t stolen = 0;
  for (const auto& [key, owner] : before) {
    const int now = ring.ShardFor(key);
    if (now != owner) {
      // Minimal disruption: a key may only move to the joiner, never
      // between survivors.
      EXPECT_EQ(now, 3) << "key " << key << " moved between survivors";
      ++stolen;
    }
  }
  // The joiner carries ~1/4 of the key space at equal weight.
  EXPECT_GT(stolen, 0);
  EXPECT_LT(stolen, 8192 / 2);
}

TEST(HashRingAddTest, GrownRingEqualsRingBuiltAtFullSize) {
  HashRing::Options options;
  options.vnodes = 64;
  options.seed = 7;
  HashRing grown(3, options);
  ASSERT_TRUE(grown.Add(3));
  const HashRing direct(4, options);
  // Placement is a pure function of (seed, shard, vnode): growing 3 -> 4
  // reproduces the ring that was born with 4 shards.
  for (uint64_t key = 0; key < 8192; ++key) {
    ASSERT_EQ(grown.ShardFor(key), direct.ShardFor(key)) << "key " << key;
  }
}

TEST(HashRingAddTest, ReAddAfterRemoveRestoresOriginalRouting) {
  HashRing::Options options;
  options.vnodes = 64;
  options.seed = 11;
  HashRing ring(4, options);
  std::map<uint64_t, int> before;
  for (uint64_t key = 0; key < 8192; ++key) before[key] = ring.ShardFor(key);
  ASSERT_TRUE(ring.Remove(2));
  ASSERT_TRUE(ring.Add(2));
  for (const auto& [key, owner] : before) {
    ASSERT_EQ(ring.ShardFor(key), owner)
        << "key " << key << " did not round-trip Remove+Add";
  }
}

TEST(HashRingAddTest, RejectsActiveGapAndBadWeightIds) {
  HashRing::Options options;
  options.vnodes = 8;
  HashRing ring(2, options);
  EXPECT_FALSE(ring.Add(0));      // already active
  EXPECT_FALSE(ring.Add(4));      // would leave a gap (2 is the next id)
  EXPECT_FALSE(ring.Add(2, 0));   // weight < 1
  EXPECT_FALSE(ring.Add(-1));
  EXPECT_TRUE(ring.Add(2, 2));    // next id, weighted join
  EXPECT_EQ(ring.weight(2), 2);
  EXPECT_EQ(ring.shard_count(), 3);
}

TEST(HashRingAddTest, WeightGrowthOnlyPullsKeysTowardTheShard) {
  HashRing::Options options;
  options.vnodes = 128;
  options.seed = 5;
  HashRing ring(3, options);
  std::map<uint64_t, int> before;
  for (uint64_t key = 0; key < 8192; ++key) before[key] = ring.ShardFor(key);
  ASSERT_TRUE(ring.SetWeight(0, 2));
  int64_t moved = 0;
  for (const auto& [key, owner] : before) {
    const int now = ring.ShardFor(key);
    if (now != owner) {
      // Growing shard 0's weight adds only shard-0 points, so keys can
      // only move toward shard 0.
      EXPECT_EQ(now, 0) << "key " << key;
      EXPECT_NE(owner, 0) << "key " << key;
      ++moved;
    }
  }
  // The remap is bounded by the weight-share change: shard 0 went from
  // 1/3 to 2/4 of the ring, so roughly 1/6 of the keys move — never more
  // than the new share.
  EXPECT_GT(moved, 0);
  EXPECT_LT(static_cast<double>(moved) / 8192.0, 0.5 + 0.05);
  // Shrinking back restores the original routing (pure placement).
  ASSERT_TRUE(ring.SetWeight(0, 1));
  for (const auto& [key, owner] : before) {
    ASSERT_EQ(ring.ShardFor(key), owner) << "key " << key;
  }
}

TEST(HashRingAddTest, ReplicaSetsAreDistinctAndAlignWithFailover) {
  HashRing::Options options;
  options.vnodes = 64;
  options.seed = 13;
  HashRing ring(4, options);
  for (uint64_t key = 0; key < 2048; ++key) {
    const std::vector<int> replicas = ring.ReplicasFor(key, 3);
    ASSERT_EQ(replicas.size(), 3u);
    ASSERT_EQ(replicas[0], ring.ShardFor(key));
    EXPECT_NE(replicas[0], replicas[1]);
    EXPECT_NE(replicas[1], replicas[2]);
    EXPECT_NE(replicas[0], replicas[2]);
    // Replica 1 is exactly where the key falls over if the primary dies.
    HashRing failed = ring;
    ASSERT_TRUE(failed.Remove(replicas[0]));
    ASSERT_EQ(failed.ShardFor(key), replicas[1]) << "key " << key;
  }
  // More replicas than shards: the walk returns every distinct shard.
  EXPECT_EQ(ring.ReplicasFor(1, 16).size(), 4u);
}

TEST(HashRingAddTest, ReplicasForCapsAtActiveShardCountAfterRemovals) {
  HashRing::Options options;
  options.vnodes = 32;
  options.seed = 7;
  HashRing ring(5, options);
  ASSERT_TRUE(ring.Remove(1));
  ASSERT_TRUE(ring.Remove(3));
  for (uint64_t key = 0; key < 256; ++key) {
    // Asking for more replicas than the ring has active shards returns
    // every distinct active shard once — never a removed id, never a
    // duplicate padding the set out to the requested size.
    const std::vector<int> replicas = ring.ReplicasFor(key, 8);
    ASSERT_EQ(replicas.size(), 3u);
    EXPECT_EQ(replicas[0], ring.ShardFor(key));
    std::vector<int> sorted = replicas;
    std::sort(sorted.begin(), sorted.end());
    EXPECT_EQ(sorted, (std::vector<int>{0, 2, 4}));
  }
  EXPECT_TRUE(ring.ReplicasFor(1, 0).empty());
  HashRing empty(0, options);
  EXPECT_TRUE(empty.ReplicasFor(1, 3).empty());
}

// ------------------------------------------------------- stats imbalance --

TEST(FleetImbalanceTest, UnweightedReducesToMaxOverMean) {
  FleetStats stats;
  stats.routed = {10, 20, 30};
  stats.health.assign(3, ShardHealth::kHealthy);
  EXPECT_NEAR(stats.Imbalance(), 1.5, 1e-12);  // 30 / mean(20)
}

TEST(FleetImbalanceTest, ProportionalWeightedRoutingScoresOne) {
  FleetStats stats;
  stats.routed = {300, 100, 100, 100};
  stats.health.assign(4, ShardHealth::kHealthy);
  stats.weight = {3, 1, 1, 1};
  stats.weight_share = {0.5, 1.0 / 6, 1.0 / 6, 1.0 / 6};
  EXPECT_NEAR(stats.Imbalance(), 1.0, 1e-12);
}

TEST(FleetImbalanceTest, DownShardDoesNotBiasTheWeightedScore) {
  // Regression: weight_share spans the whole fleet (down shards included)
  // while the load fractions only see live traffic. Without renormalizing
  // the shares over live shards, this proportionally-routed fleet scored
  // 1 / (1 - dead_share) = 2.0 instead of 1.0.
  FleetStats stats;
  stats.routed = {600, 200, 200, 0};
  stats.health = {ShardHealth::kHealthy, ShardHealth::kHealthy,
                  ShardHealth::kHealthy, ShardHealth::kDown};
  stats.weight_share = {0.3, 0.1, 0.1, 0.5};
  EXPECT_NEAR(stats.Imbalance(), 1.0, 1e-12);
}

TEST(FleetImbalanceTest, MixedWeightInfoUsesOneNormalization) {
  // Shard 2 predates weight tracking (share 0 -> equal-share fallback).
  // The fallback 1/live lives on a different scale than the ring shares,
  // so all three are renormalized by their sum (0.5 + 0.25 + 1/3); routing
  // exactly by the renormalized shares must still score 1.0.
  FleetStats stats;
  stats.health.assign(3, ShardHealth::kHealthy);
  stats.weight_share = {0.5, 0.25, 0.0};
  const double fallback = 1.0 / 3.0;
  const double sum = 0.5 + 0.25 + fallback;
  stats.routed = {static_cast<int64_t>(1e6 * 0.5 / sum),
                  static_cast<int64_t>(1e6 * 0.25 / sum),
                  static_cast<int64_t>(1e6 * fallback / sum)};
  EXPECT_NEAR(stats.Imbalance(), 1.0, 1e-3);
}

TEST(FleetImbalanceTest, NoLiveTrafficIsZero) {
  FleetStats stats;
  stats.routed = {0, 0};
  stats.health.assign(2, ShardHealth::kHealthy);
  EXPECT_EQ(stats.Imbalance(), 0.0);
  stats.routed = {5, 9};
  stats.health.assign(2, ShardHealth::kDown);
  EXPECT_EQ(stats.Imbalance(), 0.0);
}

// --------------------------------------------------- hedge state machine --

using Leg = HedgeStateMachine::Leg;
using Action = HedgeStateMachine::Action;

TEST(HedgeStateMachineTest, PrimaryWinsBeforeDelayWithoutFiring) {
  HedgeStateMachine machine(5.0, false);
  EXPECT_EQ(machine.Step(0.0, Leg::kPending, Leg::kPending), Action::kWait);
  EXPECT_EQ(machine.Step(2.0, Leg::kPending, Leg::kPending), Action::kWait);
  EXPECT_EQ(machine.Step(3.0, Leg::kOk, Leg::kPending),
            Action::kServePrimary);
  EXPECT_FALSE(machine.hedge_fired());
}

TEST(HedgeStateMachineTest, FiresOnceAfterDelayThenServesHedge) {
  HedgeStateMachine machine(5.0, false);
  EXPECT_EQ(machine.Step(4.9, Leg::kPending, Leg::kPending), Action::kWait);
  EXPECT_EQ(machine.Step(5.0, Leg::kPending, Leg::kPending),
            Action::kFireHedge);
  EXPECT_TRUE(machine.hedge_fired());
  // Fires exactly once.
  EXPECT_EQ(machine.Step(6.0, Leg::kPending, Leg::kPending), Action::kWait);
  EXPECT_EQ(machine.Step(7.0, Leg::kPending, Leg::kOk), Action::kServeHedge);
}

TEST(HedgeStateMachineTest, PrimaryWinsTieAfterHedgeFired) {
  HedgeStateMachine machine(1.0, false);
  EXPECT_EQ(machine.Step(1.0, Leg::kPending, Leg::kPending),
            Action::kFireHedge);
  // Both legs ready: the primary is served, never the hedge.
  EXPECT_EQ(machine.Step(2.0, Leg::kOk, Leg::kOk), Action::kServePrimary);
}

TEST(HedgeStateMachineTest, FireImmediatelySkipsTheDelay) {
  HedgeStateMachine machine(1000.0, true);
  EXPECT_EQ(machine.Step(0.0, Leg::kPending, Leg::kPending),
            Action::kFireHedge);
}

TEST(HedgeStateMachineTest, PrimaryErrorFiresHedgeBeforeTheDelay) {
  HedgeStateMachine machine(1000.0, false);
  EXPECT_EQ(machine.Step(0.1, Leg::kError, Leg::kPending),
            Action::kFireHedge);
  // An errored leg is never served while the other is pending.
  EXPECT_EQ(machine.Step(0.2, Leg::kError, Leg::kPending), Action::kWait);
  EXPECT_EQ(machine.Step(0.3, Leg::kError, Leg::kOk), Action::kServeHedge);
}

TEST(HedgeStateMachineTest, BothErrorsPropagateThePrimaryError) {
  HedgeStateMachine machine(0.0, false);
  EXPECT_EQ(machine.Step(0.0, Leg::kPending, Leg::kPending),
            Action::kFireHedge);
  EXPECT_EQ(machine.Step(1.0, Leg::kError, Leg::kPending), Action::kWait);
  EXPECT_EQ(machine.Step(2.0, Leg::kError, Leg::kError),
            Action::kServePrimary);
}

TEST(HedgeStateMachineTest, HedgeErrorStillWaitsForThePrimary) {
  HedgeStateMachine machine(0.0, false);
  EXPECT_EQ(machine.Step(0.0, Leg::kPending, Leg::kPending),
            Action::kFireHedge);
  EXPECT_EQ(machine.Step(1.0, Leg::kPending, Leg::kError), Action::kWait);
  EXPECT_EQ(machine.Step(2.0, Leg::kOk, Leg::kError),
            Action::kServePrimary);
}

// ----------------------------------------------------------- fleet options --

TEST(FleetOptionsTest, RejectsBadKnobs) {
  FleetOptions options;
  options.shards = 0;
  EXPECT_FALSE(options.Validate().ok());
  options = FleetOptions();
  options.vnodes = 0;
  EXPECT_FALSE(options.Validate().ok());
  options = FleetOptions();
  options.error_rate_threshold = 1.5;
  EXPECT_FALSE(options.Validate().ok());
  options = FleetOptions();
  options.gather_threads = 0;
  EXPECT_FALSE(options.Validate().ok());
  EXPECT_TRUE(FleetOptions().Validate().ok());
}

// --------------------------------------------------------- checksum parity --

FleetOptions QuickFleetOptions(int shards) {
  FleetOptions options;
  options.shards = shards;
  options.vnodes = 64;
  options.service.max_batch = 16;
  options.service.max_delay_ms = 1.0;
  options.service.execute_threads = 2;
  options.service.engine.strategy = Strategy::kBitwise;
  options.service.engine.grouping = GroupingPolicy::kGroupBy;
  options.service.engine.group_size = 16;
  return options;
}

service::WorkloadOptions QuickWorkload() {
  service::WorkloadOptions workload;
  workload.arrival = service::ArrivalProcess::kPoisson;
  workload.qps = 300.0;
  workload.duration_s = 0.25;
  workload.seed = 11;
  return workload;
}

uint64_t FoldDriveChecksum(
    const std::vector<service::QueryResult>& results) {
  uint64_t checksum = kFnv1aOffsetBasis;
  for (const service::QueryResult& result : results) {
    if (result.status.ok()) {
      checksum = FoldChecksum(checksum, result.depth_checksum);
    }
  }
  return checksum;
}

TEST(FleetParityTest, MatchesSingleServiceAtEveryShardCount) {
  const graph::Csr graph = MakeRmatGraph(8, 8);
  const service::WorkloadOptions workload = QuickWorkload();
  auto events = service::GenerateArrivals(graph, workload);
  ASSERT_TRUE(events.ok()) << events.status().ToString();

  auto baseline_svc = service::BfsService::Create(
      &graph, QuickFleetOptions(1).service);
  ASSERT_TRUE(baseline_svc.ok()) << baseline_svc.status().ToString();
  auto baseline =
      service::DriveWorkload(baseline_svc.value().get(), events.value());
  ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();
  const uint64_t expected = FoldDriveChecksum(baseline.value().results);

  for (int shards : {1, 2, 4, 8}) {
    auto fleet =
        FleetFrontDoor::Create(&graph, QuickFleetOptions(shards));
    ASSERT_TRUE(fleet.ok()) << fleet.status().ToString();
    FleetWorkloadOptions options;
    options.workload = workload;
    auto drive =
        DriveFleet(fleet.value().get(), events.value(), options);
    ASSERT_TRUE(drive.ok()) << drive.status().ToString();
    EXPECT_EQ(drive.value().unanswered, 0) << shards << " shards";
    EXPECT_EQ(drive.value().checksum, expected)
        << shards << "-shard fleet diverged from the single service";
  }
}

TEST(FleetParityTest, MultiSourceScatterMatchesSingleService) {
  const graph::Csr graph = MakeRmatGraph(8, 8);
  const service::WorkloadOptions workload = QuickWorkload();
  auto events = service::GenerateArrivals(graph, workload);
  ASSERT_TRUE(events.ok()) << events.status().ToString();

  auto baseline_svc = service::BfsService::Create(
      &graph, QuickFleetOptions(1).service);
  ASSERT_TRUE(baseline_svc.ok()) << baseline_svc.status().ToString();
  auto baseline =
      service::DriveWorkload(baseline_svc.value().get(), events.value());
  ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();

  auto fleet = FleetFrontDoor::Create(&graph, QuickFleetOptions(4));
  ASSERT_TRUE(fleet.ok()) << fleet.status().ToString();
  FleetWorkloadOptions options;
  options.workload = workload;
  options.multi_source = 3;
  auto drive = DriveFleet(fleet.value().get(), events.value(), options);
  ASSERT_TRUE(drive.ok()) << drive.status().ToString();
  EXPECT_EQ(drive.value().unanswered, 0);
  EXPECT_GT(drive.value().multi_queries, 0);
  EXPECT_EQ(drive.value().checksum,
            FoldDriveChecksum(baseline.value().results));
}

TEST(FleetScatterTest, CombinedChecksumIsShardCountInvariant) {
  const graph::Csr graph = MakeRmatGraph(7, 8);
  const std::vector<graph::VertexId> sources =
      graph::SampleConnectedSources(graph, 12, 5);

  uint64_t combined_at_one = 0;
  for (int shards : {1, 4}) {
    auto fleet =
        FleetFrontDoor::Create(&graph, QuickFleetOptions(shards));
    ASSERT_TRUE(fleet.ok()) << fleet.status().ToString();
    const MultiQueryResult multi = fleet.value()->MultiQuery(sources);
    ASSERT_TRUE(multi.status.ok()) << multi.status.ToString();
    ASSERT_EQ(multi.results.size(), sources.size());
    for (size_t i = 0; i < sources.size(); ++i) {
      EXPECT_EQ(multi.results[i].source, sources[i]) << "request order";
    }
    if (shards == 1) {
      combined_at_one = multi.combined_checksum;
      EXPECT_EQ(multi.shards_touched, 1);
    } else {
      EXPECT_EQ(multi.combined_checksum, combined_at_one);
      EXPECT_GT(multi.shards_touched, 1);
    }
    fleet.value()->Shutdown();
  }
}

// ------------------------------------------------------------ stats merge --

TEST(FleetStatsTest, TotalsAreTheFieldwiseSumOfShards) {
  const graph::Csr graph = MakeRmatGraph(7, 8);
  auto fleet = FleetFrontDoor::Create(&graph, QuickFleetOptions(3));
  ASSERT_TRUE(fleet.ok()) << fleet.status().ToString();
  const std::vector<graph::VertexId> sources =
      graph::SampleConnectedSources(graph, 24, 9);
  for (graph::VertexId source : sources) {
    auto result = fleet.value()->Submit(source).get();
    ASSERT_TRUE(result.status.ok()) << result.status.ToString();
  }
  fleet.value()->Shutdown();
  const FleetStats stats = fleet.value()->stats();
  ASSERT_EQ(stats.shard.size(), 3u);
  int64_t queries = 0;
  int64_t completed = 0;
  int64_t routed = 0;
  for (const service::BfsService::Stats& shard : stats.shard) {
    queries += shard.queries;
    completed += shard.completed;
  }
  for (int64_t r : stats.routed) routed += r;
  EXPECT_EQ(stats.totals.queries, queries);
  EXPECT_EQ(stats.totals.completed, completed);
  EXPECT_EQ(completed, static_cast<int64_t>(sources.size()));
  EXPECT_EQ(routed, static_cast<int64_t>(sources.size()));
  EXPECT_EQ(stats.healthy, 3);
  EXPECT_GT(stats.Imbalance(), 0.0);
}

// ------------------------------------------------------- failover / health --

TEST(FleetFailoverTest, KilledShardLeavesTheRingAndSurvivorsAnswer) {
  const graph::Csr graph = MakeRmatGraph(7, 8);
  auto fleet = FleetFrontDoor::Create(&graph, QuickFleetOptions(4));
  ASSERT_TRUE(fleet.ok()) << fleet.status().ToString();
  FleetFrontDoor& door = *fleet.value();

  // Find a source homed on shard 1 so the kill provably reroutes it.
  graph::VertexId victim = -1;
  for (graph::VertexId v = 0; v < graph.vertex_count(); ++v) {
    if (door.HomeShard(v) == 1) {
      victim = v;
      break;
    }
  }
  ASSERT_GE(victim, 0);
  const std::vector<uint8_t> reference = baselines::ReferenceDepthsU8(
      graph, victim, TraversalOptions::kMaxTraversalLevel);

  ASSERT_TRUE(door.KillShard(1));
  EXPECT_FALSE(door.KillShard(1));  // already down
  EXPECT_EQ(door.shard_health(1), ShardHealth::kDown);
  for (graph::VertexId v = 0; v < graph.vertex_count(); ++v) {
    EXPECT_NE(door.OwnerShard(v), 1) << "vertex " << v;
  }
  EXPECT_EQ(door.HomeShard(victim), 1);  // the full ring never changes

  auto rerouted = door.Submit(victim).get();
  ASSERT_TRUE(rerouted.status.ok()) << rerouted.status.ToString();
  EXPECT_EQ(rerouted.depth_checksum, Fnv1a(reference));
  door.Shutdown();
  const FleetStats stats = door.stats();
  EXPECT_GE(stats.failover_reroutes, 1);
  EXPECT_EQ(stats.down, 1);
}

TEST(FleetFailoverTest, CpuFallbackAnswersWhenEveryShardIsDown) {
  const graph::Csr graph = MakeRmatGraph(6, 8);
  FleetOptions options = QuickFleetOptions(2);
  auto fleet = FleetFrontDoor::Create(&graph, options);
  ASSERT_TRUE(fleet.ok()) << fleet.status().ToString();
  ASSERT_TRUE(fleet.value()->KillShard(0));
  ASSERT_TRUE(fleet.value()->KillShard(1));

  const graph::VertexId source = 3;
  auto result = fleet.value()->Submit(source).get();
  ASSERT_TRUE(result.status.ok()) << result.status.ToString();
  EXPECT_TRUE(result.degraded);
  EXPECT_EQ(result.depth_checksum,
            Fnv1a(baselines::ReferenceDepthsU8(
                graph, source, TraversalOptions::kMaxTraversalLevel)));
  const FleetStats stats = fleet.value()->stats();
  EXPECT_EQ(stats.fallback_answers, 1);

  auto bad = fleet.value()->Submit(graph.vertex_count() + 5).get();
  EXPECT_EQ(bad.status.code(), StatusCode::kOutOfRange);
}

TEST(FleetFailoverTest, UnavailableWhenFallbackDisabled) {
  const graph::Csr graph = MakeRmatGraph(6, 8);
  FleetOptions options = QuickFleetOptions(1);
  options.cpu_fallback = false;
  auto fleet = FleetFrontDoor::Create(&graph, options);
  ASSERT_TRUE(fleet.ok()) << fleet.status().ToString();
  ASSERT_TRUE(fleet.value()->KillShard(0));
  auto result = fleet.value()->Submit(1).get();
  EXPECT_EQ(result.status.code(), StatusCode::kUnavailable);
}

TEST(FleetHealthTest, ErrorRateProbeMarksShardDegraded) {
  const graph::Csr graph = MakeRmatGraph(6, 8);
  FleetOptions options = QuickFleetOptions(1);
  options.min_health_samples = 4;
  options.error_rate_threshold = 0.5;
  auto fleet = FleetFrontDoor::Create(&graph, options);
  ASSERT_TRUE(fleet.ok()) << fleet.status().ToString();
  // Out-of-range sources fail inside the shard, driving its error rate
  // to 100% — well past the 50% threshold once enough samples landed.
  for (int i = 0; i < 8; ++i) {
    auto result =
        fleet.value()->shard_for_test(0)->Submit(graph.vertex_count() + 1);
    EXPECT_FALSE(result.get().status.ok());
  }
  EXPECT_EQ(fleet.value()->CheckHealth(), 1);
  EXPECT_EQ(fleet.value()->shard_health(0), ShardHealth::kDegraded);
  // Keep the burst going: the failure rate since the degrade snapshot
  // stays at 100%, so the shard stays degraded.
  for (int i = 0; i < 4; ++i) {
    auto result =
        fleet.value()->shard_for_test(0)->Submit(graph.vertex_count() + 1);
    EXPECT_FALSE(result.get().status.ok());
  }
  EXPECT_EQ(fleet.value()->CheckHealth(), 0);
  EXPECT_EQ(fleet.value()->shard_health(0), ShardHealth::kDegraded);
}

TEST(FleetHealthTest, DegradedShardRecoversOnceTheBurstStops) {
  const graph::Csr graph = MakeRmatGraph(6, 8);
  FleetOptions options = QuickFleetOptions(1);
  options.min_health_samples = 4;
  options.error_rate_threshold = 0.5;
  auto fleet = FleetFrontDoor::Create(&graph, options);
  ASSERT_TRUE(fleet.ok()) << fleet.status().ToString();
  for (int i = 0; i < 8; ++i) {
    auto result =
        fleet.value()->shard_for_test(0)->Submit(graph.vertex_count() + 1);
    EXPECT_FALSE(result.get().status.ok());
  }
  EXPECT_EQ(fleet.value()->CheckHealth(), 1);
  EXPECT_EQ(fleet.value()->shard_health(0), ShardHealth::kDegraded);

  // The burst is over and good traffic flows again: the next probe sees a
  // clean record since the degrade snapshot and restores the shard.
  for (int i = 0; i < 8; ++i) {
    auto result = fleet.value()->Submit(1).get();
    EXPECT_TRUE(result.status.ok()) << result.status.ToString();
  }
  EXPECT_EQ(fleet.value()->CheckHealth(), 1);
  EXPECT_EQ(fleet.value()->shard_health(0), ShardHealth::kHealthy);
  EXPECT_EQ(fleet.value()->stats().recoveries, 1);

  // Recovery forgives the old burst — a fresh probe doesn't re-degrade on
  // the cumulative history.
  EXPECT_EQ(fleet.value()->CheckHealth(), 0);
  EXPECT_EQ(fleet.value()->shard_health(0), ShardHealth::kHealthy);
}

// ------------------------------------------------- cache across a failover --

TEST(FleetCacheTest, RemappedSourceMissesSurvivorCacheOnceThenHits) {
  const graph::Csr graph = MakeRmatGraph(7, 8);
  FleetOptions options = QuickFleetOptions(2);
  options.service.cache.enabled = true;
  auto fleet = FleetFrontDoor::Create(&graph, options);
  ASSERT_TRUE(fleet.ok()) << fleet.status().ToString();
  FleetFrontDoor& door = *fleet.value();

  graph::VertexId source = -1;
  for (graph::VertexId v = 0; v < graph.vertex_count(); ++v) {
    if (door.HomeShard(v) == 0) {
      source = v;
      break;
    }
  }
  ASSERT_GE(source, 0);

  // Warm the home shard's cache, then verify the second answer hit it.
  const auto first = door.Submit(source).get();
  ASSERT_TRUE(first.status.ok()) << first.status.ToString();
  const auto warmed = door.Submit(source).get();
  ASSERT_TRUE(warmed.status.ok());
  EXPECT_TRUE(warmed.cached);
  EXPECT_EQ(warmed.depth_checksum, first.depth_checksum);

  ASSERT_TRUE(door.KillShard(0));
  const service::CacheStats survivor_before =
      door.shard_for_test(1)->cache_stats();

  // The survivor has never seen this source: exactly one miss...
  const auto remapped = door.Submit(source).get();
  ASSERT_TRUE(remapped.status.ok()) << remapped.status.ToString();
  EXPECT_FALSE(remapped.cached);
  EXPECT_EQ(remapped.depth_checksum, first.depth_checksum);
  const service::CacheStats survivor_miss =
      door.shard_for_test(1)->cache_stats();
  EXPECT_EQ(survivor_miss.misses, survivor_before.misses + 1);
  EXPECT_EQ(survivor_miss.hits, survivor_before.hits);

  // ...then it serves from its own cache, same answer as before the kill.
  const auto rehit = door.Submit(source).get();
  ASSERT_TRUE(rehit.status.ok());
  EXPECT_TRUE(rehit.cached);
  EXPECT_EQ(rehit.depth_checksum, first.depth_checksum);
  const service::CacheStats survivor_hit =
      door.shard_for_test(1)->cache_stats();
  EXPECT_EQ(survivor_hit.hits, survivor_before.hits + 1);
}

// ------------------------------------------------------------ elastic join --

TEST(FleetElasticTest, JoinedShardServesItsStolenSegment) {
  const graph::Csr graph = MakeRmatGraph(7, 8);
  auto fleet = FleetFrontDoor::Create(&graph, QuickFleetOptions(2));
  ASSERT_TRUE(fleet.ok()) << fleet.status().ToString();
  FleetFrontDoor& door = *fleet.value();
  ASSERT_EQ(door.shard_count(), 2);

  auto joined = door.AddShard();
  ASSERT_TRUE(joined.ok()) << joined.status().ToString();
  EXPECT_EQ(joined.value(), 2);
  EXPECT_EQ(door.shard_count(), 3);
  EXPECT_EQ(door.shard_health(2), ShardHealth::kHealthy);
  EXPECT_EQ(door.ShardWeight(2), 1);

  // The joiner owns a segment now; a query routed there answers with the
  // reference checksum like any other shard.
  graph::VertexId stolen = -1;
  for (graph::VertexId v = 0; v < graph.vertex_count(); ++v) {
    if (door.OwnerShard(v) == 2) {
      stolen = v;
      break;
    }
  }
  ASSERT_GE(stolen, 0) << "the joiner captured no segment";
  auto result = door.Submit(stolen).get();
  ASSERT_TRUE(result.status.ok()) << result.status.ToString();
  EXPECT_EQ(result.depth_checksum,
            Fnv1a(baselines::ReferenceDepthsU8(
                graph, stolen, TraversalOptions::kMaxTraversalLevel)));
  door.Shutdown();
  const FleetStats stats = door.stats();
  EXPECT_EQ(stats.shard_joins, 1);
  ASSERT_EQ(stats.shard.size(), 3u);
  EXPECT_GT(stats.shard[2].completed, 0);
}

TEST(FleetElasticTest, JoinWarmupReplaysDonorCachesSoHotSourcesStillHit) {
  const graph::Csr graph = MakeRmatGraph(6, 8);
  FleetOptions options = QuickFleetOptions(2);
  options.service.cache.enabled = true;
  auto fleet = FleetFrontDoor::Create(&graph, options);
  ASSERT_TRUE(fleet.ok()) << fleet.status().ToString();
  FleetFrontDoor& door = *fleet.value();

  // Make every source hot: each is now resident in its owner's cache.
  for (graph::VertexId v = 0; v < graph.vertex_count(); ++v) {
    auto result = door.Submit(v).get();
    ASSERT_TRUE(result.status.ok()) << result.status.ToString();
  }

  auto joined = door.AddShard();
  ASSERT_TRUE(joined.ok()) << joined.status().ToString();
  const int joiner = joined.value();

  std::vector<graph::VertexId> stolen;
  for (graph::VertexId v = 0; v < graph.vertex_count(); ++v) {
    if (door.OwnerShard(v) == joiner) stolen.push_back(v);
  }
  ASSERT_FALSE(stolen.empty()) << "the joiner captured no segment";
  EXPECT_GE(door.stats().warmup_entries,
            static_cast<int64_t>(stolen.size()));

  // A hot source whose segment moved misses the fleet cache zero times:
  // the warmup replayed its donor entry into the joiner before the join
  // returned.
  for (graph::VertexId v : stolen) {
    auto result = door.Submit(v).get();
    ASSERT_TRUE(result.status.ok()) << result.status.ToString();
    EXPECT_TRUE(result.cached) << "source " << v << " missed after warmup";
  }
}

TEST(FleetElasticTest, AddShardRejectsBadWeight) {
  const graph::Csr graph = MakeRmatGraph(6, 8);
  auto fleet = FleetFrontDoor::Create(&graph, QuickFleetOptions(1));
  ASSERT_TRUE(fleet.ok()) << fleet.status().ToString();
  EXPECT_FALSE(fleet.value()->AddShard(0).ok());
  EXPECT_FALSE(fleet.value()->AddShard(-1).ok());
}

TEST(FleetElasticTest, KillThenJoinRestoresCapacity) {
  const graph::Csr graph = MakeRmatGraph(7, 8);
  auto fleet = FleetFrontDoor::Create(&graph, QuickFleetOptions(2));
  ASSERT_TRUE(fleet.ok()) << fleet.status().ToString();
  FleetFrontDoor& door = *fleet.value();
  ASSERT_TRUE(door.KillShard(0));
  auto joined = door.AddShard(2);
  ASSERT_TRUE(joined.ok()) << joined.status().ToString();
  EXPECT_EQ(joined.value(), 2);
  EXPECT_EQ(door.ShardWeight(0), 0);
  EXPECT_EQ(door.ShardWeight(2), 2);
  // Traffic flows across the survivor and the joiner.
  const std::vector<graph::VertexId> sources =
      graph::SampleConnectedSources(graph, 16, 3);
  for (graph::VertexId source : sources) {
    auto result = door.Submit(source).get();
    ASSERT_TRUE(result.status.ok()) << result.status.ToString();
  }
  door.Shutdown();
  const FleetStats stats = door.stats();
  EXPECT_EQ(stats.down, 1);
  EXPECT_EQ(stats.shard_joins, 1);
  EXPECT_EQ(stats.shard[0].queries, 0);
}

// ------------------------------------------------------------- replication --

TEST(FleetReplicationTest, ParityAtEveryReplicationFactor) {
  const graph::Csr graph = MakeRmatGraph(8, 8);
  const service::WorkloadOptions workload = QuickWorkload();
  auto events = service::GenerateArrivals(graph, workload);
  ASSERT_TRUE(events.ok()) << events.status().ToString();

  auto baseline_svc = service::BfsService::Create(
      &graph, QuickFleetOptions(1).service);
  ASSERT_TRUE(baseline_svc.ok()) << baseline_svc.status().ToString();
  auto baseline =
      service::DriveWorkload(baseline_svc.value().get(), events.value());
  ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();
  const uint64_t expected = FoldDriveChecksum(baseline.value().results);

  for (int replication : {1, 2, 3}) {
    FleetOptions options = QuickFleetOptions(4);
    options.replication = replication;
    auto fleet = FleetFrontDoor::Create(&graph, options);
    ASSERT_TRUE(fleet.ok()) << fleet.status().ToString();
    FleetWorkloadOptions drive_options;
    drive_options.workload = workload;
    auto drive =
        DriveFleet(fleet.value().get(), events.value(), drive_options);
    ASSERT_TRUE(drive.ok()) << drive.status().ToString();
    EXPECT_EQ(drive.value().unanswered, 0) << "R=" << replication;
    EXPECT_EQ(drive.value().checksum, expected)
        << "R=" << replication << " fleet diverged from the single service";
    EXPECT_EQ(drive.value().stats.replica_mismatches, 0)
        << "R=" << replication;
  }
}

TEST(FleetReplicationTest, ReplicaSetsMatchTheRingWalk) {
  const graph::Csr graph = MakeRmatGraph(7, 8);
  FleetOptions options = QuickFleetOptions(3);
  options.replication = 2;
  auto fleet = FleetFrontDoor::Create(&graph, options);
  ASSERT_TRUE(fleet.ok()) << fleet.status().ToString();
  for (graph::VertexId v = 0; v < 32; ++v) {
    const std::vector<int> replicas = fleet.value()->ReplicaSet(v);
    ASSERT_EQ(replicas.size(), 2u);
    EXPECT_EQ(replicas[0], fleet.value()->OwnerShard(v));
    EXPECT_NE(replicas[0], replicas[1]);
  }
}

// ------------------------------------------------------------ hedged reads --

TEST(FleetHedgeTest, HedgeAnswersWhenPrimaryBreakersAreOpen) {
  const graph::Csr graph = MakeRmatGraph(7, 8);
  FleetOptions options = QuickFleetOptions(2);
  options.replication = 2;
  // No service-level CPU fallback: a breaker-dead shard really fails, so
  // only the hedge can keep these reads OK.
  options.service.resilience.cpu_fallback = false;
  auto fleet = FleetFrontDoor::Create(&graph, options);
  ASSERT_TRUE(fleet.ok()) << fleet.status().ToString();
  FleetFrontDoor& door = *fleet.value();

  door.shard_for_test(0)->TripBreakersForTest();
  ASSERT_TRUE(door.shard_for_test(0)->BreakersOpen());

  // Sources whose primary is the breaker-dead shard: the hedge fires
  // immediately and the healthy replica answers. No Unavailable leaks.
  int hedged_sources = 0;
  for (graph::VertexId v = 0;
       v < graph.vertex_count() && hedged_sources < 8; ++v) {
    if (door.OwnerShard(v) != 0) continue;
    ++hedged_sources;
    auto result = door.Submit(v).get();
    ASSERT_TRUE(result.status.ok())
        << "source " << v << ": " << result.status.ToString();
    EXPECT_EQ(result.depth_checksum,
              Fnv1a(baselines::ReferenceDepthsU8(
                  graph, v, TraversalOptions::kMaxTraversalLevel)));
  }
  ASSERT_GT(hedged_sources, 0);
  door.Shutdown();
  const FleetStats stats = door.stats();
  EXPECT_GE(stats.hedges_fired, hedged_sources);
  EXPECT_GT(stats.hedges_won, 0);
  EXPECT_EQ(stats.replica_mismatches, 0);
}

TEST(FleetHedgeTest, ReplicaMismatchQuarantinesBothCaches) {
  const graph::Csr graph = MakeRmatGraph(6, 8);
  FleetOptions options = QuickFleetOptions(2);
  options.replication = 2;
  options.service.cache.enabled = true;
  options.hedge_delay_ms = 0.0;  // always race both replicas
  // Give the primary's batcher a real deadline so its fresh computation
  // reliably loses the race against the hedge's instant (poisoned) cache
  // hit — both legs complete, which is what arms the comparison.
  options.service.max_delay_ms = 5.0;
  auto fleet = FleetFrontDoor::Create(&graph, options);
  ASSERT_TRUE(fleet.ok()) << fleet.status().ToString();
  FleetFrontDoor& door = *fleet.value();

  const graph::VertexId source = 1;
  const std::vector<int> replicas = door.ReplicaSet(source);
  ASSERT_EQ(replicas.size(), 2u);

  // Poison the hedge replica's cache with a self-consistent wrong answer:
  // the depth bytes are garbage but the checksum matches them, so only
  // the cross-replica comparison can catch it. (The primary leg computes
  // fresh; the hedge leg answers instantly from the poisoned entry.)
  service::CachedDepths poisoned;
  poisoned.depths.assign(static_cast<size_t>(graph.vertex_count()), 1);
  poisoned.checksum = Fnv1a(poisoned.depths);
  poisoned.reached = graph.vertex_count();
  ASSERT_TRUE(door.shard_for_test(replicas[1])->WarmCache(source, poisoned));

  auto result = door.Submit(source).get();
  ASSERT_TRUE(result.status.ok()) << result.status.ToString();
  door.Shutdown();  // drain the hedge wrapper so the accounting is final

  const FleetStats stats = door.stats();
  EXPECT_GE(stats.hedges_fired, 1);
  EXPECT_GE(stats.replica_mismatches, 1);
  // Both replicas' entries are quarantined: the fleet cannot adjudicate
  // two self-consistent answers, so the source recomputes fresh next time.
  EXPECT_FALSE(door.shard_for_test(replicas[0])->PeekCache(source)
                   .has_value());
  EXPECT_FALSE(door.shard_for_test(replicas[1])->PeekCache(source)
                   .has_value());
}

TEST(FleetHedgeTest, OkReadsFanTheirCacheEntryOutToReplicas) {
  const graph::Csr graph = MakeRmatGraph(6, 8);
  FleetOptions options = QuickFleetOptions(2);
  options.replication = 2;
  options.service.cache.enabled = true;
  options.hedge_delay_ms = 0.0;  // always race both replicas
  auto fleet = FleetFrontDoor::Create(&graph, options);
  ASSERT_TRUE(fleet.ok()) << fleet.status().ToString();
  FleetFrontDoor& door = *fleet.value();

  const graph::VertexId source = 2;
  const std::vector<int> replicas = door.ReplicaSet(source);
  ASSERT_EQ(replicas.size(), 2u);
  auto result = door.Submit(source).get();
  ASSERT_TRUE(result.status.ok()) << result.status.ToString();
  door.Shutdown();  // drain the wrapper: fan-out happens after serving

  // Both replicas now hold the answer, byte-identical.
  const auto primary_entry =
      door.shard_for_test(replicas[0])->PeekCache(source);
  const auto hedge_entry =
      door.shard_for_test(replicas[1])->PeekCache(source);
  ASSERT_TRUE(primary_entry.has_value());
  ASSERT_TRUE(hedge_entry.has_value());
  EXPECT_EQ(primary_entry->checksum, hedge_entry->checksum);
  EXPECT_EQ(primary_entry->depths, hedge_entry->depths);
  EXPECT_GT(door.stats().replica_cache_writes, 0);
}

// ------------------------------------------------------------- rebalancing --

TEST(FleetRebalanceTest, SlowShardLosesWeightToTheFastOne) {
  const graph::Csr graph = MakeRmatGraph(6, 8);
  FleetOptions options = QuickFleetOptions(2);
  options.min_health_samples = 4;
  auto fleet = FleetFrontDoor::Create(&graph, options);
  ASSERT_TRUE(fleet.ok()) << fleet.status().ToString();
  FleetFrontDoor& door = *fleet.value();

  // Shard 0's tail is 100x shard 1's: well outside the hysteresis band.
  for (int i = 0; i < 8; ++i) {
    door.shard_for_test(0)->RecordLiveSampleForTest(100.0, true);
    door.shard_for_test(1)->RecordLiveSampleForTest(1.0, true);
  }
  EXPECT_GE(door.Rebalance(), 1);
  // Shard 0 is already at the weight floor (1); the fast shard grows.
  EXPECT_EQ(door.ShardWeight(0), 1);
  EXPECT_EQ(door.ShardWeight(1), 2);
  const FleetStats stats = door.stats();
  EXPECT_EQ(stats.rebalance_runs, 1);
  EXPECT_GE(stats.weight_changes, 1);
  EXPECT_NEAR(stats.weight_share[1], 2.0 / 3.0, 1e-9);
}

TEST(FleetRebalanceTest, BalancedFleetKeepsItsWeights) {
  const graph::Csr graph = MakeRmatGraph(6, 8);
  FleetOptions options = QuickFleetOptions(3);
  options.min_health_samples = 4;
  auto fleet = FleetFrontDoor::Create(&graph, options);
  ASSERT_TRUE(fleet.ok()) << fleet.status().ToString();
  FleetFrontDoor& door = *fleet.value();
  for (int i = 0; i < 8; ++i) {
    for (int s = 0; s < 3; ++s) {
      door.shard_for_test(s)->RecordLiveSampleForTest(5.0, true);
    }
  }
  EXPECT_EQ(door.Rebalance(), 0);
  for (int s = 0; s < 3; ++s) EXPECT_EQ(door.ShardWeight(s), 1);
  EXPECT_EQ(door.stats().weight_changes, 0);
}

TEST(FleetRebalanceTest, ShardsWithoutSamplesAreLeftAlone) {
  const graph::Csr graph = MakeRmatGraph(6, 8);
  FleetOptions options = QuickFleetOptions(2);
  options.min_health_samples = 16;
  auto fleet = FleetFrontDoor::Create(&graph, options);
  ASSERT_TRUE(fleet.ok()) << fleet.status().ToString();
  // One noisy sample each — far below min_health_samples.
  fleet.value()->shard_for_test(0)->RecordLiveSampleForTest(100.0, true);
  fleet.value()->shard_for_test(1)->RecordLiveSampleForTest(1.0, true);
  EXPECT_EQ(fleet.value()->Rebalance(), 0);
  EXPECT_EQ(fleet.value()->ShardWeight(0), 1);
  EXPECT_EQ(fleet.value()->ShardWeight(1), 1);
}

TEST(FleetStatsTest, ImbalanceNormalizesByRingWeightShare) {
  FleetStats stats;
  stats.routed = {75, 25};
  stats.health = {ShardHealth::kHealthy, ShardHealth::kHealthy};
  stats.weight_share = {0.75, 0.25};
  // Each shard carries exactly its weighted share: perfectly balanced.
  EXPECT_NEAR(stats.Imbalance(), 1.0, 1e-9);
  // An even split against a 3:1 weighting means the light shard carries
  // double its share.
  stats.routed = {50, 50};
  EXPECT_NEAR(stats.Imbalance(), 2.0, 1e-9);
  // Without weight info the old equal-share formula applies.
  stats.weight_share.clear();
  stats.routed = {75, 25};
  EXPECT_NEAR(stats.Imbalance(), 1.5, 1e-9);
}

// ------------------------------------------------------------ chaos harness --

TEST(FleetChaosTest, KillOneShardKeepsAvailabilityAndChecksums) {
  const graph::Csr graph = MakeRmatGraph(8, 8);
  FleetOptions options = QuickFleetOptions(4);
  FleetWorkloadOptions workload;
  workload.workload = QuickWorkload();
  workload.kill_shard = 2;
  auto run = RunFleetChaos("rmat8", graph, options, workload);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  const obs::FleetReport& report = run.value();
  EXPECT_EQ(report.unanswered, 0);
  EXPECT_GT(report.checksums_compared, 0);
  EXPECT_EQ(report.checksum_mismatches, 0);
  EXPECT_EQ(report.down, 1);
  EXPECT_EQ(report.killed_shard, 2);
  EXPECT_EQ(report.completed + report.failed, report.queries);

  // The emitted document must satisfy its own schema validator.
  std::ostringstream os;
  report.WriteJson(os);
  auto doc = obs::ParseJson(os.str());
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  const Status valid = obs::ValidateFleetReport(doc.value());
  EXPECT_TRUE(valid.ok()) << valid.ToString();
}

TEST(FleetChaosTest, KillThenJoinEpisodeStaysAvailableAndBitIdentical) {
  const graph::Csr graph = MakeRmatGraph(8, 8);
  FleetOptions options = QuickFleetOptions(3);
  options.service.cache.enabled = true;
  FleetWorkloadOptions workload;
  workload.workload = QuickWorkload();
  workload.kill_shard = 1;
  workload.kill_at_s = 0.05;
  workload.join_shards = 1;
  workload.join_at_s = 0.12;
  auto run = RunFleetChaos("rmat8", graph, options, workload);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  const obs::FleetReport& report = run.value();
  // The full elastic episode: lose a shard, keep serving, grow back, keep
  // serving — zero unanswered futures, every answer bit-identical to the
  // fault-free baseline.
  EXPECT_EQ(report.unanswered, 0);
  EXPECT_GT(report.checksums_compared, 0);
  EXPECT_EQ(report.checksum_mismatches, 0);
  EXPECT_EQ(report.killed_shard, 1);
  EXPECT_EQ(report.shard_joins, 1);
  EXPECT_EQ(report.joined_shards, 1);
  EXPECT_EQ(report.down, 1);
  ASSERT_EQ(report.shard_rows.size(), 4u);
  EXPECT_EQ(report.shard_rows[1].weight, 0);   // killed: off the ring
  EXPECT_GE(report.shard_rows[3].weight, 1);   // joiner: on the ring
  EXPECT_GT(report.shard_rows[3].completed, 0);

  // The v2 document (elasticity section, per-row weights) validates.
  std::ostringstream os;
  report.WriteJson(os);
  auto doc = obs::ParseJson(os.str());
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  const Status valid = obs::ValidateFleetReport(doc.value());
  EXPECT_TRUE(valid.ok()) << valid.ToString();
  EXPECT_NE(os.str().find("\"elasticity\""), std::string::npos);
}

TEST(FleetChaosTest, ReportEmbedsValidatedMetrics) {
  const graph::Csr graph = MakeRmatGraph(7, 8);
  obs::MetricsRegistry metrics;
  FleetOptions options = QuickFleetOptions(2);
  options.service.observer.metrics = &metrics;
  FleetWorkloadOptions workload;
  workload.workload = QuickWorkload();
  workload.workload.duration_s = 0.1;
  auto run = RunFleetChaos("rmat7", graph, options, workload);
  ASSERT_TRUE(run.ok()) << run.status().ToString();

  std::ostringstream os;
  run.value().WriteJson(os, &metrics);
  auto doc = obs::ParseJson(os.str());
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  EXPECT_TRUE(obs::ValidateFleetReport(doc.value()).ok());
  // The fleet minted its routing metrics into the shared registry.
  EXPECT_NE(os.str().find("fleet.routed"), std::string::npos);
}

TEST(FleetValidatorTest, RejectsTamperedReports) {
  const graph::Csr graph = MakeRmatGraph(6, 8);
  FleetOptions options = QuickFleetOptions(1);
  FleetWorkloadOptions workload;
  workload.workload = QuickWorkload();
  workload.workload.duration_s = 0.1;
  auto run = RunFleetChaos("rmat6", graph, options, workload);
  ASSERT_TRUE(run.ok()) << run.status().ToString();

  obs::FleetReport bad = run.value();
  bad.checksum_mismatches = bad.checksums_compared + 1;
  std::ostringstream os;
  bad.WriteJson(os);
  auto doc = obs::ParseJson(os.str());
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  EXPECT_FALSE(obs::ValidateFleetReport(doc.value()).ok());

  obs::FleetReport wrong_schema = run.value();
  std::ostringstream os2;
  wrong_schema.WriteJson(os2);
  std::string text = os2.str();
  const size_t pos = text.find("ibfs.fleet_report");
  ASSERT_NE(pos, std::string::npos);
  text.replace(pos, 4, "nope");
  auto doc2 = obs::ParseJson(text);
  ASSERT_TRUE(doc2.ok()) << doc2.status().ToString();
  EXPECT_FALSE(obs::ValidateFleetReport(doc2.value()).ok());
}

}  // namespace
}  // namespace ibfs::fleet
