// Tests of the distributed serving fleet: consistent-hash ring properties
// (seeded determinism, bounded imbalance, minimal disruption on shard
// loss), front-door checksum parity with a single BfsService at every
// shard count, scatter-gather merge determinism, health/failover
// behavior, the CPU-fallback path, cache behavior across a failover, and
// the chaos harness + fleet-report validator. Suite names start with
// "Fleet" or "HashRing" so the tsan preset's filter picks them up.
#include <algorithm>
#include <cstdint>
#include <map>
#include <sstream>
#include <vector>

#include <gtest/gtest.h>

#include "baselines/reference_bfs.h"
#include "fleet/fleet.h"
#include "fleet/fleet_workload.h"
#include "graph/components.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/validate.h"
#include "service/service.h"
#include "service/workload.h"
#include "test_util.h"
#include "util/checksum.h"
#include "util/hash_ring.h"

namespace ibfs::fleet {
namespace {

using ::ibfs::testing::MakeRmatGraph;

// --------------------------------------------------------------- hash ring --

TEST(HashRingTest, SeededPlacementIsDeterministic) {
  HashRing::Options options;
  options.vnodes = 64;
  options.seed = 7;
  const HashRing a(4, options);
  const HashRing b(4, options);
  for (uint64_t key = 0; key < 4096; ++key) {
    ASSERT_EQ(a.ShardFor(key), b.ShardFor(key)) << "key " << key;
  }
}

TEST(HashRingTest, DifferentSeedsRouteDifferently) {
  HashRing::Options options;
  options.vnodes = 64;
  options.seed = 7;
  const HashRing a(4, options);
  options.seed = 8;
  const HashRing b(4, options);
  int moved = 0;
  for (uint64_t key = 0; key < 4096; ++key) {
    if (a.ShardFor(key) != b.ShardFor(key)) ++moved;
  }
  EXPECT_GT(moved, 0);
}

TEST(HashRingTest, KeyImbalanceStaysUnder15PercentAt128Vnodes) {
  HashRing::Options options;
  options.vnodes = 128;
  options.seed = 2016;
  const int shards = 4;
  const HashRing ring(shards, options);
  std::vector<int64_t> counts(shards, 0);
  const int64_t keys = 100000;
  for (int64_t key = 0; key < keys; ++key) {
    const int shard = ring.ShardFor(static_cast<uint64_t>(key));
    ASSERT_GE(shard, 0);
    ASSERT_LT(shard, shards);
    ++counts[static_cast<size_t>(shard)];
  }
  const double mean =
      static_cast<double>(keys) / static_cast<double>(shards);
  for (int s = 0; s < shards; ++s) {
    const double share = static_cast<double>(counts[static_cast<size_t>(s)]);
    EXPECT_LE(share / mean, 1.15)
        << "shard " << s << " owns " << share << " of " << keys;
    EXPECT_GE(share / mean, 0.85)
        << "shard " << s << " owns " << share << " of " << keys;
  }
}

TEST(HashRingTest, RemovalOnlyMovesKeysOfTheDeadShard) {
  HashRing::Options options;
  options.vnodes = 128;
  options.seed = 2016;
  HashRing ring(4, options);
  const int dead = 2;
  std::map<uint64_t, int> before;
  for (uint64_t key = 0; key < 8192; ++key) {
    before[key] = ring.ShardFor(key);
  }
  ASSERT_TRUE(ring.Remove(dead));
  EXPECT_FALSE(ring.Remove(dead));  // already gone
  int64_t remapped = 0;
  for (const auto& [key, owner] : before) {
    const int now = ring.ShardFor(key);
    ASSERT_NE(now, dead);
    if (owner == dead) {
      ++remapped;  // must land on some survivor
    } else {
      // Minimal disruption: survivors keep every key they already owned.
      EXPECT_EQ(now, owner) << "key " << key << " moved needlessly";
    }
  }
  EXPECT_GT(remapped, 0);
}

TEST(HashRingTest, WeightsBiasOwnership) {
  HashRing::Options options;
  options.vnodes = 128;
  options.seed = 3;
  options.weights = {1, 3};
  const HashRing ring(2, options);
  int64_t heavy = 0;
  const int64_t keys = 20000;
  for (int64_t key = 0; key < keys; ++key) {
    if (ring.ShardFor(static_cast<uint64_t>(key)) == 1) ++heavy;
  }
  // Shard 1 carries 3/4 of the virtual nodes; its key share should be
  // well above an even split.
  EXPECT_GT(static_cast<double>(heavy) / static_cast<double>(keys), 0.6);
}

TEST(HashRingTest, EmptyRingReturnsNoOwner) {
  HashRing::Options options;
  options.vnodes = 8;
  HashRing ring(2, options);
  EXPECT_TRUE(ring.Remove(0));
  EXPECT_TRUE(ring.Remove(1));
  EXPECT_TRUE(ring.empty());
  EXPECT_EQ(ring.ShardFor(123), -1);
}

// ----------------------------------------------------------- fleet options --

TEST(FleetOptionsTest, RejectsBadKnobs) {
  FleetOptions options;
  options.shards = 0;
  EXPECT_FALSE(options.Validate().ok());
  options = FleetOptions();
  options.vnodes = 0;
  EXPECT_FALSE(options.Validate().ok());
  options = FleetOptions();
  options.error_rate_threshold = 1.5;
  EXPECT_FALSE(options.Validate().ok());
  options = FleetOptions();
  options.gather_threads = 0;
  EXPECT_FALSE(options.Validate().ok());
  EXPECT_TRUE(FleetOptions().Validate().ok());
}

// --------------------------------------------------------- checksum parity --

FleetOptions QuickFleetOptions(int shards) {
  FleetOptions options;
  options.shards = shards;
  options.vnodes = 64;
  options.service.max_batch = 16;
  options.service.max_delay_ms = 1.0;
  options.service.execute_threads = 2;
  options.service.engine.strategy = Strategy::kBitwise;
  options.service.engine.grouping = GroupingPolicy::kGroupBy;
  options.service.engine.group_size = 16;
  return options;
}

service::WorkloadOptions QuickWorkload() {
  service::WorkloadOptions workload;
  workload.arrival = service::ArrivalProcess::kPoisson;
  workload.qps = 300.0;
  workload.duration_s = 0.25;
  workload.seed = 11;
  return workload;
}

uint64_t FoldDriveChecksum(
    const std::vector<service::QueryResult>& results) {
  uint64_t checksum = kFnv1aOffsetBasis;
  for (const service::QueryResult& result : results) {
    if (result.status.ok()) {
      checksum = FoldChecksum(checksum, result.depth_checksum);
    }
  }
  return checksum;
}

TEST(FleetParityTest, MatchesSingleServiceAtEveryShardCount) {
  const graph::Csr graph = MakeRmatGraph(8, 8);
  const service::WorkloadOptions workload = QuickWorkload();
  auto events = service::GenerateArrivals(graph, workload);
  ASSERT_TRUE(events.ok()) << events.status().ToString();

  auto baseline_svc = service::BfsService::Create(
      &graph, QuickFleetOptions(1).service);
  ASSERT_TRUE(baseline_svc.ok()) << baseline_svc.status().ToString();
  auto baseline =
      service::DriveWorkload(baseline_svc.value().get(), events.value());
  ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();
  const uint64_t expected = FoldDriveChecksum(baseline.value().results);

  for (int shards : {1, 2, 4, 8}) {
    auto fleet =
        FleetFrontDoor::Create(&graph, QuickFleetOptions(shards));
    ASSERT_TRUE(fleet.ok()) << fleet.status().ToString();
    FleetWorkloadOptions options;
    options.workload = workload;
    auto drive =
        DriveFleet(fleet.value().get(), events.value(), options);
    ASSERT_TRUE(drive.ok()) << drive.status().ToString();
    EXPECT_EQ(drive.value().unanswered, 0) << shards << " shards";
    EXPECT_EQ(drive.value().checksum, expected)
        << shards << "-shard fleet diverged from the single service";
  }
}

TEST(FleetParityTest, MultiSourceScatterMatchesSingleService) {
  const graph::Csr graph = MakeRmatGraph(8, 8);
  const service::WorkloadOptions workload = QuickWorkload();
  auto events = service::GenerateArrivals(graph, workload);
  ASSERT_TRUE(events.ok()) << events.status().ToString();

  auto baseline_svc = service::BfsService::Create(
      &graph, QuickFleetOptions(1).service);
  ASSERT_TRUE(baseline_svc.ok()) << baseline_svc.status().ToString();
  auto baseline =
      service::DriveWorkload(baseline_svc.value().get(), events.value());
  ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();

  auto fleet = FleetFrontDoor::Create(&graph, QuickFleetOptions(4));
  ASSERT_TRUE(fleet.ok()) << fleet.status().ToString();
  FleetWorkloadOptions options;
  options.workload = workload;
  options.multi_source = 3;
  auto drive = DriveFleet(fleet.value().get(), events.value(), options);
  ASSERT_TRUE(drive.ok()) << drive.status().ToString();
  EXPECT_EQ(drive.value().unanswered, 0);
  EXPECT_GT(drive.value().multi_queries, 0);
  EXPECT_EQ(drive.value().checksum,
            FoldDriveChecksum(baseline.value().results));
}

TEST(FleetScatterTest, CombinedChecksumIsShardCountInvariant) {
  const graph::Csr graph = MakeRmatGraph(7, 8);
  const std::vector<graph::VertexId> sources =
      graph::SampleConnectedSources(graph, 12, 5);

  uint64_t combined_at_one = 0;
  for (int shards : {1, 4}) {
    auto fleet =
        FleetFrontDoor::Create(&graph, QuickFleetOptions(shards));
    ASSERT_TRUE(fleet.ok()) << fleet.status().ToString();
    const MultiQueryResult multi = fleet.value()->MultiQuery(sources);
    ASSERT_TRUE(multi.status.ok()) << multi.status.ToString();
    ASSERT_EQ(multi.results.size(), sources.size());
    for (size_t i = 0; i < sources.size(); ++i) {
      EXPECT_EQ(multi.results[i].source, sources[i]) << "request order";
    }
    if (shards == 1) {
      combined_at_one = multi.combined_checksum;
      EXPECT_EQ(multi.shards_touched, 1);
    } else {
      EXPECT_EQ(multi.combined_checksum, combined_at_one);
      EXPECT_GT(multi.shards_touched, 1);
    }
    fleet.value()->Shutdown();
  }
}

// ------------------------------------------------------------ stats merge --

TEST(FleetStatsTest, TotalsAreTheFieldwiseSumOfShards) {
  const graph::Csr graph = MakeRmatGraph(7, 8);
  auto fleet = FleetFrontDoor::Create(&graph, QuickFleetOptions(3));
  ASSERT_TRUE(fleet.ok()) << fleet.status().ToString();
  const std::vector<graph::VertexId> sources =
      graph::SampleConnectedSources(graph, 24, 9);
  for (graph::VertexId source : sources) {
    auto result = fleet.value()->Submit(source).get();
    ASSERT_TRUE(result.status.ok()) << result.status.ToString();
  }
  fleet.value()->Shutdown();
  const FleetStats stats = fleet.value()->stats();
  ASSERT_EQ(stats.shard.size(), 3u);
  int64_t queries = 0;
  int64_t completed = 0;
  int64_t routed = 0;
  for (const service::BfsService::Stats& shard : stats.shard) {
    queries += shard.queries;
    completed += shard.completed;
  }
  for (int64_t r : stats.routed) routed += r;
  EXPECT_EQ(stats.totals.queries, queries);
  EXPECT_EQ(stats.totals.completed, completed);
  EXPECT_EQ(completed, static_cast<int64_t>(sources.size()));
  EXPECT_EQ(routed, static_cast<int64_t>(sources.size()));
  EXPECT_EQ(stats.healthy, 3);
  EXPECT_GT(stats.Imbalance(), 0.0);
}

// ------------------------------------------------------- failover / health --

TEST(FleetFailoverTest, KilledShardLeavesTheRingAndSurvivorsAnswer) {
  const graph::Csr graph = MakeRmatGraph(7, 8);
  auto fleet = FleetFrontDoor::Create(&graph, QuickFleetOptions(4));
  ASSERT_TRUE(fleet.ok()) << fleet.status().ToString();
  FleetFrontDoor& door = *fleet.value();

  // Find a source homed on shard 1 so the kill provably reroutes it.
  graph::VertexId victim = -1;
  for (graph::VertexId v = 0; v < graph.vertex_count(); ++v) {
    if (door.HomeShard(v) == 1) {
      victim = v;
      break;
    }
  }
  ASSERT_GE(victim, 0);
  const std::vector<uint8_t> reference = baselines::ReferenceDepthsU8(
      graph, victim, TraversalOptions::kMaxTraversalLevel);

  ASSERT_TRUE(door.KillShard(1));
  EXPECT_FALSE(door.KillShard(1));  // already down
  EXPECT_EQ(door.shard_health(1), ShardHealth::kDown);
  for (graph::VertexId v = 0; v < graph.vertex_count(); ++v) {
    EXPECT_NE(door.OwnerShard(v), 1) << "vertex " << v;
  }
  EXPECT_EQ(door.HomeShard(victim), 1);  // the full ring never changes

  auto rerouted = door.Submit(victim).get();
  ASSERT_TRUE(rerouted.status.ok()) << rerouted.status.ToString();
  EXPECT_EQ(rerouted.depth_checksum, Fnv1a(reference));
  door.Shutdown();
  const FleetStats stats = door.stats();
  EXPECT_GE(stats.failover_reroutes, 1);
  EXPECT_EQ(stats.down, 1);
}

TEST(FleetFailoverTest, CpuFallbackAnswersWhenEveryShardIsDown) {
  const graph::Csr graph = MakeRmatGraph(6, 8);
  FleetOptions options = QuickFleetOptions(2);
  auto fleet = FleetFrontDoor::Create(&graph, options);
  ASSERT_TRUE(fleet.ok()) << fleet.status().ToString();
  ASSERT_TRUE(fleet.value()->KillShard(0));
  ASSERT_TRUE(fleet.value()->KillShard(1));

  const graph::VertexId source = 3;
  auto result = fleet.value()->Submit(source).get();
  ASSERT_TRUE(result.status.ok()) << result.status.ToString();
  EXPECT_TRUE(result.degraded);
  EXPECT_EQ(result.depth_checksum,
            Fnv1a(baselines::ReferenceDepthsU8(
                graph, source, TraversalOptions::kMaxTraversalLevel)));
  const FleetStats stats = fleet.value()->stats();
  EXPECT_EQ(stats.fallback_answers, 1);

  auto bad = fleet.value()->Submit(graph.vertex_count() + 5).get();
  EXPECT_EQ(bad.status.code(), StatusCode::kOutOfRange);
}

TEST(FleetFailoverTest, UnavailableWhenFallbackDisabled) {
  const graph::Csr graph = MakeRmatGraph(6, 8);
  FleetOptions options = QuickFleetOptions(1);
  options.cpu_fallback = false;
  auto fleet = FleetFrontDoor::Create(&graph, options);
  ASSERT_TRUE(fleet.ok()) << fleet.status().ToString();
  ASSERT_TRUE(fleet.value()->KillShard(0));
  auto result = fleet.value()->Submit(1).get();
  EXPECT_EQ(result.status.code(), StatusCode::kUnavailable);
}

TEST(FleetHealthTest, ErrorRateProbeMarksShardDegraded) {
  const graph::Csr graph = MakeRmatGraph(6, 8);
  FleetOptions options = QuickFleetOptions(1);
  options.min_health_samples = 4;
  options.error_rate_threshold = 0.5;
  auto fleet = FleetFrontDoor::Create(&graph, options);
  ASSERT_TRUE(fleet.ok()) << fleet.status().ToString();
  // Out-of-range sources fail inside the shard, driving its error rate
  // to 100% — well past the 50% threshold once enough samples landed.
  for (int i = 0; i < 8; ++i) {
    auto result =
        fleet.value()->shard_for_test(0)->Submit(graph.vertex_count() + 1);
    EXPECT_FALSE(result.get().status.ok());
  }
  EXPECT_EQ(fleet.value()->CheckHealth(), 1);
  EXPECT_EQ(fleet.value()->shard_health(0), ShardHealth::kDegraded);
  EXPECT_EQ(fleet.value()->CheckHealth(), 0);  // transition is sticky
}

// ------------------------------------------------- cache across a failover --

TEST(FleetCacheTest, RemappedSourceMissesSurvivorCacheOnceThenHits) {
  const graph::Csr graph = MakeRmatGraph(7, 8);
  FleetOptions options = QuickFleetOptions(2);
  options.service.cache.enabled = true;
  auto fleet = FleetFrontDoor::Create(&graph, options);
  ASSERT_TRUE(fleet.ok()) << fleet.status().ToString();
  FleetFrontDoor& door = *fleet.value();

  graph::VertexId source = -1;
  for (graph::VertexId v = 0; v < graph.vertex_count(); ++v) {
    if (door.HomeShard(v) == 0) {
      source = v;
      break;
    }
  }
  ASSERT_GE(source, 0);

  // Warm the home shard's cache, then verify the second answer hit it.
  const auto first = door.Submit(source).get();
  ASSERT_TRUE(first.status.ok()) << first.status.ToString();
  const auto warmed = door.Submit(source).get();
  ASSERT_TRUE(warmed.status.ok());
  EXPECT_TRUE(warmed.cached);
  EXPECT_EQ(warmed.depth_checksum, first.depth_checksum);

  ASSERT_TRUE(door.KillShard(0));
  const service::CacheStats survivor_before =
      door.shard_for_test(1)->cache_stats();

  // The survivor has never seen this source: exactly one miss...
  const auto remapped = door.Submit(source).get();
  ASSERT_TRUE(remapped.status.ok()) << remapped.status.ToString();
  EXPECT_FALSE(remapped.cached);
  EXPECT_EQ(remapped.depth_checksum, first.depth_checksum);
  const service::CacheStats survivor_miss =
      door.shard_for_test(1)->cache_stats();
  EXPECT_EQ(survivor_miss.misses, survivor_before.misses + 1);
  EXPECT_EQ(survivor_miss.hits, survivor_before.hits);

  // ...then it serves from its own cache, same answer as before the kill.
  const auto rehit = door.Submit(source).get();
  ASSERT_TRUE(rehit.status.ok());
  EXPECT_TRUE(rehit.cached);
  EXPECT_EQ(rehit.depth_checksum, first.depth_checksum);
  const service::CacheStats survivor_hit =
      door.shard_for_test(1)->cache_stats();
  EXPECT_EQ(survivor_hit.hits, survivor_before.hits + 1);
}

// ------------------------------------------------------------ chaos harness --

TEST(FleetChaosTest, KillOneShardKeepsAvailabilityAndChecksums) {
  const graph::Csr graph = MakeRmatGraph(8, 8);
  FleetOptions options = QuickFleetOptions(4);
  FleetWorkloadOptions workload;
  workload.workload = QuickWorkload();
  workload.kill_shard = 2;
  auto run = RunFleetChaos("rmat8", graph, options, workload);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  const obs::FleetReport& report = run.value();
  EXPECT_EQ(report.unanswered, 0);
  EXPECT_GT(report.checksums_compared, 0);
  EXPECT_EQ(report.checksum_mismatches, 0);
  EXPECT_EQ(report.down, 1);
  EXPECT_EQ(report.killed_shard, 2);
  EXPECT_EQ(report.completed + report.failed, report.queries);

  // The emitted document must satisfy its own schema validator.
  std::ostringstream os;
  report.WriteJson(os);
  auto doc = obs::ParseJson(os.str());
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  const Status valid = obs::ValidateFleetReport(doc.value());
  EXPECT_TRUE(valid.ok()) << valid.ToString();
}

TEST(FleetChaosTest, ReportEmbedsValidatedMetrics) {
  const graph::Csr graph = MakeRmatGraph(7, 8);
  obs::MetricsRegistry metrics;
  FleetOptions options = QuickFleetOptions(2);
  options.service.observer.metrics = &metrics;
  FleetWorkloadOptions workload;
  workload.workload = QuickWorkload();
  workload.workload.duration_s = 0.1;
  auto run = RunFleetChaos("rmat7", graph, options, workload);
  ASSERT_TRUE(run.ok()) << run.status().ToString();

  std::ostringstream os;
  run.value().WriteJson(os, &metrics);
  auto doc = obs::ParseJson(os.str());
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  EXPECT_TRUE(obs::ValidateFleetReport(doc.value()).ok());
  // The fleet minted its routing metrics into the shared registry.
  EXPECT_NE(os.str().find("fleet.routed"), std::string::npos);
}

TEST(FleetValidatorTest, RejectsTamperedReports) {
  const graph::Csr graph = MakeRmatGraph(6, 8);
  FleetOptions options = QuickFleetOptions(1);
  FleetWorkloadOptions workload;
  workload.workload = QuickWorkload();
  workload.workload.duration_s = 0.1;
  auto run = RunFleetChaos("rmat6", graph, options, workload);
  ASSERT_TRUE(run.ok()) << run.status().ToString();

  obs::FleetReport bad = run.value();
  bad.checksum_mismatches = bad.checksums_compared + 1;
  std::ostringstream os;
  bad.WriteJson(os);
  auto doc = obs::ParseJson(os.str());
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  EXPECT_FALSE(obs::ValidateFleetReport(doc.value()).ok());

  obs::FleetReport wrong_schema = run.value();
  std::ostringstream os2;
  wrong_schema.WriteJson(os2);
  std::string text = os2.str();
  const size_t pos = text.find("ibfs.fleet_report");
  ASSERT_NE(pos, std::string::npos);
  text.replace(pos, 4, "nope");
  auto doc2 = obs::ParseJson(text);
  ASSERT_TRUE(doc2.ok()) << doc2.status().ToString();
  EXPECT_FALSE(obs::ValidateFleetReport(doc2.value()).ok());
}

}  // namespace
}  // namespace ibfs::fleet
